// Package membench measures the host's effective streaming and random
// memory bandwidth, mirroring the micro-benchmarks the paper used to
// calibrate its analytical model (§7.4: ~23 GB/s streaming ≈ 7 bytes/cycle
// and ~5 bytes/cycle random at 3.3 GHz with 6 threads).
//
// The measured figures feed model.Arch so that model predictions compare
// against this machine rather than the paper's Xeon X5680.
package membench

import (
	"runtime"
	"sync"
	"time"
)

// Result holds measured bandwidths.
type Result struct {
	// StreamBytesPerSec is achievable multi-threaded sequential read+write
	// bandwidth.
	StreamBytesPerSec float64
	// RandomBytesPerSec is achievable multi-threaded gather bandwidth,
	// counted in useful bytes (8 per access), not cache lines.
	RandomBytesPerSec float64
	// Threads used for the measurement.
	Threads int
}

// BytesPerCycle converts a bytes/second figure at the given clock.
func BytesPerCycle(bytesPerSec, hz float64) float64 {
	if hz <= 0 {
		return 0
	}
	return bytesPerSec / hz
}

// Options control measurement cost.
type Options struct {
	// BufBytes is the working-set size per thread; it should exceed the
	// LLC.  Default 64 MB.
	BufBytes int
	// Iters repeats each pass.  Default 3.
	Iters int
	// Threads; default GOMAXPROCS.
	Threads int
}

func (o *Options) setDefaults() {
	if o.BufBytes <= 0 {
		o.BufBytes = 64 << 20
	}
	if o.Iters <= 0 {
		o.Iters = 3
	}
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
}

// MeasureStream measures sequential copy bandwidth (read + write counted).
func MeasureStream(o Options) float64 {
	o.setDefaults()
	n := o.BufBytes / 8
	type bufs struct{ src, dst []uint64 }
	all := make([]bufs, o.Threads)
	for i := range all {
		all[i] = bufs{src: make([]uint64, n), dst: make([]uint64, n)}
		for j := range all[i].src {
			all[i].src[j] = uint64(j)
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < o.Threads; i++ {
		wg.Add(1)
		go func(b bufs) {
			defer wg.Done()
			for it := 0; it < o.Iters; it++ {
				copy(b.dst, b.src)
			}
		}(all[i])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	total := float64(o.Threads) * float64(o.Iters) * float64(n) * 16 // 8 read + 8 written
	return total / elapsed
}

// MeasureRandom measures dependent-free random gather bandwidth: each
// thread sums 8-byte loads at pseudo-random positions across its buffer.
// Useful bytes (8 per access) are counted; the cache-line transfer is ~8x
// larger, which is exactly the penalty Equation 12 models.
func MeasureRandom(o Options) float64 {
	o.setDefaults()
	n := o.BufBytes / 8
	mask := uint64(1)
	for mask < uint64(n) {
		mask <<= 1
	}
	mask = mask>>1 - 1 // largest power-of-two range within the buffer

	bufsPer := make([][]uint64, o.Threads)
	for i := range bufsPer {
		bufsPer[i] = make([]uint64, n)
		for j := range bufsPer[i] {
			bufsPer[i][j] = uint64(j) * 0x9e3779b97f4a7c15
		}
	}
	accesses := o.Iters * n
	var wg sync.WaitGroup
	sinks := make([]uint64, o.Threads)
	start := time.Now()
	for i := 0; i < o.Threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := bufsPer[i]
			var sum uint64
			x := uint64(i)*0x9e3779b97f4a7c15 + 1
			for a := 0; a < accesses; a++ {
				// xorshift64 index stream: independent accesses, so the
				// memory system can overlap misses, as hardware gathers do.
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				sum += buf[x&mask]
			}
			sinks[i] = sum
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	total := float64(o.Threads) * float64(accesses) * 8
	_ = sinks
	return total / elapsed
}

// Calibrate measures both figures with the given options.
func Calibrate(o Options) Result {
	o.setDefaults()
	return Result{
		StreamBytesPerSec: MeasureStream(o),
		RandomBytesPerSec: MeasureRandom(o),
		Threads:           o.Threads,
	}
}
