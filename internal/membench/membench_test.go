package membench

import "testing"

func small() Options { return Options{BufBytes: 1 << 22, Iters: 2, Threads: 2} }

func TestMeasureStream(t *testing.T) {
	bw := MeasureStream(small())
	// Any functioning machine streams more than 100 MB/s and less than 10 TB/s.
	if bw < 1e8 || bw > 1e13 {
		t.Fatalf("stream bandwidth %.3g B/s implausible", bw)
	}
}

func TestMeasureRandom(t *testing.T) {
	bw := MeasureRandom(small())
	if bw < 1e6 || bw > 1e13 {
		t.Fatalf("random bandwidth %.3g B/s implausible", bw)
	}
}

func TestCalibrate(t *testing.T) {
	r := Calibrate(small())
	if r.Threads != 2 {
		t.Fatalf("Threads=%d want 2", r.Threads)
	}
	if r.StreamBytesPerSec <= 0 || r.RandomBytesPerSec <= 0 {
		t.Fatal("zero bandwidth")
	}
}

func TestBytesPerCycle(t *testing.T) {
	if got := BytesPerCycle(6.6e9, 3.3e9); got != 2 {
		t.Fatalf("BytesPerCycle=%f want 2", got)
	}
	if got := BytesPerCycle(1, 0); got != 0 {
		t.Fatalf("zero hz: %f", got)
	}
}

func TestDefaults(t *testing.T) {
	var o Options
	o.setDefaults()
	if o.BufBytes != 64<<20 || o.Iters != 3 || o.Threads < 1 {
		t.Fatalf("defaults: %+v", o)
	}
}
