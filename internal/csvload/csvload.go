// Package csvload imports CSV data into tables — the operational path for
// loading benchmark fixtures and real datasets into the engine.
//
// The header row supplies column names; column types are either given
// explicitly or inferred from the first data row (integers become Uint64,
// everything else String).  Values load into the delta partitions; callers
// decide when to merge.
package csvload

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hyrise/internal/table"
)

// Options configure an import.
type Options struct {
	// TableName names the created table (default "csv").
	TableName string
	// Types optionally fixes column types by name; unlisted columns are
	// inferred from the first data row.
	Types map[string]table.Type
	// Comma is the field separator (default ',').
	Comma rune
	// Limit caps imported rows (0 = unlimited).
	Limit int
}

// Load reads CSV from r into a fresh table.
func Load(r io.Reader, opts Options) (*table.Table, int, error) {
	if opts.TableName == "" {
		opts.TableName = "csv"
	}
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true

	header, err := cr.Read()
	if err != nil {
		return nil, 0, fmt.Errorf("csvload: header: %w", err)
	}
	names := make([]string, len(header))
	for i, h := range header {
		names[i] = strings.TrimSpace(h)
	}

	first, err := cr.Read()
	if err == io.EOF {
		return nil, 0, fmt.Errorf("csvload: no data rows")
	}
	if err != nil {
		return nil, 0, fmt.Errorf("csvload: first row: %w", err)
	}
	schema := make(table.Schema, len(names))
	for i, name := range names {
		typ, ok := opts.Types[name]
		if !ok {
			typ = inferType(first[i])
		}
		schema[i] = table.ColumnDef{Name: name, Type: typ}
	}
	t, err := table.New(opts.TableName, schema)
	if err != nil {
		return nil, 0, err
	}

	rows := 0
	insert := func(record []string) error {
		if len(record) != len(schema) {
			return fmt.Errorf("csvload: row %d has %d fields, want %d", rows+1, len(record), len(schema))
		}
		vals := make([]any, len(schema))
		for i, raw := range record {
			v, err := parse(schema[i].Type, strings.TrimSpace(raw))
			if err != nil {
				return fmt.Errorf("csvload: row %d column %q: %w", rows+1, schema[i].Name, err)
			}
			vals[i] = v
		}
		if _, err := t.Insert(vals); err != nil {
			return err
		}
		rows++
		return nil
	}
	if err := insert(first); err != nil {
		return nil, 0, err
	}
	for opts.Limit == 0 || rows < opts.Limit {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, rows, fmt.Errorf("csvload: %w", err)
		}
		if err := insert(record); err != nil {
			return nil, rows, err
		}
	}
	return t, rows, nil
}

// LoadFile imports a CSV file.
func LoadFile(path string, opts Options) (*table.Table, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	if opts.TableName == "" {
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		opts.TableName = strings.TrimSuffix(base, ".csv")
	}
	return Load(f, opts)
}

func inferType(sample string) table.Type {
	if _, err := strconv.ParseUint(strings.TrimSpace(sample), 10, 64); err == nil {
		return table.Uint64
	}
	return table.String
}

func parse(t table.Type, raw string) (any, error) {
	switch t {
	case table.Uint32:
		v, err := strconv.ParseUint(raw, 10, 32)
		return uint32(v), err
	case table.Uint64:
		v, err := strconv.ParseUint(raw, 10, 64)
		return v, err
	default:
		return raw, nil
	}
}
