package csvload

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hyrise/internal/table"
)

const sample = `order_id,qty,product
1,3,widget
2,5,gadget
3,1,widget
`

func TestLoadInfersTypes(t *testing.T) {
	tb, n, err := Load(strings.NewReader(sample), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || tb.Rows() != 3 {
		t.Fatalf("rows %d/%d", n, tb.Rows())
	}
	schema := tb.Schema()
	if schema[0].Type != table.Uint64 || schema[1].Type != table.Uint64 || schema[2].Type != table.String {
		t.Fatalf("inferred %v", schema)
	}
	row, err := tb.Row(1)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].(uint64) != 2 || row[2].(string) != "gadget" {
		t.Fatalf("row %v", row)
	}
	// Table merges and queries like any other.
	if _, err := tb.Merge(context.Background(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	h, err := table.ColumnOf[string](tb, "product")
	if err != nil {
		t.Fatal(err)
	}
	if rows := h.Lookup("widget"); len(rows) != 2 {
		t.Fatalf("Lookup widget: %v", rows)
	}
}

func TestLoadExplicitTypes(t *testing.T) {
	tb, _, err := Load(strings.NewReader(sample), Options{
		TableName: "orders",
		Types:     map[string]table.Type{"qty": table.Uint32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name() != "orders" {
		t.Fatalf("name %q", tb.Name())
	}
	if tb.Schema()[1].Type != table.Uint32 {
		t.Fatalf("qty type %v", tb.Schema()[1].Type)
	}
}

func TestLoadLimit(t *testing.T) {
	_, n, err := Load(strings.NewReader(sample), Options{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("n=%d", n)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"header only": "a,b\n",
		"bad uint":    "a\n1\nxyz\n", // inferred uint64 then non-numeric
		"ragged":      "a,b\n1,2\n3\n",
	}
	for name, data := range cases {
		if _, _, err := Load(strings.NewReader(data), Options{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadSemicolon(t *testing.T) {
	data := "a;b\n1;x\n"
	tb, n, err := Load(strings.NewReader(data), Options{Comma: ';'})
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if len(tb.Schema()) != 2 {
		t.Fatal("schema")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "orders.csv")
	if err := writeFile(path, sample); err != nil {
		t.Fatal(err)
	}
	tb, n, err := LoadFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || tb.Name() != "orders" {
		t.Fatalf("n=%d name=%q", n, tb.Name())
	}
	if _, _, err := LoadFile(filepath.Join(dir, "missing.csv"), Options{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
