package table

import (
	"errors"
	"fmt"

	"hyrise/internal/oplog"
)

// This file is the table side of replication: attaching the primary's op
// log to the write path, and the Apply* methods a follower's replica
// applier uses to replay ops with their original epoch stamps, rebuilding
// bit-identical row ids and begin/end epochs.

// ErrReplayGap reports an op stream inconsistent with the table's state —
// an op that creates a row id the table is not at, or mutates a version it
// never had.  The follower's only recovery is a fresh bootstrap.
var ErrReplayGap = errors.New("table: op replay gap")

// maxOpRows caps the rows carried by a single insert op so one giant batch
// cannot produce an op larger than a wire frame.
const maxOpRows = 1024

// AttachOplog connects the table's write path to a replication log: every
// subsequent mutation records its op and takes its epoch stamp from the
// append (oplog.Log.Append reads the clock under the log mutex, which
// totally orders the log).  The log must be driven by the table's own
// clock; shard is the partition index recorded in each op.  Attach before
// serving writes — mutations that ran unlogged are invisible to followers.
func (t *Table) AttachOplog(l *oplog.Log, shard int) error {
	if l.Clock() != t.clock {
		return errors.New("table: op log is stamped by a different clock")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.olog = l
	t.oshard = uint32(shard)
	return nil
}

// logRow converts a validated row to its canonical storage types (uint32,
// uint64, string) for the op log, so the op encodes on the wire as-is and
// replays into identical column data no matter what convertible Go types
// the writer passed.
func (t *Table) logRow(values []any) []any {
	out := make([]any, len(values))
	for i, v := range values {
		cv, err := Convert(t.schema[i].Type, v)
		if err != nil {
			// The caller validated values against the schema already.
			panic(fmt.Sprintf("table: unvalidated value reached the op log: %v", err))
		}
		out[i] = cv
	}
	return out
}

// insertRecs builds the insert op records for a validated batch, split at
// maxOpRows; ids are assigned consecutively from nextID (t.mu held).
func (t *Table) insertRecs(rows [][]any) []oplog.Rec {
	recs := make([]oplog.Rec, 0, (len(rows)+maxOpRows-1)/maxOpRows)
	id := uint64(t.nextID)
	for len(rows) > 0 {
		n := min(len(rows), maxOpRows)
		lr := make([][]any, n)
		for i := range n {
			lr[i] = t.logRow(rows[i])
		}
		recs = append(recs, oplog.Rec{Kind: oplog.KindInsert, Shard: t.oshard, ID: id, Rows: lr})
		id += uint64(n)
		rows = rows[n:]
	}
	return recs
}

// GCBound returns the upper bound of reclaimed history: the highest
// watermark a committed garbage-collecting merge applied or — while a
// merge that intends to reclaim is in flight — that merge's watermark if
// higher.  A view pinned at an epoch >= GCBound sees complete history;
// below it, versions may already be gone.  The in-flight mark is set at
// merge freeze and cleared at commit/abort, both under t.mu, so the
// intent is never invisible between freeze and commit: a PinAt followed by
// a GCBound check races with no reclamation.
func (t *Table) GCBound() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.gcMark > t.gcWatermark {
		return t.gcMark
	}
	return t.gcWatermark
}

// ApplyInsert replays an insert op: rows become stable ids firstID,
// firstID+1, ... stamped as inserted at epoch at.  Rows the table already
// has (ids below NextRowID, from a snapshot that overlapped the log tail)
// are skipped, so replay is idempotent; a firstID beyond NextRowID is an
// ErrReplayGap.
func (t *Table) ApplyInsert(firstID uint64, rows [][]any, at uint64) error {
	for _, values := range rows {
		if err := t.CheckRow(values); err != nil {
			return err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	next := uint64(t.nextID)
	if firstID > next {
		return fmt.Errorf("%w: insert creates id %d, next is %d", ErrReplayGap, firstID, next)
	}
	skip := next - firstID
	if skip >= uint64(len(rows)) {
		return nil
	}
	for _, values := range rows[skip:] {
		t.insertLocked(values, at)
	}
	return nil
}

// ApplyUpdate replays an update op: version oldID is invalidated and
// values appended as version newID, both stamped at — the version switch
// is atomic exactly as on the primary.  An update whose new version the
// table already has is skipped whole (idempotence); anything else
// inconsistent is an ErrReplayGap.
func (t *Table) ApplyUpdate(oldID, newID uint64, values []any, at uint64) error {
	if err := t.CheckRow(values); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	next := uint64(t.nextID)
	if newID < next {
		return nil
	}
	if newID > next {
		return fmt.Errorf("%w: update creates id %d, next is %d", ErrReplayGap, newID, next)
	}
	slot, err := t.slotFor(int(oldID))
	if err != nil {
		return fmt.Errorf("%w: update of id %d: %v", ErrReplayGap, oldID, err)
	}
	if !t.epochs.Alive(slot) {
		return fmt.Errorf("%w: update of already-dead id %d", ErrReplayGap, oldID)
	}
	t.epochs.Invalidate(slot, at)
	t.dead++
	t.insertLocked(values, at)
	return nil
}

// ApplyInvalidate replays the invalidation side of a delete or move op:
// version id is stamped dead at epoch at.  A version already dead — or
// already reclaimed by the follower's own GC — is skipped (idempotence); a
// version the table never had is an ErrReplayGap.
func (t *Table) ApplyInvalidate(id uint64, at uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id >= uint64(t.nextID) {
		return fmt.Errorf("%w: invalidate of unknown id %d, next is %d", ErrReplayGap, id, t.nextID)
	}
	slot, ok := t.slots[int(id)]
	if !ok || !t.epochs.Alive(slot) {
		return nil
	}
	t.epochs.Invalidate(slot, at)
	t.dead++
	return nil
}
