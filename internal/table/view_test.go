package table

import (
	"context"
	"fmt"
	"testing"

	"hyrise/internal/epoch"
)

func kvTable(t *testing.T) *Table {
	t.Helper()
	tb, err := New("kv", Schema{
		{Name: "k", Type: Uint64},
		{Name: "v", Type: Uint64},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestViewFreezesUpdatesAndDeletes pins the core visibility rules: a view
// keeps seeing the version that was current at capture, updates switch
// versions atomically per epoch, and rows born and killed between two
// captures are visible to neither.
func TestViewFreezesUpdatesAndDeletes(t *testing.T) {
	tb := kvTable(t)
	h, err := ColumnOf[uint64](tb, "k")
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := tb.Insert([]any{uint64(1), uint64(10)})
	v1 := tb.Snapshot()

	r1, err := tb.Update(r0, map[string]any{"k": uint64(2)})
	if err != nil {
		t.Fatal(err)
	}
	v2 := tb.Snapshot()
	if err := tb.Delete(r1); err != nil {
		t.Fatal(err)
	}
	// Born and killed inside one epoch: no snapshot ever sees it.
	ghost, _ := tb.Insert([]any{uint64(9), uint64(90)})
	if err := tb.Delete(ghost); err != nil {
		t.Fatal(err)
	}
	v3 := tb.Snapshot()

	cases := []struct {
		name  string
		view  View
		want1 int // rows with k=1
		want2 int // rows with k=2
	}{
		{"v1 pre-update", v1, 1, 0},
		{"v2 post-update", v2, 0, 1},
		{"v3 post-delete", v3, 0, 0},
		{"latest", Latest(), 0, 0},
	}
	for _, c := range cases {
		if n := len(h.LookupAt(c.view, 1)); n != c.want1 {
			t.Errorf("%s: lookup(1)=%d want %d", c.name, n, c.want1)
		}
		if n := len(h.LookupAt(c.view, 2)); n != c.want2 {
			t.Errorf("%s: lookup(2)=%d want %d", c.name, n, c.want2)
		}
		if n := len(h.LookupAt(c.view, 9)); n != 0 {
			t.Errorf("%s: ghost row visible", c.name)
		}
	}
	if !tb.VisibleAt(v1, r0) || tb.VisibleAt(v2, r0) {
		t.Error("old version visibility wrong across update")
	}
	if tb.VisibleAt(v1, r1) || !tb.VisibleAt(v2, r1) {
		t.Error("new version visibility wrong across update")
	}
	if got := tb.ValidRowsAt(v1); got != 1 {
		t.Errorf("ValidRowsAt(v1)=%d want 1", got)
	}
	if got := tb.ValidRowsAt(v3); got != 0 {
		t.Errorf("ValidRowsAt(v3)=%d want 0", got)
	}
}

// TestViewSurvivesMerge checks that a view taken before a merge reads
// identically after the merge committed (merges move rows between
// partitions but never renumber them or change visibility).
func TestViewSurvivesMerge(t *testing.T) {
	tb := kvTable(t)
	h, err := ColumnOf[uint64](tb, "k")
	if err != nil {
		t.Fatal(err)
	}
	nh, err := NumericColumnOf[uint64](tb, "v")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tb.Insert([]any{uint64(i % 10), uint64(i)})
	}
	view := tb.Snapshot()
	wantRows := h.LookupAt(view, 3)
	wantSum := nh.SumAt(view)

	// Churn after the capture: more inserts, deletes of snapshot-visible
	// rows, then a merge folding everything into the main partitions.
	for i := 0; i < 100; i++ {
		tb.Insert([]any{uint64(3), uint64(1000 + i)})
	}
	for _, r := range wantRows[:5] {
		if err := tb.Delete(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}

	if got := fmt.Sprint(h.LookupAt(view, 3)); got != fmt.Sprint(wantRows) {
		t.Errorf("lookup under view changed across merge: %s want %s", got, fmt.Sprint(wantRows))
	}
	if got := nh.SumAt(view); got != wantSum {
		t.Errorf("sum under view changed across merge: %d want %d", got, wantSum)
	}
	// RangeAt and ScanAt agree with the frozen row set too.
	if got := len(h.RangeAt(view, 0, 9)); got != 200 {
		t.Errorf("range under view sees %d rows want 200", got)
	}
	n := 0
	h.ScanAt(view, func(int, uint64) bool { n++; return true })
	if n != 200 {
		t.Errorf("scan under view sees %d rows want 200", n)
	}
}

// TestMoveRowAtomicVisibility checks the cross-table move primitive: for
// any epoch exactly one of the two versions is visible, and a concurrent
// claim loses cleanly.
func TestMoveRowAtomicVisibility(t *testing.T) {
	clock := epoch.NewClock()
	a, err := NewWithClock("a", Schema{{Name: "k", Type: Uint64}}, clock)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWithClock("b", Schema{{Name: "k", Type: Uint64}}, clock)
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := a.Insert([]any{uint64(1)})
	before := a.Snapshot()
	r1, err := MoveRow(a, r0, b, []any{uint64(2)})
	if err != nil {
		t.Fatal(err)
	}
	after := a.Snapshot()

	if !a.VisibleAt(before, r0) || b.VisibleAt(before, r1) {
		t.Error("pre-move view must see only the source version")
	}
	if a.VisibleAt(after, r0) || !b.VisibleAt(after, r1) {
		t.Error("post-move view must see only the destination version")
	}
	// Every epoch between the two captures sees exactly one version.
	for e := before.Epoch(); e <= after.Epoch(); e++ {
		v := ViewAt(e)
		na, nb := 0, 0
		if a.VisibleAt(v, r0) {
			na++
		}
		if b.VisibleAt(v, r1) {
			nb++
		}
		if na+nb != 1 {
			t.Errorf("epoch %d sees %d versions, want exactly 1", e, na+nb)
		}
	}
	// The old version is claimed: a second move (or update) fails.
	if _, err := MoveRow(a, r0, b, []any{uint64(3)}); err == nil {
		t.Error("second move of a claimed row succeeded")
	}
	// Mismatched clocks are rejected.
	c, _ := New("c", Schema{{Name: "k", Type: Uint64}})
	rc, _ := c.Insert([]any{uint64(1)})
	if _, err := MoveRow(c, rc, b, []any{uint64(4)}); err == nil {
		t.Error("move across different clocks succeeded")
	}
}

// TestViewSurvivesMergeAbort checks that an aborted merge (second delta
// folded back into the primary delta, row ids preserved) leaves in-flight
// views intact — including views that already see rows in the second
// delta.
func TestViewSurvivesMergeAbort(t *testing.T) {
	tb := kvTable(t)
	nh, err := NumericColumnOf[uint64](tb, "v")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tb.Insert([]any{uint64(i), uint64(i)})
	}
	preMerge := tb.Snapshot()
	want := nh.SumAt(preMerge)

	// Freeze the delta and open second deltas exactly as Merge's phase 1
	// does, land rows in the second delta, capture a view seeing them,
	// then abort: both views must read on unchanged.
	tb.mu.Lock()
	for _, c := range tb.cols {
		c.beginMerge()
	}
	tb.mu.Unlock()
	tb.Insert([]any{uint64(100), uint64(1000)})
	midMerge := tb.Snapshot()
	wantMid := nh.SumAt(midMerge)
	if wantMid != want+1000 {
		t.Fatalf("mid-merge view sum %d want %d", wantMid, want+1000)
	}
	tb.mu.Lock()
	for _, c := range tb.cols {
		c.abortMerge()
	}
	tb.mu.Unlock()

	if got := nh.SumAt(preMerge); got != want {
		t.Errorf("pre-merge view sum changed across abort: %d want %d", got, want)
	}
	if got := nh.SumAt(midMerge); got != wantMid {
		t.Errorf("mid-merge view sum changed across abort: %d want %d", got, wantMid)
	}
	// The real Merge path with a cancelled context also leaves views alone.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tb.Merge(ctx, MergeOptions{}); err == nil {
		t.Fatal("cancelled merge reported success")
	}
	if got := nh.SumAt(preMerge); got != want {
		t.Errorf("sum under view changed across cancelled merge: %d want %d", got, want)
	}
}
