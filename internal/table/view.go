package table

import (
	"fmt"

	"hyrise/internal/epoch"
	"hyrise/internal/oplog"
)

// View is a frozen read epoch: reads filtered through it see exactly the
// rows current at the captured epoch, regardless of later updates, deletes
// or merges (merges never renumber rows or change row content, so an
// in-flight view stays readable across merge commits).  Views are plain
// values — cheap to copy, valid for the life of the store.
//
// A view captured with Snapshot additionally pins its epoch on the store's
// clock: garbage-collecting merges never reclaim a version the view can
// see.  Release the view when done reading — an unreleased view holds the
// GC watermark down and keeps dead versions alive indefinitely.  Copies of
// a view share one pin; releasing any copy releases them all.  The zero
// View (latest) and explicit ViewAt views carry no pin: Release on them is
// a no-op, and a ViewAt view at an old epoch may lose rows to GC.
//
// The zero View reads latest (current versions only), as do the read
// methods without an At suffix.
type View struct {
	epoch uint64 // 0 = latest
	pin   *epoch.Pin
}

// Latest returns the view that always reads current versions.
func Latest() View { return View{} }

// ViewAt returns an unpinned view at an explicit epoch (tests, tooling).
// Unpinned views do not hold the GC watermark: rows invalidated at or
// below the watermark may be reclaimed out from under them.
func ViewAt(e uint64) View { return View{epoch: e} }

// Epoch returns the captured epoch, or epoch.Latest for a latest view.
func (v View) Epoch() uint64 { return v.resolve() }

// IsLatest reports whether this is the zero (latest) view.  Multi-step
// latest reads use it to swap in a short-lived pinned snapshot, so a GC
// merge committing between their steps cannot reclaim rows mid-read.
func (v View) IsLatest() bool { return v.epoch == 0 }

// Release drops the view's GC pin, letting garbage collection reclaim the
// history the view could see.  The view remains readable — it just no
// longer guarantees its rows survive the next merge.  Release is
// idempotent and a no-op on unpinned views.
func (v View) Release() { v.pin.Release() }

// PinnedView captures and pins a read view directly on a clock.  The
// sharded table uses it so its cross-shard snapshot pins the shared clock
// exactly like a flat table's Snapshot does.
func PinnedView(c *epoch.Clock) View {
	e, pin := c.CapturePinned()
	return View{epoch: e, pin: pin}
}

// PinnedViewAt pins an explicit epoch on a clock and returns a view at it.
// The server uses it to serve reads at a client-chosen epoch on a
// replication follower.  The pin only prevents future reclamation; the
// caller must verify the epoch's history is still intact — every
// partition's GCBound must be <= e — and Release the view if not.
func PinnedViewAt(c *epoch.Clock, e uint64) View {
	return View{epoch: e, pin: c.PinAt(e)}
}

// resolve maps the zero view to the Latest sentinel.
func (v View) resolve() uint64 {
	if v.epoch == 0 {
		return epoch.Latest
	}
	return v.epoch
}

// Snapshot captures the current epoch as a consistent read view and pins
// it against garbage collection.  The capture is one atomic fetch-add on
// the table's clock plus a pin registration — no coordination with
// writers: every mutation stamped at or below the captured epoch is
// included, every later mutation excluded, and because mutations read
// their stamp while holding every lock they write under, inclusion is
// all-or-nothing per mutation.  Call Release on the view when done with it
// so the GC watermark can advance.
func (t *Table) Snapshot() View {
	e, pin := t.clock.CapturePinned()
	return View{epoch: e, pin: pin}
}

// VisibleAt reports whether the row exists and is visible at the view's
// epoch.  It is IsValid generalized to snapshots; reclaimed rows are
// visible to no view.
func (t *Table) VisibleAt(v View, row int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, err := t.slotFor(row)
	return err == nil && t.epochs.VisibleAt(slot, v.resolve())
}

// MoveRow atomically relocates a row version between two tables sharing
// one epoch clock: it invalidates src's row and inserts values into dst
// under BOTH table locks with a single epoch stamp, so any snapshot sees
// exactly one of the two versions — never both, never neither.  The
// sharded table uses it for key-changing updates that cross shards.
//
// Locks are acquired in creation order (lockID), keeping concurrent moves
// in opposite directions deadlock-free.  values must already be validated
// and converted for dst's schema.
func MoveRow(src *Table, row int, dst *Table, values []any) (int, error) {
	if src == dst {
		return 0, fmt.Errorf("table: MoveRow within one table (use Update)")
	}
	if src.clock != dst.clock {
		return 0, fmt.Errorf("table: MoveRow across tables with different epoch clocks")
	}
	if len(values) != len(dst.cols) {
		return 0, fmt.Errorf("%w: got %d want %d", ErrArity, len(values), len(dst.cols))
	}
	for i, v := range values {
		if err := dst.cols[i].checkValue(v); err != nil {
			return 0, err
		}
	}
	first, second := src, dst
	if second.lockID < first.lockID {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()
	// A sealed source still releases rows (that is how resharding drains
	// it); a sealed destination must not gain any.
	if dst.sealed {
		return 0, ErrSealed
	}
	slot, err := src.slotFor(row)
	if err != nil {
		return 0, err
	}
	if !src.epochs.Alive(slot) {
		return 0, fmt.Errorf("%w: %d", ErrRowInvalid, row)
	}
	at := src.clock.Now()
	if src.olog != nil {
		// Both tables share the log (AttachOplog fans out over one store),
		// so one op with one stamp carries the whole move.
		at = src.olog.Append([]oplog.Rec{{
			Kind: oplog.KindMove, Shard: src.oshard, Dst: dst.oshard,
			ID: uint64(row), ID2: uint64(dst.nextID),
			Rows: [][]any{dst.logRow(values)},
		}})
	}
	src.epochs.Invalidate(slot, at)
	src.dead++
	return dst.insertLocked(values, at), nil
}

// RowEpochs returns copies of the per-row begin/end epoch columns (the
// snapshot writer persists them).
func (t *Table) RowEpochs() (begin, end []uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epochs.Snapshot()
}

// RestoreRowEpochs overwrites the per-row epochs with persisted values;
// both slices must cover exactly the current row count.  The snapshot
// loader rebuilds rows by re-insertion (stamping load-time epochs) and
// then restores the saved history with this.
func (t *Table) RestoreRowEpochs(begin, end []uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.epochs.Restore(begin, end) {
		return fmt.Errorf("table: epoch restore length %d/%d, want %d rows",
			len(begin), len(end), t.rows)
	}
	// The restored ends replace whatever invalidations the rebuild
	// applied; recount the dead-version tally GC's fast path relies on.
	t.dead = t.rows - t.epochs.CountAlive()
	return nil
}

// RowIDs returns a copy of the stable id of every physical row in slot
// order (the snapshot writer persists it alongside the epochs).
func (t *Table) RowIDs() []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]int(nil), t.ids...)
}

// PersistState is the row-set metadata the snapshot writer records; see
// Table.PersistState.
type PersistState struct {
	IDs        []int    // stable id of every physical row, in slot order
	Begin, End []uint64 // per-slot visibility epochs
	NextID     int
	Retired    int
	Reclaimed  int // estimated bytes reclaimed by GC
	Watermark  uint64
}

// PersistState captures everything the snapshot writer needs about the row
// set under one lock acquisition, so ids and epochs are mutually
// consistent.  Values should then be read per stable id (Handle.Get); a
// garbage-collecting merge committing between the capture and those reads
// surfaces as ErrRowInvalid, failing the save cleanly rather than writing
// a torn snapshot.
func (t *Table) PersistState() PersistState {
	t.mu.RLock()
	defer t.mu.RUnlock()
	begin, end := t.epochs.Snapshot()
	return PersistState{
		IDs:       append([]int(nil), t.ids...),
		Begin:     begin,
		End:       end,
		NextID:    t.nextID,
		Retired:   t.retired,
		Reclaimed: t.reclaimed,
		Watermark: t.gcWatermark,
	}
}

// RestoreRowIDs overwrites the stable-id assignment and GC counters with
// persisted values: ids must hold one strictly increasing, non-negative id
// per current physical row, all below nextID.  The snapshot loader rebuilds
// rows by re-insertion (which assigns dense ids) and then restores the
// saved id map with this, so ids retired before the save stay retired.
func (t *Table) RestoreRowIDs(ids []int, nextID, retired, reclaimedBytes int, watermark uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(ids) != t.rows {
		return fmt.Errorf("table: id restore length %d, want %d rows", len(ids), t.rows)
	}
	prev := -1
	for _, id := range ids {
		if id <= prev || id >= nextID {
			return fmt.Errorf("table: id restore: bad id %d (prev %d, nextID %d)", id, prev, nextID)
		}
		prev = id
	}
	t.ids = append(t.ids[:0], ids...)
	t.slots = make(map[int]int, len(ids))
	for slot, id := range ids {
		t.slots[id] = slot
	}
	t.nextID = nextID
	t.retired = retired
	t.reclaimed = reclaimedBytes
	t.gcWatermark = watermark
	return nil
}
