package table

import (
	"fmt"

	"hyrise/internal/epoch"
)

// View is a frozen read epoch: reads filtered through it see exactly the
// rows current at the captured epoch, regardless of later updates, deletes
// or merges (merges never renumber rows or change row content, so an
// in-flight view stays readable across merge commits).  Views are plain
// values — cheap to copy, never "closed", valid for the life of the store.
//
// The zero View reads latest (current versions only), as do the read
// methods without an At suffix.
type View struct {
	epoch uint64 // 0 = latest
}

// Latest returns the view that always reads current versions.
func Latest() View { return View{} }

// ViewAt returns a view pinned to an explicit epoch (tests, tooling).
func ViewAt(e uint64) View { return View{epoch: e} }

// Epoch returns the captured epoch, or epoch.Latest for a latest view.
func (v View) Epoch() uint64 { return v.resolve() }

// resolve maps the zero view to the Latest sentinel.
func (v View) resolve() uint64 {
	if v.epoch == 0 {
		return epoch.Latest
	}
	return v.epoch
}

// Snapshot captures the current epoch as a consistent read view.  The
// capture is one atomic fetch-add on the table's clock — no locks, no
// coordination with writers: every mutation stamped at or below the
// captured epoch is included, every later mutation excluded, and because
// mutations read their stamp while holding every lock they write under,
// inclusion is all-or-nothing per mutation.
func (t *Table) Snapshot() View { return View{epoch: t.clock.Capture()} }

// VisibleAt reports whether the row exists and is visible at the view's
// epoch.  It is IsValid generalized to snapshots.
func (t *Table) VisibleAt(v View, row int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return row >= 0 && row < t.rows && t.epochs.VisibleAt(row, v.resolve())
}

// MoveRow atomically relocates a row version between two tables sharing
// one epoch clock: it invalidates src's row and inserts values into dst
// under BOTH table locks with a single epoch stamp, so any snapshot sees
// exactly one of the two versions — never both, never neither.  The
// sharded table uses it for key-changing updates that cross shards.
//
// Locks are acquired in creation order (lockID), keeping concurrent moves
// in opposite directions deadlock-free.  values must already be validated
// and converted for dst's schema.
func MoveRow(src *Table, row int, dst *Table, values []any) (int, error) {
	if src == dst {
		return 0, fmt.Errorf("table: MoveRow within one table (use Update)")
	}
	if src.clock != dst.clock {
		return 0, fmt.Errorf("table: MoveRow across tables with different epoch clocks")
	}
	if len(values) != len(dst.cols) {
		return 0, fmt.Errorf("%w: got %d want %d", ErrArity, len(values), len(dst.cols))
	}
	for i, v := range values {
		if err := dst.cols[i].checkValue(v); err != nil {
			return 0, err
		}
	}
	first, second := src, dst
	if second.lockID < first.lockID {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()
	if row < 0 || row >= src.rows {
		return 0, fmt.Errorf("%w: %d", ErrRowRange, row)
	}
	if !src.epochs.Alive(row) {
		return 0, fmt.Errorf("%w: %d", ErrRowInvalid, row)
	}
	at := src.clock.Now()
	src.epochs.Invalidate(row, at)
	return dst.insertLocked(values, at), nil
}

// RowEpochs returns copies of the per-row begin/end epoch columns (the
// snapshot writer persists them).
func (t *Table) RowEpochs() (begin, end []uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epochs.Snapshot()
}

// RestoreRowEpochs overwrites the per-row epochs with persisted values;
// both slices must cover exactly the current row count.  The snapshot
// loader rebuilds rows by re-insertion (stamping load-time epochs) and
// then restores the saved history with this.
func (t *Table) RestoreRowEpochs(begin, end []uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.epochs.Restore(begin, end) {
		return fmt.Errorf("table: epoch restore length %d/%d, want %d rows",
			len(begin), len(end), t.rows)
	}
	return nil
}
