package table

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"hyrise/internal/core"
)

// Strategy selects how the merge parallelizes across a table (§6.2.1).
type Strategy int

const (
	// Auto picks ColumnTasks when the table has at least as many columns
	// as threads, IntraColumn otherwise.
	Auto Strategy = iota
	// ColumnTasks is scheme (i): a task queue over columns, each column
	// merged serially by one worker.  With tens to hundreds of columns and
	// few threads this load-balances well (the paper's reported scheme).
	ColumnTasks
	// IntraColumn is scheme (ii): columns merge one after another, each
	// parallelized internally.
	IntraColumn
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case ColumnTasks:
		return "column-tasks"
	case IntraColumn:
		return "intra-column"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// MergeOptions configures Table.Merge.
type MergeOptions struct {
	// Algorithm selects naive or optimized column merges.
	Algorithm core.Algorithm
	// Threads is the total worker budget N_T (0 = GOMAXPROCS).
	Threads int
	// Strategy distributes the budget; see Strategy.
	Strategy Strategy
	// DisableGC keeps this merge from reclaiming versions below the GC
	// watermark even when the table's GC is enabled (the snapshot loader
	// uses it to rebuild tables byte-exactly).  See Table.SetGC for the
	// table-wide switch.
	DisableGC bool
}

// Report summarizes one table merge.
type Report struct {
	// Columns holds per-column merge statistics in schema order.
	Columns []core.Stats
	// RowsMerged is the delta tuple count folded into the main partitions.
	RowsMerged int
	// RowsReclaimed is the number of dead versions the merge dropped
	// instead of copying (0 with GC off or nothing reclaimable).  The
	// decision is per-pin precise: a version is dropped when its
	// [begin, end) validity interval contains no live pinned epoch and end
	// is at or below the freeze-time clock reading.
	RowsReclaimed int
	// GCWatermark is the reclamation floor the merge committed: the clock
	// reading at freeze (0 when RowsReclaimed is 0).  After the commit,
	// pinning a new epoch below it is unsafe — precise retention may have
	// reclaimed versions anywhere below the floor that no then-live pin
	// covered — so Table.GCBound ratchets to it.
	GCWatermark uint64
	// DeadAtFreeze is the number of stored dead versions when the freeze
	// decision ran (reclaimed + retained).
	DeadAtFreeze int
	// LegacyReclaimable counts the dead versions the coarse min-pin
	// watermark rule (end <= min pinned epoch) would have reclaimed.  The
	// precise-retention win of this merge is RowsReclaimed −
	// LegacyReclaimable; versions retained for live pins are DeadAtFreeze −
	// RowsReclaimed (precise) vs DeadAtFreeze − LegacyReclaimable (coarse).
	LegacyReclaimable int
	// LivePins is the number of pins registered when the freeze decision
	// ran.
	LivePins int
	// MainRowsAfter is N'_M.
	MainRowsAfter int
	// Wall is the end-to-end merge duration including lock phases.
	Wall time.Duration
	// Freeze, MergeRun and Commit break Wall into the three phases of §3:
	// the write-locked delta freeze, the unlocked column merges, and the
	// write-locked install/promote (abort path included in Commit).
	Freeze   time.Duration
	MergeRun time.Duration
	Commit   time.Duration
	// Algorithm and Threads echo the options used.
	Algorithm core.Algorithm
	Threads   int
	Strategy  Strategy
	// Aborted is true when the merge was cancelled and rolled back.
	Aborted bool
}

// TotalStepTime sums a step selector over all columns.
func (r Report) TotalStepTime(sel func(core.Stats) time.Duration) time.Duration {
	var d time.Duration
	for _, s := range r.Columns {
		d += sel(s)
	}
	return d
}

// LastMergeReport returns the report of the most recently committed merge.
func (t *Table) LastMergeReport() Report {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lastMerge
}

// Merge runs the merge process for every column of the table (paper §3):
//
//  1. Briefly write-lock: freeze each column's delta and open second
//     deltas; concurrent inserts now accumulate there.
//  2. Unlocked: merge every column's main + frozen delta into pending
//     mains, parallelized per the strategy.  Queries keep running against
//     main + frozen delta + second delta.
//  3. Briefly write-lock: atomically install all pending mains and promote
//     the second deltas.
//
// If ctx is cancelled before commit, all work is discarded and the second
// deltas are folded back; the table is untouched (Report.Aborted = true).
// A second concurrent Merge returns ErrMergeInProgress.
func (t *Table) Merge(ctx context.Context, opts MergeOptions) (Report, error) {
	if !t.mergeMu.TryLock() {
		return Report{}, ErrMergeInProgress
	}
	defer t.mergeMu.Unlock()

	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	strategy := opts.Strategy
	if strategy == Auto {
		if len(t.cols) >= threads {
			strategy = ColumnTasks
		} else {
			strategy = IntraColumn
		}
	}

	start := time.Now()

	// Phase 1: freeze (brief write lock).
	t.mu.Lock()
	if err := ctx.Err(); err != nil {
		t.mu.Unlock()
		return Report{Aborted: true}, err
	}
	t.merging = true
	rowsMerged := 0
	if len(t.cols) > 0 {
		rowsMerged = t.cols[0].deltaLen() // second deltas are nil here
	}
	// Decide what this merge reclaims while the freeze lock pins the row
	// set: a version is reclaimable when its [begin, end) validity interval
	// is invisible to every live pin and to every future capture
	// (epoch.PinSet.Reclaimable) — precise per-pin retention, not the
	// coarse min-pin watermark, so one old analytical pin no longer
	// retains every version invalidated after it.  The mask covers exactly
	// the frozen main+delta slots; rows landing in the second delta
	// afterwards are beyond it and always kept.
	t.gcDrop, t.gcDropCount, t.gcMark = nil, 0, 0
	var deadAtFreeze, legacyReclaimable, livePins int
	// t.dead counts stored versions with end != 0: when it is zero there
	// is nothing to reclaim and the freeze stays O(columns) — the end-
	// epoch scan below only runs when garbage can actually exist.
	if t.gcOn && !opts.DisableGC && t.dead > 0 {
		deadAtFreeze = t.dead
		ps := t.clock.LivePins()
		livePins = ps.Len()
		w := ps.Watermark()
		var legacy atomic.Int64
		begin, end := t.epochs.Raw()
		drop, dropped := core.DropMask(begin[:t.rows], end[:t.rows],
			func(b, e uint64) bool {
				if e != 0 && e <= w {
					legacy.Add(1)
				}
				return ps.Reclaimable(b, e)
			}, threads)
		legacyReclaimable = int(legacy.Load())
		if dropped > 0 {
			t.gcDrop, t.gcDropCount = drop, dropped
			// The reclamation floor is the freeze-time clock reading, not
			// the min pin: precise retention may punch holes anywhere below
			// it that no live pin covered, so no later pin below the floor
			// can be trusted to see complete history.
			t.gcMark = ps.Now()
		}
	}
	drop := t.gcDrop
	for _, c := range t.cols {
		c.beginMerge()
	}
	t.mu.Unlock()
	frozen := time.Now()

	// Phase 2: merge columns against the frozen snapshot, no table lock.
	err := t.runColumnMerges(ctx, strategy, threads, opts.Algorithm, drop)
	merged := time.Now()

	// Phase 3: commit or abort (brief write lock).
	t.mu.Lock()
	t.merging = false
	rep := Report{
		RowsMerged:        rowsMerged,
		Algorithm:         opts.Algorithm,
		Threads:           threads,
		Strategy:          strategy,
		Freeze:            frozen.Sub(start),
		MergeRun:          merged.Sub(frozen),
		DeadAtFreeze:      deadAtFreeze,
		LegacyReclaimable: legacyReclaimable,
		LivePins:          livePins,
	}
	if err != nil {
		for _, c := range t.cols {
			c.abortMerge()
		}
		t.gcDrop, t.gcDropCount, t.gcMark = nil, 0, 0
		rep.Aborted = true
		rep.Commit = time.Since(merged)
		rep.Wall = time.Since(start)
		t.mu.Unlock()
		t.notifyMerge(rep)
		return rep, err
	}
	for _, c := range t.cols {
		c.commitMerge()
	}
	if t.gcDropCount > 0 {
		rep.RowsReclaimed = t.compactRowsLocked()
		rep.GCWatermark = t.gcMark
		if t.gcMark > t.gcWatermark {
			t.gcWatermark = t.gcMark
		}
	}
	t.gcDrop, t.gcDropCount, t.gcMark = nil, 0, 0
	t.mergeGen++
	for _, c := range t.cols {
		rep.Columns = append(rep.Columns, c.mergeStats())
	}
	if len(t.cols) > 0 {
		rep.MainRowsAfter = t.cols[0].mainLen()
	}
	rep.Commit = time.Since(merged)
	rep.Wall = time.Since(start)
	t.lastMerge = rep
	t.mu.Unlock()
	t.notifyMerge(rep)
	return rep, nil
}

// notifyMerge delivers the report to the observer hook, if any.  It runs
// with no table lock held (but still inside mergeMu, so reports arrive in
// commit order); the hook must not call back into Merge.
func (t *Table) notifyMerge(rep Report) {
	if fn := t.mergeHook.Load(); fn != nil {
		fn.(func(Report))(rep)
	}
}

// runColumnMerges distributes column merges according to the strategy.
// drop is the frozen GC mask shared by every column (nil = keep all).
func (t *Table) runColumnMerges(ctx context.Context, strategy Strategy, threads int, alg core.Algorithm, drop []bool) error {
	switch strategy {
	case IntraColumn:
		opts := core.Options{Algorithm: alg, Threads: threads}
		for _, c := range t.cols {
			if err := ctx.Err(); err != nil {
				return err
			}
			c.runMerge(opts, drop)
		}
		return nil
	default: // ColumnTasks
		opts := core.Options{Algorithm: alg, Threads: 1}
		workers := threads
		if workers > len(t.cols) {
			workers = len(t.cols)
		}
		if workers < 1 {
			workers = 1
		}
		tasks := make(chan column)
		done := make(chan struct{}, workers)
		for w := 0; w < workers; w++ {
			go func() {
				for c := range tasks {
					c.runMerge(opts, drop)
				}
				done <- struct{}{}
			}()
		}
		var err error
	feed:
		for _, c := range t.cols {
			select {
			case <-ctx.Done():
				err = ctx.Err()
				break feed
			case tasks <- c:
			}
		}
		close(tasks)
		for w := 0; w < workers; w++ {
			<-done
		}
		return err
	}
}

// compactRowsLocked applies the frozen GC mask to the row metadata at merge
// commit (t.mu write-held): reclaimed slots leave ids/epochs, their stable
// ids are retired from the slot map, and every survivor — including rows
// that accumulated in the second delta during the merge — is re-slotted to
// its rank.  The columns were already rebuilt without the dropped rows by
// MergeColumnGC, so physical slots line up again when this returns.
func (t *Table) compactRowsLocked() int {
	drop := t.gcDrop
	w := 0
	for i, id := range t.ids {
		if i < len(drop) && drop[i] {
			delete(t.slots, id)
			continue
		}
		t.ids[w] = id
		t.slots[id] = w
		w++
	}
	removed := len(t.ids) - w
	t.ids = t.ids[:w]
	t.epochs.Compact(drop)
	t.rows = w
	t.retired += removed
	t.reclaimed += removed * t.rowBytes
	t.dead -= removed
	return removed
}
