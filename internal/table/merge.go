package table

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"hyrise/internal/core"
)

// Strategy selects how the merge parallelizes across a table (§6.2.1).
type Strategy int

const (
	// Auto picks ColumnTasks when the table has at least as many columns
	// as threads, IntraColumn otherwise.
	Auto Strategy = iota
	// ColumnTasks is scheme (i): a task queue over columns, each column
	// merged serially by one worker.  With tens to hundreds of columns and
	// few threads this load-balances well (the paper's reported scheme).
	ColumnTasks
	// IntraColumn is scheme (ii): columns merge one after another, each
	// parallelized internally.
	IntraColumn
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case ColumnTasks:
		return "column-tasks"
	case IntraColumn:
		return "intra-column"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// MergeOptions configures Table.Merge.
type MergeOptions struct {
	// Algorithm selects naive or optimized column merges.
	Algorithm core.Algorithm
	// Threads is the total worker budget N_T (0 = GOMAXPROCS).
	Threads int
	// Strategy distributes the budget; see Strategy.
	Strategy Strategy
}

// Report summarizes one table merge.
type Report struct {
	// Columns holds per-column merge statistics in schema order.
	Columns []core.Stats
	// RowsMerged is the delta tuple count folded into the main partitions.
	RowsMerged int
	// MainRowsAfter is N'_M.
	MainRowsAfter int
	// Wall is the end-to-end merge duration including lock phases.
	Wall time.Duration
	// Algorithm and Threads echo the options used.
	Algorithm core.Algorithm
	Threads   int
	Strategy  Strategy
	// Aborted is true when the merge was cancelled and rolled back.
	Aborted bool
}

// TotalStepTime sums a step selector over all columns.
func (r Report) TotalStepTime(sel func(core.Stats) time.Duration) time.Duration {
	var d time.Duration
	for _, s := range r.Columns {
		d += sel(s)
	}
	return d
}

// LastMergeReport returns the report of the most recently committed merge.
func (t *Table) LastMergeReport() Report {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lastMerge
}

// Merge runs the merge process for every column of the table (paper §3):
//
//  1. Briefly write-lock: freeze each column's delta and open second
//     deltas; concurrent inserts now accumulate there.
//  2. Unlocked: merge every column's main + frozen delta into pending
//     mains, parallelized per the strategy.  Queries keep running against
//     main + frozen delta + second delta.
//  3. Briefly write-lock: atomically install all pending mains and promote
//     the second deltas.
//
// If ctx is cancelled before commit, all work is discarded and the second
// deltas are folded back; the table is untouched (Report.Aborted = true).
// A second concurrent Merge returns ErrMergeInProgress.
func (t *Table) Merge(ctx context.Context, opts MergeOptions) (Report, error) {
	if !t.mergeMu.TryLock() {
		return Report{}, ErrMergeInProgress
	}
	defer t.mergeMu.Unlock()

	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	strategy := opts.Strategy
	if strategy == Auto {
		if len(t.cols) >= threads {
			strategy = ColumnTasks
		} else {
			strategy = IntraColumn
		}
	}

	start := time.Now()

	// Phase 1: freeze (brief write lock).
	t.mu.Lock()
	if err := ctx.Err(); err != nil {
		t.mu.Unlock()
		return Report{Aborted: true}, err
	}
	t.merging = true
	rowsMerged := 0
	if len(t.cols) > 0 {
		rowsMerged = t.cols[0].deltaLen() // second deltas are nil here
	}
	for _, c := range t.cols {
		c.beginMerge()
	}
	t.mu.Unlock()

	// Phase 2: merge columns against the frozen snapshot, no table lock.
	err := t.runColumnMerges(ctx, strategy, threads, opts.Algorithm)

	// Phase 3: commit or abort (brief write lock).
	t.mu.Lock()
	defer t.mu.Unlock()
	t.merging = false
	rep := Report{
		RowsMerged: rowsMerged,
		Algorithm:  opts.Algorithm,
		Threads:    threads,
		Strategy:   strategy,
	}
	if err != nil {
		for _, c := range t.cols {
			c.abortMerge()
		}
		rep.Aborted = true
		rep.Wall = time.Since(start)
		return rep, err
	}
	for _, c := range t.cols {
		c.commitMerge()
	}
	t.mergeGen++
	for _, c := range t.cols {
		rep.Columns = append(rep.Columns, c.mergeStats())
	}
	if len(t.cols) > 0 {
		rep.MainRowsAfter = t.cols[0].mainLen()
	}
	rep.Wall = time.Since(start)
	t.lastMerge = rep
	return rep, nil
}

// runColumnMerges distributes column merges according to the strategy.
func (t *Table) runColumnMerges(ctx context.Context, strategy Strategy, threads int, alg core.Algorithm) error {
	switch strategy {
	case IntraColumn:
		opts := core.Options{Algorithm: alg, Threads: threads}
		for _, c := range t.cols {
			if err := ctx.Err(); err != nil {
				return err
			}
			c.runMerge(opts)
		}
		return nil
	default: // ColumnTasks
		opts := core.Options{Algorithm: alg, Threads: 1}
		workers := threads
		if workers > len(t.cols) {
			workers = len(t.cols)
		}
		if workers < 1 {
			workers = 1
		}
		tasks := make(chan column)
		done := make(chan struct{}, workers)
		for w := 0; w < workers; w++ {
			go func() {
				for c := range tasks {
					c.runMerge(opts)
				}
				done <- struct{}{}
			}()
		}
		var err error
	feed:
		for _, c := range t.cols {
			select {
			case <-ctx.Done():
				err = ctx.Err()
				break feed
			case tasks <- c:
			}
		}
		close(tasks)
		for w := 0; w < workers; w++ {
			<-done
		}
		return err
	}
}
