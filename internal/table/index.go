package table

import "time"

// IndexStats describes one column's group-key index.
type IndexStats struct {
	Column    string
	Postings  int           // indexed main positions (0 until the first build lands)
	SizeBytes int           // posting-list memory
	Builds    uint64        // builds since creation: the initial build plus one per merge
	LastBuild time.Duration // duration of the most recent merge rebuild
}

// CreateIndex builds a group-key index over the named column's main
// partition and keeps it maintained: every subsequent merge rebuilds the
// index over the merged main before publishing it, and the column's delta
// CSB+ tree serves the unmerged tail.  Indexed reads (Handle LookupAt /
// RangeAt / CountEqualAt, the query seed) use it automatically.
//
// The call is idempotent and safe concurrently with readers and writers.
// It takes the merge lock — excluding merges for the duration of the O(n)
// build, like a manual Merge call — then builds without the table lock and
// attaches under it, so reads are never blocked by the build itself.
// Indexes are in-memory only: a table restored from a snapshot starts
// unindexed and callers re-create indexes after Load.
func (t *Table) CreateIndex(column string) error {
	ci, err := t.columnIndex(column)
	if err != nil {
		return err
	}
	t.mergeMu.Lock()
	defer t.mergeMu.Unlock()
	t.mu.RLock()
	c := t.cols[ci]
	done := c.indexed()
	t.mu.RUnlock()
	if done {
		return nil
	}
	// The merge lock pins the main pointer (only commitMerge, which needs
	// it, swaps the main), so the counting sort can run without t.mu while
	// reads and delta writes proceed.
	p := c.buildMainIndex()
	t.mu.Lock()
	c.attachIndex(p)
	t.mu.Unlock()
	return nil
}

// IndexStats reports one entry per indexed column, in schema order.
func (t *Table) IndexStats() []IndexStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []IndexStats
	for _, c := range t.cols {
		if c.indexed() {
			out = append(out, c.indexStats())
		}
	}
	return out
}

// Indexed reports whether the named column has a group-key index.
func (t *Table) Indexed(column string) bool {
	ci, err := t.columnIndex(column)
	if err != nil {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cols[ci].indexed()
}
