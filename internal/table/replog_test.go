package table

import (
	"errors"
	"reflect"
	"testing"

	"hyrise/internal/epoch"
	"hyrise/internal/oplog"
)

func replogSchema() Schema {
	return Schema{{Name: "id", Type: Uint64}, {Name: "v", Type: Uint32}, {Name: "s", Type: String}}
}

// applyOps replays a log's ops into dst exactly as internal/replica does.
func applyOps(t *testing.T, dst *Table, ops []oplog.Op) {
	t.Helper()
	for _, op := range ops {
		var err error
		switch op.Kind {
		case oplog.KindInsert:
			err = dst.ApplyInsert(op.ID, op.Rows, op.Epoch)
		case oplog.KindUpdate:
			err = dst.ApplyUpdate(op.ID, op.ID2, op.Rows[0], op.Epoch)
		case oplog.KindDelete:
			err = dst.ApplyInvalidate(op.ID, op.Epoch)
		default:
			t.Fatalf("unexpected op kind %v", op.Kind)
		}
		if err != nil {
			t.Fatalf("apply op %d (%v): %v", op.LSN, op.Kind, err)
		}
	}
}

// requireIdentical asserts two tables hold bit-identical row state: same
// stable ids, same begin/end epochs, same values per id.
func requireIdentical(t *testing.T, a, b *Table) {
	t.Helper()
	if got, want := b.Rows(), a.Rows(); got != want {
		t.Fatalf("replica has %d physical rows, primary %d", got, want)
	}
	if got, want := b.NextRowID(), a.NextRowID(); got != want {
		t.Fatalf("replica nextID %d, primary %d", got, want)
	}
	if !reflect.DeepEqual(a.RowIDs(), b.RowIDs()) {
		t.Fatalf("row ids differ:\nprimary %v\nreplica %v", a.RowIDs(), b.RowIDs())
	}
	ab, ae := a.RowEpochs()
	bb, be := b.RowEpochs()
	if !reflect.DeepEqual(ab, bb) || !reflect.DeepEqual(ae, be) {
		t.Fatalf("epochs differ:\nprimary %v / %v\nreplica %v / %v", ab, ae, bb, be)
	}
	for _, id := range a.RowIDs() {
		av, err := a.Row(id)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := b.Row(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(av, bv) {
			t.Fatalf("row %d differs: primary %v, replica %v", id, av, bv)
		}
	}
}

func TestReplayRebuildsIdenticalTable(t *testing.T) {
	clock := epoch.NewClock()
	primary, err := NewWithClock("p", replogSchema(), clock)
	if err != nil {
		t.Fatal(err)
	}
	log := oplog.New(clock, 0)
	if err := primary.AttachOplog(log, 0); err != nil {
		t.Fatal(err)
	}

	// A convertible mix of Go types; the log must canonicalize them.
	id0, err := primary.Insert([]any{1, uint32(10), "a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.InsertRows([][]any{
		{uint64(2), 20, "b"},
		{3, uint32(30), "c"},
	}); err != nil {
		t.Fatal(err)
	}
	clock.Capture()
	id1, err := primary.Update(id0, map[string]any{"v": 11})
	if err != nil {
		t.Fatal(err)
	}
	clock.Capture()
	if err := primary.Delete(id1); err != nil {
		t.Fatal(err)
	}

	ops, ok := log.ReadFrom(0, 1000)
	if !ok {
		t.Fatal("log trimmed unexpectedly")
	}
	replica, err := New("r", replogSchema())
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, replica, ops)
	requireIdentical(t, primary, replica)

	// Replay is idempotent: applying the whole log again changes nothing.
	applyOps(t, replica, ops)
	requireIdentical(t, primary, replica)
}

func TestReplayDetectsGaps(t *testing.T) {
	replica, err := New("r", replogSchema())
	if err != nil {
		t.Fatal(err)
	}
	row := []any{uint64(1), uint32(1), "x"}
	if err := replica.ApplyInsert(5, [][]any{row}, 2); !errors.Is(err, ErrReplayGap) {
		t.Fatalf("insert gap: got %v", err)
	}
	if err := replica.ApplyUpdate(0, 7, row, 2); !errors.Is(err, ErrReplayGap) {
		t.Fatalf("update gap: got %v", err)
	}
	if err := replica.ApplyInvalidate(3, 2); !errors.Is(err, ErrReplayGap) {
		t.Fatalf("invalidate gap: got %v", err)
	}
}

func TestGCBoundTracksCommittedWatermark(t *testing.T) {
	tbl, err := New("g", Schema{{Name: "v", Type: Uint64}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.GCBound(); got != 0 {
		t.Fatalf("fresh table GCBound = %d", got)
	}
	id, err := tbl.Insert([]any{uint64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Update(id, map[string]any{"v": uint64(2)}); err != nil {
		t.Fatal(err)
	}
	tbl.Clock().Capture()
	if _, err := tbl.Merge(t.Context(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if got, want := tbl.GCBound(), tbl.GCWatermark(); got != want || got == 0 {
		t.Fatalf("GCBound = %d, watermark %d", got, want)
	}
}
