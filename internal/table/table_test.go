package table

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"hyrise/internal/core"
)

func testSchema() Schema {
	return Schema{
		{Name: "id", Type: Uint64},
		{Name: "qty", Type: Uint32},
		{Name: "product", Type: String},
	}
}

func newTestTable(t *testing.T) *Table {
	t.Helper()
	tb, err := New("sales", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestSchemaValidate(t *testing.T) {
	cases := []struct {
		name   string
		schema Schema
		ok     bool
	}{
		{"valid", testSchema(), true},
		{"empty", Schema{}, false},
		{"dup", Schema{{Name: "a", Type: Uint64}, {Name: "a", Type: Uint32}}, false},
		{"unnamed", Schema{{Name: "", Type: Uint64}}, false},
		{"badtype", Schema{{Name: "a", Type: Type(99)}}, false},
	}
	for _, c := range cases {
		if err := c.schema.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: err=%v ok=%v", c.name, err, c.ok)
		}
	}
}

func TestInsertAndRow(t *testing.T) {
	tb := newTestTable(t)
	id, err := tb.Insert([]any{uint64(1), uint32(5), "widget"})
	if err != nil || id != 0 {
		t.Fatalf("Insert: id=%d err=%v", id, err)
	}
	id2, _ := tb.Insert([]any{uint64(2), uint32(7), "gadget"})
	if id2 != 1 {
		t.Fatalf("second id=%d", id2)
	}
	row, err := tb.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].(uint64) != 1 || row[1].(uint32) != 5 || row[2].(string) != "widget" {
		t.Fatalf("Row(0)=%v", row)
	}
	if tb.Rows() != 2 || tb.ValidRows() != 2 {
		t.Fatalf("Rows=%d Valid=%d", tb.Rows(), tb.ValidRows())
	}
	if tb.MainRows() != 0 || tb.DeltaRows() != 2 {
		t.Fatalf("Main=%d Delta=%d", tb.MainRows(), tb.DeltaRows())
	}
}

func TestInsertErrors(t *testing.T) {
	tb := newTestTable(t)
	if _, err := tb.Insert([]any{uint64(1)}); !errors.Is(err, ErrArity) {
		t.Fatalf("arity: %v", err)
	}
	if _, err := tb.Insert([]any{"x", uint32(1), "y"}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := tb.Insert([]any{uint64(1), uint64(1 << 40), "y"}); err == nil {
		t.Fatal("uint32 overflow accepted")
	}
	if _, err := tb.Insert([]any{-5, uint32(1), "y"}); err == nil {
		t.Fatal("negative accepted")
	}
	// A failed insert must not leave ragged columns.
	if tb.Rows() != 0 || tb.DeltaRows() != 0 {
		t.Fatalf("failed inserts mutated table: rows=%d delta=%d", tb.Rows(), tb.DeltaRows())
	}
}

func TestUpdateInsertOnly(t *testing.T) {
	tb := newTestTable(t)
	r0, _ := tb.Insert([]any{uint64(1), uint32(5), "widget"})
	r1, err := tb.Update(r0, map[string]any{"qty": uint32(9)})
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r0 {
		t.Fatal("update did not create a new version")
	}
	if tb.IsValid(r0) {
		t.Fatal("old version still valid")
	}
	if !tb.IsValid(r1) {
		t.Fatal("new version invalid")
	}
	// History remains queryable.
	old, _ := tb.Row(r0)
	if old[1].(uint32) != 5 {
		t.Fatalf("history lost: %v", old)
	}
	cur, _ := tb.Row(r1)
	if cur[1].(uint32) != 9 || cur[0].(uint64) != 1 || cur[2].(string) != "widget" {
		t.Fatalf("new version wrong: %v", cur)
	}
	// Updating the stale version fails.
	if _, err := tb.Update(r0, map[string]any{"qty": uint32(1)}); !errors.Is(err, ErrRowInvalid) {
		t.Fatalf("stale update: %v", err)
	}
	// Unknown column.
	if _, err := tb.Update(r1, map[string]any{"nope": uint32(1)}); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("unknown column: %v", err)
	}
}

func TestDelete(t *testing.T) {
	tb := newTestTable(t)
	r0, _ := tb.Insert([]any{uint64(1), uint32(5), "w"})
	if err := tb.Delete(r0); err != nil {
		t.Fatal(err)
	}
	if tb.IsValid(r0) {
		t.Fatal("still valid")
	}
	if err := tb.Delete(r0); !errors.Is(err, ErrRowInvalid) {
		t.Fatalf("double delete: %v", err)
	}
	if err := tb.Delete(99); !errors.Is(err, ErrRowRange) {
		t.Fatalf("range: %v", err)
	}
	if tb.ValidRows() != 0 || tb.Rows() != 1 {
		t.Fatal("counts wrong after delete")
	}
}

func fillRandom(t *testing.T, tb *Table, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	products := []string{"widget", "gadget", "sprocket", "gear", "cog"}
	for i := 0; i < n; i++ {
		_, err := tb.Insert([]any{
			rng.Uint64() % 1000,
			uint32(rng.Intn(100)),
			products[rng.Intn(len(products))],
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// snapshot captures all valid rows for invariance checks across merges.
// It walks the stable id list rather than a dense range: garbage
// collection retires ids, so live ids are not contiguous.
func snapshot(t *testing.T, tb *Table) map[int][]any {
	t.Helper()
	out := map[int][]any{}
	for _, r := range tb.RowIDs() {
		if tb.IsValid(r) {
			row, err := tb.Row(r)
			if err != nil {
				t.Fatal(err)
			}
			out[r] = row
		}
	}
	return out
}

func TestMergeBasic(t *testing.T) {
	for _, strategy := range []Strategy{ColumnTasks, IntraColumn} {
		for _, alg := range []core.Algorithm{core.Optimized, core.Naive} {
			tb := newTestTable(t)
			fillRandom(t, tb, 500, 1)
			before := snapshot(t, tb)
			rep, err := tb.Merge(context.Background(), MergeOptions{
				Algorithm: alg, Threads: 4, Strategy: strategy})
			if err != nil {
				t.Fatal(err)
			}
			if rep.RowsMerged != 500 || rep.MainRowsAfter != 500 {
				t.Fatalf("report %+v", rep)
			}
			if len(rep.Columns) != 3 {
				t.Fatalf("columns %d", len(rep.Columns))
			}
			if tb.MainRows() != 500 || tb.DeltaRows() != 0 {
				t.Fatalf("main=%d delta=%d", tb.MainRows(), tb.DeltaRows())
			}
			after := snapshot(t, tb)
			if len(after) != len(before) {
				t.Fatalf("row count changed across merge")
			}
			for r, want := range before {
				got := after[r]
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("row %d col %d: %v != %v", r, i, got[i], want[i])
					}
				}
			}
			if tb.MergeGeneration() != 1 {
				t.Fatalf("gen=%d", tb.MergeGeneration())
			}
		}
	}
}

func TestMergePreservesInvalidations(t *testing.T) {
	tb := newTestTable(t)
	fillRandom(t, tb, 100, 2)
	tb.Delete(10)
	tb.Update(20, map[string]any{"qty": uint32(77)})
	before := snapshot(t, tb)
	rep, err := tb.Merge(context.Background(), MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := snapshot(t, tb)
	if tb.IsValid(10) || tb.IsValid(20) {
		t.Fatal("invalidations lost")
	}
	if len(after) != len(before) {
		t.Fatal("valid row count changed")
	}
	// With no pinned view, the merge garbage-collects both dead versions:
	// their ids are retired and stay invalid forever.
	if rep.RowsReclaimed != 2 || tb.RetiredRows() != 2 {
		t.Fatalf("reclaimed %d retired %d, want 2/2", rep.RowsReclaimed, tb.RetiredRows())
	}
	if _, err := tb.Row(10); !errors.Is(err, ErrRowInvalid) {
		t.Fatalf("Row(reclaimed) err=%v want ErrRowInvalid", err)
	}
}

func TestRepeatedMerges(t *testing.T) {
	tb := newTestTable(t)
	for gen := 1; gen <= 4; gen++ {
		fillRandom(t, tb, 200, int64(gen))
		if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
			t.Fatal(err)
		}
		if tb.MainRows() != 200*gen {
			t.Fatalf("gen %d: main=%d", gen, tb.MainRows())
		}
		if tb.MergeGeneration() != gen {
			t.Fatalf("gen=%d", tb.MergeGeneration())
		}
	}
}

func TestMergeEmptyDelta(t *testing.T) {
	tb := newTestTable(t)
	fillRandom(t, tb, 50, 3)
	tb.Merge(context.Background(), MergeOptions{})
	rep, err := tb.Merge(context.Background(), MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsMerged != 0 || tb.MainRows() != 50 {
		t.Fatalf("empty merge: %+v", rep)
	}
}

func TestMergeAbort(t *testing.T) {
	tb := newTestTable(t)
	fillRandom(t, tb, 300, 4)
	before := snapshot(t, tb)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before it starts: must abort cleanly
	rep, err := tb.Merge(ctx, MergeOptions{})
	if err == nil || !rep.Aborted {
		t.Fatalf("expected abort, got %+v err=%v", rep, err)
	}
	if tb.MainRows() != 0 || tb.DeltaRows() != 300 {
		t.Fatalf("abort mutated table: main=%d delta=%d", tb.MainRows(), tb.DeltaRows())
	}
	after := snapshot(t, tb)
	for r, want := range before {
		got := after[r]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d changed after abort", r)
			}
		}
	}
	// A subsequent merge succeeds.
	if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if tb.MainRows() != 300 {
		t.Fatal("post-abort merge failed")
	}
}

func TestHandleLookup(t *testing.T) {
	tb := newTestTable(t)
	tb.Insert([]any{uint64(10), uint32(1), "a"})
	tb.Insert([]any{uint64(20), uint32(2), "b"})
	tb.Insert([]any{uint64(10), uint32(3), "c"})
	h, err := ColumnOf[uint64](tb, "id")
	if err != nil {
		t.Fatal(err)
	}
	got := h.Lookup(10)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Lookup(10)=%v", got)
	}
	// After merge the same query must return the same rows.
	tb.Merge(context.Background(), MergeOptions{})
	got = h.Lookup(10)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("post-merge Lookup(10)=%v", got)
	}
	// Lookup spans main (merged) and fresh delta rows.
	tb.Insert([]any{uint64(10), uint32(4), "d"})
	got = h.Lookup(10)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("mixed Lookup(10)=%v", got)
	}
	// Invalidated rows are filtered.
	tb.Delete(0)
	got = h.Lookup(10)
	if len(got) != 2 || got[0] != 2 {
		t.Fatalf("filtered Lookup(10)=%v", got)
	}
	if n := h.CountEqual(10); n != 2 {
		t.Fatalf("CountEqual=%d", n)
	}
}

func TestHandleTypeMismatch(t *testing.T) {
	tb := newTestTable(t)
	if _, err := ColumnOf[uint64](tb, "product"); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := ColumnOf[uint64](tb, "missing"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("missing column: %v", err)
	}
}

func TestHandleRangeAndScan(t *testing.T) {
	tb := newTestTable(t)
	for i := 0; i < 100; i++ {
		tb.Insert([]any{uint64(i), uint32(i % 10), "p"})
	}
	// Merge half so the query spans main and delta.
	tb.Merge(context.Background(), MergeOptions{})
	for i := 100; i < 200; i++ {
		tb.Insert([]any{uint64(i), uint32(i % 10), "p"})
	}
	h, _ := ColumnOf[uint64](tb, "id")
	rows := h.Range(95, 104)
	if len(rows) != 10 {
		t.Fatalf("Range: %v", rows)
	}
	sort.Ints(rows)
	for i, r := range rows {
		if r != 95+i {
			t.Fatalf("Range rows %v", rows)
		}
	}
	var n int
	var sum uint64
	h.Scan(func(row int, v uint64) bool {
		n++
		sum += v
		return true
	})
	if n != 200 || sum != 199*200/2 {
		t.Fatalf("Scan n=%d sum=%d", n, sum)
	}
	// Early stop.
	n = 0
	h.Scan(func(int, uint64) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop n=%d", n)
	}
}

func TestNumericHandleAggregates(t *testing.T) {
	tb := newTestTable(t)
	for i := 1; i <= 10; i++ {
		tb.Insert([]any{uint64(i), uint32(i), "p"})
	}
	h, err := NumericColumnOf[uint32](tb, "qty")
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Sum(); got != 55 {
		t.Fatalf("Sum=%d", got)
	}
	if mn, ok := h.Min(); !ok || mn != 1 {
		t.Fatalf("Min=%d,%v", mn, ok)
	}
	if mx, ok := h.Max(); !ok || mx != 10 {
		t.Fatalf("Max=%d,%v", mx, ok)
	}
	tb.Delete(9) // removes value 10
	if mx, _ := h.Max(); mx != 9 {
		t.Fatalf("Max after delete=%d", mx)
	}
	if got := h.Distinct(); got != 10 {
		// Distinct counts stored versions, including the deleted one.
		t.Fatalf("Distinct=%d", got)
	}
}

func TestStats(t *testing.T) {
	tb := newTestTable(t)
	fillRandom(t, tb, 100, 6)
	tb.Merge(context.Background(), MergeOptions{})
	fillRandom(t, tb, 20, 7)
	s := tb.Stats()
	if s.Rows != 120 || s.MainRows != 100 || s.DeltaRows != 20 {
		t.Fatalf("stats %+v", s)
	}
	if len(s.Columns) != 3 {
		t.Fatalf("columns %d", len(s.Columns))
	}
	if s.SizeBytes <= 0 {
		t.Fatal("SizeBytes")
	}
	for _, cs := range s.Columns {
		if cs.MainRows != 100 || cs.DeltaRows != 20 {
			t.Fatalf("column stats %+v", cs)
		}
		if cs.LastMerge.NM != 0 { // first merge had empty main
			t.Fatalf("LastMerge.NM=%d", cs.LastMerge.NM)
		}
	}
	if tb.DeltaFraction() != 0.2 {
		t.Fatalf("DeltaFraction=%f", tb.DeltaFraction())
	}
}

func TestLastMergeReport(t *testing.T) {
	tb := newTestTable(t)
	fillRandom(t, tb, 50, 8)
	rep, _ := tb.Merge(context.Background(), MergeOptions{Threads: 2})
	got := tb.LastMergeReport()
	if got.RowsMerged != rep.RowsMerged || got.Wall != rep.Wall {
		t.Fatal("LastMergeReport mismatch")
	}
	if got.TotalStepTime(func(s core.Stats) time.Duration { return s.Step2 }) < 0 {
		t.Fatal("negative step time")
	}
}
