package table

import (
	"context"
	"math/rand"
	"testing"
)

// scanPairs collects (row id, value) pairs visible at the view in scan
// order.
func scanPairs(h *NumericHandle[uint64], v View) [][2]uint64 {
	var out [][2]uint64
	h.ScanAt(v, func(row int, val uint64) bool {
		out = append(out, [2]uint64{uint64(row), val})
		return true
	})
	return out
}

// TestParallelMergeIdentity drives two tables through an identical
// insert/update/delete workload — large enough to cross the core package's
// parallel Step 2 threshold — then garbage-collect-merges one serially and
// the other with 8 intra-column threads.  Everything observable must be
// identical: reclaim counts, row/version counts, stable ids, values, and
// epoch visibility through a snapshot pinned mid-workload.
func TestParallelMergeIdentity(t *testing.T) {
	const n = 20000 // > parallelStep2Threshold after the first merge

	type tbl struct {
		tb  *Table
		h   *NumericHandle[uint64]
		ids []int
		pin View
	}
	build := func() *tbl {
		tb, h := gcTestTable(t)
		x := &tbl{tb: tb, h: h, ids: make([]int, n)}
		for i := 0; i < n; i++ {
			id, err := tb.Insert([]any{uint64(i), uint64(i)})
			if err != nil {
				t.Fatal(err)
			}
			x.ids[i] = id
		}
		// Deterministic mutation round: updates create dead versions for
		// GC, deletes leave tombstoned ids, the pinned snapshot in the
		// middle splits epoch visibility.
		rng := rand.New(rand.NewSource(99))
		mutate := func(frac int) {
			for i := range x.ids {
				if x.ids[i] < 0 || rng.Intn(100) >= frac {
					continue
				}
				if rng.Intn(10) == 0 {
					if err := tb.Delete(x.ids[i]); err != nil {
						t.Fatal(err)
					}
					x.ids[i] = -1
					continue
				}
				nid, err := tb.Update(x.ids[i], map[string]any{"v": uint64(rng.Intn(1 << 20))})
				if err != nil {
					t.Fatal(err)
				}
				x.ids[i] = nid
			}
		}
		mutate(30)
		x.pin = tb.Snapshot()
		mutate(20)
		return x
	}

	a, b := build(), build()
	defer a.pin.Release()
	defer b.pin.Release()

	serial := MergeOptions{Threads: 1}
	wide := MergeOptions{Threads: 8, Strategy: IntraColumn}
	for round := 0; round < 2; round++ {
		repA, err := a.tb.Merge(context.Background(), serial)
		if err != nil {
			t.Fatal(err)
		}
		repB, err := b.tb.Merge(context.Background(), wide)
		if err != nil {
			t.Fatal(err)
		}
		if repA.RowsReclaimed != repB.RowsReclaimed {
			t.Fatalf("round %d: reclaimed %d (serial) vs %d (parallel)", round, repA.RowsReclaimed, repB.RowsReclaimed)
		}
		if a.tb.Rows() != b.tb.Rows() || a.tb.ValidRows() != b.tb.ValidRows() || a.tb.RetiredRows() != b.tb.RetiredRows() {
			t.Fatalf("round %d: rows %d/%d valid %d/%d retired %d/%d", round,
				a.tb.Rows(), b.tb.Rows(), a.tb.ValidRows(), b.tb.ValidRows(),
				a.tb.RetiredRows(), b.tb.RetiredRows())
		}

		for _, view := range []View{Latest(), a.pin} {
			vb := view
			if !view.IsLatest() {
				vb = b.pin
			}
			pa, pb := scanPairs(a.h, view), scanPairs(b.h, vb)
			if len(pa) != len(pb) {
				t.Fatalf("round %d: scan lengths %d vs %d", round, len(pa), len(pb))
			}
			for i := range pa {
				if pa[i] != pb[i] {
					t.Fatalf("round %d: scan[%d] = %v (serial) vs %v (parallel)", round, i, pa[i], pb[i])
				}
			}
		}

		// Spot-check stable id -> value mapping directly.
		for i := 0; i < n; i += 997 {
			if a.ids[i] != b.ids[i] {
				t.Fatalf("id streams diverged at %d: %d vs %d", i, a.ids[i], b.ids[i])
			}
			if a.ids[i] < 0 {
				continue
			}
			va, ea := a.h.Get(a.ids[i])
			vb2, eb := b.h.Get(b.ids[i])
			if (ea == nil) != (eb == nil) || va != vb2 {
				t.Fatalf("Get(%d): %v,%v vs %v,%v", a.ids[i], va, ea, vb2, eb)
			}
		}

		if round == 0 {
			// Second round: mutate the (now main-resident) rows again so the
			// next GC merge drops from the main partition on both tables.
			for _, x := range []*tbl{a, b} {
				rng := rand.New(rand.NewSource(1234))
				for i := range x.ids {
					if x.ids[i] < 0 || rng.Intn(100) >= 25 {
						continue
					}
					nid, err := x.tb.Update(x.ids[i], map[string]any{"v": uint64(rng.Intn(1 << 20))})
					if err != nil {
						t.Fatal(err)
					}
					x.ids[i] = nid
				}
			}
		}
	}
}
