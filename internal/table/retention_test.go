package table

import (
	"context"
	"testing"
)

// TestPreciseRetentionWithOldPin is the precise-GC acceptance test: one
// pin taken before heavy churn must retain ONLY the versions visible at
// its own epoch, while everything invalidated after it — invisible to the
// pin yet above the classic min-pin watermark — is reclaimed.  The coarse
// watermark rule would have kept every one of those versions; precise
// retention must reclaim at least 90% of them and keep physical storage
// bounded.
func TestPreciseRetentionWithOldPin(t *testing.T) {
	tb, h := gcTestTable(t)
	const n, cycles = 100, 50
	ids := make([]int, n)
	for i := range ids {
		id, err := tb.Insert([]any{uint64(i), uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	// The old pin: visible versions are exactly the n originals.
	pin := PinnedView(tb.Clock())
	defer pin.Release()
	pinSum := h.SumAt(pin)

	for cycle := 1; cycle <= cycles; cycle++ {
		for i := range ids {
			nid, err := tb.Update(ids[i], map[string]any{"v": uint64(cycle*n + i)})
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = nid
		}
	}

	rep, err := tb.Merge(context.Background(), MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every cycle invalidated n versions, all after the pin's epoch.
	if rep.DeadAtFreeze != n*cycles {
		t.Fatalf("DeadAtFreeze = %d want %d", rep.DeadAtFreeze, n*cycles)
	}
	// The coarse watermark (min pinned epoch) reclaims nothing here: every
	// dead version was invalidated above the pin.
	if rep.LegacyReclaimable != 0 {
		t.Fatalf("LegacyReclaimable = %d want 0", rep.LegacyReclaimable)
	}
	if rep.LivePins != 1 {
		t.Fatalf("LivePins = %d want 1", rep.LivePins)
	}
	// Precise retention keeps only the n versions the pin can see.
	retained := rep.DeadAtFreeze - rep.RowsReclaimed
	if retained != n {
		t.Fatalf("retained %d versions for the pin, want %d", retained, n)
	}
	legacyRetained := rep.DeadAtFreeze - rep.LegacyReclaimable
	if ratio := float64(rep.RowsReclaimed-rep.LegacyReclaimable) / float64(legacyRetained); ratio < 0.9 {
		t.Fatalf("precise retention reclaimed %.1f%% of what the watermark would retain, want >= 90%%",
			100*ratio)
	}
	// Physical storage is bounded by live rows + pinned history, not by
	// the number of updates ever applied.
	if tb.Rows() != 2*n {
		t.Fatalf("physical rows = %d want %d (live) + %d (pinned history)", tb.Rows(), n, n)
	}

	// The pin still reads its exact epoch after reclamation.
	if got := h.SumAt(pin); got != pinSum {
		t.Fatalf("pinned SumAt = %d want %d", got, pinSum)
	}
	if got := tb.ValidRowsAt(pin); got != n {
		t.Fatalf("pinned ValidRowsAt = %d want %d", got, n)
	}

	// Releasing the pin frees its history on the next merge cycle.
	pin.Release()
	for i := range ids {
		nid, err := tb.Update(ids[i], map[string]any{"v": uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = nid
	}
	if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != n || tb.Rows()-tb.ValidRows() != 0 {
		t.Fatalf("after release: %d physical rows, %d dead", tb.Rows(), tb.Rows()-tb.ValidRows())
	}
}
