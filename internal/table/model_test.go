package table

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hyrise/internal/core"
)

// refTable is a trivially correct model of the insert-only table: a flat
// row log plus validity flags, with garbage collection modelled as a
// retired flag — with no pinned views, every invalidated row present at a
// merge is reclaimed by it.  The model-based test below applies long
// random operation sequences to both implementations and compares every
// observable query result.
type refTable struct {
	rows    [][2]uint64 // columns k, v
	valid   []bool
	retired []bool // reclaimed by a modelled GC merge
}

func (r *refTable) insert(k, v uint64) int {
	r.rows = append(r.rows, [2]uint64{k, v})
	r.valid = append(r.valid, true)
	r.retired = append(r.retired, false)
	return len(r.rows) - 1
}

// reclaim models a GC merge with nothing pinned: every invalidated row
// still stored is reclaimed.
func (r *refTable) reclaim() {
	for i, v := range r.valid {
		if !v {
			r.retired[i] = true
		}
	}
}

// storedCount returns the number of physically stored rows (not reclaimed).
func (r *refTable) storedCount() int {
	n := 0
	for i := range r.rows {
		if !r.retired[i] {
			n++
		}
	}
	return n
}

func (r *refTable) update(row int, k uint64) (int, bool) {
	if row < 0 || row >= len(r.rows) || !r.valid[row] {
		return 0, false
	}
	r.valid[row] = false
	return r.insert(k, r.rows[row][1]), true
}

func (r *refTable) del(row int) bool {
	if row < 0 || row >= len(r.rows) || !r.valid[row] {
		return false
	}
	r.valid[row] = false
	return true
}

func (r *refTable) lookup(k uint64) []int {
	var out []int
	for i, row := range r.rows {
		if r.valid[i] && row[0] == k {
			out = append(out, i)
		}
	}
	return out
}

func (r *refTable) rangeSel(lo, hi uint64) []int {
	var out []int
	for i, row := range r.rows {
		if r.valid[i] && row[0] >= lo && row[0] <= hi {
			out = append(out, i)
		}
	}
	return out
}

func (r *refTable) sumV() uint64 {
	var s uint64
	for i, row := range r.rows {
		if r.valid[i] {
			s += row[1]
		}
	}
	return s
}

func (r *refTable) validCount() int {
	n := 0
	for _, v := range r.valid {
		if v {
			n++
		}
	}
	return n
}

// TestModelBasedRandomOps drives the table and the reference model through
// thousands of random operations, with merges (both algorithms, varying
// thread counts) interleaved, verifying full query equivalence after every
// batch.
func TestModelBasedRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tb, err := New("m", Schema{
				{Name: "k", Type: Uint64},
				{Name: "v", Type: Uint64},
			})
			if err != nil {
				t.Fatal(err)
			}
			ref := &refTable{}
			hk, _ := ColumnOf[uint64](tb, "k")
			nv, _ := NumericColumnOf[uint64](tb, "v")

			const domain = 50 // small domain: dense collisions
			checkEquiv := func(step int) {
				t.Helper()
				if tb.Rows() != ref.storedCount() {
					t.Fatalf("step %d: rows %d want %d", step, tb.Rows(), ref.storedCount())
				}
				if tb.ValidRows() != ref.validCount() {
					t.Fatalf("step %d: valid %d want %d", step, tb.ValidRows(), ref.validCount())
				}
				// Every key's lookup set matches.
				for k := uint64(0); k < domain; k += 7 {
					got := hk.Lookup(k)
					want := ref.lookup(k)
					if len(got) != len(want) {
						t.Fatalf("step %d: lookup(%d) %v want %v", step, k, got, want)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("step %d: lookup(%d) %v want %v", step, k, got, want)
						}
					}
				}
				// A random range matches.
				lo := rng.Uint64() % domain
				hi := lo + rng.Uint64()%10
				got := hk.Range(lo, hi)
				want := ref.rangeSel(lo, hi)
				if len(got) != len(want) {
					t.Fatalf("step %d: range(%d,%d) %d rows want %d", step, lo, hi, len(got), len(want))
				}
				// Aggregate matches.
				if got, want := nv.Sum(), ref.sumV(); got != want {
					t.Fatalf("step %d: sum %d want %d", step, got, want)
				}
			}

			for step := 0; step < 60; step++ {
				// One batch of random mutations.
				for op := 0; op < 100; op++ {
					switch rng.Intn(10) {
					case 0, 1, 2, 3, 4: // insert
						k, v := rng.Uint64()%domain, rng.Uint64()%1000
						got, err := tb.Insert([]any{k, v})
						if err != nil {
							t.Fatal(err)
						}
						if want := ref.insert(k, v); got != want {
							t.Fatalf("insert row id %d want %d", got, want)
						}
					case 5, 6, 7: // update a random row
						if len(ref.rows) == 0 {
							continue
						}
						row := rng.Intn(len(ref.rows))
						k := rng.Uint64() % domain
						wantID, wantOK := ref.update(row, k)
						gotID, err := tb.Update(row, map[string]any{"k": k})
						if wantOK != (err == nil) {
							t.Fatalf("update(%d) err=%v wantOK=%v", row, err, wantOK)
						}
						if wantOK && gotID != wantID {
							t.Fatalf("update id %d want %d", gotID, wantID)
						}
					default: // delete a random row
						if len(ref.rows) == 0 {
							continue
						}
						row := rng.Intn(len(ref.rows))
						wantOK := ref.del(row)
						err := tb.Delete(row)
						if wantOK != (err == nil) {
							t.Fatalf("delete(%d) err=%v wantOK=%v", row, err, wantOK)
						}
					}
				}
				// Periodic merges with varied configurations.
				if step%5 == 4 {
					alg := core.Optimized
					if rng.Intn(2) == 0 {
						alg = core.Naive
					}
					if _, err := tb.Merge(context.Background(), MergeOptions{
						Algorithm: alg,
						Threads:   1 + rng.Intn(4),
						Strategy:  Strategy(rng.Intn(3)),
					}); err != nil {
						t.Fatal(err)
					}
					ref.reclaim()
				}
				checkEquiv(step)
			}
		})
	}
}

// TestModelBasedHistory verifies the two version-history regimes: while a
// view pinned below the whole history is held, superseded row versions
// remain materializable with their original values after arbitrary merges
// (paper §3: the insert-only approach keeps the history of data); once the
// pin is released, a merge reclaims every superseded version and their ids
// stay retired.
func TestModelBasedHistory(t *testing.T) {
	tb, _ := New("h", Schema{{Name: "k", Type: Uint64}})
	rng := rand.New(rand.NewSource(9))
	history := map[int]uint64{}
	row, _ := tb.Insert([]any{uint64(0)})
	history[row] = 0
	cur := row
	// Pinning before the first update holds the GC watermark below every
	// invalidation that follows, so merges must keep the full history.
	guard := tb.Snapshot()
	for i := 1; i <= 200; i++ {
		v := rng.Uint64() % 1000
		nr, err := tb.Update(cur, map[string]any{"k": v})
		if err != nil {
			t.Fatal(err)
		}
		history[nr] = v
		cur = nr
		if i%50 == 0 {
			if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	h, _ := ColumnOf[uint64](tb, "k")
	for row, want := range history {
		got, err := h.Get(row)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("history row %d = %d want %d", row, got, want)
		}
		if row != cur && tb.IsValid(row) {
			t.Fatalf("superseded row %d still valid", row)
		}
	}
	if !tb.IsValid(cur) {
		t.Fatal("current version invalid")
	}
	if tb.ValidRows() != 1 {
		t.Fatalf("ValidRows=%d want 1", tb.ValidRows())
	}

	// Release the pin: the next merge reclaims all 200 dead versions.
	guard.Release()
	rep, err := tb.Merge(context.Background(), MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsReclaimed != 200 {
		t.Fatalf("RowsReclaimed=%d want 200", rep.RowsReclaimed)
	}
	if tb.Rows() != 1 || tb.RetiredRows() != 200 {
		t.Fatalf("rows=%d retired=%d want 1/200", tb.Rows(), tb.RetiredRows())
	}
	for row := range history {
		if row == cur {
			continue
		}
		if _, err := h.Get(row); !errors.Is(err, ErrRowInvalid) {
			t.Fatalf("reclaimed row %d: err=%v want ErrRowInvalid", row, err)
		}
	}
	if got, err := h.Get(cur); err != nil || got != history[cur] {
		t.Fatalf("current row after GC: %d, %v", got, err)
	}
}
