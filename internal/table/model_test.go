package table

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hyrise/internal/core"
)

// refTable is a trivially correct model of the insert-only table: a flat
// row log plus validity flags, with garbage collection modelled as a
// retired flag — with no pinned views, every invalidated row present at a
// merge is reclaimed by it.  The model-based test below applies long
// random operation sequences to both implementations and compares every
// observable query result.
type refTable struct {
	rows    [][2]uint64 // columns k, v
	valid   []bool
	retired []bool // reclaimed by a modelled GC merge
}

func (r *refTable) insert(k, v uint64) int {
	r.rows = append(r.rows, [2]uint64{k, v})
	r.valid = append(r.valid, true)
	r.retired = append(r.retired, false)
	return len(r.rows) - 1
}

// reclaim models a GC merge with nothing pinned: every invalidated row
// still stored is reclaimed.
func (r *refTable) reclaim() {
	for i, v := range r.valid {
		if !v {
			r.retired[i] = true
		}
	}
}

// storedCount returns the number of physically stored rows (not reclaimed).
func (r *refTable) storedCount() int {
	n := 0
	for i := range r.rows {
		if !r.retired[i] {
			n++
		}
	}
	return n
}

func (r *refTable) update(row int, k uint64) (int, bool) {
	if row < 0 || row >= len(r.rows) || !r.valid[row] {
		return 0, false
	}
	r.valid[row] = false
	return r.insert(k, r.rows[row][1]), true
}

func (r *refTable) del(row int) bool {
	if row < 0 || row >= len(r.rows) || !r.valid[row] {
		return false
	}
	r.valid[row] = false
	return true
}

func (r *refTable) lookup(k uint64) []int {
	var out []int
	for i, row := range r.rows {
		if r.valid[i] && row[0] == k {
			out = append(out, i)
		}
	}
	return out
}

func (r *refTable) rangeSel(lo, hi uint64) []int {
	var out []int
	for i, row := range r.rows {
		if r.valid[i] && row[0] >= lo && row[0] <= hi {
			out = append(out, i)
		}
	}
	return out
}

func (r *refTable) sumV() uint64 {
	var s uint64
	for i, row := range r.rows {
		if r.valid[i] {
			s += row[1]
		}
	}
	return s
}

func (r *refTable) validCount() int {
	n := 0
	for _, v := range r.valid {
		if v {
			n++
		}
	}
	return n
}

// TestModelBasedRandomOps drives the table and the reference model through
// thousands of random operations, with merges (both algorithms, varying
// thread counts) interleaved, verifying full query equivalence after every
// batch.
func TestModelBasedRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tb, err := New("m", Schema{
				{Name: "k", Type: Uint64},
				{Name: "v", Type: Uint64},
			})
			if err != nil {
				t.Fatal(err)
			}
			ref := &refTable{}
			hk, _ := ColumnOf[uint64](tb, "k")
			nv, _ := NumericColumnOf[uint64](tb, "v")

			const domain = 50 // small domain: dense collisions
			checkEquiv := func(step int) {
				t.Helper()
				if tb.Rows() != ref.storedCount() {
					t.Fatalf("step %d: rows %d want %d", step, tb.Rows(), ref.storedCount())
				}
				if tb.ValidRows() != ref.validCount() {
					t.Fatalf("step %d: valid %d want %d", step, tb.ValidRows(), ref.validCount())
				}
				// Every key's lookup set matches.
				for k := uint64(0); k < domain; k += 7 {
					got := hk.Lookup(k)
					want := ref.lookup(k)
					if len(got) != len(want) {
						t.Fatalf("step %d: lookup(%d) %v want %v", step, k, got, want)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("step %d: lookup(%d) %v want %v", step, k, got, want)
						}
					}
				}
				// A random range matches.
				lo := rng.Uint64() % domain
				hi := lo + rng.Uint64()%10
				got := hk.Range(lo, hi)
				want := ref.rangeSel(lo, hi)
				if len(got) != len(want) {
					t.Fatalf("step %d: range(%d,%d) %d rows want %d", step, lo, hi, len(got), len(want))
				}
				// Aggregate matches.
				if got, want := nv.Sum(), ref.sumV(); got != want {
					t.Fatalf("step %d: sum %d want %d", step, got, want)
				}
			}

			for step := 0; step < 60; step++ {
				// One batch of random mutations.
				for op := 0; op < 100; op++ {
					switch rng.Intn(10) {
					case 0, 1, 2, 3, 4: // insert
						k, v := rng.Uint64()%domain, rng.Uint64()%1000
						got, err := tb.Insert([]any{k, v})
						if err != nil {
							t.Fatal(err)
						}
						if want := ref.insert(k, v); got != want {
							t.Fatalf("insert row id %d want %d", got, want)
						}
					case 5, 6, 7: // update a random row
						if len(ref.rows) == 0 {
							continue
						}
						row := rng.Intn(len(ref.rows))
						k := rng.Uint64() % domain
						wantID, wantOK := ref.update(row, k)
						gotID, err := tb.Update(row, map[string]any{"k": k})
						if wantOK != (err == nil) {
							t.Fatalf("update(%d) err=%v wantOK=%v", row, err, wantOK)
						}
						if wantOK && gotID != wantID {
							t.Fatalf("update id %d want %d", gotID, wantID)
						}
					default: // delete a random row
						if len(ref.rows) == 0 {
							continue
						}
						row := rng.Intn(len(ref.rows))
						wantOK := ref.del(row)
						err := tb.Delete(row)
						if wantOK != (err == nil) {
							t.Fatalf("delete(%d) err=%v wantOK=%v", row, err, wantOK)
						}
					}
				}
				// Periodic merges with varied configurations.
				if step%5 == 4 {
					alg := core.Optimized
					if rng.Intn(2) == 0 {
						alg = core.Naive
					}
					if _, err := tb.Merge(context.Background(), MergeOptions{
						Algorithm: alg,
						Threads:   1 + rng.Intn(4),
						Strategy:  Strategy(rng.Intn(3)),
					}); err != nil {
						t.Fatal(err)
					}
					ref.reclaim()
				}
				checkEquiv(step)
			}
		})
	}
}

// TestModelBasedHistory verifies precise per-pin retention over a version
// chain: a merge keeps exactly the versions some live pin can see — each
// pinned epoch's visible version stays materializable with its original
// values after arbitrary merges — while versions whose [begin, end)
// interval contains no pinned epoch are reclaimed even though an older pin
// is still registered (the coarse min-pin watermark would have retained
// all of them).  Releasing pins then lets successive merges reclaim the
// versions only those pins protected.
func TestModelBasedHistory(t *testing.T) {
	tb, _ := New("h", Schema{{Name: "k", Type: Uint64}})
	rng := rand.New(rand.NewSource(9))
	row0, _ := tb.Insert([]any{uint64(0)})
	cur := row0
	// guard pins the epoch at which row0 is current: every merge below
	// must keep row0 materializable while guard is held.
	guard := tb.Snapshot()

	// 200 updates with a pinned snapshot every 25: the pinned versions
	// (plus row0 and the final current version) are the only survivors a
	// precise merge may keep.
	type pinned struct {
		view View
		row  int
		want uint64
	}
	var mids []pinned
	vals := map[int]uint64{row0: 0}
	for i := 1; i <= 200; i++ {
		v := rng.Uint64() % 1000
		nr, err := tb.Update(cur, map[string]any{"k": v})
		if err != nil {
			t.Fatal(err)
		}
		vals[nr] = v
		cur = nr
		if i%25 == 0 {
			mids = append(mids, pinned{view: tb.Snapshot(), row: cur, want: v})
		}
	}

	// One merge under all 9 pins (guard + 8 mids).  Dead versions: 200.
	// Kept dead: row0 (guard sees it) and the 7 superseded mid versions
	// (the 8th pinned version is the live current row) — so 192 reclaim
	// precisely.  The min-pin watermark sits at guard's epoch, below every
	// invalidation, so the old rule would have reclaimed nothing.
	rep, err := tb.Merge(context.Background(), MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadAtFreeze != 200 || rep.LivePins != 9 {
		t.Fatalf("DeadAtFreeze=%d LivePins=%d want 200/9", rep.DeadAtFreeze, rep.LivePins)
	}
	if rep.LegacyReclaimable != 0 {
		t.Fatalf("LegacyReclaimable=%d want 0", rep.LegacyReclaimable)
	}
	if rep.RowsReclaimed != 192 {
		t.Fatalf("RowsReclaimed=%d want 192", rep.RowsReclaimed)
	}

	h, _ := ColumnOf[uint64](tb, "k")
	checkPinnedVisible := func() {
		t.Helper()
		if got, err := h.Get(row0); err != nil || got != 0 {
			t.Fatalf("guarded row0: %d, %v", got, err)
		}
		if n := tb.ValidRowsAt(guard); n != 1 {
			t.Fatalf("ValidRowsAt(guard)=%d want 1", n)
		}
		for _, m := range mids {
			if got, err := h.Get(m.row); err != nil || got != m.want {
				t.Fatalf("pinned row %d: %d, %v (want %d)", m.row, got, err, m.want)
			}
			if n := tb.ValidRowsAt(m.view); n != 1 {
				t.Fatalf("ValidRowsAt(mid)=%d want 1", n)
			}
		}
	}
	checkPinnedVisible()

	// Unpinned versions are gone: their ids are retired for good.
	reclaimed := 0
	for row := range vals {
		if _, err := h.Get(row); errors.Is(err, ErrRowInvalid) {
			reclaimed++
		}
	}
	if reclaimed != 192 {
		t.Fatalf("reclaimed ids=%d want 192", reclaimed)
	}
	if tb.ValidRows() != 1 || !tb.IsValid(cur) {
		t.Fatalf("ValidRows=%d IsValid(cur)=%v want 1/true", tb.ValidRows(), tb.IsValid(cur))
	}

	// A second merge with the same pin set has nothing more to reclaim:
	// precise retention is stable, not monotone-forgetful.
	rep, err = tb.Merge(context.Background(), MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsReclaimed != 0 {
		t.Fatalf("idempotent merge reclaimed %d", rep.RowsReclaimed)
	}
	checkPinnedVisible()

	// Releasing the mid pins frees their 7 superseded versions; guard
	// still protects row0.
	for _, m := range mids {
		m.view.Release()
	}
	rep, err = tb.Merge(context.Background(), MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsReclaimed != 7 {
		t.Fatalf("after mid release: RowsReclaimed=%d want 7", rep.RowsReclaimed)
	}
	if got, err := h.Get(row0); err != nil || got != 0 {
		t.Fatalf("guarded row0 after mid release: %d, %v", got, err)
	}

	// Releasing guard frees the last dead version.
	guard.Release()
	rep, err = tb.Merge(context.Background(), MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsReclaimed != 1 {
		t.Fatalf("after guard release: RowsReclaimed=%d want 1", rep.RowsReclaimed)
	}
	if tb.Rows() != 1 || tb.RetiredRows() != 200 {
		t.Fatalf("rows=%d retired=%d want 1/200", tb.Rows(), tb.RetiredRows())
	}
	if got, err := h.Get(cur); err != nil || got != vals[cur] {
		t.Fatalf("current row after GC: %d, %v", got, err)
	}
}
