package table

import (
	"context"
	"fmt"
)

// This file implements the topology-independent store surface on the flat
// table: the method set shared with the sharded table (internal/shard) so
// both satisfy one Store interface at the package root.  A flat table is
// the degenerate one-partition case.

// CheckRow validates a row's arity and value types against the schema
// without inserting it.  InsertRows callers (and the sharded router) use it
// to reject a whole batch before any row lands.
func (t *Table) CheckRow(values []any) error {
	if len(values) != len(t.cols) {
		return fmt.Errorf("%w: got %d want %d", ErrArity, len(values), len(t.cols))
	}
	for i, v := range values {
		if err := t.cols[i].checkValue(v); err != nil {
			return err
		}
	}
	return nil
}

// InsertRows appends a batch of rows under one lock acquisition and returns
// their row ids in input order.  Every row is validated before any row is
// inserted, so a bad value rejects the whole batch and the table is
// untouched.
func (t *Table) InsertRows(rows [][]any) ([]int, error) {
	for _, values := range rows {
		if err := t.CheckRow(values); err != nil {
			return nil, err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed {
		return nil, ErrSealed
	}
	at := t.clock.Now()
	if t.olog != nil && len(rows) > 0 {
		at = t.olog.Append(t.insertRecs(rows))
	}
	ids := make([]int, len(rows))
	for i, values := range rows {
		ids[i] = t.insertLocked(values, at)
	}
	return ids, nil
}

// RequestMerge runs the merge process; on a flat table it is exactly Merge.
// It exists so flat and sharded tables expose merge control under one name
// (the sharded implementation fans out across shards).
func (t *Table) RequestMerge(ctx context.Context, opts MergeOptions) (Report, error) {
	return t.Merge(ctx, opts)
}

// Partitions returns the physical table partitions in order: the table
// itself for a flat table, one entry per shard for a sharded one.
func (t *Table) Partitions() []*Table { return []*Table{t} }

// StoreStats is the topology-independent statistics snapshot shared by
// flat and sharded tables: aggregate counts plus per-partition detail.
type StoreStats struct {
	Name string
	// Shards is the physical partition count (1 for a flat table).
	Shards int
	// KeyColumn is the hash-partitioning column ("" for a flat table).
	KeyColumn string
	Rows      int
	ValidRows int
	MainRows  int
	DeltaRows int
	SizeBytes int
	// RetiredRows counts row ids retired by garbage-collecting merges
	// across all partitions (cumulative); ReclaimedBytes estimates the
	// memory those reclaimed versions occupied.
	RetiredRows    int
	ReclaimedBytes int
	// Partitions holds each physical partition's full statistics in
	// partition order; a flat table has exactly one entry.
	Partitions []Stats
}

// StoreStats returns the unified statistics snapshot.
func (t *Table) StoreStats() StoreStats {
	s := t.Stats()
	return StoreStats{
		Name:           s.Name,
		Shards:         1,
		Rows:           s.Rows,
		ValidRows:      s.ValidRows,
		MainRows:       s.MainRows,
		DeltaRows:      s.DeltaRows,
		SizeBytes:      s.SizeBytes,
		RetiredRows:    s.RetiredRows,
		ReclaimedBytes: s.ReclaimedBytes,
		Partitions:     []Stats{s},
	}
}
