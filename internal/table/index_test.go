package table

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// newIndexTestTable returns a table with two uint64 columns carrying
// identical values ("a" indexed by the caller, "b" the scan shadow) and a
// string column to exercise non-numeric indexes.
func newIndexTestTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := New("idx", Schema{
		{Name: "a", Type: Uint64},
		{Name: "b", Type: Uint64},
		{Name: "s", Type: String},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func insertIdxRow(t *testing.T, tbl *Table, v uint64) int {
	t.Helper()
	id, err := tbl.Insert([]any{v, v, fmt.Sprintf("s%04d", v%97)})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func mustMerge(t *testing.T, tbl *Table) {
	t.Helper()
	if _, err := tbl.Merge(context.Background(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateIndexBasics(t *testing.T) {
	tbl := newIndexTestTable(t)
	if err := tbl.CreateIndex("nope"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("CreateIndex(nope) = %v, want ErrNoColumn", err)
	}
	for i := 0; i < 100; i++ {
		insertIdxRow(t, tbl, uint64(i%7))
	}
	mustMerge(t, tbl)
	if tbl.Indexed("a") {
		t.Fatal("indexed before CreateIndex")
	}
	if err := tbl.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("a"); err != nil { // idempotent
		t.Fatal(err)
	}
	if !tbl.Indexed("a") || tbl.Indexed("b") {
		t.Fatalf("Indexed: a=%v b=%v", tbl.Indexed("a"), tbl.Indexed("b"))
	}
	st := tbl.IndexStats()
	if len(st) != 1 || st[0].Column != "a" {
		t.Fatalf("IndexStats = %+v", st)
	}
	if st[0].Postings != 100 || st[0].Builds != 1 || st[0].SizeBytes == 0 {
		t.Fatalf("IndexStats[0] = %+v", st[0])
	}
	// A merge rebuilds the index over the merged main.
	insertIdxRow(t, tbl, 3)
	mustMerge(t, tbl)
	st = tbl.IndexStats()
	if st[0].Postings != 101 || st[0].Builds != 2 {
		t.Fatalf("after merge: %+v", st[0])
	}
}

// checkIndexedAgainstShadow asserts byte-identical answers between the
// indexed column "a" and the never-indexed shadow column "b" for point,
// range and count reads at the given view.
func checkIndexedAgainstShadow(t *testing.T, tbl *Table, view View, probes []uint64) {
	t.Helper()
	ha, err := ColumnOf[uint64](tbl, "a")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := ColumnOf[uint64](tbl, "b")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range probes {
		got, want := ha.LookupAt(view, v), hb.LookupAt(view, v)
		if len(got) != len(want) {
			t.Fatalf("LookupAt(%d): indexed %d rows, scan %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("LookupAt(%d)[%d]: indexed %d, scan %d", v, i, got[i], want[i])
			}
		}
		if gc, wc := ha.CountEqualAt(view, v), hb.CountEqualAt(view, v); gc != wc {
			t.Fatalf("CountEqualAt(%d): indexed %d, scan %d", v, gc, wc)
		}
		lo, hi := v, v+13
		gr, wr := ha.RangeAt(view, lo, hi), hb.RangeAt(view, lo, hi)
		if len(gr) != len(wr) {
			t.Fatalf("RangeAt(%d,%d): indexed %d rows, scan %d", lo, hi, len(gr), len(wr))
		}
		for i := range gr {
			if gr[i] != wr[i] {
				t.Fatalf("RangeAt(%d,%d)[%d]: indexed %d, scan %d", lo, hi, i, gr[i], wr[i])
			}
		}
	}
}

func TestIndexedReadsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := newIndexTestTable(t)
	tbl.SetGC(true)
	ids := make([]int, 0, 4096)
	for i := 0; i < 1000; i++ {
		ids = append(ids, insertIdxRow(t, tbl, uint64(rng.Intn(50))))
	}
	mustMerge(t, tbl)
	if err := tbl.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("s"); err != nil {
		t.Fatal(err)
	}
	// Churn: updates, deletes, fresh inserts — some merged, some left in the
	// delta — with snapshots taken along the way.
	views := []View{tbl.Snapshot()}
	for round := 0; round < 4; round++ {
		for i := 0; i < 300; i++ {
			switch rng.Intn(3) {
			case 0:
				ids = append(ids, insertIdxRow(t, tbl, uint64(rng.Intn(50))))
			case 1:
				id := ids[rng.Intn(len(ids))]
				if nid, err := tbl.Update(id, map[string]any{"a": uint64(rng.Intn(50)), "b": uint64(0)}); err == nil {
					// Keep a and b identical: Update overlays both columns.
					v, _ := tbl.Row(nid)
					if _, err := tbl.Update(nid, map[string]any{"b": v[0]}); err != nil {
						t.Fatal(err)
					}
				}
			case 2:
				_ = tbl.Delete(ids[rng.Intn(len(ids))])
			}
		}
		views = append(views, tbl.Snapshot())
		if round%2 == 0 {
			mustMerge(t, tbl)
		}
	}
	probes := []uint64{0, 7, 23, 49, 50, 99}
	for _, view := range views {
		checkIndexedAgainstShadow(t, tbl, view, probes)
	}
	checkIndexedAgainstShadow(t, tbl, Latest(), probes)
	// String column: indexed lookups against a linear scan of row values.
	hs, err := ColumnOf[string](tbl, "s")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"s0000", "s0033", "s0096", "zzz"} {
		got := hs.Lookup(p)
		want := 0
		hs.Scan(func(_ int, v string) bool {
			if v == p {
				want++
			}
			return true
		})
		if len(got) != want {
			t.Fatalf("string Lookup(%q): %d rows, scan %d", p, len(got), want)
		}
	}
	for _, v := range views {
		v.Release()
	}
}

func TestIndexSurvivesMergeAbort(t *testing.T) {
	tbl := newIndexTestTable(t)
	for i := 0; i < 500; i++ {
		insertIdxRow(t, tbl, uint64(i%11))
	}
	mustMerge(t, tbl)
	if err := tbl.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	before := tbl.IndexStats()[0]
	for i := 0; i < 100; i++ {
		insertIdxRow(t, tbl, uint64(i%11))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := tbl.Merge(ctx, MergeOptions{})
	if err == nil || !rep.Aborted {
		t.Fatalf("merge did not abort: rep=%+v err=%v", rep, err)
	}
	if !tbl.Indexed("a") {
		t.Fatal("index lost after merge abort")
	}
	after := tbl.IndexStats()[0]
	if after.Postings != before.Postings || after.Builds != before.Builds {
		t.Fatalf("abort changed index stats: %+v -> %+v", before, after)
	}
	checkIndexedAgainstShadow(t, tbl, Latest(), []uint64{0, 5, 10, 11})
	// The next successful merge folds the delta in and rebuilds.
	mustMerge(t, tbl)
	after = tbl.IndexStats()[0]
	if after.Postings != 600 || after.Builds != before.Builds+1 {
		t.Fatalf("post-recovery stats: %+v", after)
	}
	checkIndexedAgainstShadow(t, tbl, Latest(), []uint64{0, 5, 10, 11})
}

// TestIndexDifferentialUnderChurn runs concurrent writers, GC merges and a
// late CreateIndex against continuous indexed-vs-scan comparisons.  Run
// with -race; pinned snapshots keep each comparison's epoch stable while
// merges and GC proceed.
func TestIndexDifferentialUnderChurn(t *testing.T) {
	tbl := newIndexTestTable(t)
	tbl.SetGC(true)
	for i := 0; i < 2000; i++ {
		insertIdxRow(t, tbl, uint64(i%101))
	}
	mustMerge(t, tbl)
	if err := tbl.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Writer: inserts, paired updates keeping a == b, deletes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		ids := make([]int, 0, 1024)
		for i := 0; !stop.Load(); i++ {
			v := uint64(rng.Intn(101))
			id, err := tbl.Insert([]any{v, v, "w"})
			if err != nil {
				t.Error(err)
				return
			}
			ids = append(ids, id)
			if len(ids) > 4 && i%3 == 0 {
				nv := uint64(rng.Intn(101))
				// Update both columns in one call so every row version
				// keeps a == b (updates are atomic per row).
				_, _ = tbl.Update(ids[rng.Intn(len(ids))], map[string]any{"a": nv, "b": nv})
			}
			if len(ids) > 8 && i%7 == 0 {
				_ = tbl.Delete(ids[rng.Intn(len(ids))])
			}
		}
	}()
	// Merger: continuous GC merges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_, err := tbl.Merge(context.Background(), MergeOptions{})
			if err != nil && !errors.Is(err, ErrMergeInProgress) {
				t.Error(err)
				return
			}
		}
	}()
	// Readers: pinned-snapshot comparisons.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ha, _ := ColumnOf[uint64](tbl, "a")
			hb, _ := ColumnOf[uint64](tbl, "b")
			for !stop.Load() {
				view := tbl.Snapshot()
				v := uint64(rng.Intn(110))
				la, lb := ha.LookupAt(view, v), hb.LookupAt(view, v)
				if len(la) != len(lb) {
					t.Errorf("Lookup(%d): indexed %v scan %v", v, la, lb)
				}
				if ca, cb := ha.CountEqualAt(view, v), hb.CountEqualAt(view, v); ca != cb {
					t.Errorf("Count(%d): indexed %d scan %d", v, ca, cb)
				}
				ra, rb := ha.RangeAt(view, v, v+9), hb.RangeAt(view, v, v+9)
				if len(ra) != len(rb) {
					t.Errorf("Range(%d): indexed %v scan %v", v, ra, rb)
				}
				view.Release()
			}
		}(int64(r))
	}
	const iters = 400
	for i := 0; i < iters; i++ {
		view := tbl.Snapshot()
		checkIndexedAgainstShadow(t, tbl, view, []uint64{uint64(i % 105)})
		view.Release()
	}
	stop.Store(true)
	wg.Wait()
	// Quiesced final check.
	checkIndexedAgainstShadow(t, tbl, Latest(), []uint64{0, 50, 100, 101, 200})
}
