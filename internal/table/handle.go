package table

import (
	"fmt"

	"hyrise/internal/kernel"
	"hyrise/internal/val"
)

// Handle is a typed view of one column, providing the read operations of
// the paper's workload taxonomy (§2): key lookups, table scans and range
// selects.  All operations span the main partition, the frozen delta and
// the second delta.  The methods without an At suffix filter to current
// (latest-version) rows; each has an At variant taking a View that filters
// to the rows visible at the view's epoch instead, so a multi-operation
// read plan can run against one frozen state while writers proceed.
//
// Lookups use the main dictionary's binary search plus the delta's CSB+
// tree; scans stream the compressed codes and materialize delta values —
// the "forced materialization" read penalty of uncompressed deltas the
// paper describes in §4.
type Handle[V val.Value] struct {
	t   *Table
	idx int
}

// ColumnOf resolves a typed handle for the named column.  The type
// parameter must match the column's declared type (uint32, uint64 or
// string).
func ColumnOf[V val.Value](t *Table, name string) (*Handle[V], error) {
	i, err := t.columnIndex(name)
	if err != nil {
		return nil, err
	}
	if _, ok := t.cols[i].(*typedColumn[V]); !ok {
		var v V
		return nil, fmt.Errorf("table: column %q is %v, not %T",
			name, t.schema[i].Type, v)
	}
	return &Handle[V]{t: t, idx: i}, nil
}

func (h *Handle[V]) col() *typedColumn[V] {
	return h.t.cols[h.idx].(*typedColumn[V])
}

// Get returns the value of the column at the given row id (valid or not).
// A row reclaimed by garbage collection fails with ErrRowInvalid.
func (h *Handle[V]) Get(row int) (V, error) {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	slot, err := h.t.slotFor(row)
	if err != nil {
		var zero V
		return zero, err
	}
	v, ok := h.col().getTyped(slot)
	if !ok {
		return v, fmt.Errorf("%w: %d", ErrRowRange, row)
	}
	return v, nil
}

// Lookup returns the row ids of current rows whose value equals v — the
// key lookup of Figure 1.
func (h *Handle[V]) Lookup(v V) []int { return h.LookupAt(Latest(), v) }

// LookupAt is Lookup against the rows visible at the view's epoch.  The
// main partition is searched through its dictionary (one binary search,
// then a vectorized code scan); the deltas through their CSB+ trees (no
// scan at all).
func (h *Handle[V]) LookupAt(view View, v V) []int {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	e := view.resolve()
	c := h.col()
	begin, end := h.t.epochs.Raw()
	var rows []int
	// The group-key index, when present, replaces the code-vector scan with
	// a posting-list copy; both paths yield the same ascending positions,
	// which are visibility-filtered and only then mapped through ids.
	var sel []int32
	if c.main.Index() != nil {
		h.t.routeIndexed.Add(1)
		sel = c.main.SelEqualIndexed(v, nil)
	} else {
		h.t.routeScanned.Add(1)
		sel = c.main.SelEqual(v, nil)
	}
	sel = kernel.FilterVisible(sel, begin, end, e)
	for _, p := range sel {
		rows = append(rows, h.t.ids[p])
	}
	base := c.main.Len()
	if tids, ok := c.dlt.Find(v); ok {
		for _, tid := range tids {
			if r := base + int(tid); h.t.epochs.VisibleAt(r, e) {
				rows = append(rows, h.t.ids[r])
			}
		}
	}
	if c.dlt2 != nil {
		base2 := base + c.dlt.Len()
		if tids, ok := c.dlt2.Find(v); ok {
			for _, tid := range tids {
				if r := base2 + int(tid); h.t.epochs.VisibleAt(r, e) {
					rows = append(rows, h.t.ids[r])
				}
			}
		}
	}
	return rows
}

// Range returns the row ids of current rows whose value lies in [lo, hi] —
// the range select of Figure 1.
func (h *Handle[V]) Range(lo, hi V) []int { return h.RangeAt(Latest(), lo, hi) }

// RangeAt is Range against the rows visible at the view's epoch.
func (h *Handle[V]) RangeAt(view View, lo, hi V) []int {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	e := view.resolve()
	c := h.col()
	begin, end := h.t.epochs.Raw()
	var rows []int
	indexed := c.main.Index() != nil
	var sel []int32
	if indexed {
		h.t.routeIndexed.Add(1)
		sel = c.main.SelRangeIndexed(lo, hi, nil)
	} else {
		h.t.routeScanned.Add(1)
		sel = c.main.SelRange(lo, hi, nil)
	}
	sel = kernel.FilterVisible(sel, begin, end, e)
	for _, p := range sel {
		rows = append(rows, h.t.ids[p])
	}
	base := c.main.Len()
	if indexed {
		// Delta side of an indexed column: bounded CSB+ traversal instead
		// of a value scan.  FindRange returns ascending positions, so the
		// output order matches the scan path exactly.
		for _, tid := range c.dlt.FindRange(lo, hi, nil) {
			if r := base + int(tid); h.t.epochs.VisibleAt(r, e) {
				rows = append(rows, h.t.ids[r])
			}
		}
	} else {
		for i, v := range c.dlt.Values() {
			if v >= lo && v <= hi && h.t.epochs.VisibleAt(base+i, e) {
				rows = append(rows, h.t.ids[base+i])
			}
		}
	}
	if c.dlt2 != nil {
		base2 := base + c.dlt.Len()
		if indexed {
			for _, tid := range c.dlt2.FindRange(lo, hi, nil) {
				if r := base2 + int(tid); h.t.epochs.VisibleAt(r, e) {
					rows = append(rows, h.t.ids[r])
				}
			}
		} else {
			for i, v := range c.dlt2.Values() {
				if v >= lo && v <= hi && h.t.epochs.VisibleAt(base2+i, e) {
					rows = append(rows, h.t.ids[base2+i])
				}
			}
		}
	}
	return rows
}

// Scan streams every current row's value through fn — the table scan of
// Figure 1.  Main-partition values are materialized through the
// dictionary; delta values are read directly.  Iteration stops early if fn
// returns false.
//
// fn runs with the table's read lock held and must not call back into the
// table (Get, Row, other handles): a concurrent writer queued between the
// two acquisitions would deadlock the re-entrant read.  Collect row ids in
// fn and read other columns after the scan returns — row versions are
// immutable, so the values cannot change in between.
func (h *Handle[V]) Scan(fn func(row int, v V) bool) { h.ScanAt(Latest(), fn) }

// ScanAt is Scan against the rows visible at the view's epoch.  The main
// partition runs block-at-a-time: a visibility selection vector over the
// raw epoch columns, then a gather of the selected codes (internal/kernel)
// instead of a per-row decode-and-check loop.
func (h *Handle[V]) ScanAt(view View, fn func(row int, v V) bool) {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	e := view.resolve()
	c := h.col()
	nm := c.main.Len()
	begin, end := h.t.epochs.Raw()
	dict := c.main.Dict()
	sel := kernel.SelectVisible(begin, end, e, 0, nm, nil)
	stopped := false
	kernel.Gather(c.main.Codes(), sel, func(pos int32, code uint64) bool {
		if !fn(h.t.ids[pos], dict.At(int(code))) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for i, v := range c.dlt.Values() {
		if row := nm + i; h.t.epochs.VisibleAt(row, e) {
			if !fn(h.t.ids[row], v) {
				return
			}
		}
	}
	if c.dlt2 != nil {
		base2 := nm + c.dlt.Len()
		for i, v := range c.dlt2.Values() {
			if row := base2 + i; h.t.epochs.VisibleAt(row, e) {
				if !fn(h.t.ids[row], v) {
					return
				}
			}
		}
	}
}

// CountEqual returns the number of current rows with value v.
func (h *Handle[V]) CountEqual(v V) int { return h.CountEqualAt(Latest(), v) }

// CountEqualAt is CountEqual at the view's epoch.  The main partition is
// counted with the fused match+visibility kernel — no selection vector or
// row-id mapping is materialized.
func (h *Handle[V]) CountEqualAt(view View, v V) int {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	e := view.resolve()
	c := h.col()
	begin, end := h.t.epochs.Raw()
	n := 0
	if code, ok := c.main.LookupCode(v); ok {
		if p := c.main.Index(); p != nil {
			// Count visible entries of the posting list directly; Bucket
			// aliases the index, so the read-only counting kernel is used
			// rather than the in-place filter.
			h.t.routeIndexed.Add(1)
			n = kernel.CountSelVisible(p.Bucket(code), begin, end, e)
		} else {
			h.t.routeScanned.Add(1)
			n = kernel.CountEqual(c.main.Codes(), code, begin, end, e)
		}
	}
	base := c.main.Len()
	if tids, ok := c.dlt.Find(v); ok {
		for _, tid := range tids {
			if h.t.epochs.VisibleAt(base+int(tid), e) {
				n++
			}
		}
	}
	if c.dlt2 != nil {
		base2 := base + c.dlt.Len()
		if tids, ok := c.dlt2.Find(v); ok {
			for _, tid := range tids {
				if h.t.epochs.VisibleAt(base2+int(tid), e) {
					n++
				}
			}
		}
	}
	return n
}

// Indexed reports whether the column's main partition currently carries a
// group-key index (attached by Table.CreateIndex and rebuilt by merges).
func (h *Handle[V]) Indexed() bool {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	return h.col().main.Index() != nil
}

// EstimateEqual estimates how many row versions match v, and whether the
// probe would be served by indexes (group-key main + CSB+ delta) rather
// than a scan.  Indexed estimates are exact pre-visibility counts; the
// unindexed main estimate assumes a uniform value distribution.  The query
// planner uses this to pick the cheapest driving predicate.
func (h *Handle[V]) EstimateEqual(v V) (rows int, indexed bool) {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	c := h.col()
	if p := c.main.Index(); p != nil {
		indexed = true
		if code, ok := c.main.LookupCode(v); ok {
			rows = len(p.Bucket(code))
		}
	} else if d := c.main.Dict().Len(); d > 0 {
		rows = c.main.Len() / d
	}
	if tids, ok := c.dlt.Find(v); ok {
		rows += len(tids)
	}
	if c.dlt2 != nil {
		if tids, ok := c.dlt2.Find(v); ok {
			rows += len(tids)
		}
	}
	return rows, indexed
}

// EstimateRange is EstimateEqual for the inclusive value range [lo, hi].
// The main-side code interval gives the exact pre-visibility count when
// indexed (O(1) via the posting starts) and an interval-proportional
// estimate otherwise; the delta contribution is scaled by the same value
// fraction.
func (h *Handle[V]) EstimateRange(lo, hi V) (rows int, indexed bool) {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	c := h.col()
	d := c.main.Dict()
	cLo, cHi := uint64(d.LowerBound(lo)), uint64(d.UpperBound(hi))
	if p := c.main.Index(); p != nil {
		indexed = true
		rows = p.CountRange(cLo, cHi)
	} else if d.Len() > 0 {
		rows = c.main.Len() * int(cHi-cLo) / d.Len()
	}
	if nd := c.deltaLen(); nd > 0 {
		if d.Len() > 0 {
			rows += nd * int(cHi-cLo) / d.Len()
		} else {
			rows += nd
		}
	}
	return rows, indexed
}

// Gather appends the values of the given row ids to dst in order, under a
// single lock acquisition.  Multi-column query refinement uses it to read
// one column for a whole candidate set instead of paying one lock round
// trip per row (see internal/query).
func (h *Handle[V]) Gather(rows []int, dst []V) ([]V, error) {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	c := h.col()
	for _, row := range rows {
		slot, err := h.t.slotFor(row)
		if err != nil {
			return dst, err
		}
		v, ok := c.getTyped(slot)
		if !ok {
			return dst, fmt.Errorf("%w: %d", ErrRowRange, row)
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// Distinct returns the number of distinct values among all stored row
// versions (main dictionary merged with delta uniques; an upper bound on
// the post-merge dictionary size).  It spans the full version history, so
// it is view-independent.
func (h *Handle[V]) Distinct() int {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	c := h.col()
	seen := make(map[V]struct{}, c.main.Dict().Len()+c.dlt.Unique())
	for _, v := range c.main.Dict().Values() {
		seen[v] = struct{}{}
	}
	for _, v := range c.dlt.Values() {
		seen[v] = struct{}{}
	}
	if c.dlt2 != nil {
		for _, v := range c.dlt2.Values() {
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}

// NumericHandle adds aggregations that require integer values.
type NumericHandle[V interface{ ~uint32 | ~uint64 }] struct {
	*Handle[V]
}

// NumericColumnOf resolves a handle with aggregation support.
func NumericColumnOf[V interface{ ~uint32 | ~uint64 }](t *Table, name string) (*NumericHandle[V], error) {
	h, err := ColumnOf[V](t, name)
	if err != nil {
		return nil, err
	}
	return &NumericHandle[V]{Handle: h}, nil
}

// Sum aggregates the column over current rows — the analytic aggregation
// query of §2 ("large sequential scans spanning few columns").
func (h *NumericHandle[V]) Sum() uint64 { return h.SumAt(Latest()) }

// SumAt aggregates the column over the rows visible at the view's epoch.
// The main partition reduces through the code histogram: count each code's
// visible occurrences, then take the dot product with the sorted
// dictionary — the column is summed without materializing a single row.
// Very large dictionaries (wider than the visible row count) gather codes
// directly instead.
func (h *NumericHandle[V]) SumAt(view View) uint64 {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	e := view.resolve()
	c := h.col()
	begin, end := h.t.epochs.Raw()
	nm := c.main.Len()
	d := c.main.Dict()
	var sum uint64
	sel := kernel.SelectVisible(begin, end, e, 0, nm, nil)
	if len(sel) > 0 {
		if d.Len() <= len(sel) {
			counts := make([]int, d.Len())
			kernel.Histogram(c.main.Codes(), sel, counts)
			for code, cnt := range counts {
				if cnt != 0 {
					sum += uint64(d.At(code)) * uint64(cnt)
				}
			}
		} else {
			kernel.Gather(c.main.Codes(), sel, func(_ int32, code uint64) bool {
				sum += uint64(d.At(int(code)))
				return true
			})
		}
	}
	sum += sumDelta(c.dlt.Values(), begin, end, e, nm)
	if c.dlt2 != nil {
		sum += sumDelta(c.dlt2.Values(), begin, end, e, nm+c.dlt.Len())
	}
	return sum
}

func sumDelta[V interface{ ~uint32 | ~uint64 }](vals []V, begin, end []uint64, e uint64, base int) uint64 {
	var sum uint64
	for _, p := range kernel.SelectVisible(begin, end, e, base, base+len(vals), nil) {
		sum += uint64(vals[int(p)-base])
	}
	return sum
}

// Min returns the smallest value over current rows; ok is false for an
// effectively empty column.
func (h *NumericHandle[V]) Min() (V, bool) { return h.MinAt(Latest()) }

// MinAt is Min at the view's epoch.
func (h *NumericHandle[V]) MinAt(view View) (V, bool) {
	mn, _, ok := h.minMaxAt(view)
	return mn, ok
}

// Max returns the largest value over current rows.
func (h *NumericHandle[V]) Max() (V, bool) { return h.MaxAt(Latest()) }

// MaxAt is Max at the view's epoch.
func (h *NumericHandle[V]) MaxAt(view View) (V, bool) {
	_, mx, ok := h.minMaxAt(view)
	return mx, ok
}

// minMaxAt computes both extremes in one pass.  The main partition's
// min/max code IS its min/max value (order-preserving dictionary), so the
// kernel reduces over codes and pays exactly two dictionary accesses.
func (h *NumericHandle[V]) minMaxAt(view View) (mn, mx V, ok bool) {
	h.t.mu.RLock()
	defer h.t.mu.RUnlock()
	e := view.resolve()
	c := h.col()
	begin, end := h.t.epochs.Raw()
	nm := c.main.Len()
	sel := kernel.SelectVisible(begin, end, e, 0, nm, nil)
	if cMin, cMax, found := kernel.MinMaxSel(c.main.Codes(), sel); found {
		d := c.main.Dict()
		mn, mx, ok = d.At(int(cMin)), d.At(int(cMax)), true
	}
	mn, mx, ok = minMaxDelta(c.dlt.Values(), begin, end, e, nm, mn, mx, ok)
	if c.dlt2 != nil {
		mn, mx, ok = minMaxDelta(c.dlt2.Values(), begin, end, e, nm+c.dlt.Len(), mn, mx, ok)
	}
	return mn, mx, ok
}

func minMaxDelta[V interface{ ~uint32 | ~uint64 }](vals []V, begin, end []uint64, e uint64, base int, mn, mx V, ok bool) (V, V, bool) {
	for _, p := range kernel.SelectVisible(begin, end, e, base, base+len(vals), nil) {
		v := vals[int(p)-base]
		if !ok {
			mn, mx, ok = v, v, true
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx, ok
}
