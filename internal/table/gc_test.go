package table

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func gcTestTable(t *testing.T) (*Table, *NumericHandle[uint64]) {
	t.Helper()
	tb, err := New("gc", Schema{
		{Name: "k", Type: Uint64},
		{Name: "v", Type: Uint64},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NumericColumnOf[uint64](tb, "v")
	if err != nil {
		t.Fatal(err)
	}
	return tb, h
}

// TestGCBoundedUnderUpdates is the acceptance loop: a sustained 100%
// update workload with no pinned views must keep Rows-ValidRows and
// SizeBytes bounded across >= 10 merge cycles instead of growing with the
// number of updates ever applied.
func TestGCBoundedUnderUpdates(t *testing.T) {
	tb, _ := gcTestTable(t)
	const n = 200
	ids := make([]int, n)
	for i := range ids {
		id, err := tb.Insert([]any{uint64(i), uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	baseSize := tb.Stats().SizeBytes

	totalReclaimed := 0
	for cycle := 0; cycle < 12; cycle++ {
		for i := range ids {
			nid, err := tb.Update(ids[i], map[string]any{"v": uint64(cycle*n + i)})
			if err != nil {
				t.Fatalf("cycle %d row %d: %v", cycle, i, err)
			}
			ids[i] = nid
		}
		rep, err := tb.Merge(context.Background(), MergeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		totalReclaimed += rep.RowsReclaimed
		// Every update invalidated one version; with nothing pinned, the
		// merge reclaims all of them.
		if rep.RowsReclaimed != n {
			t.Fatalf("cycle %d: reclaimed %d want %d", cycle, rep.RowsReclaimed, n)
		}
		if got := tb.Rows() - tb.ValidRows(); got != 0 {
			t.Fatalf("cycle %d: %d dead versions survive the merge", cycle, got)
		}
		if tb.Rows() != n {
			t.Fatalf("cycle %d: physical rows %d want %d", cycle, tb.Rows(), n)
		}
		if size := tb.Stats().SizeBytes; size > 4*baseSize {
			t.Fatalf("cycle %d: size %d grew past 4x the post-seed size %d", cycle, size, baseSize)
		}
	}
	if tb.RetiredRows() != totalReclaimed || totalReclaimed != 12*n {
		t.Fatalf("retired %d, reclaimed %d, want %d", tb.RetiredRows(), totalReclaimed, 12*n)
	}
	if tb.ReclaimedBytes() == 0 {
		t.Fatal("ReclaimedBytes not accounted")
	}
	if tb.GCWatermark() == 0 {
		t.Fatal("GCWatermark not recorded")
	}
}

// TestGCRetiredIDSemantics verifies the retired-id contract: operations on
// a reclaimed id return ErrRowInvalid forever, and retired ids are never
// handed out again.
func TestGCRetiredIDSemantics(t *testing.T) {
	tb, h := gcTestTable(t)
	id, err := tb.Insert([]any{uint64(1), uint64(10)})
	if err != nil {
		t.Fatal(err)
	}
	nid, err := tb.Update(id, map[string]any{"v": uint64(11)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	// id was reclaimed; nid survives.
	if _, err := tb.Row(id); !errors.Is(err, ErrRowInvalid) {
		t.Fatalf("Row(retired): %v want ErrRowInvalid", err)
	}
	if _, err := tb.Update(id, map[string]any{"v": uint64(0)}); !errors.Is(err, ErrRowInvalid) {
		t.Fatalf("Update(retired): %v want ErrRowInvalid", err)
	}
	if err := tb.Delete(id); !errors.Is(err, ErrRowInvalid) {
		t.Fatalf("Delete(retired): %v want ErrRowInvalid", err)
	}
	if _, err := h.Get(id); !errors.Is(err, ErrRowInvalid) {
		t.Fatalf("Get(retired): %v want ErrRowInvalid", err)
	}
	if tb.IsValid(id) {
		t.Fatal("retired id reports valid")
	}
	if tb.VisibleAt(Latest(), id) {
		t.Fatal("retired id visible")
	}
	// Out-of-range ids still fail with ErrRowRange, not ErrRowInvalid.
	if _, err := tb.Row(tb.NextRowID()); !errors.Is(err, ErrRowRange) {
		t.Fatalf("Row(unallocated): %v want ErrRowRange", err)
	}
	// New inserts never reuse a retired id.
	fresh, err := tb.Insert([]any{uint64(2), uint64(20)})
	if err != nil {
		t.Fatal(err)
	}
	if fresh == id || fresh <= nid {
		t.Fatalf("fresh id %d reuses or precedes earlier ids (%d, %d)", fresh, id, nid)
	}
	// The survivor reads back exactly.
	if v, err := h.Get(nid); err != nil || v != 11 {
		t.Fatalf("survivor value %d, %v", v, err)
	}
}

// TestGCPinnedViewProtects verifies the watermark contract: a pinned view
// keeps every version it can see through arbitrary merges, and releasing
// it lets the next merge reclaim them.
func TestGCPinnedViewProtects(t *testing.T) {
	tb, h := gcTestTable(t)
	const n = 50
	ids := make([]int, n)
	var wantSum uint64
	for i := range ids {
		id, err := tb.Insert([]any{uint64(i), uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		wantSum += uint64(i)
	}
	view := tb.Snapshot()

	// Churn: every row updated twice and a few deleted, with merges in
	// between.
	for round := 0; round < 2; round++ {
		for i := range ids {
			nid, err := tb.Update(ids[i], map[string]any{"v": uint64(1000 + i)})
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = nid
		}
		if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := tb.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}

	// The pinned view still reads its exact original row set.
	if got := tb.ValidRowsAt(view); got != n {
		t.Fatalf("pinned view sees %d rows, want %d", got, n)
	}
	if got := h.SumAt(view); got != wantSum {
		t.Fatalf("pinned view sum %d want %d", got, wantSum)
	}

	// Release and merge: everything below the current epoch is dead now.
	view.Release()
	rep, err := tb.Merge(context.Background(), MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsReclaimed == 0 {
		t.Fatal("release did not unpin history")
	}
	if tb.Rows() != tb.ValidRows() {
		t.Fatalf("dead versions survive after release: %d/%d", tb.Rows(), tb.ValidRows())
	}
	// The released view silently lost its reclaimed rows (documented).
	if got := tb.ValidRowsAt(view); got >= n {
		t.Fatalf("released view still sees %d rows", got)
	}
}

// TestGCDisabled verifies both off-switches: SetGC(false) and
// MergeOptions.DisableGC keep dead versions through merges.
func TestGCDisabled(t *testing.T) {
	for name, setup := range map[string]func(*Table) MergeOptions{
		"SetGC":     func(tb *Table) MergeOptions { tb.SetGC(false); return MergeOptions{} },
		"DisableGC": func(tb *Table) MergeOptions { return MergeOptions{DisableGC: true} },
	} {
		t.Run(name, func(t *testing.T) {
			tb, h := gcTestTable(t)
			id, _ := tb.Insert([]any{uint64(1), uint64(10)})
			nid, _ := tb.Update(id, map[string]any{"v": uint64(11)})
			opts := setup(tb)
			rep, err := tb.Merge(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.RowsReclaimed != 0 || tb.Rows() != 2 || tb.RetiredRows() != 0 {
				t.Fatalf("GC ran while disabled: reclaimed=%d rows=%d retired=%d",
					rep.RowsReclaimed, tb.Rows(), tb.RetiredRows())
			}
			// Old version still materializable: the insert-only history.
			if v, err := h.Get(id); err != nil || v != 10 {
				t.Fatalf("history lost: %d, %v", v, err)
			}
			_ = nid
		})
	}
}

// TestGCDictionaryCompaction: values referenced only by reclaimed versions
// leave the merged dictionary.
func TestGCDictionaryCompaction(t *testing.T) {
	tb, h := gcTestTable(t)
	id, _ := tb.Insert([]any{uint64(1), uint64(111)})
	for i := 0; i < 100; i++ {
		var err error
		if id, err = tb.Update(id, map[string]any{"v": uint64(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	// 101 versions stored, 100 reclaimed: exactly one value survives, so
	// the main dictionary must hold exactly one entry.
	if got := h.Distinct(); got != 1 {
		t.Fatalf("distinct values after GC merge: %d want 1", got)
	}
	st := tb.Stats()
	if st.Columns[1].UniqueMain != 1 {
		t.Fatalf("main dictionary holds %d values, want 1", st.Columns[1].UniqueMain)
	}
}

// TestGCRaceStress runs concurrent updaters and deleters against a merge
// loop while a pinned view's read set is continuously verified — the
// -race half of the GC correctness suite.
func TestGCRaceStress(t *testing.T) {
	tb, h := gcTestTable(t)
	const n = 128
	ids := make([]atomic.Int64, n)
	var wantSum uint64
	for i := 0; i < n; i++ {
		id, err := tb.Insert([]any{uint64(i), uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i].Store(int64(id))
		wantSum += uint64(i)
	}
	view := tb.Snapshot()

	stop := make(chan struct{})
	var updates atomic.Int64
	var wg sync.WaitGroup
	// Writers: each owns a stripe of rows and updates them continuously.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := w; i < n; i += 4 {
					nid, err := tb.Update(int(ids[i].Load()), map[string]any{"v": uint64(round)})
					if err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					ids[i].Store(int64(nid))
					updates.Add(1)
				}
			}
		}(w)
	}
	// Merger: garbage-collecting merges back to back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := tb.Merge(context.Background(), MergeOptions{Threads: 2}); err != nil &&
				!errors.Is(err, ErrMergeInProgress) {
				t.Errorf("merge: %v", err)
				return
			}
		}
	}()
	// Reader: the pinned view must stay frozen through all of it.  Keep
	// checking until the writers have churned the whole table a few times
	// over, so merges demonstrably ran against real invalidation load.
	for check := 0; check < 50 || updates.Load() < 4*n; check++ {
		if got := tb.ValidRowsAt(view); got != n {
			t.Errorf("check %d: pinned view sees %d rows want %d", check, got, n)
			break
		}
		if got := h.SumAt(view); got != wantSum {
			t.Errorf("check %d: pinned view sum %d want %d", check, got, wantSum)
			break
		}
	}
	close(stop)
	wg.Wait()
	view.Release()

	// Quiesced: one final merge reclaims everything dead.
	if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != tb.ValidRows() || tb.ValidRows() != n {
		t.Fatalf("after final merge: rows=%d valid=%d want %d", tb.Rows(), tb.ValidRows(), n)
	}
	if tb.RetiredRows() == 0 {
		t.Fatal("stress reclaimed nothing")
	}
}
