package table

import (
	"fmt"
	"time"

	"hyrise/internal/colstore"
	"hyrise/internal/core"
	"hyrise/internal/delta"
	"hyrise/internal/index"
	"hyrise/internal/val"
)

// column is the type-erased view of a typed column that Table manages.
// Methods are called with Table.mu held (write-held for mutations) except
// runMerge, which reads only the frozen snapshot and may run unlocked.
type column interface {
	def() ColumnDef
	checkValue(v any) error
	appendValue(v any)
	get(row int) any
	mainLen() int
	deltaLen() int
	stats() ColumnStats

	// Group-key index maintenance; see Table.CreateIndex for the locking
	// protocol.  buildMainIndex reads only the immutable main, so it may
	// run without Table.mu as long as the merge lock pins the main pointer;
	// attachIndex and indexStats require Table.mu (write/read).
	indexed() bool
	buildMainIndex() *index.Postings
	attachIndex(p *index.Postings)
	indexStats() IndexStats

	// Merge pipeline; see Table.Merge for the locking protocol.  drop is
	// the table's frozen GC mask over main+delta slots (nil = keep all).
	beginMerge()
	runMerge(opts core.Options, drop []bool)
	commitMerge()
	abortMerge()
	mergeStats() core.Stats
}

// typedColumn binds a column's storage to its Go value type.
type typedColumn[V val.Value] struct {
	d    ColumnDef
	main *colstore.Main[V]
	dlt  *delta.Partition[V] // active delta; frozen during a merge
	dlt2 *delta.Partition[V] // second delta, non-nil only during a merge

	pending      *colstore.Main[V] // merge result awaiting commit
	pendingStats core.Stats        // written by runMerge, published at commit
	lastStats    core.Stats        // stats of the last committed merge

	// Group-key index bookkeeping.  idxOn is flipped by attachIndex (under
	// Table.mu, with the merge lock held); runMerge reads it while holding
	// the merge lock, which orders the read after any CreateIndex.  The
	// build counters are published by commitMerge under Table.mu so stats
	// readers never race the unlocked merge phase.
	idxOn        bool
	idxBuilds    uint64
	idxLastBuild time.Duration
	pendingBuild time.Duration // index build time of the pending merge

	convert func(any) (V, error)
}

func newColumn(def ColumnDef) column {
	switch def.Type {
	case Uint32:
		return &typedColumn[uint32]{d: def, main: colstore.Empty[uint32](),
			dlt: delta.New[uint32](), convert: convertUint32}
	case Uint64:
		return &typedColumn[uint64]{d: def, main: colstore.Empty[uint64](),
			dlt: delta.New[uint64](), convert: convertUint64}
	case String:
		return &typedColumn[string]{d: def, main: colstore.Empty[string](),
			dlt: delta.New[string](), convert: convertString}
	default:
		panic(fmt.Sprintf("table: unknown column type %v", def.Type))
	}
}

func convertUint64(v any) (uint64, error) {
	switch x := v.(type) {
	case uint64:
		return x, nil
	case uint32:
		return uint64(x), nil
	case uint:
		return uint64(x), nil
	case int:
		if x < 0 {
			return 0, fmt.Errorf("table: negative value %d for uint64 column", x)
		}
		return uint64(x), nil
	case int64:
		if x < 0 {
			return 0, fmt.Errorf("table: negative value %d for uint64 column", x)
		}
		return uint64(x), nil
	default:
		return 0, fmt.Errorf("table: cannot store %T in uint64 column", v)
	}
}

func convertUint32(v any) (uint32, error) {
	u, err := convertUint64(v)
	if err != nil {
		return 0, fmt.Errorf("table: cannot store %T in uint32 column", v)
	}
	if u > 1<<32-1 {
		return 0, fmt.Errorf("table: value %d overflows uint32 column", u)
	}
	return uint32(u), nil
}

func convertString(v any) (string, error) {
	if s, ok := v.(string); ok {
		return s, nil
	}
	return "", fmt.Errorf("table: cannot store %T in string column", v)
}

// Convert normalizes a caller-supplied value to the canonical Go type of a
// column of the given Type (uint32, uint64 or string), applying the same
// coercions Insert accepts (e.g. non-negative int literals for integer
// columns).  Layers above the table — such as shard routing, which must
// hash a key value exactly as the owning column would store it — use this
// to agree with the storage layer on value identity.
func Convert(typ Type, v any) (any, error) {
	switch typ {
	case Uint32:
		return convertUint32(v)
	case Uint64:
		return convertUint64(v)
	case String:
		return convertString(v)
	default:
		return nil, fmt.Errorf("table: unknown column type %v", typ)
	}
}

func (c *typedColumn[V]) def() ColumnDef { return c.d }

func (c *typedColumn[V]) checkValue(v any) error {
	_, err := c.convert(v)
	return err
}

func (c *typedColumn[V]) appendValue(v any) {
	x, err := c.convert(v)
	if err != nil {
		// Table.Insert validates first; reaching here is a programming error.
		panic(err)
	}
	c.activeDelta().Insert(x)
}

// activeDelta returns the partition new writes go to: the second delta
// while a merge is running, the primary delta otherwise.
func (c *typedColumn[V]) activeDelta() *delta.Partition[V] {
	if c.dlt2 != nil {
		return c.dlt2
	}
	return c.dlt
}

// get materializes the value at a global row offset: main rows first, then
// the (frozen) delta, then the second delta.
func (c *typedColumn[V]) get(row int) any {
	v, _ := c.getTyped(row)
	return v
}

func (c *typedColumn[V]) getTyped(row int) (V, bool) {
	var zero V
	nm := c.main.Len()
	if row < nm {
		return c.main.At(row), true
	}
	row -= nm
	if row < c.dlt.Len() {
		return c.dlt.Get(row), true
	}
	row -= c.dlt.Len()
	if c.dlt2 != nil && row < c.dlt2.Len() {
		return c.dlt2.Get(row), true
	}
	return zero, false
}

func (c *typedColumn[V]) mainLen() int { return c.main.Len() }

func (c *typedColumn[V]) deltaLen() int {
	n := c.dlt.Len()
	if c.dlt2 != nil {
		n += c.dlt2.Len()
	}
	return n
}

func (c *typedColumn[V]) stats() ColumnStats {
	uniqueDelta := c.dlt.Unique()
	size := c.main.SizeBytes() + c.dlt.SizeBytes()
	if c.dlt2 != nil {
		uniqueDelta += c.dlt2.Unique()
		size += c.dlt2.SizeBytes()
	}
	return ColumnStats{
		Def:         c.d,
		MainRows:    c.main.Len(),
		DeltaRows:   c.deltaLen(),
		UniqueMain:  c.main.Dict().Len(),
		UniqueDelta: uniqueDelta,
		Bits:        c.main.Bits(),
		SizeBytes:   size,
		LastMerge:   c.lastStats,
	}
}

// beginMerge freezes the primary delta and opens the second delta
// (called under Table.mu write lock).
func (c *typedColumn[V]) beginMerge() {
	c.dlt2 = delta.New[V]()
	c.pending = nil
}

// runMerge merges main + frozen delta into a pending main partition,
// dropping the slots marked in the table's frozen GC mask.  It only reads
// immutable state (main, frozen delta, the mask), so it runs without the
// table lock while inserts land in the second delta.
func (c *typedColumn[V]) runMerge(opts core.Options, drop []bool) {
	// Writes only merge-private fields (pending, pendingStats); externally
	// visible state is untouched until commitMerge runs under the table's
	// write lock, so concurrent readers never observe a torn merge.
	if drop != nil {
		c.pending, c.pendingStats = core.MergeColumnGC(c.main, c.dlt, drop, opts)
	} else {
		c.pending, c.pendingStats = core.MergeColumn(c.main, c.dlt, opts)
	}
	// Merge-maintained index rebuild: the merge just rewrote the whole code
	// vector against the re-sorted dictionary, so the group-key index is a
	// single counting-sort pass over the fresh vector.  Building it here —
	// still unlocked, on the unpublished pending main — means commitMerge
	// publishes main and index atomically and an abort simply discards both.
	if c.idxOn {
		t0 := time.Now()
		c.pending.BuildIndex()
		c.pendingBuild = time.Since(t0)
	}
}

// commitMerge installs the merged main and promotes the second delta
// (called under Table.mu write lock).
func (c *typedColumn[V]) commitMerge() {
	c.main = c.pending
	c.lastStats = c.pendingStats
	c.pending = nil
	c.dlt = c.dlt2
	c.dlt2 = nil
	if c.idxOn {
		c.idxBuilds++
		c.idxLastBuild = c.pendingBuild
	}
}

func (c *typedColumn[V]) indexed() bool { return c.idxOn }

// buildMainIndex builds (but does not attach) a group-key index over the
// current main.  It reads only immutable state, so it is safe without
// Table.mu provided the caller holds the merge lock — the only path that
// replaces c.main is commitMerge, which requires that lock.
func (c *typedColumn[V]) buildMainIndex() *index.Postings {
	return index.Build(c.main.Codes(), c.main.Dict().Len())
}

// attachIndex installs a previously built index and turns on maintenance
// (called under Table.mu write lock, merge lock held).
func (c *typedColumn[V]) attachIndex(p *index.Postings) {
	c.main.SetIndex(p)
	c.idxOn = true
	c.idxBuilds++
}

func (c *typedColumn[V]) indexStats() IndexStats {
	s := IndexStats{Column: c.d.Name, Builds: c.idxBuilds, LastBuild: c.idxLastBuild}
	if p := c.main.Index(); p != nil {
		s.Postings = p.Rows()
		s.SizeBytes = p.SizeBytes()
	}
	return s
}

// mergeStats returns the statistics of the column's most recent merge.
func (c *typedColumn[V]) mergeStats() core.Stats { return c.lastStats }

// abortMerge discards the pending main and folds the second delta back
// into the primary delta.  Because the second delta's rows directly follow
// the frozen delta's rows in the global offset space, re-appending them
// preserves every row id (called under Table.mu write lock).
func (c *typedColumn[V]) abortMerge() {
	c.pending = nil
	if c.dlt2 == nil {
		return
	}
	for i := 0; i < c.dlt2.Len(); i++ {
		c.dlt.Insert(c.dlt2.Get(i))
	}
	c.dlt2 = nil
}
