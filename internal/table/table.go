// Package table implements the HYRISE table layer (paper §3): a fully
// decomposed (column-wise) store in which every attribute has a compressed
// read-optimized main partition and an uncompressed write-optimized delta
// partition.
//
// Modifications are insert-only: an UPDATE appends a new row version and
// invalidates the old one; a DELETE only invalidates.  The implicit row
// offset is shared by all columns, so columns are never re-sorted
// individually and the change history remains queryable.
//
// The merge process runs online: the table is locked only to freeze the
// delta and create a second delta (start) and to atomically install the
// merged mains and promote the second delta (end).  Queries and inserts
// proceed against main + frozen delta + second delta in between.
//
// Row visibility is multi-versioned: every row carries the epoch it was
// inserted and the epoch it was invalidated (internal/epoch), stamped from
// the table's epoch clock.  Snapshot captures one epoch (View); reads
// filtered through a View see exactly the rows current at that epoch, no
// matter how many updates, deletes or merges commit afterwards.
//
// # Garbage collection
//
// Since version history is insert-only, a sustained update workload would
// grow the table without bound; the merge therefore doubles as the garbage
// collector.  At merge freeze the table computes a GC watermark W — the
// minimum epoch of any pinned view on its clock, or the current epoch when
// nothing is pinned — and versions invalidated at or below W (end != 0 &&
// end <= W) are dropped instead of copied into the new main: such versions
// are invisible to every pinned view and to every capture that has not
// happened yet.  Values referenced only by reclaimed versions leave the
// merged dictionaries with them.
//
// Reclaiming physical rows forces row ids to be indirect: a row id is a
// stable id resolved through an id -> physical slot map, and merges that
// reclaim rows compact the slots underneath without renumbering any id.
// Reclaimed ids are retired — never reused — and every operation on a
// retired id keeps failing with ErrRowInvalid, exactly as it would on a
// merely invalidated row.  Views captured with Snapshot pin their epoch
// and must be Released for the watermark (and hence reclamation) to
// advance past them; an explicit ViewAt does not pin and may silently lose
// rows to GC.  SetGC(false) disables reclamation entirely.
package table

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hyrise/internal/core"
	"hyrise/internal/epoch"
	"hyrise/internal/oplog"
)

// Type enumerates supported column types.
type Type int

const (
	// Uint32 is a 4-byte unsigned integer column (paper: E_j = 4).
	Uint32 Type = iota
	// Uint64 is an 8-byte unsigned integer column (E_j = 8).
	Uint64
	// String is a variable-length string column, modelled as E_j = 16.
	String
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case Uint32:
		return "uint32"
	case Uint64:
		return "uint64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ColumnDef describes one attribute.
type ColumnDef struct {
	Name string
	Type Type
}

// Schema is an ordered list of attributes.
type Schema []ColumnDef

// Validate checks for empty schemas, duplicate names and unknown types.
func (s Schema) Validate() error {
	if len(s) == 0 {
		return errors.New("table: empty schema")
	}
	seen := map[string]bool{}
	for _, c := range s {
		if c.Name == "" {
			return errors.New("table: unnamed column")
		}
		if seen[c.Name] {
			return fmt.Errorf("table: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		switch c.Type {
		case Uint32, Uint64, String:
		default:
			return fmt.Errorf("table: column %q has unknown type %v", c.Name, c.Type)
		}
	}
	return nil
}

// Errors returned by table operations.
var (
	ErrRowRange        = errors.New("table: row id out of range")
	ErrRowInvalid      = errors.New("table: row already invalidated")
	ErrMergeInProgress = errors.New("table: merge already in progress")
	ErrNoColumn        = errors.New("table: no such column")
	ErrArity           = errors.New("table: value count does not match schema")
	// ErrSealed rejects writes that would create a new row version in a
	// partition retired by online resharding.  Invalidation (Delete) and
	// moving rows OUT remain allowed; the sharded router reacts to
	// ErrSealed by re-routing the write through the current shard map.
	ErrSealed = errors.New("table: partition sealed for resharding")
)

// lockSeq hands every table a unique id; MoveRow orders its two lock
// acquisitions by it to stay deadlock-free.
var lockSeq atomic.Uint64

// Table is a column store with main/delta partitions per attribute.
type Table struct {
	name   string
	schema Schema
	clock  *epoch.Clock // epoch source; shared across shards of one store
	lockID uint64       // MoveRow lock-ordering id

	mu     sync.RWMutex // guards cols' partition pointers, epochs, rows
	cols   []column
	epochs epoch.Rows // per-row begin/end visibility epochs
	rows   int

	// Stable row-id indirection: row ids handed out by Insert are stable
	// ids, resolved to physical slots through slots; ids[slot] is the
	// inverse.  A garbage-collecting merge compacts the physical slots and
	// retires the reclaimed ids (removed from slots, never reused).
	ids       []int       // physical slot -> stable id
	slots     map[int]int // stable id -> physical slot
	nextID    int         // next stable id; ids below it without a slot are retired
	retired   int         // stable ids retired by GC (cumulative)
	reclaimed int         // estimated bytes reclaimed by GC (cumulative)
	rowBytes  int         // estimated bytes per row (values + epochs + id)
	dead      int         // stored versions with end != 0 (GC candidates)

	gcOn        bool   // garbage-collect during merges (default true)
	gcWatermark uint64 // highest watermark a committed GC merge applied
	sealed      bool   // retired by resharding: no new row versions

	// gcDrop marks the physical slots the in-flight merge reclaims
	// (computed at freeze under mu, applied at commit); nil when the merge
	// found nothing reclaimable or GC is off.
	gcDrop      []bool
	gcDropCount int
	gcMark      uint64

	mergeMu   sync.Mutex // serializes whole merges; held across a merge
	merging   bool       // true between beginMerge and commit/abort (under mu)
	mergeGen  int
	lastMerge Report
	mergeHook atomic.Value // func(Report); observer for committed/aborted merges

	// Read-routing observability: how many point/range reads the handle
	// layer served from a group-key index vs. a column scan.  Plain atomics
	// so the read path never takes an extra lock for accounting.
	routeIndexed atomic.Uint64
	routeScanned atomic.Uint64

	// olog, when attached, is the replication op log: mutations record
	// their op in it and take their epoch stamp from the append (see
	// oplog.Log.Append), which totally orders the log.  oshard is this
	// partition's index in the op stream.
	olog   *oplog.Log
	oshard uint32
}

// New creates an empty table with its own epoch clock.
func New(name string, schema Schema) (*Table, error) {
	return NewWithClock(name, schema, epoch.NewClock())
}

// NewWithClock creates an empty table stamping row epochs from the given
// clock.  A sharded store passes one clock to all its shards so a single
// capture freezes every shard at the same epoch.
func NewWithClock(name string, schema Schema, clock *epoch.Clock) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		name: name, schema: schema, clock: clock, lockID: lockSeq.Add(1),
		slots: make(map[int]int), gcOn: true,
		rowBytes: 8 + 16, // stable id + begin/end epochs
	}
	for _, def := range schema {
		t.cols = append(t.cols, newColumn(def))
		switch def.Type {
		case Uint32:
			t.rowBytes += 4
		case String:
			t.rowBytes += 16 // E_j = 16, the paper's fixed-length model
		default:
			t.rowBytes += 8
		}
	}
	return t, nil
}

// SetGC enables or disables garbage collection during merges.  GC is on by
// default; with it off, merges copy every stored version into the new main
// forever, the pre-GC behavior (and the paper's insert-only assumption).
func (t *Table) SetGC(enabled bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gcOn = enabled
}

// GCEnabled reports whether merges garbage-collect.
func (t *Table) GCEnabled() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gcOn
}

// RetiredRows returns the number of row ids retired by garbage collection.
func (t *Table) RetiredRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.retired
}

// ReclaimedBytes returns the estimated bytes reclaimed by garbage
// collection (dropped versions times the schema's modelled row width).
func (t *Table) ReclaimedBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.reclaimed
}

// GCWatermark returns the highest watermark a committed garbage-collecting
// merge has applied (0 before the first one).
func (t *Table) GCWatermark() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gcWatermark
}

// Seal marks the partition as retired by online resharding: every write
// that would create a new row version here (Insert, InsertRows, in-place
// Update, MoveRow in) fails with ErrSealed from now on.  Reads, Delete,
// moving rows out, merges and replica Apply* replay are unaffected —
// sealed partitions keep serving pinned history until GC drains them.
// Sealing is idempotent and permanent; it acquires the write lock, so
// when Seal returns no in-flight write can still land a version here.
func (t *Table) Seal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sealed = true
}

// Sealed reports whether the partition was retired by resharding.
func (t *Table) Sealed() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sealed
}

// NextRowID returns the next stable row id the table will assign.
func (t *Table) NextRowID() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nextID
}

// slotFor resolves a stable row id to its physical slot (t.mu held).  Ids
// never handed out fail with ErrRowRange; retired ids with ErrRowInvalid.
func (t *Table) slotFor(id int) (int, error) {
	if id < 0 || id >= t.nextID {
		return 0, fmt.Errorf("%w: %d", ErrRowRange, id)
	}
	slot, ok := t.slots[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d (reclaimed)", ErrRowInvalid, id)
	}
	return slot, nil
}

// Clock returns the table's epoch clock.
func (t *Table) Clock() *epoch.Clock { return t.clock }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// NumColumns returns N_C.
func (t *Table) NumColumns() int { return len(t.schema) }

// columnIndex resolves a column name.
func (t *Table) columnIndex(name string) (int, error) {
	for i, c := range t.schema {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrNoColumn, name)
}

// Insert appends one row; values must match the schema's arity and types.
// It returns the new row id.
func (t *Table) Insert(values []any) (int, error) {
	if len(values) != len(t.cols) {
		return 0, fmt.Errorf("%w: got %d want %d", ErrArity, len(values), len(t.cols))
	}
	// Validate before mutating anything so a bad value cannot leave the
	// columns ragged.
	for i, v := range values {
		if err := t.cols[i].checkValue(v); err != nil {
			return 0, err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed {
		return 0, ErrSealed
	}
	at := t.clock.Now()
	if t.olog != nil {
		at = t.olog.Append([]oplog.Rec{{
			Kind: oplog.KindInsert, Shard: t.oshard, ID: uint64(t.nextID),
			Rows: [][]any{t.logRow(values)},
		}})
	}
	return t.insertLocked(values, at), nil
}

// insertLocked appends a row stamped as inserted at epoch at and returns
// its stable id.  The stamp must have been read from the clock while t.mu
// was already held — that is what makes each mutation atomic with respect
// to snapshot captures.
func (t *Table) insertLocked(values []any, at uint64) int {
	for i, v := range values {
		t.cols[i].appendValue(v)
	}
	slot := t.rows
	t.rows++
	t.epochs.Append(at)
	id := t.nextID
	t.nextID++
	t.ids = append(t.ids, id)
	t.slots[id] = slot
	return id
}

// Update models an UPDATE as insert + invalidate (paper §3): it reads the
// current version of row id, overlays the changed columns, appends the new
// version and invalidates the old one.  It returns the new row id.
func (t *Table) Update(row int, changes map[string]any) (int, error) {
	for name, v := range changes {
		i, err := t.columnIndex(name)
		if err != nil {
			return 0, err
		}
		if err := t.cols[i].checkValue(v); err != nil {
			return 0, err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed {
		return 0, ErrSealed
	}
	slot, err := t.slotFor(row)
	if err != nil {
		return 0, err
	}
	if !t.epochs.Alive(slot) {
		return 0, fmt.Errorf("%w: %d", ErrRowInvalid, row)
	}
	values := make([]any, len(t.cols))
	for i := range t.cols {
		values[i] = t.cols[i].get(slot)
	}
	for name, v := range changes {
		i, _ := t.columnIndex(name)
		values[i] = v
	}
	// One stamp for both sides makes the version switch atomic: a snapshot
	// at any epoch sees exactly one of the two versions.
	at := t.clock.Now()
	if t.olog != nil {
		at = t.olog.Append([]oplog.Rec{{
			Kind: oplog.KindUpdate, Shard: t.oshard,
			ID: uint64(row), ID2: uint64(t.nextID),
			Rows: [][]any{t.logRow(values)},
		}})
	}
	t.epochs.Invalidate(slot, at)
	t.dead++
	return t.insertLocked(values, at), nil
}

// Delete invalidates a row; the version remains stored until a
// garbage-collecting merge reclaims it.
func (t *Table) Delete(row int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	slot, err := t.slotFor(row)
	if err != nil {
		return err
	}
	if !t.epochs.Alive(slot) {
		return fmt.Errorf("%w: %d", ErrRowInvalid, row)
	}
	at := t.clock.Now()
	if t.olog != nil {
		at = t.olog.Append([]oplog.Rec{{Kind: oplog.KindDelete, Shard: t.oshard, ID: uint64(row)}})
	}
	t.epochs.Invalidate(slot, at)
	t.dead++
	return nil
}

// Row materializes all column values of a row (valid or not).  A row
// reclaimed by garbage collection fails with ErrRowInvalid.
func (t *Table) Row(row int) ([]any, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, err := t.slotFor(row)
	if err != nil {
		return nil, err
	}
	out := make([]any, len(t.cols))
	for i := range t.cols {
		out[i] = t.cols[i].get(slot)
	}
	return out, nil
}

// IsValid reports whether the row is the current version.
func (t *Table) IsValid(row int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, err := t.slotFor(row)
	return err == nil && t.epochs.Alive(slot)
}

// Rows returns the number of physically stored row versions (reclaimed
// versions no longer count; see RetiredRows for how many were reclaimed).
func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// ValidRows returns the number of current (non-invalidated) rows.
func (t *Table) ValidRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epochs.CountAlive()
}

// ValidRowsAt returns the number of rows visible at the view's epoch.
func (t *Table) ValidRowsAt(v View) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epochs.CountVisibleAt(v.resolve())
}

// MainRows returns the tuple count of the main partitions.
func (t *Table) MainRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].mainLen()
}

// DeltaRows returns the tuple count accumulated in the delta partitions
// (frozen plus second delta during a merge).
func (t *Table) DeltaRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].deltaLen()
}

// DeltaFraction returns N_D / N_M, the merge-trigger metric of §4.
func (t *Table) DeltaFraction() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.cols) == 0 {
		return 0
	}
	nm := t.cols[0].mainLen()
	nd := t.cols[0].deltaLen()
	if nm == 0 {
		if nd == 0 {
			return 0
		}
		return 1
	}
	return float64(nd) / float64(nm)
}

// OnMerge installs fn as the merge observer: every Merge — committed or
// aborted — delivers its Report to fn after the table locks are released,
// in commit order.  One observer per table; passing nil uninstalls.  fn
// must not call back into Merge (it runs while the merge mutex is held).
func (t *Table) OnMerge(fn func(Report)) {
	if fn == nil {
		fn = func(Report) {}
	}
	t.mergeHook.Store(fn)
}

// RoutingCounts returns how many reads the handle layer served from a
// group-key index versus a column scan (cumulative).
func (t *Table) RoutingCounts() (indexed, scanned uint64) {
	return t.routeIndexed.Load(), t.routeScanned.Load()
}

// Merging reports whether a merge is currently running.
func (t *Table) Merging() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.merging
}

// MergeGeneration counts committed merges.
func (t *Table) MergeGeneration() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mergeGen
}

// ColumnStats describes one column's storage.
type ColumnStats struct {
	Def         ColumnDef
	MainRows    int
	DeltaRows   int
	UniqueMain  int
	UniqueDelta int
	Bits        uint
	SizeBytes   int
	LastMerge   core.Stats
}

// Stats summarizes the whole table.
type Stats struct {
	Name      string
	Rows      int
	ValidRows int
	MainRows  int
	DeltaRows int
	SizeBytes int
	// RetiredRows counts row ids retired by garbage-collecting merges
	// (cumulative); ReclaimedBytes estimates the memory those reclaimed
	// versions occupied.
	RetiredRows    int
	ReclaimedBytes int
	Columns        []ColumnStats
}

// Stats returns a consistent snapshot of storage statistics.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{
		Name: t.name, Rows: t.rows, ValidRows: t.epochs.CountAlive(),
		RetiredRows: t.retired, ReclaimedBytes: t.reclaimed,
	}
	for _, c := range t.cols {
		cs := c.stats()
		s.Columns = append(s.Columns, cs)
		s.SizeBytes += cs.SizeBytes
	}
	if len(t.cols) > 0 {
		s.MainRows = t.cols[0].mainLen()
		s.DeltaRows = t.cols[0].deltaLen()
	}
	s.SizeBytes += t.epochs.SizeBytes() + 8*len(t.ids)
	return s
}
