package table

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"hyrise/internal/core"
)

// TestOnlineMergeWithConcurrentInserts exercises the paper's §3 guarantee:
// during the merge, incoming updates land in a second delta and become the
// primary delta at commit; no writes are lost and row ids stay stable.
func TestOnlineMergeWithConcurrentInserts(t *testing.T) {
	tb, err := New("t", Schema{{Name: "v", Type: Uint64}})
	if err != nil {
		t.Fatal(err)
	}
	// Seed enough rows that the merge takes a little while.
	const seed = 200000
	for i := 0; i < seed; i++ {
		if _, err := tb.Insert([]any{uint64(i % 5000)}); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var inserted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				if _, err := tb.Insert([]any{uint64(w)*10_000_000 + uint64(inserted.Add(1))}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Run several merge generations under write load.
	for gen := 0; gen < 3; gen++ {
		if _, err := tb.Merge(context.Background(), MergeOptions{Threads: 2}); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	total := seed + int(inserted.Load())
	if tb.Rows() != total {
		t.Fatalf("Rows=%d want %d (lost writes)", tb.Rows(), total)
	}
	if got := tb.MainRows() + tb.DeltaRows(); got != total {
		t.Fatalf("main+delta=%d want %d", got, total)
	}
	// Spot-check values survived in order.
	h, _ := ColumnOf[uint64](tb, "v")
	for _, r := range []int{0, 1, seed - 1} {
		v, err := h.Get(r)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(r%5000) {
			t.Fatalf("row %d = %d want %d", r, v, r%5000)
		}
	}
}

// TestConcurrentQueriesDuringMerge runs lookups and scans while a merge is
// in flight and checks they observe a consistent table.
func TestConcurrentQueriesDuringMerge(t *testing.T) {
	tb, _ := New("t", Schema{{Name: "v", Type: Uint64}})
	const n = 100000
	for i := 0; i < n; i++ {
		tb.Insert([]any{uint64(i % 100)})
	}
	h, _ := ColumnOf[uint64](tb, "v")

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Each value 0..99 occurs at least n/100 times; rows only
				// grow, so the count can only grow.
				if got := len(h.Lookup(7)); got < n/100 {
					errCh <- errorsErrorf("Lookup(7)=%d < %d", got, n/100)
					return
				}
				count := 0
				h.Scan(func(int, uint64) bool { count++; return count < 1000 })
				if count == 0 {
					errCh <- errorsErrorf("empty scan")
					return
				}
			}
		}()
	}
	for gen := 0; gen < 3; gen++ {
		if _, err := tb.Merge(context.Background(), MergeOptions{Threads: 2}); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func errorsErrorf(format string, args ...any) error {
	return &queryErr{msg: format, args: args}
}

type queryErr struct {
	msg  string
	args []any
}

func (e *queryErr) Error() string { return e.msg }

// TestConcurrentMergeRejected verifies the single-merge invariant.
func TestConcurrentMergeRejected(t *testing.T) {
	tb, _ := New("t", Schema{{Name: "v", Type: Uint64}})
	for i := 0; i < 300000; i++ {
		tb.Insert([]any{uint64(i)})
	}
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(started)
		_, err := tb.Merge(context.Background(), MergeOptions{Threads: 1})
		finished <- err
	}()
	<-started
	// Try until the first merge is observably in progress or done.
	sawBusy := false
	for i := 0; i < 100000; i++ {
		_, err := tb.Merge(context.Background(), MergeOptions{Threads: 1})
		if errors.Is(err, ErrMergeInProgress) {
			sawBusy = true
			break
		}
		if err == nil {
			break // first merge already finished; nothing to contend with
		}
		t.Fatal(err)
	}
	if err := <-finished; err != nil {
		t.Fatal(err)
	}
	_ = sawBusy // timing-dependent; the invariant is "no error other than busy"
}

// TestMergingFlag observes the merging state transition.
func TestMergingFlag(t *testing.T) {
	tb, _ := New("t", Schema{{Name: "v", Type: Uint64}})
	for i := 0; i < 50000; i++ {
		tb.Insert([]any{uint64(i)})
	}
	if tb.Merging() {
		t.Fatal("merging before start")
	}
	if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if tb.Merging() {
		t.Fatal("merging after commit")
	}
}

// TestAbortMidMerge cancels while column merges are running.
func TestAbortMidMerge(t *testing.T) {
	schema := Schema{}
	for _, n := range []string{"a", "b", "c", "d", "e", "f"} {
		schema = append(schema, ColumnDef{Name: n, Type: Uint64})
	}
	tb, _ := New("t", schema)
	for i := 0; i < 50000; i++ {
		row := make([]any, len(schema))
		for j := range row {
			row[j] = uint64(i + j)
		}
		tb.Insert(row)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel() // race the merge
	rep, err := tb.Merge(ctx, MergeOptions{Threads: 2, Strategy: ColumnTasks})
	if err != nil {
		if !rep.Aborted {
			t.Fatal("error without abort flag")
		}
		// Rolled back: all rows in delta, none in main.
		if tb.MainRows() != 0 || tb.DeltaRows() != 50000 {
			t.Fatalf("abort state main=%d delta=%d", tb.MainRows(), tb.DeltaRows())
		}
	} else if tb.MainRows() != 50000 {
		t.Fatalf("commit state main=%d", tb.MainRows())
	}
	// Either way the table stays usable.
	if _, err := tb.Merge(context.Background(), MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if tb.MainRows() != 50000 || tb.DeltaRows() != 0 {
		t.Fatalf("final main=%d delta=%d", tb.MainRows(), tb.DeltaRows())
	}
	_ = core.Optimized
}
