package dict

import (
	"sync"

	"hyrise/internal/val"
)

// MergeParallel performs Step 1(b) with nt worker goroutines following the
// paper's three-phase scheme (§6.2.1):
//
//   - Phase 1: each thread computes its NT-quantile start/end indices in the
//     two dictionaries (co-ranking, cf. Francis & Mathieson / merge path),
//     merges its ranges while locally removing duplicates, and records the
//     number of unique values it produced in counter[i].  A boundary
//     duplicate — the last element of thread i-1 equalling the first element
//     of thread i — is detected by comparing each range's start elements with
//     the preceding element of the respectively other dictionary, and the
//     affected pointer is advanced before merging.
//   - Phase 2: an exclusive prefix sum over counter[] yields each thread's
//     write offset and the total merged cardinality.
//   - Phase 3: threads recompute their ranges and redo the merge, writing the
//     merged dictionary and the auxiliary tables X_M and X_D at their offsets.
//
// As in the paper, phase 3 repeats the comparisons of phase 1 (roughly 2x
// the comparisons of the sequential algorithm) in exchange for perfectly
// even, contention-free writes.
func MergeParallel[V val.Value](m, d *Dict[V], nt int) MergeResult[V] {
	a, b := m.values, d.values
	if nt < 1 {
		nt = 1
	}
	total := len(a) + len(b)
	if nt > total {
		nt = total
	}
	if nt <= 1 {
		return Merge(m, d)
	}

	type bounds struct {
		aLo, aHi int
		bLo, bHi int
		// skipALo/skipBLo indicate the first element of the range is a
		// boundary duplicate of the previous thread's last output; its
		// translation entry must point at offset-1.
		skipALo, skipBLo bool
	}
	ranges := make([]bounds, nt)
	for i := 0; i < nt; i++ {
		kLo := total * i / nt
		kHi := total * (i + 1) / nt
		aLo, bLo := coRank(a, b, kLo)
		aHi, bHi := coRank(a, b, kHi)
		r := bounds{aLo: aLo, aHi: aHi, bLo: bLo, bHi: bHi}
		// Boundary-duplicate repair (paper phase 1).  With A-first tie
		// breaking in coRank an equal pair can only be split so that A's
		// copy went to the previous thread and B's copy starts this one,
		// but we check both directions for robustness.
		if bLo > 0 && aLo < len(a) && a[aLo] == b[bLo-1] {
			r.skipALo = true
		}
		if aLo > 0 && bLo < len(b) && b[bLo] == a[aLo-1] {
			r.skipBLo = true
		}
		ranges[i] = r
	}

	// Phase 1: count unique values per range.
	counter := make([]int, nt+1)
	var wg sync.WaitGroup
	for i := 0; i < nt; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := ranges[i]
			ai, bi := r.aLo, r.bLo
			if r.skipALo {
				ai++
			}
			if r.skipBLo {
				bi++
			}
			n := 0
			for ai < r.aHi && bi < r.bHi {
				switch {
				case a[ai] < b[bi]:
					ai++
				case a[ai] > b[bi]:
					bi++
				default:
					ai++
					bi++
				}
				n++
			}
			// Tail elements may still duplicate values in the other
			// dictionary *within this thread's range*; those were handled by
			// the equal case above only when both pointers were in range.
			// Remaining tails are all distinct by construction (each input
			// dictionary is internally unique and the other side is
			// exhausted within this range).
			n += r.aHi - ai + r.bHi - bi
			counter[i+1] = n
		}(i)
	}
	wg.Wait()

	// Phase 2: exclusive prefix sum (Hillis/Steele in the paper; the array
	// has nt+1 entries, so a sequential sum is exact and cheap here).
	for i := 1; i <= nt; i++ {
		counter[i] += counter[i-1]
	}
	mergedLen := counter[nt]

	// Phase 3: re-merge, writing values and translation tables at offsets.
	merged := make([]V, mergedLen)
	xm := make([]uint32, len(a))
	xd := make([]uint32, len(b))
	for i := 0; i < nt; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := ranges[i]
			out := counter[i]
			ai, bi := r.aLo, r.bLo
			if r.skipALo {
				// The value was written by the previous thread as its last
				// output element.
				xm[ai] = uint32(out - 1)
				ai++
			}
			if r.skipBLo {
				xd[bi] = uint32(out - 1)
				bi++
			}
			for ai < r.aHi && bi < r.bHi {
				switch {
				case a[ai] < b[bi]:
					merged[out] = a[ai]
					xm[ai] = uint32(out)
					ai++
				case a[ai] > b[bi]:
					merged[out] = b[bi]
					xd[bi] = uint32(out)
					bi++
				default:
					merged[out] = a[ai]
					xm[ai] = uint32(out)
					xd[bi] = uint32(out)
					ai++
					bi++
				}
				out++
			}
			for ; ai < r.aHi; ai++ {
				merged[out] = a[ai]
				xm[ai] = uint32(out)
				out++
			}
			for ; bi < r.bHi; bi++ {
				merged[out] = b[bi]
				xd[bi] = uint32(out)
				out++
			}
		}(i)
	}
	wg.Wait()
	return MergeResult[V]{Merged: &Dict[V]{values: merged}, XM: xm, XD: xd}
}

// coRank returns the split point (i, j) with i+j = k such that merging
// a[:i] and b[:j] yields exactly the first k elements of the full merge of
// a and b, with ties broken towards a (an equal element of a precedes the
// equal element of b).  Both inputs must be sorted; within each input
// elements are unique (dictionaries), so duplicates only occur across the
// two inputs.  Runs in O(log(min(len(a), len(b)))).
func coRank[V val.Value](a, b []V, k int) (int, int) {
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		i := (lo + hi) / 2
		j := k - i
		// Feasibility of taking i elements from a and j from b:
		//   (1) a[i-1] <= b[j]  — the last a element really belongs in the
		//       prefix (equality allowed: ties go to a);
		//   (2) b[j-1] <  a[i]  — the last b element precedes the next a
		//       element (equality NOT allowed: the equal a element must be
		//       consumed first).
		if i < len(a) && j > 0 && b[j-1] >= a[i] {
			lo = i + 1 // need more elements from a
		} else if i > 0 && j < len(b) && a[i-1] > b[j] {
			hi = i - 1 // took too many from a
		} else {
			return i, j
		}
	}
	return lo, k - lo
}
