package dict

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mkDict(vals ...uint64) *Dict[uint64] { return FromSorted(vals) }

func TestFromUnsorted(t *testing.T) {
	d := FromUnsorted([]uint64{5, 1, 5, 3, 1, 9})
	want := []uint64{1, 3, 5, 9}
	if d.Len() != len(want) {
		t.Fatalf("Len=%d want %d", d.Len(), len(want))
	}
	for i, v := range want {
		if d.At(i) != v {
			t.Fatalf("At(%d)=%d want %d", i, d.At(i), v)
		}
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSorted([]uint64{1, 1})
}

func TestLookupAndBounds(t *testing.T) {
	d := mkDict(10, 20, 30, 40)
	if c, ok := d.Lookup(30); !ok || c != 2 {
		t.Fatalf("Lookup(30)=%d,%v", c, ok)
	}
	if _, ok := d.Lookup(35); ok {
		t.Fatal("Lookup(35) should miss")
	}
	if got := d.LowerBound(20); got != 1 {
		t.Fatalf("LowerBound(20)=%d want 1", got)
	}
	if got := d.LowerBound(21); got != 2 {
		t.Fatalf("LowerBound(21)=%d want 2", got)
	}
	if got := d.UpperBound(20); got != 2 {
		t.Fatalf("UpperBound(20)=%d want 2", got)
	}
	if got := d.LowerBound(99); got != 4 {
		t.Fatalf("LowerBound(99)=%d want 4", got)
	}
}

func TestStringDict(t *testing.T) {
	d := FromUnsorted([]string{"delta", "apple", "charlie", "apple"})
	if d.Len() != 3 {
		t.Fatalf("Len=%d want 3", d.Len())
	}
	if c, ok := d.Lookup("charlie"); !ok || c != 1 {
		t.Fatalf("Lookup(charlie)=%d,%v", c, ok)
	}
}

// checkMergeResult validates a MergeResult against the definition:
// merged = sorted(unique(m ∪ d)); XM/XD map every old code to the index of
// the same value in merged.
func checkMergeResult(t *testing.T, m, d *Dict[uint64], r MergeResult[uint64]) {
	t.Helper()
	seen := map[uint64]bool{}
	var all []uint64
	for _, v := range m.Values() {
		if !seen[v] {
			seen[v] = true
			all = append(all, v)
		}
	}
	for _, v := range d.Values() {
		if !seen[v] {
			seen[v] = true
			all = append(all, v)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if r.Merged.Len() != len(all) {
		t.Fatalf("merged len %d want %d", r.Merged.Len(), len(all))
	}
	for i, v := range all {
		if r.Merged.At(i) != v {
			t.Fatalf("merged[%d]=%d want %d", i, r.Merged.At(i), v)
		}
	}
	if len(r.XM) != m.Len() || len(r.XD) != d.Len() {
		t.Fatalf("aux lens %d,%d want %d,%d", len(r.XM), len(r.XD), m.Len(), d.Len())
	}
	for i, v := range m.Values() {
		if got := r.Merged.At(int(r.XM[i])); got != v {
			t.Fatalf("XM[%d]=%d maps %d to %d", i, r.XM[i], v, got)
		}
	}
	for i, v := range d.Values() {
		if got := r.Merged.At(int(r.XD[i])); got != v {
			t.Fatalf("XD[%d]=%d maps %d to %d", i, r.XD[i], v, got)
		}
	}
}

func TestMergePaperExample(t *testing.T) {
	// Figure 5/6: main dict {apple charlie delta frank hotel inbox},
	// delta dict {bravo charlie golf young}.
	m := FromSorted([]string{"apple", "charlie", "delta", "frank", "hotel", "inbox"})
	d := FromSorted([]string{"bravo", "charlie", "golf", "young"})
	r := Merge(m, d)
	wantMerged := []string{"apple", "bravo", "charlie", "delta", "frank", "golf", "hotel", "inbox", "young"}
	if r.Merged.Len() != 9 {
		t.Fatalf("merged len %d want 9", r.Merged.Len())
	}
	for i, v := range wantMerged {
		if r.Merged.At(i) != v {
			t.Fatalf("merged[%d]=%q want %q", i, r.Merged.At(i), v)
		}
	}
	// Figure 6 main auxiliary: [0 2 3 4 6 7]; delta auxiliary: [1 2 5 8].
	wantXM := []uint32{0, 2, 3, 4, 6, 7}
	wantXD := []uint32{1, 2, 5, 8}
	for i, w := range wantXM {
		if r.XM[i] != w {
			t.Fatalf("XM[%d]=%d want %d", i, r.XM[i], w)
		}
	}
	for i, w := range wantXD {
		if r.XD[i] != w {
			t.Fatalf("XD[%d]=%d want %d", i, r.XD[i], w)
		}
	}
}

func TestMergeDisjointAndOverlap(t *testing.T) {
	cases := []struct{ m, d []uint64 }{
		{[]uint64{1, 3, 5}, []uint64{2, 4, 6}},
		{[]uint64{1, 2, 3}, []uint64{1, 2, 3}},
		{[]uint64{}, []uint64{1, 2}},
		{[]uint64{1, 2}, []uint64{}},
		{[]uint64{}, []uint64{}},
		{[]uint64{5}, []uint64{5}},
		{[]uint64{1, 100}, []uint64{50}},
	}
	for _, c := range cases {
		m, d := FromSorted(c.m), FromSorted(c.d)
		checkMergeResult(t, m, d, Merge(m, d))
		noaux := MergeNoAux(m, d)
		r := Merge(m, d)
		if noaux.Len() != r.Merged.Len() {
			t.Fatalf("MergeNoAux len %d want %d", noaux.Len(), r.Merged.Len())
		}
	}
}

func randomDictPair(rng *rand.Rand, maxLen int, domain uint64) (*Dict[uint64], *Dict[uint64]) {
	gen := func(n int) *Dict[uint64] {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() % domain
		}
		return FromUnsorted(vals)
	}
	return gen(rng.Intn(maxLen)), gen(rng.Intn(maxLen))
}

func TestMergeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 60; iter++ {
		// Small domain forces heavy cross-dictionary duplication, which
		// stresses the boundary-duplicate repair.
		domain := uint64(1 + rng.Intn(200))
		m, d := randomDictPair(rng, 5000, domain)
		want := Merge(m, d)
		for _, nt := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
			got := MergeParallel(m, d, nt)
			if got.Merged.Len() != want.Merged.Len() {
				t.Fatalf("nt=%d domain=%d: merged len %d want %d", nt, domain, got.Merged.Len(), want.Merged.Len())
			}
			for i := range want.Merged.Values() {
				if got.Merged.At(i) != want.Merged.At(i) {
					t.Fatalf("nt=%d: merged[%d]=%d want %d", nt, i, got.Merged.At(i), want.Merged.At(i))
				}
			}
			for i := range want.XM {
				if got.XM[i] != want.XM[i] {
					t.Fatalf("nt=%d: XM[%d]=%d want %d", nt, i, got.XM[i], want.XM[i])
				}
			}
			for i := range want.XD {
				if got.XD[i] != want.XD[i] {
					t.Fatalf("nt=%d: XD[%d]=%d want %d", nt, i, got.XD[i], want.XD[i])
				}
			}
		}
	}
}

func TestMergeParallelLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, d := randomDictPair(rng, 200000, 150000)
	want := Merge(m, d)
	got := MergeParallel(m, d, 8)
	checkMergeResult(t, m, d, got)
	if got.Merged.Len() != want.Merged.Len() {
		t.Fatalf("len %d want %d", got.Merged.Len(), want.Merged.Len())
	}
}

func TestCoRank(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 40; iter++ {
		m, d := randomDictPair(rng, 300, 80)
		a, b := m.Values(), d.Values()
		// Reference merged sequence with a-first tie-break, duplicates kept.
		type tagged struct {
			v     uint64
			fromA bool
		}
		var ref []tagged
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i] <= b[j] {
				ref = append(ref, tagged{a[i], true})
				i++
			} else {
				ref = append(ref, tagged{b[j], false})
				j++
			}
		}
		for ; i < len(a); i++ {
			ref = append(ref, tagged{a[i], true})
		}
		for ; j < len(b); j++ {
			ref = append(ref, tagged{b[j], false})
		}
		for k := 0; k <= len(ref); k++ {
			gi, gj := coRank(a, b, k)
			wi, wj := 0, 0
			for _, tg := range ref[:k] {
				if tg.fromA {
					wi++
				} else {
					wj++
				}
			}
			if gi != wi || gj != wj {
				t.Fatalf("coRank(k=%d)=(%d,%d) want (%d,%d)", k, gi, gj, wi, wj)
			}
		}
	}
}

func TestMergeQuick(t *testing.T) {
	f := func(ma, da []uint16, nt uint8) bool {
		mv := make([]uint64, len(ma))
		for i, v := range ma {
			mv[i] = uint64(v % 512)
		}
		dv := make([]uint64, len(da))
		for i, v := range da {
			dv[i] = uint64(v % 512)
		}
		m, d := FromUnsorted(mv), FromUnsorted(dv)
		want := Merge(m, d)
		got := MergeParallel(m, d, int(nt%9)+1)
		if got.Merged.Len() != want.Merged.Len() {
			return false
		}
		for i := range want.XM {
			if got.XM[i] != want.XM[i] {
				return false
			}
		}
		for i := range want.XD {
			if got.XD[i] != want.XD[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMergeSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, d := randomDictPair(rng, 1<<20, 1<<19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(m, d)
	}
}

func BenchmarkMergeParallel8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, d := randomDictPair(rng, 1<<20, 1<<19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeParallel(m, d, 8)
	}
}
