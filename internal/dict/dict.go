// Package dict implements the sorted, order-preserving dictionaries that
// compress main partitions (paper §3): the code for a value is its index in
// the sorted unique-value array, so range predicates on values translate to
// range predicates on codes and point lookups are binary searches.
//
// The package also implements the dictionary-merge half of the merge process
// (Step 1(b), §5.1/§5.3/§6.2.1): merging the main dictionary U_M with the
// delta dictionary U_D into U'_M with duplicate elimination while emitting
// the auxiliary translation tables X_M and X_D that make Step 2 linear.
// Both a sequential two-pointer variant and the paper's three-phase parallel
// variant (co-ranked NT-quantile splits, boundary-duplicate repair, prefix
// sum, offset writes) are provided.
package dict

import (
	"fmt"
	"sort"

	"hyrise/internal/val"
)

// Dict is an immutable sorted array of unique values.  Code i encodes
// Values()[i].  The zero value is an empty dictionary.
type Dict[V val.Value] struct {
	values []V
}

// FromSorted wraps values, which must already be strictly increasing.  The
// slice is retained, not copied.  It panics if the order invariant is
// violated.
func FromSorted[V val.Value](values []V) *Dict[V] {
	for i := 1; i < len(values); i++ {
		if values[i-1] >= values[i] {
			panic(fmt.Sprintf("dict: values not strictly increasing at %d", i))
		}
	}
	return &Dict[V]{values: values}
}

// FromUnsorted sorts and deduplicates a copy of values.
func FromUnsorted[V val.Value](values []V) *Dict[V] {
	cp := make([]V, len(values))
	copy(cp, values)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:0]
	for i, v := range cp {
		if i == 0 || v != cp[i-1] {
			out = append(out, v)
		}
	}
	return &Dict[V]{values: out}
}

// Len returns the number of unique values.
func (d *Dict[V]) Len() int { return len(d.values) }

// At returns the value encoded by code i.
func (d *Dict[V]) At(i int) V { return d.values[i] }

// Values exposes the backing sorted slice; callers must not mutate it.
func (d *Dict[V]) Values() []V { return d.values }

// Lookup binary-searches for v and returns its code.
func (d *Dict[V]) Lookup(v V) (code int, ok bool) {
	i := d.LowerBound(v)
	if i < len(d.values) && d.values[i] == v {
		return i, true
	}
	return 0, false
}

// LowerBound returns the smallest index i with Values()[i] >= v, possibly
// Len().  Range selections on values map to the code interval
// [LowerBound(lo), LowerBound(hi+ε)).
func (d *Dict[V]) LowerBound(v V) int {
	return sort.Search(len(d.values), func(i int) bool { return d.values[i] >= v })
}

// UpperBound returns the smallest index i with Values()[i] > v.
func (d *Dict[V]) UpperBound(v V) int {
	return sort.Search(len(d.values), func(i int) bool { return d.values[i] > v })
}

// SizeBytes returns the payload bytes of the dictionary values.
func (d *Dict[V]) SizeBytes() int { return val.SliceBytes(d.values) }

// MergeResult is the output of Step 1(b): the merged dictionary and the two
// auxiliary translation tables.  XM[c] is the new code of old main code c;
// XD[c] is the new code of delta-dictionary code c.  For the naive
// algorithm the tables are nil.
type MergeResult[V val.Value] struct {
	Merged *Dict[V]
	XM, XD []uint32
}

// Merge performs the sequential Step 1(b): a two-pointer merge of the two
// sorted dictionaries with duplicate elimination, populating X_M and X_D
// incrementally (paper §5.3, "Modified Step 1(b)").  Run time is
// O(|U_M| + |U_D|).
func Merge[V val.Value](m, d *Dict[V]) MergeResult[V] {
	a, b := m.values, d.values
	merged := make([]V, 0, len(a)+len(b))
	xm := make([]uint32, len(a))
	xd := make([]uint32, len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			xm[i] = uint32(len(merged))
			merged = append(merged, a[i])
			i++
		case a[i] > b[j]:
			xd[j] = uint32(len(merged))
			merged = append(merged, b[j])
			j++
		default: // equal: emit once, map both
			k := uint32(len(merged))
			xm[i] = k
			xd[j] = k
			merged = append(merged, a[i])
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		xm[i] = uint32(len(merged))
		merged = append(merged, a[i])
	}
	for ; j < len(b); j++ {
		xd[j] = uint32(len(merged))
		merged = append(merged, b[j])
	}
	return MergeResult[V]{Merged: &Dict[V]{values: merged}, XM: xm, XD: xd}
}

// MergeNoAux is the naive Step 1(b): it produces only the merged dictionary.
// Step 2 must then locate every value by binary search (paper §5.2).
func MergeNoAux[V val.Value](m, d *Dict[V]) *Dict[V] {
	a, b := m.values, d.values
	merged := make([]V, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			merged = append(merged, a[i])
			i++
		case a[i] > b[j]:
			merged = append(merged, b[j])
			j++
		default:
			merged = append(merged, a[i])
			i++
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	return &Dict[V]{values: merged}
}
