package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"hyrise/internal/query"
	"hyrise/internal/table"
)

func kvSchema() table.Schema {
	return table.Schema{
		{Name: "k", Type: table.Uint64},
		{Name: "v", Type: table.Uint64},
	}
}

func newKV(t testing.TB, shards int) *Table {
	t.Helper()
	st, err := New("t", kvSchema(), "k", shards)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewValidation(t *testing.T) {
	if _, err := New("t", kvSchema(), "k", 0); !errors.Is(err, ErrNoShards) {
		t.Fatalf("shards=0: %v", err)
	}
	if _, err := New("t", kvSchema(), "nope", 4); !errors.Is(err, ErrKeyColumn) {
		t.Fatalf("bad key: %v", err)
	}
	if _, err := New("t", table.Schema{}, "k", 4); err == nil {
		t.Fatal("empty schema accepted")
	}
	st := newKV(t, 4)
	if st.NumShards() != 4 || st.KeyColumn() != "k" || st.Name() != "t" {
		t.Fatalf("metadata: shards=%d key=%q name=%q", st.NumShards(), st.KeyColumn(), st.Name())
	}
}

func TestGIDRoundTrip(t *testing.T) {
	st := newKV(t, 4)
	for shard := 0; shard < 4; shard++ {
		for local := 0; local < 100; local++ {
			gid := st.gid(shard, local)
			s, l, err := st.Locate(gid)
			if err != nil || s != shard || l != local {
				t.Fatalf("Locate(gid(%d,%d)) = (%d,%d,%v)", shard, local, s, l, err)
			}
		}
	}
	if _, _, err := st.Locate(-1); err == nil {
		t.Fatal("negative gid accepted")
	}
}

func TestInsertRoutesAllShards(t *testing.T) {
	st := newKV(t, 8)
	for i := 0; i < 2000; i++ {
		if _, err := st.Insert([]any{uint64(i), uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st.Rows() != 2000 || st.ValidRows() != 2000 {
		t.Fatalf("rows=%d valid=%d", st.Rows(), st.ValidRows())
	}
	// splitmix64 should spread sequential keys across every shard, with no
	// shard grossly overloaded.
	for i, s := range st.Shards() {
		if n := s.Rows(); n < 100 || n > 500 {
			t.Errorf("shard %d has %d of 2000 rows (bad distribution)", i, n)
		}
	}
}

func TestKeyHashAgreesAcrossSpellings(t *testing.T) {
	st := newKV(t, 8)
	// int, uint32-width and uint64 spellings of the same key must route to
	// the same shard, or lookups would miss rows inserted via literals.
	for _, k := range []uint64{0, 1, 42, 1 << 31} {
		s1, err1 := st.shardFor(int(k))
		s2, err2 := st.shardFor(k)
		if err1 != nil || err2 != nil || s1 != s2 {
			t.Fatalf("key %d: int->%d(%v) uint64->%d(%v)", k, s1, err1, s2, err2)
		}
	}
	if _, err := st.shardFor("not-an-int"); err == nil {
		t.Fatal("string key accepted for uint64 column")
	}
}

func TestLookupRangeScanAcrossShards(t *testing.T) {
	st := newKV(t, 4)
	gids := map[uint64]int{}
	for i := 0; i < 500; i++ {
		gid, err := st.Insert([]any{uint64(i), uint64(i * 10)})
		if err != nil {
			t.Fatal(err)
		}
		gids[uint64(i)] = gid
	}
	h, err := ColumnOf[uint64](st, "k")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{0, 123, 499} {
		rows := h.Lookup(k)
		if len(rows) != 1 || rows[0] != gids[k] {
			t.Fatalf("Lookup(%d) = %v want [%d]", k, rows, gids[k])
		}
	}
	if rows := h.Lookup(1000); len(rows) != 0 {
		t.Fatalf("Lookup(absent) = %v", rows)
	}
	if rows := h.Range(100, 199); len(rows) != 100 {
		t.Fatalf("Range(100,199) found %d rows", len(rows))
	}
	// Range results are ascending global row ids.
	rows := h.Range(0, 499)
	if len(rows) != 500 {
		t.Fatalf("full range: %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1] >= rows[i] {
			t.Fatalf("rows not ascending at %d: %v %v", i, rows[i-1], rows[i])
		}
	}
	seen := 0
	h.Scan(func(gid int, v uint64) bool {
		seen++
		return true
	})
	if seen != 500 {
		t.Fatalf("Scan visited %d rows", seen)
	}
	// Early stop.
	seen = 0
	h.Scan(func(int, uint64) bool { seen++; return seen < 10 })
	if seen != 10 {
		t.Fatalf("Scan early-stop visited %d", seen)
	}
}

func TestUpdateDeleteSameShard(t *testing.T) {
	st := newKV(t, 4)
	gid, err := st.Insert([]any{uint64(7), uint64(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Non-key update stays in place (same shard).
	ngid, err := st.Update(gid, map[string]any{"v": uint64(2)})
	if err != nil {
		t.Fatal(err)
	}
	if s0, _, _ := st.Locate(gid); true {
		s1, _, _ := st.Locate(ngid)
		if s0 != s1 {
			t.Fatalf("non-key update moved shard %d -> %d", s0, s1)
		}
	}
	if st.IsValid(gid) || !st.IsValid(ngid) {
		t.Fatal("old version still valid or new invalid")
	}
	row, err := st.Row(ngid)
	if err != nil || row[1].(uint64) != 2 {
		t.Fatalf("Row(%d) = %v, %v", ngid, row, err)
	}
	// Double update of a stale id fails like the flat table.
	if _, err := st.Update(gid, map[string]any{"v": uint64(3)}); !errors.Is(err, table.ErrRowInvalid) {
		t.Fatalf("stale update: %v", err)
	}
	if err := st.Delete(ngid); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(ngid); !errors.Is(err, table.ErrRowInvalid) {
		t.Fatalf("double delete: %v", err)
	}
	if st.ValidRows() != 0 {
		t.Fatalf("ValidRows = %d", st.ValidRows())
	}
}

func TestUpdateCrossShardMove(t *testing.T) {
	st := newKV(t, 4)
	// Find two keys that hash to different shards.
	k1 := uint64(1)
	s1, _ := st.shardFor(k1)
	var k2 uint64
	for k := uint64(2); ; k++ {
		if s, _ := st.shardFor(k); s != s1 {
			k2 = k
			break
		}
	}
	gid, err := st.Insert([]any{k1, uint64(99)})
	if err != nil {
		t.Fatal(err)
	}
	ngid, err := st.Update(gid, map[string]any{"k": k2})
	if err != nil {
		t.Fatal(err)
	}
	oldShard, _, _ := st.Locate(gid)
	newShard, _, _ := st.Locate(ngid)
	if oldShard == newShard {
		t.Fatalf("expected a cross-shard move, both in shard %d", oldShard)
	}
	if st.IsValid(gid) || !st.IsValid(ngid) {
		t.Fatal("validity after move")
	}
	// Non-key values travel with the row.
	row, err := st.Row(ngid)
	if err != nil || row[0].(uint64) != k2 || row[1].(uint64) != 99 {
		t.Fatalf("moved row = %v, %v", row, err)
	}
	// The old version's history remains materializable in the old shard.
	old, err := st.Row(gid)
	if err != nil || old[0].(uint64) != k1 {
		t.Fatalf("old row = %v, %v", old, err)
	}
	h, _ := ColumnOf[uint64](st, "k")
	if rows := h.Lookup(k1); len(rows) != 0 {
		t.Fatalf("old key still visible: %v", rows)
	}
	if rows := h.Lookup(k2); len(rows) != 1 || rows[0] != ngid {
		t.Fatalf("new key lookup: %v", rows)
	}
	// A bad value in a cross-shard update must not invalidate the row.
	if _, err := st.Update(ngid, map[string]any{"k": k1, "v": "oops"}); err == nil {
		t.Fatal("bad value accepted")
	}
	if !st.IsValid(ngid) {
		t.Fatal("failed cross-shard update stranded the row")
	}
}

func TestMergeAll(t *testing.T) {
	st := newKV(t, 4)
	for i := 0; i < 1000; i++ {
		if _, err := st.Insert([]any{uint64(i), uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st.DeltaRows() != 1000 || st.MainRows() != 0 {
		t.Fatalf("pre-merge delta=%d main=%d", st.DeltaRows(), st.MainRows())
	}
	rep, err := st.MergeAll(context.Background(), MergeAllOptions{
		Merge: table.MergeOptions{Threads: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsMerged != 1000 {
		t.Fatalf("RowsMerged = %d", rep.RowsMerged)
	}
	if len(rep.Shards) != 4 {
		t.Fatalf("shard reports: %d", len(rep.Shards))
	}
	if rep.ThreadsPerShard != 1 {
		t.Fatalf("ThreadsPerShard = %d want 1 (4 threads / 4 shards)", rep.ThreadsPerShard)
	}
	if st.DeltaRows() != 0 || st.MainRows() != 1000 {
		t.Fatalf("post-merge delta=%d main=%d", st.DeltaRows(), st.MainRows())
	}
	// Everything still visible post-merge.
	h, _ := ColumnOf[uint64](st, "k")
	for _, k := range []uint64{0, 500, 999} {
		if len(h.Lookup(k)) != 1 {
			t.Fatalf("post-merge Lookup(%d) missed", k)
		}
	}
	// MaxConcurrent=1 serializes shards and hands each the full budget.
	for i := 1000; i < 1100; i++ {
		st.Insert([]any{uint64(i), uint64(i)})
	}
	rep, err = st.MergeAll(context.Background(), MergeAllOptions{
		Merge:         table.MergeOptions{Threads: 4},
		MaxConcurrent: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThreadsPerShard != 4 {
		t.Fatalf("ThreadsPerShard = %d want 4 (serialized)", rep.ThreadsPerShard)
	}
}

func TestMergeAllCancelled(t *testing.T) {
	st := newKV(t, 4)
	for i := 0; i < 100; i++ {
		st.Insert([]any{uint64(i), uint64(i)})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.MergeAll(ctx, MergeAllOptions{}); err == nil {
		t.Fatal("cancelled MergeAll returned nil error")
	}
	// Aborted merges must not lose rows.
	if st.ValidRows() != 100 {
		t.Fatalf("ValidRows after abort = %d", st.ValidRows())
	}
}

func TestNumericAggregates(t *testing.T) {
	st := newKV(t, 4)
	var want uint64
	for i := 1; i <= 100; i++ {
		st.Insert([]any{uint64(i), uint64(i)})
		want += uint64(i)
	}
	nh, err := NumericColumnOf[uint64](st, "v")
	if err != nil {
		t.Fatal(err)
	}
	if got := nh.Sum(); got != want {
		t.Fatalf("Sum = %d want %d", got, want)
	}
	if mn, ok := nh.Min(); !ok || mn != 1 {
		t.Fatalf("Min = %d, %v", mn, ok)
	}
	if mx, ok := nh.Max(); !ok || mx != 100 {
		t.Fatalf("Max = %d, %v", mx, ok)
	}
	h, _ := ColumnOf[uint64](st, "k")
	if got := h.Distinct(); got != 100 {
		t.Fatalf("Distinct = %d", got)
	}
	empty := newKV(t, 3)
	en, _ := NumericColumnOf[uint64](empty, "v")
	if _, ok := en.Min(); ok {
		t.Fatal("Min on empty table reported ok")
	}
}

func TestQueryAcrossShards(t *testing.T) {
	st, err := New("q", table.Schema{
		{Name: "k", Type: table.Uint64},
		{Name: "qty", Type: table.Uint32},
		{Name: "product", Type: table.String},
	}, "k", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p := "widget"
		if i%2 == 1 {
			p = "gadget"
		}
		if _, err := st.Insert([]any{uint64(i), uint32(i % 10), p}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Query(st, []query.Filter{
		{Column: "product", Op: query.Eq, Value: "widget"},
		{Column: "qty", Op: query.Between, Value: 2, Hi: 4},
	}, []string{"k", "qty"})
	if err != nil {
		t.Fatal(err)
	}
	// widgets have even i; qty = i%10 in {2,4} -> i%10 in {2,4}: 40 rows.
	if res.Count() != 40 {
		t.Fatalf("Count = %d want 40", res.Count())
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1] >= res.Rows[i] {
			t.Fatal("result rows not ascending")
		}
	}
	for i, gid := range res.Rows {
		if !st.IsValid(gid) {
			t.Fatalf("invalid row %d in result", gid)
		}
		qty := res.Values[i][1].(uint32)
		if qty < 2 || qty > 4 {
			t.Fatalf("row %d qty %d out of range", gid, qty)
		}
		k := res.Values[i][0].(uint64)
		if k%2 != 0 {
			t.Fatalf("row %d key %d is not a widget", gid, k)
		}
	}
	// Errors propagate.
	if _, err := Query(st, []query.Filter{{Column: "nope", Op: query.Eq, Value: 1}}, nil); err == nil {
		t.Fatal("bad column accepted")
	}
	if _, err := Query(st, nil, nil); err == nil {
		t.Fatal("empty filter list accepted")
	}
}

func TestStatsAggregation(t *testing.T) {
	st := newKV(t, 4)
	for i := 0; i < 300; i++ {
		st.Insert([]any{uint64(i), uint64(i)})
	}
	st.MergeAll(context.Background(), MergeAllOptions{})
	st.Insert([]any{uint64(1000), uint64(1)})
	s := st.Stats()
	if s.Shards != 4 || len(s.PerShard) != 4 {
		t.Fatalf("shard counts: %d/%d", s.Shards, len(s.PerShard))
	}
	if s.Rows != 301 || s.ValidRows != 301 || s.MainRows != 300 || s.DeltaRows != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.SizeBytes <= 0 {
		t.Fatal("SizeBytes not aggregated")
	}
	fracs := st.DeltaFractions()
	if len(fracs) != 4 {
		t.Fatalf("DeltaFractions: %v", fracs)
	}
	nonZero := 0
	for _, f := range fracs {
		if f > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Fatalf("exactly one shard should have delta rows: %v", fracs)
	}
}

func TestStringKeySharding(t *testing.T) {
	st, err := New("s", table.Schema{
		{Name: "name", Type: table.String},
		{Name: "v", Type: table.Uint64},
	}, "name", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := st.Insert([]any{fmt.Sprintf("key-%d", i), uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := ColumnOf[string](st, "name")
	for _, k := range []string{"key-0", "key-123", "key-199"} {
		if rows := h.Lookup(k); len(rows) != 1 {
			t.Fatalf("Lookup(%q) = %v", k, rows)
		}
	}
}

func TestShardCreateIndexAndStats(t *testing.T) {
	st := newKV(t, 4)
	for i := 0; i < 2000; i++ {
		if _, err := st.Insert([]any{uint64(i), uint64(i % 13)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.MergeAll(context.Background(), MergeAllOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := st.CreateIndex("nope"); err == nil {
		t.Fatal("CreateIndex(nope) did not error")
	}
	if err := st.CreateIndex("v"); err != nil {
		t.Fatal(err)
	}
	stats := st.IndexStats()
	if len(stats) != 1 || stats[0].Column != "v" {
		t.Fatalf("IndexStats = %+v", stats)
	}
	if stats[0].Postings != 2000 || stats[0].Builds != uint64(st.NumShards()) {
		t.Fatalf("aggregate = %+v", stats[0])
	}
	// Indexed cross-shard reads agree with an unindexed scan column.
	hv, err := NumericColumnOf[uint64](st, "v")
	if err != nil {
		t.Fatal(err)
	}
	got := hv.Lookup(5)
	want := 0
	hv.Scan(func(_ int, x uint64) bool {
		if x == 5 {
			want++
		}
		return true
	})
	if len(got) != want {
		t.Fatalf("indexed sharded Lookup: %d rows, scan %d", len(got), want)
	}
}
