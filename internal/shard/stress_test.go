package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyrise/internal/sched"
	"hyrise/internal/table"
)

// TestConcurrentStress runs concurrent writers, readers and the background
// multi-shard merge scheduler against one sharded table (run under -race
// in CI).  Invariants checked while merges commit underneath the readers:
//
//   - a key published by a writer always resolves to exactly one valid
//     row (updates replace versions atomically per shard), so a reader
//     can never observe a partially committed merge or a lost row;
//   - the final state accounts for every insert, update and delete.
func TestConcurrentStress(t *testing.T) {
	const (
		shards     = 4
		writers    = 4
		readers    = 3
		opsPerWrtr = 800
	)
	st := newKV(t, shards)
	targets := make([]sched.MergeTable, shards)
	for i, s := range st.Shards() {
		targets[i] = s
	}
	var schedMerges atomic.Int64
	ms := sched.NewMulti(targets, sched.Config{
		Fraction:     0.01,
		MinDeltaRows: 16,
		Interval:     2 * time.Millisecond,
		OnMerge:      func(table.Report) { schedMerges.Add(1) },
		OnError: func(err error) {
			// ErrMergeInProgress cannot happen (one scheduler per shard);
			// anything here is a real failure.
			t.Errorf("scheduler merge error: %v", err)
		},
	})
	if err := ms.Start(); err != nil {
		t.Fatal(err)
	}

	// published holds keys readers are allowed to verify.  Keys are
	// globally unique: writer w owns keys w*10^9 + i.
	var (
		pubMu     sync.Mutex
		published []uint64
	)
	publish := func(k uint64) {
		pubMu.Lock()
		published = append(published, k)
		pubMu.Unlock()
	}
	pick := func(i int) (uint64, bool) {
		pubMu.Lock()
		defer pubMu.Unlock()
		if len(published) == 0 {
			return 0, false
		}
		return published[i%len(published)], true
	}

	var deletes atomic.Int64
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			base := uint64(w) * 1_000_000_000
			for i := 0; i < opsPerWrtr; i++ {
				k := base + uint64(i)
				gid, err := st.Insert([]any{k, uint64(i)})
				if err != nil {
					t.Errorf("writer %d insert: %v", w, err)
					return
				}
				switch i % 5 {
				case 1:
					// Update the value in place; the key keeps exactly one
					// valid version throughout.
					if _, err := st.Update(gid, map[string]any{"v": uint64(i * 2)}); err != nil {
						t.Errorf("writer %d update: %v", w, err)
						return
					}
				case 2:
					// Delete the freshly inserted row; never publish it.
					if err := st.Delete(gid); err != nil {
						t.Errorf("writer %d delete: %v", w, err)
						return
					}
					deletes.Add(1)
					continue
				}
				publish(k)
			}
		}(w)
	}

	stop := make(chan struct{})
	var reads atomic.Int64
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			h, err := ColumnOf[uint64](st, "k")
			if err != nil {
				t.Error(err)
				return
			}
			nh, err := NumericColumnOf[uint64](st, "v")
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k, ok := pick(r*7919 + i)
				if !ok {
					continue
				}
				rows := h.Lookup(k)
				if len(rows) != 1 {
					t.Errorf("reader %d: key %d has %d valid rows mid-merge, want exactly 1 (rows=%v)",
						r, k, len(rows), rows)
					return
				}
				if i%50 == 0 {
					// Exercise cross-shard fan-in paths under merge churn.
					nh.Sum()
					h.Range(k, k+10)
				}
				reads.Add(1)
			}
		}(r)
	}

	writerWG.Wait()
	// Give readers a short window racing only the background scheduler.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	readerWG.Wait()
	ms.Stop()
	if err := ms.LastErr(); err != nil {
		t.Fatalf("scheduler errors: %v", err)
	}

	// Final full merge, then verify accounting.
	if _, err := st.MergeAll(context.Background(), MergeAllOptions{}); err != nil {
		t.Fatal(err)
	}
	inserted := writers * opsPerWrtr
	wantValid := inserted - int(deletes.Load())
	if got := st.ValidRows(); got != wantValid {
		t.Fatalf("ValidRows = %d want %d (no lost rows)", got, wantValid)
	}
	if st.DeltaRows() != 0 {
		t.Fatalf("DeltaRows = %d after MergeAll", st.DeltaRows())
	}
	h, _ := ColumnOf[uint64](st, "k")
	pubMu.Lock()
	finalKeys := append([]uint64(nil), published...)
	pubMu.Unlock()
	for _, k := range finalKeys {
		if rows := h.Lookup(k); len(rows) != 1 {
			t.Fatalf("after final merge key %d has %d valid rows", k, len(rows))
		}
	}
	if reads.Load() == 0 {
		t.Fatal("readers never ran")
	}
	t.Logf("stress: %d inserts, %d deletes, %d scheduler merges, %d verified reads",
		inserted, deletes.Load(), schedMerges.Load(), reads.Load())
}
