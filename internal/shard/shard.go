// Package shard horizontally partitions the delta-merge column store: a
// Table hash-partitions rows by one key column across N independent
// table.Table shards, each with its own main partitions, delta partitions
// and merge lifecycle.
//
// Sharding multiplies both halves of the paper's central trade (Krueger et
// al., VLDB 2011): inserts route by key hash and contend only on their own
// shard's lock, so write throughput scales with shards; and because every
// shard runs the multi-core merge independently, merges parallelize across
// shards as well as within columns, keeping each individual merge — and
// its brief commit lock — small.
//
// Guarantees:
//
//   - A row lives in exactly one shard, determined by the hash of its key
//     column value.  Updates that change the key value may relocate the
//     row to another shard; the move invalidates the old version and
//     inserts the new one under both shard locks with ONE epoch stamp, so
//     it is atomic to snapshots.
//   - Each shard's merge is individually atomic and online, exactly as in
//     the flat table.
//   - All shards share one epoch clock, so Snapshot() captures a single
//     epoch that is consistent across every shard: reads through the view
//     (LookupAt/RangeAt/ScanAt/QueryAt/ValidRowsAt) reflect one frozen
//     state of the whole table, even while inserts, updates, deletes,
//     cross-shard moves and per-shard merges proceed underneath.  Latest
//     reads (no view) still acquire shard read locks one at a time and can
//     observe shard A before and shard B after a concurrent multi-shard
//     writer; use a snapshot when that matters.
//   - Global row ids are stable for the lifetime of the row version and
//     encode the owning shard; they are not dense and their order is not
//     global insertion order.
package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hyrise/internal/epoch"
	"hyrise/internal/oplog"
	"hyrise/internal/table"
)

// MaxShards bounds the shard count a table may be created with; the
// snapshot loader (internal/persist) trusts the same bound, so any table
// New accepts round-trips through Save/Load.
const MaxShards = 1 << 16

// Errors returned by sharded-table operations.
var (
	// ErrNoShards is returned by New for a shard count outside
	// [1, MaxShards].
	ErrNoShards = errors.New("shard: shard count must be in [1, 65536]")
	// ErrKeyColumn is returned by New when the key column does not exist.
	ErrKeyColumn = errors.New("shard: no such key column")
)

// Table is a hash-partitioned collection of table.Table shards sharing one
// epoch clock.
type Table struct {
	name   string
	schema table.Schema
	keyIdx int
	clock  *epoch.Clock // shared by all shards; one capture = one epoch everywhere
	shards []*table.Table
}

// New creates an empty sharded table partitioned by the named key column.
func New(name string, schema table.Schema, key string, shards int) (*Table, error) {
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("%w: %d", ErrNoShards, shards)
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	keyIdx := -1
	for i, def := range schema {
		if def.Name == key {
			keyIdx = i
		}
	}
	if keyIdx < 0 {
		return nil, fmt.Errorf("%w: %q", ErrKeyColumn, key)
	}
	st := &Table{name: name, schema: schema, keyIdx: keyIdx, clock: epoch.NewClock()}
	for i := 0; i < shards; i++ {
		s, err := table.NewWithClock(fmt.Sprintf("%s/%d", name, i), schema, st.clock)
		if err != nil {
			return nil, err
		}
		st.shards = append(st.shards, s)
	}
	return st, nil
}

// Clock returns the epoch clock shared by every shard.
func (st *Table) Clock() *epoch.Clock { return st.clock }

// AttachOplog connects every shard's write path to one replication log
// (table.Table.AttachOplog), recording each shard's index in its ops so a
// follower replays them into the matching partition.  The log must be
// stamped by the store's shared clock.
func (st *Table) AttachOplog(l *oplog.Log) error {
	for i, s := range st.shards {
		if err := s.AttachOplog(l, i); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot captures one epoch across ALL shards atomically (a single
// fetch-add on the shared clock) and returns it as a read view pinned
// against garbage collection: reads through the view see one frozen,
// cross-shard-consistent state, and no shard's merge reclaims a version
// the view can see.  Release the view when done reading so the GC
// watermark can advance.
func (st *Table) Snapshot() table.View { return table.PinnedView(st.clock) }

// SetGC enables or disables garbage collection during merges on every
// shard (on by default).
func (st *Table) SetGC(enabled bool) {
	for _, s := range st.shards {
		s.SetGC(enabled)
	}
}

// GCEnabled reports whether merges garbage-collect (true when every shard
// has GC enabled).
func (st *Table) GCEnabled() bool {
	for _, s := range st.shards {
		if !s.GCEnabled() {
			return false
		}
	}
	return true
}

// VisibleAt reports whether the row exists and is visible at the view's
// epoch.
func (st *Table) VisibleAt(v table.View, gid int) bool {
	s, local, err := st.Locate(gid)
	if err != nil {
		return false
	}
	return st.shards[s].VisibleAt(v, local)
}

// Name returns the table name.
func (st *Table) Name() string { return st.name }

// Schema returns the table schema.
func (st *Table) Schema() table.Schema { return st.schema }

// NumShards returns the shard count.
func (st *Table) NumShards() int { return len(st.shards) }

// KeyColumn returns the name of the hash-partitioning column.
func (st *Table) KeyColumn() string { return st.schema[st.keyIdx].Name }

// Shard returns the i-th underlying table (for inspection, per-shard
// scheduling and tests).
func (st *Table) Shard(i int) *table.Table { return st.shards[i] }

// Shards returns all underlying tables in shard order.
func (st *Table) Shards() []*table.Table {
	out := make([]*table.Table, len(st.shards))
	copy(out, st.shards)
	return out
}

// Global row ids interleave shard-local row ids:
// gid = local*NumShards + shard.  The encoding is stable across merges
// (merges never renumber rows) and lets any layer route a gid back to its
// shard without a lookup table.

// gid encodes a shard-local row id as a global row id.
func (st *Table) gid(shard, local int) int { return local*len(st.shards) + shard }

// Locate decodes a global row id into its shard index and shard-local row
// id.  It does not check that the local row exists.
func (st *Table) Locate(gid int) (shard, local int, err error) {
	if gid < 0 {
		return 0, 0, fmt.Errorf("%w: %d", table.ErrRowRange, gid)
	}
	return gid % len(st.shards), gid / len(st.shards), nil
}

// shardFor hashes a key value to its owning shard.  The value is first
// normalized through table.Convert so that e.g. int literals, uint32 and
// uint64 spellings of the same key agree.
func (st *Table) shardFor(key any) (int, error) {
	cv, err := table.Convert(st.schema[st.keyIdx].Type, key)
	if err != nil {
		return 0, err
	}
	var h uint64
	switch x := cv.(type) {
	case uint32:
		h = mix64(uint64(x))
	case uint64:
		h = mix64(x)
	case string:
		h = fnv1a(x)
	}
	return int(h % uint64(len(st.shards))), nil
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed integer
// hash so that sequential keys spread evenly across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv1a hashes a string key (FNV-1a, 64-bit).
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Insert appends one row to the shard owning its key value and returns the
// global row id.  Concurrent inserts to different shards do not contend.
func (st *Table) Insert(values []any) (int, error) {
	if len(values) != len(st.schema) {
		return 0, fmt.Errorf("%w: got %d want %d", table.ErrArity, len(values), len(st.schema))
	}
	s, err := st.shardFor(values[st.keyIdx])
	if err != nil {
		return 0, err
	}
	local, err := st.shards[s].Insert(values)
	if err != nil {
		return 0, err
	}
	return st.gid(s, local), nil
}

// Update applies the insert-only update protocol to a global row id and
// returns the new version's global row id.  If the key column changes to a
// value hashing to a different shard, the row relocates atomically
// (table.MoveRow): the invalidation and the re-insert happen under both
// shard locks with one epoch stamp, so concurrent updates of the same row
// resolve to exactly one winner (the losers see table.ErrRowInvalid) and
// any snapshot or fan-out query sees exactly one of the two versions.
func (st *Table) Update(gid int, changes map[string]any) (int, error) {
	s, local, err := st.Locate(gid)
	if err != nil {
		return 0, err
	}
	newKey, keyChanged := changes[st.schema[st.keyIdx].Name]
	if !keyChanged {
		nl, err := st.shards[s].Update(local, changes)
		if err != nil {
			return 0, err
		}
		return st.gid(s, nl), nil
	}
	s2, err := st.shardFor(newKey)
	if err != nil {
		return 0, err
	}
	if s2 == s {
		nl, err := st.shards[s].Update(local, changes)
		if err != nil {
			return 0, err
		}
		return st.gid(s, nl), nil
	}
	// Cross-shard move.  Validate every changed value against the schema
	// before touching either shard, so a bad value cannot strand the row.
	values, err := st.shards[s].Row(local)
	if err != nil {
		return 0, err
	}
	for name, v := range changes {
		ci := -1
		for i, def := range st.schema {
			if def.Name == name {
				ci = i
			}
		}
		if ci < 0 {
			return 0, fmt.Errorf("%w: %q", table.ErrNoColumn, name)
		}
		cv, err := table.Convert(st.schema[ci].Type, v)
		if err != nil {
			return 0, err
		}
		values[ci] = cv
	}
	// MoveRow atomically claims the current version and re-inserts it into
	// the target shard under both locks: if a concurrent update got there
	// first this fails with ErrRowInvalid and nothing happened.  Row
	// versions are immutable, so the values read above are the claimed
	// version's values.
	nl, err := table.MoveRow(st.shards[s], local, st.shards[s2], values)
	if err != nil {
		return 0, err
	}
	return st.gid(s2, nl), nil
}

// Delete invalidates the row with the given global row id.
func (st *Table) Delete(gid int) error {
	s, local, err := st.Locate(gid)
	if err != nil {
		return err
	}
	return st.shards[s].Delete(local)
}

// Row materializes all column values of a global row id (valid or not).
func (st *Table) Row(gid int) ([]any, error) {
	s, local, err := st.Locate(gid)
	if err != nil {
		return nil, err
	}
	return st.shards[s].Row(local)
}

// IsValid reports whether the row is the current version.
func (st *Table) IsValid(gid int) bool {
	s, local, err := st.Locate(gid)
	if err != nil {
		return false
	}
	return st.shards[s].IsValid(local)
}

// Rows returns the total number of stored row versions across shards.
func (st *Table) Rows() int {
	n := 0
	for _, s := range st.shards {
		n += s.Rows()
	}
	return n
}

// ValidRows returns the number of current rows across shards, counted
// under one epoch capture: a row mid-move between shards is counted
// exactly once, where per-shard counting could see it in both shards or
// neither.  The capture is pinned for the duration of the count — a
// concurrent GC merge could otherwise reclaim a version visible at the
// captured epoch and the count would miss it — and released before
// returning, so it never holds the watermark beyond the call.
func (st *Table) ValidRows() int {
	v := table.PinnedView(st.clock)
	defer v.Release()
	return st.ValidRowsAt(v)
}

// ValidRowsAt returns the number of rows visible at the view's epoch
// across all shards.
func (st *Table) ValidRowsAt(v table.View) int {
	n := 0
	for _, s := range st.shards {
		n += s.ValidRowsAt(v)
	}
	return n
}

// MainRows returns the summed main-partition tuple count.
func (st *Table) MainRows() int {
	n := 0
	for _, s := range st.shards {
		n += s.MainRows()
	}
	return n
}

// DeltaRows returns the summed delta tuple count.
func (st *Table) DeltaRows() int {
	n := 0
	for _, s := range st.shards {
		n += s.DeltaRows()
	}
	return n
}

// DeltaFractions returns every shard's N_D/N_M merge-trigger metric; the
// per-shard scheduler watches these independently.
func (st *Table) DeltaFractions() []float64 {
	out := make([]float64, len(st.shards))
	for i, s := range st.shards {
		out[i] = s.DeltaFraction()
	}
	return out
}

// Merging reports whether any shard currently runs a merge.
func (st *Table) Merging() bool {
	for _, s := range st.shards {
		if s.Merging() {
			return true
		}
	}
	return false
}

// MergeAllOptions configures a cross-shard parallel merge.
type MergeAllOptions struct {
	// Merge configures each shard's merge.  Merge.Threads is the TOTAL
	// thread budget N_T (0 = GOMAXPROCS); it is divided evenly across the
	// shards merging concurrently, each shard receiving at least one.
	Merge table.MergeOptions
	// MaxConcurrent caps how many shards merge at once (0 = all shards).
	MaxConcurrent int
}

// MergeAllReport aggregates one MergeAll run.
type MergeAllReport struct {
	// Shards holds per-shard merge reports in shard order.
	Shards []table.Report
	// RowsMerged is the summed delta tuple count folded into mains by the
	// shards that committed; rows of aborted shards stay in their deltas
	// and are not counted.
	RowsMerged int
	// RowsReclaimed is the summed count of dead versions garbage-collected
	// by the shards that committed.
	RowsReclaimed int
	// Wall is the end-to-end duration of the cross-shard merge.
	Wall time.Duration
	// ThreadsPerShard is the per-shard budget each merge ran with.
	ThreadsPerShard int
}

// MergeAll runs the merge process on every shard, parallelized across
// shards with a per-shard slice of the total thread budget.  Each shard's
// merge is individually online and atomic (see table.Merge); there is no
// cross-shard atomicity — queries may observe some shards merged and
// others not, which changes no visible row content.
//
// On failure (including ctx cancellation) the joined per-shard errors are
// returned after all in-flight shard merges settle — match with errors.Is,
// not == — and shards that committed stay committed.
func (st *Table) MergeAll(ctx context.Context, opts MergeAllOptions) (MergeAllReport, error) {
	conc := opts.MaxConcurrent
	if conc <= 0 || conc > len(st.shards) {
		conc = len(st.shards)
	}
	total := opts.Merge.Threads
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	perShard := total / conc
	if perShard < 1 {
		perShard = 1
	}

	start := time.Now()
	rep := MergeAllReport{
		Shards:          make([]table.Report, len(st.shards)),
		ThreadsPerShard: perShard,
	}
	errs := make([]error, len(st.shards))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, s := range st.shards {
		wg.Add(1)
		go func(i int, s *table.Table) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := opts.Merge
			o.Threads = perShard
			rep.Shards[i], errs[i] = s.Merge(ctx, o)
		}(i, s)
	}
	wg.Wait()
	for i, r := range rep.Shards {
		// An aborted shard's report still carries the frozen delta count;
		// only committed shards actually folded rows into their mains.
		if errs[i] == nil {
			rep.RowsMerged += r.RowsMerged
			rep.RowsReclaimed += r.RowsReclaimed
		}
	}
	rep.Wall = time.Since(start)
	return rep, errors.Join(errs...)
}

// Stats aggregates storage statistics across shards.
type Stats struct {
	Name      string
	Shards    int
	Rows      int
	ValidRows int
	MainRows  int
	DeltaRows int
	SizeBytes int
	// RetiredRows / ReclaimedBytes sum the shards' cumulative GC counters.
	RetiredRows    int
	ReclaimedBytes int
	// PerShard holds each shard's full statistics in shard order.
	PerShard []table.Stats
}

// Stats returns per-shard and aggregated storage statistics.  Each shard's
// snapshot is individually consistent; the aggregate is not a cross-shard
// snapshot.
func (st *Table) Stats() Stats {
	out := Stats{Name: st.name, Shards: len(st.shards)}
	for _, s := range st.shards {
		ts := s.Stats()
		out.PerShard = append(out.PerShard, ts)
		out.Rows += ts.Rows
		out.ValidRows += ts.ValidRows
		out.MainRows += ts.MainRows
		out.DeltaRows += ts.DeltaRows
		out.SizeBytes += ts.SizeBytes
		out.RetiredRows += ts.RetiredRows
		out.ReclaimedBytes += ts.ReclaimedBytes
	}
	return out
}
