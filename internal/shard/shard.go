// Package shard horizontally partitions the delta-merge column store: a
// Table hash-partitions rows by one key column across N independent
// table.Table shards, each with its own main partitions, delta partitions
// and merge lifecycle.
//
// Sharding multiplies both halves of the paper's central trade (Krueger et
// al., VLDB 2011): inserts route by key hash and contend only on their own
// shard's lock, so write throughput scales with shards; and because every
// shard runs the multi-core merge independently, merges parallelize across
// shards as well as within columns, keeping each individual merge — and
// its brief commit lock — small.
//
// # Topology
//
// The routing state lives in an immutable shard map published through one
// atomic pointer: the append-only list of every physical partition ever
// created, plus the active window — the suffix of partitions that key
// hashing currently routes writes to.  Reshard (see reshard.go) appends a
// new window, migrates rows into it and republishes the map; partitions
// outside the active window are sealed (no new row versions) but keep
// serving reads until garbage collection drains them.  Readers therefore
// fan out over ALL physical partitions, writers route over the active
// window only.
//
// Guarantees:
//
//   - A row lives in exactly one partition; current versions live in the
//     active window, determined by the hash of the key column value.
//     Updates that change the key value may relocate the row to another
//     partition; the move invalidates the old version and inserts the new
//     one under both partition locks with ONE epoch stamp, so it is atomic
//     to snapshots.
//   - Each partition's merge is individually atomic and online, exactly as
//     in the flat table.
//   - All partitions share one epoch clock, so Snapshot() captures a
//     single epoch that is consistent across every partition: reads
//     through the view (LookupAt/RangeAt/ScanAt/QueryAt/ValidRowsAt)
//     reflect one frozen state of the whole table, even while inserts,
//     updates, deletes, cross-shard moves, per-shard merges and online
//     reshards proceed underneath.  Latest reads (no view) still acquire
//     shard read locks one at a time and can observe shard A before and
//     shard B after a concurrent multi-shard writer; use a snapshot when
//     that matters.
//   - Global row ids are stable for the lifetime of the row version and
//     encode the owning physical partition with a fixed stride
//     (independent of the shard count), so they survive resharding; they
//     are not dense and their order is not global insertion order.
package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyrise/internal/epoch"
	"hyrise/internal/oplog"
	"hyrise/internal/table"
)

// MaxShards bounds the physical partition count a table may reach across
// its lifetime of reshards; the snapshot loader (internal/persist) trusts
// the same bound, so any table New accepts round-trips through Save/Load.
// It is also the global-row-id stride, which is why it is fixed rather
// than per-table.
const MaxShards = 1 << 16

// gidStride is the global-row-id encoding stride:
// gid = local*gidStride + physicalPartition.  Fixed at MaxShards so the
// encoding — and therefore every handed-out row id — survives reshards.
const gidStride = MaxShards

// Errors returned by sharded-table operations.
var (
	// ErrNoShards is returned by New (and Reshard) for a shard count
	// outside [1, MaxShards], or when the cumulative physical partition
	// count would exceed MaxShards.
	ErrNoShards = errors.New("shard: shard count must be in [1, 65536]")
	// ErrKeyColumn is returned by New when the key column does not exist.
	ErrKeyColumn = errors.New("shard: no such key column")
)

// shardMap is one immutable routing state.  parts is append-only across
// map versions; the active window parts[base : base+n] is always the tail
// (base+n == len(parts)), so "sealed" and "outside the active window" are
// the same set.  During a reshard the map additionally carries the
// migration target window: writes route there, while base/n still name
// the pre-cutover active window (what NumShards reports until cutover).
type shardMap struct {
	version uint64
	parts   []*table.Table
	base, n int // active window: parts[base : base+n]

	migrating         bool
	nextBase, nextLen int // target window while migrating
}

// active returns the active window's partitions.
func (m *shardMap) active() []*table.Table { return m.parts[m.base : m.base+m.n] }

// writeWindow returns the window writes route to: the migration target
// while a reshard is in flight, the active window otherwise.
func (m *shardMap) writeWindow() (base, n int) {
	if m.migrating {
		return m.nextBase, m.nextLen
	}
	return m.base, m.n
}

// Table is a hash-partitioned collection of table.Table shards sharing one
// epoch clock.
type Table struct {
	name   string
	schema table.Schema
	keyIdx int
	clock  *epoch.Clock // shared by all shards; one capture = one epoch everywhere

	smap atomic.Pointer[shardMap]

	// reshardMu serializes reshards (and snapshot saves against them, via
	// PersistTopology callers holding the map they read).
	reshardMu sync.Mutex

	// mu guards the slow-changing wiring below; never held on data paths.
	mu        sync.Mutex
	olog      *oplog.Log // attached replication log, nil when unattached
	indexCols []string   // group-key indexes re-created on new partitions
	onPart    func(p *table.Table, phys int)
	gcOn      bool // inherited by reshard-created partitions
}

// New creates an empty sharded table partitioned by the named key column.
func New(name string, schema table.Schema, key string, shards int) (*Table, error) {
	return NewRestored(name, schema, key, shards, 0, shards, 1)
}

// NewRestored creates a sharded table with an explicit physical topology:
// parts physical partitions of which the tail window
// [activeBase, activeBase+activeLen) is active, at shard-map version
// version.  The snapshot loader uses it to restore a post-reshard (or
// mid-reshard, normalized to its cutover state) topology; New is the
// degenerate all-active case.  Partitions before activeBase are NOT
// sealed here — the loader must populate them first and seal them itself
// (writes never route to them either way; sealing additionally keeps
// updates from parking new versions there).
func NewRestored(name string, schema table.Schema, key string, parts, activeBase, activeLen int, version uint64) (*Table, error) {
	if activeLen < 1 || parts < 1 || parts > MaxShards || activeBase+activeLen != parts {
		return nil, fmt.Errorf("%w: %d parts, active [%d,%d)", ErrNoShards, parts, activeBase, activeBase+activeLen)
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	keyIdx := -1
	for i, def := range schema {
		if def.Name == key {
			keyIdx = i
		}
	}
	if keyIdx < 0 {
		return nil, fmt.Errorf("%w: %q", ErrKeyColumn, key)
	}
	st := &Table{name: name, schema: schema, keyIdx: keyIdx, clock: epoch.NewClock(), gcOn: true}
	m := &shardMap{version: version, base: activeBase, n: activeLen}
	for i := 0; i < parts; i++ {
		s, err := table.NewWithClock(fmt.Sprintf("%s/%d", name, i), schema, st.clock)
		if err != nil {
			return nil, err
		}
		m.parts = append(m.parts, s)
	}
	st.smap.Store(m)
	return st, nil
}

// OnPartition registers fn to be called once for every partition a future
// Reshard (or replayed reshard-begin) creates, with the partition and its
// physical index, after the partition is published in the shard map.  The
// server uses it to wire per-partition observers (merge hooks, metrics) to
// reshard-created partitions.  One hook; registering replaces the old one.
func (st *Table) OnPartition(fn func(p *table.Table, phys int)) {
	st.mu.Lock()
	st.onPart = fn
	st.mu.Unlock()
}

// load returns the current shard map.  Maps are immutable; a loaded map
// stays internally consistent for as long as the caller uses it, it just
// may no longer be the published one.
func (st *Table) load() *shardMap { return st.smap.Load() }

// Clock returns the epoch clock shared by every shard.
func (st *Table) Clock() *epoch.Clock { return st.clock }

// AttachOplog connects every partition's write path to one replication log
// (table.Table.AttachOplog), recording each partition's PHYSICAL index in
// its ops so a follower replays them into the matching partition.  The log
// must be stamped by the store's shared clock.  Attach before serving
// writes and before any Reshard; partitions a later reshard creates attach
// to the same log automatically.
func (st *Table) AttachOplog(l *oplog.Log) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	m := st.load()
	for i, s := range m.parts {
		if err := s.AttachOplog(l, i); err != nil {
			return err
		}
	}
	st.olog = l
	return nil
}

// Snapshot captures one epoch across ALL shards atomically (a single
// fetch-add on the shared clock) and returns it as a read view pinned
// against garbage collection: reads through the view see one frozen,
// cross-shard-consistent state, and no shard's merge reclaims a version
// the view can see.  Release the view when done reading so reclamation
// can advance past it.
func (st *Table) Snapshot() table.View { return table.PinnedView(st.clock) }

// SetGC enables or disables garbage collection during merges on every
// partition (on by default); reshard-created partitions inherit the
// setting.
func (st *Table) SetGC(enabled bool) {
	st.mu.Lock()
	st.gcOn = enabled
	st.mu.Unlock()
	for _, s := range st.load().parts {
		s.SetGC(enabled)
	}
}

// GCEnabled reports whether merges garbage-collect (true when every
// partition has GC enabled).
func (st *Table) GCEnabled() bool {
	for _, s := range st.load().parts {
		if !s.GCEnabled() {
			return false
		}
	}
	return true
}

// VisibleAt reports whether the row exists and is visible at the view's
// epoch.
func (st *Table) VisibleAt(v table.View, gid int) bool {
	m := st.load()
	s, local, err := locate(m, gid)
	if err != nil {
		return false
	}
	return m.parts[s].VisibleAt(v, local)
}

// Name returns the table name.
func (st *Table) Name() string { return st.name }

// Schema returns the table schema.
func (st *Table) Schema() table.Schema { return st.schema }

// NumShards returns the ACTIVE shard count — the number of partitions key
// hashing spreads writes over.  It changes at reshard cutover; see
// NumParts for the physical partition count.
func (st *Table) NumShards() int { return st.load().n }

// NumParts returns the physical partition count, including partitions
// retired by resharding that still hold readable history.
func (st *Table) NumParts() int { return len(st.load().parts) }

// MapVersion returns the current shard-map version.  It increments twice
// per reshard: once when migration begins, once at cutover.
func (st *Table) MapVersion() uint64 { return st.load().version }

// Resharding reports whether a reshard is migrating rows right now.
func (st *Table) Resharding() bool { return st.load().migrating }

// ActiveWindow returns the physical index of the first active partition
// and the active partition count; the active window is always the tail of
// the physical partition list.
func (st *Table) ActiveWindow() (base, n int) {
	m := st.load()
	return m.base, m.n
}

// KeyColumn returns the name of the hash-partitioning column.
func (st *Table) KeyColumn() string { return st.schema[st.keyIdx].Name }

// Shard returns the physical partition with index i (for inspection,
// per-shard scheduling and tests).  Indices at or beyond NumParts are the
// caller's error.
func (st *Table) Shard(i int) *table.Table { return st.load().parts[i] }

// Shards returns ALL physical partitions in physical order — the active
// window plus any partitions retired by earlier reshards (reads fan out
// over all of them).
func (st *Table) Shards() []*table.Table {
	m := st.load()
	out := make([]*table.Table, len(m.parts))
	copy(out, m.parts)
	return out
}

// Global row ids pack a partition-local row id with its PHYSICAL partition
// index at a fixed stride: gid = local*gidStride + part.  The encoding is
// stable across merges (merges never renumber rows) and across reshards
// (the stride does not depend on the shard count, and physical partition
// indices are never reused), and lets any layer route a gid back to its
// partition without a lookup table.

// gid encodes a partition-local row id as a global row id.
func (st *Table) gid(phys, local int) int { return local*gidStride + phys }

// locate decodes a global row id against a shard map.  It does not check
// that the local row exists.
func locate(m *shardMap, gid int) (phys, local int, err error) {
	if gid < 0 {
		return 0, 0, fmt.Errorf("%w: %d", table.ErrRowRange, gid)
	}
	phys, local = gid%gidStride, gid/gidStride
	if phys >= len(m.parts) {
		return 0, 0, fmt.Errorf("%w: %d (no partition %d)", table.ErrRowRange, gid, phys)
	}
	return phys, local, nil
}

// Locate decodes a global row id into its physical partition index and
// partition-local row id.  It does not check that the local row exists.
func (st *Table) Locate(gid int) (shard, local int, err error) {
	return locate(st.load(), gid)
}

// routeFor hashes a key value to the physical index of its owning
// partition in the map's write window.  The value is first normalized
// through table.Convert so that e.g. int literals, uint32 and uint64
// spellings of the same key agree.
func (st *Table) routeFor(m *shardMap, key any) (int, error) {
	cv, err := table.Convert(st.schema[st.keyIdx].Type, key)
	if err != nil {
		return 0, err
	}
	var h uint64
	switch x := cv.(type) {
	case uint32:
		h = mix64(uint64(x))
	case uint64:
		h = mix64(x)
	case string:
		h = fnv1a(x)
	}
	base, n := m.writeWindow()
	return base + int(h%uint64(n)), nil
}

// shardFor routes a key value against the current map's write window
// (tests and diagnostics; data paths route against a map they loaded once
// so routing and insertion agree).
func (st *Table) shardFor(key any) (int, error) { return st.routeFor(st.load(), key) }

// mix64 is the splitmix64 finalizer: a cheap, well-distributed integer
// hash so that sequential keys spread evenly across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv1a hashes a string key (FNV-1a, 64-bit).
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Insert appends one row to the partition owning its key value and returns
// the global row id.  Concurrent inserts to different partitions do not
// contend.  An insert that races a reshard's seal simply re-routes through
// the fresh shard map (the op is retried, never half-applied).
func (st *Table) Insert(values []any) (int, error) {
	if len(values) != len(st.schema) {
		return 0, fmt.Errorf("%w: got %d want %d", table.ErrArity, len(values), len(st.schema))
	}
	for {
		m := st.load()
		s, err := st.routeFor(m, values[st.keyIdx])
		if err != nil {
			return 0, err
		}
		local, err := m.parts[s].Insert(values)
		if errors.Is(err, table.ErrSealed) {
			continue // a reshard republished routing between load and insert
		}
		if err != nil {
			return 0, err
		}
		return st.gid(s, local), nil
	}
}

// Update applies the insert-only update protocol to a global row id and
// returns the new version's global row id.  If the key column changes to a
// value hashing to a different partition — or the row's current partition
// was sealed by a reshard — the row relocates atomically (table.MoveRow):
// the invalidation and the re-insert happen under both partition locks
// with one epoch stamp, so concurrent updates of the same row resolve to
// exactly one winner (the losers see table.ErrRowInvalid) and any snapshot
// or fan-out query sees exactly one of the two versions.
func (st *Table) Update(gid int, changes map[string]any) (int, error) {
	for {
		m := st.load()
		s, local, err := locate(m, gid)
		if err != nil {
			return 0, err
		}
		src := m.parts[s]
		if !src.Sealed() {
			// Fast path: in-place update unless the key moves the row.
			newKey, keyChanged := changes[st.schema[st.keyIdx].Name]
			if !keyChanged {
				nl, err := src.Update(local, changes)
				if errors.Is(err, table.ErrSealed) {
					continue // sealed between the check and the update
				}
				if err != nil {
					return 0, err
				}
				return st.gid(s, nl), nil
			}
			s2, err := st.routeFor(m, newKey)
			if err != nil {
				return 0, err
			}
			if s2 == s {
				nl, err := src.Update(local, changes)
				if errors.Is(err, table.ErrSealed) {
					continue
				}
				if err != nil {
					return 0, err
				}
				return st.gid(s, nl), nil
			}
		}
		// Relocation: key moved, or the row sits in a sealed partition and
		// its new version must land in the active window.  Validate every
		// changed value against the schema before touching either
		// partition, so a bad value cannot strand the row.
		values, err := src.Row(local)
		if err != nil {
			return 0, err
		}
		for name, v := range changes {
			ci := -1
			for i, def := range st.schema {
				if def.Name == name {
					ci = i
				}
			}
			if ci < 0 {
				return 0, fmt.Errorf("%w: %q", table.ErrNoColumn, name)
			}
			cv, err := table.Convert(st.schema[ci].Type, v)
			if err != nil {
				return 0, err
			}
			values[ci] = cv
		}
		s2, err := st.routeFor(m, values[st.keyIdx])
		if err != nil {
			return 0, err
		}
		if s2 == s {
			// Routing resolved to the same (unsealed) partition after all.
			nl, err := src.Update(local, changes)
			if errors.Is(err, table.ErrSealed) {
				continue
			}
			if err != nil {
				return 0, err
			}
			return st.gid(s, nl), nil
		}
		// MoveRow atomically claims the current version and re-inserts it
		// into the target partition under both locks: if a concurrent
		// update got there first this fails with ErrRowInvalid and nothing
		// happened.  Row versions are immutable, so the values read above
		// are the claimed version's values.
		nl, err := table.MoveRow(src, local, m.parts[s2], values)
		if errors.Is(err, table.ErrSealed) {
			continue // destination sealed by a reshard racing this update
		}
		if err != nil {
			return 0, err
		}
		return st.gid(s2, nl), nil
	}
}

// Delete invalidates the row with the given global row id.  Invalidation
// is allowed in sealed partitions (it creates no new version).
func (st *Table) Delete(gid int) error {
	m := st.load()
	s, local, err := locate(m, gid)
	if err != nil {
		return err
	}
	return m.parts[s].Delete(local)
}

// Row materializes all column values of a global row id (valid or not).
func (st *Table) Row(gid int) ([]any, error) {
	m := st.load()
	s, local, err := locate(m, gid)
	if err != nil {
		return nil, err
	}
	return m.parts[s].Row(local)
}

// IsValid reports whether the row is the current version.
func (st *Table) IsValid(gid int) bool {
	m := st.load()
	s, local, err := locate(m, gid)
	if err != nil {
		return false
	}
	return m.parts[s].IsValid(local)
}

// Rows returns the total number of stored row versions across partitions.
func (st *Table) Rows() int {
	n := 0
	for _, s := range st.load().parts {
		n += s.Rows()
	}
	return n
}

// ValidRows returns the number of current rows across partitions, counted
// under one epoch capture: a row mid-move between partitions is counted
// exactly once, where per-partition counting could see it in both or
// neither.  The capture is pinned for the duration of the count — a
// concurrent GC merge could otherwise reclaim a version visible at the
// captured epoch and the count would miss it — and released before
// returning, so it never holds retention beyond the call.
func (st *Table) ValidRows() int {
	v := table.PinnedView(st.clock)
	defer v.Release()
	return st.ValidRowsAt(v)
}

// ValidRowsAt returns the number of rows visible at the view's epoch
// across all partitions.
func (st *Table) ValidRowsAt(v table.View) int {
	n := 0
	for _, s := range st.load().parts {
		n += s.ValidRowsAt(v)
	}
	return n
}

// MainRows returns the summed main-partition tuple count.
func (st *Table) MainRows() int {
	n := 0
	for _, s := range st.load().parts {
		n += s.MainRows()
	}
	return n
}

// DeltaRows returns the summed delta tuple count.
func (st *Table) DeltaRows() int {
	n := 0
	for _, s := range st.load().parts {
		n += s.DeltaRows()
	}
	return n
}

// DeltaFractions returns every physical partition's N_D/N_M merge-trigger
// metric; the per-shard scheduler watches these independently.
func (st *Table) DeltaFractions() []float64 {
	parts := st.load().parts
	out := make([]float64, len(parts))
	for i, s := range parts {
		out[i] = s.DeltaFraction()
	}
	return out
}

// Merging reports whether any partition currently runs a merge.
func (st *Table) Merging() bool {
	for _, s := range st.load().parts {
		if s.Merging() {
			return true
		}
	}
	return false
}

// MergeAllOptions configures a cross-shard parallel merge.
type MergeAllOptions struct {
	// Merge configures each shard's merge.  Merge.Threads is the TOTAL
	// thread budget N_T (0 = GOMAXPROCS); it is divided evenly across the
	// shards merging concurrently, each shard receiving at least one.
	Merge table.MergeOptions
	// MaxConcurrent caps how many shards merge at once (0 = all shards).
	MaxConcurrent int
}

// MergeAllReport aggregates one MergeAll run.
type MergeAllReport struct {
	// Shards holds per-partition merge reports in physical order.
	Shards []table.Report
	// RowsMerged is the summed delta tuple count folded into mains by the
	// shards that committed; rows of aborted shards stay in their deltas
	// and are not counted.
	RowsMerged int
	// RowsReclaimed is the summed count of dead versions garbage-collected
	// by the shards that committed.
	RowsReclaimed int
	// Wall is the end-to-end duration of the cross-shard merge.
	Wall time.Duration
	// ThreadsPerShard is the per-shard budget each merge ran with.
	ThreadsPerShard int
}

// MergeAll runs the merge process on every physical partition —
// reshard-retired partitions included, since merging is how their dead
// history is garbage-collected — parallelized across partitions with a
// per-partition slice of the total thread budget.  Each partition's merge
// is individually online and atomic (see table.Merge); there is no
// cross-shard atomicity — queries may observe some shards merged and
// others not, which changes no visible row content.
//
// On failure (including ctx cancellation) the joined per-shard errors are
// returned after all in-flight shard merges settle — match with errors.Is,
// not == — and shards that committed stay committed.
func (st *Table) MergeAll(ctx context.Context, opts MergeAllOptions) (MergeAllReport, error) {
	parts := st.load().parts
	conc := opts.MaxConcurrent
	if conc <= 0 || conc > len(parts) {
		conc = len(parts)
	}
	total := opts.Merge.Threads
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	perShard := total / conc
	if perShard < 1 {
		perShard = 1
	}

	start := time.Now()
	rep := MergeAllReport{
		Shards:          make([]table.Report, len(parts)),
		ThreadsPerShard: perShard,
	}
	errs := make([]error, len(parts))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, s := range parts {
		wg.Add(1)
		go func(i int, s *table.Table) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := opts.Merge
			o.Threads = perShard
			rep.Shards[i], errs[i] = s.Merge(ctx, o)
		}(i, s)
	}
	wg.Wait()
	for i, r := range rep.Shards {
		// An aborted shard's report still carries the frozen delta count;
		// only committed shards actually folded rows into their mains.
		if errs[i] == nil {
			rep.RowsMerged += r.RowsMerged
			rep.RowsReclaimed += r.RowsReclaimed
		}
	}
	rep.Wall = time.Since(start)
	return rep, errors.Join(errs...)
}

// Stats aggregates storage statistics across partitions.
type Stats struct {
	Name string
	// Shards is the ACTIVE shard count; Parts the physical partition count
	// (active plus reshard-retired).
	Shards int
	Parts  int
	// MapVersion is the current shard-map version; Resharding is true
	// while a reshard migrates rows.
	MapVersion int
	Resharding bool
	Rows       int
	ValidRows  int
	MainRows   int
	DeltaRows  int
	SizeBytes  int
	// RetiredRows / ReclaimedBytes sum the shards' cumulative GC counters.
	RetiredRows    int
	ReclaimedBytes int
	// PerShard holds each physical partition's full statistics in
	// physical order.
	PerShard []table.Stats
}

// Stats returns per-partition and aggregated storage statistics.  Each
// partition's snapshot is individually consistent; the aggregate is not a
// cross-shard snapshot.
func (st *Table) Stats() Stats {
	m := st.load()
	out := Stats{
		Name: st.name, Shards: m.n, Parts: len(m.parts),
		MapVersion: int(m.version), Resharding: m.migrating,
	}
	for _, s := range m.parts {
		ts := s.Stats()
		out.PerShard = append(out.PerShard, ts)
		out.Rows += ts.Rows
		out.ValidRows += ts.ValidRows
		out.MainRows += ts.MainRows
		out.DeltaRows += ts.DeltaRows
		out.SizeBytes += ts.SizeBytes
		out.RetiredRows += ts.RetiredRows
		out.ReclaimedBytes += ts.ReclaimedBytes
	}
	return out
}
