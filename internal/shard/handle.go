package shard

import (
	"sort"
	"sync"

	"hyrise/internal/table"
	"hyrise/internal/val"
)

// Handle is a typed single-column view over every shard, mirroring
// table.Handle: key lookups, range selects and scans, returning global row
// ids.  Methods without an At suffix read current rows; the At variants
// read through a View captured by Table.Snapshot, whose single epoch is
// valid across every shard — the fanned-out reads are consistent with each
// other even while writers, cross-shard moves and merges proceed.
//
// Lookup and Range fan out to all shards in parallel and fan the per-shard
// results back in as a sorted global row id list.  Scan visits shards
// sequentially (shard 0 first), so row order is per-shard insertion order,
// not global insertion order.
//
// A handle covers the physical partitions that existed when it was
// resolved.  A Reshard appends partitions, so resolve a fresh handle after
// one to see rows the migration relocated; reads At an epoch captured
// before the handle was resolved remain complete on the old handle (row
// versions visible at that epoch never move to newer partitions).
type Handle[V val.Value] struct {
	st *Table
	hs []*table.Handle[V]
}

// ColumnOf resolves a typed handle for the named column across all
// physical partitions.
func ColumnOf[V val.Value](st *Table, name string) (*Handle[V], error) {
	h := &Handle[V]{st: st}
	for _, s := range st.Shards() {
		sh, err := table.ColumnOf[V](s, name)
		if err != nil {
			return nil, err
		}
		h.hs = append(h.hs, sh)
	}
	return h, nil
}

// Get returns the value at a global row id (valid or not).
func (h *Handle[V]) Get(gid int) (V, error) {
	s, local, err := h.st.Locate(gid)
	if err != nil {
		var zero V
		return zero, err
	}
	return h.hs[s].Get(local)
}

// fanOut runs fn on every shard concurrently and merges the returned
// shard-local row ids into one ascending global row id list.
func (h *Handle[V]) fanOut(fn func(sh *table.Handle[V]) []int) []int {
	perShard := make([][]int, len(h.hs))
	var wg sync.WaitGroup
	for i, sh := range h.hs {
		wg.Add(1)
		go func(i int, sh *table.Handle[V]) {
			defer wg.Done()
			perShard[i] = fn(sh)
		}(i, sh)
	}
	wg.Wait()
	var out []int
	for i, locals := range perShard {
		for _, l := range locals {
			out = append(out, h.st.gid(i, l))
		}
	}
	sort.Ints(out)
	return out
}

// Lookup returns the global row ids of current rows whose value equals v.
// Every shard is probed in parallel (dictionary binary search + CSB+ tree
// per shard).
func (h *Handle[V]) Lookup(v V) []int { return h.LookupAt(table.Latest(), v) }

// LookupAt is Lookup against the rows visible at the view's epoch.
func (h *Handle[V]) LookupAt(view table.View, v V) []int {
	return h.fanOut(func(sh *table.Handle[V]) []int { return sh.LookupAt(view, v) })
}

// Range returns the global row ids of current rows with value in [lo, hi],
// fanned out across shards in parallel.
func (h *Handle[V]) Range(lo, hi V) []int { return h.RangeAt(table.Latest(), lo, hi) }

// RangeAt is Range against the rows visible at the view's epoch.
func (h *Handle[V]) RangeAt(view table.View, lo, hi V) []int {
	return h.fanOut(func(sh *table.Handle[V]) []int { return sh.RangeAt(view, lo, hi) })
}

// Scan streams every current row's value through fn, shard by shard.
// Iteration stops early if fn returns false.
func (h *Handle[V]) Scan(fn func(gid int, v V) bool) { h.ScanAt(table.Latest(), fn) }

// ScanAt is Scan against the rows visible at the view's epoch.
func (h *Handle[V]) ScanAt(view table.View, fn func(gid int, v V) bool) {
	for i, sh := range h.hs {
		stop := false
		sh.ScanAt(view, func(local int, v V) bool {
			if !fn(h.st.gid(i, local), v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// CountEqual returns the number of current rows with value v.
func (h *Handle[V]) CountEqual(v V) int { return len(h.Lookup(v)) }

// CountEqualAt is CountEqual at the view's epoch.
func (h *Handle[V]) CountEqualAt(view table.View, v V) int { return len(h.LookupAt(view, v)) }

// Distinct returns the number of distinct values among all stored row
// versions across shards.  Like table.Handle.Distinct this includes
// invalidated (but not yet reclaimed) versions, so it reads every stored
// row rather than summing per-shard dictionary sizes (a value may appear
// in several shards).  Stable ids are not dense once garbage collection
// has retired some, so the iteration walks each shard's live id list.
func (h *Handle[V]) Distinct() int {
	seen := make(map[V]struct{})
	for i, sh := range h.hs {
		for _, local := range h.st.Shard(i).RowIDs() {
			v, err := sh.Get(local)
			if err != nil {
				continue
			}
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}

// NumericHandle adds cross-shard aggregations for integer columns.
type NumericHandle[V interface{ ~uint32 | ~uint64 }] struct {
	*Handle[V]
	ns []*table.NumericHandle[V]
}

// NumericColumnOf resolves a handle with aggregation support.
func NumericColumnOf[V interface{ ~uint32 | ~uint64 }](st *Table, name string) (*NumericHandle[V], error) {
	h, err := ColumnOf[V](st, name)
	if err != nil {
		return nil, err
	}
	nh := &NumericHandle[V]{Handle: h}
	for _, s := range st.Shards() {
		n, err := table.NumericColumnOf[V](s, name)
		if err != nil {
			return nil, err
		}
		nh.ns = append(nh.ns, n)
	}
	return nh, nil
}

// Sum aggregates the column over current rows, computing per-shard partial
// sums in parallel and combining them.
func (h *NumericHandle[V]) Sum() uint64 { return h.SumAt(table.Latest()) }

// SumAt aggregates over the rows visible at the view's epoch; the shared
// epoch makes the combined sum a consistent cross-shard aggregate.
func (h *NumericHandle[V]) SumAt(view table.View) uint64 {
	partial := make([]uint64, len(h.ns))
	var wg sync.WaitGroup
	for i, n := range h.ns {
		wg.Add(1)
		go func(i int, n *table.NumericHandle[V]) {
			defer wg.Done()
			partial[i] = n.SumAt(view)
		}(i, n)
	}
	wg.Wait()
	var sum uint64
	for _, p := range partial {
		sum += p
	}
	return sum
}

// Min returns the smallest value over current rows across shards; ok is
// false when no shard has a current row.
func (h *NumericHandle[V]) Min() (V, bool) { return h.MinAt(table.Latest()) }

// MinAt is Min at the view's epoch.
func (h *NumericHandle[V]) MinAt(view table.View) (V, bool) {
	return h.combine(func(n *table.NumericHandle[V]) (V, bool) { return n.MinAt(view) },
		func(a, b V) bool { return b < a })
}

// Max returns the largest value over current rows across shards.
func (h *NumericHandle[V]) Max() (V, bool) { return h.MaxAt(table.Latest()) }

// MaxAt is Max at the view's epoch.
func (h *NumericHandle[V]) MaxAt(view table.View) (V, bool) {
	return h.combine(func(n *table.NumericHandle[V]) (V, bool) { return n.MaxAt(view) },
		func(a, b V) bool { return b > a })
}

func (h *NumericHandle[V]) combine(get func(*table.NumericHandle[V]) (V, bool), better func(cur, cand V) bool) (V, bool) {
	vals := make([]V, len(h.ns))
	oks := make([]bool, len(h.ns))
	var wg sync.WaitGroup
	for i, n := range h.ns {
		wg.Add(1)
		go func(i int, n *table.NumericHandle[V]) {
			defer wg.Done()
			vals[i], oks[i] = get(n)
		}(i, n)
	}
	wg.Wait()
	var best V
	found := false
	for i := range vals {
		if !oks[i] {
			continue
		}
		if !found || better(best, vals[i]) {
			best, found = vals[i], true
		}
	}
	return best, found
}
