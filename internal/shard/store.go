package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hyrise/internal/table"
)

// This file implements the topology-independent store surface on the
// sharded table — the method set it shares with table.Table so both
// satisfy one Store interface at the package root.

// InsertRows appends a batch of rows, routing each to the shard owning its
// key value, and returns their global row ids in input order.  Rows bound
// for the same shard are inserted under one lock acquisition.  Every row is
// validated (arity, value types, key hashability) before any row lands, so
// a bad value rejects the whole batch with no shard touched.
func (st *Table) InsertRows(rows [][]any) ([]int, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	// Validate the whole batch and compute routing up front: shards
	// re-validate on insert, but by then earlier shards would already have
	// accepted their slice of the batch.
	perShard := make([][]int, len(st.shards)) // input indices per shard
	for i, values := range rows {
		if err := st.shards[0].CheckRow(values); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		s, err := st.shardFor(values[st.keyIdx])
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		perShard[s] = append(perShard[s], i)
	}
	ids := make([]int, len(rows))
	for s, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		batch := make([][]any, len(idxs))
		for j, i := range idxs {
			batch[j] = rows[i]
		}
		locals, err := st.shards[s].InsertRows(batch)
		if err != nil {
			// Unreachable in practice: the batch was validated above.
			return nil, err
		}
		for j, local := range locals {
			ids[idxs[j]] = st.gid(s, local)
		}
	}
	return ids, nil
}

// RequestMerge is the unified merge entry point: it fans the merge out
// across every shard (MergeAll) with opts.Threads as the total budget and
// condenses the per-shard reports into one table.Report.  Report.Columns is
// nil for a sharded table — per-shard, per-column detail is available from
// MergeAll or each shard's LastMergeReport.  Report.Threads echoes the
// summed per-shard budget actually used.
//
// Sharded merges are atomic per shard only, so Report.Aborted keeps its
// "nothing changed" meaning: it is true only when NO shard committed.  On
// partial failure the error is non-nil while Aborted is false — committed
// shards stay committed and their rows are counted in RowsMerged.
func (st *Table) RequestMerge(ctx context.Context, opts table.MergeOptions) (table.Report, error) {
	rep, err := st.MergeAll(ctx, MergeAllOptions{Merge: opts})
	committed := false
	for _, sr := range rep.Shards {
		// Per-shard Columns is populated only when that shard's merge
		// committed.
		if len(sr.Columns) > 0 {
			committed = true
			break
		}
	}
	out := table.Report{
		RowsMerged:    rep.RowsMerged,
		RowsReclaimed: rep.RowsReclaimed,
		MainRowsAfter: st.MainRows(),
		Wall:          rep.Wall,
		Algorithm:     opts.Algorithm,
		Threads:       rep.ThreadsPerShard * len(st.shards),
		Strategy:      opts.Strategy,
		Aborted:       err != nil && !committed,
	}
	return out, err
}

// Partitions returns the underlying physical tables in shard order.
func (st *Table) Partitions() []*table.Table { return st.Shards() }

// CreateIndex builds a group-key index over the named column on every
// shard, in parallel (each shard's build excludes that shard's merges but
// never blocks reads).  The first error wins; already-indexed shards are
// skipped, so a partially failed call can simply be retried.
func (st *Table) CreateIndex(column string) error {
	errs := make([]error, len(st.shards))
	var wg sync.WaitGroup
	for i, s := range st.shards {
		wg.Add(1)
		go func(i int, s *table.Table) {
			defer wg.Done()
			errs[i] = s.CreateIndex(column)
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// IndexStats aggregates per-column index statistics across shards: one
// entry per indexed column with postings, bytes and builds summed, and
// LastBuild the per-shard maximum (the slowest shard bounds a merge's
// index overhead).
func (st *Table) IndexStats() []table.IndexStats {
	byCol := make(map[string]*table.IndexStats)
	var order []string
	for _, s := range st.shards {
		for _, is := range s.IndexStats() {
			agg := byCol[is.Column]
			if agg == nil {
				cp := is
				byCol[is.Column] = &cp
				order = append(order, is.Column)
				continue
			}
			agg.Postings += is.Postings
			agg.SizeBytes += is.SizeBytes
			agg.Builds += is.Builds
			if is.LastBuild > agg.LastBuild {
				agg.LastBuild = is.LastBuild
			}
		}
	}
	out := make([]table.IndexStats, 0, len(order))
	for _, c := range order {
		out = append(out, *byCol[c])
	}
	return out
}

// StoreStats returns the unified statistics snapshot: aggregate counts
// plus every shard's table.Stats as a partition entry.
func (st *Table) StoreStats() table.StoreStats {
	s := st.Stats()
	return table.StoreStats{
		Name:           s.Name,
		Shards:         s.Shards,
		KeyColumn:      st.KeyColumn(),
		Rows:           s.Rows,
		ValidRows:      s.ValidRows,
		MainRows:       s.MainRows,
		DeltaRows:      s.DeltaRows,
		SizeBytes:      s.SizeBytes,
		RetiredRows:    s.RetiredRows,
		ReclaimedBytes: s.ReclaimedBytes,
		Partitions:     s.PerShard,
	}
}
