package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hyrise/internal/table"
)

// This file implements the topology-independent store surface on the
// sharded table — the method set it shares with table.Table so both
// satisfy one Store interface at the package root.

// InsertRows appends a batch of rows, routing each to the shard owning its
// key value, and returns their global row ids in input order.  Rows bound
// for the same shard are inserted under one lock acquisition.  Every row is
// validated (arity, value types, key hashability) before any row lands, so
// a bad value rejects the whole batch with no shard touched.  A batch that
// races a reshard's seal degrades to per-row inserts for the affected
// shard, each re-routed through the fresh shard map.
func (st *Table) InsertRows(rows [][]any) ([]int, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	// Validate the whole batch and compute routing up front: shards
	// re-validate on insert, but by then earlier shards would already have
	// accepted their slice of the batch.
	m := st.load()
	check := m.parts[0]
	perShard := make(map[int][]int) // input indices per physical partition
	for i, values := range rows {
		if err := check.CheckRow(values); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		s, err := st.routeFor(m, values[st.keyIdx])
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		perShard[s] = append(perShard[s], i)
	}
	ids := make([]int, len(rows))
	for s, idxs := range perShard {
		batch := make([][]any, len(idxs))
		for j, i := range idxs {
			batch[j] = rows[i]
		}
		locals, err := m.parts[s].InsertRows(batch)
		if errors.Is(err, table.ErrSealed) {
			// A reshard retired this shard between routing and insert;
			// fall back to per-row inserts, which re-route per row.
			for _, i := range idxs {
				gid, err := st.Insert(rows[i])
				if err != nil {
					// Unreachable in practice: the row was validated above
					// and Insert retries seals internally.
					return nil, err
				}
				ids[i] = gid
			}
			continue
		}
		if err != nil {
			// Unreachable in practice: the batch was validated above.
			return nil, err
		}
		for j, local := range locals {
			ids[idxs[j]] = st.gid(s, local)
		}
	}
	return ids, nil
}

// RequestMerge is the unified merge entry point: it fans the merge out
// across every partition (MergeAll) with opts.Threads as the total budget
// and condenses the per-partition reports into one table.Report.
// Report.Columns is nil for a sharded table — per-shard, per-column detail
// is available from MergeAll or each shard's LastMergeReport.
// Report.Threads echoes the summed per-shard budget actually used.
//
// Sharded merges are atomic per shard only, so Report.Aborted keeps its
// "nothing changed" meaning: it is true only when NO shard committed.  On
// partial failure the error is non-nil while Aborted is false — committed
// shards stay committed and their rows are counted in RowsMerged.
func (st *Table) RequestMerge(ctx context.Context, opts table.MergeOptions) (table.Report, error) {
	rep, err := st.MergeAll(ctx, MergeAllOptions{Merge: opts})
	committed := false
	for _, sr := range rep.Shards {
		// Per-shard Columns is populated only when that shard's merge
		// committed.
		if len(sr.Columns) > 0 {
			committed = true
			break
		}
	}
	out := table.Report{
		RowsMerged:    rep.RowsMerged,
		RowsReclaimed: rep.RowsReclaimed,
		MainRowsAfter: st.MainRows(),
		Wall:          rep.Wall,
		Algorithm:     opts.Algorithm,
		Threads:       rep.ThreadsPerShard * len(rep.Shards),
		Strategy:      opts.Strategy,
		Aborted:       err != nil && !committed,
	}
	return out, err
}

// Partitions returns the underlying physical tables in physical order
// (active window plus reshard-retired partitions).
func (st *Table) Partitions() []*table.Table { return st.Shards() }

// CreateIndex builds a group-key index over the named column on every
// physical partition, in parallel (each partition's build excludes that
// partition's merges but never blocks reads).  The column is recorded so
// partitions created by a later Reshard are indexed the same way.  The
// first error wins; already-indexed shards are skipped, so a partially
// failed call can simply be retried.
func (st *Table) CreateIndex(column string) error {
	// Record first, under the wiring lock, so a concurrent reshard either
	// sees the recorded column or gets indexed by the loop below.
	st.mu.Lock()
	known := false
	for _, c := range st.indexCols {
		if c == column {
			known = true
		}
	}
	if !known {
		st.indexCols = append(st.indexCols, column)
	}
	parts := st.load().parts
	st.mu.Unlock()

	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, s := range parts {
		wg.Add(1)
		go func(i int, s *table.Table) {
			defer wg.Done()
			errs[i] = s.CreateIndex(column)
		}(i, s)
	}
	wg.Wait()
	err := errors.Join(errs...)
	if err != nil {
		// Don't re-apply a bad column to future reshard partitions.
		st.mu.Lock()
		for i, c := range st.indexCols {
			if c == column {
				st.indexCols = append(st.indexCols[:i], st.indexCols[i+1:]...)
				break
			}
		}
		st.mu.Unlock()
	}
	return err
}

// IndexStats aggregates per-column index statistics across partitions: one
// entry per indexed column with postings, bytes and builds summed, and
// LastBuild the per-shard maximum (the slowest shard bounds a merge's
// index overhead).
func (st *Table) IndexStats() []table.IndexStats {
	byCol := make(map[string]*table.IndexStats)
	var order []string
	for _, s := range st.load().parts {
		for _, is := range s.IndexStats() {
			agg := byCol[is.Column]
			if agg == nil {
				cp := is
				byCol[is.Column] = &cp
				order = append(order, is.Column)
				continue
			}
			agg.Postings += is.Postings
			agg.SizeBytes += is.SizeBytes
			agg.Builds += is.Builds
			if is.LastBuild > agg.LastBuild {
				agg.LastBuild = is.LastBuild
			}
		}
	}
	out := make([]table.IndexStats, 0, len(order))
	for _, c := range order {
		out = append(out, *byCol[c])
	}
	return out
}

// StoreStats returns the unified statistics snapshot: aggregate counts
// plus every physical partition's table.Stats as a partition entry.
// Shards reports the ACTIVE shard count; len(Partitions) is the physical
// partition count.
func (st *Table) StoreStats() table.StoreStats {
	s := st.Stats()
	return table.StoreStats{
		Name:           s.Name,
		Shards:         s.Shards,
		KeyColumn:      st.KeyColumn(),
		Rows:           s.Rows,
		ValidRows:      s.ValidRows,
		MainRows:       s.MainRows,
		DeltaRows:      s.DeltaRows,
		SizeBytes:      s.SizeBytes,
		RetiredRows:    s.RetiredRows,
		ReclaimedBytes: s.ReclaimedBytes,
		Partitions:     s.PerShard,
	}
}
