package shard

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hyrise/internal/oplog"
	"hyrise/internal/table"
)

func TestReshardBasic(t *testing.T) {
	st := newKV(t, 2)
	const rows = 300
	var sum uint64
	oldGids := make([]int, rows)
	for i := 0; i < rows; i++ {
		gid, err := st.Insert([]any{uint64(i), uint64(i * 10)})
		if err != nil {
			t.Fatal(err)
		}
		oldGids[i] = gid
		sum += uint64(i * 10)
	}

	rep, err := st.Reshard(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != 2 || rep.To != 4 || rep.RowsMigrated != rows || rep.Version != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if st.NumShards() != 4 || st.NumParts() != 6 || st.MapVersion() != 3 || st.Resharding() {
		t.Fatalf("topology: shards=%d parts=%d version=%d resharding=%v",
			st.NumShards(), st.NumParts(), st.MapVersion(), st.Resharding())
	}
	if base, n := st.ActiveWindow(); base != 2 || n != 4 {
		t.Fatalf("active window = [%d,%d)", base, base+n)
	}

	// Every row survives under a new global id; the old ids are spent
	// exactly as if a concurrent update had relocated the row.
	if got := st.ValidRows(); got != rows {
		t.Fatalf("ValidRows = %d want %d", got, rows)
	}
	h, err := NumericColumnOf[uint64](st, "v")
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Sum(); got != sum {
		t.Fatalf("Sum = %d want %d", got, sum)
	}
	k, err := ColumnOf[uint64](st, "k")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		gids := k.Lookup(uint64(i))
		if len(gids) != 1 {
			t.Fatalf("Lookup(%d) = %v", i, gids)
		}
		if gids[0] == oldGids[i] {
			t.Fatalf("key %d kept pre-migration gid %d", i, gids[0])
		}
		if st.IsValid(oldGids[i]) {
			t.Fatalf("old gid %d still valid", oldGids[i])
		}
		if vals, err := st.Row(gids[0]); err != nil || vals[0] != uint64(i) {
			t.Fatalf("Row(%d) = %v, %v", gids[0], vals, err)
		}
	}
	// New inserts route into the new window only.
	gid, err := st.Insert([]any{uint64(rows), uint64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if phys := gid % gidStride; phys < 2 {
		t.Fatalf("post-reshard insert landed in sealed partition %d", phys)
	}
}

func TestReshardNoOpAndValidation(t *testing.T) {
	st := newKV(t, 2)
	rep, err := st.Reshard(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != 2 || rep.To != 2 || rep.Version != 1 || st.NumParts() != 2 {
		t.Fatalf("no-op reshard: %+v, parts=%d", rep, st.NumParts())
	}
	if _, err := st.Reshard(context.Background(), 0); !errors.Is(err, ErrNoShards) {
		t.Fatalf("Reshard(0): %v", err)
	}
	if _, err := st.Reshard(context.Background(), MaxShards); !errors.Is(err, ErrNoShards) {
		t.Fatalf("Reshard over partition budget: %v", err)
	}
}

// TestReshardSnapshotStability pins a snapshot, reshards underneath it,
// churns and GC-merges, and asserts the pinned reads never change: the
// pre-move versions stay readable in the sealed partitions because the
// pin can see them.
func TestReshardSnapshotStability(t *testing.T) {
	st := newKV(t, 2)
	const rows = 200
	for i := 0; i < rows; i++ {
		if _, err := st.Insert([]any{uint64(i), uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	k, err := ColumnOf[uint64](st, "k")
	if err != nil {
		t.Fatal(err)
	}

	snap := st.Snapshot()
	defer snap.Release()
	v, err := NumericColumnOf[uint64](st, "v")
	if err != nil {
		t.Fatal(err)
	}
	wantSum := v.SumAt(snap)
	wantValid := st.ValidRowsAt(snap)
	wantGids := make(map[uint64][]int, rows)
	for i := 0; i < rows; i++ {
		wantGids[uint64(i)] = k.LookupAt(snap, uint64(i))
	}

	if _, err := st.Reshard(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	// Churn every row past the snapshot and GC-merge everywhere; the only
	// thing keeping the snapshot's versions alive is its pin.
	k2, err := ColumnOf[uint64](st, "k")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		gids := k2.Lookup(uint64(i))
		if len(gids) != 1 {
			t.Fatalf("post-reshard Lookup(%d) = %v", i, gids)
		}
		if _, err := st.Update(gids[0], map[string]any{"v": uint64(i + 100000)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.MergeAll(context.Background(), MergeAllOptions{}); err != nil {
		t.Fatal(err)
	}

	// The pre-reshard handles cover every partition a version visible at
	// the snapshot epoch can live in.
	if got := v.SumAt(snap); got != wantSum {
		t.Fatalf("SumAt after reshard = %d want %d", got, wantSum)
	}
	if got := st.ValidRowsAt(snap); got != wantValid {
		t.Fatalf("ValidRowsAt after reshard = %d want %d", got, wantValid)
	}
	for key, want := range wantGids {
		if got := k.LookupAt(snap, key); len(got) != len(want) || (len(got) == 1 && got[0] != want[0]) {
			t.Fatalf("LookupAt(%d) = %v want %v", key, got, want)
		}
	}
}

// TestReshardCancelledStillCutsOver checks the lazy-drain contract: a
// cancelled migration cuts over anyway, unmigrated rows stay readable in
// their sealed partitions, and the next reshard finishes the drain.
func TestReshardCancelledStillCutsOver(t *testing.T) {
	st := newKV(t, 2)
	const rows = 100
	for i := 0; i < rows; i++ {
		if _, err := st.Insert([]any{uint64(i), uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := st.Reshard(ctx, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled reshard: %v", err)
	}
	if rep.RowsMigrated != 0 {
		t.Fatalf("migrated %d rows under a dead context", rep.RowsMigrated)
	}
	if st.NumShards() != 4 || st.Resharding() || st.MapVersion() != 3 {
		t.Fatalf("no cutover: shards=%d resharding=%v version=%d",
			st.NumShards(), st.Resharding(), st.MapVersion())
	}

	// Rows were not drained: still valid where they were, still readable.
	k, err := ColumnOf[uint64](st, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.ValidRows(); got != rows {
		t.Fatalf("ValidRows = %d want %d", got, rows)
	}
	for i := 0; i < rows; i++ {
		if gids := k.Lookup(uint64(i)); len(gids) != 1 {
			t.Fatalf("Lookup(%d) = %v", i, gids)
		}
	}
	// An update relocates its row out of the sealed partition by itself.
	gids := k.Lookup(3)
	ngid, err := st.Update(gids[0], map[string]any{"v": uint64(999)})
	if err != nil {
		t.Fatal(err)
	}
	if phys := ngid % gidStride; phys < 2 {
		t.Fatalf("update stayed in sealed partition %d", phys)
	}

	// The next reshard drains the leftovers from every sealed partition.
	rep, err = st.Reshard(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsMigrated != rows {
		t.Fatalf("second reshard migrated %d want %d", rep.RowsMigrated, rows)
	}
	if st.NumParts() != 2+4+8 || st.NumShards() != 8 {
		t.Fatalf("parts=%d shards=%d", st.NumParts(), st.NumShards())
	}
	k3, err := ColumnOf[uint64](st, "k")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if gids := k3.Lookup(uint64(i)); len(gids) != 1 {
			t.Fatalf("after full drain Lookup(%d) = %v", i, gids)
		}
	}
}

// TestApplyReshardReplay drives the follower-side replay surface
// directly: begin and cutover apply once, re-delivery is a no-op, and
// gaps are rejected rather than papered over.
func TestApplyReshardReplay(t *testing.T) {
	st := newKV(t, 2)
	if err := st.ApplyReshardBegin(2, 4, 2); err != nil {
		t.Fatal(err)
	}
	if st.NumParts() != 6 || !st.Resharding() || st.NumShards() != 2 {
		t.Fatalf("after begin: parts=%d resharding=%v shards=%d",
			st.NumParts(), st.Resharding(), st.NumShards())
	}
	// Re-delivery after a reconnect: same op, same version, no effect.
	if err := st.ApplyReshardBegin(2, 4, 2); err != nil || st.NumParts() != 6 {
		t.Fatalf("re-applied begin: %v, parts=%d", err, st.NumParts())
	}
	// A begin whose base does not match the partition list is a gap.
	if err := st.ApplyReshardBegin(9, 4, 3); !errors.Is(err, table.ErrReplayGap) {
		t.Fatalf("gap begin: %v", err)
	}
	if err := st.ApplyReshardCutover(2, 4, 3); err != nil {
		t.Fatal(err)
	}
	if st.NumShards() != 4 || st.Resharding() || st.MapVersion() != 3 {
		t.Fatalf("after cutover: shards=%d resharding=%v version=%d",
			st.NumShards(), st.Resharding(), st.MapVersion())
	}
	if err := st.ApplyReshardCutover(2, 4, 3); err != nil {
		t.Fatalf("re-applied cutover: %v", err)
	}
	// A cutover with no begin in front of it is a gap.
	if err := st.ApplyReshardCutover(6, 8, 6); !errors.Is(err, table.ErrReplayGap) {
		t.Fatalf("gap cutover: %v", err)
	}
}

// TestReshardUnderChurn is the -race differential: reshard 1 -> 4 -> 8
// while writers update values and relocate keys, merges run with GC on,
// snapshot readers verify every key on every captured epoch, and one old
// pin taken before any reshard must read bit-identically at the end.
func TestReshardUnderChurn(t *testing.T) {
	keys, writers, readers := 400, 4, 4
	if testing.Short() {
		keys, writers, readers = 100, 2, 2
	}

	st := newKV(t, 1)
	olog := oplog.New(st.Clock(), 0)
	if err := st.AttachOplog(olog); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if _, err := st.Insert([]any{uint64(i), uint64(0)}); err != nil {
			t.Fatal(err)
		}
	}

	oldPin := st.Snapshot()
	defer oldPin.Release()
	pinKeys, err := ColumnOf[uint64](st, "k")
	if err != nil {
		t.Fatal(err)
	}
	pinValid := st.ValidRowsAt(oldPin)

	stop := make(chan struct{})
	var anomalies atomic.Int64
	var wg sync.WaitGroup

	// Writers: each owns keys w, w+writers, ... and alternates value
	// updates with key relocations key -> key+keys -> key (the relocated
	// spelling hashes differently, forcing cross-shard moves).  A write
	// losing its row to the migration retries through a fresh lookup.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				base := uint64(w + (round%(keys/writers))*writers)
				cur, alt := base, base+uint64(keys)
				if round%2 == 1 {
					cur, alt = alt, cur
				}
				h, err := ColumnOf[uint64](st, "k")
				if err != nil {
					t.Error(err)
					return
				}
				gids := h.Lookup(cur)
				if len(gids) != 1 {
					// The key may be mid-flight under its other spelling.
					if g2 := h.Lookup(alt); len(gids)+len(g2) != 1 {
						continue // racing another round on this key
					}
					continue
				}
				changes := map[string]any{"v": uint64(rng.Intn(1000))}
				if rng.Intn(2) == 0 {
					changes["k"] = alt
				}
				if _, err := st.Update(gids[0], changes); err != nil &&
					!errors.Is(err, table.ErrRowInvalid) {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}

	// Readers: capture a snapshot, resolve a fresh handle (a handle
	// resolved after the capture covers every partition a visible version
	// can live in), and require each key to resolve exactly once in
	// exactly one of its two spellings.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Snapshot()
				h, err := ColumnOf[uint64](st, "k")
				if err != nil {
					t.Error(err)
					snap.Release()
					return
				}
				for probe := 0; probe < 16; probe++ {
					key := uint64(rng.Intn(keys))
					n := len(h.LookupAt(snap, key)) + len(h.LookupAt(snap, key+uint64(keys)))
					if n != 1 {
						anomalies.Add(1)
						t.Errorf("snapshot read: key %d resolved %d times", key, n)
					}
				}
				snap.Release()
			}
		}(r)
	}

	// Merges with GC on, underneath everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := st.MergeAll(context.Background(), MergeAllOptions{}); err != nil {
				t.Errorf("merge: %v", err)
				return
			}
		}
	}()

	for _, n := range []int{4, 8} {
		if _, err := st.Reshard(context.Background(), n); err != nil {
			t.Fatalf("Reshard(%d) under churn: %v", n, err)
		}
	}
	close(stop)
	wg.Wait()

	if n := anomalies.Load(); n != 0 {
		t.Fatalf("%d read anomalies during resharding", n)
	}
	if st.NumShards() != 8 || st.NumParts() != 1+4+8 {
		t.Fatalf("final topology: shards=%d parts=%d", st.NumShards(), st.NumParts())
	}
	// The churn conserves rows: every key is live under exactly one
	// spelling.
	h, err := ColumnOf[uint64](st, "k")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		n := len(h.Lookup(uint64(i))) + len(h.Lookup(uint64(i+keys)))
		if n != 1 {
			t.Fatalf("key %d resolved %d times after churn", i, n)
		}
	}
	// The old pin predates both reshards and every update; its reads must
	// be untouched by migration and GC.
	if got := st.ValidRowsAt(oldPin); got != pinValid {
		t.Fatalf("old pin ValidRowsAt = %d want %d", got, pinValid)
	}
	for i := 0; i < keys; i++ {
		if got := pinKeys.LookupAt(oldPin, uint64(i)); len(got) != 1 {
			t.Fatalf("old pin Lookup(%d) = %v", i, got)
		}
	}
}
