package shard

import (
	"errors"
	"sort"
	"sync"

	"hyrise/internal/query"
)

// Query evaluates a conjunctive multi-column query against every shard in
// parallel and fans the per-shard results back in: row ids are remapped to
// global row ids and the combined result is sorted by global row id, with
// projected values kept aligned.  Each shard evaluates under its own read
// snapshot; there is no cross-shard snapshot (see the package comment).
func Query(st *Table, filters []query.Filter, project []string) (*query.Result, error) {
	results := make([]*query.Result, len(st.shards))
	errs := make([]error, len(st.shards))
	var wg sync.WaitGroup
	for i := range st.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = query.Run(st.shards[i], filters, project)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	type hit struct {
		gid  int
		vals []any
	}
	var hits []hit
	for i, r := range results {
		for j, local := range r.Rows {
			h := hit{gid: st.gid(i, local)}
			if r.Values != nil {
				h.vals = r.Values[j]
			}
			hits = append(hits, h)
		}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].gid < hits[b].gid })

	out := &query.Result{Columns: project}
	for _, h := range hits {
		out.Rows = append(out.Rows, h.gid)
		if project != nil {
			out.Values = append(out.Values, h.vals)
		}
	}
	return out, nil
}
