package shard

import (
	"errors"
	"sort"
	"sync"

	"hyrise/internal/query"
	"hyrise/internal/table"
)

// Query evaluates a conjunctive multi-column query against every shard in
// parallel and fans the per-shard results back in: row ids are remapped to
// global row ids and the combined result is sorted by global row id, with
// projected values kept aligned.  It reads current rows; each shard
// evaluates under its own per-shard read snapshot.  Use QueryAt with a
// view from Table.Snapshot for a cross-shard-consistent result.
func Query(st *Table, filters []query.Filter, project []string) (*query.Result, error) {
	return QueryAt(st, table.Latest(), filters, project)
}

// QueryAt is Query against the rows visible at the view's epoch: because
// the epoch is shared by all shards, the fanned-out evaluation reflects
// one frozen state of the whole table.  A latest view is replaced by one
// short-lived pinned cross-shard snapshot so a GC merge on any shard
// cannot reclaim candidate rows between the per-shard evaluation steps.
func QueryAt(st *Table, view table.View, filters []query.Filter, project []string) (*query.Result, error) {
	if view.IsLatest() {
		view = st.Snapshot()
		defer view.Release()
	}
	// Snapshot the topology once: partition indices below are physical
	// indices into this list, valid for gid encoding even if a reshard
	// publishes a newer map mid-query (row versions visible at the view's
	// epoch never move to partitions created after it).
	parts := st.Shards()
	results := make([]*query.Result, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = query.RunAt(parts[i], view, filters, project)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	type hit struct {
		gid  int
		vals []any
	}
	var hits []hit
	for i, r := range results {
		for j, local := range r.Rows {
			h := hit{gid: st.gid(i, local)}
			if r.Values != nil {
				h.vals = r.Values[j]
			}
			hits = append(hits, h)
		}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].gid < hits[b].gid })

	out := &query.Result{Columns: project}
	for _, h := range hits {
		out.Rows = append(out.Rows, h.gid)
		if project != nil {
			out.Values = append(out.Values, h.vals)
		}
	}
	return out, nil
}
