package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hyrise/internal/oplog"
	"hyrise/internal/table"
)

// This file implements online resharding: changing the active shard count
// of a live sharded table while readers — including pinned snapshots and
// replication followers — keep running against a consistent view
// throughout.
//
// # Protocol
//
// Reshard(n) appends n fresh partitions to the physical partition list and
// makes them the new active window in three phases:
//
//  1. Prepare: the new partitions are created, attached to the oplog,
//     indexed like the existing ones, and announced with a
//     KindReshardBegin op BEFORE any routing change — a follower replaying
//     the log in LSN order therefore always creates the partitions before
//     the first op that targets them.  Then the migrating shard map is
//     published (writes now route to the new window) and every old
//     partition is sealed.  Seal takes each partition's write lock, so it
//     is a barrier: every write that routed by the old map has fully
//     committed — and logged — before migration starts.
//  2. Migrate: one pass over the sealed partitions relocates every current
//     row version into the new window with table.MoveRow — an atomic
//     invalidate-plus-insert under both partition locks with ONE epoch
//     stamp, flowing through the oplog as an ordinary KindMove.  A row the
//     pass cannot claim (table.ErrRowInvalid) was concurrently deleted or
//     updated; updates relocate out of sealed partitions themselves, so
//     either way the row needs no migration.  The pass is complete:
//     sealed partitions gain no new versions, so one scan suffices.
//  3. Cutover: a KindReshardCutover op is appended — its epoch stamp is
//     the cutover epoch — and the final map (active window = the new
//     partitions) is published atomically.
//
// # What readers observe
//
// Row versions never change content and moves are snapshot-atomic, so a
// read at any epoch returns identical results before, during and after the
// reshard: versions visible at pre-move epochs remain in the sealed
// partitions (subject to the normal GC retention rules — a pinned snapshot
// keeps them), and fan-out reads cover sealed partitions for as long as
// they exist.  Writers racing the reshard retry transparently through the
// republished map.  A writer whose row the migration claims first observes
// table.ErrRowInvalid, exactly as when it loses to a concurrent updater:
// re-locate the row by key and retry with the new global row id.
//
// Sealed partitions drain toward empty as GC merges reclaim their
// invalidated versions; their storage footprint then is a few empty
// columns.

// ReshardReport describes one completed reshard.
type ReshardReport struct {
	// From and To are the active shard counts before and after.
	From, To int
	// RowsMigrated counts row versions relocated into the new window by
	// the migration pass (rows concurrently deleted or relocated by their
	// own updates are not counted).
	RowsMigrated int
	// Wall is the end-to-end duration; SealWall the write-lock barrier
	// that quiesced old-map writes; CutoverWall the final atomic
	// publish step.
	Wall, SealWall, CutoverWall time.Duration
	// Version is the shard-map version after cutover (it advanced twice:
	// begin and cutover).
	Version uint64
	// CutoverEpoch is the epoch stamped on the cutover op.
	CutoverEpoch uint64
}

// Reshard changes the active shard count to n, online.  Reads at any epoch
// are unaffected throughout; writes keep flowing (they re-route through
// the new map, see package comment).  Reshards are serialized with each
// other; Reshard(current count) is a no-op.
//
// Cancelling ctx stops the migration pass early but still cuts over: the
// table stays fully consistent, with not-yet-migrated rows remaining
// readable (and updatable) in their sealed partitions until a later
// Reshard or their own updates drain them.  ctx.Err() is returned so the
// caller knows the drain is incomplete.
func (st *Table) Reshard(ctx context.Context, n int) (ReshardReport, error) {
	st.reshardMu.Lock()
	defer st.reshardMu.Unlock()

	m := st.load()
	if n == m.n && !m.migrating {
		return ReshardReport{From: m.n, To: n, Version: m.version}, nil
	}
	if n < 1 || n > MaxShards || len(m.parts)+n > MaxShards {
		return ReshardReport{}, fmt.Errorf("%w: reshard to %d (have %d partitions)",
			ErrNoShards, n, len(m.parts))
	}

	st.mu.Lock()
	olog := st.olog
	gcOn := st.gcOn
	indexCols := append([]string(nil), st.indexCols...)
	onPart := st.onPart
	st.mu.Unlock()

	start := time.Now()
	rep := ReshardReport{From: m.n, To: n}

	// Phase 1a: create and fully wire the new partitions before anything
	// is published or logged, so failure here leaves the table untouched.
	newBase := len(m.parts)
	fresh := make([]*table.Table, n)
	for i := range fresh {
		phys := newBase + i
		s, err := table.NewWithClock(fmt.Sprintf("%s/%d", st.name, phys), st.schema, st.clock)
		if err != nil {
			return ReshardReport{}, err
		}
		if olog != nil {
			if err := s.AttachOplog(olog, phys); err != nil {
				return ReshardReport{}, err
			}
		}
		s.SetGC(gcOn)
		for _, col := range indexCols {
			if err := s.CreateIndex(col); err != nil {
				return ReshardReport{}, err
			}
		}
		fresh[i] = s
	}

	// Phase 1b: announce, publish the migrating map, seal.
	if olog != nil {
		olog.Append([]oplog.Rec{{
			Kind: oplog.KindReshardBegin, Shard: uint32(newBase),
			ID: uint64(n), ID2: m.version + 1,
		}})
	}
	mig := &shardMap{
		version: m.version + 1,
		parts:   append(append([]*table.Table(nil), m.parts...), fresh...),
		base:    m.base, n: m.n,
		migrating: true, nextBase: newBase, nextLen: n,
	}
	st.smap.Store(mig)
	if onPart != nil {
		for i, s := range fresh {
			onPart(s, newBase+i)
		}
	}
	sealStart := time.Now()
	for _, s := range m.parts {
		s.Seal()
	}
	rep.SealWall = time.Since(sealStart)

	// Phase 2: drain every sealed partition (including partitions a loaded
	// mid-reshard snapshot left partially drained) into the new window.
	var migErr error
drain:
	for src := range mig.parts[:newBase] {
		p := mig.parts[src]
		for _, local := range p.RowIDs() {
			if ctx.Err() != nil {
				migErr = ctx.Err()
				break drain
			}
			if !p.IsValid(local) {
				continue
			}
			values, err := p.Row(local)
			if err != nil {
				continue // reclaimed between RowIDs and here
			}
			dst, err := st.routeFor(mig, values[st.keyIdx])
			if err != nil {
				migErr = err
				break drain
			}
			if _, err := table.MoveRow(p, local, mig.parts[dst], values); err != nil {
				if errors.Is(err, table.ErrRowInvalid) {
					continue // claimed by a concurrent update or delete
				}
				migErr = err
				break drain
			}
			rep.RowsMigrated++
		}
	}

	// Phase 3: cutover.  Even after a migration error the cutover
	// publishes — the table is consistent either way, the drain is just
	// incomplete (see Reshard doc).
	cutStart := time.Now()
	var cutoverEpoch uint64
	if olog != nil {
		cutoverEpoch = olog.Append([]oplog.Rec{{
			Kind: oplog.KindReshardCutover, Shard: uint32(newBase),
			ID: uint64(n), ID2: m.version + 2,
		}})
	} else {
		cutoverEpoch = st.clock.Now()
	}
	st.smap.Store(&shardMap{
		version: m.version + 2,
		parts:   mig.parts,
		base:    newBase, n: n,
	})
	rep.CutoverWall = time.Since(cutStart)
	rep.Wall = time.Since(start)
	rep.Version = m.version + 2
	rep.CutoverEpoch = cutoverEpoch
	return rep, migErr
}

// ApplyReshardBegin replays a KindReshardBegin op on a replication
// follower: n partitions are created from physical index base on, routing
// switches to them, and the old partitions are sealed — mirroring the
// primary's phase 1 so that subsequent replayed ops find their target
// partitions.  Idempotent: a begin at or below the current map version is
// skipped (re-delivery after reconnect).
func (st *Table) ApplyReshardBegin(base, n int, version uint64) error {
	st.reshardMu.Lock()
	defer st.reshardMu.Unlock()

	m := st.load()
	if version <= m.version {
		return nil
	}
	if base != len(m.parts) || n < 1 || base+n > MaxShards {
		return fmt.Errorf("%w: reshard-begin base %d count %d, have %d partitions",
			table.ErrReplayGap, base, n, len(m.parts))
	}
	st.mu.Lock()
	olog := st.olog
	gcOn := st.gcOn
	indexCols := append([]string(nil), st.indexCols...)
	onPart := st.onPart
	st.mu.Unlock()

	fresh := make([]*table.Table, n)
	for i := range fresh {
		phys := base + i
		s, err := table.NewWithClock(fmt.Sprintf("%s/%d", st.name, phys), st.schema, st.clock)
		if err != nil {
			return err
		}
		if olog != nil {
			if err := s.AttachOplog(olog, phys); err != nil {
				return err
			}
		}
		s.SetGC(gcOn)
		for _, col := range indexCols {
			if err := s.CreateIndex(col); err != nil {
				return err
			}
		}
		fresh[i] = s
	}
	st.smap.Store(&shardMap{
		version: version,
		parts:   append(append([]*table.Table(nil), m.parts...), fresh...),
		base:    m.base, n: m.n,
		migrating: true, nextBase: base, nextLen: n,
	})
	if onPart != nil {
		for i, s := range fresh {
			onPart(s, base+i)
		}
	}
	for _, s := range m.parts {
		s.Seal()
	}
	return nil
}

// ApplyReshardCutover replays a KindReshardCutover op on a follower,
// publishing the post-reshard routing.  Idempotent by map version.
func (st *Table) ApplyReshardCutover(base, n int, version uint64) error {
	st.reshardMu.Lock()
	defer st.reshardMu.Unlock()

	m := st.load()
	if version <= m.version {
		return nil
	}
	if !m.migrating || m.nextBase != base || m.nextLen != n || version != m.version+1 {
		return fmt.Errorf("%w: reshard-cutover base %d count %d version %d (map version %d, migrating %v)",
			table.ErrReplayGap, base, n, version, m.version, m.migrating)
	}
	st.smap.Store(&shardMap{
		version: version,
		parts:   m.parts,
		base:    base, n: n,
	})
	return nil
}

// PersistTopology returns the physical partition list and routing the
// snapshot writer records.  A mid-reshard topology is normalized to its
// post-cutover form (the migration target becomes the active window):
// rows not yet migrated simply remain in sealed partitions of the restored
// store — the same lazily-drained, fully consistent state a cancelled
// Reshard leaves behind.
func (st *Table) PersistTopology() (parts []*table.Table, activeBase, activeLen int, version uint64) {
	m := st.load()
	parts = make([]*table.Table, len(m.parts))
	copy(parts, m.parts)
	if m.migrating {
		return parts, m.nextBase, m.nextLen, m.version + 1
	}
	return parts, m.base, m.n, m.version
}
