package shard

import (
	"context"
	"errors"
	"testing"

	"hyrise/internal/table"
)

// TestShardedGC runs the update-heavy GC loop against a sharded table: a
// cross-shard pinned view protects its row set through MergeAll cycles,
// unpinned history is reclaimed on every shard, and retired global ids
// keep failing with ErrRowInvalid.  The parallel variant runs every shard
// merge through the intra-column range-partitioned GC path.
func TestShardedGC(t *testing.T) {
	t.Run("serial", func(t *testing.T) { shardedGCLoop(t, MergeAllOptions{}) })
	t.Run("parallel-intra-column", func(t *testing.T) {
		shardedGCLoop(t, MergeAllOptions{
			Merge: table.MergeOptions{Threads: 4, Strategy: table.IntraColumn},
		})
	})
}

func shardedGCLoop(t *testing.T, mopts MergeAllOptions) {
	st, err := New("gc", table.Schema{
		{Name: "k", Type: table.Uint64},
		{Name: "v", Type: table.Uint64},
	}, "k", 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	gids := make([]int, n)
	for i := range gids {
		gid, err := st.Insert([]any{uint64(i), uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		gids[i] = gid
	}
	retiredGid := gids[0]

	var view table.View
	pinned := false
	for cycle := 0; cycle < 10; cycle++ {
		for i := range gids {
			// Every third update changes the key, exercising cross-shard
			// moves under GC.
			changes := map[string]any{"v": uint64(cycle)}
			if i%3 == 0 {
				changes["k"] = uint64(i + cycle*n)
			}
			ngid, err := st.Update(gids[i], changes)
			if err != nil {
				t.Fatalf("cycle %d row %d: %v", cycle, i, err)
			}
			gids[i] = ngid
		}
		if _, err := st.MergeAll(context.Background(), mopts); err != nil {
			t.Fatal(err)
		}
		if !pinned {
			// With nothing pinned, every superseded version is reclaimed:
			// Rows - ValidRows stays zero after each merge cycle, no matter
			// how many updates ran.
			if st.Rows() != st.ValidRows() || st.Rows() != n {
				t.Fatalf("cycle %d: rows=%d valid=%d, growth not bounded",
					cycle, st.Rows(), st.ValidRows())
			}
		} else {
			// A pinned view freezes history from its capture on — but what
			// it sees never changes.
			if got := st.ValidRowsAt(view); got != n {
				t.Fatalf("cycle %d: pinned view sees %d rows want %d", cycle, got, n)
			}
		}
		if cycle == 4 {
			// Pin a cross-shard view mid-run, as a real reader would.
			view = st.Snapshot()
			pinned = true
		}
	}

	// Release the mid-run pin: the next merge reclaims the history it held.
	view.Release()
	rep, err := st.MergeAll(context.Background(), mopts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsReclaimed == 0 {
		t.Fatal("release reclaimed nothing")
	}
	if st.Rows() != st.ValidRows() || st.ValidRows() != n {
		t.Fatalf("after release: rows=%d valid=%d want %d", st.Rows(), st.ValidRows(), n)
	}
	// The very first version was reclaimed back in cycle 0; its global id
	// is retired for good.
	if _, err := st.Row(retiredGid); !errors.Is(err, table.ErrRowInvalid) {
		t.Fatalf("Row(retired gid): %v want ErrRowInvalid", err)
	}
	if st.IsValid(retiredGid) {
		t.Fatal("retired gid reports valid")
	}
	stats := st.StoreStats()
	if stats.RetiredRows == 0 || stats.ReclaimedBytes == 0 {
		t.Fatalf("GC counters not aggregated: %+v", stats)
	}
	// Current versions read back exactly.
	for i, gid := range gids {
		row, err := st.Row(gid)
		if err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
		if row[1].(uint64) != 9 {
			t.Fatalf("survivor %d: v=%v want 9", i, row[1])
		}
	}
}

// TestShardedSetGC: the fan-out switch disables reclamation on every shard.
func TestShardedSetGC(t *testing.T) {
	st, err := New("nogc", table.Schema{{Name: "k", Type: table.Uint64}}, "k", 2)
	if err != nil {
		t.Fatal(err)
	}
	st.SetGC(false)
	if st.GCEnabled() {
		t.Fatal("GCEnabled after SetGC(false)")
	}
	gid, _ := st.Insert([]any{uint64(1)})
	if _, err := st.Update(gid, map[string]any{"k": uint64(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MergeAll(context.Background(), MergeAllOptions{}); err != nil {
		t.Fatal(err)
	}
	if st.Rows() != 2 {
		t.Fatalf("rows=%d want 2 (history kept)", st.Rows())
	}
	if _, err := st.Row(gid); err != nil {
		t.Fatalf("history lost with GC off: %v", err)
	}
	st.SetGC(true)
	if !st.GCEnabled() {
		t.Fatal("GCEnabled false after SetGC(true)")
	}
}
