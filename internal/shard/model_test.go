package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hyrise/internal/table"
)

// TestModelBasedShardedEquivalence replays a random sequence of inserts,
// updates (including key changes, which may relocate rows across shards),
// deletes and merges against both a 4-shard table and a flat reference
// table.Table, asserting after every merge that the two expose identical
// visible data: the same multiset of valid (k, v) rows, the same lookup
// and range answers for sampled keys, and the same aggregates.  Row ids
// differ by construction (global ids interleave shards), so the test
// tracks each live row under both id spaces.
func TestModelBasedShardedEquivalence(t *testing.T) {
	for _, cfg := range []struct {
		shards int
		seed   int64
	}{{4, 1}, {4, 2}, {8, 3}} {
		t.Run(fmt.Sprintf("shards=%d/seed=%d", cfg.shards, cfg.seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(cfg.seed))
			st := newKV(t, cfg.shards)
			flat, err := table.New("ref", kvSchema())
			if err != nil {
				t.Fatal(err)
			}
			sh, _ := ColumnOf[uint64](st, "k")
			sn, _ := NumericColumnOf[uint64](st, "v")
			fh, _ := table.ColumnOf[uint64](flat, "k")
			fn, _ := table.NumericColumnOf[uint64](flat, "v")

			// live pairs the sharded gid and flat row id of each valid row.
			type pair struct{ gid, fid int }
			var live []pair

			const domain = 40 // dense key collisions
			checkEquiv := func(step int) {
				t.Helper()
				if got, want := st.ValidRows(), flat.ValidRows(); got != want {
					t.Fatalf("step %d: valid rows %d want %d", step, got, want)
				}
				if got, want := st.Rows(), flat.Rows(); got != want {
					t.Fatalf("step %d: stored versions %d want %d", step, got, want)
				}
				// Per-key lookups return the same visible (k, v) multisets.
				for k := uint64(0); k < domain; k++ {
					gotRows := sh.Lookup(k)
					wantRows := fh.Lookup(k)
					if len(gotRows) != len(wantRows) {
						t.Fatalf("step %d: lookup(%d) %d rows want %d",
							step, k, len(gotRows), len(wantRows))
					}
					gotVals := rowVals(t, st, gotRows)
					wantVals := flatVals(t, flat, wantRows)
					for i := range wantVals {
						if gotVals[i] != wantVals[i] {
							t.Fatalf("step %d: lookup(%d) values %v want %v",
								step, k, gotVals, wantVals)
						}
					}
				}
				// A random range agrees on the same multiset.
				lo := rng.Uint64() % domain
				hi := lo + rng.Uint64()%10
				gotVals := rowVals(t, st, sh.Range(lo, hi))
				wantVals := flatVals(t, flat, fh.Range(lo, hi))
				if len(gotVals) != len(wantVals) {
					t.Fatalf("step %d: range(%d,%d) %d rows want %d",
						step, lo, hi, len(gotVals), len(wantVals))
				}
				for i := range wantVals {
					if gotVals[i] != wantVals[i] {
						t.Fatalf("step %d: range(%d,%d) mismatch", step, lo, hi)
					}
				}
				// Aggregates agree.
				if got, want := sn.Sum(), fn.Sum(); got != want {
					t.Fatalf("step %d: sum %d want %d", step, got, want)
				}
				if got, want := sh.Distinct(), fh.Distinct(); got != want {
					t.Fatalf("step %d: distinct %d want %d", step, got, want)
				}
			}

			for step := 0; step < 40; step++ {
				for op := 0; op < 100; op++ {
					switch rng.Intn(10) {
					case 0, 1, 2, 3: // insert
						k, v := rng.Uint64()%domain, rng.Uint64()%1000
						gid, err := st.Insert([]any{k, v})
						if err != nil {
							t.Fatal(err)
						}
						fid, err := flat.Insert([]any{k, v})
						if err != nil {
							t.Fatal(err)
						}
						live = append(live, pair{gid, fid})
					case 4, 5, 6: // update a live row; half the time change the key
						if len(live) == 0 {
							continue
						}
						i := rng.Intn(len(live))
						p := live[i]
						changes := map[string]any{"v": rng.Uint64() % 1000}
						if rng.Intn(2) == 0 {
							changes["k"] = rng.Uint64() % domain
						}
						ngid, err := st.Update(p.gid, changes)
						if err != nil {
							t.Fatalf("sharded update: %v", err)
						}
						nfid, err := flat.Update(p.fid, changes)
						if err != nil {
							t.Fatalf("flat update: %v", err)
						}
						live[i] = pair{ngid, nfid}
					case 7: // delete a live row
						if len(live) == 0 {
							continue
						}
						i := rng.Intn(len(live))
						p := live[i]
						if err := st.Delete(p.gid); err != nil {
							t.Fatalf("sharded delete: %v", err)
						}
						if err := flat.Delete(p.fid); err != nil {
							t.Fatalf("flat delete: %v", err)
						}
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
					case 8: // stale-id operations fail identically
						if len(live) == 0 {
							continue
						}
						p := live[rng.Intn(len(live))]
						// Delete then retry through both: the second
						// attempt must fail on both sides.
						_ = st.Delete(p.gid)
						_ = flat.Delete(p.fid)
						gerr := st.Delete(p.gid)
						ferr := flat.Delete(p.fid)
						if (gerr == nil) != (ferr == nil) {
							t.Fatalf("stale delete divergence: %v vs %v", gerr, ferr)
						}
						for i := range live {
							if live[i] == p {
								live[i] = live[len(live)-1]
								live = live[:len(live)-1]
								break
							}
						}
					default: // read-only op keeps the mix honest
						k := rng.Uint64() % domain
						_ = sh.Lookup(k)
					}
				}
				// Merge both sides with varied configurations, then verify.
				if step%3 == 2 {
					if _, err := st.MergeAll(context.Background(), MergeAllOptions{
						Merge: table.MergeOptions{
							Threads:  1 + rng.Intn(4),
							Strategy: table.Strategy(rng.Intn(3)),
						},
						MaxConcurrent: 1 + rng.Intn(cfg.shards),
					}); err != nil {
						t.Fatal(err)
					}
					if _, err := flat.Merge(context.Background(), table.MergeOptions{}); err != nil {
						t.Fatal(err)
					}
				}
				checkEquiv(step)
			}
		})
	}
}

// rowVals materializes and sorts the (k, v) values of sharded rows so
// multisets compare order-independently.
func rowVals(t *testing.T, st *Table, gids []int) [][2]uint64 {
	t.Helper()
	out := make([][2]uint64, 0, len(gids))
	for _, gid := range gids {
		row, err := st.Row(gid)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, [2]uint64{row[0].(uint64), row[1].(uint64)})
	}
	sortPairs(out)
	return out
}

func flatVals(t *testing.T, ft *table.Table, rows []int) [][2]uint64 {
	t.Helper()
	out := make([][2]uint64, 0, len(rows))
	for _, r := range rows {
		row, err := ft.Row(r)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, [2]uint64{row[0].(uint64), row[1].(uint64)})
	}
	sortPairs(out)
	return out
}

func sortPairs(p [][2]uint64) {
	sort.Slice(p, func(i, j int) bool {
		if p[i][0] != p[j][0] {
			return p[i][0] < p[j][0]
		}
		return p[i][1] < p[j][1]
	})
}
