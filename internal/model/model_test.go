package model

import (
	"math"
	"testing"
)

// paperWorkload is the §7.4 scenario: NM=100M, ND=1M, Ej=8.
func paperWorkload(uniqueFrac float64) Workload {
	w := Workload{NM: 100_000_000, ND: 1_000_000, Ej: 8, NC: 300}
	w.UM = int(uniqueFrac * float64(w.NM))
	w.UD = int(uniqueFrac * float64(w.ND))
	w.UPrime = w.UM + w.UD // fully unique case: disjoint
	return w
}

func TestStep1aMatchesPaperEq17(t *testing.T) {
	// Paper §7.4: Step 1(a) at 100% unique = 0.306 cycles/tuple.
	w := paperWorkload(1.0)
	a := PaperArch()
	tr := EstimateTraffic(w, a, true)
	cpt := (tr.Step1aStream/a.StreamBPC + tr.Step1aRandom/a.RandomBPC) /
		float64(w.NM+w.ND)
	if math.Abs(cpt-0.306) > 0.01 {
		t.Fatalf("Step1a cpt=%.3f want ~0.306 (Eq. 17)", cpt)
	}
}

func TestStep2BandwidthBoundMatchesPaper(t *testing.T) {
	// Paper §7.4: Step 2 at 100% unique ≈ 14.2 cycles/tuple (model), 15
	// measured.
	w := paperWorkload(1.0)
	a := PaperArch()
	p := Predict(w, a, true)
	if p.Step2ComputeBound {
		t.Fatal("100% unique should not be cache-resident")
	}
	cpt := p.CyclesPerTuple(p.Step2Cycles)
	if math.Abs(cpt-14.2) > 0.5 {
		t.Fatalf("Step2 cpt=%.2f want ~14.2", cpt)
	}
}

func TestStep2ComputeBoundMatchesPaperEq18(t *testing.T) {
	// Paper Eq. 18: 1% unique → 4/6 + (19.9/8)/7 + (2·19.9/8)/7 ≈ 1.73.
	w := paperWorkload(0.01)
	a := PaperArch()
	p := Predict(w, a, true)
	if !p.Step2ComputeBound {
		t.Fatalf("1%% unique should be cache-resident (aux=%d bytes)", w.AuxBytes(true))
	}
	cpt := p.CyclesPerTuple(p.Step2Cycles)
	if math.Abs(cpt-1.73) > 0.1 {
		t.Fatalf("Step2 cpt=%.2f want ~1.73 (Eq. 18)", cpt)
	}
}

func TestCacheKnee(t *testing.T) {
	// Figure 9: at 1% unique the knee falls between NM=100M (aux ~2.5MB,
	// fits 24MB LLC) and NM=1B (aux ~30MB, does not fit).
	a := PaperArch()
	small := Workload{NM: 100_000_000, ND: 1_000_000, Ej: 8,
		UM: 1_000_000, UD: 10_000, UPrime: 1_010_000}
	big := Workload{NM: 1_000_000_000, ND: 10_000_000, Ej: 8,
		UM: 10_000_000, UD: 100_000, UPrime: 10_100_000}
	if !small.AuxFitsCache(a, true) {
		t.Fatal("100M/1% aux should fit LLC")
	}
	if big.AuxFitsCache(a, true) {
		t.Fatal("1B/1% aux should not fit LLC")
	}
	ps := Predict(small, a, true)
	pb := Predict(big, a, true)
	if ps.CyclesPerTuple(ps.Step2Cycles) >= pb.CyclesPerTuple(pb.Step2Cycles) {
		t.Fatal("cache-resident Step 2 should be cheaper per tuple")
	}
}

func TestECBits(t *testing.T) {
	w := Workload{UM: 6, UD: 4, UPrime: 9}
	if w.ECBits() != 3 {
		t.Fatalf("ECBits=%d want 3", w.ECBits())
	}
	if w.ECPrimeBits() != 4 {
		t.Fatalf("ECPrimeBits=%d want 4", w.ECPrimeBits())
	}
}

func TestUpdateRateEq16(t *testing.T) {
	// Paper Eq. 16: ND=4M, cost 13.5 cpt, NM+ND=104M, NC=300, 3.3GHz
	// → ≈ 31,350 updates/second.
	w := Workload{NM: 100_000_000, ND: 4_000_000, NC: 300}
	rate := UpdateRateFromCost(w, PaperArch(), 13.5)
	if math.Abs(rate-31350) > 200 {
		t.Fatalf("rate=%.0f want ~31350", rate)
	}
}

func TestUpdateRateEq1(t *testing.T) {
	if got := UpdateRate(1000, 0.5, 0.5); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("UpdateRate=%f want 1000", got)
	}
	if !math.IsInf(UpdateRate(10, 0, 0), 1) {
		t.Fatal("zero time should give +Inf")
	}
}

func TestTrafficMonotonicity(t *testing.T) {
	a := PaperArch()
	base := Workload{NM: 1_000_000, ND: 100_000, Ej: 8, UM: 100_000, UD: 10_000, UPrime: 105_000}
	bigger := base
	bigger.NM *= 2
	tb := EstimateTraffic(base, a, false)
	tb2 := EstimateTraffic(bigger, a, false)
	if tb2.Total() <= tb.Total() {
		t.Fatal("traffic must grow with NM")
	}
	par := EstimateTraffic(base, a, true)
	if par.Total() <= tb.Total() {
		t.Fatal("parallel merge adds Eq. 15 traffic")
	}
}

func TestStep1bComputeParallelOverhead(t *testing.T) {
	a := PaperArch()
	w := Workload{UPrime: 1_000_000}
	serial := Step1bComputeCycles(w, a, false)
	parallel := Step1bComputeCycles(w, a, true)
	// Parallel does 2x comparisons over 6 threads: 3x speedup, not 6x
	// (§7.2 reports 4.3x including other effects).
	if got := serial / parallel; math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("parallel speedup=%f want 3", got)
	}
}

func TestExpectedDistinct(t *testing.T) {
	if got := ExpectedDistinct(0, 100); got != 0 {
		t.Fatalf("n=0: %f", got)
	}
	// Large domain, few draws: almost all distinct.
	if got := ExpectedDistinct(100, 1e12); math.Abs(got-100) > 0.1 {
		t.Fatalf("sparse draws: %f want ~100", got)
	}
	// Tiny domain saturates.
	if got := ExpectedDistinct(100000, 10); math.Abs(got-10) > 1e-6 {
		t.Fatalf("saturated: %f want 10", got)
	}
}

func TestDomainForUniqueFraction(t *testing.T) {
	n := 1_000_000
	for _, frac := range []float64{0.001, 0.01, 0.1, 0.5} {
		d := DomainForUniqueFraction(n, frac)
		got := ExpectedDistinct(n, float64(d))
		rel := math.Abs(got-frac*float64(n)) / (frac * float64(n))
		if rel > 0.02 {
			t.Fatalf("frac=%f: domain %d gives %f distinct (want %f)",
				frac, d, got, frac*float64(n))
		}
	}
	if got := DomainForUniqueFraction(n, 1.0); got != 0 {
		t.Fatalf("frac=1 sentinel: %d", got)
	}
	if got := DomainForUniqueFraction(n, 0); got != 1 {
		t.Fatalf("frac=0: %d", got)
	}
}

func TestAuxBytesPackedVsUnpacked(t *testing.T) {
	w := Workload{UM: 1000, UD: 100, UPrime: 1050}
	if w.AuxBytes(false) != 1100*4 {
		t.Fatalf("unpacked=%d", w.AuxBytes(false))
	}
	packed := w.AuxBytes(true)
	if packed >= w.AuxBytes(false) || packed <= 0 {
		t.Fatalf("packed=%d", packed)
	}
}
