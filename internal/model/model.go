// Package model implements the paper's analytical cost model for the merge
// (§4, §6.1, §7.4): per-step memory-traffic equations, the cache-residency
// switch for Step 2, and the update-rate arithmetic of Equations 1 and 16.
//
// The model serves the same two purposes as in the paper: validating that
// the measured implementation is bound by the resource the model predicts
// (bandwidth vs compute), and projecting performance for input and
// architecture parameters that were not measured.
//
// All traffic quantities are in bytes, all times in CPU cycles; callers
// convert to wall time via the clock rate.  Defaults mirror the paper's
// dual-socket Xeon X5680 testbed; Calibrate in internal/membench derives
// host-specific bandwidth figures.
package model

import (
	"math"

	"hyrise/internal/bitpack"
)

// Arch describes the architecture-dependent constants.
type Arch struct {
	// LineBytes is the cache-line size L.
	LineBytes int
	// LLCBytes is the last-level cache capacity that auxiliary structures
	// must fit into for the fast Step 2 path (24 MB on the paper's
	// dual-socket system).
	LLCBytes int
	// StreamBPC is sequential-access memory bandwidth in bytes/cycle
	// (paper: ~7 B/cycle ≈ 23 GB/s at 3.3 GHz per socket).
	StreamBPC float64
	// RandomBPC is random-access (gather) bandwidth in bytes/cycle
	// (paper: ~5 B/cycle).
	RandomBPC float64
	// OpsPerCycle is the scalar instruction throughput per core.
	OpsPerCycle float64
	// Threads is the number of cores cooperating on one column merge.
	Threads int
	// HZ is the clock rate used to convert cycles to seconds.
	HZ float64
}

// PaperArch returns the constants of the paper's evaluation machine
// (single socket: 6 cores at 3.3 GHz, 30 GB/s peak, 24 MB LLC shared
// across the two sockets' 12 MB caches — the paper quotes 24 MB as the
// aggregate that bounds the Figure 9 knee).
func PaperArch() Arch {
	return Arch{
		LineBytes:   64,
		LLCBytes:    24 << 20,
		StreamBPC:   7,
		RandomBPC:   5,
		OpsPerCycle: 1,
		Threads:     6,
		HZ:          3.3e9,
	}
}

// Workload describes one column merge in the model's terms (Table 1).
type Workload struct {
	NM, ND int // tuples in main and delta
	Ej     int // uncompressed value-length in bytes
	UM     int // |U_M| distinct values in main
	UD     int // |U_D| distinct values in delta
	UPrime int // |U'_M| distinct values after the merge
	NC     int // number of columns in the table (for update-rate figures)
}

// ECBits returns E_C, the code width before the merge.
func (w Workload) ECBits() uint { return bitpack.MinBits(w.UM) }

// ECPrimeBits returns E'_C (Equations 4 and 7).
func (w Workload) ECPrimeBits() uint { return bitpack.MinBits(w.UPrime) }

// AuxBytes returns the in-memory size of the auxiliary structures
// X_M and X_D.  The paper packs entries at E'_C bits; our implementation
// uses 32-bit entries, so both figures are available.
func (w Workload) AuxBytes(packed bool) int {
	entries := w.UM + w.UD
	if packed {
		return entries * int(w.ECPrimeBits()) / 8
	}
	return entries * 4
}

// AuxFitsCache is the Step 2 regime switch of §6.1/§7.3: when the
// translation tables fit in the LLC, Step 2 is compute bound; otherwise
// every lookup is a potential cache-line miss.
func (w Workload) AuxFitsCache(a Arch, packed bool) bool {
	return w.AuxBytes(packed) <= a.LLCBytes
}

// Traffic aggregates modelled memory traffic in bytes.
type Traffic struct {
	Step1aStream, Step1aRandom float64
	Step1bStream               float64
	Step2Stream, Step2Random   float64
}

// Total returns all modelled bytes.
func (t Traffic) Total() float64 {
	return t.Step1aStream + t.Step1aRandom + t.Step1bStream + t.Step2Stream + t.Step2Random
}

// EstimateTraffic evaluates Equations 8-15.
//
//	Step 1(a): 4·Ej·|U_D| streaming (tree traversal + dictionary write) and
//	           (2L+4)·N_D random (per-tuple code scatter)        (Eq. 8)
//	Step 1(b): reads  Ej·(|U_M|+|U_D|+|U'_M|) + E'_C·(|X_M|+|X_D|)/8  (Eq. 9)
//	           writes Ej·|U'_M| + E'_C·(|X_M|+|X_D|)/8               (Eq. 10)
//	           parallel adds Ej·(|U_M|+|U_D|) + 2·Ej·|U'_M|          (Eq. 15)
//	Step 2:    aux gather L·(N_M+N_D) random if not cache-resident   (Eq. 12)
//	           partition read  E_C·(N_M+N_D)/8 streaming             (Eq. 13)
//	           output write  2·E'_C·(N_M+N_D)/8 streaming            (Eq. 14)
func EstimateTraffic(w Workload, a Arch, parallel bool) Traffic {
	ej := float64(w.Ej)
	ecp := float64(w.ECPrimeBits())
	ec := float64(w.ECBits())
	n := float64(w.NM + w.ND)
	var t Traffic

	t.Step1aStream = 4 * ej * float64(w.UD)
	t.Step1aRandom = float64(2*a.LineBytes+4) * float64(w.ND)

	aux := ecp * float64(w.UM+w.UD) / 8
	t.Step1bStream = ej*float64(w.UM+w.UD+w.UPrime) + aux + // Eq. 9
		ej*float64(w.UPrime) + aux // Eq. 10
	if parallel {
		t.Step1bStream += ej*float64(w.UM+w.UD) + 2*ej*float64(w.UPrime) // Eq. 15
	}

	if !w.AuxFitsCache(a, true) {
		t.Step2Random = float64(a.LineBytes) * n // Eq. 12
	}
	t.Step2Stream = ec*n/8 + 2*ecp*n/8 // Eq. 13 + Eq. 14
	return t
}

// Prediction is the model's per-step cost in cycles and derived figures.
type Prediction struct {
	Workload Workload
	Arch     Arch
	Parallel bool

	Step1aCycles float64
	Step1bCycles float64
	Step2Cycles  float64

	// Step2ComputeBound reports which regime Step 2 is in.
	Step2ComputeBound bool
}

// TotalCycles returns the modelled merge time T_M in cycles.
func (p Prediction) TotalCycles() float64 {
	return p.Step1aCycles + p.Step1bCycles + p.Step2Cycles
}

// CyclesPerTuple returns the modelled update cost contribution of the merge
// (per tuple over N_M+N_D, as plotted in Figures 7-8).
func (p Prediction) CyclesPerTuple(step float64) float64 {
	n := float64(p.Workload.NM + p.Workload.ND)
	if n == 0 {
		return 0
	}
	return step / n
}

// Predict evaluates the model for one column merge (§7.4).
//
// Bandwidth-bound phases cost traffic/bandwidth; the compute-bound Step 2
// (auxiliary structures cache-resident) costs gatherOps per tuple divided
// across threads, plus the streaming traffic of Equations 13-14 — the
// structure of the paper's Equation 18.
func Predict(w Workload, a Arch, parallel bool) Prediction {
	t := EstimateTraffic(w, a, parallel)
	p := Prediction{Workload: w, Arch: a, Parallel: parallel}

	p.Step1aCycles = t.Step1aStream/a.StreamBPC + t.Step1aRandom/a.RandomBPC
	p.Step1bCycles = t.Step1bStream / a.StreamBPC

	n := float64(w.NM + w.ND)
	streamCycles := t.Step2Stream / a.StreamBPC
	if w.AuxFitsCache(a, true) {
		p.Step2ComputeBound = true
		threads := float64(a.Threads)
		if !parallel || threads < 1 {
			threads = 1
		}
		p.Step2Cycles = gatherOpsPerTuple*n/(a.OpsPerCycle*threads) + streamCycles // Eq. 18 shape
	} else {
		p.Step2Cycles = t.Step2Random/a.RandomBPC + streamCycles // Eq. 17 shape
	}
	return p
}

// gatherOpsPerTuple is the scalar instruction count the paper charges per
// tuple for the cache-resident translation lookup (Equation 18 uses 4).
const gatherOpsPerTuple = 4

// mergeOpsPerValue is the instruction count per merged dictionary element
// ("around 12 ops", §6.1, citing Chhugani et al.).
const mergeOpsPerValue = 12

// Step1bComputeCycles returns the compute-bound cost of the dictionary
// merge: 12 ops per output element (§6.1).  The realized Step 1(b) cost is
// the max of this and the bandwidth term; at 8-byte values bandwidth
// dominates, matching the paper's treatment.
func Step1bComputeCycles(w Workload, a Arch, parallel bool) float64 {
	threads := 1.0
	if parallel {
		threads = float64(a.Threads)
	}
	ops := mergeOpsPerValue * float64(w.UPrime)
	if parallel {
		ops *= 2 // the three-phase algorithm performs the comparisons twice (§7.2)
	}
	return ops / (a.OpsPerCycle * threads)
}

// UpdateRate evaluates Equation 1 / Equation 16: sustained updates per
// second given the delta-fill time and merge time for all N_C columns.
//
//	rate = N_D / (T_U + T_M)
//
// where both times are in seconds.
func UpdateRate(nd int, tuSeconds, tmSeconds float64) float64 {
	den := tuSeconds + tmSeconds
	if den <= 0 {
		return math.Inf(1)
	}
	return float64(nd) / den
}

// UpdateRateFromCost converts an amortized update cost (cycles per tuple
// per column, the unit of Figures 7-9) back to updates/second, exactly as
// the paper's Equation 16:
//
//	rate = N_D · HZ / (cost · (N_M+N_D) · N_C)
func UpdateRateFromCost(w Workload, a Arch, costCyclesPerTuple float64) float64 {
	den := costCyclesPerTuple * float64(w.NM+w.ND) * float64(w.NC)
	if den <= 0 {
		return math.Inf(1)
	}
	return float64(w.ND) * a.HZ / den
}

// ExpectedDistinct estimates the number of distinct values among n uniform
// draws from a domain of size d (used to pick generator domains for target
// unique fractions λ).
func ExpectedDistinct(n int, d float64) float64 {
	if d <= 0 || n == 0 {
		return 0
	}
	return d * (1 - math.Exp(float64(n)*math.Log1p(-1/d)))
}

// DomainForUniqueFraction returns a generator domain size such that n
// uniform draws yield approximately frac·n distinct values.  Binary search
// over ExpectedDistinct; frac is clamped to (0, 1].
func DomainForUniqueFraction(n int, frac float64) int {
	if frac >= 1 {
		return 0 // sentinel: caller should generate unique values directly
	}
	if frac <= 0 {
		return 1
	}
	target := frac * float64(n)
	lo, hi := 1.0, 1e18
	for iter := 0; iter < 200 && hi-lo > 0.5; iter++ {
		mid := (lo + hi) / 2
		if ExpectedDistinct(n, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return int(hi)
}
