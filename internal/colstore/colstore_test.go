package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyrise/internal/bitpack"
	"hyrise/internal/dict"
)

func TestFromValuesRoundTrip(t *testing.T) {
	vals := []uint64{50, 10, 30, 10, 50, 50, 20}
	m := FromValues(vals)
	if m.Len() != len(vals) {
		t.Fatalf("Len=%d want %d", m.Len(), len(vals))
	}
	if m.Dict().Len() != 4 {
		t.Fatalf("dict len %d want 4", m.Dict().Len())
	}
	if m.Bits() != 2 {
		t.Fatalf("Bits=%d want 2", m.Bits())
	}
	for i, v := range vals {
		if m.At(i) != v {
			t.Fatalf("At(%d)=%d want %d", i, m.At(i), v)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperExampleColumn(t *testing.T) {
	// Figure 5 main partition: 6 dictionary entries stored in 3 bits.
	vals := []string{"charlie", "hotel", "delta", "apple", "frank", "inbox",
		"hotel", "charlie", "delta", "inbox"}
	m := FromValues(vals)
	if m.Dict().Len() != 6 {
		t.Fatalf("dict len %d want 6", m.Dict().Len())
	}
	if m.Bits() != 3 {
		t.Fatalf("Bits=%d want 3 (ceil(log2 6))", m.Bits())
	}
	if code, ok := m.LookupCode("hotel"); !ok || code != 4 {
		t.Fatalf("LookupCode(hotel)=%d,%v want 4 (paper: encoded value 100)", code, ok)
	}
}

func TestScanEqual(t *testing.T) {
	vals := []uint64{5, 1, 5, 9, 5, 1}
	m := FromValues(vals)
	got := m.ScanEqual(5, nil)
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("ScanEqual=%v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanEqual=%v want %v", got, want)
		}
	}
	if got := m.ScanEqual(7, nil); len(got) != 0 {
		t.Fatalf("ScanEqual(7)=%v want empty", got)
	}
	if n := m.CountEqual(1); n != 2 {
		t.Fatalf("CountEqual(1)=%d want 2", n)
	}
}

func TestScanRange(t *testing.T) {
	vals := []uint64{10, 20, 30, 40, 50, 25}
	m := FromValues(vals)
	got := m.ScanRange(20, 40, nil)
	want := []int{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("ScanRange=%v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanRange=%v want %v", got, want)
		}
	}
	// Bounds not present in the data still select correctly.
	got = m.ScanRange(11, 39, nil)
	want = []int{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("ScanRange(11,39)=%v want %v", got, want)
	}
	if got := m.ScanRange(60, 70, nil); len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
	if got := m.ScanRange(40, 20, nil); len(got) != 0 {
		t.Fatalf("inverted range returned %v", got)
	}
}

func TestMaterialize(t *testing.T) {
	vals := []uint64{7, 8, 9, 10}
	m := FromValues(vals)
	got := m.Materialize(1, 3, nil)
	if len(got) != 2 || got[0] != 8 || got[1] != 9 {
		t.Fatalf("Materialize=%v", got)
	}
}

func TestEmpty(t *testing.T) {
	m := Empty[uint64]()
	if m.Len() != 0 || m.Dict().Len() != 0 {
		t.Fatal("Empty not empty")
	}
	if got := m.ScanEqual(1, nil); len(got) != 0 {
		t.Fatal("scan on empty found rows")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompression(t *testing.T) {
	// 1M-ish tuples over 100 distinct 8-byte values: 7 bits/tuple vs 64.
	rng := rand.New(rand.NewSource(3))
	vals := make([]uint64, 100000)
	for i := range vals {
		vals[i] = uint64(rng.Intn(100)) * 1e9
	}
	m := FromValues(vals)
	if m.Bits() != 7 {
		t.Fatalf("Bits=%d want 7", m.Bits())
	}
	ratio := float64(m.UncompressedSizeBytes()) / float64(m.SizeBytes())
	if ratio < 5 {
		t.Fatalf("compression ratio %.1f too low", ratio)
	}
}

func TestNewPanicsOnNarrowCodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d := dict.FromSorted([]uint64{1, 2, 3, 4, 5})
	New(d, bitpack.New(2, 0)) // 2 bits cannot address 5 entries
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]uint64, len(raw))
		for i, r := range raw {
			vals[i] = uint64(r)
		}
		m := FromValues(vals)
		for i, v := range vals {
			if m.At(i) != v {
				return false
			}
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScanEqual(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint64, 1<<20)
	for i := range vals {
		vals[i] = rng.Uint64() % 1000
	}
	m := FromValues(vals)
	b.ResetTimer()
	var dst []int
	for i := 0; i < b.N; i++ {
		dst = m.ScanEqual(500, dst[:0])
	}
}

func BenchmarkAt(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint64, 1<<20)
	for i := range vals {
		vals[i] = rng.Uint64() % 1000
	}
	m := FromValues(vals)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.At(i & (1<<20 - 1))
	}
	_ = sink
}

func TestIndexedSelectionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, card := range []int{1, 3, 100, 5000} {
		vals := make([]uint64, 20000)
		for i := range vals {
			vals[i] = uint64(rng.Intn(card)) * 3 // gaps so probes can miss
		}
		m := FromValues(vals)
		m.BuildIndex()
		if m.Index() == nil {
			t.Fatal("BuildIndex did not attach")
		}
		probes := []uint64{0, 1, 3, vals[0], vals[len(vals)-1], uint64(card) * 3}
		for _, v := range probes {
			scan := m.SelEqual(v, nil)
			idx := m.SelEqualIndexed(v, nil)
			if len(scan) != len(idx) {
				t.Fatalf("card=%d SelEqualIndexed(%d): %d vs scan %d", card, v, len(idx), len(scan))
			}
			for i := range scan {
				if scan[i] != idx[i] {
					t.Fatalf("card=%d SelEqualIndexed(%d) diverges at %d", card, v, i)
				}
			}
		}
		for trial := 0; trial < 20; trial++ {
			lo := uint64(rng.Intn(card * 3))
			hi := lo + uint64(rng.Intn(card))
			scan := m.SelRange(lo, hi, nil)
			idx := m.SelRangeIndexed(lo, hi, nil)
			if len(scan) != len(idx) {
				t.Fatalf("card=%d SelRangeIndexed(%d,%d): %d vs scan %d", card, lo, hi, len(idx), len(scan))
			}
			for i := range scan {
				if scan[i] != idx[i] {
					t.Fatalf("card=%d SelRangeIndexed(%d,%d) diverges at %d", card, lo, hi, i)
				}
			}
		}
	}
}

func TestSetIndexShapeMismatchPanics(t *testing.T) {
	m := FromValues([]uint64{1, 2, 3})
	other := FromValues([]uint64{1, 2, 3, 4})
	other.BuildIndex()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched SetIndex did not panic")
		}
	}()
	m.SetIndex(other.Index())
}

func TestEmptyMainIndex(t *testing.T) {
	m := Empty[uint64]()
	m.BuildIndex()
	if got := m.SelEqualIndexed(7, nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if got := m.SelRangeIndexed(1, 9, nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}
