// Package colstore implements the read-optimized main partition of a
// column (paper §3): a sorted dictionary plus a bit-packed code vector at
// E_C = ceil(log2 |U_M|) bits per tuple.
//
// Point queries binary-search the dictionary once (random access) and then
// scan the code vector (sequential access) for the resulting code; range
// queries scan for a code interval, exploiting the order-preserving
// encoding.
package colstore

import (
	"fmt"

	"hyrise/internal/bitpack"
	"hyrise/internal/dict"
	"hyrise/internal/index"
	"hyrise/internal/kernel"
	"hyrise/internal/val"
)

// Main is an immutable main partition.  Build one with FromValues, or via
// the merge process in internal/core.
//
// A Main may optionally carry a group-key index (internal/index) attached
// with SetIndex; the payload (dict, codes) is immutable either way, and
// after the index is attached the Main as a whole must be treated as
// immutable — the merge builds the next main's index before publication,
// and table.CreateIndex attaches one under the table write lock.
type Main[V val.Value] struct {
	dict  *dict.Dict[V]
	codes *bitpack.Vector
	idx   *index.Postings
}

// New wraps an existing dictionary and code vector.  The vector's width
// must accommodate the dictionary cardinality.
func New[V val.Value](d *dict.Dict[V], codes *bitpack.Vector) *Main[V] {
	if want := bitpack.MinBits(d.Len()); codes.Bits() < want {
		panic(fmt.Sprintf("colstore: %d-bit codes cannot address %d dictionary entries", codes.Bits(), d.Len()))
	}
	return &Main[V]{dict: d, codes: codes}
}

// Empty returns a main partition with no tuples and an empty dictionary.
func Empty[V val.Value]() *Main[V] {
	return &Main[V]{dict: dict.FromSorted[V](nil), codes: bitpack.New(0, 0)}
}

// FromValues dictionary-compresses values into a main partition.
func FromValues[V val.Value](values []V) *Main[V] {
	d := dict.FromUnsorted(values)
	bits := bitpack.MinBits(d.Len())
	w := bitpack.NewWriter(bits, len(values))
	for _, v := range values {
		code, ok := d.Lookup(v)
		if !ok {
			panic("colstore: dictionary misses its own value")
		}
		w.Write(uint64(code))
	}
	return &Main[V]{dict: d, codes: w.Vector()}
}

// Len returns the tuple count (N_M).
func (m *Main[V]) Len() int { return m.codes.Len() }

// Dict returns the sorted dictionary (U_M).
func (m *Main[V]) Dict() *dict.Dict[V] { return m.dict }

// Codes returns the bit-packed code vector.
func (m *Main[V]) Codes() *bitpack.Vector { return m.codes }

// Bits returns the compressed value-length E_C in bits.
func (m *Main[V]) Bits() uint { return m.codes.Bits() }

// At materializes the value of tuple i (one code fetch plus one dictionary
// access — the "forced materialization" cost the paper charges to reads
// against compressed storage).
func (m *Main[V]) At(i int) V { return m.dict.At(int(m.codes.Get(i))) }

// LookupCode returns the code for value v, if present.
func (m *Main[V]) LookupCode(v V) (uint64, bool) {
	c, ok := m.dict.Lookup(v)
	return uint64(c), ok
}

// SelEqual appends to dst the positions (as a selection vector) whose
// value equals v, evaluated word-at-a-time by the batch kernels.
func (m *Main[V]) SelEqual(v V, dst []int32) []int32 {
	code, ok := m.LookupCode(v)
	if !ok {
		return dst
	}
	return kernel.MatchEqual(m.codes, code, dst)
}

// SelRange appends to dst the positions whose value lies in [lo, hi]
// (inclusive).  The value range maps to one code interval on the
// order-preserving dictionary, so the kernel compares codes only.
func (m *Main[V]) SelRange(lo, hi V, dst []int32) []int32 {
	cLo := uint64(m.dict.LowerBound(lo))
	cHi := uint64(m.dict.UpperBound(hi)) // exclusive
	if cLo >= cHi {
		return dst
	}
	return kernel.MatchRange(m.codes, cLo, cHi, dst)
}

// SetIndex attaches a group-key index built over this main's code vector.
// The index must have been built from exactly this vector (Rows and
// Cardinality must agree); it panics otherwise.  Pass nil to detach.
func (m *Main[V]) SetIndex(p *index.Postings) {
	if p != nil && (p.Rows() != m.codes.Len() || p.Cardinality() != m.dict.Len()) {
		panic(fmt.Sprintf("colstore: index shape %dx%d does not match main %dx%d",
			p.Rows(), p.Cardinality(), m.codes.Len(), m.dict.Len()))
	}
	m.idx = p
}

// Index returns the attached group-key index, or nil if the main is
// unindexed.
func (m *Main[V]) Index() *index.Postings { return m.idx }

// BuildIndex builds and attaches a group-key index over the code vector.
func (m *Main[V]) BuildIndex() {
	m.SetIndex(index.Build(m.codes, m.dict.Len()))
}

// SelEqualIndexed is SelEqual served from the group-key index: one
// dictionary binary search plus a posting-list copy, no code-vector scan.
// The appended span is an ascending selection vector owned by the caller —
// safe to hand to the in-place visibility kernels.  It panics if no index
// is attached (callers check Index() under the same lock).
func (m *Main[V]) SelEqualIndexed(v V, dst []int32) []int32 {
	code, ok := m.LookupCode(v)
	if !ok {
		return dst
	}
	return m.idx.Equal(code, dst)
}

// SelRangeIndexed is SelRange served from the group-key index: the value
// range maps to a code interval whose posting lists are concatenated and
// sorted back to ascending positions.
func (m *Main[V]) SelRangeIndexed(lo, hi V, dst []int32) []int32 {
	cLo := uint64(m.dict.LowerBound(lo))
	cHi := uint64(m.dict.UpperBound(hi)) // exclusive
	if cLo >= cHi {
		return dst
	}
	return m.idx.Range(cLo, cHi, dst)
}

// ScanEqual appends to dst the positions whose value equals v.
func (m *Main[V]) ScanEqual(v V, dst []int) []int {
	return widen(m.SelEqual(v, nil), dst)
}

// ScanRange appends to dst the positions whose value lies in [lo, hi]
// (inclusive).
func (m *Main[V]) ScanRange(lo, hi V, dst []int) []int {
	return widen(m.SelRange(lo, hi, nil), dst)
}

func widen(sel []int32, dst []int) []int {
	for _, p := range sel {
		dst = append(dst, int(p))
	}
	return dst
}

// CountEqual returns the number of tuples with value v.
func (m *Main[V]) CountEqual(v V) int {
	code, ok := m.LookupCode(v)
	if !ok {
		return 0
	}
	return kernel.CountEqual(m.codes, code, nil, nil, 0)
}

// Materialize appends the uncompressed values of positions [from, to) to
// dst.
func (m *Main[V]) Materialize(from, to int, dst []V) []V {
	for i := from; i < to; i++ {
		dst = append(dst, m.At(i))
	}
	return dst
}

// SizeBytes returns payload memory: packed codes plus dictionary values.
func (m *Main[V]) SizeBytes() int {
	return m.codes.SizeBytes() + m.dict.SizeBytes()
}

// UncompressedSizeBytes returns what the column would occupy without
// dictionary compression.
func (m *Main[V]) UncompressedSizeBytes() int {
	per := val.FixedSize[V]()
	if per <= 0 {
		per = 16
	}
	return per * m.codes.Len()
}

// Validate checks internal invariants (test support).
func (m *Main[V]) Validate() error {
	maxCode := uint64(0)
	r := m.codes.Reader()
	for i := 0; i < m.codes.Len(); i++ {
		if c := r.Next(); c > maxCode {
			maxCode = c
		}
	}
	if m.codes.Len() > 0 && int(maxCode) >= m.dict.Len() {
		return fmt.Errorf("colstore: code %d out of dictionary range %d", maxCode, m.dict.Len())
	}
	return nil
}
