package csbtree

import (
	"math/rand"
	"testing"
)

// refAscendRange is the sorted-slice reference: distinct keys of ref in
// [lo, hi] ascending, each with its insertion-order tids.
func refAscendRange(ref *reference, lo, hi uint64) ([]uint64, [][]int32) {
	var ks []uint64
	var ts [][]int32
	for _, k := range ref.sortedKeys() {
		if k >= lo && k <= hi {
			ks = append(ks, k)
			ts = append(ts, ref.m[k])
		}
	}
	return ks, ts
}

func checkRange(t *testing.T, tr *Tree[uint64], ref *reference, lo, hi uint64) {
	t.Helper()
	wantKeys, wantTids := refAscendRange(ref, lo, hi)
	i := 0
	tr.AscendRange(lo, hi, func(v uint64, tids []int32) bool {
		if i >= len(wantKeys) {
			t.Fatalf("AscendRange(%d,%d) yielded extra key %d", lo, hi, v)
		}
		if v != wantKeys[i] {
			t.Fatalf("AscendRange(%d,%d)[%d]=%d want %d", lo, hi, i, v, wantKeys[i])
		}
		if len(tids) != len(wantTids[i]) {
			t.Fatalf("key %d: %d tids want %d", v, len(tids), len(wantTids[i]))
		}
		for j := range tids {
			if tids[j] != wantTids[i][j] {
				t.Fatalf("key %d: tids[%d]=%d want %d", v, j, tids[j], wantTids[i][j])
			}
		}
		i++
		return true
	})
	if i != len(wantKeys) {
		t.Fatalf("AscendRange(%d,%d) yielded %d keys want %d", lo, hi, i, len(wantKeys))
	}
}

func TestAscendRangeFanouts(t *testing.T) {
	for _, k := range []int{2, 3, 4, 7} {
		rng := rand.New(rand.NewSource(int64(k)))
		tr := NewWithFanout[uint64](k)
		ref := newRef()
		for i := int32(0); i < 700; i++ {
			v := uint64(rng.Intn(200))
			tr.Insert(v, i)
			ref.insert(v, i)
		}
		// Deliberate edges: empty, everything, single value, inverted.
		checkRange(t, tr, ref, 0, 199)
		checkRange(t, tr, ref, 0, 0)
		checkRange(t, tr, ref, 199, 199)
		checkRange(t, tr, ref, 50, 50)
		checkRange(t, tr, ref, 300, 400)
		checkRange(t, tr, ref, 10, 5) // hi < lo: no calls
		for trial := 0; trial < 50; trial++ {
			lo := uint64(rng.Intn(220))
			hi := lo + uint64(rng.Intn(80))
			checkRange(t, tr, ref, lo, hi)
		}
	}
}

func TestAscendRangeEmptyTree(t *testing.T) {
	tr := New[uint64]()
	tr.AscendRange(0, ^uint64(0), func(uint64, []int32) bool {
		t.Fatal("callback on empty tree")
		return true
	})
}

func TestAscendRangeEarlyStop(t *testing.T) {
	tr := NewWithFanout[uint64](2)
	for i := int32(0); i < 100; i++ {
		tr.Insert(uint64(i), i)
	}
	calls := 0
	tr.AscendRange(10, 90, func(v uint64, _ []int32) bool {
		calls++
		return v < 20
	})
	if calls != 11 { // 10..20 inclusive, stop after seeing 20
		t.Fatalf("calls=%d want 11", calls)
	}
}

func TestAscendRangeStrings(t *testing.T) {
	tr := New[string]()
	for i, s := range []string{"delta", "alpha", "echo", "bravo", "charlie"} {
		tr.Insert(s, int32(i))
	}
	var got []string
	tr.AscendRange("b", "d", func(v string, _ []int32) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != "bravo" || got[1] != "charlie" {
		t.Fatalf("got %v", got)
	}
}

// FuzzAscendRange cross-checks the bounded traversal against the
// sorted-slice reference on fuzz-chosen value streams and bounds.
func FuzzAscendRange(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint64(1), uint64(4), 3)
	f.Add([]byte{9, 9, 9, 0, 0}, uint64(0), uint64(9), 2)
	f.Add([]byte{}, uint64(5), uint64(1), 4)
	f.Fuzz(func(t *testing.T, data []byte, lo, hi uint64, fanout int) {
		if fanout < 2 || fanout > 8 {
			fanout = 2 + (fanout&0x7fffffff)%7
		}
		tr := NewWithFanout[uint64](fanout)
		ref := newRef()
		for i, b := range data {
			if i >= 512 {
				break
			}
			tr.Insert(uint64(b), int32(i))
			ref.insert(uint64(b), int32(i))
		}
		wantKeys, wantTids := refAscendRange(ref, lo, hi)
		i := 0
		tr.AscendRange(lo, hi, func(v uint64, tids []int32) bool {
			if i >= len(wantKeys) || v != wantKeys[i] {
				t.Fatalf("key %d at position %d, want %v", v, i, wantKeys)
			}
			if len(tids) != len(wantTids[i]) {
				t.Fatalf("key %d: %d tids want %d", v, len(tids), len(wantTids[i]))
			}
			for j := range tids {
				if tids[j] != wantTids[i][j] {
					t.Fatalf("key %d: tid order diverges from insertion order", v)
				}
			}
			i++
			return true
		})
		if i != len(wantKeys) {
			t.Fatalf("yielded %d keys want %d", i, len(wantKeys))
		}
	})
}
