// Package csbtree implements a Cache-Sensitive B+ tree (Rao & Ross,
// SIGMOD 2000) keyed by uncompressed column values, as used by the delta
// partition of every column (paper §3, §5.1).
//
// The defining CSB+ property is that all children of an internal node are
// stored contiguously in one node group, so the node stores only its key
// array and the index of the first child; child i is firstChild+i.  Node
// capacity is derived from the simulated cache-line budget: with 16-byte
// values a node holds at most 3 keys, matching the paper's example (§6.1).
// Splits reallocate the affected child group, which is why the tree
// consumes roughly 2x the raw value payload — the factor the paper's
// Step 1(a) traffic model assumes (Equation 8).
//
// Each distinct value carries a posting list of tuple IDs (positions in the
// delta partition) in insertion order.  The merge Step 1(a) performs an
// in-order traversal of the leaves, which yields the sorted unique values
// and, through the posting lists, rewrites the delta partition to
// dictionary codes without touching each tuple more than once.
package csbtree

import (
	"fmt"

	"hyrise/internal/val"
)

// LineBytes is the simulated cache-line size used to derive node fanout.
const LineBytes = 64

// nodeOverheadBytes approximates the per-node header (count, kind, first
// child) charged against the cache-line budget when deriving fanout.
const nodeOverheadBytes = 16

type posting struct {
	tid  int32
	next int32
}

// Tree is a CSB+ tree.  Create one with New or NewWithFanout.
type Tree[V val.Value] struct {
	k int // max keys per node, >= 2

	// Parallel node arenas, indexed by node id.  keys/phead/ptail hold k
	// slots per node.
	keys  []V
	nkeys []int32
	leaf  []bool
	first []int32 // internal nodes: node id of child 0; children are contiguous

	phead []int32 // leaf slots: head of posting list, -1 if unused
	ptail []int32

	postings []posting

	// Node-group reallocation abandons the old group; abandoned regions are
	// recycled through per-size free lists so the arena stays near the live
	// node count (the paper's Step 1(a) model assumes the tree costs ~2x
	// the raw value payload).
	free map[int][]int32

	root   int32
	unique int
	total  int
}

// New returns an empty tree with fanout derived from V's fixed value size
// (or 16 bytes for variable-length values), mimicking cache-line-sized
// nodes.
func New[V val.Value]() *Tree[V] {
	size := val.FixedSize[V]()
	if size <= 0 {
		size = 16
	}
	k := (LineBytes - nodeOverheadBytes) / size
	if k < 2 {
		k = 2
	}
	return NewWithFanout[V](k)
}

// NewWithFanout returns an empty tree holding at most k keys per node.
// Small k values are useful in tests to force deep trees and frequent node
// group reallocation.
func NewWithFanout[V val.Value](k int) *Tree[V] {
	if k < 2 {
		panic(fmt.Sprintf("csbtree: fanout %d < 2", k))
	}
	return &Tree[V]{k: k, root: -1}
}

// Fanout returns the maximum number of keys per node.
func (t *Tree[V]) Fanout() int { return t.k }

// Unique returns the number of distinct values.
func (t *Tree[V]) Unique() int { return t.unique }

// Total returns the number of inserted (value, tid) pairs.
func (t *Tree[V]) Total() int { return t.total }

// SizeBytes estimates the memory held by the tree: node arenas plus the
// posting arena.
func (t *Tree[V]) SizeBytes() int {
	per := val.FixedSize[V]()
	if per <= 0 {
		per = 16
	}
	nodes := len(t.nkeys)
	return nodes*(t.k*per+nodeOverheadBytes) + len(t.postings)*8
}

// alloc reserves n contiguous node ids and returns the first, reusing a
// released region of exactly n nodes when available.  All arenas grow
// together; previously returned ids remain valid (they are indices).
func (t *Tree[V]) alloc(n int) int32 {
	if ids := t.free[n]; len(ids) > 0 {
		id := ids[len(ids)-1]
		t.free[n] = ids[:len(ids)-1]
		for i := int32(0); i < int32(n); i++ {
			t.resetNode(id + i)
		}
		return id
	}
	id := int32(len(t.nkeys))
	for i := 0; i < n; i++ {
		t.nkeys = append(t.nkeys, 0)
		t.leaf = append(t.leaf, true)
		t.first = append(t.first, -1)
		for j := 0; j < t.k; j++ {
			var zero V
			t.keys = append(t.keys, zero)
			t.phead = append(t.phead, -1)
			t.ptail = append(t.ptail, -1)
		}
	}
	return id
}

// release returns a contiguous region of n nodes to the free list.
func (t *Tree[V]) release(first int32, n int) {
	if t.free == nil {
		t.free = make(map[int][]int32)
	}
	t.free[n] = append(t.free[n], first)
}

func (t *Tree[V]) resetNode(id int32) {
	t.nkeys[id] = 0
	t.leaf[id] = true
	t.first[id] = -1
	base := int(id) * t.k
	for j := 0; j < t.k; j++ {
		t.phead[base+j] = -1
		t.ptail[base+j] = -1
	}
}

// copyNode copies node src's slots into node dst.
func (t *Tree[V]) copyNode(dst, src int32) {
	db, sb := int(dst)*t.k, int(src)*t.k
	copy(t.keys[db:db+t.k], t.keys[sb:sb+t.k])
	copy(t.phead[db:db+t.k], t.phead[sb:sb+t.k])
	copy(t.ptail[db:db+t.k], t.ptail[sb:sb+t.k])
	t.nkeys[dst] = t.nkeys[src]
	t.leaf[dst] = t.leaf[src]
	t.first[dst] = t.first[src]
}

func (t *Tree[V]) newPosting(tid int32) int32 {
	t.postings = append(t.postings, posting{tid: tid, next: -1})
	return int32(len(t.postings) - 1)
}

// Insert adds one (value, tid) pair.  Duplicate values extend the value's
// posting list in insertion order.
func (t *Tree[V]) Insert(v V, tid int32) {
	if tid < 0 {
		panic(fmt.Sprintf("csbtree: negative tuple id %d", tid))
	}
	if t.root < 0 {
		t.root = t.alloc(1)
		t.leaf[t.root] = true
	}
	promoted, sep, right := t.insert(t.root, v, tid)
	if !promoted {
		return
	}
	// Root split: the two halves become a fresh contiguous group under a
	// new root.
	g := t.alloc(2)
	t.copyNode(g, t.root)
	t.copyNode(g+1, right)
	nr := t.alloc(1)
	t.leaf[nr] = false
	t.nkeys[nr] = 1
	t.keys[int(nr)*t.k] = sep
	t.first[nr] = g
	t.release(t.root, 1)
	t.release(right, 1)
	t.root = nr
}

func (t *Tree[V]) insert(n int32, v V, tid int32) (bool, V, int32) {
	if t.leaf[n] {
		return t.insertLeaf(n, v, tid)
	}
	return t.insertInternal(n, v, tid)
}

func (t *Tree[V]) insertLeaf(n int32, v V, tid int32) (bool, V, int32) {
	var zero V
	base := int(n) * t.k
	m := int(t.nkeys[n])
	lo, hi := 0, m
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keys[base+mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := lo
	if pos < m && t.keys[base+pos] == v {
		p := t.newPosting(tid)
		t.postings[t.ptail[base+pos]].next = p
		t.ptail[base+pos] = p
		t.total++
		return false, zero, -1
	}
	t.unique++
	t.total++
	p := t.newPosting(tid)
	if m < t.k {
		for i := m; i > pos; i-- {
			t.keys[base+i] = t.keys[base+i-1]
			t.phead[base+i] = t.phead[base+i-1]
			t.ptail[base+i] = t.ptail[base+i-1]
		}
		t.keys[base+pos] = v
		t.phead[base+pos] = p
		t.ptail[base+pos] = p
		t.nkeys[n] = int32(m + 1)
		return false, zero, -1
	}

	// Leaf split: k existing keys plus the new one are redistributed; the
	// separator is the first key of the right half.
	tk := make([]V, 0, t.k+1)
	th := make([]int32, 0, t.k+1)
	tt := make([]int32, 0, t.k+1)
	for i := 0; i < m; i++ {
		if i == pos {
			tk, th, tt = append(tk, v), append(th, p), append(tt, p)
		}
		tk = append(tk, t.keys[base+i])
		th = append(th, t.phead[base+i])
		tt = append(tt, t.ptail[base+i])
	}
	if pos == m {
		tk, th, tt = append(tk, v), append(th, p), append(tt, p)
	}
	rid := t.alloc(1) // may grow arenas; index math below re-derefs t.keys etc.
	t.leaf[rid] = true
	left := (t.k + 2) / 2 // ceil((k+1)/2)
	base = int(n) * t.k
	rbase := int(rid) * t.k
	for i := 0; i < left; i++ {
		t.keys[base+i] = tk[i]
		t.phead[base+i] = th[i]
		t.ptail[base+i] = tt[i]
	}
	// Clear stale upper slots of the left leaf so posting heads do not leak.
	for i := left; i < t.k; i++ {
		t.phead[base+i] = -1
		t.ptail[base+i] = -1
	}
	t.nkeys[n] = int32(left)
	rcount := t.k + 1 - left
	for i := 0; i < rcount; i++ {
		t.keys[rbase+i] = tk[left+i]
		t.phead[rbase+i] = th[left+i]
		t.ptail[rbase+i] = tt[left+i]
	}
	t.nkeys[rid] = int32(rcount)
	return true, tk[left], rid
}

func (t *Tree[V]) insertInternal(n int32, v V, tid int32) (bool, V, int32) {
	var zero V
	base := int(n) * t.k
	m := int(t.nkeys[n])
	// Child index: number of separator keys <= v (values equal to a
	// separator live in the right subtree, because the separator is the
	// minimum of the right half after a split).
	lo, hi := 0, m
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keys[base+mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ci := lo
	child := t.first[n] + int32(ci)
	promoted, sep, right := t.insert(child, v, tid)
	if !promoted {
		return false, zero, -1
	}

	// CSB+ group reallocation: the child group grows from m+1 to m+2
	// nodes and must stay contiguous, so it is rebuilt at the arena tail.
	oldFirst := t.first[n]
	ng := t.alloc(m + 2)
	for i := 0; i <= ci; i++ {
		t.copyNode(ng+int32(i), oldFirst+int32(i))
	}
	t.copyNode(ng+int32(ci+1), right)
	for i := ci + 1; i <= m; i++ {
		t.copyNode(ng+int32(i+1), oldFirst+int32(i))
	}
	t.first[n] = ng
	t.release(oldFirst, m+1)
	t.release(right, 1)

	base = int(n) * t.k
	if m < t.k {
		for i := m; i > ci; i-- {
			t.keys[base+i] = t.keys[base+i-1]
		}
		t.keys[base+ci] = sep
		t.nkeys[n] = int32(m + 1)
		return false, zero, -1
	}

	// Internal split: k+1 separator keys and k+2 children.  The two halves
	// keep pointing into the freshly built group ng, each half's children
	// remaining contiguous.
	tmp := make([]V, 0, t.k+1)
	tmp = append(tmp, t.keys[base:base+ci]...)
	tmp = append(tmp, sep)
	tmp = append(tmp, t.keys[base+ci:base+m]...)
	lk := (t.k + 1) / 2 // keys kept left; tmp[lk] is promoted
	rid := t.alloc(1)
	base = int(n) * t.k
	rbase := int(rid) * t.k
	for i := 0; i < lk; i++ {
		t.keys[base+i] = tmp[i]
	}
	t.nkeys[n] = int32(lk)
	rk := t.k - lk // = (k+1) - lk - 1
	for i := 0; i < rk; i++ {
		t.keys[rbase+i] = tmp[lk+1+i]
	}
	t.nkeys[rid] = int32(rk)
	t.leaf[rid] = false
	t.first[rid] = ng + int32(lk+1)
	return true, tmp[lk], rid
}

// Find returns the tuple IDs recorded for v in insertion order.
func (t *Tree[V]) Find(v V) ([]int32, bool) {
	n := t.root
	if n < 0 {
		return nil, false
	}
	for !t.leaf[n] {
		base := int(n) * t.k
		m := int(t.nkeys[n])
		lo, hi := 0, m
		for lo < hi {
			mid := (lo + hi) / 2
			if t.keys[base+mid] <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		n = t.first[n] + int32(lo)
	}
	base := int(n) * t.k
	m := int(t.nkeys[n])
	lo, hi := 0, m
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keys[base+mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= m || t.keys[base+lo] != v {
		return nil, false
	}
	var tids []int32
	for p := t.phead[base+lo]; p >= 0; p = t.postings[p].next {
		tids = append(tids, t.postings[p].tid)
	}
	return tids, true
}

// Contains reports whether v has been inserted.
func (t *Tree[V]) Contains(v V) bool {
	_, ok := t.Find(v)
	return ok
}

// Ascend performs the in-order leaf traversal of Step 1(a): fn is called
// once per distinct value in ascending order with the value's tuple IDs in
// insertion order.  The tids slice is reused between calls; fn must not
// retain it.  Traversal stops early if fn returns false.
func (t *Tree[V]) Ascend(fn func(v V, tids []int32) bool) {
	if t.root < 0 {
		return
	}
	buf := make([]int32, 0, 16)
	t.ascend(t.root, &buf, fn)
}

func (t *Tree[V]) ascend(n int32, buf *[]int32, fn func(v V, tids []int32) bool) bool {
	if t.leaf[n] {
		base := int(n) * t.k
		for i := 0; i < int(t.nkeys[n]); i++ {
			b := (*buf)[:0]
			for p := t.phead[base+i]; p >= 0; p = t.postings[p].next {
				b = append(b, t.postings[p].tid)
			}
			*buf = b
			if !fn(t.keys[base+i], b) {
				return false
			}
		}
		return true
	}
	m := int(t.nkeys[n])
	for i := 0; i <= m; i++ {
		if !t.ascend(t.first[n]+int32(i), buf, fn) {
			return false
		}
	}
	return true
}

// AscendRange is Ascend bounded to distinct values in [lo, hi], both
// inclusive: fn is called once per distinct value in ascending order with
// the value's tuple IDs in insertion order.  Subtrees wholly outside the
// bounds are never visited, so a selective probe costs O(log n + k) — this
// is the delta-side complement of the main partition's group-key index.
// The tids slice is reused between calls; fn must not retain it.
// Traversal stops early if fn returns false.
func (t *Tree[V]) AscendRange(lo, hi V, fn func(v V, tids []int32) bool) {
	if t.root < 0 || hi < lo {
		return
	}
	buf := make([]int32, 0, 16)
	t.ascendRange(t.root, lo, hi, &buf, fn)
}

func (t *Tree[V]) ascendRange(n int32, lo, hi V, buf *[]int32, fn func(v V, tids []int32) bool) bool {
	base := int(n) * t.k
	m := int(t.nkeys[n])
	if t.leaf[n] {
		// First key >= lo, then iterate while keys stay <= hi.
		i, j := 0, m
		for i < j {
			mid := (i + j) / 2
			if t.keys[base+mid] < lo {
				i = mid + 1
			} else {
				j = mid
			}
		}
		for ; i < m && t.keys[base+i] <= hi; i++ {
			b := (*buf)[:0]
			for p := t.phead[base+i]; p >= 0; p = t.postings[p].next {
				b = append(b, t.postings[p].tid)
			}
			*buf = b
			if !fn(t.keys[base+i], b) {
				return false
			}
		}
		return true
	}
	// Child index for a bound v is the number of separators <= v (same rule
	// as Find): left siblings of that child hold only values strictly below
	// the preceding separator, right siblings only values above it.
	lc := t.childIndex(base, m, lo)
	hc := t.childIndex(base, m, hi)
	for i := lc; i <= hc; i++ {
		if !t.ascendRange(t.first[n]+int32(i), lo, hi, buf, fn) {
			return false
		}
	}
	return true
}

// childIndex returns the number of separator keys <= v in a node whose key
// slots start at base and hold m separators.
func (t *Tree[V]) childIndex(base, m int, v V) int {
	lo, hi := 0, m
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keys[base+mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Depth returns the number of levels (0 for an empty tree).
func (t *Tree[V]) Depth() int {
	if t.root < 0 {
		return 0
	}
	d := 1
	n := t.root
	for !t.leaf[n] {
		n = t.first[n]
		d++
	}
	return d
}
