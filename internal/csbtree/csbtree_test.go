package csbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// reference is a trivially correct model of the tree.
type reference struct {
	m map[uint64][]int32
}

func newRef() *reference { return &reference{m: map[uint64][]int32{}} }

func (r *reference) insert(v uint64, tid int32) { r.m[v] = append(r.m[v], tid) }

func (r *reference) sortedKeys() []uint64 {
	keys := make([]uint64, 0, len(r.m))
	for k := range r.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func checkAgainstRef(t *testing.T, tr *Tree[uint64], ref *reference) {
	t.Helper()
	if tr.Unique() != len(ref.m) {
		t.Fatalf("Unique=%d want %d", tr.Unique(), len(ref.m))
	}
	total := 0
	for _, tids := range ref.m {
		total += len(tids)
	}
	if tr.Total() != total {
		t.Fatalf("Total=%d want %d", tr.Total(), total)
	}
	keys := ref.sortedKeys()
	i := 0
	tr.Ascend(func(v uint64, tids []int32) bool {
		if i >= len(keys) {
			t.Fatalf("Ascend yielded extra key %d", v)
		}
		if v != keys[i] {
			t.Fatalf("Ascend[%d]=%d want %d", i, v, keys[i])
		}
		want := ref.m[v]
		if len(tids) != len(want) {
			t.Fatalf("key %d: %d tids want %d", v, len(tids), len(want))
		}
		for j := range want {
			if tids[j] != want[j] {
				t.Fatalf("key %d: tids[%d]=%d want %d (insertion order)", v, j, tids[j], want[j])
			}
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("Ascend yielded %d keys want %d", i, len(keys))
	}
	// Spot-check Find on every 7th key plus misses.
	for j := 0; j < len(keys); j += 7 {
		tids, ok := tr.Find(keys[j])
		if !ok {
			t.Fatalf("Find(%d) missed", keys[j])
		}
		if len(tids) != len(ref.m[keys[j]]) {
			t.Fatalf("Find(%d): %d tids want %d", keys[j], len(tids), len(ref.m[keys[j]]))
		}
	}
}

func TestInsertAndTraverseFanouts(t *testing.T) {
	for _, k := range []int{2, 3, 4, 6, 14} {
		for _, domain := range []uint64{10, 1000, 1 << 40} {
			tr := NewWithFanout[uint64](k)
			ref := newRef()
			rng := rand.New(rand.NewSource(int64(k)*1000 + int64(domain%97)))
			for i := 0; i < 3000; i++ {
				v := rng.Uint64() % domain
				tr.Insert(v, int32(i))
				ref.insert(v, int32(i))
			}
			checkAgainstRef(t, tr, ref)
		}
	}
}

func TestSequentialAscendingDescending(t *testing.T) {
	for _, k := range []int{2, 5} {
		tr := NewWithFanout[uint64](k)
		ref := newRef()
		for i := 0; i < 500; i++ {
			tr.Insert(uint64(i), int32(i))
			ref.insert(uint64(i), int32(i))
		}
		checkAgainstRef(t, tr, ref)

		tr2 := NewWithFanout[uint64](k)
		ref2 := newRef()
		for i := 0; i < 500; i++ {
			v := uint64(1000 - i)
			tr2.Insert(v, int32(i))
			ref2.insert(v, int32(i))
		}
		checkAgainstRef(t, tr2, ref2)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New[uint64]()
	if tr.Unique() != 0 || tr.Total() != 0 || tr.Depth() != 0 {
		t.Fatal("empty tree counters non-zero")
	}
	if _, ok := tr.Find(1); ok {
		t.Fatal("Find on empty tree")
	}
	called := false
	tr.Ascend(func(uint64, []int32) bool { called = true; return true })
	if called {
		t.Fatal("Ascend on empty tree visited values")
	}
}

func TestDuplicateHeavy(t *testing.T) {
	// All inserts share 3 values: posting lists grow long, no splits after
	// the first few.
	tr := NewWithFanout[uint64](2)
	ref := newRef()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		v := uint64(rng.Intn(3))
		tr.Insert(v, int32(i))
		ref.insert(v, int32(i))
	}
	checkAgainstRef(t, tr, ref)
	if tr.Depth() > 2 {
		t.Fatalf("Depth=%d for 3 unique values at fanout 2", tr.Depth())
	}
}

func TestStringTree(t *testing.T) {
	tr := New[string]()
	if tr.Fanout() != 3 {
		t.Fatalf("string fanout=%d want 3 (paper: 16-byte values, 3 per node)", tr.Fanout())
	}
	words := []string{"hotel", "delta", "frank", "delta", "bravo", "charlie", "charlie", "golf", "young"}
	for i, w := range words {
		tr.Insert(w, int32(i))
	}
	if tr.Unique() != 7 {
		t.Fatalf("Unique=%d want 7", tr.Unique())
	}
	var got []string
	tr.Ascend(func(v string, tids []int32) bool {
		got = append(got, v)
		return true
	})
	want := []string{"bravo", "charlie", "delta", "frank", "golf", "hotel", "young"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend[%d]=%q want %q", i, got[i], want[i])
		}
	}
	tids, ok := tr.Find("delta")
	if !ok || len(tids) != 2 || tids[0] != 1 || tids[1] != 3 {
		t.Fatalf("Find(delta)=%v,%v want [1 3]", tids, ok)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New[uint64]()
	for i := 0; i < 100; i++ {
		tr.Insert(uint64(i), int32(i))
	}
	n := 0
	tr.Ascend(func(uint64, []int32) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d want 5", n)
	}
}

func TestDepthGrowsLogarithmically(t *testing.T) {
	tr := NewWithFanout[uint64](6)
	for i := 0; i < 100000; i++ {
		tr.Insert(uint64(i), int32(i))
	}
	if d := tr.Depth(); d < 4 || d > 12 {
		t.Fatalf("Depth=%d out of plausible range for 100k keys at fanout 6", d)
	}
}

func TestFanoutDerivation(t *testing.T) {
	if got := New[uint64]().Fanout(); got != 6 {
		t.Fatalf("uint64 fanout=%d want 6", got)
	}
	if got := New[uint32]().Fanout(); got != 12 {
		t.Fatalf("uint32 fanout=%d want 12", got)
	}
}

func TestQuickRandomStreams(t *testing.T) {
	f := func(vals []uint16, fanoutSeed uint8) bool {
		k := int(fanoutSeed%5) + 2
		tr := NewWithFanout[uint64](k)
		ref := newRef()
		for i, v := range vals {
			tr.Insert(uint64(v%97), int32(i))
			ref.insert(uint64(v%97), int32(i))
		}
		if tr.Unique() != len(ref.m) {
			return false
		}
		keys := ref.sortedKeys()
		i := 0
		ok := true
		tr.Ascend(func(v uint64, tids []int32) bool {
			if i >= len(keys) || v != keys[i] || len(tids) != len(ref.m[v]) {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeTidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[uint64]().Insert(1, -1)
}

func TestSizeBytesGrows(t *testing.T) {
	tr := New[uint64]()
	s0 := tr.SizeBytes()
	for i := 0; i < 10000; i++ {
		tr.Insert(uint64(i), int32(i))
	}
	if tr.SizeBytes() <= s0 {
		t.Fatal("SizeBytes did not grow")
	}
	// Paper assumption: tree ≈ 2x raw value payload.  Group reallocation
	// garbage makes ours larger; assert it stays within a sane multiple.
	raw := 10000 * 8
	if tr.SizeBytes() > 16*raw {
		t.Fatalf("SizeBytes=%d more than 16x raw payload %d", tr.SizeBytes(), raw)
	}
}

func BenchmarkInsertUnique(b *testing.B) {
	tr := New[uint64]()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Uint64(), int32(i%(1<<30)))
	}
}

func BenchmarkInsertLowCardinality(b *testing.B) {
	tr := New[uint64]()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Uint64()%1024, int32(i%(1<<30)))
	}
}

func BenchmarkAscend(b *testing.B) {
	tr := New[uint64]()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<17; i++ {
		tr.Insert(rng.Uint64()%(1<<16), int32(i))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		tr.Ascend(func(v uint64, tids []int32) bool {
			sink += v + uint64(len(tids))
			return true
		})
	}
	_ = sink
}
