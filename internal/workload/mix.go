// Package workload generates the enterprise workloads and data
// characteristics of the paper's §2: query-type mixes for OLTP, OLAP and
// TPC-C-like systems (Figure 1), table-population profiles of a synthetic
// SAP Business Suite customer system (Figures 2 and 3), distinct-value
// distributions of inventory-management and financial-accounting columns
// (Figure 4), plus value generators with controlled unique fractions and a
// driver that executes a mix against a table.
package workload

import (
	"fmt"
	"math/rand"
)

// QueryKind enumerates the operation classes of Figure 1.
type QueryKind int

const (
	Lookup QueryKind = iota
	TableScan
	RangeSelect
	Insert
	Modification
	Delete
	numQueryKinds
)

// String returns the Figure 1 label.
func (k QueryKind) String() string {
	switch k {
	case Lookup:
		return "lookup"
	case TableScan:
		return "table-scan"
	case RangeSelect:
		return "range-select"
	case Insert:
		return "insert"
	case Modification:
		return "modification"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
}

// IsWrite reports whether the kind modifies the table.
func (k QueryKind) IsWrite() bool {
	return k == Insert || k == Modification || k == Delete
}

// Mix is a probability distribution over query kinds.
type Mix struct {
	Name    string
	Weights [numQueryKinds]float64
}

// Validate checks the weights form a distribution.
func (m Mix) Validate() error {
	sum := 0.0
	for _, w := range m.Weights {
		if w < 0 {
			return fmt.Errorf("workload: negative weight in mix %q", m.Name)
		}
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: mix %q weights sum to %f", m.Name, sum)
	}
	return nil
}

// WriteRatio returns the total probability of write operations.
func (m Mix) WriteRatio() float64 {
	return m.Weights[Insert] + m.Weights[Modification] + m.Weights[Delete]
}

// ReadRatio returns 1 - WriteRatio over the declared weights.
func (m Mix) ReadRatio() float64 {
	return m.Weights[Lookup] + m.Weights[TableScan] + m.Weights[RangeSelect]
}

// Sample draws one query kind.
func (m Mix) Sample(rng *rand.Rand) QueryKind {
	x := rng.Float64()
	for k := QueryKind(0); k < numQueryKinds; k++ {
		if x < m.Weights[k] {
			return k
		}
		x -= m.Weights[k]
	}
	return Lookup
}

// The mixes below reproduce Figure 1's query distributions.  The paper
// reports the aggregates precisely — OLTP >80% reads with ~17% writes,
// OLAP >90% reads with ~7% writes, TPC-C 46% writes — and shows the
// per-kind split graphically; the per-kind weights here are read off the
// figure and normalized to those aggregates.
var (
	// OLTPMix is the transactional-system distribution of Figure 1.
	OLTPMix = Mix{Name: "OLTP", Weights: [numQueryKinds]float64{
		Lookup:       0.48,
		TableScan:    0.12,
		RangeSelect:  0.23,
		Insert:       0.09,
		Modification: 0.06,
		Delete:       0.02,
	}}
	// OLAPMix is the analytical-system distribution of Figure 1.
	OLAPMix = Mix{Name: "OLAP", Weights: [numQueryKinds]float64{
		Lookup:       0.25,
		TableScan:    0.40,
		RangeSelect:  0.28,
		Insert:       0.04,
		Modification: 0.02,
		Delete:       0.01,
	}}
	// TPCCMix approximates the TPC-C benchmark's 46% write share that
	// Figure 1 contrasts with the customer-system analysis.
	TPCCMix = Mix{Name: "TPC-C", Weights: [numQueryKinds]float64{
		Lookup:       0.36,
		TableScan:    0.04,
		RangeSelect:  0.14,
		Insert:       0.26,
		Modification: 0.18,
		Delete:       0.02,
	}}
)

// Mixes lists the built-in distributions of Figure 1.
func Mixes() []Mix { return []Mix{OLTPMix, OLAPMix, TPCCMix} }
