package workload

import (
	"math"
	"math/rand"
	"testing"

	"hyrise/internal/table"
)

func TestMixesValidate(t *testing.T) {
	for _, m := range Mixes() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// TestFigure1Aggregates checks the mixes reproduce the paper's headline
// read/write shares: OLTP >80% reads with ~17% writes, OLAP >90% reads
// with ~7% writes, TPC-C 46% writes.
func TestFigure1Aggregates(t *testing.T) {
	if w := OLTPMix.WriteRatio(); math.Abs(w-0.17) > 0.005 {
		t.Errorf("OLTP write ratio %.3f want ~0.17", w)
	}
	if r := OLTPMix.ReadRatio(); r < 0.80 {
		t.Errorf("OLTP read ratio %.3f want >0.80", r)
	}
	if w := OLAPMix.WriteRatio(); math.Abs(w-0.07) > 0.005 {
		t.Errorf("OLAP write ratio %.3f want ~0.07", w)
	}
	if r := OLAPMix.ReadRatio(); r < 0.90 {
		t.Errorf("OLAP read ratio %.3f want >0.90", r)
	}
	if w := TPCCMix.WriteRatio(); math.Abs(w-0.46) > 0.005 {
		t.Errorf("TPC-C write ratio %.3f want 0.46", w)
	}
}

func TestMixSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	var counts [numQueryKinds]int
	for i := 0; i < n; i++ {
		counts[OLTPMix.Sample(rng)]++
	}
	for k := QueryKind(0); k < numQueryKinds; k++ {
		got := float64(counts[k]) / n
		if math.Abs(got-OLTPMix.Weights[k]) > 0.01 {
			t.Errorf("%v: sampled %.3f want %.3f", k, got, OLTPMix.Weights[k])
		}
	}
}

func TestMixValidateRejectsBad(t *testing.T) {
	bad := Mix{Name: "bad", Weights: [numQueryKinds]float64{Lookup: 0.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted non-normalized mix")
	}
	neg := Mix{Name: "neg"}
	neg.Weights[Lookup] = 1.5
	neg.Weights[Insert] = -0.5
	if err := neg.Validate(); err == nil {
		t.Fatal("accepted negative weight")
	}
}

func TestUniformGen(t *testing.T) {
	g := NewUniform(100, 7)
	vals := Fill(g, 1000)
	for _, v := range vals {
		if v >= 100 {
			t.Fatalf("value %d out of domain", v)
		}
	}
	g.Reset()
	again := Fill(g, 1000)
	for i := range vals {
		if vals[i] != again[i] {
			t.Fatal("Reset not reproducible")
		}
	}
}

func TestUniqueGenNeverRepeats(t *testing.T) {
	g := NewUnique(3)
	seen := map[uint64]bool{}
	for i := 0; i < 200000; i++ {
		v := g.Next()
		if seen[v] {
			t.Fatalf("duplicate at %d", i)
		}
		seen[v] = true
	}
	g.Reset()
	if _, dup := seen[g.Next()], false; !dup {
		_ = dup
	}
}

func TestUniformForUniqueFraction(t *testing.T) {
	const n = 100000
	for _, frac := range []float64{0.01, 0.1, 0.5} {
		g := NewUniformForUniqueFraction(n, frac, 5)
		vals := Fill(g, n)
		distinct := map[uint64]bool{}
		for _, v := range vals {
			distinct[v] = true
		}
		got := float64(len(distinct)) / n
		if math.Abs(got-frac)/frac > 0.1 {
			t.Errorf("frac %.2f: got %.4f distinct", frac, got)
		}
	}
	// frac=1 must produce a UniqueGen.
	g := NewUniformForUniqueFraction(100, 1.0, 5)
	vals := Fill(g, 100)
	distinct := map[uint64]bool{}
	for _, v := range vals {
		distinct[v] = true
	}
	if len(distinct) != 100 {
		t.Fatalf("frac=1: %d distinct of 100", len(distinct))
	}
}

func TestZipfGen(t *testing.T) {
	g := NewZipf(1000, 1.5, 9)
	vals := Fill(g, 10000)
	var zeros int
	for _, v := range vals {
		if v >= 1000 {
			t.Fatalf("out of domain: %d", v)
		}
		if v == 0 {
			zeros++
		}
	}
	// Zipf: rank 0 dominates.
	if zeros < 1000 {
		t.Fatalf("zipf skew missing: %d zeros of 10000", zeros)
	}
	g.Reset()
	if g.Next() != vals[0] {
		t.Fatal("Reset not reproducible")
	}
}

func TestFixedString(t *testing.T) {
	a, b := FixedString(5), FixedString(300)
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	if !(a < b) {
		t.Fatal("order not preserved")
	}
	s := Strings([]uint64{1, 2})
	if s[0] >= s[1] {
		t.Fatal("Strings order")
	}
}

func TestFigure2BucketsSum(t *testing.T) {
	total := 0
	for _, b := range Figure2Buckets() {
		total += b.Count
	}
	if total != TotalTables {
		t.Fatalf("bucket sum %d want %d (paper: 73,979 tables)", total, TotalTables)
	}
}

func TestGenerateCustomerSystem(t *testing.T) {
	cs := GenerateCustomerSystem(1)
	if len(cs.Tables) != TotalTables {
		t.Fatalf("tables %d want %d", len(cs.Tables), TotalTables)
	}
	// Histogram must reproduce Figure 2 exactly.
	hist := cs.Histogram()
	for i, b := range Figure2Buckets() {
		if hist[i].Count != b.Count {
			t.Errorf("bucket %s: %d want %d", b.Label, hist[i].Count, b.Count)
		}
	}
	// Figure 3 marginals for the 144 largest tables.
	top := cs.Largest(144)
	if len(top) != 144 {
		t.Fatalf("top %d", len(top))
	}
	var rowSum, colSum float64
	var maxRows int64
	for _, tp := range top {
		if tp.Rows < 10_000_000 {
			t.Fatalf("top-144 table with %d rows (<10M)", tp.Rows)
		}
		if tp.Columns < 2 || tp.Columns > 399 {
			t.Fatalf("columns %d out of [2,399]", tp.Columns)
		}
		rowSum += float64(tp.Rows)
		colSum += float64(tp.Columns)
		if tp.Rows > maxRows {
			maxRows = tp.Rows
		}
	}
	meanRows := rowSum / 144
	if meanRows < 40e6 || meanRows > 100e6 {
		t.Errorf("mean rows %.1fM want ~65M", meanRows/1e6)
	}
	meanCols := colSum / 144
	if meanCols < 50 || meanCols > 95 {
		t.Errorf("mean columns %.1f want ~70", meanCols)
	}
	if maxRows > 1_600_000_000 {
		t.Errorf("max rows %d exceeds 1.6B", maxRows)
	}
}

func TestFigure4Profiles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range Figure4Profiles() {
		sum := 0.0
		for _, b := range p.Buckets {
			sum += b.Share
		}
		if math.Abs(sum-1.0) > 1e-9 {
			t.Errorf("%s shares sum %.3f", p.Name, sum)
		}
		// Sampling respects the bucket shares.
		const n = 50000
		small := 0
		for i := 0; i < n; i++ {
			if d := p.SampleColumnDomain(rng, 1_000_000); d <= 32 {
				small++
			}
		}
		got := float64(small) / n
		if math.Abs(got-p.Buckets[0].Share) > 0.02 {
			t.Errorf("%s: small-domain share %.3f want %.2f", p.Name, got, p.Buckets[0].Share)
		}
	}
}

func TestDriverRunsMix(t *testing.T) {
	tb, err := table.New("t", table.Schema{
		{Name: "k", Type: table.Uint64},
		{Name: "v", Type: table.Uint32},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(tb, "k", OLTPMix, NewUniform(500, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 2000 {
		t.Fatalf("total %d", c.Total())
	}
	wr := float64(c.Writes()) / float64(c.Total())
	if math.Abs(wr-OLTPMix.WriteRatio()) > 0.03 {
		t.Fatalf("write ratio %.3f want ~%.2f", wr, OLTPMix.WriteRatio())
	}
	if tb.Rows() == 0 {
		t.Fatal("no rows inserted")
	}
	if c.Duration <= 0 {
		t.Fatal("duration")
	}
}

func TestDriverRejectsBadInputs(t *testing.T) {
	tb, _ := table.New("t", table.Schema{{Name: "k", Type: table.Uint64}})
	if _, err := NewDriver(tb, "missing", OLTPMix, NewUniform(10, 1), 1); err == nil {
		t.Fatal("missing column accepted")
	}
	bad := Mix{Name: "bad"}
	if _, err := NewDriver(tb, "k", bad, NewUniform(10, 1), 1); err == nil {
		t.Fatal("bad mix accepted")
	}
}

func TestDriverDeleteAndModify(t *testing.T) {
	tb, _ := table.New("t", table.Schema{{Name: "k", Type: table.Uint64}})
	writeHeavy := Mix{Name: "w", Weights: [numQueryKinds]float64{
		Insert: 0.4, Modification: 0.4, Delete: 0.2,
	}}
	d, err := NewDriver(tb, "k", writeHeavy, NewUniform(100, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Run(3000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Writes() != 3000 {
		t.Fatalf("writes %d", c.Writes())
	}
	// Deletions and updates must have invalidated some rows.
	if tb.ValidRows() >= tb.Rows() {
		t.Fatal("no invalidations recorded")
	}
}
