package workload

import (
	"math"
	"math/rand"
	"sort"
)

// This file regenerates the §2 customer-system analyses.  The paper's
// figures are descriptive statistics over 12 SAP Business Suite
// installations; we reproduce them from generators parameterized to the
// published marginals (see DESIGN.md "Substitutions").

// SizeBucket is one bar of Figure 2.
type SizeBucket struct {
	Label   string
	MinRows int64 // inclusive
	MaxRows int64 // inclusive, math.MaxInt64 for the open bucket
	Count   int
}

// Figure2Buckets returns the published clustering of all 73,979 tables by
// row count.  The counts sum exactly to the paper's total.
func Figure2Buckets() []SizeBucket {
	return []SizeBucket{
		{Label: "0", MinRows: 0, MaxRows: 0, Count: 6290},
		{Label: "1-100", MinRows: 1, MaxRows: 100, Count: 46418},
		{Label: "100-1K", MinRows: 101, MaxRows: 1_000, Count: 15553},
		{Label: "1K-10K", MinRows: 1_001, MaxRows: 10_000, Count: 2685},
		{Label: "10K-100K", MinRows: 10_001, MaxRows: 100_000, Count: 1385},
		{Label: "100K-1M", MinRows: 100_001, MaxRows: 1_000_000, Count: 925},
		{Label: "1M-10M", MinRows: 1_000_001, MaxRows: 10_000_000, Count: 579},
		{Label: ">10M", MinRows: 10_000_001, MaxRows: math.MaxInt64, Count: 144},
	}
}

// TotalTables is the number of tables per installation (§2).
const TotalTables = 73979

// TableProfile describes one synthetic table of the customer system.
type TableProfile struct {
	Rows    int64
	Columns int
}

// CustomerSystem is a synthetic SAP-customer installation.
type CustomerSystem struct {
	Tables []TableProfile
}

// GenerateCustomerSystem draws a full installation consistent with
// Figures 2 and 3: bucket counts exactly as published, row counts
// log-uniform within buckets, and the 144 largest tables following the
// Figure 3 marginals (10M..1.6B rows averaging ~65M; 2..399 columns
// averaging ~70).
func GenerateCustomerSystem(seed int64) *CustomerSystem {
	rng := rand.New(rand.NewSource(seed))
	cs := &CustomerSystem{}
	for _, b := range Figure2Buckets() {
		for i := 0; i < b.Count; i++ {
			var rows int64
			switch {
			case b.MaxRows == 0:
				rows = 0
			case b.MaxRows == math.MaxInt64:
				rows = sampleLargeTableRows(rng)
			default:
				rows = logUniform(rng, b.MinRows, b.MaxRows)
			}
			cs.Tables = append(cs.Tables, TableProfile{
				Rows:    rows,
				Columns: sampleColumns(rng),
			})
		}
	}
	sort.Slice(cs.Tables, func(i, j int) bool { return cs.Tables[i].Rows > cs.Tables[j].Rows })
	return cs
}

// sampleLargeTableRows draws from a truncated Pareto on [10M, 1.6B] tuned
// so the mean lands near the paper's 65M rows.
func sampleLargeTableRows(rng *rand.Rand) int64 {
	const lo, hi = 10_000_000.0, 1_600_000_000.0
	const alpha = 0.8547 // calibrated: E[X] ≈ 65M on the truncated support
	u := rng.Float64()
	loA := math.Pow(lo, -alpha)
	hiA := math.Pow(hi, -alpha)
	x := math.Pow(loA-u*(loA-hiA), -1/alpha)
	return int64(x)
}

// sampleColumns draws a column count in [2, 399] with mean ≈ 70
// (log-normal shape clipped to the published range).
func sampleColumns(rng *rand.Rand) int {
	for {
		x := math.Exp(rng.NormFloat64()*0.75 + math.Log(55))
		if x >= 2 && x <= 399 {
			return int(x)
		}
	}
}

func logUniform(rng *rand.Rand, lo, hi int64) int64 {
	if lo < 1 {
		lo = 1
	}
	llo, lhi := math.Log(float64(lo)), math.Log(float64(hi))
	x := math.Exp(llo + rng.Float64()*(lhi-llo))
	r := int64(x)
	if r < lo {
		r = lo
	}
	if r > hi {
		r = hi
	}
	return r
}

// Largest returns the n largest tables (Figure 3's subject).
func (cs *CustomerSystem) Largest(n int) []TableProfile {
	if n > len(cs.Tables) {
		n = len(cs.Tables)
	}
	return cs.Tables[:n]
}

// Histogram buckets cs.Tables back into Figure 2's buckets; it must
// reproduce the published counts exactly (tested).
func (cs *CustomerSystem) Histogram() []SizeBucket {
	buckets := Figure2Buckets()
	for i := range buckets {
		buckets[i].Count = 0
	}
	for _, t := range cs.Tables {
		for i := range buckets {
			if t.Rows >= buckets[i].MinRows && t.Rows <= buckets[i].MaxRows {
				buckets[i].Count++
				break
			}
		}
	}
	return buckets
}

// DistinctBucket is one group of Figure 4.
type DistinctBucket struct {
	Label     string
	MinValues int
	MaxValues int
	Share     float64 // fraction of columns in this bucket
}

// DomainProfile is a Figure 4 distinct-value profile for one application
// domain.
type DomainProfile struct {
	Name    string
	Buckets []DistinctBucket
}

// Figure4Profiles returns the published distinct-value distributions for
// inventory management and financial accounting.
func Figure4Profiles() []DomainProfile {
	return []DomainProfile{
		{Name: "Inventory Management", Buckets: []DistinctBucket{
			{Label: "1-32", MinValues: 1, MaxValues: 32, Share: 0.78},
			{Label: "33-1023", MinValues: 33, MaxValues: 1023, Share: 0.09},
			{Label: "1024-100000000", MinValues: 1024, MaxValues: 100_000_000, Share: 0.13},
		}},
		{Name: "Financial Accounting", Buckets: []DistinctBucket{
			{Label: "1-32", MinValues: 1, MaxValues: 32, Share: 0.64},
			{Label: "33-1023", MinValues: 33, MaxValues: 1023, Share: 0.12},
			{Label: "1024-100000000", MinValues: 1024, MaxValues: 100_000_000, Share: 0.24},
		}},
	}
}

// SampleColumnDomain draws a distinct-value count for one column of the
// profile (log-uniform within the chosen bucket, capped by rows).
func (p DomainProfile) SampleColumnDomain(rng *rand.Rand, rows int64) int {
	x := rng.Float64()
	for _, b := range p.Buckets {
		if x < b.Share {
			hi := int64(b.MaxValues)
			if rows > 0 && hi > rows {
				hi = rows
			}
			lo := int64(b.MinValues)
			if hi < lo {
				hi = lo
			}
			return int(logUniform(rng, lo, hi))
		}
		x -= b.Share
	}
	return 1
}
