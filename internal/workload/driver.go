package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hyrise/internal/table"
)

// ErrDriverColumnType is returned when the driver's key-distribution
// column is not uint64.  The driver generates, looks up and range-scans
// uint64 key values, so every other column type is rejected up front with
// this typed error instead of failing deep inside handle resolution.
var ErrDriverColumnType = errors.New("workload: driver column must be uint64")

// CheckDriverColumn validates that the named column exists and is uint64
// — the single source of the driver-column rule, shared by NewDriverFor
// and the package root's unified NewDriver.
func CheckDriverColumn(t Target, column string) error {
	for _, def := range t.Schema() {
		if def.Name == column {
			if def.Type != table.Uint64 {
				return fmt.Errorf("%w: column %q is %v", ErrDriverColumnType, column, def.Type)
			}
			return nil
		}
	}
	return fmt.Errorf("workload: %w: %q", table.ErrNoColumn, column)
}

// Target is the write/metadata surface a driver exercises.  Both
// table.Table and the sharded table (internal/shard) satisfy it, so mixed
// workloads run unchanged against flat and hash-partitioned storage.
type Target interface {
	Schema() table.Schema
	Insert([]any) (int, error)
	Update(int, map[string]any) (int, error)
	Delete(int) error
	IsValid(int) bool
}

// Uint64Column is the read surface over the driver's key column:
// table.Handle[uint64] and the sharded handle both satisfy it.
type Uint64Column interface {
	Lookup(uint64) []int
	Range(lo, hi uint64) []int
	Scan(func(row int, v uint64) bool)
}

// Driver executes a query mix against a single-key-column table, the shape
// the paper's update-rate experiments assume: lookups, scans and range
// selects read the key column; inserts, modifications and deletes exercise
// the write path.
type Driver struct {
	Table  Target
	Column string
	Mix    Mix
	Gen    Generator
	// ScanLimit caps rows visited per table scan so read-heavy mixes do
	// not dwarf everything else at large table sizes (0 = unlimited).
	ScanLimit int

	rng      *rand.Rand
	handle   Uint64Column
	liveRows []int // rows known valid, for update/delete targets
}

// NewDriver builds a driver for the named uint64 column of a flat table.
func NewDriver(t *table.Table, column string, mix Mix, gen Generator, seed int64) (*Driver, error) {
	h, err := table.ColumnOf[uint64](t, column)
	if err != nil {
		return nil, err
	}
	return NewDriverFor(t, column, h, mix, gen, seed)
}

// NewDriverFor builds a driver over any Target; h must be a handle on the
// named uint64 column of t.
func NewDriverFor(t Target, column string, h Uint64Column, mix Mix, gen Generator, seed int64) (*Driver, error) {
	if err := CheckDriverColumn(t, column); err != nil {
		return nil, err
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	return &Driver{
		Table: t, Column: column, Mix: mix, Gen: gen,
		ScanLimit: 10000,
		rng:       rand.New(rand.NewSource(seed)),
		handle:    h,
	}, nil
}

// Counts tallies executed operations per kind.
type Counts struct {
	ByKind   [numQueryKinds]int
	Rows     int           // rows touched by reads
	Duration time.Duration // wall time of the Run call
	Errors   int
}

// Reads returns the number of read operations executed.
func (c Counts) Reads() int {
	return c.ByKind[Lookup] + c.ByKind[TableScan] + c.ByKind[RangeSelect]
}

// Writes returns the number of write operations executed.
func (c Counts) Writes() int {
	return c.ByKind[Insert] + c.ByKind[Modification] + c.ByKind[Delete]
}

// Total returns all executed operations.
func (c Counts) Total() int { return c.Reads() + c.Writes() }

// Run executes n operations drawn from the mix and returns the tally.
// Rows created by this driver are tracked as modification/delete targets.
func (d *Driver) Run(n int) (Counts, error) {
	var c Counts
	start := time.Now()
	for i := 0; i < n; i++ {
		kind := d.Mix.Sample(d.rng)
		if err := d.step(kind, &c); err != nil {
			return c, fmt.Errorf("workload: op %d (%v): %w", i, kind, err)
		}
		c.ByKind[kind]++
	}
	c.Duration = time.Since(start)
	return c, nil
}

func (d *Driver) step(kind QueryKind, c *Counts) error {
	switch kind {
	case Lookup:
		c.Rows += len(d.handle.Lookup(d.Gen.Next()))
	case TableScan:
		seen := 0
		limit := d.ScanLimit
		d.handle.Scan(func(int, uint64) bool {
			seen++
			return limit == 0 || seen < limit
		})
		c.Rows += seen
	case RangeSelect:
		lo := d.Gen.Next()
		c.Rows += len(d.handle.Range(lo, lo+1000))
	case Insert:
		row, err := d.insertRow()
		if err != nil {
			return err
		}
		d.liveRows = append(d.liveRows, row)
	case Modification:
		row, ok := d.pickLive()
		if !ok {
			// No known-valid target yet: degrade to an insert, keeping the
			// write share of the mix intact.
			r, err := d.insertRow()
			if err != nil {
				return err
			}
			d.liveRows = append(d.liveRows, r)
			return nil
		}
		nr, err := d.Table.Update(row, map[string]any{d.Column: d.Gen.Next()})
		if err != nil {
			return err
		}
		d.liveRows = append(d.liveRows, nr)
	case Delete:
		row, ok := d.pickLive()
		if !ok {
			return nil // nothing to delete yet; skip silently
		}
		if err := d.Table.Delete(row); err != nil {
			return err
		}
	}
	return nil
}

// insertRow builds a row matching the full schema: the driver's column
// gets a generated value, other columns get type-appropriate fillers.
func (d *Driver) insertRow() (int, error) {
	schema := d.Table.Schema()
	row := make([]any, len(schema))
	for i, def := range schema {
		switch {
		case def.Name == d.Column:
			row[i] = d.Gen.Next()
		case def.Type == table.Uint64:
			row[i] = d.rng.Uint64() % 1000
		case def.Type == table.Uint32:
			row[i] = uint32(d.rng.Intn(1000))
		default:
			row[i] = FixedString(d.rng.Uint64() % 1000)
		}
	}
	return d.Table.Insert(row)
}

// pickLive pops a random known-valid row; rows invalidated by earlier
// operations are discarded lazily.
func (d *Driver) pickLive() (int, bool) {
	for len(d.liveRows) > 0 {
		i := d.rng.Intn(len(d.liveRows))
		row := d.liveRows[i]
		d.liveRows[i] = d.liveRows[len(d.liveRows)-1]
		d.liveRows = d.liveRows[:len(d.liveRows)-1]
		if d.Table.IsValid(row) {
			return row, true
		}
	}
	return 0, false
}
