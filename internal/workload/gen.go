package workload

import (
	"math/rand"

	"hyrise/internal/model"
)

// Generator produces uint64 column values with a controlled distribution.
type Generator interface {
	// Next returns one value.
	Next() uint64
	// Reset restores the initial state so streams are reproducible.
	Reset()
}

// UniformGen draws uniformly from [0, Domain).  A uniform distribution is
// the paper's choice for all experiments (§7: "values are generated
// uniformly at random", the worst case for cache utilization).
type UniformGen struct {
	Domain uint64
	seed   int64
	rng    *rand.Rand
}

// NewUniform returns a uniform generator over a domain of the given size.
func NewUniform(domain uint64, seed int64) *UniformGen {
	if domain == 0 {
		domain = 1
	}
	return &UniformGen{Domain: domain, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// NewUniformForUniqueFraction sizes the domain so that n draws contain
// about frac·n distinct values (the λ parameter of §7).  frac >= 1 yields
// a UniqueGen instead, which guarantees 100% distinct values.
func NewUniformForUniqueFraction(n int, frac float64, seed int64) Generator {
	if frac >= 1 {
		return NewUnique(seed)
	}
	d := model.DomainForUniqueFraction(n, frac)
	return NewUniform(uint64(d), seed)
}

// Next implements Generator.
func (g *UniformGen) Next() uint64 { return g.rng.Uint64() % g.Domain }

// Reset implements Generator.
func (g *UniformGen) Reset() { g.rng = rand.New(rand.NewSource(g.seed)) }

// UniqueGen produces a stream with no repeated values (λ = 100%), spread
// pseudo-randomly over the key space: a bijective mix of a counter.
type UniqueGen struct {
	ctr  uint64
	seed int64
}

// NewUnique returns a generator of never-repeating values.
func NewUnique(seed int64) *UniqueGen { return &UniqueGen{seed: seed, ctr: uint64(seed)} }

// Next implements Generator; it applies SplitMix64's finalizer, a bijection
// on 64-bit integers, so outputs never collide.
func (g *UniqueGen) Next() uint64 {
	g.ctr++
	z := g.ctr + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Reset implements Generator.
func (g *UniqueGen) Reset() { g.ctr = uint64(g.seed) }

// ZipfGen draws from a Zipf distribution over [0, Domain) — skewed
// enterprise domains (few very frequent values), used by ablation
// experiments to contrast with the paper's uniform worst case.
type ZipfGen struct {
	Domain uint64
	s      float64
	seed   int64
	z      *rand.Zipf
}

// NewZipf returns a Zipf generator with skew s > 1.
func NewZipf(domain uint64, s float64, seed int64) *ZipfGen {
	g := &ZipfGen{Domain: domain, s: s, seed: seed}
	g.Reset()
	return g
}

// Next implements Generator.
func (g *ZipfGen) Next() uint64 { return g.z.Uint64() }

// Reset implements Generator.
func (g *ZipfGen) Reset() {
	g.z = rand.NewZipf(rand.New(rand.NewSource(g.seed)), g.s, 1, g.Domain-1)
}

// Fill draws n values into a new slice.
func Fill(g Generator, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Strings converts values to fixed-length 16-byte strings (the paper's
// E_j = 16 case) with order preserved.
func Strings(vals []uint64) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = FixedString(v)
	}
	return out
}

// FixedString renders v as a 16-byte zero-padded hexadecimal string whose
// lexicographic order matches numeric order.
func FixedString(v uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}
