package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {0x01}, bytes.Repeat([]byte{0xab}, 1<<16)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %x want %x", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("tail read err=%v want io.EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	// A header claiming MaxFrame+1 bytes must be rejected without any
	// attempt to read (or allocate) the payload.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err=%v want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write err=%v want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(cut)); err != io.ErrUnexpectedEOF {
		t.Fatalf("err=%v want io.ErrUnexpectedEOF", err)
	}
}

func TestScalarAndValueRoundTrip(t *testing.T) {
	var b Buffer
	b.U8(7)
	b.U16(300)
	b.U32(1 << 30)
	b.U64(1 << 60)
	b.String("héllo")
	for _, v := range []any{uint32(42), uint64(1 << 40), "widget", ""} {
		if err := b.Value(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Row([]any{uint64(1), uint32(2), "three"}); err != nil {
		t.Fatal(err)
	}
	b.RowIDs([]int{0, 5, 1 << 40})

	r := NewReader(b.Bytes())
	if v, _ := r.U8(); v != 7 {
		t.Fatal("u8")
	}
	if v, _ := r.U16(); v != 300 {
		t.Fatal("u16")
	}
	if v, _ := r.U32(); v != 1<<30 {
		t.Fatal("u32")
	}
	if v, _ := r.U64(); v != 1<<60 {
		t.Fatal("u64")
	}
	if s, _ := r.String(); s != "héllo" {
		t.Fatal("string")
	}
	for _, want := range []any{uint32(42), uint64(1 << 40), "widget", ""} {
		got, err := r.Value()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("value %v want %v", got, want)
		}
	}
	row, err := r.Row()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row, []any{uint64(1), uint32(2), "three"}) {
		t.Fatalf("row %v", row)
	}
	ids, err := r.RowIDs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []int{0, 5, 1 << 40}) {
		t.Fatalf("ids %v", ids)
	}
	if err := r.Rest(); err != nil {
		t.Fatal(err)
	}
}

func TestValueRejectsUnsupportedType(t *testing.T) {
	var b Buffer
	if err := b.Value(3.14); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err=%v want ErrMalformed", err)
	}
}

func TestFiltersRoundTrip(t *testing.T) {
	var b Buffer
	fs := []Filter{
		{Column: "product", Op: OpFilterEq, Value: "widget"},
		{Column: "qty", Op: OpFilterBetween, Value: uint32(1), Hi: uint32(9)},
	}
	if err := b.Filters(fs); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(b.Bytes()).Filters()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fs) {
		t.Fatalf("filters %v want %v", got, fs)
	}
}

func TestStringsRoundTrip(t *testing.T) {
	var b Buffer
	if err := b.Strings([]string{"a", "bb", ""}); err != nil {
		t.Fatal(err)
	}
	if err := b.Strings(nil); err != nil {
		t.Fatal(err)
	}
	r := NewReader(b.Bytes())
	got, err := r.Strings()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"a", "bb", ""}) {
		t.Fatalf("strings %v", got)
	}
	empty, err := r.Strings()
	if err != nil || empty != nil {
		t.Fatalf("empty list %v err %v", empty, err)
	}
}

// TestReaderHostileCounts feeds payloads whose counts promise more data
// than the payload holds; every decode must fail cleanly instead of
// over-allocating or panicking.
func TestReaderHostileCounts(t *testing.T) {
	cases := map[string]func(*Reader) error{
		"string": func(r *Reader) error { _, err := r.String(); return err },
		"row":    func(r *Reader) error { _, err := r.Row(); return err },
		"rowids": func(r *Reader) error { _, err := r.RowIDs(); return err },
		"filter": func(r *Reader) error { _, err := r.Filters(); return err },
		"lists":  func(r *Reader) error { _, err := r.Strings(); return err },
		"value":  func(r *Reader) error { _, err := r.Value(); return err },
	}
	// Max counts with almost no payload behind them.
	hostile := [][]byte{
		{0xff, 0xff, 0xff, 0xff},
		{0xff, 0xff},
		{0xff},
		{0xff, 0xff, 0xff, 0xff, 0x00},
		{},
	}
	for name, dec := range cases {
		for _, p := range hostile {
			if err := dec(NewReader(p)); !errors.Is(err, ErrMalformed) {
				t.Fatalf("%s(%x): err=%v want ErrMalformed", name, p, err)
			}
		}
	}
}

func TestRestRejectsTrailingGarbage(t *testing.T) {
	var b Buffer
	b.U8(1)
	b.U8(2)
	r := NewReader(b.Bytes())
	if _, err := r.U8(); err != nil {
		t.Fatal(err)
	}
	if err := r.Rest(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err=%v want ErrMalformed", err)
	}
}
