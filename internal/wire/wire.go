// Package wire defines the binary protocol spoken between the hyrise
// network server (internal/server, cmd/hyrised) and the Go client
// (hyrise/client): framing, opcodes, status codes and the encoding of
// values, rows, filters and results.  Both sides share this package, so
// the encoding is written exactly once.
//
// # Framing
//
// Every message — request or response — is one frame:
//
//	uint32 big-endian payload length | payload bytes
//
// A request payload starts with a one-byte opcode followed by the
// op-specific body.  A response payload starts with a one-byte status
// (StatusOK or an error code); an error response carries a UTF-8 message
// string, a success response the op-specific result body.  Responses are
// returned in request order on each connection, so clients may pipeline.
//
// Frames larger than MaxFrame are rejected without being read; every
// count and length inside a payload is bounds-checked against the
// payload, so a malformed or hostile frame produces a decode error, never
// a crash or an over-allocation.
//
// # Scalar encodings
//
//	u8/u16/u32/u64  big-endian fixed width
//	string          u32 length + bytes
//	value           u8 type tag (TagUint32|TagUint64|TagString) + scalar
//	row             u16 column count + that many values
//	row ids         u32 count + u64 per id
//	filter          string column, u8 op (OpFilterEq|OpFilterBetween),
//	                value, and for Between a second (hi) value
//
// Snapshot tokens are u64; token 0 ("latest") is always valid and reads
// current versions.  Nonzero tokens come from OpSnapshot and are resolved
// by the server's snapshot registry until released.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame is the largest accepted frame payload (requests and
// responses).  Batches larger than this must be split by the client.
const MaxFrame = 16 << 20

// ProtocolVersion is the protocol generation this build speaks.  Version 1
// is the original opcode set (OpPing..OpMerge); version 2 adds the
// hello/capability exchange, replication (OpSubscribe and the follower
// opcodes) and epoch-addressed snapshots; version 3 adds secondary-index
// management (OpCreateIndex, OpIndexStats); version 4 adds observability
// (OpMetrics, and the uptime + per-op counter tail of OpServerStats);
// version 5 adds online resharding (OpReshard, and the shard-topology tail
// of OpServerStats) and parallel dispatch of pipelined reads (a
// server-side change — responses stay in request order, so it needs no
// client support).
// OpHello carries the client's version and returns the server's; each side
// then restricts itself to the opcodes of min(client, server).  A
// version-1 server answers OpHello — like any unknown opcode — with
// StatusErrBadRequest, which a version-2+ client treats as "speak
// version 1".
const ProtocolVersion = 5

// Opcodes.  The zero value is intentionally invalid.
const (
	OpPing            = 0x01 // -> empty
	OpSchema          = 0x02 // -> name, shards u32, key string, schema
	OpInsert          = 0x03 // row -> id u64
	OpInsertBatch     = 0x04 // u32 n + rows -> u32 n + ids
	OpUpdate          = 0x05 // id u64, u16 n + (col string, value) -> id u64
	OpDelete          = 0x06 // id u64 -> empty
	OpRow             = 0x07 // id u64 -> row
	OpIsValid         = 0x08 // id u64 -> u8
	OpSnapshot        = 0x09 // -> token u64
	OpSnapshotRelease = 0x0a // token u64 -> empty
	OpLookup          = 0x0b // token, col string, value -> ids
	OpRange           = 0x0c // token, col string, lo value, hi value -> ids
	OpScan            = 0x0d // token, col string, limit u32, withRows u8 -> scan result
	OpSum             = 0x0e // token, col string -> u64
	OpMin             = 0x0f // token, col string -> u8 ok + value
	OpMax             = 0x10 // token, col string -> u8 ok + value
	OpCountEqual      = 0x11 // token, col string, value -> u64
	OpQuery           = 0x12 // token, filters, u16 n + project strings -> query result
	OpValidRows       = 0x13 // token -> u64
	OpVisible         = 0x14 // token, id u64 -> u8
	OpStats           = 0x15 // -> stats (incl. GC retired/reclaimed counters)
	OpMerge           = 0x16 // algorithm u8, threads u32 -> merge report

	// Version 2 opcodes.
	OpHello         = 0x17 // version u32 -> version u32, role u8
	OpServerStats   = 0x18 // -> server stats (replication lag, followers, oplog)
	OpSnapshotEpoch = 0x19 // -> token u64, epoch u64
	OpPinEpoch      = 0x1a // epoch u64 -> token u64
	OpSubscribe     = 0x1b // mode u8, fromLSN u64 -> mode u8, startLSN u64, then stream

	// Version 3 opcodes.
	OpCreateIndex = 0x1c // col string -> empty
	OpIndexStats  = 0x1d // -> u32 n + per column: col string, postings u64, bytes u64, builds u64, lastBuildNs u64

	// Version 4 opcodes.
	OpMetrics = 0x1e // -> u32 n + per sample: name string, float64 bits u64

	// Version 5 opcodes.
	OpReshard = 0x1f // shards u32 -> from u32, to u32, migrated u64, wallNs u64, cutoverNs u64, mapVersion u64, cutoverEpoch u64
)

// opLast is the highest opcode this build knows; Opcodes() iterates up to
// it, and the opcode-coverage test pins OpName against it.
const opLast = OpReshard

// OpName returns the lower-case wire name of an opcode ("lookup",
// "insert_batch", ...), or "op_0xNN" for opcodes this build does not
// know.  The server uses it to label per-op metric series, so the names
// are stable API: Prometheus queries reference them.
func OpName(op uint8) string {
	switch op {
	case OpPing:
		return "ping"
	case OpSchema:
		return "schema"
	case OpInsert:
		return "insert"
	case OpInsertBatch:
		return "insert_batch"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpRow:
		return "row"
	case OpIsValid:
		return "is_valid"
	case OpSnapshot:
		return "snapshot"
	case OpSnapshotRelease:
		return "snapshot_release"
	case OpLookup:
		return "lookup"
	case OpRange:
		return "range"
	case OpScan:
		return "scan"
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpCountEqual:
		return "count_equal"
	case OpQuery:
		return "query"
	case OpValidRows:
		return "valid_rows"
	case OpVisible:
		return "visible"
	case OpStats:
		return "stats"
	case OpMerge:
		return "merge"
	case OpHello:
		return "hello"
	case OpServerStats:
		return "server_stats"
	case OpSnapshotEpoch:
		return "snapshot_epoch"
	case OpPinEpoch:
		return "pin_epoch"
	case OpSubscribe:
		return "subscribe"
	case OpCreateIndex:
		return "create_index"
	case OpIndexStats:
		return "index_stats"
	case OpMetrics:
		return "metrics"
	case OpReshard:
		return "reshard"
	default:
		return fmt.Sprintf("op_0x%02x", op)
	}
}

// Opcodes lists every opcode this build knows, in opcode order; the
// server registers one metric series per entry.
func Opcodes() []uint8 {
	ops := make([]uint8, 0, opLast)
	for op := uint8(OpPing); op <= opLast; op++ {
		ops = append(ops, op)
	}
	return ops
}

// Subscribe modes (request and response).  A fresh follower requests
// SubSnapshot; a reconnecting follower requests SubTail with the next LSN
// it needs.  The response echoes the granted mode — a tail request the
// server cannot honor (log trimmed past fromLSN) fails with a normal error
// response instead, since a follower with an existing store cannot absorb
// a second full snapshot.
const (
	SubSnapshot = 0x00 // bootstrap: snapshot image, then ops from the cut
	SubTail     = 0x01 // resume: ops from fromLSN on
)

// Server roles reported by OpHello and OpServerStats.
const (
	RolePrimary  = 0x00 // serves writes; streams the op log when enabled
	RoleFollower = 0x01 // read-only replica fed by a primary's op log
)

// Subscribe stream frame kinds.  After the OpSubscribe response, the
// server sends a one-way sequence of frames whose payload starts with a
// kind byte.  In snapshot mode the stream opens with FrameSnapChunk frames
// carrying the v4 snapshot image, terminated by FrameSnapEnd; then (and
// immediately, in tail mode) FrameOps and FrameHeartbeat frames alternate
// for the life of the connection.
const (
	FrameSnapChunk = 0x01 // raw snapshot bytes (bounded chunks)
	FrameSnapEnd   = 0x02 // end of snapshot image
	FrameOps       = 0x03 // u32 n + n encoded ops, consecutive LSNs
	FrameHeartbeat = 0x04 // safe u64, primaryEpoch u64, nextLSN u64
	FrameError     = 0x05 // message string; the subscription is dead
)

// Response status codes.  StatusOK precedes a result body; every other
// code precedes a message string.  The codes mirror the library's typed
// errors so the client can rehydrate them.
const (
	StatusOK             = 0x00
	StatusErr            = 0x01 // untyped server-side failure
	StatusErrRowRange    = 0x02 // table.ErrRowRange
	StatusErrRowInvalid  = 0x03 // table.ErrRowInvalid
	StatusErrNoColumn    = 0x04 // table.ErrNoColumn
	StatusErrArity       = 0x05 // table.ErrArity
	StatusErrMergeBusy   = 0x06 // table.ErrMergeInProgress
	StatusErrBadSnapshot = 0x07 // unknown or released snapshot token
	StatusErrBadRequest  = 0x08 // malformed frame, unknown op, bad tag
	StatusErrColumnType  = 0x09 // value/op does not fit the column type
	// StatusErrTooManySnapshots: the server's snapshot registry is at its
	// configured capacity; release a token before capturing another.
	StatusErrTooManySnapshots = 0x0a
	// StatusErrReadOnly: the server is a replication follower; mutations
	// must go to the primary.
	StatusErrReadOnly = 0x0b
)

// Value type tags.
const (
	TagUint32 = 0x00
	TagUint64 = 0x01
	TagString = 0x02
)

// Filter ops.
const (
	OpFilterEq      = 0x00
	OpFilterBetween = 0x01
)

// Merge algorithm selectors (OpMerge body).
const (
	MergeOptimized = 0x00
	MergeNaive     = 0x01
)

// ErrFrameTooLarge is returned for frames exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrMalformed is returned when a payload fails to decode.
var ErrMalformed = errors.New("wire: malformed payload")

// readStep caps how much frame payload is allocated and read at once, so
// a header claiming a near-MaxFrame length pins memory only as fast as
// the peer actually delivers bytes — a silent connection costs one step,
// not 16 MiB.
const readStep = 256 << 10

// ReadFrame reads one length-prefixed frame payload.  It returns
// ErrFrameTooLarge for oversized frames (the stream is then poisoned:
// the payload was not consumed) and io.EOF cleanly at end of stream.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, 0, min(n, readStep))
	for len(buf) < n {
		step := min(n-len(buf), readStep)
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return buf, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Buffer accumulates an outgoing payload.
type Buffer struct {
	b []byte
}

// Bytes returns the accumulated payload.
func (b *Buffer) Bytes() []byte { return b.b }

// Reset clears the buffer for reuse.
func (b *Buffer) Reset() { b.b = b.b[:0] }

// U8 appends a byte.
func (b *Buffer) U8(v uint8) { b.b = append(b.b, v) }

// U16 appends a big-endian uint16.
func (b *Buffer) U16(v uint16) { b.b = binary.BigEndian.AppendUint16(b.b, v) }

// U32 appends a big-endian uint32.
func (b *Buffer) U32(v uint32) { b.b = binary.BigEndian.AppendUint32(b.b, v) }

// U64 appends a big-endian uint64.
func (b *Buffer) U64(v uint64) { b.b = binary.BigEndian.AppendUint64(b.b, v) }

// String appends a length-prefixed string.
func (b *Buffer) String(s string) {
	b.U32(uint32(len(s)))
	b.b = append(b.b, s...)
}

// Value appends a tagged value.  Supported Go types: uint32, uint64 and
// string; anything else returns an error (the caller coerces first).
func (b *Buffer) Value(v any) error {
	switch x := v.(type) {
	case uint32:
		b.U8(TagUint32)
		b.U32(x)
	case uint64:
		b.U8(TagUint64)
		b.U64(x)
	case string:
		b.U8(TagString)
		b.String(x)
	default:
		return fmt.Errorf("%w: unsupported value type %T", ErrMalformed, v)
	}
	return nil
}

// Row appends a column-counted row of values.
func (b *Buffer) Row(values []any) error {
	if len(values) > 0xffff {
		return fmt.Errorf("%w: %d values in one row", ErrMalformed, len(values))
	}
	b.U16(uint16(len(values)))
	for _, v := range values {
		if err := b.Value(v); err != nil {
			return err
		}
	}
	return nil
}

// RowIDs appends a count-prefixed row id list.
func (b *Buffer) RowIDs(ids []int) {
	b.U32(uint32(len(ids)))
	for _, id := range ids {
		b.U64(uint64(id))
	}
}

// Reader decodes a payload with strict bounds checking: every read that
// would run past the payload returns ErrMalformed, and count-prefixed
// allocations are capped by the bytes actually remaining, so a hostile
// length can never force an over-allocation.
type Reader struct {
	b []byte
	i int
}

// NewReader wraps a payload for decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Len returns the number of undecoded bytes.
func (r *Reader) Len() int { return len(r.b) - r.i }

// Rest returns an error unless the payload was fully consumed: trailing
// garbage on a request is rejected rather than ignored.
func (r *Reader) Rest() error {
	if r.i != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.b)-r.i)
	}
	return nil
}

func (r *Reader) take(n int) ([]byte, error) {
	if n < 0 || r.Len() < n {
		return nil, fmt.Errorf("%w: need %d bytes, have %d", ErrMalformed, n, r.Len())
	}
	out := r.b[r.i : r.i+n]
	r.i += n
	return out, nil
}

// U8 decodes one byte.
func (r *Reader) U8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// U16 decodes a big-endian uint16.
func (r *Reader) U16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

// U32 decodes a big-endian uint32.
func (r *Reader) U32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// U64 decodes a big-endian uint64.
func (r *Reader) U64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// String decodes a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.U32()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Value decodes one tagged value into its Go representation.
func (r *Reader) Value() (any, error) {
	tag, err := r.U8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case TagUint32:
		return r.U32()
	case TagUint64:
		return r.U64()
	case TagString:
		return r.String()
	default:
		return nil, fmt.Errorf("%w: unknown value tag 0x%02x", ErrMalformed, tag)
	}
}

// Row decodes a column-counted row.
func (r *Reader) Row() ([]any, error) {
	n, err := r.U16()
	if err != nil {
		return nil, err
	}
	// A value is at least 2 bytes (tag + shortest payload is a 4-byte
	// scalar, but a zero-length string is 5; 2 is a safe floor).
	if int(n) > r.Len() {
		return nil, fmt.Errorf("%w: row claims %d values, %d bytes left", ErrMalformed, n, r.Len())
	}
	values := make([]any, n)
	for i := range values {
		if values[i], err = r.Value(); err != nil {
			return nil, err
		}
	}
	return values, nil
}

// RowIDs decodes a count-prefixed row id list.
func (r *Reader) RowIDs() ([]int, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if int(n) > r.Len()/8 {
		return nil, fmt.Errorf("%w: %d row ids in %d bytes", ErrMalformed, n, r.Len())
	}
	ids := make([]int, n)
	for i := range ids {
		v, err := r.U64()
		if err != nil {
			return nil, err
		}
		ids[i] = int(v)
	}
	return ids, nil
}

// Filter is the wire form of one conjunctive predicate.
type Filter struct {
	Column string
	Op     uint8 // OpFilterEq or OpFilterBetween
	Value  any
	Hi     any // set for OpFilterBetween
}

// Filters appends a count-prefixed predicate list.
func (b *Buffer) Filters(fs []Filter) error {
	if len(fs) > 0xff {
		return fmt.Errorf("%w: %d filters", ErrMalformed, len(fs))
	}
	b.U8(uint8(len(fs)))
	for _, f := range fs {
		b.String(f.Column)
		b.U8(f.Op)
		if err := b.Value(f.Value); err != nil {
			return err
		}
		if f.Op == OpFilterBetween {
			if err := b.Value(f.Hi); err != nil {
				return err
			}
		}
	}
	return nil
}

// Filters decodes a predicate list.
func (r *Reader) Filters() ([]Filter, error) {
	n, err := r.U8()
	if err != nil {
		return nil, err
	}
	fs := make([]Filter, n)
	for i := range fs {
		if fs[i].Column, err = r.String(); err != nil {
			return nil, err
		}
		if fs[i].Op, err = r.U8(); err != nil {
			return nil, err
		}
		if fs[i].Op != OpFilterEq && fs[i].Op != OpFilterBetween {
			return nil, fmt.Errorf("%w: unknown filter op 0x%02x", ErrMalformed, fs[i].Op)
		}
		if fs[i].Value, err = r.Value(); err != nil {
			return nil, err
		}
		if fs[i].Op == OpFilterBetween {
			if fs[i].Hi, err = r.Value(); err != nil {
				return nil, err
			}
		}
	}
	return fs, nil
}

// Strings appends a u16-counted string list (projections, column names).
func (b *Buffer) Strings(ss []string) error {
	if len(ss) > 0xffff {
		return fmt.Errorf("%w: %d strings", ErrMalformed, len(ss))
	}
	b.U16(uint16(len(ss)))
	for _, s := range ss {
		b.String(s)
	}
	return nil
}

// Strings decodes a u16-counted string list.
func (r *Reader) Strings() ([]string, error) {
	n, err := r.U16()
	if err != nil {
		return nil, err
	}
	if int(n) > r.Len() {
		return nil, fmt.Errorf("%w: %d strings in %d bytes", ErrMalformed, n, r.Len())
	}
	if n == 0 {
		return nil, nil
	}
	ss := make([]string, n)
	for i := range ss {
		if ss[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	return ss, nil
}
