package wire

import (
	"strings"
	"testing"
)

// TestOpcodesCoverEveryOp pins the opcode registry to the protocol: every
// opcode in Opcodes() must have a real OpName (adding an opcode without
// naming it breaks per-op metrics and ServerStats rendering), the range
// must be dense up to opLast, names must be unique, and the current tail
// (OpReshard) must be included.  A new opcode that forgets to bump opLast
// or extend OpName fails here.
func TestOpcodesCoverEveryOp(t *testing.T) {
	ops := Opcodes()
	if len(ops) == 0 {
		t.Fatal("Opcodes() returned nothing")
	}
	if ops[0] != OpPing {
		t.Fatalf("Opcodes() starts at 0x%02x, want OpPing (0x%02x)", ops[0], OpPing)
	}
	if last := ops[len(ops)-1]; last != OpReshard {
		t.Fatalf("Opcodes() ends at 0x%02x, want OpReshard (0x%02x)", last, OpReshard)
	}
	seen := make(map[string]uint8, len(ops))
	for i, op := range ops {
		if i > 0 && op != ops[i-1]+1 {
			t.Fatalf("Opcodes() not dense: 0x%02x follows 0x%02x", op, ops[i-1])
		}
		name := OpName(op)
		if name == "" || strings.HasPrefix(name, "op_0x") {
			t.Errorf("opcode 0x%02x has no OpName (got %q)", op, name)
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("opcodes 0x%02x and 0x%02x share name %q", prev, op, name)
		}
		seen[name] = op
	}
	// The fallback rendering is reserved for genuinely unknown opcodes.
	if got := OpName(0xfe); !strings.HasPrefix(got, "op_0x") {
		t.Errorf("OpName(0xfe) = %q, want op_0x fallback", got)
	}
}
