// Package index implements the merge-maintained group-key index over a
// dictionary-encoded main partition (Krueger et al., VLDB 2011; the
// "group-key" organization of §2).
//
// A Postings is an inverted index: for every dictionary code c it holds the
// ascending list of row positions whose packed code equals c.  Because the
// merge rewrites the whole code vector anyway (re-sorted dictionary, new
// widths), the index is rebuilt from scratch during merge phase 2 by a
// two-pass counting sort over the freshly written vector — O(n) with
// sequential access, no comparisons — and published atomically together
// with the new main.  Between merges the main is immutable, so the index
// never needs maintenance; fresh writes live in the delta, which carries
// its own CSB+ tree (internal/delta).
//
// The lists store POSITIONS in the main vector, not row ids, and carry no
// visibility information.  Callers must copy a list (Equal/Range append to
// a caller-owned destination), run kernel.FilterVisible over the copy, and
// only then map positions to ids via ids[slot] — all under the table read
// lock.  Bucket returns the interior slice for zero-allocation counting and
// must be treated as read-only.
package index

import (
	"fmt"
	"sort"

	"hyrise/internal/bitpack"
)

// buildBlock is the decode granularity of Build.  It matches the scan
// kernels' block size: large enough to amortize DecodeRange setup, small
// enough to stay in L1.
const buildBlock = 4096

// Postings is a group-key index: starts[c]..starts[c+1] delimits the
// ascending positions whose code is c.  It is immutable after Build.
type Postings struct {
	starts []int32 // len cardinality+1; starts[c+1]-starts[c] = bucket size
	pos    []int32 // len rows; bucket contents, ascending within a bucket
}

// Build constructs the index for a packed code vector with the given
// dictionary cardinality using a two-pass counting sort.  Positions within
// each bucket come out ascending because the fill pass walks the vector in
// order.  It panics if a code is out of range — the vector and dictionary
// are published together by the merge, so a mismatch is a corruption bug,
// not an input error.
func Build(codes *bitpack.Vector, cardinality int) *Postings {
	n := codes.Len()
	p := &Postings{
		starts: make([]int32, cardinality+1),
		pos:    make([]int32, n),
	}
	if n == 0 {
		return p
	}
	counts := make([]int32, cardinality+1)
	var buf []uint64
	for blk := 0; blk < n; blk += buildBlock {
		hi := min(blk+buildBlock, n)
		buf = codes.DecodeRange(blk, hi, buf)
		for _, c := range buf {
			if int(c) >= cardinality {
				panic(fmt.Sprintf("index: code %d out of range (cardinality %d)", c, cardinality))
			}
			counts[c]++
		}
	}
	var sum int32
	for c := 0; c <= cardinality; c++ {
		p.starts[c] = sum
		if c < cardinality {
			sum += counts[c]
		}
	}
	// Reuse counts as per-bucket fill cursors.
	next := counts
	copy(next, p.starts[:cardinality])
	for blk := 0; blk < n; blk += buildBlock {
		hi := min(blk+buildBlock, n)
		buf = codes.DecodeRange(blk, hi, buf)
		for i, c := range buf {
			p.pos[next[c]] = int32(blk + i)
			next[c]++
		}
	}
	return p
}

// Rows returns the number of indexed positions.
func (p *Postings) Rows() int { return len(p.pos) }

// Cardinality returns the number of distinct codes the index covers.
func (p *Postings) Cardinality() int { return len(p.starts) - 1 }

// SizeBytes returns the in-memory footprint of the posting lists.
func (p *Postings) SizeBytes() int { return 4 * (len(p.starts) + len(p.pos)) }

// Bucket returns the ascending positions whose code is c.  The slice
// aliases the index's backing array: callers must not modify it and must
// not hand it to in-place kernels such as kernel.FilterVisible — use Equal
// for a filterable copy.
func (p *Postings) Bucket(c uint64) []int32 {
	if int(c) >= p.Cardinality() {
		return nil
	}
	return p.pos[p.starts[c]:p.starts[c+1]]
}

// Equal appends the positions whose code is c to dst and returns the
// extended slice.  The appended span is ascending and owned by the caller.
func (p *Postings) Equal(c uint64, dst []int32) []int32 {
	return append(dst, p.Bucket(c)...)
}

// Range appends the positions whose code lies in [lo, hi) to dst and
// returns the extended slice.  The appended span is sorted ascending to
// preserve the selection-vector contract (kernels require ascending
// positions); for the selective probes an index serves, the k·log k sort of
// a small result beats rescanning n rows.
func (p *Postings) Range(lo, hi uint64, dst []int32) []int32 {
	card := uint64(p.Cardinality())
	if hi > card {
		hi = card
	}
	if lo >= hi {
		return dst
	}
	base := len(dst)
	dst = append(dst, p.pos[p.starts[lo]:p.starts[hi]]...)
	out := dst[base:]
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dst
}

// CountRange returns the number of positions whose code lies in [lo, hi)
// — an O(1) starts-array subtraction, used for exact selectivity estimates.
func (p *Postings) CountRange(lo, hi uint64) int {
	card := uint64(p.Cardinality())
	if hi > card {
		hi = card
	}
	if lo >= hi {
		return 0
	}
	return int(p.starts[hi] - p.starts[lo])
}

// Validate checks structural invariants: monotone starts covering all
// positions, each bucket ascending and in range.  Used by tests and the
// differential suite; returns nil on a well-formed index.
func (p *Postings) Validate() error {
	if len(p.starts) == 0 {
		return fmt.Errorf("index: empty starts")
	}
	if p.starts[0] != 0 || int(p.starts[len(p.starts)-1]) != len(p.pos) {
		return fmt.Errorf("index: starts do not cover pos: [%d,%d] vs %d",
			p.starts[0], p.starts[len(p.starts)-1], len(p.pos))
	}
	for c := 1; c < len(p.starts); c++ {
		if p.starts[c] < p.starts[c-1] {
			return fmt.Errorf("index: starts not monotone at code %d", c-1)
		}
	}
	n := int32(len(p.pos))
	for c := 0; c < p.Cardinality(); c++ {
		b := p.pos[p.starts[c]:p.starts[c+1]]
		for i, q := range b {
			if q < 0 || q >= n {
				return fmt.Errorf("index: code %d position %d out of range", c, q)
			}
			if i > 0 && b[i-1] >= q {
				return fmt.Errorf("index: code %d bucket not strictly ascending", c)
			}
		}
	}
	return nil
}
