package index

import (
	"math/rand"
	"sort"
	"testing"

	"hyrise/internal/bitpack"
)

// refEqual is the scalar scan reference: positions whose code equals c.
func refEqual(codes []uint64, c uint64) []int32 {
	var out []int32
	for i, x := range codes {
		if x == c {
			out = append(out, int32(i))
		}
	}
	return out
}

func refRange(codes []uint64, lo, hi uint64) []int32 {
	var out []int32
	for i, x := range codes {
		if x >= lo && x < hi {
			out = append(out, int32(i))
		}
	}
	return out
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, card := range []int{1, 2, 3, 7, 16, 255, 1 << 12} {
		for _, n := range []int{0, 1, 5, buildBlock - 1, buildBlock, buildBlock + 1, 3*buildBlock + 17} {
			codes := make([]uint64, n)
			for i := range codes {
				codes[i] = uint64(rng.Intn(card))
			}
			v := bitpack.FromSlice(bitpack.MinBits(card), codes)
			p := Build(v, card)
			if err := p.Validate(); err != nil {
				t.Fatalf("card=%d n=%d: %v", card, n, err)
			}
			if p.Rows() != n || p.Cardinality() != card {
				t.Fatalf("card=%d n=%d: got rows=%d card=%d", card, n, p.Rows(), p.Cardinality())
			}
			probes := []uint64{0, uint64(card) - 1, uint64(rng.Intn(card))}
			for _, c := range probes {
				got := p.Equal(c, nil)
				if want := refEqual(codes, c); !equalI32(got, want) {
					t.Fatalf("card=%d n=%d Equal(%d): got %v want %v", card, n, c, got, want)
				}
				if b := p.Bucket(c); !equalI32(b, refEqual(codes, c)) {
					t.Fatalf("card=%d n=%d Bucket(%d) mismatch", card, n, c)
				}
			}
			for trial := 0; trial < 4; trial++ {
				lo := uint64(rng.Intn(card))
				hi := lo + uint64(rng.Intn(card-int(lo))+1)
				got := p.Range(lo, hi, nil)
				if want := refRange(codes, lo, hi); !equalI32(got, want) {
					t.Fatalf("card=%d n=%d Range(%d,%d): got %v want %v", card, n, lo, hi, got, want)
				}
			}
		}
	}
}

func TestEqualAppendsToDst(t *testing.T) {
	v := bitpack.FromSlice(2, []uint64{1, 0, 1, 2})
	p := Build(v, 3)
	dst := []int32{99}
	dst = p.Equal(1, dst)
	if !equalI32(dst, []int32{99, 0, 2}) {
		t.Fatalf("got %v", dst)
	}
	dst = p.Range(0, 3, dst[:1])
	if !equalI32(dst, []int32{99, 0, 1, 2, 3}) {
		t.Fatalf("range got %v", dst)
	}
}

func TestBucketOutOfRange(t *testing.T) {
	p := Build(bitpack.FromSlice(1, []uint64{0, 1}), 2)
	if got := p.Bucket(7); got != nil {
		t.Fatalf("Bucket(7) = %v, want nil", got)
	}
	if got := p.Range(5, 9, nil); len(got) != 0 {
		t.Fatalf("Range(5,9) = %v, want empty", got)
	}
	if got := p.Range(1, 1, nil); len(got) != 0 {
		t.Fatalf("Range(1,1) = %v, want empty", got)
	}
}

func TestZeroWidthVector(t *testing.T) {
	// A single-value dictionary packs at zero bits; every row is code 0.
	v := bitpack.New(0, 0)
	for i := 0; i < 10; i++ {
		v.Append(0)
	}
	p := Build(v, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	got := p.Equal(0, nil)
	want := make([]int32, 10)
	for i := range want {
		want[i] = int32(i)
	}
	if !equalI32(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestRangeSortedAfterMultiBucket(t *testing.T) {
	// Interleave codes so concatenated buckets are unsorted pre-sort.
	codes := []uint64{2, 0, 1, 2, 0, 1, 0}
	p := Build(bitpack.FromSlice(2, codes), 3)
	got := p.Range(0, 2, nil)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("not sorted: %v", got)
	}
	if want := refRange(codes, 0, 2); !equalI32(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}
