// Package bitpack implements fixed-width bit-packed integer vectors.
//
// The main partition of every column stores dictionary codes packed at
// E_C = ceil(log2(|dict|)) bits per code (paper §3, §5.2).  Vector supports
// random access (Get/Set), amortized O(1) Append, and sequential Reader /
// Writer cursors used by the merge inner loops, where decoding positionally
// is measurably cheaper than recomputing word/bit offsets per element.
//
// Widths from 0 to 64 bits are supported.  Width 0 is the degenerate case of
// a single-value dictionary: all codes are zero and no storage is consumed.
package bitpack

import (
	"fmt"
	"math/bits"
)

// WordBits is the size of the backing machine word in bits.
const WordBits = 64

// MinBits returns the number of bits required to store codes for a
// dictionary with n entries, i.e. ceil(log2(n)) clamped to [0, 64].
// n <= 1 requires 0 bits (every code is 0).
func MinBits(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len64(uint64(n - 1)))
}

// Vector is a densely bit-packed vector of unsigned integer codes, each
// stored in exactly Bits() bits.  The zero value is an empty vector of
// width 0; use New to choose a width.
type Vector struct {
	words []uint64
	n     int
	bits  uint
}

// New returns an empty Vector that stores each code in width bits and has
// capacity for at least capacity elements.  It panics if width > 64.
func New(width uint, capacity int) *Vector {
	if width > WordBits {
		panic(fmt.Sprintf("bitpack: width %d out of range [0,64]", width))
	}
	if capacity < 0 {
		capacity = 0
	}
	return &Vector{
		words: make([]uint64, 0, wordsFor(width, capacity)),
		bits:  width,
	}
}

// FromSlice packs codes at the given width.  It panics if any code does not
// fit in width bits.
func FromSlice(width uint, codes []uint64) *Vector {
	v := New(width, len(codes))
	for _, c := range codes {
		v.Append(c)
	}
	return v
}

// wordsFor returns the number of 64-bit words needed to hold n elements of
// the given width.
func wordsFor(width uint, n int) int {
	if width == 0 || n == 0 {
		return 0
	}
	totalBits := uint64(n) * uint64(width)
	return int((totalBits + WordBits - 1) / WordBits)
}

// Len returns the number of elements.
func (v *Vector) Len() int { return v.n }

// Bits returns the per-element width in bits.
func (v *Vector) Bits() uint { return v.bits }

// MaxCode returns the largest code representable at the vector's width.
func (v *Vector) MaxCode() uint64 {
	if v.bits == 0 {
		return 0
	}
	if v.bits == WordBits {
		return ^uint64(0)
	}
	return (1 << v.bits) - 1
}

// SizeBytes returns the memory consumed by the packed payload.
func (v *Vector) SizeBytes() int { return len(v.words) * 8 }

// Words exposes the backing words; callers must not assume bits beyond
// Len()*Bits() are zero, although Append maintains that invariant.
func (v *Vector) Words() []uint64 { return v.words }

// Get returns element i.  It panics if i is out of range.
func (v *Vector) Get(i int) uint64 {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitpack: index %d out of range [0,%d)", i, v.n))
	}
	if v.bits == 0 {
		return 0
	}
	bitPos := uint64(i) * uint64(v.bits)
	word := bitPos / WordBits
	off := uint(bitPos % WordBits)
	lo := v.words[word] >> off
	rem := WordBits - off
	if rem >= v.bits {
		return lo & v.mask()
	}
	hi := v.words[word+1] << rem
	return (lo | hi) & v.mask()
}

// Set overwrites element i.  It panics if i is out of range or code does not
// fit in the vector width.
func (v *Vector) Set(i int, code uint64) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitpack: index %d out of range [0,%d)", i, v.n))
	}
	v.checkFits(code)
	if v.bits == 0 {
		return
	}
	bitPos := uint64(i) * uint64(v.bits)
	word := bitPos / WordBits
	off := uint(bitPos % WordBits)
	mask := v.mask()
	v.words[word] = v.words[word]&^(mask<<off) | code<<off
	rem := WordBits - off
	if rem < v.bits {
		hiMask := mask >> rem
		v.words[word+1] = v.words[word+1]&^hiMask | code>>rem
	}
}

// Append adds code at the end.  It panics if code does not fit.
func (v *Vector) Append(code uint64) {
	v.checkFits(code)
	if v.bits != 0 {
		need := wordsFor(v.bits, v.n+1)
		for len(v.words) < need {
			v.words = append(v.words, 0)
		}
	}
	v.n++
	if v.bits != 0 {
		v.Set(v.n-1, code)
	}
}

func (v *Vector) checkFits(code uint64) {
	if v.bits < WordBits && code > v.MaxCode() {
		panic(fmt.Sprintf("bitpack: code %d does not fit in %d bits", code, v.bits))
	}
}

func (v *Vector) mask() uint64 {
	if v.bits == WordBits {
		return ^uint64(0)
	}
	return (1 << v.bits) - 1
}

// Decode appends all elements to dst and returns the extended slice.
func (v *Vector) Decode(dst []uint64) []uint64 {
	r := v.Reader()
	for i := 0; i < v.n; i++ {
		dst = append(dst, r.Next())
	}
	return dst
}

// DecodeRange decodes elements [from, to) into dst, reusing dst's backing
// array when it has sufficient capacity, and returns dst resliced to
// exactly to-from elements.  It is the allocation-free block decode used by
// the scan kernels (internal/kernel): callers keep one scratch buffer per
// scan instead of re-decoding whole columns or paying per-row Get.  It
// panics if the range is out of bounds.
func (v *Vector) DecodeRange(from, to int, dst []uint64) []uint64 {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("bitpack: DecodeRange [%d,%d) out of range [0,%d]", from, to, v.n))
	}
	n := to - from
	if cap(dst) < n {
		dst = make([]uint64, n)
	} else {
		dst = dst[:n]
	}
	if v.bits == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	mask := v.mask()
	pos := uint64(from) * uint64(v.bits)
	for i := 0; i < n; i++ {
		word := pos / WordBits
		off := uint(pos % WordBits)
		x := v.words[word] >> off
		if rem := WordBits - off; rem < v.bits {
			x |= v.words[word+1] << rem
		}
		dst[i] = x & mask
		pos += uint64(v.bits)
	}
	return dst
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	w := &Vector{words: make([]uint64, len(v.words)), n: v.n, bits: v.bits}
	copy(w.words, v.words)
	return w
}

// Reader is a sequential decoding cursor over a Vector.  It is substantially
// faster than repeated Get calls in merge loops because the word index and
// intra-word offset advance incrementally.
type Reader struct {
	words []uint64
	bits  uint
	mask  uint64
	pos   uint64 // absolute bit position
	n     int
	idx   int
}

// Reader returns a cursor positioned at element 0.
func (v *Vector) Reader() *Reader {
	return &Reader{words: v.words, bits: v.bits, mask: v.mask(), n: v.n}
}

// ReaderAt returns a cursor positioned at element i, 0 <= i <= Len().
// Parallel merge workers use it to stream disjoint chunks concurrently.
func (v *Vector) ReaderAt(i int) *Reader {
	if i < 0 || i > v.n {
		panic(fmt.Sprintf("bitpack: ReaderAt(%d) out of range [0,%d]", i, v.n))
	}
	return &Reader{
		words: v.words, bits: v.bits, mask: v.mask(), n: v.n,
		idx: i, pos: uint64(i) * uint64(v.bits),
	}
}

// Remaining reports how many elements are left.
func (r *Reader) Remaining() int { return r.n - r.idx }

// Next decodes and returns the next element.  It panics past the end.
func (r *Reader) Next() uint64 {
	if r.idx >= r.n {
		panic("bitpack: Reader.Next past end")
	}
	r.idx++
	if r.bits == 0 {
		return 0
	}
	word := r.pos / WordBits
	off := uint(r.pos % WordBits)
	r.pos += uint64(r.bits)
	lo := r.words[word] >> off
	rem := WordBits - off
	if rem >= r.bits {
		return lo & r.mask
	}
	return (lo | r.words[word+1]<<rem) & r.mask
}

// Writer is a sequential append-only encoder.  The merge Step 2(b) writes
// the whole output column through a Writer (paper Eq. 11): allocate once
// with the exact output cardinality and stream codes in.
type Writer struct {
	vec *Vector
	pos uint64
}

// NewWriter returns a Writer over a fresh Vector of the given width,
// preallocated for n elements.
func NewWriter(width uint, n int) *Writer {
	v := New(width, n)
	v.words = v.words[:wordsFor(width, n)]
	return &Writer{vec: v}
}

// Write appends code.  It panics if code does not fit in the width.
func (w *Writer) Write(code uint64) {
	v := w.vec
	v.checkFits(code)
	if v.bits == 0 {
		v.n++
		return
	}
	word := w.pos / WordBits
	off := uint(w.pos % WordBits)
	if int(word) >= len(v.words) {
		v.words = append(v.words, 0)
	}
	v.words[word] |= code << off
	rem := WordBits - off
	if rem < v.bits {
		if int(word)+1 >= len(v.words) {
			v.words = append(v.words, 0)
		}
		v.words[word+1] |= code >> rem
	}
	w.pos += uint64(v.bits)
	v.n++
}

// WriteAt encodes code at element index i without moving the cursor.  The
// parallel Step 2 uses WriteAt from disjoint element ranges; ranges must not
// share a 64-bit word unless the caller serializes access (see ChunkAlign).
func (w *Writer) WriteAt(i int, code uint64) {
	v := w.vec
	v.checkFits(code)
	if v.bits == 0 {
		return
	}
	bitPos := uint64(i) * uint64(v.bits)
	word := bitPos / WordBits
	off := uint(bitPos % WordBits)
	v.words[word] |= code << off
	rem := WordBits - off
	if rem < v.bits {
		v.words[word+1] |= code >> rem
	}
}

// Vector finalizes and returns the underlying vector.  For Writers created
// with NewWriter(width, n) where fewer than n elements were written via
// Write, the length reflects the number of Write calls; after WriteAt-style
// population, call SetLen first.
func (w *Writer) Vector() *Vector { return w.vec }

// SetLen declares the logical length after random-order WriteAt population.
func (w *Writer) SetLen(n int) { w.vec.n = n }

// ChunkAlign returns the largest element count <= n such that a chunk of
// that many elements ends exactly on a 64-bit word boundary, guaranteeing
// two adjacent chunks never share a word.  For width 0 it returns n.
func ChunkAlign(width uint, n int) int {
	if width == 0 || n == 0 {
		return n
	}
	g := WordBits / gcd(int(width), WordBits) // elements per aligned group
	if n < g {
		return n
	}
	return n - n%g
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
