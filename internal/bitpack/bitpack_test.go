package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinBits(t *testing.T) {
	cases := []struct {
		n    int
		want uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {6, 3}, {8, 3},
		{9, 4}, {16, 4}, {17, 5}, {1 << 20, 20}, {1<<20 + 1, 21},
	}
	for _, c := range cases {
		if got := MinBits(c.n); got != c.want {
			t.Errorf("MinBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestAppendGetAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for width := uint(0); width <= 64; width++ {
		v := New(width, 0)
		var ref []uint64
		for i := 0; i < 200; i++ {
			var c uint64
			if width == 64 {
				c = rng.Uint64()
			} else if width > 0 {
				c = rng.Uint64() & ((1 << width) - 1)
			}
			v.Append(c)
			ref = append(ref, c)
		}
		if v.Len() != len(ref) {
			t.Fatalf("width %d: Len=%d want %d", width, v.Len(), len(ref))
		}
		for i, want := range ref {
			if got := v.Get(i); got != want {
				t.Fatalf("width %d: Get(%d)=%d want %d", width, i, got, want)
			}
		}
	}
}

func TestSetOverwrite(t *testing.T) {
	for _, width := range []uint{1, 3, 7, 13, 31, 33, 64} {
		v := New(width, 0)
		n := 150
		for i := 0; i < n; i++ {
			v.Append(0)
		}
		rng := rand.New(rand.NewSource(int64(width)))
		ref := make([]uint64, n)
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < n; i++ {
				c := rng.Uint64() & v.MaxCode()
				v.Set(i, c)
				ref[i] = c
			}
		}
		for i := range ref {
			if got := v.Get(i); got != ref[i] {
				t.Fatalf("width %d: Get(%d)=%d want %d", width, i, got, ref[i])
			}
		}
	}
}

func TestReaderMatchesGet(t *testing.T) {
	for _, width := range []uint{0, 1, 5, 8, 11, 17, 32, 63, 64} {
		rng := rand.New(rand.NewSource(int64(width) + 7))
		v := New(width, 0)
		for i := 0; i < 300; i++ {
			v.Append(rng.Uint64() & v.MaxCode())
		}
		r := v.Reader()
		for i := 0; i < v.Len(); i++ {
			if got, want := r.Next(), v.Get(i); got != want {
				t.Fatalf("width %d: Reader at %d = %d, Get = %d", width, i, got, want)
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("width %d: Remaining=%d after full scan", width, r.Remaining())
		}
	}
}

func TestWriterSequential(t *testing.T) {
	for _, width := range []uint{0, 1, 6, 12, 21, 40, 64} {
		rng := rand.New(rand.NewSource(int64(width) + 99))
		n := 257
		w := NewWriter(width, n)
		ref := make([]uint64, n)
		for i := range ref {
			ref[i] = rng.Uint64()
			if width < 64 {
				ref[i] &= (uint64(1) << width) - 1
			}
			w.Write(ref[i])
		}
		v := w.Vector()
		if v.Len() != n {
			t.Fatalf("width %d: Len=%d want %d", width, v.Len(), n)
		}
		for i := range ref {
			if got := v.Get(i); got != ref[i] {
				t.Fatalf("width %d: Get(%d)=%d want %d", width, i, got, ref[i])
			}
		}
	}
}

func TestWriterWriteAt(t *testing.T) {
	for _, width := range []uint{1, 9, 13, 32, 64} {
		n := 300
		w := NewWriter(width, n)
		ref := make([]uint64, n)
		rng := rand.New(rand.NewSource(int64(width)))
		// Populate in random order from aligned chunks, as parallel Step 2 does.
		perm := rng.Perm(n)
		for _, i := range perm {
			ref[i] = rng.Uint64()
			if width < 64 {
				ref[i] &= (uint64(1) << width) - 1
			}
			w.WriteAt(i, ref[i])
		}
		w.SetLen(n)
		v := w.Vector()
		for i := range ref {
			if got := v.Get(i); got != ref[i] {
				t.Fatalf("width %d: Get(%d)=%d want %d", width, i, got, ref[i])
			}
		}
	}
}

func TestChunkAlign(t *testing.T) {
	for width := uint(1); width <= 64; width++ {
		for _, n := range []int{0, 1, 63, 64, 65, 1000, 4097} {
			a := ChunkAlign(width, n)
			if a > n || a < 0 {
				t.Fatalf("width %d n %d: align %d out of range", width, n, a)
			}
			if a < n {
				// A chunk of a elements must end on a word boundary.
				if (uint64(a) * uint64(width) % WordBits) != 0 {
					t.Fatalf("width %d: ChunkAlign(%d)=%d not word-aligned", width, n, a)
				}
			}
		}
	}
	if got := ChunkAlign(0, 57); got != 57 {
		t.Fatalf("ChunkAlign(0,57)=%d want 57", got)
	}
}

func TestDecodeAndClone(t *testing.T) {
	v := FromSlice(5, []uint64{1, 2, 3, 30, 31, 0, 7})
	got := v.Decode(nil)
	want := []uint64{1, 2, 3, 30, 31, 0, 7}
	if len(got) != len(want) {
		t.Fatalf("Decode len %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Decode[%d]=%d want %d", i, got[i], want[i])
		}
	}
	c := v.Clone()
	c.Set(0, 9)
	if v.Get(0) != 1 {
		t.Fatal("Clone is not deep")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(codes []uint16, widthSeed uint8) bool {
		width := uint(widthSeed%49) + 16 // 16..64: all uint16 values fit
		v := New(width, len(codes))
		for _, c := range codes {
			v.Append(uint64(c))
		}
		for i, c := range codes {
			if v.Get(i) != uint64(c) {
				return false
			}
		}
		return v.Len() == len(codes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	v := FromSlice(3, []uint64{1, 2})
	expectPanic("Get OOB", func() { v.Get(2) })
	expectPanic("Get neg", func() { v.Get(-1) })
	expectPanic("Set OOB", func() { v.Set(5, 0) })
	expectPanic("Append overflow", func() { v.Append(8) })
	expectPanic("Set overflow", func() { v.Set(0, 8) })
	expectPanic("New width>64", func() { New(65, 0) })
	r := v.Reader()
	r.Next()
	r.Next()
	expectPanic("Reader past end", func() { r.Next() })
}

func BenchmarkReaderNext(b *testing.B) {
	v := New(17, 1<<16)
	for i := 0; i < 1<<16; i++ {
		v.Append(uint64(i) & v.MaxCode())
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		r := v.Reader()
		for r.Remaining() > 0 {
			sink += r.Next()
		}
	}
	_ = sink
}

func BenchmarkGetRandom(b *testing.B) {
	v := New(17, 1<<16)
	for i := 0; i < 1<<16; i++ {
		v.Append(uint64(i) & v.MaxCode())
	}
	idx := rand.New(rand.NewSource(3)).Perm(1 << 16)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += v.Get(idx[i&(1<<16-1)])
	}
	_ = sink
}

func TestDecodeRangeMisaligned(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, width := range []uint{0, 1, 3, 5, 7, 8, 12, 13, 16, 31, 32, 33, 63, 64} {
		n := 300
		v := New(width, n)
		want := make([]uint64, n)
		for i := range want {
			if width == 64 {
				want[i] = rng.Uint64()
			} else if width > 0 {
				want[i] = rng.Uint64() % (1 << width)
			}
			v.Append(want[i])
		}
		// Offsets chosen to start and end mid-word for every width, plus
		// chunk-aligned ones for contrast.
		spans := [][2]int{{0, n}, {1, n - 1}, {7, 200}, {63, 65}, {64, 128},
			{65, 66}, {n - 1, n}, {13, 13}, {0, 0}, {n, n}}
		for _, s := range spans {
			got := v.DecodeRange(s[0], s[1], nil)
			if len(got) != s[1]-s[0] {
				t.Fatalf("w=%d [%d,%d): len %d", width, s[0], s[1], len(got))
			}
			for i, w := range got {
				if w != want[s[0]+i] {
					t.Fatalf("w=%d [%d,%d)[%d] = %d want %d", width, s[0], s[1], i, w, want[s[0]+i])
				}
			}
		}
	}
}

func TestDecodeRangeReusesDst(t *testing.T) {
	v := FromSlice(13, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	buf := make([]uint64, 8)
	got := v.DecodeRange(2, 7, buf)
	if &got[0] != &buf[0] {
		t.Fatal("DecodeRange reallocated despite sufficient capacity")
	}
	if len(got) != 5 || got[0] != 3 || got[4] != 7 {
		t.Fatalf("DecodeRange content wrong: %v", got)
	}
	// Undersized dst must grow, not panic.
	grown := v.DecodeRange(0, 8, make([]uint64, 0, 2))
	if len(grown) != 8 || grown[7] != 8 {
		t.Fatalf("DecodeRange grow failed: %v", grown)
	}
}

func TestDecodeRangePanics(t *testing.T) {
	v := FromSlice(8, []uint64{1, 2, 3})
	for _, s := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("DecodeRange(%d,%d) did not panic", s[0], s[1])
				}
			}()
			v.DecodeRange(s[0], s[1], nil)
		}()
	}
}
