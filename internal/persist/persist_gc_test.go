package persist

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"testing"

	"hyrise/internal/table"
)

// writeV3 hand-encodes a v3 snapshot (dense row ids, epochs + clock, no GC
// state) of tables whose ids are still dense, exactly as the v3 writer
// produced before the id-map format existed.
func writeV3(t *testing.T, topo uint8, name string, schema table.Schema, key string, parts []*table.Table, clock uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := &writer{w: bufio.NewWriter(&buf)}
	w.bytes([]byte(Magic))
	w.u32(VersionV3)
	w.u8(topo)
	w.str(name)
	w.writeSchema(schema)
	if topo == topoSharded {
		w.str(key)
		w.u32(uint32(len(parts)))
	}
	w.u64(clock)
	for _, tb := range parts {
		begin, end := tb.RowEpochs()
		rows := len(begin)
		mainRows := tb.MainRows()
		if mainRows > rows {
			mainRows = rows
		}
		w.u64(uint64(rows))
		w.u64(uint64(mainRows))
		for _, e := range begin {
			w.u64(e)
		}
		for _, e := range end {
			w.u64(e)
		}
		for ci, def := range schema {
			for r := 0; r < rows; r++ {
				row, err := tb.Row(r)
				if err != nil {
					t.Fatal(err)
				}
				switch def.Type {
				case table.Uint32:
					w.u32(row[ci].(uint32))
				case table.Uint64:
					w.u64(row[ci].(uint64))
				case table.String:
					w.str(row[ci].(string))
				}
			}
		}
	}
	if w.err != nil {
		t.Fatal(w.err)
	}
	if err := w.w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestV3BackwardCompat loads a hand-written v3 snapshot through LoadAny
// and checks the content, the main/delta split, the epoch history and the
// (dense) row ids all restore — the pre-GC format keeps loading.
func TestV3BackwardCompat(t *testing.T) {
	tb := buildTable(t, 150)
	// History without GC: a v3 file could only ever hold dense ids.
	tb.SetGC(false)
	if _, err := tb.Merge(context.Background(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	tb.Insert([]any{uint64(900), uint32(1), "x"})
	tb.Delete(5)
	tb.Update(9, map[string]any{"qty": uint32(77)})

	data := writeV3(t, topoFlat, tb.Name(), tb.Schema(), "", []*table.Table{tb}, tb.Clock().Now())
	got, err := loadFlat(t, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)
	if got.MainRows() != tb.MainRows() || got.DeltaRows() != tb.DeltaRows() {
		t.Fatalf("split main=%d delta=%d want main=%d delta=%d",
			got.MainRows(), got.DeltaRows(), tb.MainRows(), tb.DeltaRows())
	}
	// Epoch history restored: a view below the last invalidations sees
	// the superseded versions on both sides.
	beginA, endA := tb.RowEpochs()
	beginB, endB := got.RowEpochs()
	for i := range beginA {
		if beginA[i] != beginB[i] || endA[i] != endB[i] {
			t.Fatalf("epoch %d: %d/%d vs %d/%d", i, beginA[i], endA[i], beginB[i], endB[i])
		}
	}
	// Dense ids: the v3 loader must assign exactly 0..rows-1.
	for i, id := range got.RowIDs() {
		if id != i {
			t.Fatalf("v3 id %d loaded as %d", i, id)
		}
	}
}

// TestGCRoundTrip saves a table whose ids have gaps (GC retired some) and
// checks the v4 format restores the id map, the retired set and the GC
// counters: retired ids keep failing with ErrRowInvalid after the reload
// and new inserts continue above the saved NextRowID.
func TestGCRoundTrip(t *testing.T) {
	tb := buildTable(t, 100)
	retired := make([]int, 0, 20)
	for i := 0; i < 20; i++ {
		if _, err := tb.Update(i, map[string]any{"qty": uint32(500 + i)}); err != nil {
			t.Fatal(err)
		}
		retired = append(retired, i)
	}
	if err := tb.Delete(30); err != nil {
		t.Fatal(err)
	}
	retired = append(retired, 30)
	if _, err := tb.Merge(context.Background(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if tb.RetiredRows() != len(retired) {
		t.Fatalf("retired %d want %d", tb.RetiredRows(), len(retired))
	}
	// More churn after the merge so the snapshot holds both a reclaimed
	// main and a dirty delta.
	if _, err := tb.Update(40, map[string]any{"qty": uint32(999)}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Save(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := loadFlat(t, &buf)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)
	if got.ReclaimedBytes() != tb.ReclaimedBytes() || got.GCWatermark() != tb.GCWatermark() {
		t.Fatalf("GC counters: %d/%d vs %d/%d",
			got.ReclaimedBytes(), got.GCWatermark(), tb.ReclaimedBytes(), tb.GCWatermark())
	}
	for _, id := range retired {
		if _, err := got.Row(id); !errors.Is(err, table.ErrRowInvalid) {
			t.Fatalf("retired id %d after reload: %v want ErrRowInvalid", id, err)
		}
	}
	// Fresh inserts continue above the persisted NextRowID — never reusing
	// a retired id.
	nid, err := got.Insert([]any{uint64(7), uint32(7), "z"})
	if err != nil {
		t.Fatal(err)
	}
	if nid != tb.NextRowID() {
		t.Fatalf("fresh id %d want %d", nid, tb.NextRowID())
	}
}
