// Package persist serializes tables to a compact binary snapshot format.
//
// HYRISE is an in-memory engine; snapshots exist for operational reasons
// (loading benchmark fixtures, the CLI's save/load).  Snapshots store
// materialized column values (not the physical encoding): the loader
// re-inserts and re-merges, which keeps the format independent of
// dictionary layout while the merge regenerates identical structures.
// All integers are little-endian; strings are length-prefixed.
//
// Version 5 layout (current):
//
//	magic "HYRS" | version u32 = 5 | topology u8 | name
//	ncols u32 | per column: name | type u8
//	if sharded: key column | partition count u32 |
//	            active base u32 | active len u32 | shard-map version u64
//	clock u64 (the store's epoch clock)
//	per partition (1 for flat, partition count for sharded):
//	    rows u64 | main rows u64 |
//	    next id u64 | retired u64 | reclaimed bytes u64 | gc watermark u64 |
//	    stable row ids (rows of u64) |
//	    begin epochs (rows of u64) | end epochs (rows of u64) |
//	    per column: values (rows of u32 / u64 / string)
//
// The header records the topology, key column and shard topology, so
// sharded tables round-trip: each physical partition is encoded in
// physical order and global row ids (local*stride + partition) are
// preserved exactly.  The per-partition main-row count lets the loader
// re-merge to the saved main/delta split.
//
// v5 adds the shard-map topology introduced with online resharding: the
// physical partition count, the active window (which tail of the partition
// list key hashing routes writes to) and the shard-map version, so a table
// saved after — or during — a reshard restores with consistent routing.  A
// mid-reshard save is normalized to its post-cutover topology (see
// shard.Table.PersistTopology); rows the migration had not yet moved load
// back into their sealed partitions, readable and consistent, and drain
// lazily.  v4 snapshots (no shard-map state: every partition active,
// map version 1) still load, as do version 3 snapshots (dense row ids, no
// GC state), version 2 snapshots (validity bitmap instead of epochs, no
// clock) and version 1 snapshots (flat tables only: no topology byte, no
// main-row count, rows reloaded into the delta).  v3 rows get dense ids,
// exactly what the saved table had; v2/v1 rows are additionally stamped
// with load-time epochs, collapsing the pre-save history — equivalent
// because snapshots never outlive a process.
package persist

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hyrise/internal/shard"
	"hyrise/internal/table"
)

// Magic identifies snapshot files.
const Magic = "HYRS"

// Version is the current format version.
const Version uint32 = 5

// VersionV4 is the pre-reshard format (no shard-map state), still readable.
const VersionV4 uint32 = 4

// VersionV3 is the dense-row-id format (no GC state), still readable.
const VersionV3 uint32 = 3

// VersionV2 is the validity-bitmap format (no epochs), still readable.
const VersionV2 uint32 = 2

// VersionV1 is the legacy flat-only format, still readable.
const VersionV1 uint32 = 1

// Topology bytes in the v2 header.
const (
	topoFlat    uint8 = 0
	topoSharded uint8 = 1
)

// ErrFormat reports a malformed snapshot.
var ErrFormat = errors.New("persist: malformed snapshot")

// maxRows bounds the per-partition row count a snapshot may claim, so a
// corrupt header fails with ErrFormat instead of a huge allocation.
const maxRows = 1 << 34

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u8(v uint8) {
	if w.err == nil {
		w.err = w.w.WriteByte(v)
	}
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.bytes(b[:])
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.bytes(b[:])
}

func (w *writer) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.bytes([]byte(s))
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	r.err = err
	return b
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) u64() uint64 {
	var b [8]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (r *reader) bytes(b []byte) {
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b)
	}
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || n > 1<<30 {
		if r.err == nil {
			r.err = ErrFormat
		}
		return ""
	}
	b := make([]byte, n)
	r.bytes(b)
	return string(b)
}

// writeSchema emits the column definitions.
func (w *writer) writeSchema(schema table.Schema) {
	w.u32(uint32(len(schema)))
	for _, def := range schema {
		w.str(def.Name)
		w.u8(uint8(def.Type))
	}
}

// readSchema parses the column definitions.
func (r *reader) readSchema() (table.Schema, error) {
	ncols := int(r.u32())
	if r.err != nil || ncols <= 0 || ncols > 1<<20 {
		return nil, fmt.Errorf("%w: column count", ErrFormat)
	}
	schema := make(table.Schema, ncols)
	for i := range schema {
		schema[i].Name = r.str()
		schema[i].Type = table.Type(r.u8())
	}
	return schema, r.err
}

// maxPrealloc caps how many entries a loading slice pre-allocates before
// any data is decoded.  The claimed row count is only trusted as capacity
// up to this bound; beyond it slices grow with the data actually read, so
// a corrupt header claiming billions of rows fails on the first missing
// byte instead of allocating gigabytes up front.
const maxPrealloc = 1 << 20

// readValidity decodes the validity bitmap words for rows, failing fast on
// short input.
func (r *reader) readValidity(rows int) ([]uint64, error) {
	words := (rows + 63) / 64
	valid := make([]uint64, 0, min(words, maxPrealloc))
	for i := 0; i < words; i++ {
		w := r.u64()
		if r.err != nil {
			return nil, r.err
		}
		valid = append(valid, w)
	}
	return valid, nil
}

// readColumns decodes every column's values for rows, failing fast on
// short input.
func (r *reader) readColumns(schema table.Schema, rows int) ([][]any, error) {
	cols := make([][]any, len(schema))
	for ci, def := range schema {
		col := make([]any, 0, min(rows, maxPrealloc))
		for j := 0; j < rows; j++ {
			var v any
			switch def.Type {
			case table.Uint32:
				v = r.u32()
			case table.Uint64:
				v = r.u64()
			case table.String:
				v = r.str()
			}
			if r.err != nil {
				return nil, r.err
			}
			col = append(col, v)
		}
		cols[ci] = col
	}
	return cols, nil
}

// writePartition encodes one physical table: row counts, the main/delta
// boundary, the GC state, the stable row ids, the per-row begin/end epochs
// and every column's materialized values.  The table should be quiescent:
// a concurrent garbage-collecting merge can retire rows mid-write, which
// fails the save cleanly with ErrRowInvalid rather than corrupting it.
func writePartition(w *writer, t *table.Table) error {
	// Capture ids, epochs and GC counters under one lock so they are
	// mutually consistent; values are then read per stable id.
	ps := t.PersistState()
	rows := len(ps.IDs)
	mainRows := t.MainRows()
	if mainRows > rows {
		mainRows = rows
	}
	w.u64(uint64(rows))
	w.u64(uint64(mainRows))
	w.u64(uint64(ps.NextID))
	w.u64(uint64(ps.Retired))
	w.u64(uint64(ps.Reclaimed))
	w.u64(ps.Watermark)
	for _, id := range ps.IDs {
		w.u64(uint64(id))
	}
	for _, e := range ps.Begin {
		w.u64(e)
	}
	for _, e := range ps.End {
		w.u64(e)
	}
	for _, def := range t.Schema() {
		switch def.Type {
		case table.Uint32:
			h, err := table.ColumnOf[uint32](t, def.Name)
			if err != nil {
				return err
			}
			for _, id := range ps.IDs {
				v, err := h.Get(id)
				if err != nil {
					return err
				}
				w.u32(v)
			}
		case table.Uint64:
			h, err := table.ColumnOf[uint64](t, def.Name)
			if err != nil {
				return err
			}
			for _, id := range ps.IDs {
				v, err := h.Get(id)
				if err != nil {
					return err
				}
				w.u64(v)
			}
		case table.String:
			h, err := table.ColumnOf[string](t, def.Name)
			if err != nil {
				return err
			}
			for _, id := range ps.IDs {
				v, err := h.Get(id)
				if err != nil {
					return err
				}
				w.str(v)
			}
		}
	}
	return w.err
}

// readEpochColumn decodes one per-row epoch column, failing fast on short
// input.
func (r *reader) readEpochColumn(rows int) ([]uint64, error) {
	out := make([]uint64, 0, min(rows, maxPrealloc))
	for i := 0; i < rows; i++ {
		e := r.u64()
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, e)
	}
	return out, nil
}

// readPartitionIntoV4 decodes one v4 partition into the (empty) table t,
// restoring the saved main/delta split, the stable row-id map and the GC
// counters.  Rows rebuild by re-insertion (which assigns dense ids) with
// the loader merge's GC disabled, then the saved ids and epochs are
// restored on top, so ids retired before the save stay retired.
func (r *reader) readPartitionIntoV4(t *table.Table, schema table.Schema) error {
	rows64 := r.u64()
	mainRows64 := r.u64()
	nextID64 := r.u64()
	retired64 := r.u64()
	reclaimed64 := r.u64()
	watermark := r.u64()
	if r.err != nil || rows64 > maxRows || mainRows64 > rows64 ||
		nextID64 > maxRows || rows64 > nextID64 || retired64 > nextID64 {
		return fmt.Errorf("%w: row counts", ErrFormat)
	}
	rows, mainRows := int(rows64), int(mainRows64)
	ids64, err := r.readEpochColumn(rows) // same wire shape: rows of u64
	if err != nil {
		return err
	}
	ids := make([]int, rows)
	for i, id := range ids64 {
		if id >= nextID64 {
			return fmt.Errorf("%w: row id %d out of range", ErrFormat, id)
		}
		ids[i] = int(id)
	}
	begin, err := r.readEpochColumn(rows)
	if err != nil {
		return err
	}
	end, err := r.readEpochColumn(rows)
	if err != nil {
		return err
	}
	if err := r.insertColumns(t, schema, rows, mainRows); err != nil {
		return err
	}
	if err := t.RestoreRowIDs(ids, int(nextID64), int(retired64), int(reclaimed64), watermark); err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return t.RestoreRowEpochs(begin, end)
}

// readPartitionIntoV3 decodes one v3 partition into the (empty) table t,
// restoring the saved main/delta split: the first mainRows rows are
// inserted and merged into the main partitions, the rest stay in the
// delta.  Row ids are assigned in insertion order, so they match the saved
// table exactly (v3 ids are dense); the rebuilt rows are then re-stamped
// with the persisted begin/end epochs, restoring the full multi-version
// visibility history.
func (r *reader) readPartitionIntoV3(t *table.Table, schema table.Schema) error {
	rows64 := r.u64()
	mainRows64 := r.u64()
	if r.err != nil || rows64 > maxRows || mainRows64 > rows64 {
		return fmt.Errorf("%w: row counts", ErrFormat)
	}
	rows, mainRows := int(rows64), int(mainRows64)
	begin, err := r.readEpochColumn(rows)
	if err != nil {
		return err
	}
	end, err := r.readEpochColumn(rows)
	if err != nil {
		return err
	}
	if err := r.insertColumns(t, schema, rows, mainRows); err != nil {
		return err
	}
	return t.RestoreRowEpochs(begin, end)
}

// insertColumns decodes the column values of one partition and rebuilds
// the rows: the first mainRows rows are inserted and merged into the main
// partitions (GC disabled — the loader must rebuild byte-exactly), the
// rest stay in the delta.
func (r *reader) insertColumns(t *table.Table, schema table.Schema, rows, mainRows int) error {
	cols, err := r.readColumns(schema, rows)
	if err != nil {
		return err
	}
	insert := func(from, to int) error {
		if from >= to {
			return nil
		}
		batch := make([][]any, 0, to-from)
		for j := from; j < to; j++ {
			row := make([]any, len(schema))
			for ci := range cols {
				row[ci] = cols[ci][j]
			}
			batch = append(batch, row)
		}
		_, err := t.InsertRows(batch)
		return err
	}
	if err := insert(0, mainRows); err != nil {
		return err
	}
	if mainRows > 0 {
		if _, err := t.Merge(context.Background(), table.MergeOptions{DisableGC: true}); err != nil {
			return err
		}
	}
	return insert(mainRows, rows)
}

// readPartitionInto decodes one v2 partition (validity bitmap) into the
// (empty) table t, restoring the saved main/delta split: the first
// mainRows rows are inserted and merged into the main partitions, the
// rest stay in the delta.  Row ids are assigned in insertion order, so
// they match the saved table exactly.
func (r *reader) readPartitionInto(t *table.Table, schema table.Schema) error {
	rows64 := r.u64()
	mainRows64 := r.u64()
	if r.err != nil || rows64 > maxRows || mainRows64 > rows64 {
		return fmt.Errorf("%w: row counts", ErrFormat)
	}
	rows, mainRows := int(rows64), int(mainRows64)
	valid, err := r.readValidity(rows)
	if err != nil {
		return err
	}
	cols, err := r.readColumns(schema, rows)
	if err != nil {
		return err
	}
	insert := func(from, to int) error {
		if from >= to {
			return nil
		}
		batch := make([][]any, 0, to-from)
		for j := from; j < to; j++ {
			row := make([]any, len(schema))
			for ci := range cols {
				row[ci] = cols[ci][j]
			}
			batch = append(batch, row)
		}
		ids, err := t.InsertRows(batch)
		if err != nil {
			return err
		}
		for k, id := range ids {
			j := from + k
			if valid[j/64]&(1<<uint(j%64)) == 0 {
				if err := t.Delete(id); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := insert(0, mainRows); err != nil {
		return err
	}
	if mainRows > 0 {
		// GC must stay off: the invalidations applied above would otherwise
		// be reclaimed by this merge, renumbering the saved row ids.
		if _, err := t.Merge(context.Background(), table.MergeOptions{DisableGC: true}); err != nil {
			return err
		}
	}
	return insert(mainRows, rows)
}

// Save writes a v4 snapshot of a flat table.
func Save(t *table.Table, out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.bytes([]byte(Magic))
	w.u32(Version)
	w.u8(topoFlat)
	w.str(t.Name())
	w.writeSchema(t.Schema())
	w.u64(t.Clock().Now())
	if err := writePartition(w, t); err != nil {
		return err
	}
	return w.w.Flush()
}

// SaveSharded writes a v5 snapshot of a sharded table: the header records
// the key column, the shard-map topology (physical partition count, active
// window, map version) and the shared epoch clock, then every physical
// partition is encoded in physical order, so global row ids survive the
// round trip.  A mid-reshard topology is saved in its normalized
// post-cutover form (shard.Table.PersistTopology).
func SaveSharded(st *shard.Table, out io.Writer) error {
	parts, activeBase, activeLen, mapVersion := st.PersistTopology()
	w := &writer{w: bufio.NewWriter(out)}
	w.bytes([]byte(Magic))
	w.u32(Version)
	w.u8(topoSharded)
	w.str(st.Name())
	w.writeSchema(st.Schema())
	w.str(st.KeyColumn())
	w.u32(uint32(len(parts)))
	w.u32(uint32(activeBase))
	w.u32(uint32(activeLen))
	w.u64(mapVersion)
	w.u64(st.Clock().Now())
	for _, s := range parts {
		if err := writePartition(w, s); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// LoadAny reads a snapshot of either topology; exactly one of the returned
// tables is non-nil on success.  It accepts the current version and the
// legacy v3, v2 and v1 formats.
func LoadAny(in io.Reader) (*table.Table, *shard.Table, error) {
	r := &reader{r: bufio.NewReader(in)}
	magic := make([]byte, 4)
	r.bytes(magic)
	if r.err != nil || string(magic) != Magic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	var version uint32
	switch v := r.u32(); v {
	case VersionV1:
		t, err := loadV1(r)
		return t, nil, err
	case VersionV2, VersionV3, VersionV4, Version:
		version = v
	default:
		return nil, nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	topo := r.u8()
	name := r.str()
	schema, err := r.readSchema()
	if err != nil {
		return nil, nil, err
	}
	// readPartition dispatches on version: v4/v5 restore the id map and GC
	// state (their per-partition encodings are identical), v3 restores
	// epochs with dense ids, v2 stamps load-time epochs from the validity
	// bitmap.
	hasClock := version >= VersionV3
	readPartition := func(t *table.Table) error {
		switch version {
		case Version, VersionV4:
			return r.readPartitionIntoV4(t, schema)
		case VersionV3:
			return r.readPartitionIntoV3(t, schema)
		default:
			return r.readPartitionInto(t, schema)
		}
	}
	switch topo {
	case topoFlat:
		t, err := table.New(name, schema)
		if err != nil {
			return nil, nil, err
		}
		if hasClock {
			clock := r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			t.Clock().AdvanceTo(clock)
		}
		if err := readPartition(t); err != nil {
			return nil, nil, err
		}
		return t, nil, nil
	case topoSharded:
		key := r.str()
		parts := int(r.u32())
		// Pre-v5 snapshots carry no shard-map state: every partition is
		// active and the map is at its initial version.
		activeBase, activeLen := 0, parts
		mapVersion := uint64(1)
		if version >= Version {
			activeBase = int(r.u32())
			activeLen = int(r.u32())
			mapVersion = r.u64()
		}
		if r.err != nil {
			return nil, nil, r.err
		}
		if parts <= 0 || parts > shard.MaxShards ||
			activeLen <= 0 || activeBase < 0 || activeBase+activeLen != parts || mapVersion == 0 {
			return nil, nil, fmt.Errorf("%w: shard topology %d parts, active [%d,%d), map v%d",
				ErrFormat, parts, activeBase, activeBase+activeLen, mapVersion)
		}
		st, err := shard.NewRestored(name, schema, key, parts, activeBase, activeLen, mapVersion)
		if err != nil {
			return nil, nil, err
		}
		if hasClock {
			clock := r.u64()
			if r.err != nil {
				return nil, nil, r.err
			}
			st.Clock().AdvanceTo(clock)
		}
		// Fill each partition directly, bypassing hash routing: the
		// partition sections already are the routed per-partition contents,
		// and direct insertion preserves every partition-local row id
		// (hence every global id).
		for i := 0; i < parts; i++ {
			if err := readPartition(st.Shard(i)); err != nil {
				return nil, nil, err
			}
		}
		// Partitions outside the active window were sealed by resharding on
		// the saved store; seal them only now that they are populated (a
		// sealed partition rejects the loader's inserts).
		for i := 0; i < activeBase; i++ {
			st.Shard(i).Seal()
		}
		return nil, st, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown topology %d", ErrFormat, topo)
	}
}

// loadV1 decodes the legacy flat format (after magic and version): name,
// schema, rows, validity, per-column values.  All rows land in the delta,
// as the v1 loader always did; merge when convenient.
func loadV1(r *reader) (*table.Table, error) {
	name := r.str()
	schema, err := r.readSchema()
	if err != nil {
		return nil, err
	}
	t, err := table.New(name, schema)
	if err != nil {
		return nil, err
	}
	rows64 := r.u64()
	if r.err != nil || rows64 > maxRows {
		return nil, fmt.Errorf("%w: row count", ErrFormat)
	}
	rows := int(rows64)
	valid, err := r.readValidity(rows)
	if err != nil {
		return nil, err
	}
	cols, err := r.readColumns(schema, rows)
	if err != nil {
		return nil, err
	}
	row := make([]any, len(schema))
	for j := 0; j < rows; j++ {
		for ci := range cols {
			row[ci] = cols[ci][j]
		}
		id, err := t.Insert(row)
		if err != nil {
			return nil, err
		}
		if valid[j/64]&(1<<uint(j%64)) == 0 {
			if err := t.Delete(id); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// SaveFile writes a flat-table snapshot to path atomically.
func SaveFile(t *table.Table, path string) error {
	return saveFileAtomic(path, func(w io.Writer) error { return Save(t, w) })
}

// SaveShardedFile writes a sharded-table snapshot to path atomically.
func SaveShardedFile(st *shard.Table, path string) error {
	return saveFileAtomic(path, func(w io.Writer) error { return SaveSharded(st, w) })
}

// saveFileAtomic writes through a temp file in the target directory and
// renames it into place, so an interrupted save never truncates or
// corrupts an existing snapshot — cmd/hyrised saves on shutdown and
// serves whatever the file holds at the next start.  The replaced
// file's permissions are preserved (0644 for a fresh file, matching
// what a plain create would produce) rather than CreateTemp's 0600.
func saveFileAtomic(path string, write func(io.Writer) error) error {
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(path); err == nil {
		mode = fi.Mode().Perm()
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".hyrise-snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Chmod(mode); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadAnyFile reads a snapshot of either topology from path.
func LoadAnyFile(path string) (*table.Table, *shard.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return LoadAny(f)
}
