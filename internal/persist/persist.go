// Package persist serializes tables to a compact binary snapshot format.
//
// HYRISE is an in-memory engine; snapshots exist for operational reasons
// (loading benchmark fixtures, the CLI's save/load).  The format stores
// each column's merged representation: dictionary values plus bit-packed
// codes for the main partition, raw values for the delta partition, and
// the row-validity bitmap.  All integers are little-endian; strings are
// length-prefixed.
//
// Layout:
//
//	magic "HYRS" | version u32 | name | ncols u32
//	per column: name | type u8
//	rows u64 | validity words
//	per column: main(dict len, values, code bits u8, code words) |
//	            delta(len, values)
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"hyrise/internal/table"
)

// Magic identifies snapshot files.
const Magic = "HYRS"

// Version is the current format version.
const Version uint32 = 1

// ErrFormat reports a malformed snapshot.
var ErrFormat = errors.New("persist: malformed snapshot")

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u8(v uint8) {
	if w.err == nil {
		w.err = w.w.WriteByte(v)
	}
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.bytes(b[:])
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.bytes(b[:])
}

func (w *writer) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.bytes([]byte(s))
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	r.err = err
	return b
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) u64() uint64 {
	var b [8]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (r *reader) bytes(b []byte) {
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b)
	}
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || n > 1<<30 {
		if r.err == nil {
			r.err = ErrFormat
		}
		return ""
	}
	b := make([]byte, n)
	r.bytes(b)
	return string(b)
}

// Save writes a snapshot of t.  The table should be quiescent; Save reads
// through the public row interface, so a concurrent merge is tolerated but
// the snapshot then reflects some point during it.
func Save(t *table.Table, out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.bytes([]byte(Magic))
	w.u32(Version)
	w.str(t.Name())
	schema := t.Schema()
	w.u32(uint32(len(schema)))
	for _, def := range schema {
		w.str(def.Name)
		w.u8(uint8(def.Type))
	}
	rows := t.Rows()
	w.u64(uint64(rows))
	// Validity bitmap.
	for i := 0; i < rows; i += 64 {
		var word uint64
		for j := 0; j < 64 && i+j < rows; j++ {
			if t.IsValid(i + j) {
				word |= 1 << uint(j)
			}
		}
		w.u64(word)
	}
	// Column values, row-major per column.  We persist materialized values
	// (not the physical encoding): the loader re-compresses on load, which
	// keeps the format independent of dictionary layout while the merge
	// regenerates identical structures anyway.
	for ci, def := range schema {
		for r := 0; r < rows; r++ {
			row, err := t.Row(r)
			if err != nil {
				return err
			}
			switch def.Type {
			case table.Uint32:
				w.u32(row[ci].(uint32))
			case table.Uint64:
				w.u64(row[ci].(uint64))
			case table.String:
				w.str(row[ci].(string))
			}
		}
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Load reads a snapshot and rebuilds the table: all rows are inserted into
// the delta and a merge is left to the caller (or the scheduler).
func Load(in io.Reader) (*table.Table, error) {
	r := &reader{r: bufio.NewReader(in)}
	magic := make([]byte, 4)
	r.bytes(magic)
	if r.err != nil || string(magic) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := r.u32(); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	name := r.str()
	ncols := int(r.u32())
	if r.err != nil || ncols <= 0 || ncols > 1<<20 {
		return nil, fmt.Errorf("%w: column count", ErrFormat)
	}
	schema := make(table.Schema, ncols)
	for i := range schema {
		schema[i].Name = r.str()
		schema[i].Type = table.Type(r.u8())
	}
	if r.err != nil {
		return nil, r.err
	}
	t, err := table.New(name, schema)
	if err != nil {
		return nil, err
	}
	rows := int(r.u64())
	if r.err != nil || rows < 0 {
		return nil, fmt.Errorf("%w: row count", ErrFormat)
	}
	valid := make([]uint64, (rows+63)/64)
	for i := range valid {
		valid[i] = r.u64()
	}
	cols := make([][]any, ncols)
	for ci, def := range schema {
		cols[ci] = make([]any, rows)
		for j := 0; j < rows; j++ {
			switch def.Type {
			case table.Uint32:
				cols[ci][j] = r.u32()
			case table.Uint64:
				cols[ci][j] = r.u64()
			case table.String:
				cols[ci][j] = r.str()
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	row := make([]any, ncols)
	for j := 0; j < rows; j++ {
		for ci := range cols {
			row[ci] = cols[ci][j]
		}
		id, err := t.Insert(row)
		if err != nil {
			return nil, err
		}
		if valid[j/64]&(1<<uint(j%64)) == 0 {
			if err := t.Delete(id); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// SaveFile writes a snapshot to path.
func SaveFile(t *table.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(t, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
