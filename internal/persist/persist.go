// Package persist serializes tables to a compact binary snapshot format.
//
// HYRISE is an in-memory engine; snapshots exist for operational reasons
// (loading benchmark fixtures, the CLI's save/load).  Snapshots store
// materialized column values (not the physical encoding): the loader
// re-inserts and re-merges, which keeps the format independent of
// dictionary layout while the merge regenerates identical structures.
// All integers are little-endian; strings are length-prefixed.
//
// Version 2 layout (current):
//
//	magic "HYRS" | version u32 = 2 | topology u8 | name
//	ncols u32 | per column: name | type u8
//	if sharded: key column | shard count u32
//	per partition (1 for flat, shard count for sharded):
//	    rows u64 | main rows u64 | validity words |
//	    per column: values (rows of u32 / u64 / string)
//
// The header records the topology, key column and shard count, so sharded
// tables round-trip: each shard is encoded as its own partition and global
// row ids (local*shards + shard) are preserved exactly.  The per-partition
// main-row count lets the loader re-merge to the saved main/delta split.
//
// Version 1 snapshots (flat tables only: no topology byte, no main-row
// count, rows reloaded into the delta) still load.
package persist

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"hyrise/internal/shard"
	"hyrise/internal/table"
)

// Magic identifies snapshot files.
const Magic = "HYRS"

// Version is the current format version.
const Version uint32 = 2

// VersionV1 is the legacy flat-only format, still readable.
const VersionV1 uint32 = 1

// Topology bytes in the v2 header.
const (
	topoFlat    uint8 = 0
	topoSharded uint8 = 1
)

// ErrFormat reports a malformed snapshot.
var ErrFormat = errors.New("persist: malformed snapshot")

// maxRows bounds the per-partition row count a snapshot may claim, so a
// corrupt header fails with ErrFormat instead of a huge allocation.
const maxRows = 1 << 34

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u8(v uint8) {
	if w.err == nil {
		w.err = w.w.WriteByte(v)
	}
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.bytes(b[:])
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.bytes(b[:])
}

func (w *writer) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.bytes([]byte(s))
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	r.err = err
	return b
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) u64() uint64 {
	var b [8]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (r *reader) bytes(b []byte) {
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b)
	}
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || n > 1<<30 {
		if r.err == nil {
			r.err = ErrFormat
		}
		return ""
	}
	b := make([]byte, n)
	r.bytes(b)
	return string(b)
}

// writeSchema emits the column definitions.
func (w *writer) writeSchema(schema table.Schema) {
	w.u32(uint32(len(schema)))
	for _, def := range schema {
		w.str(def.Name)
		w.u8(uint8(def.Type))
	}
}

// readSchema parses the column definitions.
func (r *reader) readSchema() (table.Schema, error) {
	ncols := int(r.u32())
	if r.err != nil || ncols <= 0 || ncols > 1<<20 {
		return nil, fmt.Errorf("%w: column count", ErrFormat)
	}
	schema := make(table.Schema, ncols)
	for i := range schema {
		schema[i].Name = r.str()
		schema[i].Type = table.Type(r.u8())
	}
	return schema, r.err
}

// maxPrealloc caps how many entries a loading slice pre-allocates before
// any data is decoded.  The claimed row count is only trusted as capacity
// up to this bound; beyond it slices grow with the data actually read, so
// a corrupt header claiming billions of rows fails on the first missing
// byte instead of allocating gigabytes up front.
const maxPrealloc = 1 << 20

// readValidity decodes the validity bitmap words for rows, failing fast on
// short input.
func (r *reader) readValidity(rows int) ([]uint64, error) {
	words := (rows + 63) / 64
	valid := make([]uint64, 0, min(words, maxPrealloc))
	for i := 0; i < words; i++ {
		w := r.u64()
		if r.err != nil {
			return nil, r.err
		}
		valid = append(valid, w)
	}
	return valid, nil
}

// readColumns decodes every column's values for rows, failing fast on
// short input.
func (r *reader) readColumns(schema table.Schema, rows int) ([][]any, error) {
	cols := make([][]any, len(schema))
	for ci, def := range schema {
		col := make([]any, 0, min(rows, maxPrealloc))
		for j := 0; j < rows; j++ {
			var v any
			switch def.Type {
			case table.Uint32:
				v = r.u32()
			case table.Uint64:
				v = r.u64()
			case table.String:
				v = r.str()
			}
			if r.err != nil {
				return nil, r.err
			}
			col = append(col, v)
		}
		cols[ci] = col
	}
	return cols, nil
}

// writePartition encodes one physical table: row counts, the main/delta
// boundary, the validity bitmap and every column's materialized values.
// The table should be quiescent; a concurrent merge is tolerated but the
// snapshot then reflects some point during it.
func writePartition(w *writer, t *table.Table) error {
	rows := t.Rows()
	mainRows := t.MainRows()
	if mainRows > rows {
		mainRows = rows
	}
	w.u64(uint64(rows))
	w.u64(uint64(mainRows))
	for i := 0; i < rows; i += 64 {
		var word uint64
		for j := 0; j < 64 && i+j < rows; j++ {
			if t.IsValid(i + j) {
				word |= 1 << uint(j)
			}
		}
		w.u64(word)
	}
	for _, def := range t.Schema() {
		switch def.Type {
		case table.Uint32:
			h, err := table.ColumnOf[uint32](t, def.Name)
			if err != nil {
				return err
			}
			for r := 0; r < rows; r++ {
				v, err := h.Get(r)
				if err != nil {
					return err
				}
				w.u32(v)
			}
		case table.Uint64:
			h, err := table.ColumnOf[uint64](t, def.Name)
			if err != nil {
				return err
			}
			for r := 0; r < rows; r++ {
				v, err := h.Get(r)
				if err != nil {
					return err
				}
				w.u64(v)
			}
		case table.String:
			h, err := table.ColumnOf[string](t, def.Name)
			if err != nil {
				return err
			}
			for r := 0; r < rows; r++ {
				v, err := h.Get(r)
				if err != nil {
					return err
				}
				w.str(v)
			}
		}
	}
	return w.err
}

// readPartitionInto decodes one partition into the (empty) table t,
// restoring the saved main/delta split: the first mainRows rows are
// inserted and merged into the main partitions, the rest stay in the
// delta.  Row ids are assigned in insertion order, so they match the
// saved table exactly.
func (r *reader) readPartitionInto(t *table.Table, schema table.Schema) error {
	rows64 := r.u64()
	mainRows64 := r.u64()
	if r.err != nil || rows64 > maxRows || mainRows64 > rows64 {
		return fmt.Errorf("%w: row counts", ErrFormat)
	}
	rows, mainRows := int(rows64), int(mainRows64)
	valid, err := r.readValidity(rows)
	if err != nil {
		return err
	}
	cols, err := r.readColumns(schema, rows)
	if err != nil {
		return err
	}
	insert := func(from, to int) error {
		if from >= to {
			return nil
		}
		batch := make([][]any, 0, to-from)
		for j := from; j < to; j++ {
			row := make([]any, len(schema))
			for ci := range cols {
				row[ci] = cols[ci][j]
			}
			batch = append(batch, row)
		}
		ids, err := t.InsertRows(batch)
		if err != nil {
			return err
		}
		for k, id := range ids {
			j := from + k
			if valid[j/64]&(1<<uint(j%64)) == 0 {
				if err := t.Delete(id); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := insert(0, mainRows); err != nil {
		return err
	}
	if mainRows > 0 {
		if _, err := t.Merge(context.Background(), table.MergeOptions{}); err != nil {
			return err
		}
	}
	return insert(mainRows, rows)
}

// Save writes a v2 snapshot of a flat table.
func Save(t *table.Table, out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.bytes([]byte(Magic))
	w.u32(Version)
	w.u8(topoFlat)
	w.str(t.Name())
	w.writeSchema(t.Schema())
	if err := writePartition(w, t); err != nil {
		return err
	}
	return w.w.Flush()
}

// SaveSharded writes a v2 snapshot of a sharded table: the header records
// the key column and shard count, then every shard is encoded as its own
// partition, so global row ids survive the round trip.
func SaveSharded(st *shard.Table, out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.bytes([]byte(Magic))
	w.u32(Version)
	w.u8(topoSharded)
	w.str(st.Name())
	w.writeSchema(st.Schema())
	w.str(st.KeyColumn())
	w.u32(uint32(st.NumShards()))
	for _, s := range st.Shards() {
		if err := writePartition(w, s); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// LoadAny reads a snapshot of either topology; exactly one of the returned
// tables is non-nil on success.  It accepts the current version and the
// legacy v1 flat format.
func LoadAny(in io.Reader) (*table.Table, *shard.Table, error) {
	r := &reader{r: bufio.NewReader(in)}
	magic := make([]byte, 4)
	r.bytes(magic)
	if r.err != nil || string(magic) != Magic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	switch v := r.u32(); v {
	case VersionV1:
		t, err := loadV1(r)
		return t, nil, err
	case Version:
	default:
		return nil, nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	topo := r.u8()
	name := r.str()
	schema, err := r.readSchema()
	if err != nil {
		return nil, nil, err
	}
	switch topo {
	case topoFlat:
		t, err := table.New(name, schema)
		if err != nil {
			return nil, nil, err
		}
		if err := r.readPartitionInto(t, schema); err != nil {
			return nil, nil, err
		}
		return t, nil, nil
	case topoSharded:
		key := r.str()
		shards := int(r.u32())
		if r.err != nil {
			return nil, nil, r.err
		}
		if shards <= 0 || shards > shard.MaxShards {
			return nil, nil, fmt.Errorf("%w: shard count %d", ErrFormat, shards)
		}
		st, err := shard.New(name, schema, key, shards)
		if err != nil {
			return nil, nil, err
		}
		// Fill each shard directly, bypassing hash routing: the partition
		// sections already are the routed per-shard contents, and direct
		// insertion preserves every shard-local row id (hence every
		// global id).
		for i := 0; i < shards; i++ {
			if err := r.readPartitionInto(st.Shard(i), schema); err != nil {
				return nil, nil, err
			}
		}
		return nil, st, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown topology %d", ErrFormat, topo)
	}
}

// loadV1 decodes the legacy flat format (after magic and version): name,
// schema, rows, validity, per-column values.  All rows land in the delta,
// as the v1 loader always did; merge when convenient.
func loadV1(r *reader) (*table.Table, error) {
	name := r.str()
	schema, err := r.readSchema()
	if err != nil {
		return nil, err
	}
	t, err := table.New(name, schema)
	if err != nil {
		return nil, err
	}
	rows64 := r.u64()
	if r.err != nil || rows64 > maxRows {
		return nil, fmt.Errorf("%w: row count", ErrFormat)
	}
	rows := int(rows64)
	valid, err := r.readValidity(rows)
	if err != nil {
		return nil, err
	}
	cols, err := r.readColumns(schema, rows)
	if err != nil {
		return nil, err
	}
	row := make([]any, len(schema))
	for j := 0; j < rows; j++ {
		for ci := range cols {
			row[ci] = cols[ci][j]
		}
		id, err := t.Insert(row)
		if err != nil {
			return nil, err
		}
		if valid[j/64]&(1<<uint(j%64)) == 0 {
			if err := t.Delete(id); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// SaveFile writes a flat-table snapshot to path.
func SaveFile(t *table.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(t, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SaveShardedFile writes a sharded-table snapshot to path.
func SaveShardedFile(st *shard.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveSharded(st, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadAnyFile reads a snapshot of either topology from path.
func LoadAnyFile(path string) (*table.Table, *shard.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return LoadAny(f)
}
