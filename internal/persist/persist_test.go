package persist

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"hyrise/internal/shard"
	"hyrise/internal/table"
)

func buildTable(t *testing.T, rows int) *table.Table {
	t.Helper()
	tb, err := table.New("orders", table.Schema{
		{Name: "id", Type: table.Uint64},
		{Name: "qty", Type: table.Uint32},
		{Name: "sku", Type: table.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < rows; i++ {
		_, err := tb.Insert([]any{uint64(i), uint32(rng.Intn(50)), "sku-" + string(rune('a'+i%26))})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func equalTables(t *testing.T, a, b *table.Table) {
	t.Helper()
	if a.Rows() != b.Rows() || a.ValidRows() != b.ValidRows() {
		t.Fatalf("rows %d/%d vs %d/%d", a.Rows(), a.ValidRows(), b.Rows(), b.ValidRows())
	}
	if a.Name() != b.Name() {
		t.Fatalf("names %q %q", a.Name(), b.Name())
	}
	// Stable ids are not dense once GC has retired some; both sides must
	// agree on the id list exactly.
	idsA, idsB := a.RowIDs(), b.RowIDs()
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatalf("row id %d: %d vs %d", i, idsA[i], idsB[i])
		}
	}
	if a.NextRowID() != b.NextRowID() || a.RetiredRows() != b.RetiredRows() {
		t.Fatalf("id state %d/%d vs %d/%d",
			a.NextRowID(), a.RetiredRows(), b.NextRowID(), b.RetiredRows())
	}
	for _, r := range idsA {
		if a.IsValid(r) != b.IsValid(r) {
			t.Fatalf("validity differs at %d", r)
		}
		ra, err := a.Row(r)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Row(r)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("row %d col %d: %v vs %v", r, i, ra[i], rb[i])
			}
		}
	}
}

// loadFlat reads a snapshot through LoadAny and requires a flat table.
func loadFlat(t *testing.T, r io.Reader) (*table.Table, error) {
	t.Helper()
	ft, st, err := LoadAny(r)
	if err != nil {
		return nil, err
	}
	if st != nil {
		t.Fatal("expected a flat snapshot")
	}
	return ft, nil
}

func loadFlatFile(t *testing.T, path string) (*table.Table, error) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return loadFlat(t, f)
}

func TestRoundTrip(t *testing.T) {
	tb := buildTable(t, 500)
	tb.Delete(3)
	tb.Update(7, map[string]any{"qty": uint32(99)})
	var buf bytes.Buffer
	if err := Save(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := loadFlat(t, &buf)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)
}

func TestRoundTripAfterMerge(t *testing.T) {
	tb := buildTable(t, 300)
	if _, err := tb.Merge(context.Background(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	// More rows into the fresh delta: snapshot spans main and delta.
	for i := 0; i < 50; i++ {
		tb.Insert([]any{uint64(1000 + i), uint32(1), "x"})
	}
	var buf bytes.Buffer
	if err := Save(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := loadFlat(t, &buf)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)
	// The loaded table merges cleanly.
	if _, err := got.Merge(context.Background(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)
}

func TestFileRoundTrip(t *testing.T) {
	tb := buildTable(t, 100)
	path := filepath.Join(t.TempDir(), "snap.hyr")
	if err := SaveFile(tb, path); err != nil {
		t.Fatal(err)
	}
	got, err := loadFlatFile(t, path)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)
}

// TestMainDeltaSplitRestored checks that the v2 loader re-merges to the
// saved main/delta boundary instead of leaving everything in the delta.
func TestMainDeltaSplitRestored(t *testing.T) {
	tb := buildTable(t, 300)
	if _, err := tb.Merge(context.Background(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tb.Insert([]any{uint64(1000 + i), uint32(1), "x"})
	}
	tb.Delete(2)   // invalidation in the main partition
	tb.Delete(310) // invalidation in the delta
	var buf bytes.Buffer
	if err := Save(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := loadFlat(t, &buf)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)
	if got.MainRows() != tb.MainRows() || got.DeltaRows() != tb.DeltaRows() {
		t.Fatalf("split main=%d delta=%d want main=%d delta=%d",
			got.MainRows(), got.DeltaRows(), tb.MainRows(), tb.DeltaRows())
	}
}

// writeV1 encodes tb in the legacy v1 format (flat, no topology byte, no
// main-row count, values row-major per column) for backward-compat tests.
func writeV1(t *testing.T, tb *table.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := &writer{w: bufio.NewWriter(&buf)}
	w.bytes([]byte(Magic))
	w.u32(VersionV1)
	w.str(tb.Name())
	schema := tb.Schema()
	w.u32(uint32(len(schema)))
	for _, def := range schema {
		w.str(def.Name)
		w.u8(uint8(def.Type))
	}
	rows := tb.Rows()
	w.u64(uint64(rows))
	for i := 0; i < rows; i += 64 {
		var word uint64
		for j := 0; j < 64 && i+j < rows; j++ {
			if tb.IsValid(i + j) {
				word |= 1 << uint(j)
			}
		}
		w.u64(word)
	}
	for ci, def := range schema {
		for r := 0; r < rows; r++ {
			row, err := tb.Row(r)
			if err != nil {
				t.Fatal(err)
			}
			switch def.Type {
			case table.Uint32:
				w.u32(row[ci].(uint32))
			case table.Uint64:
				w.u64(row[ci].(uint64))
			case table.String:
				w.str(row[ci].(string))
			}
		}
	}
	if w.err != nil {
		t.Fatal(w.err)
	}
	if err := w.w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestV1BackwardCompat loads a legacy v1 snapshot through LoadAny and
// checks full content equality.
func TestV1BackwardCompat(t *testing.T) {
	tb := buildTable(t, 200)
	tb.Delete(5)
	tb.Update(9, map[string]any{"qty": uint32(77)})
	data := writeV1(t, tb)

	got, err := loadFlat(t, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)

	ft, st, err := LoadAny(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if st != nil || ft == nil {
		t.Fatal("v1 snapshot should load as a flat table")
	}
	equalTables(t, tb, ft)
}

func buildSharded(t *testing.T, shards int) *shard.Table {
	t.Helper()
	st, err := shard.New("orders", table.Schema{
		{Name: "id", Type: table.Uint64},
		{Name: "qty", Type: table.Uint32},
		{Name: "sku", Type: table.String},
	}, "id", shards)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestShardedRoundTrip saves and reloads a sharded table spanning main and
// delta partitions, checking topology, global row ids, invalidations and
// the per-shard main/delta split all survive.
func TestShardedRoundTrip(t *testing.T) {
	st := buildSharded(t, 4)
	var gids []int
	for i := 0; i < 400; i++ {
		gid, err := st.Insert([]any{uint64(i), uint32(i % 9), "sku-" + string(rune('a'+i%26))})
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
	}
	if err := st.Delete(gids[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Update(gids[7], map[string]any{"qty": uint32(99)}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MergeAll(context.Background(), shard.MergeAllOptions{}); err != nil {
		t.Fatal(err)
	}
	// Fresh delta rows so the snapshot spans main and delta in every shard.
	for i := 1000; i < 1100; i++ {
		if _, err := st.Insert([]any{uint64(i), uint32(2), "y"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Delete(gids[11]); err != nil { // invalidation in a merged main
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveSharded(st, &buf); err != nil {
		t.Fatal(err)
	}
	ft, got, err := LoadAny(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != nil || got == nil {
		t.Fatal("sharded snapshot should load as a sharded table")
	}
	if got.Name() != st.Name() || got.NumShards() != st.NumShards() || got.KeyColumn() != st.KeyColumn() {
		t.Fatalf("topology: %q/%d/%q want %q/%d/%q",
			got.Name(), got.NumShards(), got.KeyColumn(),
			st.Name(), st.NumShards(), st.KeyColumn())
	}
	for i := 0; i < st.NumShards(); i++ {
		a, b := st.Shard(i), got.Shard(i)
		equalTables(t, a, b)
		if a.MainRows() != b.MainRows() || a.DeltaRows() != b.DeltaRows() {
			t.Fatalf("shard %d split: main=%d delta=%d want main=%d delta=%d",
				i, b.MainRows(), b.DeltaRows(), a.MainRows(), a.DeltaRows())
		}
	}
	// Global row ids are preserved: every saved row reads back identically
	// under its old gid, including validity — and gids reclaimed by the
	// pre-save merge stay reclaimed after the reload.
	for _, gid := range gids {
		want, werr := st.Row(gid)
		have, herr := got.Row(gid)
		if (werr == nil) != (herr == nil) {
			t.Fatalf("gid %d: error diverged: %v vs %v", gid, werr, herr)
		}
		if werr != nil {
			continue // reclaimed on both sides
		}
		for c := range want {
			if want[c] != have[c] {
				t.Fatalf("gid %d col %d: %v want %v", gid, c, have[c], want[c])
			}
		}
		if st.IsValid(gid) != got.IsValid(gid) {
			t.Fatalf("gid %d validity diverged", gid)
		}
	}
	// Lookups return the same global ids.
	ha, err := shard.ColumnOf[uint64](st, "id")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := shard.ColumnOf[uint64](got, "id")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{0, 7, 42, 399, 1050} {
		a, b := ha.Lookup(k), hb.Lookup(k)
		if len(a) != len(b) {
			t.Fatalf("lookup(%d): %v want %v", k, b, a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("lookup(%d): %v want %v", k, b, a)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE00000000"),
		"truncated": append([]byte(Magic), 1, 0, 0, 0),
	}
	for name, data := range cases {
		if _, _, err := LoadAny(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestLoadRejectsLyingRowCount feeds truncated snapshots whose headers
// claim huge row counts: the loader must fail promptly on the missing
// data instead of pre-allocating per the claimed count.
func TestLoadRejectsLyingRowCount(t *testing.T) {
	header := func(version uint32, rows uint64, withMain bool) []byte {
		var buf bytes.Buffer
		w := &writer{w: bufio.NewWriter(&buf)}
		w.bytes([]byte(Magic))
		w.u32(version)
		if version >= 2 {
			w.u8(topoFlat)
		}
		w.str("t")
		w.u32(1)
		w.str("k")
		w.u8(uint8(table.Uint64))
		if version >= 3 {
			w.u64(1) // clock
		}
		w.u64(rows)
		if withMain {
			w.u64(0)
		}
		w.w.Flush()
		return buf.Bytes()
	}
	for name, data := range map[string][]byte{
		"v3 rows over bound": header(Version, 1<<62, true),
		"v3 rows, no data":   header(Version, 1<<30, true),
		"v2 rows over bound": header(VersionV2, 1<<62, true),
		"v2 rows, no data":   header(VersionV2, 1<<30, true),
		"v1 rows over bound": header(VersionV1, 1<<62, false),
		"v1 rows, no data":   header(VersionV1, 1<<30, false),
	} {
		if _, _, err := LoadAny(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// writeV2 encodes tb in the v2 format (validity bitmap, no epochs, no
// clock) for backward-compat tests.
func writeV2(t *testing.T, topo uint8, name string, schema table.Schema, key string, parts []*table.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := &writer{w: bufio.NewWriter(&buf)}
	w.bytes([]byte(Magic))
	w.u32(VersionV2)
	w.u8(topo)
	w.str(name)
	w.writeSchema(schema)
	if topo == topoSharded {
		w.str(key)
		w.u32(uint32(len(parts)))
	}
	for _, tb := range parts {
		rows := tb.Rows()
		mainRows := tb.MainRows()
		w.u64(uint64(rows))
		w.u64(uint64(mainRows))
		for i := 0; i < rows; i += 64 {
			var word uint64
			for j := 0; j < 64 && i+j < rows; j++ {
				if tb.IsValid(i + j) {
					word |= 1 << uint(j)
				}
			}
			w.u64(word)
		}
		for ci, def := range schema {
			for r := 0; r < rows; r++ {
				row, err := tb.Row(r)
				if err != nil {
					t.Fatal(err)
				}
				switch def.Type {
				case table.Uint32:
					w.u32(row[ci].(uint32))
				case table.Uint64:
					w.u64(row[ci].(uint64))
				case table.String:
					w.str(row[ci].(string))
				}
			}
		}
	}
	if w.err != nil {
		t.Fatal(w.err)
	}
	if err := w.w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestV2BackwardCompat loads v2 snapshots (flat and sharded) through
// LoadAny and checks full content equality, including the restored
// main/delta split.
func TestV2BackwardCompat(t *testing.T) {
	t.Run("flat", func(t *testing.T) {
		tb := buildTable(t, 200)
		if _, err := tb.Merge(context.Background(), table.MergeOptions{}); err != nil {
			t.Fatal(err)
		}
		tb.Insert([]any{uint64(900), uint32(1), "x"})
		tb.Delete(5)
		tb.Update(9, map[string]any{"qty": uint32(77)})
		data := writeV2(t, topoFlat, tb.Name(), tb.Schema(), "", []*table.Table{tb})
		got, err := loadFlat(t, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		equalTables(t, tb, got)
		if got.MainRows() != tb.MainRows() || got.DeltaRows() != tb.DeltaRows() {
			t.Fatalf("split main=%d delta=%d want main=%d delta=%d",
				got.MainRows(), got.DeltaRows(), tb.MainRows(), tb.DeltaRows())
		}
	})
	t.Run("sharded", func(t *testing.T) {
		st := buildSharded(t, 4)
		var gids []int
		for i := 0; i < 200; i++ {
			gid, err := st.Insert([]any{uint64(i), uint32(i % 7), "s"})
			if err != nil {
				t.Fatal(err)
			}
			gids = append(gids, gid)
		}
		st.Delete(gids[3])
		data := writeV2(t, topoSharded, st.Name(), st.Schema(), st.KeyColumn(), st.Shards())
		ft, got, err := LoadAny(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if ft != nil || got == nil {
			t.Fatal("v2 sharded snapshot should load as a sharded table")
		}
		if got.NumShards() != st.NumShards() || got.KeyColumn() != st.KeyColumn() {
			t.Fatalf("topology %d/%q", got.NumShards(), got.KeyColumn())
		}
		for i := range st.Shards() {
			equalTables(t, st.Shard(i), got.Shard(i))
		}
	})
}

// TestEpochRoundTrip checks the v3-only guarantees: per-row begin/end
// epochs and the epoch clock survive the round trip, so a snapshot taken
// on the loaded store sees exactly what one taken pre-save would have.
func TestEpochRoundTrip(t *testing.T) {
	tb := buildTable(t, 50)
	tb.Snapshot() // advance the clock so rows land in distinct epochs
	tb.Delete(3)
	tb.Update(7, map[string]any{"qty": uint32(99)})
	tb.Snapshot()
	tb.Insert([]any{uint64(1000), uint32(1), "late"})

	wantBegin, wantEnd := tb.RowEpochs()
	var buf bytes.Buffer
	if err := Save(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := loadFlat(t, &buf)
	if err != nil {
		t.Fatal(err)
	}
	gotBegin, gotEnd := got.RowEpochs()
	for i := range wantBegin {
		if wantBegin[i] != gotBegin[i] || wantEnd[i] != gotEnd[i] {
			t.Fatalf("row %d epochs %d/%d want %d/%d",
				i, gotBegin[i], gotEnd[i], wantBegin[i], wantEnd[i])
		}
	}
	if got.Clock().Now() != tb.Clock().Now() {
		t.Fatalf("clock %d want %d", got.Clock().Now(), tb.Clock().Now())
	}
	// A historical view reads identically on both: row 3 was alive at the
	// first captured epoch and dead afterwards.
	old := table.ViewAt(1)
	if !got.VisibleAt(old, 3) || got.VisibleAt(table.Latest(), 3) {
		t.Fatal("loaded table lost the pre-delete history")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{99, 0, 0, 0}) // version 99
	_, _, err := LoadAny(&buf)
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("err=%v", err)
	}
}

func TestEmptyTable(t *testing.T) {
	tb, _ := table.New("empty", table.Schema{{Name: "v", Type: table.Uint64}})
	var buf bytes.Buffer
	if err := Save(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := loadFlat(t, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 0 || got.Name() != "empty" {
		t.Fatalf("rows=%d name=%q", got.Rows(), got.Name())
	}
}
