package persist

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"hyrise/internal/table"
)

func buildTable(t *testing.T, rows int) *table.Table {
	t.Helper()
	tb, err := table.New("orders", table.Schema{
		{Name: "id", Type: table.Uint64},
		{Name: "qty", Type: table.Uint32},
		{Name: "sku", Type: table.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < rows; i++ {
		_, err := tb.Insert([]any{uint64(i), uint32(rng.Intn(50)), "sku-" + string(rune('a'+i%26))})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func equalTables(t *testing.T, a, b *table.Table) {
	t.Helper()
	if a.Rows() != b.Rows() || a.ValidRows() != b.ValidRows() {
		t.Fatalf("rows %d/%d vs %d/%d", a.Rows(), a.ValidRows(), b.Rows(), b.ValidRows())
	}
	if a.Name() != b.Name() {
		t.Fatalf("names %q %q", a.Name(), b.Name())
	}
	for r := 0; r < a.Rows(); r++ {
		if a.IsValid(r) != b.IsValid(r) {
			t.Fatalf("validity differs at %d", r)
		}
		ra, err := a.Row(r)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Row(r)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("row %d col %d: %v vs %v", r, i, ra[i], rb[i])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tb := buildTable(t, 500)
	tb.Delete(3)
	tb.Update(7, map[string]any{"qty": uint32(99)})
	var buf bytes.Buffer
	if err := Save(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)
}

func TestRoundTripAfterMerge(t *testing.T) {
	tb := buildTable(t, 300)
	if _, err := tb.Merge(context.Background(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	// More rows into the fresh delta: snapshot spans main and delta.
	for i := 0; i < 50; i++ {
		tb.Insert([]any{uint64(1000 + i), uint32(1), "x"})
	}
	var buf bytes.Buffer
	if err := Save(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)
	// The loaded table merges cleanly.
	if _, err := got.Merge(context.Background(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)
}

func TestFileRoundTrip(t *testing.T) {
	tb := buildTable(t, 100)
	path := filepath.Join(t.TempDir(), "snap.hyr")
	if err := SaveFile(tb, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tb, got)
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE00000000"),
		"truncated": append([]byte(Magic), 1, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{99, 0, 0, 0}) // version 99
	_, err := Load(&buf)
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("err=%v", err)
	}
}

func TestEmptyTable(t *testing.T) {
	tb, _ := table.New("empty", table.Schema{{Name: "v", Type: table.Uint64}})
	var buf bytes.Buffer
	if err := Save(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 0 || got.Name() != "empty" {
		t.Fatalf("rows=%d name=%q", got.Rows(), got.Name())
	}
}
