package server_test

import (
	"context"
	"errors"
	"net"
	"testing"

	"hyrise/client"
	"hyrise/internal/server"
	"hyrise/internal/table"
)

// startServerOpts is startServer with explicit server options.
func startServerOpts(t *testing.T, st server.Store, opts server.Options) (*client.Client, *server.Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	c, err := client.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, srv
}

// TestSnapshotRegistryBounded: the registry refuses captures past
// MaxSnapshots with the typed error, and frees a slot on release — a
// client capturing in a loop can no longer grow server state (or pin GC)
// without bound.
func TestSnapshotRegistryBounded(t *testing.T) {
	flat, err := table.New("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	c, srv := startServerOpts(t, flat, server.Options{MaxSnapshots: 2})

	s1, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot(); !errors.Is(err, client.ErrTooManySnapshots) {
		t.Fatalf("third capture: %v want ErrTooManySnapshots", err)
	}
	if srv.SnapshotCount() != 2 {
		t.Fatalf("registry holds %d, want 2", srv.SnapshotCount())
	}
	if err := c.Release(s1); err != nil {
		t.Fatal(err)
	}
	s3, err := c.Snapshot()
	if err != nil {
		t.Fatalf("capture after release: %v", err)
	}
	if err := c.Release(s3); err != nil {
		t.Fatal(err)
	}
	// Released tokens are gone for good.
	if _, err := c.ValidRowsAt(s3); !errors.Is(err, client.ErrBadSnapshot) {
		t.Fatalf("read on released token: %v want ErrBadSnapshot", err)
	}
}

// TestSnapshotTokenPinsGC: a registered token pins the GC watermark — the
// merge keeps every version the snapshot can see — and releasing the token
// (or dropping the whole registry) lets the next merge reclaim them.
func TestSnapshotTokenPinsGC(t *testing.T) {
	flat, err := table.New("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	c, srv := startServerOpts(t, flat, server.Options{})

	const n = 40
	ids := make([]int, n)
	for i := range ids {
		if ids[i], err = c.Insert([]any{uint64(i), uint32(i), "p"}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if ids[i], err = c.Update(ids[i], map[string]any{"qty": uint32(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := flat.Merge(context.Background(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	// The token's pin held: all n superseded versions survive, and the
	// pinned read still sees its full original set.
	if flat.Rows() != 2*n {
		t.Fatalf("rows=%d want %d (pin ignored)", flat.Rows(), 2*n)
	}
	if got, err := c.ValidRowsAt(snap); err != nil || got != n {
		t.Fatalf("pinned read sees %d (%v), want %d", got, err, n)
	}

	// ReleaseAllSnapshots (the shutdown path) drops the pin; the next
	// merge reclaims all superseded versions.
	if got := srv.ReleaseAllSnapshots(); got != 1 {
		t.Fatalf("released %d, want 1", got)
	}
	if _, err := flat.Merge(context.Background(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if flat.Rows() != n || flat.RetiredRows() != n {
		t.Fatalf("rows=%d retired=%d want %d/%d", flat.Rows(), flat.RetiredRows(), n, n)
	}
	// The stale token is gone from the registry.
	if _, err := c.ValidRowsAt(snap); !errors.Is(err, client.ErrBadSnapshot) {
		t.Fatalf("read on dropped token: %v want ErrBadSnapshot", err)
	}
}
