package server_test

import (
	"sync"
	"testing"
	"time"

	"hyrise/client"
	"hyrise/internal/sched"
	"hyrise/internal/shard"
	"hyrise/internal/table"
)

func stressSchema() table.Schema {
	return table.Schema{
		{Name: "k", Type: table.Uint64},  // shard key; updates move rows across shards
		{Name: "id", Type: table.Uint64}, // stable logical identity
		{Name: "v", Type: table.Uint64},  // checksum binding id and k
	}
}

func stressChecksum(id, k uint64) uint64 { return id*1_000_000_000 + k }

// TestServerStress is the server-boundary version of the snapshot stress
// test, run under -race in CI: N writer clients do mixed inserts,
// key-moving updates and deletes against a 4-shard store while the merge
// scheduler compacts underneath and M reader clients capture snapshot
// tokens and assert every token stays internally consistent — each
// stable id visible exactly once with an intact checksum, aggregates
// repeatable under the same token, and the visible row count matching
// the scan.
func TestServerStress(t *testing.T) {
	const (
		shards    = 4
		writers   = 4
		readers   = 3
		stableIDs = 120 // updated forever, never deleted
		dyingIDs  = 40  // deleted mid-run
		rounds    = 60  // update rounds per writer
	)
	st, err := shard.New("stress", stressSchema(), "k", shards)
	if err != nil {
		t.Fatal(err)
	}

	// The background scheduler keeps delta fractions bounded while the
	// traffic flows — the daemon's serving configuration in miniature.
	targets := make([]sched.MergeTable, 0, shards)
	for _, s := range st.Shards() {
		targets = append(targets, s)
	}
	ms := sched.NewMulti(targets, sched.Config{Fraction: 0.01, Interval: time.Millisecond})
	if err := ms.Start(); err != nil {
		t.Fatal(err)
	}
	defer ms.Stop()

	seedClient, _, addr := startServer(t, st)

	// Seed through the network (batched), tracking each id's current gid.
	total := stableIDs + dyingIDs
	rows := make([][]any, total)
	for id := 0; id < total; id++ {
		k := uint64(id * 37)
		rows[id] = []any{k, uint64(id), stressChecksum(uint64(id), k)}
	}
	gids, err := seedClient.InsertBatch(rows)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex // guards gids across writers (disjoint ranges, but deletes share)
	getGid := func(id int) int {
		mu.Lock()
		defer mu.Unlock()
		return gids[id]
	}
	setGid := func(id, gid int) {
		mu.Lock()
		defer mu.Unlock()
		gids[id] = gid
	}

	var wg, writerWG sync.WaitGroup
	stop := make(chan struct{})

	// Writers: each its own pooled client, disjoint id ranges,
	// key-changing updates (cross-shard moves) plus mid-run deletes.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Errorf("writer %d dial: %v", w, err)
				return
			}
			defer c.Close()
			lo, hi := w*stableIDs/writers, (w+1)*stableIDs/writers
			dlo := stableIDs + w*dyingIDs/writers
			dhi := stableIDs + (w+1)*dyingIDs/writers
			seq := uint64(w)
			for r := 0; r < rounds; r++ {
				for id := lo; id < hi; id++ {
					seq = seq*6364136223846793005 + 1442695040888963407
					nk := seq % (1 << 16)
					ngid, err := c.Update(getGid(id), map[string]any{
						"k": nk, "v": stressChecksum(uint64(id), nk),
					})
					if err != nil {
						t.Errorf("writer %d id %d: %v", w, id, err)
						return
					}
					setGid(id, ngid)
				}
				if r == rounds/2 {
					for id := dlo; id < dhi; id++ {
						if err := c.Delete(getGid(id)); err != nil {
							t.Errorf("writer %d delete id %d: %v", w, id, err)
							return
						}
					}
				}
				// A fresh insert per round keeps the delta growing so the
				// scheduler has real work; ids beyond `total` are noise
				// the readers ignore.
				if _, err := c.Insert([]any{seq % 997, uint64(total) + seq%1_000_000, uint64(0)}); err != nil {
					t.Errorf("writer %d insert: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Readers: capture a token, verify internal consistency, release.
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Errorf("reader %d dial: %v", rd, err)
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := c.Snapshot()
				if err != nil {
					t.Errorf("reader %d snapshot: %v", rd, err)
					return
				}
				// One scan returns ids and full rows (ids collected under
				// the scan, rows read after — the server-side re-entrancy
				// fix is load-bearing here).
				_, visRows, err := c.ScanRowsAt(snap, "id", 0)
				if err != nil {
					t.Errorf("reader %d scan: %v", rd, err)
					return
				}
				seen := make(map[uint64]int)
				for _, row := range visRows {
					k, id, v := row[0].(uint64), row[1].(uint64), row[2].(uint64)
					if id < uint64(total) && v != stressChecksum(id, k) {
						t.Errorf("reader %d: torn row under snap %d: id=%d k=%d v=%d",
							rd, snap, id, k, v)
						return
					}
					seen[id]++
				}
				for id := uint64(0); id < stableIDs; id++ {
					if seen[id] != 1 {
						t.Errorf("reader %d: stable id %d visible %d times under snap %d, want 1",
							rd, id, seen[id], snap)
						return
					}
				}
				for id := uint64(stableIDs); id < uint64(total); id++ {
					if seen[id] > 1 {
						t.Errorf("reader %d: dying id %d visible %d times under snap %d",
							rd, id, seen[id], snap)
						return
					}
				}
				s1, err1 := c.SumAt(snap, "v")
				s2, err2 := c.SumAt(snap, "v")
				if err1 != nil || err2 != nil || s1 != s2 {
					t.Errorf("reader %d: sum not repeatable under snap %d: %d/%d (%v/%v)",
						rd, snap, s1, s2, err1, err2)
					return
				}
				if n, err := c.ValidRowsAt(snap); err != nil || n != len(visRows) {
					t.Errorf("reader %d: ValidRowsAt=%d scanned=%d (%v)", rd, n, len(visRows), err)
					return
				}
				if err := c.Release(snap); err != nil {
					t.Errorf("reader %d release: %v", rd, err)
					return
				}
			}
		}(rd)
	}

	writerWG.Wait()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := ms.LastErr(); err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	if ms.Merges() == 0 {
		t.Error("scheduler never merged during the stress run")
	}

	// Final ground truth through the network: stable ids each have
	// exactly one current row, dying ids none.
	for id := 0; id < stableIDs; id++ {
		if got, err := seedClient.Lookup("id", uint64(id)); err != nil || len(got) != 1 {
			t.Fatalf("final: stable id %d has %d current rows (%v)", id, len(got), err)
		}
	}
	for id := stableIDs; id < total; id++ {
		if got, _ := seedClient.Lookup("id", uint64(id)); len(got) != 0 {
			t.Fatalf("final: dying id %d still has %d rows", id, len(got))
		}
	}
}
