package server_test

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"hyrise/client"
	"hyrise/internal/server"
	"hyrise/internal/shard"
	"hyrise/internal/table"
)

// testLogWriter adapts t.Logf so server/replica slog output lands in the
// test log.
type testLogWriter struct{ t testing.TB }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

func testLogger(t testing.TB) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

func salesSchema() table.Schema {
	return table.Schema{
		{Name: "order_id", Type: table.Uint64},
		{Name: "qty", Type: table.Uint32},
		{Name: "product", Type: table.String},
	}
}

// startServer serves st on a loopback listener and returns a connected
// client; everything is torn down with the test.
func startServer(t testing.TB, st server.Store) (*client.Client, *server.Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(st, server.Options{Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	c, err := client.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, srv, l.Addr().String()
}

func newStores(t *testing.T) map[string]server.Store {
	t.Helper()
	flat, err := table.New("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := shard.New("sales", salesSchema(), "order_id", 4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]server.Store{"flat": flat, "sharded": sharded}
}

// TestServerOps drives the full op surface through the client against
// both topologies.
func TestServerOps(t *testing.T) {
	for name, st := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			c, _, _ := startServer(t, st)

			if err := c.Ping(); err != nil {
				t.Fatal(err)
			}
			if c.Name() != "sales" {
				t.Fatalf("name %q", c.Name())
			}
			wantSchema := []client.Column{
				{Name: "order_id", Type: client.Uint64},
				{Name: "qty", Type: client.Uint32},
				{Name: "product", Type: client.String},
			}
			if !reflect.DeepEqual(c.Schema(), wantSchema) {
				t.Fatalf("schema %+v", c.Schema())
			}
			if name == "sharded" {
				if c.Shards() != 4 || c.KeyColumn() != "order_id" {
					t.Fatalf("shards=%d key=%q", c.Shards(), c.KeyColumn())
				}
			}

			// Insert + batch (with int literal coercion).
			id0, err := c.Insert([]any{1, 3, "widget"})
			if err != nil {
				t.Fatal(err)
			}
			var batch [][]any
			for i := 2; i <= 100; i++ {
				p := "widget"
				if i%4 == 0 {
					p = "gadget"
				}
				batch = append(batch, []any{uint64(i), uint32(i % 7), p})
			}
			ids, err := c.InsertBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(batch) {
				t.Fatalf("batch ids %d want %d", len(ids), len(batch))
			}

			// Row / IsValid.
			row, err := c.Row(id0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(row, []any{uint64(1), uint32(3), "widget"}) {
				t.Fatalf("row %v", row)
			}
			if ok, _ := c.IsValid(id0); !ok {
				t.Fatal("id0 should be valid")
			}

			// Lookup / Range / CountEqual.
			if got, _ := c.Lookup("order_id", 42); len(got) != 1 {
				t.Fatalf("lookup: %v", got)
			}
			if got, _ := c.Range("order_id", 10, 19); len(got) != 10 {
				t.Fatalf("range: %d rows", len(got))
			}
			if n, _ := c.CountEqual("product", "gadget"); n != 25 {
				t.Fatalf("count gadget = %d", n)
			}

			// Aggregates.
			sum, err := c.Sum("qty")
			if err != nil {
				t.Fatal(err)
			}
			var want uint64 = 3
			for i := 2; i <= 100; i++ {
				want += uint64(i % 7)
			}
			if sum != want {
				t.Fatalf("sum=%d want %d", sum, want)
			}
			if mn, ok, _ := c.Min("qty"); !ok || mn != uint32(0) {
				t.Fatalf("min=%v ok=%v", mn, ok)
			}
			if mx, ok, _ := c.Max("order_id"); !ok || mx != uint64(100) {
				t.Fatalf("max=%v ok=%v", mx, ok)
			}

			// Scan with and without rows.
			sids, svals, err := c.Scan("order_id", 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(sids) != 100 || len(svals) != 100 {
				t.Fatalf("scan %d/%d", len(sids), len(svals))
			}
			rids, rows, err := c.ScanRows("product", 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(rids) != 5 || len(rows) != 5 || len(rows[0]) != 3 {
				t.Fatalf("scanrows %d/%d", len(rids), len(rows))
			}

			// Query with projection.
			res, err := c.Query([]client.Filter{
				{Column: "product", Op: client.Eq, Value: "gadget"},
				{Column: "order_id", Op: client.Between, Value: 1, Hi: 50},
			}, []string{"order_id", "qty"})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count() != 12 || len(res.Values) != 12 || len(res.Values[0]) != 2 {
				t.Fatalf("query count=%d", res.Count())
			}

			// Update / Delete and valid-row counting.
			nid, err := c.Update(id0, map[string]any{"qty": 9})
			if err != nil {
				t.Fatal(err)
			}
			if ok, _ := c.IsValid(id0); ok {
				t.Fatal("old version still valid after update")
			}
			if err := c.Delete(nid); err != nil {
				t.Fatal(err)
			}
			if n, _ := c.ValidRows(); n != 99 {
				t.Fatalf("valid rows %d want 99", n)
			}

			// Merge and post-merge reads.
			rep, err := c.Merge(client.MergeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.RowsMerged == 0 || rep.Aborted {
				t.Fatalf("merge report %+v", rep)
			}
			if got, _ := c.Lookup("order_id", 42); len(got) != 1 {
				t.Fatal("post-merge lookup missed")
			}

			// Stats.
			stats, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			wantShards := 1
			if name == "sharded" {
				wantShards = 4
			}
			if stats.Shards != wantShards || stats.ValidRows != 99 || len(stats.Partitions) != wantShards {
				t.Fatalf("stats %+v", stats)
			}
			if stats.Requests == 0 || stats.ActiveConns == 0 {
				t.Fatalf("server counters empty: %+v", stats)
			}
		})
	}
}

// TestServerSnapshots pins the server-side snapshot registry: tokens are
// frozen, shared across connections (and clients), and release
// invalidates them.
func TestServerSnapshots(t *testing.T) {
	for name, st := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			c, _, addr := startServer(t, st)
			for i := 1; i <= 50; i++ {
				if _, err := c.Insert([]any{uint64(i), uint32(1), "widget"}); err != nil {
					t.Fatal(err)
				}
			}
			snap, err := c.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			sumBefore, err := c.SumAt(snap, "qty")
			if err != nil {
				t.Fatal(err)
			}

			// Churn after the capture: updates, deletes, a merge.
			ids, err := c.Lookup("order_id", 7)
			if err != nil || len(ids) != 1 {
				t.Fatalf("lookup: %v %v", ids, err)
			}
			if _, err := c.Update(ids[0], map[string]any{"qty": 100}); err != nil {
				t.Fatal(err)
			}
			gone, _ := c.Lookup("order_id", 9)
			if err := c.Delete(gone[0]); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Merge(client.MergeOptions{}); err != nil {
				t.Fatal(err)
			}

			// The pinned view is frozen...
			if got, _ := c.SumAt(snap, "qty"); got != sumBefore {
				t.Fatalf("pinned sum drifted: %d want %d", got, sumBefore)
			}
			if n, _ := c.ValidRowsAt(snap); n != 50 {
				t.Fatalf("pinned valid rows %d want 50", n)
			}
			if got, _ := c.LookupAt(snap, "order_id", 9); len(got) != 1 {
				t.Fatal("deleted row invisible under pinned view")
			}
			// ...while latest reads see the churn.
			if n, _ := c.ValidRows(); n != 49 {
				t.Fatalf("latest valid rows %d want 49", n)
			}

			// The token works from a second client (the registry is
			// server-wide, not per-connection).
			c2, err := client.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			if got, err := c2.SumAt(snap, "qty"); err != nil || got != sumBefore {
				t.Fatalf("cross-client pinned sum: %d, %v", got, err)
			}
			ok, err := c2.VisibleAt(snap, gone[0])
			if err != nil || !ok {
				t.Fatalf("cross-client VisibleAt: %v %v", ok, err)
			}

			// QueryAt under the pin agrees with itself across churn.
			res1, err := c.QueryAt(snap, []client.Filter{
				{Column: "order_id", Op: client.Between, Value: 1, Hi: 50},
			}, []string{"qty"})
			if err != nil {
				t.Fatal(err)
			}
			if res1.Count() != 50 {
				t.Fatalf("pinned query count %d", res1.Count())
			}

			// Release, then the token is dead everywhere.
			if err := c.Release(snap); err != nil {
				t.Fatal(err)
			}
			if _, err := c2.SumAt(snap, "qty"); !errors.Is(err, client.ErrBadSnapshot) {
				t.Fatalf("released token err=%v want ErrBadSnapshot", err)
			}
			if err := c.Release(snap); !errors.Is(err, client.ErrBadSnapshot) {
				t.Fatalf("double release err=%v", err)
			}
		})
	}
}

// TestServerTypedErrors pins the status-code mapping end to end.
func TestServerTypedErrors(t *testing.T) {
	flat, err := table.New("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	c, _, _ := startServer(t, flat)
	id, err := c.Insert([]any{uint64(1), uint32(1), "w"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(id); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		got  error
		want error
	}{
		{"row range", func() error { _, err := c.Row(999); return err }(), client.ErrRowRange},
		{"row invalid", func() error { return c.Delete(id) }(), client.ErrRowInvalid},
		{"no column", func() error { _, err := c.Lookup("nope", uint64(1)); return err }(), client.ErrNoColumn},
		{"no column coerce", func() error { _, err := c.Sum("nope"); return err }(), client.ErrNoColumn},
		{"arity", func() error { _, err := c.Insert([]any{uint64(1)}); return err }(), client.ErrArity},
		{"column type client", func() error { _, err := c.Lookup("order_id", "nan"); return err }(), client.ErrColumnType},
		{"aggregate over string", func() error { _, err := c.Sum("product"); return err }(), client.ErrColumnType},
		{"bad snapshot", func() error { _, err := c.SumAt(client.Snap(12345), "qty"); return err }(), client.ErrBadSnapshot},
	}
	for _, tc := range cases {
		if !errors.Is(tc.got, tc.want) {
			t.Errorf("%s: err=%v want %v", tc.name, tc.got, tc.want)
		}
	}
}

// TestServerScanThenLookupNoDeadlock is the regression test for the PR 3
// scan caveat at the server boundary: a scan that materializes full rows
// must collect row ids under the scan and read the other columns after
// it.  Reading from inside the scan callback would re-acquire the table
// read lock and deadlock behind any write-lock waiter — with writers
// hammering, that deadlock shows within a few iterations.
func TestServerScanThenLookupNoDeadlock(t *testing.T) {
	flat, err := table.New("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := flat.Insert([]any{uint64(i), uint32(i % 5), "widget"}); err != nil {
			t.Fatal(err)
		}
	}
	c, _, _ := startServer(t, flat)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: constant write-lock pressure
		defer wg.Done()
		for i := 2000; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := flat.Insert([]any{uint64(i), uint32(1), "widget"}); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 25; i++ {
			ids, rows, err := c.ScanRows("qty", 500)
			if err != nil {
				done <- err
				return
			}
			if len(ids) != 500 || len(rows) != 500 {
				done <- fmt.Errorf("scan returned %d/%d rows", len(ids), len(rows))
				return
			}
			// The materialized rows must agree with the scanned column.
			for j, row := range rows {
				if row[1] == nil {
					done <- fmt.Errorf("row %d missing qty", ids[j])
					return
				}
			}
		}
		done <- nil
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("scan-then-lookup deadlocked at the server boundary")
	}
	close(stop)
	wg.Wait()
}

// TestServerGracefulShutdown checks the drain path: an in-flight request
// completes and flushes, Serve returns ErrServerClosed, new connections
// are refused, and Shutdown returns once sessions are gone.
func TestServerGracefulShutdown(t *testing.T) {
	flat, err := table.New("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(flat, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	c, err := client.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Keep requests in flight while Shutdown lands.
	var okOnce sync.Once
	inflight := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				_, err := c.Insert([]any{uint64(w*1_000_000 + i), uint32(1), "w"})
				if err != nil {
					// Once draining, connection errors are expected; no
					// request may fail with a half-written response.
					return
				}
				okOnce.Do(func() { close(inflight) })
			}
		}(w)
	}
	<-inflight

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v want ErrServerClosed", err)
	}
	if srv.ActiveConns() != 0 {
		t.Fatalf("%d sessions survived shutdown", srv.ActiveConns())
	}
	// Every insert that was acknowledged is durable in the store; the
	// store is untouched by the teardown.
	if flat.Rows() == 0 {
		t.Fatal("no inserts landed")
	}
	// New connections are refused.
	if _, err := client.Dial(l.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}
