package server

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hyrise/internal/core"
	"hyrise/internal/query"
	"hyrise/internal/shard"
	"hyrise/internal/table"
	"hyrise/internal/val"
	"hyrise/internal/wire"
)

// errColumnType maps to wire.StatusErrColumnType: a request value (or the
// op itself) does not fit the column's declared type.
var errColumnType = errors.New("server: value does not fit column type")

// reqInfo collects per-request observability facts as a handler runs:
// the slow-op log line reports them next to the opcode and duration.
// Methods are nil-safe so handlers never need to know whether tracing is
// on (the fuzz harness passes nil).
type reqInfo struct {
	rows  int    // rows touched or returned, best-effort per op
	epoch uint64 // resolved snapshot epoch (0 = latest or none)
}

func (i *reqInfo) noteRows(n int) {
	if i != nil {
		i.rows = n
	}
}

func (i *reqInfo) noteView(v table.View) {
	if i != nil && !v.IsLatest() {
		i.epoch = v.Epoch()
	}
}

// handle decodes and executes one request, writing the full response
// payload (status byte first) into out.  Malformed payloads become error
// responses, never session faults: framing is length-delimited, so the
// stream stays in sync regardless of payload content.  info (nil-safe)
// receives per-request facts for the slow-op log.
func (s *Server) handle(payload []byte, out *wire.Buffer, info *reqInfo) {
	r := wire.NewReader(payload)
	op, err := r.U8()
	if err != nil {
		s.fail(out, fmt.Errorf("%w: empty request", wire.ErrMalformed))
		return
	}
	if s.opts.Replica != nil {
		switch op {
		case wire.OpInsert, wire.OpInsertBatch, wire.OpUpdate, wire.OpDelete, wire.OpReshard:
			s.fail(out, fmt.Errorf("%w: route writes to the primary", errReadOnly))
			return
		}
	}
	out.U8(wire.StatusOK)
	switch op {
	case wire.OpPing:
		err = r.Rest()
	case wire.OpSchema:
		err = s.opSchema(r, out)
	case wire.OpInsert:
		err = s.opInsert(r, out)
	case wire.OpInsertBatch:
		err = s.opInsertBatch(r, out)
	case wire.OpUpdate:
		err = s.opUpdate(r, out)
	case wire.OpDelete:
		err = s.opDelete(r, out)
	case wire.OpRow:
		err = s.opRow(r, out)
	case wire.OpIsValid:
		err = s.opIsValid(r, out)
	case wire.OpSnapshot:
		if err = r.Rest(); err == nil {
			var tok uint64
			if tok, _, err = s.registerSnapshot(); err == nil {
				out.U64(tok)
			}
		}
	case wire.OpSnapshotEpoch:
		if err = r.Rest(); err == nil {
			var tok, e uint64
			if tok, e, err = s.registerSnapshot(); err == nil {
				out.U64(tok)
				out.U64(e)
			}
		}
	case wire.OpPinEpoch:
		err = s.opPinEpoch(r, out)
	case wire.OpHello:
		err = s.opHello(r, out)
	case wire.OpServerStats:
		err = s.opServerStats(r, out)
	case wire.OpSubscribe:
		// serveConn intercepts OpSubscribe before handle; seeing it here
		// means the caller cannot stream (fuzz harness, misuse).
		err = fmt.Errorf("%w: OpSubscribe must be the only request on its connection", wire.ErrMalformed)
	case wire.OpSnapshotRelease:
		err = s.opSnapshotRelease(r, out)
	case wire.OpLookup:
		err = s.opLookup(r, out, info)
	case wire.OpRange:
		err = s.opRange(r, out, info)
	case wire.OpScan:
		err = s.opScan(r, out, info)
	case wire.OpSum, wire.OpMin, wire.OpMax:
		err = s.opAggregate(op, r, out)
	case wire.OpCountEqual:
		err = s.opCountEqual(r, out, info)
	case wire.OpQuery:
		err = s.opQuery(r, out, info)
	case wire.OpValidRows:
		err = s.opValidRows(r, out)
	case wire.OpVisible:
		err = s.opVisible(r, out)
	case wire.OpStats:
		err = s.opStats(r, out)
	case wire.OpMerge:
		err = s.opMerge(r, out)
	case wire.OpCreateIndex:
		err = s.opCreateIndex(r, out)
	case wire.OpIndexStats:
		err = s.opIndexStats(r, out)
	case wire.OpMetrics:
		err = s.opMetrics(r, out)
	case wire.OpReshard:
		err = s.opReshard(r, out)
	default:
		err = fmt.Errorf("%w: unknown opcode 0x%02x", wire.ErrMalformed, op)
	}
	if err != nil {
		s.fail(out, err)
	}
}

// fail rewrites out as an error response.
func (s *Server) fail(out *wire.Buffer, err error) {
	out.Reset()
	out.U8(statusOf(err))
	out.String(err.Error())
}

// statusOf maps library errors to wire status codes so the client can
// rehydrate them as typed errors.
func statusOf(err error) uint8 {
	switch {
	case errors.Is(err, table.ErrRowRange):
		return wire.StatusErrRowRange
	case errors.Is(err, table.ErrRowInvalid):
		return wire.StatusErrRowInvalid
	case errors.Is(err, table.ErrNoColumn):
		return wire.StatusErrNoColumn
	case errors.Is(err, table.ErrArity):
		return wire.StatusErrArity
	case errors.Is(err, table.ErrMergeInProgress):
		return wire.StatusErrMergeBusy
	case errors.Is(err, errBadSnapshot), errors.Is(err, errStaleEpoch):
		return wire.StatusErrBadSnapshot
	case errors.Is(err, errReadOnly):
		return wire.StatusErrReadOnly
	case errors.Is(err, errTooManySnapshots):
		return wire.StatusErrTooManySnapshots
	case errors.Is(err, errColumnType):
		return wire.StatusErrColumnType
	case errors.Is(err, wire.ErrMalformed):
		return wire.StatusErrBadRequest
	default:
		return wire.StatusErr
	}
}

// colType resolves a column's declared type.
func (s *Server) colType(name string) (table.Type, error) {
	for _, def := range s.st.Schema() {
		if def.Name == name {
			return def.Type, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", table.ErrNoColumn, name)
}

// handleReads is the typed read surface shared by table.Handle and
// shard.Handle; handleOf binds one for either topology.
type handleReads[V val.Value] interface {
	LookupAt(view table.View, v V) []int
	RangeAt(view table.View, lo, hi V) []int
	ScanAt(view table.View, fn func(row int, v V) bool)
	CountEqualAt(view table.View, v V) int
}

func handleOf[V val.Value](s *Server, col string) (handleReads[V], error) {
	if s.flat != nil {
		return table.ColumnOf[V](s.flat, col)
	}
	return shard.ColumnOf[V](s.sharded, col)
}

// want asserts the decoded wire value against the column's Go type.
func want[V val.Value](v any, col string) (V, error) {
	tv, ok := v.(V)
	if !ok {
		return tv, fmt.Errorf("%w: %T for column %q (want %T)", errColumnType, v, col, tv)
	}
	return tv, nil
}

// --- mutation ops ---

func (s *Server) opInsert(r *wire.Reader, out *wire.Buffer) error {
	values, err := r.Row()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	id, err := s.st.Insert(values)
	if err != nil {
		return err
	}
	out.U64(uint64(id))
	return nil
}

func (s *Server) opInsertBatch(r *wire.Reader, out *wire.Buffer) error {
	n, err := r.U32()
	if err != nil {
		return err
	}
	if int(n) > r.Len()/2 {
		return fmt.Errorf("%w: batch claims %d rows in %d bytes", wire.ErrMalformed, n, r.Len())
	}
	rows := make([][]any, n)
	for i := range rows {
		if rows[i], err = r.Row(); err != nil {
			return err
		}
	}
	if err := r.Rest(); err != nil {
		return err
	}
	ids, err := s.st.InsertRows(rows)
	if err != nil {
		return err
	}
	out.RowIDs(ids)
	return nil
}

func (s *Server) opUpdate(r *wire.Reader, out *wire.Buffer) error {
	row, err := r.U64()
	if err != nil {
		return err
	}
	n, err := r.U16()
	if err != nil {
		return err
	}
	changes := make(map[string]any, n)
	for i := 0; i < int(n); i++ {
		col, err := r.String()
		if err != nil {
			return err
		}
		v, err := r.Value()
		if err != nil {
			return err
		}
		changes[col] = v
	}
	if err := r.Rest(); err != nil {
		return err
	}
	id, err := s.st.Update(int(row), changes)
	if err != nil {
		return err
	}
	out.U64(uint64(id))
	return nil
}

func (s *Server) opDelete(r *wire.Reader, out *wire.Buffer) error {
	row, err := r.U64()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	return s.st.Delete(int(row))
}

// --- row ops ---

func (s *Server) opRow(r *wire.Reader, out *wire.Buffer) error {
	row, err := r.U64()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	values, err := s.st.Row(int(row))
	if err != nil {
		return err
	}
	return out.Row(values)
}

func (s *Server) opIsValid(r *wire.Reader, out *wire.Buffer) error {
	row, err := r.U64()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	out.U8(boolByte(s.st.IsValid(int(row))))
	return nil
}

// --- snapshot ops ---

func (s *Server) opSnapshotRelease(r *wire.Reader, out *wire.Buffer) error {
	tok, err := r.U64()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	return s.releaseSnapshot(tok)
}

func (s *Server) opValidRows(r *wire.Reader, out *wire.Buffer) error {
	view, err := s.viewArgRest(r)
	if err != nil {
		return err
	}
	out.U64(uint64(s.st.ValidRowsAt(view)))
	return nil
}

func (s *Server) opVisible(r *wire.Reader, out *wire.Buffer) error {
	tok, err := r.U64()
	if err != nil {
		return err
	}
	row, err := r.U64()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	view, err := s.viewFor(tok)
	if err != nil {
		return err
	}
	out.U8(boolByte(s.st.VisibleAt(view, int(row))))
	return nil
}

// viewArgRest decodes a trailing snapshot-token argument.
func (s *Server) viewArgRest(r *wire.Reader) (table.View, error) {
	tok, err := r.U64()
	if err != nil {
		return table.View{}, err
	}
	if err := r.Rest(); err != nil {
		return table.View{}, err
	}
	return s.viewFor(tok)
}

// --- typed read ops ---

// readArgs decodes the common (token, column) prefix of read requests.
func (s *Server) readArgs(r *wire.Reader) (table.View, string, table.Type, error) {
	tok, err := r.U64()
	if err != nil {
		return table.View{}, "", 0, err
	}
	col, err := r.String()
	if err != nil {
		return table.View{}, "", 0, err
	}
	view, err := s.viewFor(tok)
	if err != nil {
		return table.View{}, "", 0, err
	}
	typ, err := s.colType(col)
	if err != nil {
		return table.View{}, "", 0, err
	}
	return view, col, typ, nil
}

func lookupTyped[V val.Value](s *Server, view table.View, col string, v any) ([]int, error) {
	tv, err := want[V](v, col)
	if err != nil {
		return nil, err
	}
	h, err := handleOf[V](s, col)
	if err != nil {
		return nil, err
	}
	return h.LookupAt(view, tv), nil
}

func (s *Server) opLookup(r *wire.Reader, out *wire.Buffer, info *reqInfo) error {
	view, col, typ, err := s.readArgs(r)
	if err != nil {
		return err
	}
	info.noteView(view)
	v, err := r.Value()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	var ids []int
	switch typ {
	case table.Uint32:
		ids, err = lookupTyped[uint32](s, view, col, v)
	case table.Uint64:
		ids, err = lookupTyped[uint64](s, view, col, v)
	default:
		ids, err = lookupTyped[string](s, view, col, v)
	}
	if err != nil {
		return err
	}
	info.noteRows(len(ids))
	out.RowIDs(ids)
	return nil
}

func rangeTyped[V val.Value](s *Server, view table.View, col string, lo, hi any) ([]int, error) {
	tlo, err := want[V](lo, col)
	if err != nil {
		return nil, err
	}
	thi, err := want[V](hi, col)
	if err != nil {
		return nil, err
	}
	h, err := handleOf[V](s, col)
	if err != nil {
		return nil, err
	}
	return h.RangeAt(view, tlo, thi), nil
}

func (s *Server) opRange(r *wire.Reader, out *wire.Buffer, info *reqInfo) error {
	view, col, typ, err := s.readArgs(r)
	if err != nil {
		return err
	}
	info.noteView(view)
	lo, err := r.Value()
	if err != nil {
		return err
	}
	hi, err := r.Value()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	var ids []int
	switch typ {
	case table.Uint32:
		ids, err = rangeTyped[uint32](s, view, col, lo, hi)
	case table.Uint64:
		ids, err = rangeTyped[uint64](s, view, col, lo, hi)
	default:
		ids, err = rangeTyped[string](s, view, col, lo, hi)
	}
	if err != nil {
		return err
	}
	info.noteRows(len(ids))
	out.RowIDs(ids)
	return nil
}

func countTyped[V val.Value](s *Server, view table.View, col string, v any) (int, error) {
	tv, err := want[V](v, col)
	if err != nil {
		return 0, err
	}
	h, err := handleOf[V](s, col)
	if err != nil {
		return 0, err
	}
	return h.CountEqualAt(view, tv), nil
}

func (s *Server) opCountEqual(r *wire.Reader, out *wire.Buffer, info *reqInfo) error {
	view, col, typ, err := s.readArgs(r)
	if err != nil {
		return err
	}
	info.noteView(view)
	v, err := r.Value()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	var n int
	switch typ {
	case table.Uint32:
		n, err = countTyped[uint32](s, view, col, v)
	case table.Uint64:
		n, err = countTyped[uint64](s, view, col, v)
	default:
		n, err = countTyped[string](s, view, col, v)
	}
	if err != nil {
		return err
	}
	info.noteRows(n)
	out.U64(uint64(n))
	return nil
}

// scanTyped streams the column through the scan callback, collecting row
// ids and the scanned values only.  It MUST NOT touch the table from
// inside the callback: the callback runs under the table's read lock and
// a re-entrant read would deadlock behind any queued writer (the PR 3
// scan caveat).  Row materialization for withRows happens in opScan,
// strictly after this returns.
func scanTyped[V val.Value](s *Server, view table.View, col string, limit int, out *wire.Buffer) ([]int, error) {
	h, err := handleOf[V](s, col)
	if err != nil {
		return nil, err
	}
	var ids []int
	var values []V
	h.ScanAt(view, func(row int, v V) bool {
		ids = append(ids, row)
		values = append(values, v)
		return limit <= 0 || len(ids) < limit
	})
	out.U32(uint32(len(ids)))
	for i, id := range ids {
		out.U64(uint64(id))
		if err := out.Value(any(values[i])); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

func (s *Server) opScan(r *wire.Reader, out *wire.Buffer, info *reqInfo) error {
	view, col, typ, err := s.readArgs(r)
	if err != nil {
		return err
	}
	info.noteView(view)
	limit, err := r.U32()
	if err != nil {
		return err
	}
	withRows, err := r.U8()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	if withRows != 0 && view.IsLatest() {
		// Row materialization happens strictly after the scan; pin a
		// snapshot for the whole request so a GC merge committing in
		// between cannot reclaim a matched row before Row reads it.
		view = s.st.Snapshot()
		defer view.Release()
	}
	var ids []int
	switch typ {
	case table.Uint32:
		ids, err = scanTyped[uint32](s, view, col, int(limit), out)
	case table.Uint64:
		ids, err = scanTyped[uint64](s, view, col, int(limit), out)
	default:
		ids, err = scanTyped[string](s, view, col, int(limit), out)
	}
	if err != nil {
		return err
	}
	info.noteRows(len(ids))
	if withRows == 0 {
		return nil
	}
	// Materialize full rows only now that the scan (and its read lock)
	// is over.  Row versions are immutable, so these reads see exactly
	// the values the scan saw even if writers committed in between, and
	// the view's pin (registered token, or the request-scoped pin taken
	// above) keeps GC from reclaiming any matched row before Row runs.
	for _, id := range ids {
		values, err := s.st.Row(id)
		if err != nil {
			return err
		}
		if err := out.Row(values); err != nil {
			return err
		}
	}
	return nil
}

// numericReads is the aggregation surface shared by table.NumericHandle
// and shard.NumericHandle.
type numericReads[V interface{ ~uint32 | ~uint64 }] interface {
	SumAt(view table.View) uint64
	MinAt(view table.View) (V, bool)
	MaxAt(view table.View) (V, bool)
}

func numericOf[V interface{ ~uint32 | ~uint64 }](s *Server, col string) (numericReads[V], error) {
	if s.flat != nil {
		return table.NumericColumnOf[V](s.flat, col)
	}
	return shard.NumericColumnOf[V](s.sharded, col)
}

func aggregateTyped[V interface{ ~uint32 | ~uint64 }](s *Server, op uint8, view table.View, col string, out *wire.Buffer) error {
	h, err := numericOf[V](s, col)
	if err != nil {
		return err
	}
	switch op {
	case wire.OpSum:
		out.U64(h.SumAt(view))
	case wire.OpMin:
		v, ok := h.MinAt(view)
		out.U8(boolByte(ok))
		return out.Value(any(v))
	case wire.OpMax:
		v, ok := h.MaxAt(view)
		out.U8(boolByte(ok))
		return out.Value(any(v))
	}
	return nil
}

func (s *Server) opAggregate(op uint8, r *wire.Reader, out *wire.Buffer) error {
	view, col, typ, err := s.readArgs(r)
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	switch typ {
	case table.Uint32:
		return aggregateTyped[uint32](s, op, view, col, out)
	case table.Uint64:
		return aggregateTyped[uint64](s, op, view, col, out)
	default:
		return fmt.Errorf("%w: aggregate over string column %q", errColumnType, col)
	}
}

// --- query op ---

func (s *Server) opQuery(r *wire.Reader, out *wire.Buffer, info *reqInfo) error {
	tok, err := r.U64()
	if err != nil {
		return err
	}
	wfs, err := r.Filters()
	if err != nil {
		return err
	}
	project, err := r.Strings()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	view, err := s.viewFor(tok)
	if err != nil {
		return err
	}
	info.noteView(view)
	filters := make([]query.Filter, len(wfs))
	for i, f := range wfs {
		filters[i] = query.Filter{Column: f.Column, Value: f.Value, Hi: f.Hi}
		if f.Op == wire.OpFilterBetween {
			filters[i].Op = query.Between
		}
	}
	var res *query.Result
	if s.flat != nil {
		res, err = query.RunAt(s.flat, view, filters, project)
	} else {
		res, err = shard.QueryAt(s.sharded, view, filters, project)
	}
	if err != nil {
		return err
	}
	info.noteRows(len(res.Rows))
	out.RowIDs(res.Rows)
	if err := out.Strings(res.Columns); err != nil {
		return err
	}
	for _, vals := range res.Values {
		for _, v := range vals {
			if err := out.Value(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- metadata ops ---

func (s *Server) opSchema(r *wire.Reader, out *wire.Buffer) error {
	if err := r.Rest(); err != nil {
		return err
	}
	st := s.st.StoreStats()
	out.String(s.st.Name())
	out.U32(uint32(st.Shards))
	out.String(st.KeyColumn)
	schema := s.st.Schema()
	out.U16(uint16(len(schema)))
	for _, def := range schema {
		out.String(def.Name)
		out.U8(uint8(def.Type))
	}
	return nil
}

func (s *Server) opStats(r *wire.Reader, out *wire.Buffer) error {
	if err := r.Rest(); err != nil {
		return err
	}
	st := s.st.StoreStats()
	out.String(st.Name)
	out.U32(uint32(st.Shards))
	out.String(st.KeyColumn)
	out.U64(uint64(st.Rows))
	out.U64(uint64(st.ValidRows))
	out.U64(uint64(st.MainRows))
	out.U64(uint64(st.DeltaRows))
	out.U64(uint64(st.SizeBytes))
	out.U64(uint64(st.RetiredRows))
	out.U64(uint64(st.ReclaimedBytes))
	out.U8(boolByte(s.st.Merging()))
	out.U32(uint32(len(st.Partitions)))
	for _, p := range st.Partitions {
		out.U64(uint64(p.Rows))
		out.U64(uint64(p.ValidRows))
		out.U64(uint64(p.MainRows))
		out.U64(uint64(p.DeltaRows))
		out.U64(uint64(p.SizeBytes))
	}
	out.U32(uint32(s.ActiveConns()))
	out.U64(s.Requests())
	out.U32(uint32(s.SnapshotCount()))
	return nil
}

// opCreateIndex is deliberately allowed on followers: an index is a local
// read optimization, not a data mutation, and followers serve exactly the
// selective reads indexes accelerate.
func (s *Server) opCreateIndex(r *wire.Reader, out *wire.Buffer) error {
	col, err := r.String()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	return s.st.CreateIndex(col)
}

func (s *Server) opIndexStats(r *wire.Reader, out *wire.Buffer) error {
	if err := r.Rest(); err != nil {
		return err
	}
	stats := s.st.IndexStats()
	out.U32(uint32(len(stats)))
	for _, is := range stats {
		out.String(is.Column)
		out.U64(uint64(is.Postings))
		out.U64(uint64(is.SizeBytes))
		out.U64(is.Builds)
		out.U64(uint64(is.LastBuild.Nanoseconds()))
	}
	return nil
}

func (s *Server) opMerge(r *wire.Reader, out *wire.Buffer) error {
	alg, err := r.U8()
	if err != nil {
		return err
	}
	threads, err := r.U32()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	opts := table.MergeOptions{Threads: int(threads)}
	if alg == wire.MergeNaive {
		opts.Algorithm = core.Naive
	}
	// Under the server's lifetime context: a force-close (Close, or a
	// Shutdown past its deadline) cancels the merge, which rolls back
	// cleanly, instead of the session outliving the force-close.
	rep, err := s.st.RequestMerge(s.lifeCtx, opts)
	if err != nil {
		return err
	}
	out.U64(uint64(rep.RowsMerged))
	out.U64(uint64(rep.RowsReclaimed))
	out.U64(uint64(rep.MainRowsAfter))
	out.U64(uint64(rep.Wall.Nanoseconds()))
	out.U32(uint32(rep.Threads))
	out.U8(boolByte(rep.Aborted))
	return nil
}

// --- replication / capability ops (protocol v2) ---

func (s *Server) opHello(r *wire.Reader, out *wire.Buffer) error {
	ver, err := r.U32()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	if ver == 0 {
		return fmt.Errorf("%w: protocol version 0", wire.ErrMalformed)
	}
	out.U32(wire.ProtocolVersion)
	out.U8(s.role())
	return nil
}

func (s *Server) opPinEpoch(r *wire.Reader, out *wire.Buffer) error {
	e, err := r.U64()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	tok, err := s.registerPinned(e)
	if err != nil {
		return err
	}
	out.U64(tok)
	return nil
}

func (s *Server) opServerStats(r *wire.Reader, out *wire.Buffer) error {
	if err := r.Rest(); err != nil {
		return err
	}
	out.U8(s.role())
	out.U32(wire.ProtocolVersion)
	var first, next uint64
	if s.opts.OpLog != nil {
		first, next = s.opts.OpLog.Bounds()
	}
	out.U8(boolByte(s.opts.OpLog != nil))
	out.U64(first)
	out.U64(next)
	out.U64(next - first)
	out.U32(uint32(s.Subscribers()))
	primary := s.clock().Now()
	applied := primary
	lsn := next
	if rep := s.opts.Replica; rep != nil {
		primary = rep.PrimaryEpoch()
		applied = rep.AppliedEpoch()
		lsn = rep.AppliedLSN()
	}
	out.U64(primary)
	out.U64(applied)
	var lag uint64
	if primary > applied {
		lag = primary - applied
	}
	out.U64(lag)
	out.U64(lsn)
	// Version 4 tail: uptime and cumulative per-op request/error counts
	// (fed from the metric registry; empty with metrics disabled).
	// Pre-v4 clients never read past lsn — decoders do not drain the
	// payload — so appending here is backward compatible.
	out.U64(uint64(time.Since(s.started).Nanoseconds()))
	type opCount struct {
		op         uint8
		reqs, errs uint64
	}
	var counts []opCount
	if s.mx != nil {
		for _, op := range wire.Opcodes() {
			om := s.mx.byOp[op]
			if r, e := om.reqs.Value(), om.errs.Value(); r > 0 || e > 0 {
				counts = append(counts, opCount{op, r, e})
			}
		}
	}
	out.U16(uint16(len(counts)))
	for _, c := range counts {
		out.U8(c.op)
		out.U64(c.reqs)
		out.U64(c.errs)
	}
	// Version 5 tail: shard topology.  Active shard count (1 on a flat
	// store), physical partition count including sealed pre-reshard
	// partitions, shard-map version (0 on a flat store) and whether a
	// reshard migration is in flight.  Pre-v5 clients stop at the per-op
	// counts, so appending stays backward compatible.
	var shards uint32 = 1
	var mapVer uint64
	var resharding bool
	if sh := s.sharded; sh != nil {
		shards = uint32(sh.NumShards())
		mapVer = sh.MapVersion()
		resharding = sh.Resharding()
	}
	out.U32(shards)
	out.U32(uint32(len(s.st.Partitions())))
	out.U64(mapVer)
	out.U8(boolByte(resharding))
	return nil
}

// opReshard (protocol v5) changes the active shard count of a sharded
// store online: reads at any epoch and concurrent writes keep working
// throughout, and the migration flows through the op log so followers
// replay it bit-identically.  Flat stores refuse the op; followers answer
// read-only (the reshard reaches them through replication).  The response
// reports the migration so clients can surface it without a second
// round-trip.
func (s *Server) opReshard(r *wire.Reader, out *wire.Buffer) error {
	n, err := r.U32()
	if err != nil {
		return err
	}
	if err := r.Rest(); err != nil {
		return err
	}
	if s.sharded == nil {
		return fmt.Errorf("%w: store is not sharded", wire.ErrMalformed)
	}
	// Under lifeCtx like merges: a force-close aborts the migration pass
	// instead of the session outliving the server (the cutover still
	// publishes — the store stays consistent, just lazily drained).
	rep, err := s.sharded.Reshard(s.lifeCtx, int(n))
	if err != nil {
		return err
	}
	s.mx.observeReshard(rep)
	out.U32(uint32(rep.From))
	out.U32(uint32(rep.To))
	out.U64(uint64(rep.RowsMigrated))
	out.U64(uint64(rep.Wall.Nanoseconds()))
	out.U64(uint64(rep.CutoverWall.Nanoseconds()))
	out.U64(rep.Version)
	out.U64(rep.CutoverEpoch)
	return nil
}

// opMetrics answers with a flat snapshot of the server's metric registry:
// u32 n, then per sample a full name (labels rendered in, e.g.
// `hyrise_server_requests_total{op="lookup"}`) and the value as float64
// bits.  Followers answer locally — their lag gauges are exactly what a
// client-side topology check wants.  With metrics disabled the list is
// empty.
func (s *Server) opMetrics(r *wire.Reader, out *wire.Buffer) error {
	if err := r.Rest(); err != nil {
		return err
	}
	samples := s.mxReg().Snapshot()
	out.U32(uint32(len(samples)))
	for _, smp := range samples {
		out.String(smp.Name)
		out.U64(math.Float64bits(smp.Value))
	}
	return nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
