package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// ObsHandler returns the server's observability HTTP surface, mounted by
// hyrised -metrics-addr (and embeddable by anyone running the server
// in-process):
//
//	/metrics          Prometheus text exposition of the metric registry
//	/healthz          liveness + role-aware readiness (see below)
//	/debug/pprof/*    the standard runtime profiles
//
// The profiles are mounted on this private mux explicitly rather than
// relying on net/http/pprof's DefaultServeMux registration, so importing
// this package never pollutes a process-global mux.
//
// /healthz semantics: a primary is ready unless it is draining.  A
// follower is ready once it has received a primary heartbeat — its store
// is bootstrapped and its lag is known (on an empty primary the applied
// epoch can legitimately still be zero).  The optional query parameter
// min_epoch=N
// tightens readiness to "applied epoch >= N", which lets a topology
// check wait until a follower has provably converged past a known write
// instead of sleeping.  Ready answers 200 with a short text body
// (role, epochs, lag); not-ready answers 503 with the reason.
func (s *Server) ObsHandler() http.Handler {
	mux := http.NewServeMux()
	if reg := s.mxReg(); reg != nil {
		mux.Handle("/metrics", reg.Handler())
	} else {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "metrics disabled (Options.NoMetrics)", http.StatusNotFound)
		})
	}
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var minEpoch uint64
	if v := r.URL.Query().Get("min_epoch"); v != "" {
		e, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad min_epoch: "+err.Error(), http.StatusBadRequest)
			return
		}
		minEpoch = e
	}
	if rep := s.opts.Replica; rep != nil {
		applied, primary := rep.AppliedEpoch(), rep.PrimaryEpoch()
		var lag uint64
		if primary > applied {
			lag = primary - applied
		}
		switch {
		case primary == 0:
			http.Error(w, "follower has not seen a primary heartbeat yet", http.StatusServiceUnavailable)
		case applied < minEpoch:
			http.Error(w, fmt.Sprintf("follower applied epoch %d < min_epoch %d", applied, minEpoch),
				http.StatusServiceUnavailable)
		default:
			fmt.Fprintf(w, "ok role=follower applied=%d primary=%d lag=%d\n", applied, primary, lag)
		}
		return
	}
	now := s.clock().Now()
	if now < minEpoch {
		http.Error(w, fmt.Sprintf("epoch %d < min_epoch %d", now, minEpoch), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintf(w, "ok role=primary epoch=%d\n", now)
}
