package server_test

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"

	"hyrise/client"
	"hyrise/internal/table"
	"hyrise/internal/wire"
)

// TestPipelinedParallelOrder pipelines a long mixed request train on one
// raw connection — lookups and row reads that the server may execute
// concurrently, with updates interleaved as ordering barriers — and
// asserts the contract of the parallel execution path: every response
// arrives in request order with the value serial execution would have
// produced, and a read pipelined after a write observes that write.
func TestPipelinedParallelOrder(t *testing.T) {
	flat, err := table.New("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	const rows = 200
	ids := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		id, err := flat.Insert([]any{uint64(i), uint32(i), fmt.Sprintf("p-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = uint64(id)
	}
	c, _, addr := startServer(t, flat)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)

	// The request train: rounds of parallel-eligible reads, with a qty
	// update as every round's barrier.  check[i] decodes and verifies
	// response i.
	var check []func(r *wire.Reader) error
	send := func(fn func(b *wire.Buffer), chk func(r *wire.Reader) error) {
		var b wire.Buffer
		fn(&b)
		if err := wire.WriteFrame(bw, b.Bytes()); err != nil {
			t.Fatal(err)
		}
		check = append(check, chk)
	}
	expectIDs := func(want uint64) func(r *wire.Reader) error {
		return func(r *wire.Reader) error {
			got, err := r.RowIDs()
			if err != nil {
				return err
			}
			if len(got) != 1 || uint64(got[0]) != want {
				return fmt.Errorf("ids = %v, want [%d]", got, want)
			}
			return nil
		}
	}
	const rounds = 40
	for round := 0; round < rounds; round++ {
		// A block of reads the pool may run concurrently, in any order.
		for i := 0; i < 8; i++ {
			key := uint64((round*8 + i) % rows)
			send(func(b *wire.Buffer) {
				b.U8(wire.OpLookup)
				b.U64(0)
				b.String("order_id")
				b.Value(key)
			}, expectIDs(ids[key]))
		}
		// Barrier: bump one row's qty.  The whole train is built before
		// any response is read, so the update's new row id must be
		// predicted: this connection is the only writer, and a flat table
		// hands out version ids sequentially, so round r's update creates
		// id rows+r.
		victim := round % rows
		want := uint32(10_000 + round)
		predicted := uint64(rows + round)
		send(func(b *wire.Buffer) {
			b.U8(wire.OpUpdate)
			b.U64(ids[victim])
			b.U16(1)
			b.String("qty")
			b.Value(want)
		}, func(r *wire.Reader) error {
			nid, err := r.U64()
			if err != nil {
				return err
			}
			if nid != predicted {
				return fmt.Errorf("update returned id %d, want %d", nid, predicted)
			}
			return nil
		})
		ids[victim] = predicted
		// ... and the very next pipelined read must observe it.  The
		// update's new row id is not known client-side yet, so read
		// through an aggregate: the qty sum includes the write the moment
		// it commits.  Victims so far are rows 0..round (rounds < rows,
		// so each round picks a fresh victim).
		rnd := round
		send(func(b *wire.Buffer) {
			b.U8(wire.OpSum)
			b.U64(0)
			b.String("qty")
		}, func(r *wire.Reader) error {
			sum, err := r.U64()
			if err != nil {
				return err
			}
			var expect uint64
			for i := 0; i < rows; i++ {
				if i <= rnd {
					expect += uint64(10_000 + i)
				} else {
					expect += uint64(i)
				}
			}
			if sum != expect {
				return fmt.Errorf("sum after update = %d, want %d", sum, expect)
			}
			return nil
		})
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	for i, chk := range check {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		r := wire.NewReader(payload)
		status, err := r.U8()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if status != wire.StatusOK {
			msg, _ := r.String()
			t.Fatalf("response %d: status 0x%02x %q", i, status, msg)
		}
		if err := chk(r); err != nil {
			t.Fatalf("response %d out of order or wrong: %v", i, err)
		}
	}

	// The pool actually ran: the parallel-dispatch counter moved.
	samples, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := client.MetricValue(samples, "hyrise_server_parallel_requests_total"); !ok || v == 0 {
		t.Fatalf("hyrise_server_parallel_requests_total = %v (ok=%v), want > 0", v, ok)
	}
}
