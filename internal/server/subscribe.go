package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"time"

	"hyrise/internal/oplog"
	"hyrise/internal/persist"
	"hyrise/internal/wire"
)

const (
	// subSnapChunk is the payload size of one FrameSnapChunk frame.
	subSnapChunk = 256 << 10
	// subOpsBudget is the soft byte budget of one FrameOps frame; a frame
	// is cut once its encoded ops pass it (a single op always goes out
	// whole, whatever its size).
	subOpsBudget = 1 << 20
	// subOpsBatch is how many ops one ReadFrom call pulls from the log.
	subOpsBatch = 512
	// subIdleTick bounds how long a caught-up subscriber waits before
	// re-checking the safe epoch: the clock advances on Capture without
	// appending, so epoch progress alone must still reach followers.
	subIdleTick = 50 * time.Millisecond
	// subWriteTimeout is the per-flush write deadline; a follower that
	// stops draining its socket is cut off rather than wedging the
	// streamer goroutine forever.
	subWriteTimeout = 30 * time.Second
)

// serveSubscribe turns a session into a one-way replication stream.  The
// request carries the wanted mode (SubSnapshot for a fresh bootstrap,
// SubTail to resume) and, for SubTail, the next LSN the follower needs.
// The response is StatusOK, the granted mode u8 and startLSN u64; in
// snapshot mode it is followed by FrameSnapChunk frames carrying a
// persist-format snapshot and a FrameSnapEnd, and in both modes by an
// endless stream of FrameOps batches (ops from startLSN on, in LSN order)
// interleaved with FrameHeartbeat frames whenever the subscriber is caught
// up.  Heartbeats are sent only at log positions equal to the log's next
// LSN, so their safe epoch is exact: the follower has applied every op
// stamped at or below it.
func (s *Server) serveSubscribe(c *conn, payload []byte, bw *bufio.Writer) {
	// A subscriber is a permanently-open stream: it must not hold a
	// graceful drain open the way an in-flight request does.  The drain
	// closes its socket; the follower re-subscribes elsewhere.
	c.pending.Add(-1)

	var out wire.Buffer
	r := wire.NewReader(payload)
	mode, err := r.U8()
	var from uint64
	if err == nil {
		from, err = r.U64()
	}
	if err == nil {
		err = r.Rest()
	}
	if err == nil && mode != wire.SubSnapshot && mode != wire.SubTail {
		err = fmt.Errorf("%w: unknown subscribe mode 0x%02x", wire.ErrMalformed, mode)
	}
	log := s.opts.OpLog
	if err == nil && log == nil {
		err = fmt.Errorf("%w: replication not enabled on this server", wire.ErrMalformed)
	}
	if err == nil && mode == wire.SubTail {
		// A tail resume is honored only while the log still covers the
		// follower's position; past that, the follower's only option is a
		// fresh store, which it must decide on — a silent downgrade to
		// snapshot mode would corrupt the store it already has.
		if first, next := log.Bounds(); from < first || from > next {
			err = fmt.Errorf("%w: cannot resume from LSN %d (log covers [%d, %d))",
				errStaleEpoch, from, first, next)
		}
	}
	if err != nil {
		s.fail(&out, err)
		if wire.WriteFrame(bw, out.Bytes()) == nil {
			bw.Flush()
		}
		return
	}

	s.addSubscriber(c)
	defer s.removeSubscriber(c)

	send := func(frame []byte) error {
		c.nc.SetWriteDeadline(time.Now().Add(subWriteTimeout))
		return wire.WriteFrame(bw, frame)
	}
	flush := func() error {
		c.nc.SetWriteDeadline(time.Now().Add(subWriteTimeout))
		return bw.Flush()
	}
	// streamFail reports an error after the OK response is out, when the
	// only channel left is the frame stream itself.
	streamFail := func(err error) {
		out.Reset()
		out.U8(wire.FrameError)
		out.String(err.Error())
		if send(out.Bytes()) == nil {
			flush()
		}
		s.log.Warn("server: subscriber stream failed",
			"remote", c.nc.RemoteAddr().String(), "err", err)
	}

	pos := from
	if mode == wire.SubSnapshot {
		// Read the cut point BEFORE the snapshot is taken: every op with
		// an LSN below it is fully contained in the snapshot (appends run
		// under the table write lock, which the snapshot's state capture
		// waits out), and ops straddling the cut are absorbed by the
		// idempotent apply path on the follower.
		pos = log.NextLSN()
	}

	out.Reset()
	out.U8(wire.StatusOK)
	out.U8(mode)
	out.U64(pos)
	if send(out.Bytes()) != nil || flush() != nil {
		return
	}

	if mode == wire.SubSnapshot {
		cw := &chunkWriter{send: send}
		if s.flat != nil {
			err = persist.Save(s.flat, cw)
		} else {
			err = persist.SaveSharded(s.sharded, cw)
		}
		if err == nil {
			err = cw.close()
		}
		if err != nil {
			// A half-sent snapshot cannot be retried in-stream (the
			// follower already consumed its prefix); kill the stream and
			// let the follower reconnect.  Concurrent GC can fail a save
			// this way (ErrRowInvalid), so this is retried-into-success
			// territory, not fatal.
			streamFail(fmt.Errorf("snapshot stream: %w", err))
			return
		}
		if flush() != nil {
			return
		}
	}

	idle := time.NewTicker(subIdleTick)
	defer idle.Stop()
	for {
		// Grab the wakeup channel BEFORE reading, so an append racing with
		// the read trips the select below instead of being slept through.
		notify := log.Notify()
		ops, ok := log.ReadFrom(pos, subOpsBatch)
		if !ok {
			streamFail(fmt.Errorf("op log trimmed past LSN %d; re-subscribe from scratch", pos))
			return
		}
		if len(ops) > 0 {
			if err := sendOpFrames(send, ops); err != nil {
				return
			}
			pos = ops[len(ops)-1].LSN + 1
			continue
		}
		// Caught up.  Advertise the safe epoch only if nothing was
		// appended between the read and the SafeEpoch call — a heartbeat
		// at a stale position would claim ops the follower hasn't seen.
		safe, primary, n := log.SafeEpoch()
		if n == pos {
			out.Reset()
			out.U8(wire.FrameHeartbeat)
			out.U64(safe)
			out.U64(primary)
			out.U64(n)
			if send(out.Bytes()) != nil || flush() != nil {
				return
			}
			select {
			case <-notify:
			case <-idle.C:
			case <-s.drainCh:
				return
			}
		}
	}
}

// sendOpFrames streams ops as FrameOps frames: kind u8, count u32, then
// count encoded ops.  Frames are cut at subOpsBudget encoded bytes.
func sendOpFrames(send func([]byte) error, ops []oplog.Op) error {
	for start := 0; start < len(ops); {
		var body wire.Buffer
		n := 0
		for start+n < len(ops) && (n == 0 || len(body.Bytes()) < subOpsBudget) {
			if err := ops[start+n].EncodeInto(&body); err != nil {
				return err
			}
			n++
		}
		frame := make([]byte, 5, 5+len(body.Bytes()))
		frame[0] = wire.FrameOps
		binary.BigEndian.PutUint32(frame[1:5], uint32(n))
		frame = append(frame, body.Bytes()...)
		if err := send(frame); err != nil {
			return err
		}
		start += n
	}
	return nil
}

// chunkWriter adapts the frame stream into an io.Writer for the snapshot
// encoder: bytes written accumulate into FrameSnapChunk frames of
// subSnapChunk payload bytes, and close flushes the remainder followed by
// a FrameSnapEnd marker.
type chunkWriter struct {
	send func([]byte) error
	buf  []byte
}

func (w *chunkWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		if w.buf == nil {
			w.buf = make([]byte, 1, 1+subSnapChunk)
			w.buf[0] = wire.FrameSnapChunk
		}
		n := 1 + subSnapChunk - len(w.buf)
		if n > len(p) {
			n = len(p)
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		if len(w.buf) == 1+subSnapChunk {
			if err := w.send(w.buf); err != nil {
				return total - len(p), err
			}
			w.buf = w.buf[:1]
		}
	}
	return total, nil
}

func (w *chunkWriter) close() error {
	if len(w.buf) > 1 {
		if err := w.send(w.buf); err != nil {
			return err
		}
	}
	return w.send([]byte{wire.FrameSnapEnd})
}
