package server_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"hyrise/client"
	"hyrise/internal/oplog"
	"hyrise/internal/replica"
	"hyrise/internal/server"
	"hyrise/internal/shard"
	"hyrise/internal/table"
	"hyrise/internal/wire"
)

// startReplicated serves st as a replication primary (op log attached)
// plus n followers, each a full replica.Replica fronted by its own
// server.  It returns the primary's address and the follower addresses
// and servers.
func startReplicated(t testing.TB, st server.Store, n int) (string, []string, []*server.Server, []*replica.Replica) {
	t.Helper()
	log := oplog.New(st.Partitions()[0].Clock(), 0)
	var err error
	switch x := st.(type) {
	case *table.Table:
		err = x.AttachOplog(log, 0)
	case *shard.Table:
		err = x.AttachOplog(log)
	}
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(st, server.Options{Logger: testLogger(t), OpLog: log})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	primaryAddr := l.Addr().String()

	addrs := make([]string, n)
	srvs := make([]*server.Server, n)
	reps := make([]*replica.Replica, n)
	for i := 0; i < n; i++ {
		rep, err := replica.Open(primaryAddr, replica.Options{Logger: testLogger(t)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rep.Close() })
		var fst server.Store
		if f := rep.Flat(); f != nil {
			fst = f
		} else {
			fst = rep.Sharded()
		}
		fl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fsrv, err := server.New(fst, server.Options{Logger: testLogger(t), Replica: rep})
		if err != nil {
			t.Fatal(err)
		}
		go fsrv.Serve(fl)
		t.Cleanup(func() { fsrv.Close() })
		addrs[i] = fl.Addr().String()
		srvs[i] = fsrv
		reps[i] = rep
	}
	return primaryAddr, addrs, srvs, reps
}

func waitFollowerEpoch(t testing.TB, rep *replica.Replica, e uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for rep.AppliedEpoch() < e {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at epoch %d, want %d (err=%v)", rep.AppliedEpoch(), e, rep.Err())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHelloNegotiation(t *testing.T) {
	flat, err := table.New("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	c, _, _ := startServer(t, flat)
	if c.Protocol() != wire.ProtocolVersion {
		t.Fatalf("protocol %d, want %d", c.Protocol(), wire.ProtocolVersion)
	}
	if c.Role() != client.RolePrimary {
		t.Fatalf("role %v, want primary", c.Role())
	}
}

func TestServerStatsPrimaryAndFollower(t *testing.T) {
	flat, err := table.New("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	paddr, faddrs, _, reps := startReplicated(t, flat, 1)
	pc, err := client.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err := pc.Insert([]any{uint64(1), uint32(2), "a"}); err != nil {
		t.Fatal(err)
	}
	e := flat.Clock().Capture()
	waitFollowerEpoch(t, reps[0], e)

	ps, err := pc.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Role != client.RolePrimary || !ps.Replicating {
		t.Fatalf("primary stats: %+v", ps)
	}
	if ps.Followers != 1 {
		t.Fatalf("primary sees %d followers, want 1", ps.Followers)
	}
	if ps.OplogEntries == 0 {
		t.Fatalf("primary oplog empty: %+v", ps)
	}

	fc, err := client.Dial(faddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if fc.Role() != client.RoleFollower {
		t.Fatalf("follower role %v", fc.Role())
	}
	fs, err := fc.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Role != client.RoleFollower {
		t.Fatalf("follower stats role %v", fs.Role)
	}
	if fs.AppliedEpoch < e {
		t.Fatalf("follower applied %d, want >= %d", fs.AppliedEpoch, e)
	}
	if fs.PrimaryEpoch < fs.AppliedEpoch {
		t.Fatalf("follower primary epoch %d < applied %d", fs.PrimaryEpoch, fs.AppliedEpoch)
	}
}

func TestFollowerRejectsWrites(t *testing.T) {
	flat, err := table.New("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	_, faddrs, _, _ := startReplicated(t, flat, 1)
	fc, err := client.Dial(faddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if _, err := fc.Insert([]any{uint64(1), uint32(1), "x"}); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("insert on follower: %v, want ErrReadOnly", err)
	}
	if _, err := fc.Update(0, map[string]any{"qty": uint32(2)}); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("update on follower: %v, want ErrReadOnly", err)
	}
	if err := fc.Delete(0); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("delete on follower: %v, want ErrReadOnly", err)
	}
	// CreateIndex is a local read optimization, not a data mutation, so
	// followers accept it (see the package doc's secondary-index note).
	if err := fc.CreateIndex("order_id"); err != nil {
		t.Fatalf("create index on follower: %v", err)
	}
	stats, err := fc.IndexStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Column != "order_id" {
		t.Fatalf("follower index stats %+v want one entry for order_id", stats)
	}
}

// TestFollowerRouting verifies the pooled client sends eligible reads to
// followers — exactly-pinned snapshot reads and staleness-bounded latest
// reads — and falls back to the primary when followers are unavailable.
func TestFollowerRouting(t *testing.T) {
	st, err := shard.New("sales", salesSchema(), "order_id", 4)
	if err != nil {
		t.Fatal(err)
	}
	paddr, faddrs, fsrvs, reps := startReplicated(t, st, 2)
	c, err := client.DialOptions(paddr, client.Options{
		Followers:    faddrs,
		MaxStaleness: 1 << 20, // effectively unbounded for this test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows := make([][]any, 32)
	for i := range rows {
		rows[i] = []any{uint64(i), uint32(i), "x"}
	}
	if _, err := c.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(snap)
	e, ok := c.SnapshotEpoch(snap)
	if !ok {
		t.Fatal("snapshot epoch unknown despite followers configured")
	}
	for _, rep := range reps {
		waitFollowerEpoch(t, rep, e)
	}

	before := make([]uint64, len(fsrvs))
	for i, s := range fsrvs {
		before[i] = s.Requests()
	}
	for i := 0; i < 10; i++ {
		n, err := c.ValidRowsAt(snap)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(rows) {
			t.Fatalf("valid rows %d, want %d", n, len(rows))
		}
		sum, err := c.SumAt(snap, "qty")
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(31 * 32 / 2); sum != want {
			t.Fatalf("sum %d, want %d", sum, want)
		}
	}
	routed := uint64(0)
	for i, s := range fsrvs {
		routed += s.Requests() - before[i]
	}
	if routed == 0 {
		t.Fatal("no snapshot reads were routed to followers")
	}

	// Latest reads route under the staleness bound too.
	before2 := make([]uint64, len(fsrvs))
	for i, s := range fsrvs {
		before2[i] = s.Requests()
	}
	for i := 0; i < 10; i++ {
		if _, err := c.ValidRows(); err != nil {
			t.Fatal(err)
		}
	}
	routed2 := uint64(0)
	for i, s := range fsrvs {
		routed2 += s.Requests() - before2[i]
	}
	if routed2 == 0 {
		t.Fatal("no latest reads were routed to followers")
	}

	// Kill both followers: every read falls back to the primary, with
	// identical results.
	for _, s := range fsrvs {
		s.Close()
	}
	for i := 0; i < 4; i++ {
		n, err := c.ValidRowsAt(snap)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(rows) {
			t.Fatalf("fallback valid rows %d, want %d", n, len(rows))
		}
	}
}

// TestPinEpochGuards exercises OpPinEpoch's refusal paths end to end.
func TestPinEpochGuards(t *testing.T) {
	flat, err := table.New("sales", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	paddr, faddrs, _, reps := startReplicated(t, flat, 1)
	pc, err := client.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err := pc.Insert([]any{uint64(1), uint32(1), "a"}); err != nil {
		t.Fatal(err)
	}
	e := flat.Clock().Capture()
	waitFollowerEpoch(t, reps[0], e)

	// A snapshot read through a routed client at an epoch the follower
	// has NOT applied must fall back to the primary and still succeed.
	c, err := client.DialOptions(paddr, client.Options{Followers: faddrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reps[0].Close() // freeze the follower's applied epoch
	if _, err := pc.Insert([]any{uint64(2), uint32(2), "b"}); err != nil {
		t.Fatal(err)
	}
	flat.Clock().Capture()
	snap, err := c.Snapshot() // epoch beyond the frozen follower
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(snap)
	n, err := c.ValidRowsAt(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("valid rows %d, want 2", n)
	}
}
