package server

import (
	"hyrise/internal/metrics"
	"hyrise/internal/query"
	"hyrise/internal/shard"
	"hyrise/internal/table"
	"hyrise/internal/wire"
)

// opMetric is the pre-bound per-opcode instrument set.  serveConn indexes
// it by raw opcode byte — no map lookup, no label rendering, no
// allocation on the request path.
type opMetric struct {
	reqs *metrics.Counter
	errs *metrics.Counter
	lat  *metrics.Histogram
}

// serverMetrics binds every collector the server maintains.  A nil
// *serverMetrics (Options.NoMetrics) is fully inert: byOp yields nil
// instruments whose methods are no-ops, which is the baseline the
// BENCH_obs overhead comparison runs against.
type serverMetrics struct {
	reg  *metrics.Registry
	byOp [256]opMetric

	pipelined *metrics.Counter
	parallel  *metrics.Counter
	slowOps   *metrics.Counter

	mergeTotal     *metrics.Counter
	mergeAborted   *metrics.Counter
	rowsMerged     *metrics.Counter
	rowsReclaimed  *metrics.Counter
	mergeFreezeDur *metrics.Histogram
	mergeRunDur    *metrics.Histogram
	mergeCommitDur *metrics.Histogram
	mergeWallDur   *metrics.Histogram

	// Precise-retention accounting (PR 8 tentpole): how many dead versions
	// each GC freeze saw, how many the precise per-pin rule kept for live
	// pins, and how many the old min-pin watermark rule would have
	// reclaimed — rowsReclaimed vs gcLegacyReclaimable is the precise-vs-
	// watermark comparison, and gcRetained counts what live pins cost.
	gcDeadAtFreeze      *metrics.Counter
	gcRetained          *metrics.Counter
	gcLegacyReclaimable *metrics.Counter

	// Online-reshard instruments, fed by observeReshard after each
	// completed OpReshard / Table.Reshard.
	reshardTotal   *metrics.Counter
	reshardRows    *metrics.Counter
	reshardWall    *metrics.Histogram
	reshardCutover *metrics.Histogram
}

// at returns the instrument set for an opcode; nil-safe.
func (m *serverMetrics) at(op uint8) opMetric {
	if m == nil {
		return opMetric{}
	}
	return m.byOp[op]
}

// Registry returns the server's metric registry (nil with
// Options.NoMetrics set).  Callers may add their own collectors; the
// store's gauges and the per-op series are already registered.
func (s *Server) Registry() *metrics.Registry { return s.mxReg() }

func (s *Server) mxReg() *metrics.Registry {
	if s.mx == nil {
		return nil
	}
	return s.mx.reg
}

// newServerMetrics builds the registry for one server: per-op series for
// every protocol opcode, merge/GC instruments fed by per-partition merge
// hooks, and scrape-time gauges over the store, the epoch clock, the op
// log, the replica applier, index routing and the query planner.
func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{reg: reg}

	for _, op := range wire.Opcodes() {
		name := wire.OpName(op)
		m.byOp[op] = opMetric{
			reqs: reg.Counter("hyrise_server_requests_total",
				"Requests handled, by opcode.", "op", name),
			errs: reg.Counter("hyrise_server_errors_total",
				"Requests answered with an error status, by opcode.", "op", name),
			lat: reg.Histogram("hyrise_server_op_seconds",
				"Request handling latency, by opcode.", "op", name),
		}
	}
	m.pipelined = reg.Counter("hyrise_server_pipelined_requests_total",
		"Requests that arrived while a previous request on the same connection was still queued.")
	m.parallel = reg.Counter("hyrise_server_parallel_requests_total",
		"Pipelined read requests dispatched for concurrent execution on their connection.")
	m.slowOps = reg.Counter("hyrise_server_slow_ops_total",
		"Requests that exceeded the slow-op threshold.")
	reg.GaugeFunc("hyrise_server_connections",
		"Live client sessions.", func() float64 { return float64(s.ActiveConns()) })
	reg.GaugeFunc("hyrise_server_snapshots",
		"Registered (unreleased) snapshot tokens.", func() float64 { return float64(s.SnapshotCount()) })

	// Epoch clock and pins (the GC retention inputs).
	clock := s.clock()
	reg.GaugeFunc("hyrise_epoch_current",
		"Current epoch of the store clock.", func() float64 { return float64(clock.Now()) })
	reg.GaugeFunc("hyrise_epoch_pins",
		"Live pinned views on the store clock.", func() float64 { return float64(clock.Pins()) })
	reg.GaugeFunc("hyrise_epoch_watermark",
		"GC watermark: the minimum pinned epoch, or the current epoch with nothing pinned.",
		func() float64 { return float64(clock.Watermark()) })

	// Merge / GC instruments, fed by per-partition hooks (below).
	m.mergeTotal = reg.Counter("hyrise_merge_total", "Committed merges across all partitions.")
	m.mergeAborted = reg.Counter("hyrise_merge_aborted_total", "Merges cancelled and rolled back.")
	m.rowsMerged = reg.Counter("hyrise_merge_rows_merged_total",
		"Delta rows folded into main partitions by merges.")
	m.rowsReclaimed = reg.Counter("hyrise_merge_rows_reclaimed_total",
		"Dead row versions dropped by garbage-collecting merges.")
	m.gcDeadAtFreeze = reg.Counter("hyrise_gc_dead_versions_total",
		"Dead row versions observed by GC merge freezes (reclaimed or retained).")
	m.gcRetained = reg.Counter("hyrise_gc_versions_retained_total",
		"Dead versions kept by precise retention because a live pin can still see them.")
	m.gcLegacyReclaimable = reg.Counter("hyrise_gc_watermark_reclaimable_total",
		"Dead versions the coarse min-pin watermark rule would have reclaimed; compare with hyrise_merge_rows_reclaimed_total for the precise-retention gain.")
	m.mergeFreezeDur = reg.Histogram("hyrise_merge_phase_seconds",
		"Merge phase durations.", "phase", "freeze")
	m.mergeRunDur = reg.Histogram("hyrise_merge_phase_seconds",
		"Merge phase durations.", "phase", "merge")
	m.mergeCommitDur = reg.Histogram("hyrise_merge_phase_seconds",
		"Merge phase durations.", "phase", "commit")
	m.mergeWallDur = reg.Histogram("hyrise_merge_wall_seconds",
		"End-to-end merge duration including lock phases.")
	// Partition-dependent gauges re-resolve the partition list on every
	// scrape: an online reshard appends partitions after construction, and
	// a stale captured slice would silently stop covering them.
	reg.GaugeFunc("hyrise_gc_watermark",
		"Highest watermark a committed GC merge applied (max over partitions).",
		func() float64 {
			var w uint64
			for _, p := range s.st.Partitions() {
				if v := p.GCWatermark(); v > w {
					w = v
				}
			}
			return float64(w)
		})
	reg.GaugeFunc("hyrise_gc_watermark_age_epochs",
		"Epochs elapsed since the last applied GC watermark (staleness of reclamation).",
		func() float64 {
			var w uint64
			for _, p := range s.st.Partitions() {
				if v := p.GCWatermark(); v > w {
					w = v
				}
			}
			now := clock.Now()
			if w == 0 || now <= w {
				return 0
			}
			return float64(now - w)
		})
	reg.CounterFunc("hyrise_gc_rows_retired_total",
		"Row ids retired by garbage collection.",
		func() float64 { return float64(s.st.StoreStats().RetiredRows) })

	// Storage shape: delta fill drives the merge trigger of §4.
	reg.GaugeFunc("hyrise_store_main_rows", "Main-partition tuple count (summed over shards).",
		func() float64 { return float64(s.st.MainRows()) })
	reg.GaugeFunc("hyrise_store_delta_rows", "Delta tuple count (summed over shards).",
		func() float64 { return float64(s.st.DeltaRows()) })
	reg.GaugeFunc("hyrise_store_delta_fill_fraction",
		"Delta rows over main rows, the merge-trigger metric of §4.",
		func() float64 {
			nm, nd := s.st.MainRows(), s.st.DeltaRows()
			if nm == 0 {
				if nd == 0 {
					return 0
				}
				return 1
			}
			return float64(nd) / float64(nm)
		})

	// Replication: primary-side op log, follower-side apply lag.
	if l := s.opts.OpLog; l != nil {
		reg.GaugeFunc("hyrise_oplog_first_lsn", "Oldest LSN still retained in the op log.",
			func() float64 { first, _ := l.Bounds(); return float64(first) })
		reg.GaugeFunc("hyrise_oplog_next_lsn", "LSN the next appended op will get.",
			func() float64 { return float64(l.NextLSN()) })
		reg.GaugeFunc("hyrise_oplog_entries", "Ops currently retained in the log.",
			func() float64 { return float64(l.Len()) })
		reg.GaugeFunc("hyrise_oplog_subscribers", "Connected replication followers.",
			func() float64 { return float64(s.Subscribers()) })
	}
	if rep := s.opts.Replica; rep != nil {
		reg.GaugeFunc("hyrise_replica_applied_epoch",
			"Highest epoch at which local reads exactly match the primary.",
			func() float64 { return float64(rep.AppliedEpoch()) })
		reg.GaugeFunc("hyrise_replica_primary_epoch",
			"Primary epoch as of the last heartbeat.",
			func() float64 { return float64(rep.PrimaryEpoch()) })
		reg.GaugeFunc("hyrise_replica_lag_epochs",
			"Primary epoch minus applied epoch.",
			func() float64 {
				p, a := rep.PrimaryEpoch(), rep.AppliedEpoch()
				if p <= a {
					return 0
				}
				return float64(p - a)
			})
		reg.GaugeFunc("hyrise_replica_applied_lsn",
			"Next op-log position this follower will apply.",
			func() float64 { return float64(rep.AppliedLSN()) })
	}

	// Index routing: how reads were actually served.
	reg.CounterFunc("hyrise_index_reads_total",
		"Point/range reads served from a group-key index vs. a column scan.",
		func() float64 {
			var n uint64
			for _, p := range s.st.Partitions() {
				i, _ := p.RoutingCounts()
				n += i
			}
			return float64(n)
		}, "route", "indexed")
	reg.CounterFunc("hyrise_index_reads_total",
		"Point/range reads served from a group-key index vs. a column scan.",
		func() float64 {
			var n uint64
			for _, p := range s.st.Partitions() {
				_, sc := p.RoutingCounts()
				n += sc
			}
			return float64(n)
		}, "route", "scanned")

	// Query planner: driving-predicate selectivity estimates vs. actuals.
	// Process-wide by construction (the planner is stateless); still scraped
	// here so one endpoint covers every subsystem.
	reg.CounterFunc("hyrise_query_seeds_total", "Query seed phases executed.",
		func() float64 { return float64(query.Planner().Runs) })
	reg.CounterFunc("hyrise_query_estimated_rows_total",
		"Sum of driving-predicate candidate-set estimates.",
		func() float64 { return float64(query.Planner().EstimatedRows) })
	reg.CounterFunc("hyrise_query_actual_rows_total",
		"Sum of seed candidate sets actually produced.",
		func() float64 { return float64(query.Planner().ActualRows) })
	reg.CounterFunc("hyrise_query_indexed_seeds_total",
		"Seed phases served by a group-key index.",
		func() float64 { return float64(query.Planner().IndexedSeeds) })

	// Online resharding (protocol v5): migration and cutover instruments,
	// plus live shard-topology gauges on sharded stores.
	m.reshardTotal = reg.Counter("hyrise_reshard_total", "Completed online reshards.")
	m.reshardRows = reg.Counter("hyrise_reshard_rows_migrated_total",
		"Row versions relocated into new shard windows by reshard migration passes.")
	m.reshardWall = reg.Histogram("hyrise_reshard_wall_seconds",
		"End-to-end online reshard duration (prepare, migrate, cutover).")
	m.reshardCutover = reg.Histogram("hyrise_reshard_cutover_seconds",
		"Duration of the atomic cutover step publishing the new routing.")
	if sh := s.sharded; sh != nil {
		reg.GaugeFunc("hyrise_store_shards", "Active shard count (current routing window).",
			func() float64 { return float64(sh.NumShards()) })
		reg.GaugeFunc("hyrise_store_partitions",
			"Physical partition count, including sealed pre-reshard partitions.",
			func() float64 { return float64(sh.NumParts()) })
		reg.GaugeFunc("hyrise_shard_map_version", "Version of the published shard map.",
			func() float64 { return float64(sh.MapVersion()) })
		reg.GaugeFunc("hyrise_store_resharding", "1 while a reshard migration is in flight.",
			func() float64 {
				if sh.Resharding() {
					return 1
				}
				return 0
			})
	}

	for _, p := range s.st.Partitions() {
		p.OnMerge(m.observeMerge)
	}
	if sh := s.sharded; sh != nil {
		// Partitions created by a later reshard must feed the same merge
		// instruments as the originals.
		sh.OnPartition(func(p *table.Table, phys int) { p.OnMerge(m.observeMerge) })
	}
	return m
}

// observeMerge is the per-partition merge hook: it runs after the merge
// released the table locks, once per Merge call, in commit order.
func (m *serverMetrics) observeMerge(rep table.Report) {
	if rep.Aborted {
		m.mergeAborted.Inc()
	} else {
		m.mergeTotal.Inc()
		m.rowsMerged.Add(uint64(rep.RowsMerged))
		m.rowsReclaimed.Add(uint64(rep.RowsReclaimed))
		m.gcDeadAtFreeze.Add(uint64(rep.DeadAtFreeze))
		if kept := rep.DeadAtFreeze - rep.RowsReclaimed; kept > 0 {
			m.gcRetained.Add(uint64(kept))
		}
		m.gcLegacyReclaimable.Add(uint64(rep.LegacyReclaimable))
	}
	m.mergeFreezeDur.ObserveDuration(rep.Freeze)
	m.mergeRunDur.ObserveDuration(rep.MergeRun)
	m.mergeCommitDur.ObserveDuration(rep.Commit)
	m.mergeWallDur.ObserveDuration(rep.Wall)
}

// observeReshard feeds the reshard instruments; nil-safe like every other
// serverMetrics entry point.
func (m *serverMetrics) observeReshard(rep shard.ReshardReport) {
	if m == nil {
		return
	}
	m.reshardTotal.Inc()
	m.reshardRows.Add(uint64(rep.RowsMigrated))
	m.reshardWall.ObserveDuration(rep.Wall)
	m.reshardCutover.ObserveDuration(rep.CutoverWall)
}

// timing reports whether latency needs to be measured at all: with
// metrics off and no slow-op threshold, serveConn skips both time.Now
// calls on the request path.
func (s *Server) timing() bool {
	return s.mx != nil || s.opts.SlowOpThreshold > 0
}
