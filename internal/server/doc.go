// Package server exposes the full Store surface — inserts, insert-only
// updates and deletes, typed reads, aggregates, conjunctive queries,
// snapshot capture and pinned-snapshot reads, statistics and merge
// control — over a length-prefixed binary protocol on TCP, turning the
// embedded column store into a standalone database server (cmd/hyrised).
// The matching Go client lives in hyrise/client; the encoding both sides
// share lives in hyrise/internal/wire.
//
// # Protocol
//
// Transport is any stream connection (the daemon uses TCP).  Every
// message is one frame: a 4-byte big-endian payload length followed by
// the payload, capped at wire.MaxFrame (16 MiB).  A request payload is
// one opcode byte plus the op-specific body; a response payload is one
// status byte — wire.StatusOK followed by the result body, or an error
// code followed by a message string.  Scalars are big-endian; strings
// are u32-length-prefixed; column values travel as a one-byte type tag
// (uint32 | uint64 | string) plus the scalar, mirroring the store's
// column types.  The full body layout of every opcode is documented on
// the wire.Op* constants.
//
// # Session model
//
// Each connection is an independent session with one reader goroutine.
// Responses are always delivered in request order, so clients may
// pipeline: send N requests back to back, then read N responses
// (hyrise/client batches inserts this way).  Execution order is looser
// than response order on a pipelined connection: read-only requests
// (lookups, ranges, scans, aggregates, stats — anything that mutates
// nothing) may execute concurrently on a server-wide bounded worker
// pool, with their finished responses re-sequenced into request order by
// a per-connection writer.  Everything else — mutations, snapshot
// capture and release, merge, index creation, reshard, hello — is a
// barrier: the session waits for every read dispatched ahead of it to
// finish, executes the op alone, and only then resumes dispatching, so a
// read pipelined after a write on the same connection always observes
// that write, exactly as under serial execution.  Reads between two
// barriers commute (they mutate nothing and each resolves its own
// epoch), so the reordering is invisible: every response is
// byte-identical to serial execution.  A connection that never pipelines
// pays none of this — it is served on the classic one-goroutine serial
// path.
//
// There is no per-session state beyond the connection itself — snapshot
// tokens (below) are server-wide, so a token captured on one connection
// is valid on every other connection of the same server, which lets a
// pooled client spread pinned reads across its connections.  Concurrency
// across sessions is the store's own concurrency: handlers call straight
// into Store methods, whose shard locks and epoch clock do the
// coordination.
//
// # Snapshots
//
// OpSnapshot captures a Store.Snapshot (one atomic epoch fetch-add,
// consistent across every shard) and registers it in the server's
// snapshot registry under a fresh nonzero token, which is returned to
// the client.  Read requests carry a token field: zero reads latest,
// a registered token reads frozen at that snapshot's epoch no matter
// how many inserts, updates, deletes or merges commit in between, and
// an unknown token fails with wire.StatusErrBadSnapshot.
//
// Registered snapshots are not free: each one pins the store's GC
// watermark at its epoch, so garbage-collecting merges keep every
// version the snapshot can see for as long as the token is registered.
// The registry is therefore bounded — Options.MaxSnapshots, default
// DefaultMaxSnapshots (1024) — and OpSnapshot past the cap fails with
// wire.StatusErrTooManySnapshots until a token is released.  The bound
// exists precisely because a client capturing tokens in a loop, or
// crashing without releasing, would otherwise grow the registry and pin
// dead versions forever.  OpSnapshotRelease drops a token and its pin;
// Server.ReleaseAllSnapshots drops them all (cmd/hyrised uses it after
// the shutdown drain so the final compacting merge is not pinned by
// stale tokens).
//
// # Scans at the server boundary
//
// Scan callbacks run under the table's read lock and must not re-enter
// the table (the PR 3 caveat): a concurrent writer queued between the
// two read-lock acquisitions would deadlock the server.  OpScan with
// row materialization therefore collects row ids and column values
// under the scan, lets the scan finish, and only then reads the other
// columns of the matched rows — row versions are immutable, so the
// late reads are identical to what the scan saw.
//
// # Version negotiation
//
// OpHello carries the client's protocol version (u32) and answers with
// the server's version plus its replication role (wire.RolePrimary or
// wire.RoleFollower); both sides then speak the minimum of the two.  The
// exchange is stateless — the server answers every hello identically —
// so any connection of a pool may negotiate independently.  A version-1
// server (PR 4-6) does not know the opcode and answers
// wire.StatusErrBadRequest, which clients treat as "version 1, primary":
// every protocol-1 request keeps working unchanged against either side.
// Unknown future opcodes fail the same way, so speaking v2 to a v1
// server degrades cleanly rather than desynchronizing the stream.
//
// # Secondary indexes (protocol v3)
//
// OpCreateIndex builds a merge-maintained group-key index on one column
// (body: column name; empty response) and OpIndexStats reports
// per-column index statistics (posting count, size, rebuild count,
// last rebuild duration — summed across shards on a sharded store).
// Both are idempotent reads of store structure rather than data
// mutations, so unlike the four write opcodes they are deliberately
// allowed on read-only followers: a follower may index its local copy
// to speed up the selective reads routed to it, independent of whether
// the primary carries the same index.  Indexes are in-memory only —
// they are not part of the persist format or the replication stream,
// and must be re-created after a restart or re-bootstrap.
//
// # Replication
//
// A server whose store has an operation log attached (Options.OpLog) is
// a replication primary.  OpSubscribe turns the requesting connection
// into a one-way replication stream; it must be the only request on its
// connection.  The request body is a mode byte plus a u64 LSN:
//
//   - wire.SubSnapshot bootstraps a follower: the server cuts the log
//     position, responds StatusOK + mode + the cut LSN, streams a
//     consistent persist-format snapshot image as FrameSnapChunk frames
//     terminated by FrameSnapEnd, and then streams ops from the cut.
//   - wire.SubTail resumes from the given LSN.  If the log no longer
//     covers it (trimmed past the follower's position) the server
//     refuses with wire.StatusErrStaleEpoch before any stream bytes, and
//     the follower must re-bootstrap; a tail is never silently degraded
//     to a snapshot, because the follower cannot absorb a second image.
//
// After the OK response the connection carries frames of ops
// (FrameOps: a count plus oplog-encoded records, each stamped with the
// epoch it committed under and its LSN) interleaved with heartbeats
// (FrameHeartbeat: safe epoch, primary epoch, next LSN).  A heartbeat is
// sent only when the subscriber is exactly caught up, so its safe epoch
// is exact: a follower that has applied every op below the heartbeat's
// LSN serves reads at the safe epoch that are bit-identical to the
// primary's at the same epoch.  Stream-side failures after the OK travel
// as FrameError frames.  internal/replica implements the follower side;
// oplog ops replayed through Table.ApplyInsert/ApplyUpdate/
// ApplyInvalidate reproduce row ids, epochs and values exactly.
//
// A server created with Options.Replica set is a read-only follower:
// mutating opcodes fail with wire.StatusErrReadOnly, OpSnapshot pins the
// applied epoch (the latest its store is exact at), and OpPinEpoch pins
// an explicit epoch — refusing epochs the follower has not applied or
// whose history its merges already garbage-collected
// (wire.StatusErrStaleEpoch) — which is how the pooled client routes a
// primary snapshot's reads to a follower with exact-answer semantics.
// OpServerStats reports role, protocol version, op-log bounds, follower
// count and applied/primary epochs on either side, giving clients a
// replication-lag measurement.
//
// # Observability (protocol v4)
//
// Every server carries a metric registry (hyrise/internal/metrics)
// unless built with Options.NoMetrics: per-opcode request/error counters
// and latency histograms bound at construction (no allocation or map
// lookup on the request path), plus gauges over the store, epoch clock,
// GC watermark, op log, replica state, index routing and query planner.
// Server.Registry exposes it; Server.ObsHandler serves it over HTTP as
// /metrics (Prometheus text exposition) together with /healthz
// (readiness: a primary is ready unless draining, a follower once it has
// a primary heartbeat; min_epoch=N tightens either to "epoch >= N") and
// the /debug/pprof/ profiles.  Options.SlowOpThreshold makes any op
// slower than the threshold emit one structured slog line with the
// opcode, duration, rows touched, snapshot epoch, status and remote
// address.
//
// OpMetrics (protocol v4) exposes the same registry over the data
// protocol.  The request body is empty; the response is u32 n followed
// by n samples, each a string (the full series name with labels rendered
// in, e.g. `hyrise_server_requests_total{op="lookup"}`; histogram
// families contribute their _count and _sum, with durations in seconds)
// and the value as float64 bits in a u64.  Followers answer locally —
// their lag gauges are exactly what a client-side topology check wants —
// and a NoMetrics server answers an empty list.  OpServerStats gained a
// v4 tail after the applied LSN: uptime (u64 nanoseconds), then u16
// count and per entry opcode u8, requests u64, errors u64, listing every
// opcode served at least once.  Pre-v4 clients stop decoding at the LSN,
// so the tail is backward compatible.
//
// # Online resharding (protocol v5)
//
// OpReshard changes a sharded store's active shard count online (body:
// u32 shard count; see hyrise/internal/shard for the migration
// protocol).  The op blocks until the migration completes and answers
// with the report: from u32, to u32, rows migrated u64, wall and cutover
// nanoseconds u64, shard-map version u64 and cutover epoch u64.  Reads
// and writes on every other connection keep flowing throughout — the op
// is a barrier only on its own connection.  It fails with
// wire.StatusErrBadRequest on a flat store and wire.StatusErrReadOnly on
// a follower (followers converge by replaying the reshard ops from the
// primary's op log instead).  OpServerStats gained a v5 tail after the
// v4 per-op counts: active shards u32, physical partitions u32,
// shard-map version u64 and a resharding-in-progress byte, so clients
// can watch a migration land.
//
// # Shutdown
//
// Server.Shutdown stops accepting connections, lets every in-flight
// request finish and its response flush, closes idle connections, and
// returns when the last session drains (or the context expires, at
// which point remaining connections are closed forcibly).  Sessions
// notice the drain after their current request and close; pipelined
// requests that were still queued behind it are dropped with the
// connection, which clients observe as io.EOF and may retry elsewhere.
package server
