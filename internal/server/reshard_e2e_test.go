package server_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hyrise/client"
	"hyrise/internal/shard"
	"hyrise/internal/table"
)

// TestReshardOverProtocol drives an online reshard end to end through
// the wire protocol: concurrent clients read pinned snapshots with zero
// failures while Client.Reshard migrates the store 1 -> 4 shards, the
// report and the ServerStats topology tail reflect the cutover, and the
// reshard counters land in /metrics.
func TestReshardOverProtocol(t *testing.T) {
	st, err := shard.New("sales", salesSchema(), "order_id", 1)
	if err != nil {
		t.Fatal(err)
	}
	c, _, addr := startServer(t, st)

	const rows = 1000
	batch := make([][]any, 0, 100)
	for i := 0; i < rows; i++ {
		batch = append(batch, []any{uint64(i), uint32(i), fmt.Sprintf("p-%d", i)})
		if len(batch) == 100 {
			if _, err := c.InsertBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}

	// Readers on their own pooled client: capture a snapshot, verify a
	// handful of keys and the row-count invariant at it, release.  Every
	// read must succeed mid-migration.
	rc, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	stop := make(chan struct{})
	var failures atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for probe := 0; ; probe++ {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := rc.Snapshot()
				if err != nil {
					failures.Add(1)
					t.Errorf("snapshot: %v", err)
					return
				}
				key := uint64((r*997 + probe*131) % rows)
				ids, err := rc.LookupAt(snap, "order_id", key)
				if err != nil || len(ids) != 1 {
					failures.Add(1)
					t.Errorf("LookupAt(%d) = %v, %v", key, ids, err)
				}
				if n, err := rc.ValidRowsAt(snap); err != nil || n != rows {
					failures.Add(1)
					t.Errorf("ValidRowsAt = %d, %v", n, err)
				}
				rc.Release(snap)
			}
		}(r)
	}

	rep, err := c.Reshard(4)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if failures.Load() != 0 {
		t.Fatalf("%d failed reads during migration", failures.Load())
	}
	if rep.From != 1 || rep.To != 4 || rep.RowsMigrated != rows {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MapVersion == 0 || rep.CutoverEpoch == 0 || rep.Wall <= 0 {
		t.Fatalf("report missing cutover data: %+v", rep)
	}

	// Live topology over the wire.
	stats, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 4 || stats.Partitions != 5 || stats.ShardMapVersion != rep.MapVersion || stats.Resharding {
		t.Fatalf("ServerStats topology = %+v", stats)
	}
	// Shards() deliberately keeps the dial-time count.
	if c.Shards() != 1 {
		t.Fatalf("Shards() = %d, want dial-time 1", c.Shards())
	}

	// Data intact through the new routing.
	sum, err := c.Sum("qty")
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < rows; i++ {
		want += uint64(i)
	}
	if sum != want {
		t.Fatalf("Sum = %d want %d", sum, want)
	}

	// The reshard metrics moved.
	samples, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"hyrise_reshard_total":               1,
		"hyrise_reshard_rows_migrated_total": rows,
		"hyrise_store_shards":                4,
		"hyrise_shard_map_version":           float64(rep.MapVersion),
	} {
		if v, ok := client.MetricValue(samples, name); !ok || v != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, v, ok, want)
		}
	}

	// A flat store has nothing to reshard.
	flat, err := table.New("flat", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	fc, _, _ := startServer(t, flat)
	if _, err := fc.Reshard(4); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("flat reshard: %v", err)
	}
}
