package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyrise/internal/epoch"
	"hyrise/internal/oplog"
	"hyrise/internal/shard"
	"hyrise/internal/table"
	"hyrise/internal/wire"
)

// Store is the storage surface the server exposes over the network.  It
// is structurally identical to the root package's Store interface, so
// both *table.Table and *shard.Table (and any hyrise.Store value backed
// by one of them) satisfy it.
type Store interface {
	Name() string
	Schema() table.Schema
	Insert(values []any) (int, error)
	InsertRows(rows [][]any) ([]int, error)
	Update(row int, changes map[string]any) (int, error)
	Delete(row int) error
	Row(row int) ([]any, error)
	IsValid(row int) bool
	Rows() int
	ValidRows() int
	MainRows() int
	DeltaRows() int
	Merging() bool
	RequestMerge(ctx context.Context, opts table.MergeOptions) (table.Report, error)
	Snapshot() table.View
	ValidRowsAt(v table.View) int
	VisibleAt(v table.View, row int) bool
	CreateIndex(column string) error
	IndexStats() []table.IndexStats
	StoreStats() table.StoreStats
	Partitions() []*table.Table
}

// DefaultMaxSnapshots bounds the snapshot registry when
// Options.MaxSnapshots is zero.  Every registered snapshot pins the GC
// watermark at its epoch, so an unbounded registry would let one
// misbehaving client (capturing in a loop, or crashing without Release)
// pin dead versions forever.
const DefaultMaxSnapshots = 1024

// ReplicaInfo is the follower-state surface a replica applier
// (internal/replica) exposes to the server that fronts it: the epoch the
// local store exactly matches the primary at, the primary's epoch as of
// the last heartbeat, and the next op-log position to apply.
type ReplicaInfo interface {
	AppliedEpoch() uint64
	PrimaryEpoch() uint64
	AppliedLSN() uint64
}

// Options configures a Server.
type Options struct {
	// Logger, if non-nil, receives connection-level diagnostics (accept
	// failures, protocol violations) and slow-op lines as structured
	// records.  Per-request errors are reported to the client, not
	// logged.  Nil discards.
	Logger *slog.Logger
	// MaxSnapshots caps the snapshot registry (0 = DefaultMaxSnapshots;
	// negative = unlimited).  OpSnapshot beyond the cap fails with
	// wire.StatusErrTooManySnapshots until a token is released.
	MaxSnapshots int
	// OpLog, when set, makes this server a replication primary: OpSubscribe
	// bootstraps followers (snapshot + log tail) and streams live ops.  The
	// log must already be attached to the store's write path (AttachOplog)
	// and be stamped by the store's clock.
	OpLog *oplog.Log
	// Replica, when set, makes this server a read-only follower fed by the
	// given applier: mutations fail with wire.StatusErrReadOnly, and
	// snapshots are captured at the applier's applied epoch — the highest
	// epoch at which local reads exactly match the primary's.
	Replica ReplicaInfo
	// SlowOpThreshold, when positive, logs one structured warning for
	// every request whose handling exceeds it (opcode, duration, rows
	// touched, snapshot epoch).  Zero disables slow-op tracing.
	SlowOpThreshold time.Duration
	// NoMetrics disables the metric registry entirely: no per-op
	// accounting, no scrape-time gauges, Registry() returns nil.  The
	// request path then carries only nil checks — this is the baseline
	// the BENCH_obs overhead comparison measures against.
	NoMetrics bool
}

func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.New(slog.DiscardHandler)
}

// Server serves the wire protocol over a Store.  Create with New, start
// with Serve, stop with Shutdown (graceful) or Close (immediate).
type Server struct {
	st   Store
	opts Options

	// Exactly one of flat/sharded is non-nil; typed column dispatch
	// switches on it (generic handles cannot hang off an interface).
	flat    *table.Table
	sharded *shard.Table

	mu       sync.Mutex
	listener net.Listener
	conns    map[*conn]struct{}
	draining bool

	wg sync.WaitGroup // one per live session

	snapMu   sync.Mutex
	snaps    map[uint64]table.View
	nextSnap uint64

	// drainCh is closed when a drain begins; subscribe streamers select on
	// it so a graceful shutdown wakes them out of their idle waits.
	drainCh   chan struct{}
	drainOnce sync.Once

	subMu sync.Mutex
	subs  map[*conn]struct{} // live replication subscribers

	requests atomic.Uint64
	started  time.Time      // ServerStats uptime base
	log      *slog.Logger   // never nil; discards when Options.Logger is nil
	mx       *serverMetrics // nil with Options.NoMetrics

	// lifeCtx is cancelled when sessions are force-closed (Close, or
	// Shutdown's deadline); long-running handler work (merges) runs
	// under it so a stuck request cannot outlive the force-close.
	lifeCtx    context.Context
	cancelLife context.CancelFunc

	// readPool bounds how many pipelined read requests execute
	// concurrently across ALL connections: each slot is one worker
	// goroutine.  When the pool is saturated a request simply runs in its
	// connection's reader goroutine — backpressure instead of unbounded
	// goroutine growth.
	readPool chan struct{}
}

// New returns a stopped server over st.  The Store must be backed by
// *table.Table or *shard.Table (both root topologies are).
func New(st Store, opts Options) (*Server, error) {
	s := &Server{
		st:      st,
		opts:    opts,
		conns:   make(map[*conn]struct{}),
		snaps:   make(map[uint64]table.View),
		drainCh: make(chan struct{}),
		subs:    make(map[*conn]struct{}),
		started: time.Now(),
		log:     opts.logger(),
	}
	s.lifeCtx, s.cancelLife = context.WithCancel(context.Background())
	s.readPool = make(chan struct{}, max(2, runtime.GOMAXPROCS(0)))
	switch x := st.(type) {
	case *table.Table:
		s.flat = x
	case *shard.Table:
		s.sharded = x
	default:
		return nil, fmt.Errorf("server: unsupported Store implementation %T", st)
	}
	if !opts.NoMetrics {
		s.mx = newServerMetrics(s)
	}
	return s, nil
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts connections on l until Shutdown or Close, blocking.  It
// returns ErrServerClosed after a clean stop, or the accept error that
// ended the loop otherwise.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		c := &conn{nc: nc}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// Shutdown gracefully stops the server: no new connections are accepted,
// idle sessions close, and in-flight requests run to completion with
// their responses flushed.  When ctx expires first, the remaining
// sessions are closed forcibly and ctx.Err is returned.  Either way,
// every snapshot still registered is released on the way out: tokens are
// this server instance's state, no client can use them after the stop,
// and leaving their pins behind would freeze the store's GC watermark
// forever (the store itself may well outlive the server — hyrise.Serve
// embedders keep using it locally).
func (s *Server) Shutdown(ctx context.Context) error {
	defer s.ReleaseAllSnapshots()
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.closeConns(false)
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			s.closeConns(true)
			<-done
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// Close stops the server immediately, dropping in-flight requests.  Like
// Shutdown it releases every registered snapshot pin.
func (s *Server) Close() error {
	s.beginDrain()
	s.closeConns(true)
	s.wg.Wait()
	s.ReleaseAllSnapshots()
	return nil
}

func (s *Server) beginDrain() {
	s.mu.Lock()
	s.draining = true
	l := s.listener
	s.mu.Unlock()
	s.drainOnce.Do(func() { close(s.drainCh) })
	if l != nil {
		l.Close()
	}
}

// closeConns closes sessions: idle ones always (they are blocked waiting
// for the first byte of a next request, which will never be answered
// once draining), active ones only when force is set.  A session counts
// as active from the moment its next request starts arriving (serveConn
// peeks before decoding), so a request already in flight when the drain
// begins is executed and answered, not cut off mid-frame.  Force-close
// also cancels lifeCtx so in-flight merges abort instead of outliving
// the deadline.
func (s *Server) closeConns(force bool) {
	if force {
		s.cancelLife()
	}
	s.mu.Lock()
	targets := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		if force || c.idle() {
			targets = append(targets, c)
		}
	}
	s.mu.Unlock()
	for _, c := range targets {
		c.nc.Close()
	}
}

// Requests returns the number of requests handled since start.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// Subscribers returns the number of connected replication followers.
func (s *Server) Subscribers() int {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	return len(s.subs)
}

func (s *Server) addSubscriber(c *conn) {
	s.subMu.Lock()
	s.subs[c] = struct{}{}
	s.subMu.Unlock()
}

func (s *Server) removeSubscriber(c *conn) {
	s.subMu.Lock()
	delete(s.subs, c)
	s.subMu.Unlock()
}

// clock returns the store's epoch clock (shared across shards).
func (s *Server) clock() *epoch.Clock {
	if s.flat != nil {
		return s.flat.Clock()
	}
	return s.sharded.Clock()
}

// role reports what OpHello and OpServerStats announce.
func (s *Server) role() uint8 {
	if s.opts.Replica != nil {
		return wire.RoleFollower
	}
	return wire.RolePrimary
}

// ActiveConns returns the number of live sessions.
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// SnapshotCount returns the number of registered (unreleased) snapshots.
func (s *Server) SnapshotCount() int {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return len(s.snaps)
}

// maxSnapshots resolves the registry cap.
func (s *Server) maxSnapshots() int {
	switch {
	case s.opts.MaxSnapshots == 0:
		return DefaultMaxSnapshots
	case s.opts.MaxSnapshots < 0:
		return int(^uint(0) >> 1)
	default:
		return s.opts.MaxSnapshots
	}
}

// registerSnapshot captures a store snapshot under a fresh token and
// returns the token and the snapshot's epoch.  On a primary this is a
// fresh pinned capture; on a follower it is a pinned view at the applied
// epoch, the highest epoch at which local state exactly equals the
// primary's.  The registry is bounded: each registered view pins the GC
// watermark, so past the cap the capture is refused (and the just-taken
// pin released) instead of letting a leaky client pin history forever.
func (s *Server) registerSnapshot() (uint64, uint64, error) {
	var v table.View
	if rep := s.opts.Replica; rep != nil {
		e := rep.AppliedEpoch()
		if e == 0 {
			return 0, 0, fmt.Errorf("%w: follower has not applied any epoch yet", errBadSnapshot)
		}
		var err error
		if v, err = s.pinAt(e); err != nil {
			return 0, 0, err
		}
	} else {
		v = s.st.Snapshot()
		if l := s.opts.OpLog; l != nil {
			// The capture advanced the clock: wake caught-up subscribers
			// so the new safe epoch heartbeats immediately and followers
			// can pin this snapshot's epoch without waiting an idle tick.
			l.Wake()
		}
	}
	tok, err := s.registerView(v)
	return tok, v.Epoch(), err
}

// registerPinned pins an explicit epoch under a fresh token (OpPinEpoch):
// the follower-routing path of the pooled client uses it to read at the
// exact epoch of a primary snapshot.  The epoch must not be in the future
// — beyond Now() on a primary, beyond the applied epoch on a follower —
// and its history must still be intact (see pinAt).
func (s *Server) registerPinned(e uint64) (uint64, error) {
	if e == 0 {
		return 0, fmt.Errorf("%w: cannot pin epoch 0", wire.ErrMalformed)
	}
	if rep := s.opts.Replica; rep != nil {
		if a := rep.AppliedEpoch(); e > a {
			return 0, fmt.Errorf("%w: epoch %d not applied yet (applied %d)", errStaleEpoch, e, a)
		}
	} else if now := s.clock().Now(); e > now {
		return 0, fmt.Errorf("%w: epoch %d is in the future (now %d)", errBadSnapshot, e, now)
	}
	v, err := s.pinAt(e)
	if err != nil {
		return 0, err
	}
	return s.registerView(v)
}

// pinAt pins epoch e on the store's clock and verifies e's history is
// still complete on every partition.  The pin is registered before the
// check, so any garbage-collecting merge either sees the pin when it
// computes its watermark (and keeps e's history) or froze earlier — in
// which case its intent is visible through GCBound and caught here.
func (s *Server) pinAt(e uint64) (table.View, error) {
	v := table.PinnedViewAt(s.clock(), e)
	for _, p := range s.st.Partitions() {
		if b := p.GCBound(); b > e {
			v.Release()
			return table.View{}, fmt.Errorf("%w: epoch %d already below GC bound %d", errStaleEpoch, e, b)
		}
	}
	return v, nil
}

// registerView files a captured view in the bounded token registry.
func (s *Server) registerView(v table.View) (uint64, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if len(s.snaps) >= s.maxSnapshots() {
		v.Release()
		return 0, fmt.Errorf("%w: %d registered", errTooManySnapshots, len(s.snaps))
	}
	s.nextSnap++
	tok := s.nextSnap
	s.snaps[tok] = v
	return tok, nil
}

// ReleaseAllSnapshots releases every registered snapshot (dropping their
// GC pins) and empties the registry, returning how many were released.
// Shutdown and Close call it automatically so stale tokens cannot pin
// history on a store that outlives the server.
func (s *Server) ReleaseAllSnapshots() int {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	n := len(s.snaps)
	for tok, v := range s.snaps {
		v.Release()
		delete(s.snaps, tok)
	}
	return n
}

// errBadSnapshot maps to wire.StatusErrBadSnapshot.
var errBadSnapshot = errors.New("server: unknown snapshot token")

// errStaleEpoch maps to wire.StatusErrBadSnapshot: the requested epoch is
// not servable here (history reclaimed, or not yet applied by this
// follower); the client falls back to the primary.
var errStaleEpoch = errors.New("server: epoch not servable")

// errReadOnly maps to wire.StatusErrReadOnly.
var errReadOnly = errors.New("server: read-only follower")

// errTooManySnapshots maps to wire.StatusErrTooManySnapshots.
var errTooManySnapshots = errors.New("server: snapshot registry full")

// viewFor resolves a wire snapshot token: 0 is latest, anything else
// must be registered.
func (s *Server) viewFor(tok uint64) (table.View, error) {
	if tok == 0 {
		return table.Latest(), nil
	}
	s.snapMu.Lock()
	v, ok := s.snaps[tok]
	s.snapMu.Unlock()
	if !ok {
		return table.View{}, fmt.Errorf("%w: %d", errBadSnapshot, tok)
	}
	return v, nil
}

// releaseSnapshot drops a token from the registry and its GC pin with it.
func (s *Server) releaseSnapshot(tok uint64) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	v, ok := s.snaps[tok]
	if !ok {
		return fmt.Errorf("%w: %d", errBadSnapshot, tok)
	}
	v.Release()
	delete(s.snaps, tok)
	return nil
}

// conn is one session.
type conn struct {
	nc net.Conn
	// pending counts requests accepted but not yet fully answered
	// (response written and flushed).  With parallel in-connection
	// execution several can be in flight at once; the session is idle —
	// and safe for a graceful drain to close — only at zero.
	pending atomic.Int64
}

// idle reports whether no request is in flight on this session.
func (c *conn) idle() bool { return c.pending.Load() == 0 }

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// parallelOps marks the opcodes the server may execute concurrently with
// each other on ONE pipelined connection: read-only requests whose result
// depends on the store and the request alone, never on session ordering
// side effects.  Everything else — mutations, snapshot lifecycle
// (registry writes), hello, merge, index creation, reshard — stays
// strictly serial and acts as a barrier: all parallel reads dispatched
// before it complete before it executes, so a read pipelined ahead of a
// write can never observe that write.
var parallelOps = func() [256]bool {
	var t [256]bool
	for _, op := range []uint8{
		wire.OpPing, wire.OpSchema, wire.OpRow, wire.OpIsValid,
		wire.OpLookup, wire.OpRange, wire.OpScan,
		wire.OpSum, wire.OpMin, wire.OpMax, wire.OpCountEqual,
		wire.OpQuery, wire.OpValidRows, wire.OpVisible,
		wire.OpStats, wire.OpIndexStats, wire.OpMetrics, wire.OpServerStats,
	} {
		t[op] = true
	}
	return t
}()

// connQueueDepth bounds how many responses may be queued (computed or
// still computing) per connection before the reader stops accepting new
// requests; it caps per-session memory, not throughput.
const connQueueDepth = 64

// pendingResp is one slot in a connection's ordered response queue: the
// writer goroutine waits for done, then sends out.  Slots are enqueued in
// request order, so responses go out in request order no matter which
// worker finishes first.
type pendingResp struct {
	out  wire.Buffer
	done chan struct{}
}

// serveConn runs one session.  Requests are read in order; read-only
// requests that arrive pipelined (more bytes already buffered behind
// them) are dispatched to the shared worker pool and execute
// concurrently, everything else runs serially in this goroutine.
// Responses always go out in request order: a lazily-started writer
// goroutine drains an ordered queue of response slots, so a non-pipelined
// session never pays for any of this — it keeps the plain
// read-handle-answer loop.
func (s *Server) serveConn(c *conn) {
	defer s.wg.Done()
	defer s.removeConn(c)
	defer c.nc.Close()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var out wire.Buffer

	// Parallel machinery, created on the first pipelined read.
	var (
		results    chan *pendingResp
		writerDone chan struct{}
		inflight   sync.WaitGroup
	)
	stopWriter := func() {
		if results != nil {
			close(results)
			<-writerDone
			results = nil
		}
	}
	defer func() {
		// Let in-flight workers finish and the writer flush whatever it
		// can before the deferred nc.Close above runs (LIFO order).
		inflight.Wait()
		stopWriter()
	}()

	for {
		// Block for the first byte of the next request while still
		// counted idle, then bump pending before decoding the frame:
		// a drain that lands mid-request closes only sessions that have
		// not started sending, so no mutation is executed with its
		// response dropped (barring the unavoidable instant between the
		// byte arriving and the counter bumping).
		if _, err := br.Peek(1); err != nil {
			return
		}
		c.pending.Add(1)
		payload, err := wire.ReadFrame(br)
		if err != nil {
			// EOF and closed-socket errors are normal session ends.  An
			// oversized frame gets a best-effort error answer, but the
			// payload was never consumed, so the session must end.
			if errors.Is(err, wire.ErrFrameTooLarge) {
				p := &pendingResp{done: make(chan struct{})}
				p.out.U8(wire.StatusErrBadRequest)
				p.out.String(err.Error())
				close(p.done)
				if results != nil {
					results <- p
				} else {
					if wire.WriteFrame(bw, p.out.Bytes()) == nil {
						bw.Flush()
					}
					c.pending.Add(-1)
				}
				s.log.Warn("server: oversized frame",
					"remote", c.nc.RemoteAddr().String(), "err", err)
			}
			return
		}
		s.requests.Add(1)
		var op uint8
		if len(payload) > 0 {
			op = payload[0]
		}
		// OpSubscribe turns the session into a one-way replication stream;
		// it never returns to request/response handling.  Quiesce the
		// parallel machinery first — the streamer takes over bw.
		if op == wire.OpSubscribe {
			inflight.Wait()
			stopWriter()
			s.serveSubscribe(c, payload[1:], bw)
			return
		}
		pipelined := br.Buffered() > 0
		if s.mx != nil && pipelined {
			// The next request is already queued behind this one: the
			// client is pipelining.
			s.mx.pipelined.Inc()
		}
		switch {
		case parallelOps[op] && (results != nil || pipelined):
			if results == nil {
				results = make(chan *pendingResp, connQueueDepth)
				writerDone = make(chan struct{})
				go s.connWriter(c, bw, results, writerDone)
			}
			p := &pendingResp{done: make(chan struct{})}
			results <- p
			if s.mx != nil {
				s.mx.parallel.Inc()
			}
			inflight.Add(1)
			select {
			case s.readPool <- struct{}{}:
				go func() {
					defer inflight.Done()
					defer func() { <-s.readPool }()
					s.execute(c, op, payload, &p.out)
					close(p.done)
				}()
			default:
				// Pool saturated: run in the reader goroutine.  Ordering
				// is unaffected (the slot is already queued) and the
				// connection self-throttles instead of the server growing
				// goroutines without bound.
				s.execute(c, op, payload, &p.out)
				close(p.done)
				inflight.Done()
			}
		case results != nil:
			// A serial op on a connection whose writer is running.  The
			// barrier: every parallel read dispatched earlier completes
			// first, then the op executes here, and its response takes
			// the next ordered slot (the reader is the only enqueuer, so
			// enqueueing after execution preserves order).
			inflight.Wait()
			p := &pendingResp{done: make(chan struct{})}
			s.execute(c, op, payload, &p.out)
			close(p.done)
			results <- p
		default:
			// Plain serial path, identical to a pre-v5 session: handle
			// and answer in place.
			s.execute(c, op, payload, &out)
			err = wire.WriteFrame(bw, out.Bytes())
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// The result outgrew the frame limit (e.g. an unbounded
				// scan of a huge table): answer with an error instead so
				// the session survives and stays in sync.
				out.Reset()
				out.U8(wire.StatusErr)
				out.String(fmt.Sprintf("response exceeds %d-byte frame limit; narrow the request", wire.MaxFrame))
				err = wire.WriteFrame(bw, out.Bytes())
			}
			if err == nil {
				err = bw.Flush()
			}
			c.pending.Add(-1)
			if err != nil {
				return
			}
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
	}
}

// execute runs one decoded request to completion, filling out with the
// full response payload and doing the per-request accounting: metrics,
// error counting, slow-op tracing.  It is what pool workers run — all
// state it touches is the server, the connection's identity (for the slow
// log) and the per-request buffers.
func (s *Server) execute(c *conn, op uint8, payload []byte, out *wire.Buffer) {
	om := s.mx.at(op)
	// Both time.Now calls are skipped when neither metrics nor slow-op
	// tracing want the duration — the noop baseline costs nil checks
	// only.
	timed := s.timing()
	var start time.Time
	if timed {
		start = time.Now()
	}
	var info reqInfo
	out.Reset()
	s.handle(payload, out, &info)
	om.reqs.Inc()
	status := uint8(wire.StatusErr)
	if b := out.Bytes(); len(b) > 0 {
		status = b[0]
	}
	if status != wire.StatusOK {
		om.errs.Inc()
	}
	if timed {
		dur := time.Since(start)
		om.lat.ObserveDuration(dur)
		if th := s.opts.SlowOpThreshold; th > 0 && dur >= th {
			if s.mx != nil {
				s.mx.slowOps.Inc()
			}
			s.log.Warn("slow op",
				"op", wire.OpName(op), "duration", dur,
				"rows", info.rows, "epoch", info.epoch,
				"status", status, "remote", c.nc.RemoteAddr().String())
		}
	}
}

// connWriter drains one connection's ordered response queue: each slot is
// awaited in request order — regardless of which worker finished first —
// and written out, flushing only when no further completed response is
// queued so back-to-back pipelined results coalesce into one flush.  On a
// write error it closes the socket (unblocking the reader) and keeps
// draining slots so workers never block on an abandoned queue.
func (s *Server) connWriter(c *conn, bw *bufio.Writer, results <-chan *pendingResp, done chan<- struct{}) {
	defer close(done)
	var broken bool
	var next *pendingResp
	for {
		p := next
		next = nil
		if p == nil {
			var ok bool
			if p, ok = <-results; !ok {
				if !broken {
					bw.Flush()
				}
				return
			}
		}
		<-p.done
		if !broken {
			err := wire.WriteFrame(bw, p.out.Bytes())
			if errors.Is(err, wire.ErrFrameTooLarge) {
				p.out.Reset()
				p.out.U8(wire.StatusErr)
				p.out.String(fmt.Sprintf("response exceeds %d-byte frame limit; narrow the request", wire.MaxFrame))
				err = wire.WriteFrame(bw, p.out.Bytes())
			}
			if err == nil {
				// Flush unless the next response is already complete and
				// queued behind this one.
				flush := true
				select {
				case nx, ok := <-results:
					if ok {
						next = nx
						select {
						case <-nx.done:
							flush = false
						default:
						}
					}
				default:
				}
				if flush {
					err = bw.Flush()
				}
			}
			if err != nil {
				broken = true
				c.nc.Close()
			}
		}
		c.pending.Add(-1)
	}
}
