package server

import (
	"bufio"
	"net"
	"testing"
	"time"

	"hyrise/internal/table"
	"hyrise/internal/wire"
)

func fuzzStore(t testing.TB) *table.Table {
	t.Helper()
	flat, err := table.New("sales", table.Schema{
		{Name: "order_id", Type: table.Uint64},
		{Name: "qty", Type: table.Uint32},
		{Name: "product", Type: table.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := flat.Insert([]any{uint64(i), uint32(i), "w"}); err != nil {
			t.Fatal(err)
		}
	}
	return flat
}

// TestServerRejectsMalformedFrames feeds hostile byte streams to a live
// server over TCP: every case must produce an error response or a closed
// connection — never a crash — and the server must keep answering
// well-formed requests afterwards.
func TestServerRejectsMalformedFrames(t *testing.T) {
	flat := fuzzStore(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(flat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	addr := l.Addr().String()

	hostile := map[string][]byte{
		// Length prefix far beyond MaxFrame.
		"oversized length": {0xff, 0xff, 0xff, 0xff, 0x01},
		// Length prefix promising more payload than ever arrives.
		"truncated frame": {0x00, 0x00, 0x00, 0x40, 0x01, 0x02},
		// Empty payload (no opcode).
		"empty payload": {0x00, 0x00, 0x00, 0x00},
		// Unknown opcode.
		"unknown opcode": {0x00, 0x00, 0x00, 0x01, 0xee},
		// Valid opcode, garbage body (lookup with no arguments).
		"garbage body": {0x00, 0x00, 0x00, 0x01, wire.OpLookup},
		// Valid opcode + trailing garbage after a complete body.
		"trailing garbage": append([]byte{0x00, 0x00, 0x00, 0x02, wire.OpPing}, 0xcc),
		// Hostile interior count: insert row claiming 65535 values.
		"hostile row count": {0x00, 0x00, 0x00, 0x03, wire.OpInsert, 0xff, 0xff},
		// Hostile batch count.
		"hostile batch count": {0x00, 0x00, 0x00, 0x05, wire.OpInsertBatch, 0xff, 0xff, 0xff, 0xff},
		// Bad value tag inside a lookup (frame: op + token + column + tag
		// = 1+8+4+8+1 = 22 bytes).
		"bad value tag": append(append([]byte{0x00, 0x00, 0x00, 0x16, wire.OpLookup},
			0, 0, 0, 0, 0, 0, 0, 0, // token
			0, 0, 0, 8), append([]byte("order_id"), 0x7f)...),
		// Raw noise that is not even a frame.
		"pure noise": {0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef},
	}

	for name, payload := range hostile {
		t.Run(name, func(t *testing.T) {
			nc, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer nc.Close()
			// The deadline doubles as the verdict for frames the server
			// legitimately keeps waiting on (a truncated frame's missing
			// payload): no response within it counts as "connection
			// parked", which is safe behavior.
			nc.SetDeadline(time.Now().Add(2 * time.Second))
			if _, err := nc.Write(payload); err != nil {
				t.Fatal(err)
			}
			// Either an error response arrives or the server closes the
			// connection; both are acceptable, hanging or crashing is not.
			br := bufio.NewReader(nc)
			resp, err := wire.ReadFrame(br)
			if err == nil {
				status := uint8(wire.StatusOK)
				if len(resp) > 0 {
					status = resp[0]
				}
				if status == wire.StatusOK {
					t.Fatalf("hostile frame accepted: % x", resp)
				}
			}
		})
	}

	// The server is still alive and serving correct requests.
	nc, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("server died after hostile input: %v", err)
	}
	defer nc.Close()
	var req wire.Buffer
	req.U8(wire.OpPing)
	bw := bufio.NewWriter(nc)
	if err := wire.WriteFrame(bw, req.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadFrame(bufio.NewReader(nc))
	if err != nil || len(resp) != 1 || resp[0] != wire.StatusOK {
		t.Fatalf("ping after hostile input: % x, %v", resp, err)
	}
	if n := srv.ActiveConns(); n == 0 {
		t.Fatal("session accounting lost the live connection")
	}
}

// FuzzHandle fuzzes the request decoder/dispatcher directly: any byte
// payload must produce a well-formed response (status byte first) and
// never panic.  Every opcode is seeded with a minimal valid body.
func FuzzHandle(f *testing.F) {
	flat := fuzzStore(f)
	srv, err := New(flat, Options{})
	if err != nil {
		f.Fatal(err)
	}

	var seed wire.Buffer
	seed.U8(wire.OpInsert)
	seed.Row([]any{uint64(1), uint32(2), "x"})
	f.Add(seed.Bytes())
	seed.Reset()
	seed.U8(wire.OpLookup)
	seed.U64(0)
	seed.String("order_id")
	seed.Value(uint64(1))
	f.Add(seed.Bytes())
	seed.Reset()
	seed.U8(wire.OpQuery)
	seed.U64(0)
	seed.Filters([]wire.Filter{{Column: "qty", Op: wire.OpFilterBetween, Value: uint32(0), Hi: uint32(5)}})
	seed.Strings([]string{"product"})
	f.Add(seed.Bytes())
	seed.Reset()
	seed.U8(wire.OpScan)
	seed.U64(0)
	seed.String("product")
	seed.U32(3)
	seed.U8(1)
	f.Add(seed.Bytes())
	for _, op := range []uint8{
		wire.OpPing, wire.OpSchema, wire.OpStats, wire.OpSnapshot, wire.OpValidRows,
		wire.OpUpdate, wire.OpDelete, wire.OpRow, wire.OpIsValid, wire.OpMerge,
		wire.OpSum, wire.OpMin, wire.OpMax, wire.OpCountEqual, wire.OpRange,
		wire.OpSnapshotRelease, wire.OpVisible, wire.OpInsertBatch,
	} {
		f.Add([]byte{op})
		f.Add(append([]byte{op}, 0, 0, 0, 0, 0, 0, 0, 0))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		var out wire.Buffer
		srv.handle(payload, &out, nil)
		resp := out.Bytes()
		if len(resp) == 0 {
			t.Fatalf("empty response for payload % x", payload)
		}
		if resp[0] != wire.StatusOK {
			// Error responses must carry a decodable message.
			r := wire.NewReader(resp[1:])
			if _, err := r.String(); err != nil {
				t.Fatalf("error response without message: % x", resp)
			}
		}
	})
}
