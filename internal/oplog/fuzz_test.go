package oplog

import (
	"reflect"
	"testing"

	"hyrise/internal/wire"
)

// FuzzOplogDecode feeds hostile payloads to Decode: it must error or
// return a well-formed op, never panic or over-allocate, and every op it
// accepts must re-encode and re-decode to the same value (the follower
// relies on exact replay).
func FuzzOplogDecode(f *testing.F) {
	seed := []Op{
		{LSN: 1, Epoch: 2, Kind: KindInsert, ID: 3, Rows: [][]any{{uint64(4), "k"}}},
		{LSN: 2, Epoch: 2, Kind: KindUpdate, Shard: 1, ID: 3, ID2: 9,
			Rows: [][]any{{uint32(5), "v"}}},
		{LSN: 3, Epoch: 3, Kind: KindDelete, ID: 9},
		{LSN: 4, Epoch: 4, Kind: KindMove, Shard: 1, Dst: 2, ID: 9, ID2: 10,
			Rows: [][]any{{uint64(6), "w"}}},
	}
	for i := range seed {
		var b wire.Buffer
		if err := seed[i].EncodeInto(&b); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	f.Add([]byte{})
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, payload []byte) {
		r := wire.NewReader(payload)
		op, err := Decode(r)
		if err != nil {
			return
		}
		var b wire.Buffer
		if err := op.EncodeInto(&b); err != nil {
			t.Fatalf("accepted op fails to re-encode: %v (%+v)", err, op)
		}
		again, err := Decode(wire.NewReader(b.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded op fails to decode: %v", err)
		}
		if !reflect.DeepEqual(op, again) {
			t.Fatalf("op not stable under re-encode:\n got %+v\nthen %+v", op, again)
		}
	})
}
