// Package oplog implements the primary's replication log: an in-memory,
// epoch-stamped record of every logical mutation (insert, update, delete,
// cross-shard move), in the exact order the store applied them.
//
// # Stamping
//
// The log is the stamping point of the write path.  A table that has a log
// attached does not read its epoch stamp from the clock directly; it calls
// Append while holding its write mutex, and Append — under the log mutex —
// reads the clock once and stamps the whole batch with it.  Two properties
// follow:
//
//   - The log is totally ordered and epoch-monotonic: op N+1's epoch is >=
//     op N's, because stamps are read under one mutex in append order.
//   - Replay is bit-identical: a follower that re-executes the ops with
//     their recorded stamps rebuilds the same row ids and the same
//     begin/end epochs, so *At reads on the follower return exactly what
//     the primary returns at the same epoch.
//
// # Safe epoch
//
// SafeEpoch returns the highest epoch E such that every mutation stamped
// <= E is already in the log: since any later Append stamps >= Now(),
// that is Now()-1.  The streaming server forwards it to followers as a
// heartbeat only when they have consumed the whole log, which is what
// lets a follower's applied epoch advance past write-quiet periods.
//
// # Retention
//
// The log retains a bounded number of ops (Cap); older entries are
// trimmed as new ones arrive.  A subscriber that has fallen behind the
// first retained LSN must re-bootstrap from a snapshot.
package oplog

import (
	"fmt"
	"sync"

	"hyrise/internal/epoch"
	"hyrise/internal/wire"
)

// Kind identifies the mutation an op replays.
type Kind uint8

const (
	KindInsert Kind = 0x01 // Rows appended starting at id ID
	KindUpdate Kind = 0x02 // version ID invalidated, Rows[0] appended as ID2
	KindDelete Kind = 0x03 // version ID invalidated
	KindMove   Kind = 0x04 // ID invalidated on Shard, Rows[0] appended as ID2 on Dst
	// KindReshardBegin opens an online reshard: ID new partitions exist
	// from physical index Shard on, and subsequent ops may target them.
	// ID2 carries the migrating shard-map version.  Appended BEFORE the
	// primary routes any write to the new partitions, so a follower
	// replaying in LSN order always creates them first.
	KindReshardBegin Kind = 0x05
	// KindReshardCutover atomically publishes the post-reshard routing:
	// the active window becomes the ID partitions from physical index
	// Shard, shard-map version ID2.  Its epoch stamp is the cutover epoch.
	KindReshardCutover Kind = 0x06
)

func (k Kind) valid() bool { return k >= KindInsert && k <= KindReshardCutover }

// String names the kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindUpdate:
		return "update"
	case KindDelete:
		return "delete"
	case KindMove:
		return "move"
	case KindReshardBegin:
		return "reshard-begin"
	case KindReshardCutover:
		return "reshard-cutover"
	}
	return fmt.Sprintf("kind(0x%02x)", uint8(k))
}

// Op is one logged mutation.  Values in Rows are canonical storage types
// (uint32, uint64, string — what table.Convert returns), so they encode
// on the wire without coercion and replay into identical column data.
type Op struct {
	LSN   uint64 // position in the log, consecutive from 0
	Epoch uint64 // the stamp the primary wrote into its epoch columns
	Kind  Kind
	Shard uint32  // partition the op applies to (0 on a flat table)
	Dst   uint32  // KindMove: destination partition
	ID    uint64  // insert: first new id; update/delete/move: old version's id
	ID2   uint64  // update/move: the new version's id
	Rows  [][]any // insert: batch rows; update/move: the new version's values
}

// Rec is an op before the log assigns its LSN and epoch.
type Rec struct {
	Kind    Kind
	Shard   uint32
	Dst     uint32
	ID, ID2 uint64
	Rows    [][]any
}

// DefaultCap is the default number of retained ops.
const DefaultCap = 1 << 20

// Log is the primary's bounded in-memory op log.  Safe for concurrent use.
type Log struct {
	clock *epoch.Clock
	cap   int

	mu     sync.Mutex
	ops    []Op
	first  uint64 // LSN of ops[0]
	next   uint64 // LSN the next appended op receives
	notify chan struct{}
}

// New returns an empty log stamped by clock, retaining at most cap ops
// (DefaultCap if cap <= 0).
func New(clock *epoch.Clock, cap int) *Log {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Log{clock: clock, cap: cap}
}

// Clock returns the stamping clock (tables verify it matches their own).
func (l *Log) Clock() *epoch.Clock { return l.clock }

// Cap returns the retention capacity in ops.
func (l *Log) Cap() int { return l.cap }

// Append stamps every rec with the current epoch — read once under the log
// mutex — assigns consecutive LSNs, appends, and returns the stamp.  The
// caller must hold the write lock of every table the recs mutate, so that
// the log order equals the apply order and a snapshot cut (which takes the
// read lock) includes every op appended before it.
func (l *Log) Append(recs []Rec) uint64 {
	l.mu.Lock()
	at := l.clock.Now()
	for i := range recs {
		r := &recs[i]
		l.ops = append(l.ops, Op{
			LSN: l.next, Epoch: at, Kind: r.Kind,
			Shard: r.Shard, Dst: r.Dst, ID: r.ID, ID2: r.ID2, Rows: r.Rows,
		})
		l.next++
	}
	if over := len(l.ops) - l.cap; over > 0 {
		rest := copy(l.ops, l.ops[over:])
		for i := rest; i < len(l.ops); i++ {
			l.ops[i] = Op{} // release row references
		}
		l.ops = l.ops[:rest]
		l.first += uint64(over)
	}
	ch := l.notify
	l.notify = nil
	l.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	return at
}

// Notify returns a channel closed at the next Append.  Obtain the channel
// before checking the log for new ops to avoid missing a wakeup.
func (l *Log) Notify() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.notify == nil {
		l.notify = make(chan struct{})
	}
	return l.notify
}

// Wake closes the current Notify channel without appending anything,
// nudging subscribers to recompute SafeEpoch.  The server calls it after
// an epoch capture so caught-up followers learn the new safe epoch from
// an immediate heartbeat instead of the next idle tick.
func (l *Log) Wake() {
	l.mu.Lock()
	ch := l.notify
	l.notify = nil
	l.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// Bounds returns the first retained LSN and the next LSN to be assigned;
// the retained ops are [first, next).
func (l *Log) Bounds() (first, next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first, l.next
}

// NextLSN returns the LSN the next appended op will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Len returns the number of retained ops.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops)
}

// SafeEpoch returns (safe, now, next): the highest epoch all of whose
// mutations are in the log, the clock's current epoch, and the next LSN.
// All three are read atomically with respect to Append.
func (l *Log) SafeEpoch() (safe, now, next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now = l.clock.Now()
	return now - 1, now, l.next
}

// ReadFrom copies out up to max ops starting at LSN from.  ok is false
// when from precedes the first retained LSN (the caller must
// re-bootstrap).  Ops and their rows are immutable once appended, so the
// returned slice is safe to use without the lock.
func (l *Log) ReadFrom(from uint64, max int) (ops []Op, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.first {
		return nil, false
	}
	if from >= l.next {
		return nil, true
	}
	i := int(from - l.first)
	n := min(len(l.ops)-i, max)
	return append([]Op(nil), l.ops[i:i+n]...), true
}

// EncodeInto appends the op's wire encoding to b.
func (o *Op) EncodeInto(b *wire.Buffer) error {
	b.U64(o.LSN)
	b.U64(o.Epoch)
	b.U8(uint8(o.Kind))
	b.U32(o.Shard)
	b.U32(o.Dst)
	b.U64(o.ID)
	b.U64(o.ID2)
	b.U32(uint32(len(o.Rows)))
	for _, row := range o.Rows {
		if err := b.Row(row); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads one op, validating the kind and its row-count shape:
// inserts carry >= 1 rows, updates and moves exactly 1, deletes 0.
// Hostile counts are bounds-checked against the remaining payload.
func Decode(r *wire.Reader) (Op, error) {
	var o Op
	var err error
	if o.LSN, err = r.U64(); err != nil {
		return o, err
	}
	if o.Epoch, err = r.U64(); err != nil {
		return o, err
	}
	k, err := r.U8()
	if err != nil {
		return o, err
	}
	o.Kind = Kind(k)
	if !o.Kind.valid() {
		return o, fmt.Errorf("%w: unknown op kind 0x%02x", wire.ErrMalformed, k)
	}
	if o.Shard, err = r.U32(); err != nil {
		return o, err
	}
	if o.Dst, err = r.U32(); err != nil {
		return o, err
	}
	if o.ID, err = r.U64(); err != nil {
		return o, err
	}
	if o.ID2, err = r.U64(); err != nil {
		return o, err
	}
	n, err := r.U32()
	if err != nil {
		return o, err
	}
	// A row is at least 2 bytes (its u16 column count).
	if int(n) > r.Len()/2 {
		return o, fmt.Errorf("%w: op claims %d rows in %d bytes", wire.ErrMalformed, n, r.Len())
	}
	switch o.Kind {
	case KindInsert:
		if n == 0 {
			return o, fmt.Errorf("%w: insert op with no rows", wire.ErrMalformed)
		}
	case KindUpdate, KindMove:
		if n != 1 {
			return o, fmt.Errorf("%w: %s op with %d rows", wire.ErrMalformed, o.Kind, n)
		}
	case KindDelete, KindReshardBegin, KindReshardCutover:
		if n != 0 {
			return o, fmt.Errorf("%w: %s op with %d rows", wire.ErrMalformed, o.Kind, n)
		}
	}
	if n > 0 {
		o.Rows = make([][]any, n)
		for i := range o.Rows {
			if o.Rows[i], err = r.Row(); err != nil {
				return o, err
			}
		}
	}
	return o, nil
}
