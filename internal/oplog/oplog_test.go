package oplog

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"hyrise/internal/epoch"
	"hyrise/internal/wire"
)

func TestAppendStampsAndOrders(t *testing.T) {
	c := epoch.NewClock()
	l := New(c, 0)

	at := l.Append([]Rec{{Kind: KindInsert, ID: 0, Rows: [][]any{{uint64(1)}}}})
	if at != c.Now() {
		t.Fatalf("stamp %d != clock %d", at, c.Now())
	}
	c.Capture() // advance the clock
	at2 := l.Append([]Rec{
		{Kind: KindUpdate, ID: 0, ID2: 1, Rows: [][]any{{uint64(2)}}},
		{Kind: KindDelete, ID: 1},
	})
	if at2 <= at {
		t.Fatalf("stamps not monotonic: %d then %d", at, at2)
	}

	ops, ok := l.ReadFrom(0, 100)
	if !ok || len(ops) != 3 {
		t.Fatalf("ReadFrom(0) = %d ops, ok=%v", len(ops), ok)
	}
	for i, o := range ops {
		if o.LSN != uint64(i) {
			t.Fatalf("op %d has LSN %d", i, o.LSN)
		}
	}
	// One Append call = one stamp for the whole batch.
	if ops[1].Epoch != ops[2].Epoch || ops[1].Epoch != at2 {
		t.Fatalf("batch stamps differ: %d %d want %d", ops[1].Epoch, ops[2].Epoch, at2)
	}
}

func TestSafeEpoch(t *testing.T) {
	c := epoch.NewClock()
	l := New(c, 0)
	safe, now, next := l.SafeEpoch()
	if now != c.Now() || safe != now-1 || next != 0 {
		t.Fatalf("SafeEpoch = (%d, %d, %d)", safe, now, next)
	}
	l.Append([]Rec{{Kind: KindDelete, ID: 7}})
	if _, _, next = l.SafeEpoch(); next != 1 {
		t.Fatalf("next = %d after one append", next)
	}
}

func TestRetentionTrim(t *testing.T) {
	c := epoch.NewClock()
	l := New(c, 4)
	for i := 0; i < 10; i++ {
		l.Append([]Rec{{Kind: KindDelete, ID: uint64(i)}})
	}
	first, next := l.Bounds()
	if next != 10 || first != 6 || l.Len() != 4 {
		t.Fatalf("bounds (%d, %d) len %d, want (6, 10) len 4", first, next, l.Len())
	}
	if _, ok := l.ReadFrom(5, 10); ok {
		t.Fatal("ReadFrom below first retained LSN must report !ok")
	}
	ops, ok := l.ReadFrom(6, 10)
	if !ok || len(ops) != 4 || ops[0].LSN != 6 || ops[0].ID != 6 {
		t.Fatalf("ReadFrom(6) = %+v ok=%v", ops, ok)
	}
	// Reading exactly at next is an empty, valid read.
	if ops, ok := l.ReadFrom(10, 10); !ok || len(ops) != 0 {
		t.Fatalf("ReadFrom(next) = %d ops, ok=%v", len(ops), ok)
	}
}

func TestNotify(t *testing.T) {
	c := epoch.NewClock()
	l := New(c, 0)
	ch := l.Notify()
	select {
	case <-ch:
		t.Fatal("notify fired before any append")
	default:
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Error("notify never fired")
		}
	}()
	l.Append([]Rec{{Kind: KindDelete, ID: 1}})
	<-done
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ops := []Op{
		{LSN: 3, Epoch: 9, Kind: KindInsert, Shard: 2, ID: 40,
			Rows: [][]any{{uint64(1), uint32(2), "a"}, {uint64(3), uint32(4), ""}}},
		{LSN: 4, Epoch: 9, Kind: KindUpdate, Shard: 1, ID: 5, ID2: 41,
			Rows: [][]any{{uint64(7), uint32(8), "b"}}},
		{LSN: 5, Epoch: 10, Kind: KindDelete, Shard: 0, ID: 6},
		{LSN: 6, Epoch: 11, Kind: KindMove, Shard: 1, Dst: 3, ID: 7, ID2: 42,
			Rows: [][]any{{uint64(9), uint32(10), "c"}}},
	}
	var b wire.Buffer
	for i := range ops {
		if err := ops[i].EncodeInto(&b); err != nil {
			t.Fatalf("encode op %d: %v", i, err)
		}
	}
	r := wire.NewReader(b.Bytes())
	for i := range ops {
		got, err := Decode(r)
		if err != nil {
			t.Fatalf("decode op %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, ops[i]) {
			t.Fatalf("op %d round trip:\n got %+v\nwant %+v", i, got, ops[i])
		}
	}
	if err := r.Rest(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	encode := func(o Op) []byte {
		var b wire.Buffer
		if err := o.EncodeInto(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	cases := map[string][]byte{
		"empty":           {},
		"truncated":       encode(Op{Kind: KindDelete})[:10],
		"bad kind":        append(make([]byte, 16), 0x99),
		"insert no rows":  encode(Op{Kind: KindInsert, Rows: [][]any{{uint64(1)}}})[:41],
		"delete with row": encode(Op{Kind: KindDelete}),
	}
	// "insert no rows": truncate the rows off a valid insert so the count
	// reads as garbage; "delete with row" needs a hand-built payload.
	var b wire.Buffer
	b.U64(0)
	b.U64(1)
	b.U8(uint8(KindDelete))
	b.U32(0)
	b.U32(0)
	b.U64(0)
	b.U64(0)
	b.U32(1)
	_ = b.Row([]any{uint64(1)})
	cases["delete with row"] = b.Bytes()

	for name, payload := range cases {
		if _, err := Decode(wire.NewReader(payload)); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		} else if !errors.Is(err, wire.ErrMalformed) {
			t.Errorf("%s: error %v is not ErrMalformed", name, err)
		}
	}
}
