package delta

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertAndFind(t *testing.T) {
	p := New[uint64]()
	vals := []uint64{9, 3, 9, 7, 3, 3}
	for i, v := range vals {
		if pos := p.Insert(v); pos != i {
			t.Fatalf("Insert returned pos %d want %d", pos, i)
		}
	}
	if p.Len() != 6 || p.Unique() != 3 {
		t.Fatalf("Len=%d Unique=%d want 6,3", p.Len(), p.Unique())
	}
	tids, ok := p.Find(3)
	if !ok || len(tids) != 3 || tids[0] != 1 || tids[1] != 4 || tids[2] != 5 {
		t.Fatalf("Find(3)=%v,%v", tids, ok)
	}
	if _, ok := p.Find(42); ok {
		t.Fatal("Find(42) should miss")
	}
	for i, v := range vals {
		if p.Get(i) != v {
			t.Fatalf("Get(%d)=%d want %d", i, p.Get(i), v)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSortedUnique(t *testing.T) {
	p := New[string]()
	for _, w := range []string{"hotel", "delta", "frank", "delta", "bravo", "charlie", "charlie", "golf", "young"} {
		p.Insert(w)
	}
	got := p.SortedUnique()
	want := []string{"bravo", "charlie", "delta", "frank", "golf", "hotel", "young"}
	if len(got) != len(want) {
		t.Fatalf("len=%d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("[%d]=%q want %q", i, got[i], want[i])
		}
	}
}

// TestExtractDictPaperExample reproduces Figure 6 Step 1(a): the delta
// holds {bravo charlie charlie golf young}; the extracted dictionary is
// {bravo charlie golf young} and the rewritten codes are {0 1 1 2 3}.
func TestExtractDictPaperExample(t *testing.T) {
	p := New[string]()
	for _, w := range []string{"bravo", "charlie", "charlie", "golf", "young"} {
		p.Insert(w)
	}
	d, codes := p.ExtractDict()
	if d.Len() != 4 {
		t.Fatalf("dict len %d want 4", d.Len())
	}
	wantCodes := []uint32{0, 1, 1, 2, 3}
	for i, w := range wantCodes {
		if codes[i] != w {
			t.Fatalf("codes[%d]=%d want %d", i, codes[i], w)
		}
	}
}

func checkExtract(t *testing.T, vals []uint64, parallel int) {
	t.Helper()
	p := NewWithFanout[uint64](3)
	for _, v := range vals {
		p.Insert(v)
	}
	var d interface {
		Len() int
		At(int) uint64
	}
	var codes []uint32
	if parallel > 1 {
		d, codes = p.ExtractDictParallel(parallel)
	} else {
		d, codes = p.ExtractDict()
	}
	// Dictionary must be the sorted distinct set.
	distinct := map[uint64]bool{}
	for _, v := range vals {
		distinct[v] = true
	}
	var want []uint64
	for v := range distinct {
		want = append(want, v)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if d.Len() != len(want) {
		t.Fatalf("dict len %d want %d", d.Len(), len(want))
	}
	for i, v := range want {
		if d.At(i) != v {
			t.Fatalf("dict[%d]=%d want %d", i, d.At(i), v)
		}
	}
	// Every tuple's code must decode back to its value.
	for i, v := range vals {
		if d.At(int(codes[i])) != v {
			t.Fatalf("tuple %d: code %d decodes to %d want %d", i, codes[i], d.At(int(codes[i])), v)
		}
	}
}

func TestExtractDictRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 20; iter++ {
		n := 1 + rng.Intn(4000)
		domain := uint64(1 + rng.Intn(500))
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() % domain
		}
		checkExtract(t, vals, 1)
	}
}

func TestExtractDictParallelMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 1 << 15 // above the parallel threshold
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() % 5000
	}
	for _, nt := range []int{2, 4, 8, 13} {
		checkExtract(t, vals, nt)
	}
	// And the parallel path must equal the sequential path exactly.
	p := New[uint64]()
	for _, v := range vals {
		p.Insert(v)
	}
	d1, c1 := p.ExtractDict()
	d2, c2 := p.ExtractDictParallel(8)
	if d1.Len() != d2.Len() {
		t.Fatalf("dict lens differ: %d vs %d", d1.Len(), d2.Len())
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("codes[%d] differ: %d vs %d", i, c1[i], c2[i])
		}
	}
}

func TestExtractEmpty(t *testing.T) {
	p := New[uint64]()
	d, codes := p.ExtractDict()
	if d.Len() != 0 || len(codes) != 0 {
		t.Fatal("empty extract not empty")
	}
	if got := p.SortedUnique(); len(got) != 0 {
		t.Fatal("SortedUnique on empty delta")
	}
}

func TestQuickExtractRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		p := New[uint64]()
		vals := make([]uint64, len(raw))
		for i, r := range raw {
			vals[i] = uint64(r % 64)
			p.Insert(vals[i])
		}
		d, codes := p.ExtractDict()
		for i, v := range vals {
			if d.At(int(codes[i])) != v {
				return false
			}
		}
		return p.Len() == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytes(t *testing.T) {
	p := New[uint64]()
	if p.SizeBytes() != 0 {
		t.Fatalf("empty SizeBytes=%d", p.SizeBytes())
	}
	for i := 0; i < 1000; i++ {
		p.Insert(uint64(i))
	}
	if p.SizeBytes() < 8000 {
		t.Fatalf("SizeBytes=%d below raw payload", p.SizeBytes())
	}
}

func BenchmarkInsert(b *testing.B) {
	p := New[uint64]()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Insert(rng.Uint64() % (1 << 20))
	}
}

func BenchmarkExtractDict(b *testing.B) {
	p := New[uint64]()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<18; i++ {
		p.Insert(rng.Uint64() % (1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ExtractDict()
	}
}

func TestFindRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewWithFanout[uint64](2)
	for i := 0; i < 500; i++ {
		p.Insert(uint64(rng.Intn(60)))
	}
	ref := func(lo, hi uint64) []int32 {
		var out []int32
		for i, v := range p.Values() {
			if v >= lo && v <= hi {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for trial := 0; trial < 40; trial++ {
		lo := uint64(rng.Intn(70))
		hi := lo + uint64(rng.Intn(30))
		got := p.FindRange(lo, hi, nil)
		want := ref(lo, hi)
		if len(got) != len(want) {
			t.Fatalf("FindRange(%d,%d): %d positions want %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("FindRange(%d,%d)[%d]=%d want %d (ascending positions)", lo, hi, i, got[i], want[i])
			}
		}
	}
	// Appends to dst, preserving the prefix.
	dst := []int32{-7}
	dst = p.FindRange(0, 5, dst)
	if dst[0] != -7 {
		t.Fatalf("prefix clobbered: %v", dst[0])
	}
	if got := p.FindRange(9, 3, nil); len(got) != 0 {
		t.Fatalf("inverted bounds: %v", got)
	}
}
