// Package delta implements the write-optimized delta partition of a column
// (paper §3): an uncompressed append-only value vector plus a CSB+ tree
// over the distinct values, each tree entry carrying the list of tuple
// positions where the value occurs.
//
// Inserts append to the vector and update the tree in O(log unique).
// The merge Step 1(a) consumes the partition through ExtractDict (optimized
// path: sorted dictionary plus per-tuple codes via the posting lists) or
// SortedUnique (naive path: dictionary only).
package delta

import (
	"fmt"
	"sort"

	"hyrise/internal/csbtree"
	"hyrise/internal/dict"
	"hyrise/internal/val"
)

// Partition is a single column's delta.  Create with New.
type Partition[V val.Value] struct {
	values []V
	tree   *csbtree.Tree[V]
}

// New returns an empty delta partition.
func New[V val.Value]() *Partition[V] {
	return &Partition[V]{tree: csbtree.New[V]()}
}

// NewWithFanout is New with an explicit CSB+ fanout (tests).
func NewWithFanout[V val.Value](k int) *Partition[V] {
	return &Partition[V]{tree: csbtree.NewWithFanout[V](k)}
}

// Insert appends v and indexes it; it returns the tuple position within the
// delta partition.
func (p *Partition[V]) Insert(v V) int {
	pos := len(p.values)
	if pos > 1<<31-2 {
		panic("delta: partition exceeds 2^31 tuples")
	}
	p.values = append(p.values, v)
	p.tree.Insert(v, int32(pos))
	return pos
}

// Len returns the number of tuples (N_D).
func (p *Partition[V]) Len() int { return len(p.values) }

// Unique returns the number of distinct values (|U_D|).
func (p *Partition[V]) Unique() int { return p.tree.Unique() }

// Get returns the uncompressed value at delta position i.
func (p *Partition[V]) Get(i int) V { return p.values[i] }

// Values exposes the backing vector; callers must not mutate it.
func (p *Partition[V]) Values() []V { return p.values }

// Find returns the delta positions holding value v, in insertion order.
func (p *Partition[V]) Find(v V) ([]int32, bool) { return p.tree.Find(v) }

// FindRange appends the delta positions holding values in [lo, hi] (both
// inclusive) to dst and returns the extended slice, sorted ascending by
// position.  It walks only the tree leaves inside the bounds, so a
// selective probe is O(log |U_D| + k) — the delta-side counterpart of the
// main partition's group-key index (internal/index).  The appended span is
// sorted so indexed read paths emit positions in the same order a linear
// scan of the value vector would.
func (p *Partition[V]) FindRange(lo, hi V, dst []int32) []int32 {
	base := len(dst)
	p.tree.AscendRange(lo, hi, func(_ V, tids []int32) bool {
		dst = append(dst, tids...)
		return true
	})
	out := dst[base:]
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dst
}

// Tree exposes the CSB+ index (read-only use).
func (p *Partition[V]) Tree() *csbtree.Tree[V] { return p.tree }

// SizeBytes estimates memory: uncompressed values plus the tree.
func (p *Partition[V]) SizeBytes() int {
	return val.SliceBytes(p.values) + p.tree.SizeBytes()
}

// SortedUnique returns the distinct values in ascending order by an
// in-order traversal of the tree leaves — naive Step 1(a), O(|U_D|).
func (p *Partition[V]) SortedUnique() []V {
	out := make([]V, 0, p.tree.Unique())
	p.tree.Ascend(func(v V, _ []int32) bool {
		out = append(out, v)
		return true
	})
	return out
}

// ExtractDict is the optimized Step 1(a) (paper §5.3 "Modified Step 1(a)"):
// one in-order leaf traversal builds the sorted delta dictionary U_D and,
// through each value's tuple-id posting list, rewrites the delta partition
// into fixed-width dictionary codes.  codes[i] is the U_D index of tuple i.
// Each tuple is visited exactly once, so the run time is O(N_D).
func (p *Partition[V]) ExtractDict() (*dict.Dict[V], []uint32) {
	values := make([]V, 0, p.tree.Unique())
	codes := make([]uint32, len(p.values))
	p.tree.Ascend(func(v V, tids []int32) bool {
		c := uint32(len(values))
		values = append(values, v)
		for _, tid := range tids {
			codes[tid] = c
		}
		return true
	})
	return dict.FromSorted(values), codes
}

// ExtractDictParallel is ExtractDict with the scatter phase parallelized
// over nt goroutines (paper §6.2.1 scheme (ii)): the dictionary build is a
// single-threaded traversal that also records, per distinct value, the span
// of tuple ids to rewrite; the spans are then partitioned evenly and each
// worker scatters codes independently.
func (p *Partition[V]) ExtractDictParallel(nt int) (*dict.Dict[V], []uint32) {
	if nt <= 1 || len(p.values) < 1<<14 {
		return p.ExtractDict()
	}
	values := make([]V, 0, p.tree.Unique())
	flat := make([]int32, 0, len(p.values))
	starts := make([]int32, 0, p.tree.Unique()+1)
	p.tree.Ascend(func(v V, tids []int32) bool {
		starts = append(starts, int32(len(flat)))
		values = append(values, v)
		flat = append(flat, tids...)
		return true
	})
	starts = append(starts, int32(len(flat)))

	codes := make([]uint32, len(p.values))
	nv := len(values)
	done := make(chan struct{}, nt)
	for w := 0; w < nt; w++ {
		go func(w int) {
			loV, hiV := nv*w/nt, nv*(w+1)/nt
			for v := loV; v < hiV; v++ {
				c := uint32(v)
				for _, tid := range flat[starts[v]:starts[v+1]] {
					codes[tid] = c
				}
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < nt; w++ {
		<-done
	}
	return dict.FromSorted(values), codes
}

// Validate checks internal invariants (test support): vector length equals
// tree total, every vector value is findable, tree uniques equal the
// distinct count of the vector.
func (p *Partition[V]) Validate() error {
	if p.tree.Total() != len(p.values) {
		return fmt.Errorf("delta: tree total %d != vector len %d", p.tree.Total(), len(p.values))
	}
	seen := make(map[V]struct{}, p.tree.Unique())
	for i, v := range p.values {
		seen[v] = struct{}{}
		tids, ok := p.tree.Find(v)
		if !ok {
			return fmt.Errorf("delta: value at %d not indexed", i)
		}
		found := false
		for _, t := range tids {
			if int(t) == i {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("delta: position %d missing from posting list", i)
		}
	}
	if len(seen) != p.tree.Unique() {
		return fmt.Errorf("delta: distinct %d != tree unique %d", len(seen), p.tree.Unique())
	}
	return nil
}
