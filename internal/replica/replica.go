// Package replica implements the follower side of op-log replication: it
// bootstraps a local store from a primary's snapshot stream, applies the
// op tail, and keeps applying live ops as they arrive, tracking the
// highest epoch at which the local store exactly matches the primary.
//
// # Consistency model
//
// The primary stamps every op with the epoch its mutation committed under
// (the op log's Append IS the stamping point, so log order and epoch order
// agree).  The applier replays ops with those stamps, so replayed rows are
// bit-identical to the primary's: same stable ids, same begin/end epochs,
// same values.  The applied epoch advances only on heartbeats — frames the
// primary sends exclusively when the follower is fully caught up — so at
// any instant, reads at or below AppliedEpoch see exactly what the same
// read sees on the primary.  Ops past the last heartbeat may be partially
// applied, but they are stamped above the applied epoch and are therefore
// invisible to those reads.
//
// # Lifecycle
//
// Open dials the primary, bootstraps (snapshot + tail) and blocks until
// the first heartbeat, so AppliedEpoch is nonzero on return.  A broken
// connection is re-dialed with exponential backoff and the stream resumed
// from the next unapplied LSN; apply is idempotent, so the overlap between
// a snapshot image and the op tail (ops that committed while the snapshot
// was being written) is harmless.  If the primary can no longer serve the
// resume position (op log trimmed past it), the replica stops with a
// permanent error: its store still serves reads at the last applied epoch,
// it just stops advancing.
package replica

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hyrise/internal/epoch"
	"hyrise/internal/oplog"
	"hyrise/internal/persist"
	"hyrise/internal/shard"
	"hyrise/internal/table"
	"hyrise/internal/wire"
)

// Options configures a Replica.
type Options struct {
	// Logger, if non-nil, receives connection-level diagnostics (stream
	// drops, resubscribe attempts) as structured records.  Nil discards.
	Logger *slog.Logger
	// DialTimeout bounds each dial attempt (0 = 5s).
	DialTimeout time.Duration
	// RetryMin and RetryMax bound the reconnect backoff (0 = 50ms / 2s).
	RetryMin, RetryMax time.Duration
}

func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.New(slog.DiscardHandler)
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o Options) retryMin() time.Duration {
	if o.RetryMin <= 0 {
		return 50 * time.Millisecond
	}
	return o.RetryMin
}

func (o Options) retryMax() time.Duration {
	if o.RetryMax <= 0 {
		return 2 * time.Second
	}
	return o.RetryMax
}

// Stats is a point-in-time summary of the applier's progress.
type Stats struct {
	AppliedEpoch uint64 // highest epoch local reads exactly match the primary at
	PrimaryEpoch uint64 // primary's epoch as of the last heartbeat
	AppliedLSN   uint64 // next op-log position to apply
	Resubscribes uint64 // stream drops that led to a reconnect
	Stopped      bool   // true once the applier has stopped (Close or fatal)
}

// Replica is a live follower: a local store plus the applier goroutine
// feeding it.  It satisfies the server's ReplicaInfo interface, so a
// Server fronting Flat()/Sharded() with Options.Replica set serves
// consistent follower reads.
type Replica struct {
	addr string
	opts Options
	log  *slog.Logger // never nil; discards when Options.Logger is nil

	// Exactly one of flat/sharded is non-nil, mirroring the primary's
	// topology (the snapshot image carries it).
	flat    *table.Table
	sharded *shard.Table
	parts   []*table.Table
	clock   *epoch.Clock

	applied atomic.Uint64 // epoch; advances only on caught-up heartbeats
	primary atomic.Uint64
	lsn     atomic.Uint64 // next LSN to apply
	resubs  atomic.Uint64

	ready     chan struct{} // closed on the first heartbeat
	readyOnce sync.Once
	done      chan struct{} // closed when the applier goroutine exits
	closeCh   chan struct{} // closed by Close
	closeOnce sync.Once

	mu   sync.Mutex
	nc   net.Conn // current stream connection, for Close to sever
	err  error    // permanent failure, if any
	dead bool
}

// Open connects to a primary, bootstraps a local store from its snapshot
// stream and starts the applier.  It blocks until the first heartbeat, so
// on success AppliedEpoch is nonzero and reads are immediately servable.
func Open(addr string, opts Options) (*Replica, error) {
	r := &Replica{
		addr:    addr,
		opts:    opts,
		log:     opts.logger(),
		ready:   make(chan struct{}),
		done:    make(chan struct{}),
		closeCh: make(chan struct{}),
	}
	nc, br, err := r.subscribe(wire.SubSnapshot, 0)
	if err != nil {
		return nil, err
	}
	go r.run(nc, br)
	select {
	case <-r.ready:
		return r, nil
	case <-r.done:
		err := r.Err()
		if err == nil {
			err = fmt.Errorf("replica: stream ended before first heartbeat")
		}
		return nil, err
	}
}

// Flat returns the local store when the primary is a flat table.
func (r *Replica) Flat() *table.Table { return r.flat }

// Sharded returns the local store when the primary is sharded.
func (r *Replica) Sharded() *shard.Table { return r.sharded }

// AppliedEpoch returns the highest epoch at which local reads exactly
// match the primary's; 0 until the first heartbeat.
func (r *Replica) AppliedEpoch() uint64 { return r.applied.Load() }

// PrimaryEpoch returns the primary's epoch as of the last heartbeat.
func (r *Replica) PrimaryEpoch() uint64 { return r.primary.Load() }

// AppliedLSN returns the next op-log position to apply.
func (r *Replica) AppliedLSN() uint64 { return r.lsn.Load() }

// Stats returns a point-in-time progress summary.
func (r *Replica) Stats() Stats {
	r.mu.Lock()
	dead := r.dead
	r.mu.Unlock()
	return Stats{
		AppliedEpoch: r.applied.Load(),
		PrimaryEpoch: r.primary.Load(),
		AppliedLSN:   r.lsn.Load(),
		Resubscribes: r.resubs.Load(),
		Stopped:      dead,
	}
}

// Err returns the permanent failure that stopped the applier, or nil.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close stops the applier and waits for it to exit.  The local store
// remains usable (it just stops advancing).
func (r *Replica) Close() error {
	r.closeOnce.Do(func() { close(r.closeCh) })
	r.mu.Lock()
	if r.nc != nil {
		r.nc.Close()
	}
	r.mu.Unlock()
	<-r.done
	return nil
}

func (r *Replica) closed() bool {
	select {
	case <-r.closeCh:
		return true
	default:
		return false
	}
}

// fail records a permanent error; the applier stops advancing but the
// store stays readable at the last applied epoch.
func (r *Replica) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.log.Error("replica: permanent failure", "err", err)
}

// setConn publishes the live stream connection so Close can sever it.
func (r *Replica) setConn(nc net.Conn) {
	r.mu.Lock()
	r.nc = nc
	r.mu.Unlock()
}

// run streams and applies until Close or a permanent error, reconnecting
// through transient drops.  nc/br carry the already-subscribed bootstrap
// stream from Open.
func (r *Replica) run(nc net.Conn, br *bufio.Reader) {
	defer func() {
		r.mu.Lock()
		r.dead = true
		r.mu.Unlock()
		close(r.done)
	}()
	backoff := r.opts.retryMin()
	for {
		err := r.stream(br)
		nc.Close()
		r.setConn(nil)
		if r.closed() {
			return
		}
		if isFatal(err) {
			r.fail(err)
			return
		}
		r.log.Warn("replica: stream dropped", "primary", r.addr, "err", err)
		r.resubs.Add(1)
		for {
			select {
			case <-time.After(backoff):
			case <-r.closeCh:
				return
			}
			if backoff *= 2; backoff > r.opts.retryMax() {
				backoff = r.opts.retryMax()
			}
			var derr error
			nc, br, derr = r.subscribe(wire.SubTail, r.lsn.Load())
			if derr == nil {
				backoff = r.opts.retryMin()
				break
			}
			if r.closed() {
				return
			}
			if isFatal(derr) {
				r.fail(derr)
				return
			}
			r.log.Warn("replica: resubscribe failed", "primary", r.addr, "err", derr)
		}
	}
}

// fatalError marks failures no reconnect can cure: the primary explicitly
// refused the subscription (log trimmed past our position, replication
// disabled), or the stream content itself is inconsistent.
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

func isFatal(err error) bool {
	_, ok := err.(fatalError)
	return ok
}

// subscribe dials the primary and performs the subscribe handshake.  In
// snapshot mode (Open's bootstrap) it also consumes the snapshot image and
// builds the local store.  On success the connection is positioned at the
// start of the op/heartbeat stream and published for Close to sever.
func (r *Replica) subscribe(mode uint8, from uint64) (net.Conn, *bufio.Reader, error) {
	nc, err := net.DialTimeout("tcp", r.addr, r.opts.dialTimeout())
	if err != nil {
		return nil, nil, err
	}
	ok := false
	defer func() {
		if !ok {
			nc.Close()
		}
	}()
	var req wire.Buffer
	req.U8(wire.OpSubscribe)
	req.U8(mode)
	req.U64(from)
	bw := bufio.NewWriter(nc)
	if err := wire.WriteFrame(bw, req.Bytes()); err != nil {
		return nil, nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	resp, err := wire.ReadFrame(br)
	if err != nil {
		return nil, nil, err
	}
	body := wire.NewReader(resp)
	status, err := body.U8()
	if err != nil {
		return nil, nil, fmt.Errorf("replica: empty subscribe response")
	}
	if status != wire.StatusOK {
		msg, _ := body.String()
		// A reasoned refusal is permanent: the primary is alive and said
		// no (log trimmed, replication off, bad request).
		return nil, nil, fatalError{fmt.Errorf("replica: primary refused subscription (status 0x%02x): %s", status, msg)}
	}
	gotMode, err := body.U8()
	var start uint64
	if err == nil {
		start, err = body.U64()
	}
	if err == nil {
		err = body.Rest()
	}
	if err == nil && gotMode != mode {
		err = fmt.Errorf("replica: subscribe mode mismatch: asked 0x%02x, got 0x%02x", mode, gotMode)
	}
	if err == nil && mode == wire.SubTail && start != from {
		err = fmt.Errorf("replica: tail started at LSN %d, want %d", start, from)
	}
	if err != nil {
		return nil, nil, fatalError{err}
	}
	if mode == wire.SubSnapshot {
		sr := &snapReader{br: br}
		flat, sharded, err := persist.LoadAny(sr)
		if err != nil {
			// The image may have been cut short by a primary-side failure
			// (FrameError mid-stream): retryable, not fatal.
			return nil, nil, fmt.Errorf("replica: snapshot bootstrap: %w", err)
		}
		// The loader stops exactly at the image end; consume the
		// FrameSnapEnd marker so the op stream starts frame-aligned.
		var tmp [1]byte
		if n, rerr := sr.Read(tmp[:]); n != 0 || rerr != io.EOF {
			return nil, nil, fatalError{fmt.Errorf("replica: trailing bytes after snapshot image (n=%d, err=%v)", n, rerr)}
		}
		r.flat, r.sharded = flat, sharded
		if flat != nil {
			r.parts = flat.Partitions()
			r.clock = flat.Clock()
		} else {
			r.parts = sharded.Partitions()
			r.clock = sharded.Clock()
		}
		r.lsn.Store(start)
	}
	ok = true
	r.setConn(nc)
	return nc, br, nil
}

// stream reads and applies op/heartbeat frames until the connection
// breaks or the content is inconsistent.
func (r *Replica) stream(br *bufio.Reader) error {
	for {
		frame, err := wire.ReadFrame(br)
		if err != nil {
			return err
		}
		if len(frame) == 0 {
			return fatalError{fmt.Errorf("replica: empty stream frame")}
		}
		body := wire.NewReader(frame[1:])
		switch frame[0] {
		case wire.FrameOps:
			n, err := body.U32()
			if err != nil {
				return fatalError{err}
			}
			for i := uint32(0); i < n; i++ {
				op, err := oplog.Decode(body)
				if err != nil {
					return fatalError{err}
				}
				if want := r.lsn.Load(); op.LSN != want {
					return fatalError{fmt.Errorf("replica: op LSN %d out of order, want %d", op.LSN, want)}
				}
				if err := r.apply(op); err != nil {
					return fatalError{fmt.Errorf("replica: apply op %d: %w", op.LSN, err)}
				}
				r.lsn.Store(op.LSN + 1)
			}
			if err := body.Rest(); err != nil {
				return fatalError{err}
			}
		case wire.FrameHeartbeat:
			safe, err := body.U64()
			var primaryE, next uint64
			if err == nil {
				primaryE, err = body.U64()
			}
			if err == nil {
				next, err = body.U64()
			}
			if err == nil {
				err = body.Rest()
			}
			if err != nil {
				return fatalError{err}
			}
			r.primary.Store(primaryE)
			// The heartbeat's safe epoch covers exactly the ops below
			// next; it becomes our applied epoch only if we have applied
			// all of them (which stream order guarantees — the check is a
			// cross-check, not a race guard).
			if next == r.lsn.Load() {
				r.clock.AdvanceTo(safe)
				if safe > r.applied.Load() {
					r.applied.Store(safe)
				}
				r.readyOnce.Do(func() { close(r.ready) })
			}
		case wire.FrameError:
			msg, _ := body.String()
			// The primary reported a stream-level failure (snapshot save
			// aborted, log trimmed under us).  A trimmed log cannot heal,
			// and resubscribing answers the question definitively, so
			// treat it as retryable and let the resubscribe decide.
			return fmt.Errorf("replica: primary error: %s", msg)
		default:
			return fatalError{fmt.Errorf("replica: unexpected stream frame kind 0x%02x", frame[0])}
		}
	}
}

// apply replays one op into the local store with the primary's stamps.
func (r *Replica) apply(op oplog.Op) error {
	switch op.Kind {
	case oplog.KindReshardBegin:
		// The primary logged the begin BEFORE routing any op to the new
		// partitions, so creating them here keeps every later op's target
		// in range.  Idempotent by shard-map version: a begin already
		// covered by the bootstrap snapshot's topology is skipped.
		if r.sharded == nil {
			return fmt.Errorf("reshard op on a flat store")
		}
		if err := r.sharded.ApplyReshardBegin(int(op.Shard), int(op.ID), op.ID2); err != nil {
			return err
		}
		r.parts = r.sharded.Partitions()
		return nil
	case oplog.KindReshardCutover:
		if r.sharded == nil {
			return fmt.Errorf("reshard op on a flat store")
		}
		return r.sharded.ApplyReshardCutover(int(op.Shard), int(op.ID), op.ID2)
	}
	if int(op.Shard) >= len(r.parts) {
		return fmt.Errorf("shard %d out of range (%d partitions)", op.Shard, len(r.parts))
	}
	p := r.parts[op.Shard]
	switch op.Kind {
	case oplog.KindInsert:
		return p.ApplyInsert(op.ID, op.Rows, op.Epoch)
	case oplog.KindUpdate:
		return p.ApplyUpdate(op.ID, op.ID2, op.Rows[0], op.Epoch)
	case oplog.KindDelete:
		return p.ApplyInvalidate(op.ID, op.Epoch)
	case oplog.KindMove:
		if int(op.Dst) >= len(r.parts) {
			return fmt.Errorf("dst shard %d out of range (%d partitions)", op.Dst, len(r.parts))
		}
		// The two halves are applied separately, but both carry the op's
		// single stamp, which is above every servable read epoch until the
		// next heartbeat — so no reader can observe the intermediate state,
		// matching the primary's both-locks-one-stamp atomicity.
		if err := p.ApplyInvalidate(op.ID, op.Epoch); err != nil {
			return err
		}
		return r.parts[op.Dst].ApplyInsert(op.ID2, [][]any{op.Rows[0]}, op.Epoch)
	default:
		return fmt.Errorf("unknown op kind 0x%02x", uint8(op.Kind))
	}
}

// snapReader adapts the FrameSnapChunk/FrameSnapEnd stream into the
// io.Reader the snapshot loader wants.
type snapReader struct {
	br   *bufio.Reader
	buf  []byte
	done bool
}

func (sr *snapReader) Read(p []byte) (int, error) {
	for len(sr.buf) == 0 {
		if sr.done {
			return 0, io.EOF
		}
		frame, err := wire.ReadFrame(sr.br)
		if err != nil {
			return 0, err
		}
		if len(frame) == 0 {
			return 0, fmt.Errorf("replica: empty snapshot frame")
		}
		switch frame[0] {
		case wire.FrameSnapChunk:
			sr.buf = frame[1:]
		case wire.FrameSnapEnd:
			sr.done = true
		case wire.FrameError:
			msg, _ := wire.NewReader(frame[1:]).String()
			return 0, fmt.Errorf("replica: primary aborted snapshot: %s", msg)
		default:
			return 0, fmt.Errorf("replica: unexpected frame kind 0x%02x in snapshot", frame[0])
		}
	}
	n := copy(p, sr.buf)
	sr.buf = sr.buf[n:]
	return n, nil
}
