package replica_test

import (
	"fmt"
	"log/slog"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"hyrise/internal/oplog"
	"hyrise/internal/replica"
	"hyrise/internal/server"
	"hyrise/internal/shard"
	"hyrise/internal/table"
)

// testLogWriter adapts t.Logf so replica slog output lands in the test
// log.
type testLogWriter struct{ t testing.TB }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

func testLogger(t testing.TB) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

func replSchema() table.Schema {
	return table.Schema{
		{Name: "k", Type: table.Uint64},
		{Name: "v", Type: table.Uint32},
		{Name: "s", Type: table.String},
	}
}

// primary bundles a store, its op log and a server over it.
type primary struct {
	st   server.Store
	log  *oplog.Log
	srv  *server.Server
	addr string
}

func startPrimary(t testing.TB, st server.Store) *primary {
	t.Helper()
	var err error
	log := oplog.New(st.Partitions()[0].Clock(), 0)
	switch x := st.(type) {
	case *table.Table:
		err = x.AttachOplog(log, 0)
	case *shard.Table:
		err = x.AttachOplog(log)
	default:
		t.Fatalf("unsupported store %T", st)
	}
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(st, server.Options{OpLog: log})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return &primary{st: st, log: log, srv: srv, addr: l.Addr().String()}
}

func openReplica(t testing.TB, addr string) *replica.Replica {
	t.Helper()
	rep, err := replica.Open(addr, replica.Options{Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	return rep
}

func replicaStore(t testing.TB, rep *replica.Replica) server.Store {
	t.Helper()
	if f := rep.Flat(); f != nil {
		return f
	}
	if s := rep.Sharded(); s != nil {
		return s
	}
	t.Fatal("replica has no store")
	return nil
}

// waitApplied blocks until the replica's applied epoch reaches e.
func waitApplied(t testing.TB, rep *replica.Replica, e uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for rep.AppliedEpoch() < e {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at epoch %d (lsn %d), want %d; err=%v",
				rep.AppliedEpoch(), rep.AppliedLSN(), e, rep.Err())
		}
		time.Sleep(time.Millisecond)
	}
}

// requireIdentical asserts the replica's partitions are bit-identical to
// the primary's: same stable ids, same begin/end epochs, same values.
func requireIdentical(t testing.TB, want, got server.Store) {
	t.Helper()
	wp, gp := want.Partitions(), got.Partitions()
	if len(wp) != len(gp) {
		t.Fatalf("partition count: primary %d, replica %d", len(wp), len(gp))
	}
	for i := range wp {
		if w, g := wp[i].NextRowID(), gp[i].NextRowID(); w != g {
			t.Fatalf("shard %d nextID: primary %d, replica %d", i, w, g)
		}
		wids, gids := wp[i].RowIDs(), gp[i].RowIDs()
		if !reflect.DeepEqual(wids, gids) {
			t.Fatalf("shard %d ids differ:\nprimary %v\nreplica %v", i, wids, gids)
		}
		wb, we := wp[i].RowEpochs()
		gb, ge := gp[i].RowEpochs()
		if !reflect.DeepEqual(wb, gb) || !reflect.DeepEqual(we, ge) {
			t.Fatalf("shard %d epochs differ:\nprimary %v / %v\nreplica %v / %v", i, wb, we, gb, ge)
		}
		for _, id := range wids {
			wv, err := wp[i].Row(id)
			if err != nil {
				t.Fatal(err)
			}
			gv, err := gp[i].Row(id)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wv, gv) {
				t.Fatalf("shard %d row %d: primary %v, replica %v", i, id, wv, gv)
			}
		}
	}
}

func newPrimaryStores(t *testing.T) map[string]server.Store {
	t.Helper()
	flat, err := table.New("repl", replSchema())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := shard.New("repl", replSchema(), "k", 4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]server.Store{"flat": flat, "sharded": sharded}
}

func TestReplicaBootstrapAndFollow(t *testing.T) {
	for name, st := range newPrimaryStores(t) {
		t.Run(name, func(t *testing.T) {
			p := startPrimary(t, st)

			// Pre-subscribe state arrives via the snapshot image.
			ids := make([]int, 0, 16)
			for i := 0; i < 8; i++ {
				id, err := p.st.Insert([]any{uint64(i), uint32(i * 10), fmt.Sprintf("pre-%d", i)})
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			clock := p.st.Partitions()[0].Clock()
			clock.Capture()

			rep := openReplica(t, p.addr)
			if rep.AppliedEpoch() == 0 {
				t.Fatal("Open returned before the first heartbeat")
			}

			// Post-subscribe mutations arrive via the live op stream,
			// including a key-moving update on the sharded topology.
			if _, err := p.st.InsertRows([][]any{
				{uint64(100), uint32(1), "live-a"},
				{uint64(101), uint32(2), "live-b"},
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := p.st.Update(ids[0], map[string]any{"v": uint32(999)}); err != nil {
				t.Fatal(err)
			}
			if _, err := p.st.Update(ids[1], map[string]any{"k": uint64(7777)}); err != nil {
				t.Fatal(err)
			}
			if err := p.st.Delete(ids[2]); err != nil {
				t.Fatal(err)
			}
			e := clock.Capture()
			waitApplied(t, rep, e)
			requireIdentical(t, p.st, replicaStore(t, rep))

			// The replica's store rejects nothing locally (it is a plain
			// store), but reads at the applied epoch match the primary.
			if w, g := p.st.ValidRowsAt(table.ViewAt(e)), replicaStore(t, rep).ValidRowsAt(table.ViewAt(e)); w != g {
				t.Fatalf("valid rows at %d: primary %d, replica %d", e, w, g)
			}
		})
	}
}

func TestReplicaResubscribe(t *testing.T) {
	flat, err := table.New("repl", replSchema())
	if err != nil {
		t.Fatal(err)
	}
	p := startPrimary(t, flat)
	clock := flat.Clock()
	if _, err := flat.Insert([]any{uint64(1), uint32(1), "a"}); err != nil {
		t.Fatal(err)
	}
	clock.Capture()

	rep, err := replica.Open(p.addr, replica.Options{
		Logger:   testLogger(t),
		RetryMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	// Kill the server but keep the store and log; the stream drops.
	p.srv.Close()

	// Mutations while the replica is disconnected land in the log.
	if _, err := flat.Insert([]any{uint64(2), uint32(2), "b"}); err != nil {
		t.Fatal(err)
	}

	// Re-listen on the same address with a fresh server over the same
	// store; the replica must resume the tail from its applied LSN.
	var l net.Listener
	for i := 0; ; i++ {
		l, err = net.Listen("tcp", p.addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", p.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv2, err := server.New(flat, server.Options{OpLog: p.log})
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l)
	defer srv2.Close()

	e := clock.Capture()
	waitApplied(t, rep, e)
	requireIdentical(t, flat, replicaStore(t, rep))
	if rep.Stats().Resubscribes == 0 {
		t.Fatal("expected at least one resubscribe")
	}
}

// TestReplicaChurnConsistency hammers a sharded primary with concurrent
// key-moving writers while continuously checking that follower reads at
// the applied epoch are identical to primary reads at the same epoch.
func TestReplicaChurnConsistency(t *testing.T) {
	st, err := shard.New("repl", replSchema(), "k", 4)
	if err != nil {
		t.Fatal(err)
	}
	p := startPrimary(t, st)
	clock := st.Clock()

	const rows = 64
	ids := make([]int, rows)
	for i := range ids {
		id, err := st.Insert([]any{uint64(i), uint32(i), fmt.Sprintf("r%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	clock.Capture()
	rep := openReplica(t, p.addr)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes access to the live id of each slot
	live := append([]int(nil), ids...)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				slot := (w*17 + i) % rows
				mu.Lock()
				id := live[slot]
				// Move the row to a fresh key so it hops shards.
				nid, err := st.Update(id, map[string]any{"k": uint64(slot + (i+1)*rows)})
				if err == nil {
					live[slot] = nid
				}
				mu.Unlock()
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%8 == 0 {
					clock.Capture()
				}
			}
		}(w)
	}

	sumP, err := shard.NumericColumnOf[uint64](st, "k")
	if err != nil {
		t.Fatal(err)
	}
	sumR, err := shard.NumericColumnOf[uint64](replicaStore(t, rep).(*shard.Table), "k")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	checks := 0
	for time.Now().Before(deadline) {
		e := rep.AppliedEpoch()
		if e == 0 {
			continue
		}
		// The row population never shrinks, and epochs isolate: at any
		// applied epoch both sides must agree exactly.
		pv, rv := st.ValidRowsAt(table.ViewAt(e)), rep.Sharded().ValidRowsAt(table.ViewAt(e))
		if pv != rv {
			t.Fatalf("valid rows at %d: primary %d, replica %d", e, pv, rv)
		}
		ps, rs := sumP.SumAt(table.ViewAt(e)), sumR.SumAt(table.ViewAt(e))
		if ps != rs {
			t.Fatalf("sum(k) at %d: primary %d, replica %d", e, ps, rs)
		}
		checks++
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if checks == 0 {
		t.Fatal("no consistency checks ran")
	}

	// Quiesce and verify full bit-identity.
	e := clock.Capture()
	waitApplied(t, rep, e)
	requireIdentical(t, st, replicaStore(t, rep))
}
