package replica_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hyrise/internal/shard"
	"hyrise/internal/table"
)

// TestReplicaReshardReplay reshards the primary 4 -> 8 while a writer
// churns, and asserts the follower replays the same migration from the
// op log into a bit-identical store — same partitions, same stable ids,
// same epochs, same values — and converges on the same topology.  A
// second follower bootstrapping after the fact must get the post-reshard
// topology from the snapshot image instead.
func TestReplicaReshardReplay(t *testing.T) {
	st, err := shard.New("repl", replSchema(), "k", 4)
	if err != nil {
		t.Fatal(err)
	}
	p := startPrimary(t, st)

	const keys = 64
	gids := make([]int, keys)
	curKey := make([]uint64, keys)
	for i := 0; i < keys; i++ {
		curKey[i] = uint64(i)
		if gids[i], err = st.Insert([]any{uint64(i), uint32(i), fmt.Sprintf("row-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	rep := openReplica(t, p.addr)

	// Churn concurrently with the reshard: value updates, key moves and
	// deletes all race the migration pass, so the log interleaves moves
	// from both sources.  A write whose row the migration claimed first
	// observes table.ErrRowInvalid and retries through a key lookup,
	// exactly as the Reshard contract prescribes.
	update := func(i int, changes map[string]any) bool {
		for {
			ngid, err := st.Update(gids[i], changes)
			if err == nil {
				gids[i] = ngid
				if nk, ok := changes["k"]; ok {
					curKey[i] = nk.(uint64)
				}
				return true
			}
			if !errors.Is(err, table.ErrRowInvalid) {
				t.Errorf("update key %d: %v", curKey[i], err)
				return false
			}
			h, err := shard.ColumnOf[uint64](st, "k")
			if err != nil {
				t.Error(err)
				return false
			}
			found := h.Lookup(curKey[i])
			if len(found) != 1 {
				t.Errorf("relocating key %d: resolved %d times", curKey[i], len(found))
				return false
			}
			gids[i] = found[0]
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 4; round++ {
			for i := 0; i < keys; i++ {
				switch i % 3 {
				case 0:
					if !update(i, map[string]any{"v": uint32(round*1000 + i)}) {
						return
					}
				case 1:
					if !update(i, map[string]any{"k": uint64(i + (round+1)*10000)}) {
						return
					}
				case 2:
					if round == 3 && !update(i, map[string]any{"s": "final"}) {
						return
					}
				}
			}
		}
		// Delete a few rows at the end; deletes are valid in sealed
		// partitions, so no retry is needed.
		for i := 2; i < keys; i += 9 {
			if err := st.Delete(gids[i]); err != nil && !errors.Is(err, table.ErrRowInvalid) {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	rrep, err := st.Reshard(context.Background(), 8)
	if err != nil {
		t.Fatalf("Reshard under churn: %v", err)
	}
	wg.Wait()

	e := st.Clock().Capture()
	waitApplied(t, rep, e)
	requireIdentical(t, st, replicaStore(t, rep))

	fs := rep.Sharded()
	if fs.NumShards() != 8 || fs.NumParts() != 12 {
		t.Fatalf("follower topology: shards=%d parts=%d", fs.NumShards(), fs.NumParts())
	}
	if fs.MapVersion() != st.MapVersion() || fs.MapVersion() != rrep.Version {
		t.Fatalf("map versions: follower %d, primary %d, report %d",
			fs.MapVersion(), st.MapVersion(), rrep.Version)
	}
	if fs.Resharding() {
		t.Fatal("follower still mid-reshard after cutover replay")
	}

	// A fresh bootstrap gets the new topology from the snapshot image and
	// still converges bit-identically.
	rep2 := openReplica(t, p.addr)
	waitApplied(t, rep2, e)
	requireIdentical(t, st, replicaStore(t, rep2))
	if fs2 := rep2.Sharded(); fs2.NumShards() != 8 || fs2.MapVersion() != st.MapVersion() {
		t.Fatalf("bootstrap topology: shards=%d version=%d", fs2.NumShards(), fs2.MapVersion())
	}
}
