// Package epoch implements the multi-version visibility substrate for
// snapshot reads: a shared monotonic epoch clock plus per-row begin/end
// epoch columns.
//
// The insert-only protocol of the paper (§3) — an UPDATE appends a new row
// version and invalidates the old one, a DELETE only invalidates — already
// stores every version; epochs make the version history navigable.  Each
// row records the epoch it became visible (begin) and the epoch it was
// invalidated (end, 0 while it is the current version).  A row is visible
// to a snapshot at epoch E iff
//
//	begin <= E && (end == 0 || end > E)
//
// The clock only advances when a snapshot is captured (Capture is one
// atomic fetch-add), so all mutations between two captures share an epoch
// and the common write path pays a single atomic load.  Larson et al.
// (VLDB 2011) and Faleiro & Abadi (VLDB 2014) use the same begin/end
// timestamp shape to keep readers out of writers' way in main-memory
// stores.
//
// Concurrency contract: Clock methods are safe for unsynchronized use.
// Rows methods are NOT internally synchronized — the owning table guards
// them with the same mutex that guards its column data, and every mutation
// must read its stamp (Clock.Now) while holding all locks it writes under.
// That protocol makes each mutation atomic with respect to any capture:
// the set "rows stamped <= E" is causally consistent for every captured E.
package epoch

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Latest is the sentinel read epoch that sees exactly the current versions
// (end == 0).  Real epochs are far below it: the clock starts at 1 and
// advances once per capture.
const Latest uint64 = math.MaxUint64

// Clock is a shared monotonic epoch counter.  One clock serves a whole
// store: a flat table owns one, a sharded table shares one across all its
// shards so a single capture freezes every shard at the same epoch.
//
// The clock doubles as the garbage-collection pin registry: CapturePinned
// registers the captured epoch as live, and Watermark reports the highest
// epoch at or below which invalidated versions may be reclaimed — the
// minimum pinned epoch, or the current epoch when nothing is pinned.
// Because the registry lives on the clock, pins are store-wide: one pin
// protects history on every shard sharing the clock.
type Clock struct {
	cur atomic.Uint64

	pinMu sync.Mutex
	pins  map[*Pin]struct{}
}

// NewClock returns a clock at epoch 1.
func NewClock() *Clock {
	c := &Clock{}
	c.cur.Store(1)
	return c
}

// Now returns the current epoch, the stamp mutations write.
func (c *Clock) Now() uint64 { return c.cur.Load() }

// Capture atomically closes the current epoch and returns it as a read
// epoch: every mutation stamped at or below the returned value is part of
// the snapshot, every later mutation stamps a higher epoch.
func (c *Clock) Capture() uint64 { return c.cur.Add(1) - 1 }

// AdvanceTo moves the clock forward to at least e (never backward); the
// snapshot loader uses it to resume a persisted clock.
func (c *Clock) AdvanceTo(e uint64) {
	for {
		cur := c.cur.Load()
		if cur >= e || c.cur.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Pin is a registered live read epoch.  While a pin is held, no version
// whose end epoch is at or above the pinned epoch is reclaimed, so reads at
// that epoch keep seeing their full row set.  Release it when the reader is
// done; Release is idempotent and safe for concurrent use.
type Pin struct {
	c     *Clock
	epoch uint64
}

// Epoch returns the pinned read epoch.
func (p *Pin) Epoch() uint64 { return p.epoch }

// Release unregisters the pin, letting the watermark advance past it.
func (p *Pin) Release() {
	if p == nil {
		return
	}
	p.c.pinMu.Lock()
	delete(p.c.pins, p)
	p.c.pinMu.Unlock()
}

// CapturePinned captures a read epoch (exactly like Capture) and registers
// it as pinned.  Registering under the pin mutex makes the capture and the
// registration atomic with respect to Watermark: a reclaim decision either
// sees the pin, or ran before the capture — and versions reclaimed before
// the capture (end <= W <= E) were invisible at the captured epoch anyway,
// so a pinned view can never lose rows it could see.
func (c *Clock) CapturePinned() (uint64, *Pin) {
	c.pinMu.Lock()
	defer c.pinMu.Unlock()
	e := c.Capture()
	p := &Pin{c: c, epoch: e}
	if c.pins == nil {
		c.pins = make(map[*Pin]struct{})
	}
	c.pins[p] = struct{}{}
	return e, p
}

// PinAt registers a pin at an arbitrary epoch without capturing: the clock
// does not advance and e may lie in the past.  Replication followers use it
// to serve reads at their applied epoch, and the server uses it to pin a
// client-chosen epoch on a follower.  Unlike CapturePinned it cannot
// promise the epoch's history is still intact — versions invalidated at or
// below a past GC watermark may already be gone — so callers must check
// the store's GC bound (table.Table.GCBound) after pinning and release the
// pin if the bound has passed e.
func (c *Clock) PinAt(e uint64) *Pin {
	c.pinMu.Lock()
	defer c.pinMu.Unlock()
	p := &Pin{c: c, epoch: e}
	if c.pins == nil {
		c.pins = make(map[*Pin]struct{})
	}
	c.pins[p] = struct{}{}
	return p
}

// Pins returns the number of currently registered pins.
func (c *Clock) Pins() int {
	c.pinMu.Lock()
	defer c.pinMu.Unlock()
	return len(c.pins)
}

// Watermark returns the garbage-collection watermark W: versions with
// end != 0 && end <= W are invisible to every pinned view and to every
// capture that has not happened yet, so they may be reclaimed.  W is the
// minimum pinned epoch when pins exist, the current epoch otherwise (a
// version with end == Now() is already invisible to the next capture,
// which returns Now() and requires end > E for visibility).
func (c *Clock) Watermark() uint64 {
	c.pinMu.Lock()
	defer c.pinMu.Unlock()
	w := c.Now()
	for p := range c.pins {
		if p.epoch < w {
			w = p.epoch
		}
	}
	return w
}

// PinSet is a point-in-time copy of the live pin registry plus the epoch
// the clock stood at when the copy was taken.  It drives precise per-pin
// retention: instead of collapsing all pins into a single min-pin
// watermark, a reclaim decision tests each dead version's [begin, end)
// validity interval against the individual pinned epochs, so a version
// invalidated after an old pin — and therefore never visible to it — is
// reclaimable even while that old pin stays registered.
//
// The copy is consistent (taken under the pin mutex) but immediately
// stale: pins registered after LivePins returns are not in the set.  That
// is safe for the GC protocol because new pins are either captures (whose
// epoch is >= now, protected by the now bound) or PinAt calls, which must
// check the table's GCBound after pinning.
type PinSet struct {
	epochs []uint64 // sorted ascending, one per live pin
	now    uint64   // clock reading at snapshot time
}

// LivePins snapshots the live pin registry and the current epoch into a
// PinSet for one reclaim pass.
func (c *Clock) LivePins() PinSet {
	c.pinMu.Lock()
	defer c.pinMu.Unlock()
	ps := PinSet{now: c.Now()}
	if len(c.pins) > 0 {
		ps.epochs = make([]uint64, 0, len(c.pins))
		for p := range c.pins {
			ps.epochs = append(ps.epochs, p.epoch)
		}
		sort.Slice(ps.epochs, func(i, j int) bool { return ps.epochs[i] < ps.epochs[j] })
	}
	return ps
}

// Now returns the epoch the clock stood at when the set was snapshotted.
func (ps PinSet) Now() uint64 { return ps.now }

// Len returns the number of live pins in the set.
func (ps PinSet) Len() int { return len(ps.epochs) }

// Watermark returns the classic min-pin watermark over the set: the
// minimum pinned epoch, or the snapshot epoch when nothing is pinned.
// Retention tests keep it around to measure precise retention against the
// coarse horizon it replaces.
func (ps PinSet) Watermark() uint64 {
	if len(ps.epochs) > 0 && ps.epochs[0] < ps.now {
		return ps.epochs[0]
	}
	return ps.now
}

// Reclaimable reports whether a version with the given begin/end stamps is
// invisible to every live pin and to every future capture, and may
// therefore be reclaimed.  A version is visible at pinned epoch E iff
// begin <= E < end (end == 0 means current, never reclaimable), so the
// version is reclaimable iff it is dead, already invisible to the next
// capture (end <= now), and no pinned epoch falls inside [begin, end).
func (ps PinSet) Reclaimable(begin, end uint64) bool {
	if end == 0 || end > ps.now {
		return false
	}
	// Smallest pinned epoch >= begin; the version is visible to it iff it
	// is also < end.  Pins below begin predate the version and never saw
	// it; pins at or above end only saw its successors.
	i := sort.Search(len(ps.epochs), func(i int) bool { return ps.epochs[i] >= begin })
	return i == len(ps.epochs) || ps.epochs[i] >= end
}

// Rows holds the begin/end epoch columns of one table, indexed by row id.
// The zero value is an empty column pair.  Methods require external
// synchronization (the owning table's mutex).
type Rows struct {
	begin []uint64
	end   []uint64 // 0 = current version
}

// Len returns the number of stamped rows.
func (r *Rows) Len() int { return len(r.begin) }

// Append stamps a new row as inserted at epoch begin.
func (r *Rows) Append(begin uint64) {
	r.begin = append(r.begin, begin)
	r.end = append(r.end, 0)
}

// Begin returns row i's insertion epoch.
func (r *Rows) Begin(i int) uint64 { return r.begin[i] }

// End returns row i's invalidation epoch (0 while current).
func (r *Rows) End(i int) uint64 { return r.end[i] }

// Alive reports whether row i is the current version.
func (r *Rows) Alive(i int) bool { return r.end[i] == 0 }

// Invalidate stamps row i as invalidated at epoch end.
func (r *Rows) Invalidate(i int, end uint64) { r.end[i] = end }

// VisibleAt reports whether row i is visible to a snapshot at epoch e.
// With e == Latest this degenerates to Alive.
func (r *Rows) VisibleAt(i int, e uint64) bool {
	return r.begin[i] <= e && (r.end[i] == 0 || r.end[i] > e)
}

// Raw exposes the backing begin and end columns for batch kernels
// (internal/kernel).  The slices alias internal state: callers must hold
// the owning table's lock for the duration of use and must not mutate or
// retain them past the locked region.
func (r *Rows) Raw() (begin, end []uint64) { return r.begin, r.end }

// CountAlive returns the number of current versions.
func (r *Rows) CountAlive() int {
	n := 0
	for _, e := range r.end {
		if e == 0 {
			n++
		}
	}
	return n
}

// CountVisibleAt returns the number of rows visible at epoch e.
func (r *Rows) CountVisibleAt(e uint64) int {
	n := 0
	for i := range r.begin {
		if r.VisibleAt(i, e) {
			n++
		}
	}
	return n
}

// Compact removes the rows marked true in drop, which covers the first
// len(drop) rows; rows beyond len(drop) are kept unconditionally.  Survivor
// order is preserved, so a survivor's new index is its rank among kept
// rows.  It returns the number of rows removed.  The owning table uses it
// at merge commit to reclaim versions below the GC watermark.
func (r *Rows) Compact(drop []bool) int {
	w := 0
	for i := range r.begin {
		if i < len(drop) && drop[i] {
			continue
		}
		r.begin[w] = r.begin[i]
		r.end[w] = r.end[i]
		w++
	}
	removed := len(r.begin) - w
	r.begin = r.begin[:w]
	r.end = r.end[:w]
	return removed
}

// Snapshot returns copies of the begin and end columns (for persistence).
func (r *Rows) Snapshot() (begin, end []uint64) {
	begin = append([]uint64(nil), r.begin...)
	end = append([]uint64(nil), r.end...)
	return begin, end
}

// Restore overwrites both columns; len(begin) must equal len(end) and the
// current Len.  The loader uses it to re-stamp freshly rebuilt rows with
// their persisted epochs.
func (r *Rows) Restore(begin, end []uint64) bool {
	if len(begin) != len(r.begin) || len(end) != len(r.end) {
		return false
	}
	copy(r.begin, begin)
	copy(r.end, end)
	return true
}

// SizeBytes returns the memory consumed by the epoch columns.
func (r *Rows) SizeBytes() int { return (len(r.begin) + len(r.end)) * 8 }
