package epoch

import (
	"sync"
	"testing"
)

func TestClockCapture(t *testing.T) {
	c := NewClock()
	if c.Now() != 1 {
		t.Fatalf("fresh clock at %d, want 1", c.Now())
	}
	if e := c.Capture(); e != 1 {
		t.Fatalf("first capture %d, want 1", e)
	}
	if c.Now() != 2 {
		t.Fatalf("post-capture clock %d, want 2", c.Now())
	}
	if e := c.Capture(); e != 2 {
		t.Fatalf("second capture %d, want 2", e)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(10)
	if c.Now() != 10 {
		t.Fatalf("clock %d, want 10", c.Now())
	}
	c.AdvanceTo(5) // never backward
	if c.Now() != 10 {
		t.Fatalf("clock moved backward to %d", c.Now())
	}
}

// TestClockConcurrentCapture checks captures are unique and monotone under
// concurrency (run with -race).
func TestClockConcurrentCapture(t *testing.T) {
	c := NewClock()
	const n, per = 8, 1000
	got := make([][]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				got[i] = append(got[i], c.Capture())
			}
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for i := range got {
		prev := uint64(0)
		for _, e := range got[i] {
			if e <= prev {
				t.Fatalf("non-monotone capture %d after %d", e, prev)
			}
			if seen[e] {
				t.Fatalf("duplicate capture %d", e)
			}
			seen[e] = true
			prev = e
		}
	}
}

func TestRowsVisibility(t *testing.T) {
	var r Rows
	r.Append(1) // row 0: inserted at epoch 1, current
	r.Append(2) // row 1: inserted at epoch 2
	r.Invalidate(1, 4)
	r.Append(3) // row 2: inserted and invalidated in the same epoch
	r.Invalidate(2, 3)

	cases := []struct {
		row  int
		e    uint64
		want bool
	}{
		{0, 1, true}, {0, 5, true}, {0, Latest, true},
		{1, 1, false}, // not yet inserted
		{1, 2, true}, {1, 3, true},
		{1, 4, false}, // invalidated at 4: epoch-4 snapshot sees the successor
		{1, Latest, false},
		{2, 2, false}, {2, 3, false}, {2, 4, false}, {2, Latest, false},
	}
	for _, c := range cases {
		if got := r.VisibleAt(c.row, c.e); got != c.want {
			t.Errorf("VisibleAt(%d, %d) = %v want %v", c.row, c.e, got, c.want)
		}
	}
	if r.CountAlive() != 1 {
		t.Fatalf("CountAlive = %d want 1", r.CountAlive())
	}
	if r.CountVisibleAt(3) != 2 { // rows 0 and 1
		t.Fatalf("CountVisibleAt(3) = %d want 2", r.CountVisibleAt(3))
	}
}

func TestRowsSnapshotRestore(t *testing.T) {
	var r Rows
	r.Append(1)
	r.Append(2)
	r.Invalidate(0, 3)
	b, e := r.Snapshot()

	var q Rows
	q.Append(9)
	q.Append(9)
	if !q.Restore(b, e) {
		t.Fatal("restore rejected matching lengths")
	}
	if q.Begin(0) != 1 || q.End(0) != 3 || q.Begin(1) != 2 || !q.Alive(1) {
		t.Fatalf("restored state wrong: %v %v", b, e)
	}
	if q.Restore(b[:1], e[:1]) {
		t.Fatal("restore accepted short columns")
	}
}

func TestPinWatermark(t *testing.T) {
	c := NewClock()
	// No pins: the watermark is the current epoch.
	if w := c.Watermark(); w != c.Now() {
		t.Fatalf("unpinned watermark %d want %d", w, c.Now())
	}
	e1, p1 := c.CapturePinned()
	c.Capture()
	c.Capture()
	e2, p2 := c.CapturePinned()
	if e2 <= e1 {
		t.Fatalf("epochs not monotonic: %d then %d", e1, e2)
	}
	if c.Pins() != 2 {
		t.Fatalf("pins %d want 2", c.Pins())
	}
	// The watermark is the minimum pinned epoch.
	if w := c.Watermark(); w != e1 {
		t.Fatalf("watermark %d want %d", w, e1)
	}
	p1.Release()
	if w := c.Watermark(); w != e2 {
		t.Fatalf("watermark after first release %d want %d", w, e2)
	}
	// Release is idempotent.
	p1.Release()
	p2.Release()
	p2.Release()
	if c.Pins() != 0 {
		t.Fatalf("pins %d want 0", c.Pins())
	}
	if w := c.Watermark(); w != c.Now() {
		t.Fatalf("watermark %d want Now %d", w, c.Now())
	}
	// A nil pin (unpinned view) releases as a no-op.
	var p *Pin
	p.Release()
}

func TestRowsCompact(t *testing.T) {
	var r Rows
	for i := 0; i < 6; i++ {
		r.Append(uint64(i + 1))
	}
	r.Invalidate(1, 9)
	r.Invalidate(3, 9)
	// Drop slots 1 and 3; slots 4+ beyond the mask are kept as-is.
	removed := r.Compact([]bool{false, true, false, true})
	if removed != 2 || r.Len() != 4 {
		t.Fatalf("removed %d len %d", removed, r.Len())
	}
	wantBegin := []uint64{1, 3, 5, 6}
	for i, want := range wantBegin {
		if r.Begin(i) != want {
			t.Fatalf("begin[%d] = %d want %d", i, r.Begin(i), want)
		}
	}
	if !r.Alive(0) || !r.Alive(1) || !r.Alive(2) || !r.Alive(3) {
		t.Fatal("survivors should all be alive")
	}
}

func TestPinSetReclaimable(t *testing.T) {
	c := NewClock()
	// Advance to epoch 10 and pin epochs 3 and 7.
	c.AdvanceTo(10)
	p3 := c.PinAt(3)
	p7 := c.PinAt(7)
	ps := c.LivePins()
	if ps.Len() != 2 || ps.Now() != 10 {
		t.Fatalf("LivePins len=%d now=%d want 2/10", ps.Len(), ps.Now())
	}
	if w := ps.Watermark(); w != 3 {
		t.Fatalf("watermark %d want 3", w)
	}
	cases := []struct {
		begin, end uint64
		want       bool
	}{
		{1, 0, false},  // current version: never reclaimable
		{1, 2, true},   // died before every pin
		{1, 4, false},  // visible at pin 3
		{4, 6, true},   // between the pins: invisible to both
		{4, 8, false},  // visible at pin 7
		{7, 8, false},  // visible at exactly pin 7
		{8, 9, true},   // after the last pin, dead before now
		{8, 11, false}, // end beyond now: next capture could still see it
		{5, 5, true},   // empty interval: visible to no reader ever
		{3, 4, false},  // begin == pin epoch: visible to it
	}
	for _, tc := range cases {
		if got := ps.Reclaimable(tc.begin, tc.end); got != tc.want {
			t.Errorf("Reclaimable(%d, %d) = %v want %v", tc.begin, tc.end, got, tc.want)
		}
	}
	// Releasing a pin changes later snapshots, not an existing PinSet.
	p3.Release()
	if !c.LivePins().Reclaimable(1, 4) {
		t.Fatal("version below released pin should reclaim")
	}
	if ps.Reclaimable(1, 4) {
		t.Fatal("existing PinSet must be immutable")
	}
	p7.Release()
	// No pins: precise degenerates to the end <= now rule.
	ps = c.LivePins()
	if ps.Len() != 0 || ps.Watermark() != 10 {
		t.Fatalf("empty set watermark %d want 10", ps.Watermark())
	}
	if !ps.Reclaimable(1, 10) || ps.Reclaimable(1, 11) {
		t.Fatal("empty-set reclaim rule broken")
	}
}
