// Package bitvec provides growable bitmaps used as row-validity vectors.
//
// HYRISE models all table modifications as inserts (paper §3): an UPDATE
// appends a new row version and clears the validity bit of the old version;
// a DELETE only clears the bit.  The bitmap therefore grows append-only in
// lockstep with the row count and supports fast population counts and
// iteration over set bits for scans.
package bitvec

import (
	"fmt"
	"math/bits"
)

// Vector is a growable bitmap.  The zero value is an empty bitmap.
type Vector struct {
	words []uint64
	n     int
}

// New returns a bitmap of length n with all bits clear.
func New(n int) *Vector {
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (v *Vector) Len() int { return v.n }

// SizeBytes returns the memory consumed by the payload.
func (v *Vector) SizeBytes() int { return len(v.words) * 8 }

// AppendSet grows the bitmap by one bit, set to b.
func (v *Vector) AppendSet(b bool) {
	i := v.n
	v.n++
	if need := (v.n + 63) / 64; len(v.words) < need {
		v.words = append(v.words, 0)
	}
	if b {
		v.words[i/64] |= 1 << uint(i%64)
	}
}

// Get reports whether bit i is set.  It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/64]&(1<<uint(i%64)) != 0
}

// Set sets bit i.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/64] |= 1 << uint(i%64)
}

// Clear clears bit i.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/64] &^= 1 << uint(i%64)
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Range calls fn for every set bit in ascending order; if fn returns false,
// iteration stops.
func (v *Vector) Range(fn func(i int) bool) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			i := wi*64 + b
			if i >= v.n {
				return
			}
			if !fn(i) {
				return
			}
			w &= w - 1
		}
	}
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	w := &Vector{words: make([]uint64, len(v.words)), n: v.n}
	copy(w.words, v.words)
	return w
}

// AppendAll grows the bitmap by appending all bits of other.
func (v *Vector) AppendAll(other *Vector) {
	for i := 0; i < other.n; i++ {
		v.AppendSet(other.Get(i))
	}
}
