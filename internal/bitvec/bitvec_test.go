package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndBasicOps(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len=%d want 130", v.Len())
	}
	if v.Count() != 0 {
		t.Fatalf("Count=%d want 0", v.Count())
	}
	v.Set(0)
	v.Set(63)
	v.Set(64)
	v.Set(129)
	if v.Count() != 4 {
		t.Fatalf("Count=%d want 4", v.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Get(1) || v.Get(128) {
		t.Error("unexpected set bit")
	}
	v.Clear(63)
	if v.Get(63) || v.Count() != 3 {
		t.Error("Clear failed")
	}
}

func TestAppendSet(t *testing.T) {
	var v Vector
	ref := make([]bool, 0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		b := rng.Intn(2) == 1
		v.AppendSet(b)
		ref = append(ref, b)
	}
	if v.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", v.Len(), len(ref))
	}
	want := 0
	for i, b := range ref {
		if v.Get(i) != b {
			t.Fatalf("Get(%d)=%v want %v", i, v.Get(i), b)
		}
		if b {
			want++
		}
	}
	if v.Count() != want {
		t.Fatalf("Count=%d want %d", v.Count(), want)
	}
}

func TestRange(t *testing.T) {
	v := New(200)
	set := []int{0, 1, 5, 63, 64, 65, 127, 128, 199}
	for _, i := range set {
		v.Set(i)
	}
	var got []int
	v.Range(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(set) {
		t.Fatalf("Range visited %d bits, want %d", len(got), len(set))
	}
	for i := range set {
		if got[i] != set[i] {
			t.Fatalf("Range[%d]=%d want %d", i, got[i], set[i])
		}
	}
	// Early stop.
	count := 0
	v.Range(func(i int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestRangeIgnoresTailBits(t *testing.T) {
	// Bits beyond Len in the final word must never be visited.
	var v Vector
	for i := 0; i < 10; i++ {
		v.AppendSet(true)
	}
	visited := 0
	v.Range(func(i int) bool {
		if i >= 10 {
			t.Fatalf("visited out-of-range bit %d", i)
		}
		visited++
		return true
	})
	if visited != 10 {
		t.Fatalf("visited %d want 10", visited)
	}
}

func TestCloneAndAppendAll(t *testing.T) {
	a := New(70)
	a.Set(3)
	a.Set(69)
	b := a.Clone()
	b.Clear(3)
	if !a.Get(3) {
		t.Fatal("Clone not deep")
	}
	c := New(2)
	c.Set(1)
	c.AppendAll(a)
	if c.Len() != 72 {
		t.Fatalf("Len=%d want 72", c.Len())
	}
	if !c.Get(1) || !c.Get(2+3) || !c.Get(2+69) {
		t.Fatal("AppendAll misplaced bits")
	}
	if c.Count() != 3 {
		t.Fatalf("Count=%d want 3", c.Count())
	}
}

func TestQuickCountMatchesReference(t *testing.T) {
	f := func(pattern []bool) bool {
		var v Vector
		want := 0
		for _, b := range pattern {
			v.AppendSet(b)
			if b {
				want++
			}
		}
		return v.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOutOfRange(t *testing.T) {
	v := New(5)
	for name, f := range map[string]func(){
		"Get":   func() { v.Get(5) },
		"Set":   func() { v.Set(-1) },
		"Clear": func() { v.Clear(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
