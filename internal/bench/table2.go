package bench

import (
	"fmt"
	"io"

	"hyrise/internal/core"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Table 2",
		Description: "Parallel scalability of Update-Delta, Step 1 and Step 2 for 1% and 100% " +
			"unique values: serial (1T) vs all threads, with speedups.  Paper: NM=100M, ND=1M, Ej=8B.",
		Run: runTable2,
	})
}

// runTable2 reproduces Table 2's per-step update costs and thread scaling.
//
// Expected shapes (paper §7.2): Step 1 scales well but sub-linearly (the
// three-phase merge doubles the comparisons); Step 2 at 1% unique is
// bandwidth-bound streaming and scales worst; Step 2 at 100% unique scales
// better than Step 1 because the serial code is latency-bound on irregular
// gathers while parallelism overlaps misses.
func runTable2(w io.Writer, s Scale) error {
	s = s.Defaults()
	nm := s.N(100_000_000)
	nd := s.N(1_000_000)
	fmt.Fprintf(w, "Table 2: parallel scalability (NM=%s, ND=%s, Ej=8B, 1T vs %dT)\n\n",
		human(nm), human(nd), s.Threads)

	// The delta fill is parallelized over columns in the paper; here we
	// measure the single-column fill in both rows and report merge-step
	// scaling, which is what §6.2 parallelizes within a column.
	tw := newTable(w, 8, 12, 11, 11, 9)
	tw.row("unique%", "step", "1T cpt", fmt.Sprintf("%dT cpt", s.Threads), "scaling")
	tw.rule()
	for _, part := range []struct {
		label  string
		unique float64
	}{
		{"1", 0.01},
		{"100", 1.00},
	} {
		seed := int64(3000 + int(part.unique*100))
		serial := MeasureColumnMerge(nm, nd, part.unique,
			core.Options{Algorithm: core.Optimized, Threads: 1}, seed, asU64)
		parallel := MeasureColumnMerge(nm, nd, part.unique,
			core.Options{Algorithm: core.Optimized, Threads: s.Threads}, seed, asU64)

		rows := []struct {
			name string
			ser  float64
			par  float64
		}{
			{"UpdateDelta", serial.Cost(serial.UpdateDelta, s.HZ), parallel.Cost(parallel.UpdateDelta, s.HZ)},
			{"Step 1", serial.Cost(serial.Merge.Step1(), s.HZ), parallel.Cost(parallel.Merge.Step1(), s.HZ)},
			{"Step 2", serial.Cost(serial.Merge.Step2, s.HZ), parallel.Cost(parallel.Merge.Step2, s.HZ)},
		}
		for _, r := range rows {
			scaling := 0.0
			if r.par > 0 {
				scaling = r.ser / r.par
			}
			tw.row(part.label, r.name, f2(r.ser), f2(r.par), f1(scaling)+"x")
		}
		tw.rule()
	}
	fmt.Fprintln(w, "note: UpdateDelta (CSB+ inserts) is parallelized across columns in the paper,")
	fmt.Fprintln(w, "not within one column; its 1T/NT rows here are expected to be comparable.")
	fmt.Fprintln(w, "shape checks: Step 1 and Step 2 speed up with threads; Step 2 @1% is bandwidth-bound")
	return tw.err
}
