package bench

import (
	"fmt"
	"io"
	"time"

	"hyrise/internal/colstore"
	"hyrise/internal/delta"
	"hyrise/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "sec4readcost",
		Title: "§4 Read-cost trade-off",
		Description: "Quantifies the §4 delta-sizing dilemma: delta tuples cost several times " +
			"the memory traffic of bit-packed main tuples, so scans slow down as the delta " +
			"grows once reads are bandwidth-bound — the motivation for frequent (hence fast) merges.",
		Run: runSec4ReadCost,
	})
}

// runSec4ReadCost measures per-tuple scan cost of the compressed main
// partition vs the uncompressed delta, the per-tuple memory traffic of
// each, and the projected bandwidth-bound scan slowdown at growing delta
// fractions (§4 (i)/(ii)).
//
// Two regimes exist and both are reported: when the working set is
// cache-resident, main-partition scans pay bit-unpacking CPU and the raw
// delta can even be cheaper per tuple; once scans are bandwidth-bound (the
// paper's 100M+-row tables), cost per tuple is proportional to bytes per
// tuple, where the uncompressed delta loses by the compression factor.
func runSec4ReadCost(w io.Writer, s Scale) error {
	s = s.Defaults()
	nm := s.N(20_000_000)
	nd := nm / 10
	gen := workload.NewUniformForUniqueFraction(nm, 0.10, 5)
	m := colstore.FromValues(workload.Fill(gen, nm))
	d := delta.New[uint64]()
	for i := 0; i < nd; i++ {
		d.Insert(gen.Next())
	}

	fmt.Fprintf(w, "§4: read cost, main vs delta (NM=%s, ND=%s, 10%% unique, Ej=8B)\n\n",
		human(nm), human(nd))

	// Measured per-tuple scan cost of each partition.
	scanMain := func() uint64 {
		var sum uint64
		dict := m.Dict()
		r := m.Codes().Reader()
		for i := 0; i < m.Len(); i++ {
			sum += dict.At(int(r.Next()))
		}
		return sum
	}
	scanDelta := func() uint64 {
		var sum uint64
		for _, v := range d.Values() {
			sum += v
		}
		return sum
	}
	scanMain()
	t0 := time.Now()
	sink := scanMain()
	mainCPT := time.Since(t0).Seconds() * s.HZ / float64(nm)
	scanDelta()
	t0 = time.Now()
	sink += scanDelta()
	deltaCPT := time.Since(t0).Seconds() * s.HZ / float64(nd)
	_ = sink

	mainBytes := float64(m.Codes().SizeBytes()) / float64(nm)
	deltaBytes := float64(d.SizeBytes()) / float64(nd)

	tw := newTable(w, 22, 14, 16)
	tw.row("partition", "scan cpt", "bytes/tuple")
	tw.rule()
	tw.row("main (bit-packed)", f2(mainCPT), f2(mainBytes))
	tw.row("delta (uncompressed)", f2(deltaCPT), f2(deltaBytes))
	tw.rule()
	fmt.Fprintln(w)

	// Projected bandwidth-bound slowdown by delta fraction: scan traffic
	// relative to a fully merged table of the same cardinality.
	fmt.Fprintln(w, "bandwidth-bound scan slowdown vs fully merged (traffic model):")
	tw2 := newTable(w, 12, 14)
	tw2.row("delta/main", "slowdown")
	tw2.rule()
	for _, frac := range []float64{0.01, 0.02, 0.05, 0.10, 0.20} {
		ndf := frac * float64(nm)
		mixed := mainBytes*float64(nm) + deltaBytes*ndf
		merged := mainBytes * (float64(nm) + ndf)
		tw2.row(fmt.Sprintf("%.0f%%", frac*100), f2(mixed/merged)+"x")
	}
	tw2.rule()
	fmt.Fprintf(w, "\nmeasured regime on this run: ")
	if deltaCPT < mainCPT {
		fmt.Fprintln(w, "cache/compute-bound — unpacking codes costs more CPU than")
		fmt.Fprintln(w, "reading raw values, so the delta is not yet the bottleneck at this scale;")
	} else {
		fmt.Fprintln(w, "bandwidth-bound — delta tuples already cost more than main tuples;")
	}
	fmt.Fprintf(w, "at the paper's scale scans are bandwidth-bound and the uncompressed delta costs\n"+
		"%.1fx the traffic per tuple (incl. its CSB+ index), which is §4's reason to merge often\n",
		deltaBytes/mainBytes)
	return tw2.err
}
