package bench

import (
	"fmt"
	"io"

	"hyrise/internal/core"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Figure 7",
		Description: "Update cost (cycles/tuple) vs delta size, unoptimized vs optimized merge, " +
			"with Update-Delta/Step-1/Step-2 breakdown.  Paper: NM=100M, 10% unique, 8-byte values.",
		Run: runFig7,
	})
}

// runFig7 reproduces Figure 7: NM fixed, ND swept over 0.5%..8% of the
// paper's 100M-row main partition, both parallelized implementations.
//
// Expected shapes (paper §7.1): optimized Step 2 is ~9-10x cheaper than
// unoptimized Step 2; unoptimized Step 2 dominates and is flat per tuple;
// in the optimized code the delta-update share grows to 30-55% as the
// delta grows.
func runFig7(w io.Writer, s Scale) error {
	s = s.Defaults()
	nm := s.N(100_000_000)
	const unique = 0.10
	fmt.Fprintf(w, "Figure 7: update cost vs delta size (NM=%s, 10%% unique, Ej=8B, %d threads, %.2gGHz)\n",
		human(nm), s.Threads, s.HZ/1e9)
	fmt.Fprintf(w, "paper deltas 100K..8M scaled by %.3g\n\n", s.Factor)

	tw := newTable(w, 10, 6, 14, 12, 12, 12, 12)
	tw.row("delta", "alg", "updDelta cpt", "step1 cpt", "step2 cpt", "total cpt", "upd/s(NC=300)")
	tw.rule()
	for _, paperND := range []int{100_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000} {
		nd := s.N(paperND)
		for _, alg := range []core.Algorithm{core.Naive, core.Optimized} {
			m := MeasureColumnMerge(nm, nd, unique,
				core.Options{Algorithm: alg, Threads: s.Threads}, 1000+int64(paperND), asU64)
			label := "UnOpt"
			if alg == core.Optimized {
				label = "Opt"
			}
			tw.row(
				human(paperND),
				label,
				f2(m.Cost(m.UpdateDelta, s.HZ)),
				f2(m.Cost(m.Merge.Step1(), s.HZ)),
				f2(m.Cost(m.Merge.Step2, s.HZ)),
				f2(m.TotalCost(s.HZ)),
				f1(m.UpdateRate(s.NC)),
			)
		}
	}
	tw.rule()
	fmt.Fprintln(w, "shape checks: UnOpt step2 >> Opt step2 (paper: 9-10x); Opt delta-update share grows with delta size")
	return tw.err
}
