package bench

import (
	"time"

	"hyrise/internal/colstore"
	"hyrise/internal/core"
	"hyrise/internal/delta"
	"hyrise/internal/val"
	"hyrise/internal/workload"
)

// Measurement is one column-merge experiment data point, the unit behind
// Figures 7-9 and Table 2: the time to fill the delta (T_U, "Update
// Delta") and the per-step merge times (T_M).
type Measurement struct {
	UpdateDelta time.Duration
	Merge       core.Stats
}

// Cost returns the paper's update cost in cycles per tuple for one
// component duration (amortized over N_M + N_D).
func (m Measurement) Cost(d time.Duration, hz float64) float64 {
	return m.Merge.CyclesPerTuple(d, hz)
}

// TotalCost returns the full update cost (delta fill + merge).
func (m Measurement) TotalCost(hz float64) float64 {
	return m.Cost(m.UpdateDelta+m.Merge.Total(), hz)
}

// UpdateRate converts the measurement to table-level updates/second for a
// table of nc columns: merging nc columns costs nc times the single-column
// time, and the delta fill for one update touches all nc columns.
func (m Measurement) UpdateRate(nc int) float64 {
	perColumn := m.UpdateDelta + m.Merge.Total()
	total := time.Duration(nc) * perColumn
	if total <= 0 {
		return 0
	}
	return float64(m.Merge.ND) / total.Seconds()
}

// buildMain materializes a main partition of n tuples with approximately
// uniqueFrac·n distinct values.
func buildMain[V val.Value](n int, uniqueFrac float64, seed int64, conv func(uint64) V) *colstore.Main[V] {
	gen := workload.NewUniformForUniqueFraction(n, uniqueFrac, seed)
	vals := make([]V, n)
	for i := range vals {
		vals[i] = conv(gen.Next())
	}
	return colstore.FromValues(vals)
}

// fillDelta inserts n tuples and reports the fill time T_U.
func fillDelta[V val.Value](n int, uniqueFrac float64, seed int64, conv func(uint64) V) (*delta.Partition[V], time.Duration) {
	gen := workload.NewUniformForUniqueFraction(n, uniqueFrac, seed)
	vals := make([]V, n)
	for i := range vals {
		vals[i] = conv(gen.Next())
	}
	d := delta.New[V]()
	start := time.Now()
	for _, v := range vals {
		d.Insert(v)
	}
	return d, time.Since(start)
}

// MeasureColumnMerge builds a column at the given sizes and measures the
// delta fill plus one merge.  The merge runs twice and the second run is
// reported: the first run absorbs first-touch page faults on freshly
// allocated output buffers, which would otherwise distort small
// configurations.
func MeasureColumnMerge[V val.Value](nm, nd int, uniqueFrac float64, opts core.Options, seed int64, conv func(uint64) V) Measurement {
	m := buildMain(nm, uniqueFrac, seed, conv)
	d, tu := fillDelta(nd, uniqueFrac, seed+1, conv)
	core.MergeColumn(m, d, opts) // warm-up
	_, stats := core.MergeColumn(m, d, opts)
	return Measurement{UpdateDelta: tu, Merge: stats}
}

// Value converters for the paper's three value-lengths (E_j = 4, 8, 16).
func asU32(v uint64) uint32   { return uint32(v) }
func asU64(v uint64) uint64   { return v }
func asStr16(v uint64) string { return workload.FixedString(v) }

// mustMain compresses values into a main partition.
func mustMain(values []uint64) *colstore.Main[uint64] {
	return colstore.FromValues(values)
}

// deltaFromValues fills a delta partition, reporting the fill time.
func deltaFromValues(values []uint64) (*delta.Partition[uint64], time.Duration) {
	d := delta.New[uint64]()
	start := time.Now()
	for _, v := range values {
		d.Insert(v)
	}
	return d, time.Since(start)
}

// optionsOpt and optionsNaive are small helpers for tests and experiments.
func optionsOpt(threads int) core.Options {
	return core.Options{Algorithm: core.Optimized, Threads: threads}
}

func optionsNaive(threads int) core.Options {
	return core.Options{Algorithm: core.Naive, Threads: threads}
}
