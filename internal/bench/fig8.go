package bench

import (
	"fmt"
	"io"

	"hyrise/internal/core"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8",
		Description: "Update cost vs uncompressed value-length (4/8/16 bytes) for 1M and 3M " +
			"deltas at 1% and 100% unique values.  Paper: NM=100M.",
		Run: runFig8,
	})
}

// runFig8 reproduces Figure 8(a) and 8(b).
//
// Expected shapes (paper §7.2): delta-update cost grows with value-length
// and with the unique fraction; Step 1 grows sub-linearly with value-length
// and strongly with unique fraction; Step 2 depends mainly on whether the
// auxiliary structures are cache-resident (1% yes, 100% no) and is nearly
// independent of the delta size.
func runFig8(w io.Writer, s Scale) error {
	s = s.Defaults()
	nm := s.N(100_000_000)
	opts := core.Options{Algorithm: core.Optimized, Threads: s.Threads}
	fmt.Fprintf(w, "Figure 8: update cost vs value-length (NM=%s, %d threads)\n\n", human(nm), s.Threads)

	for _, part := range []struct {
		label  string
		unique float64
	}{
		{"(a) 1% unique values", 0.01},
		{"(b) 100% unique values", 1.00},
	} {
		fmt.Fprintln(w, part.label)
		tw := newTable(w, 9, 5, 14, 12, 12, 12)
		tw.row("delta", "Ej", "updDelta cpt", "step1 cpt", "step2 cpt", "total cpt")
		tw.rule()
		for _, paperND := range []int{1_000_000, 3_000_000} {
			nd := s.N(paperND)
			seed := int64(2000 + paperND/1000)
			run := func(ej int, m Measurement) {
				tw.row(
					human(paperND),
					fmt.Sprintf("%dB", ej),
					f2(m.Cost(m.UpdateDelta, s.HZ)),
					f2(m.Cost(m.Merge.Step1(), s.HZ)),
					f2(m.Cost(m.Merge.Step2, s.HZ)),
					f2(m.TotalCost(s.HZ)),
				)
			}
			run(4, MeasureColumnMerge(nm, nd, part.unique, opts, seed, asU32))
			run(8, MeasureColumnMerge(nm, nd, part.unique, opts, seed, asU64))
			run(16, MeasureColumnMerge(nm, nd, part.unique, opts, seed, asStr16))
		}
		tw.rule()
		if tw.err != nil {
			return tw.err
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "shape checks: updDelta grows with Ej and unique%; step1 grows with unique%;")
	fmt.Fprintln(w, "step2 roughly constant in delta size, higher at 100% unique (aux exceeds cache)")
	return nil
}
