package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"hyrise/internal/core"
	"hyrise/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "sec2merge",
		Title: "§2 Merge Duration",
		Description: "The VBAP scenario: a 33M-row, 230-column sales-order table merging one " +
			"month of 750K new rows.  Paper: 1.8 trillion cycles ≈ 12 minutes naive, ~1,000 " +
			"merged updates/second; optimized merge reduces this ~30x.",
		Run: runSec2Merge,
	})
}

// runSec2Merge reproduces the §2 motivating measurement at reduced scale:
// per-column merges across a 230-column table whose distinct-value
// distribution follows the Figure 4 enterprise profiles.
func runSec2Merge(w io.Writer, s Scale) error {
	s = s.Defaults()
	const paperRows, paperDelta, columns = 33_000_000, 750_000, 230
	nm := s.N(paperRows)
	nd := s.N(paperDelta)
	fmt.Fprintf(w, "§2 VBAP merge: %d columns x %s rows, delta %s rows (paper: 230 x 33M + 750K)\n\n",
		columns, human(nm), human(nd))

	rng := rand.New(rand.NewSource(42))
	profiles := workload.Figure4Profiles()
	var naiveTotal, optTotal time.Duration

	// Merge every column; domain sizes per column follow the Figure 4
	// profile mix (half inventory-management, half financial-accounting).
	for c := 0; c < columns; c++ {
		profile := profiles[c%len(profiles)]
		domain := uint64(profile.SampleColumnDomain(rng, int64(nm)))
		gen := workload.NewUniform(domain, int64(c))
		mainVals := workload.Fill(gen, nm)
		m := mustMain(mainVals)
		d, _ := deltaFromValues(workload.Fill(gen, nd))

		_, stN := core.MergeColumn(m, d, core.Options{Algorithm: core.Naive, Threads: s.Threads})
		naiveTotal += stN.Total()
		_, stO := core.MergeColumn(m, d, core.Options{Algorithm: core.Optimized, Threads: s.Threads})
		optTotal += stO.Total()
	}

	naiveRate := float64(nd) / naiveTotal.Seconds()
	optRate := float64(nd) / optTotal.Seconds()
	speedup := naiveTotal.Seconds() / optTotal.Seconds()

	tw := newTable(w, 12, 14, 16, 14)
	tw.row("algorithm", "merge time", "merged upd/s", "x vs naive")
	tw.rule()
	tw.row("naive", naiveTotal.Round(time.Millisecond).String(), f1(naiveRate), "1.0")
	tw.row("optimized", optTotal.Round(time.Millisecond).String(), f1(optRate), f1(speedup))
	tw.rule()
	fmt.Fprintf(w, "\nextrapolation to paper scale (x%.0f rows): naive ≈ %s, optimized ≈ %s\n",
		1/s.Factor,
		scaleDuration(naiveTotal, 1/s.Factor),
		scaleDuration(optTotal, 1/s.Factor))
	fmt.Fprintln(w, "shape check: optimized merge is roughly an order of magnitude faster than the naive")
	fmt.Fprintln(w, "merge at equal parallelism (paper: 9-10x; 30x vs unoptimized serial code)")
	return tw.err
}

func scaleDuration(d time.Duration, factor float64) time.Duration {
	return time.Duration(float64(d) * factor).Round(time.Second)
}
