package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"hyrise/internal/core"
	"hyrise/internal/delta"
	"hyrise/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablation-dist",
		Title: "Ablation: value distribution",
		Description: "Tests the paper's §7 claim that uniform random values are the worst case " +
			"for merge cache utilization and that skewed distributions only improve merge times.",
		Run: runAblationDist,
	})
	register(Experiment{
		ID:    "ablation-delta",
		Title: "Ablation: delta structure",
		Description: "Explores the paper's §9 future work — balancing insert vs merge cost with a " +
			"different delta structure: CSB+-indexed delta (merge-ready) vs plain append log " +
			"(cheapest insert, dictionary sorted at merge time).",
		Run: runAblationDelta,
	})
}

// runAblationDist merges identical-size columns whose values follow
// uniform vs Zipf distributions.  Expectation (paper §7): "different value
// distributions can only improve cache utilization, leading to better
// merge times", and the difference is small.
func runAblationDist(w io.Writer, s Scale) error {
	s = s.Defaults()
	nm := s.N(20_000_000)
	nd := nm / 20
	fmt.Fprintf(w, "Ablation: merge cost under value distributions (NM=%s, ND=%s, Ej=8B)\n\n",
		human(nm), human(nd))
	tw := newTable(w, 22, 10, 12, 12, 12)
	tw.row("distribution", "uniq(M)", "step1 cpt", "step2 cpt", "total cpt")
	tw.rule()
	run := func(name string, gen workload.Generator) {
		mainVals := workload.Fill(gen, nm)
		m := mustMain(mainVals)
		d, _ := deltaFromValues(workload.Fill(gen, nd))
		core.MergeColumn(m, d, optionsOpt(s.Threads)) // warm-up
		_, st := core.MergeColumn(m, d, optionsOpt(s.Threads))
		tw.row(name,
			human(st.UniqueMain),
			f2(st.CyclesPerTuple(st.Step1(), s.HZ)),
			f2(st.CyclesPerTuple(st.Step2, s.HZ)),
			f2(st.CyclesPerTuple(st.Total(), s.HZ)))
	}
	domain := uint64(nm / 10)
	run("uniform (paper)", workload.NewUniform(domain, 1))
	run("zipf s=1.2", workload.NewZipf(domain, 1.2, 1))
	run("zipf s=2.0", workload.NewZipf(domain, 2.0, 1))
	run("sequential clustered", &seqGen{})
	tw.rule()
	fmt.Fprintln(w, "expectation (§7): uniform is the worst case; skew concentrates codes and")
	fmt.Fprintln(w, "shrinks dictionaries, so merge cost only falls — the design need not tune for it")
	return tw.err
}

// seqGen emits a slowly increasing sequence: perfectly clustered codes.
type seqGen struct{ n uint64 }

func (g *seqGen) Next() uint64 { g.n++; return g.n / 8 }
func (g *seqGen) Reset()       { g.n = 0 }

// runAblationDelta compares the insert and Step 1(a) costs of the CSB+
// indexed delta against a plain append log whose dictionary is built by
// sorting at merge time (§9: "investigate other delta partition structures
// to balance the insert/merge costs").
func runAblationDelta(w io.Writer, s Scale) error {
	s = s.Defaults()
	nd := s.N(8_000_000)
	fmt.Fprintf(w, "Ablation: delta structure — indexed vs plain append (ND=%s, 10%% unique)\n\n", human(nd))
	vals := workload.Fill(workload.NewUniformForUniqueFraction(nd, 0.10, 3), nd)

	// CSB+ indexed delta: paper design.  Inserts pay the tree; Step 1(a)
	// is a linear leaf traversal.
	indexed := delta.New[uint64]()
	t0 := time.Now()
	for _, v := range vals {
		indexed.Insert(v)
	}
	indexedInsert := time.Since(t0)
	t0 = time.Now()
	_, codes := indexed.ExtractDict()
	indexedExtract := time.Since(t0)
	_ = codes

	// Plain append log: O(1) insert; merge-time sort builds the
	// dictionary and codes.
	plain := make([]uint64, 0, nd)
	t0 = time.Now()
	plain = append(plain, vals...)
	plainInsert := time.Since(t0)
	t0 = time.Now()
	sorted := make([]uint64, len(plain))
	copy(sorted, plain)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	uniq := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	// Code assignment for every tuple: binary search (no posting lists).
	plainCodes := make([]uint32, len(plain))
	for i, v := range plain {
		lo, hi := 0, len(uniq)
		for lo < hi {
			mid := (lo + hi) / 2
			if uniq[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		plainCodes[i] = uint32(lo)
	}
	plainExtract := time.Since(t0)

	perTuple := func(d time.Duration) string {
		return f1(d.Seconds() * s.HZ / float64(nd))
	}
	tw := newTable(w, 24, 14, 16, 16)
	tw.row("structure", "insert cpt", "step1a cpt", "reads during fill")
	tw.rule()
	tw.row("CSB+ indexed (paper)", perTuple(indexedInsert), perTuple(indexedExtract), "indexed lookups")
	tw.row("plain append log", perTuple(plainInsert), perTuple(plainExtract), "full scans only")
	tw.rule()
	fmt.Fprintln(w, "trade-off: the plain log inserts far cheaper but shifts an O(ND log ND) sort +")
	fmt.Fprintln(w, "per-tuple binary search into the merge and loses indexed point reads on the")
	fmt.Fprintln(w, "delta — the balance §9 proposes exploring; the CSB+ delta keeps Step 1(a) linear")
	return tw.err
}
