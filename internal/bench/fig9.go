package bench

import (
	"fmt"
	"io"

	"hyrise/internal/core"
	"hyrise/internal/model"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9",
		Description: "Update rate (updates/second, NC=300) for varying main partition sizes " +
			"(paper: 1M..1B) and unique-value fractions (0.1%..100%), delta fixed at 1% of main. " +
			"Shows the cache knee when auxiliary structures exceed the LLC.",
		Run: runFig9,
	})
}

// runFig9 reproduces Figure 9.
//
// Expected shapes (paper §7.3): high update rates while X_M/X_D fit the
// LLC; a sharp drop once they exceed it (paper: between NM=100M and 1B at
// 1% unique against a 24MB cache); rates stabilize rather than collapse at
// the largest sizes; the low target (3,000/s) is met everywhere, the high
// target (18,000/s) only in cache-resident configurations.
func runFig9(w io.Writer, s Scale) error {
	s = s.Defaults()
	fmt.Fprintf(w, "Figure 9: update rate vs main size and unique fraction (delta=1%% of main, Ej=8B, NC=%d)\n", s.NC)
	fmt.Fprintf(w, "host LLC=%dMB; aux cache residency computed against it\n\n", s.LLCBytes>>20)

	opts := core.Options{Algorithm: core.Optimized, Threads: s.Threads}
	tw := newTable(w, 8, 8, 10, 12, 12, 10)
	tw.row("NM", "unique%", "aux", "total cpt", "upd/s", "targets")
	tw.rule()
	// The paper sweeps 1M..1B; scaling by Factor keeps the ratios.  The
	// knee appears where aux bytes cross the host LLC.
	for _, paperNM := range []int{1_000_000, 10_000_000, 100_000_000, 1_000_000_000} {
		nm := s.N(paperNM)
		nd := nm / 100
		if nd < 100 {
			nd = 100
		}
		for _, uniquePct := range []float64{0.1, 1, 10, 100} {
			frac := uniquePct / 100
			m := MeasureColumnMerge(nm, nd, frac, opts, int64(paperNM)+int64(uniquePct*10), asU64)
			auxBytes := (m.Merge.UniqueMain + m.Merge.UniqueDelta) * 4
			auxNote := "fits"
			if auxBytes > s.LLCBytes {
				auxNote = "misses"
			}
			rate := m.UpdateRate(s.NC)
			targets := ""
			if rate >= 3000 {
				targets += "low✓"
			} else {
				targets += "low✗"
			}
			if rate >= 18000 {
				targets += " high✓"
			} else {
				targets += " high✗"
			}
			tw.row(
				human(nm),
				fmt.Sprintf("%.1f", uniquePct),
				auxNote,
				f2(m.TotalCost(s.HZ)),
				f1(rate),
				targets,
			)
		}
	}
	tw.rule()
	fmt.Fprintln(w, "shape checks: rate drops sharply once aux no longer fits the LLC; low target met broadly,")
	fmt.Fprintln(w, "high target only for cache-resident configurations (paper: NM<=100M at <=1% unique)")
	_ = model.PaperArch // documented counterpart: model.Predict projects the same knee
	return tw.err
}
