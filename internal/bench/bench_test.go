package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyScale keeps experiment tests fast: ~50k-tuple mains.
func tinyScale() Scale {
	return Scale{Factor: 0.0005, Threads: 2, HZ: 3.3e9, NC: 300, LLCBytes: 32 << 20}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig7", "fig8", "fig9",
		"table2", "sec2merge", "model", "ablation-dist", "ablation-delta",
		"sec4readcost"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(Registry()) != len(want) {
		t.Errorf("registry has %d entries want %d", len(Registry()), len(want))
	}
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestScaleDefaults(t *testing.T) {
	s := Scale{}.Defaults()
	if s.Factor != 0.05 || s.HZ != 3.3e9 || s.NC != 300 || s.Threads < 1 || s.LLCBytes <= 0 {
		t.Fatalf("defaults %+v", s)
	}
	if got := s.N(100); got != 1000 {
		t.Fatalf("N floor: %d", got)
	}
	if got := s.N(10_000_000); got != 500_000 {
		t.Fatalf("N: %d", got)
	}
}

func TestDetectLLCBytes(t *testing.T) {
	if got := DetectLLCBytes(); got <= 0 {
		t.Fatalf("LLC %d", got)
	}
}

// TestExperimentsRun executes every experiment at tiny scale and checks
// they produce plausible output without errors.
func TestExperimentsRun(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if e.ID == "model" && testing.Short() {
				t.Skip("bandwidth calibration in -short mode")
			}
			var buf bytes.Buffer
			if err := e.Run(&buf, tinyScale()); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 100 {
				t.Fatalf("%s: suspiciously short output:\n%s", e.ID, out)
			}
			if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
				t.Fatalf("%s: non-finite values in output:\n%s", e.ID, out)
			}
		})
	}
}

// TestFig7Shape verifies the core claim at small scale: optimized Step 2
// is substantially cheaper than naive Step 2.
func TestFig7Shape(t *testing.T) {
	s := tinyScale()
	nm, nd := 200_000, 20_000
	naive := MeasureColumnMerge(nm, nd, 0.10, optionsNaive(s.Threads), 1, asU64)
	opt := MeasureColumnMerge(nm, nd, 0.10, optionsOpt(s.Threads), 1, asU64)
	if opt.Merge.Step2 >= naive.Merge.Step2 {
		t.Fatalf("optimized Step2 (%v) not faster than naive (%v)",
			opt.Merge.Step2, naive.Merge.Step2)
	}
	ratio := float64(naive.Merge.Step2) / float64(opt.Merge.Step2)
	if ratio < 2 {
		t.Fatalf("step2 speedup only %.1fx; paper reports ~9-10x at full scale", ratio)
	}
}

func TestMeasurementArithmetic(t *testing.T) {
	m := MeasureColumnMerge(50_000, 5_000, 0.1, optionsOpt(2), 9, asU64)
	if m.UpdateDelta <= 0 {
		t.Fatal("no delta fill time")
	}
	if m.TotalCost(3.3e9) <= 0 {
		t.Fatal("cost")
	}
	if m.UpdateRate(300) <= 0 {
		t.Fatal("rate")
	}
	// More columns => lower table-level update rate.
	if m.UpdateRate(300) >= m.UpdateRate(30) {
		t.Fatal("rate should fall with column count")
	}
}

func TestHuman(t *testing.T) {
	cases := map[int]string{
		500: "500", 1000: "1K", 1500: "1.5K", 1_000_000: "1M",
		100_000_000: "100M", 1_000_000_000: "1B",
	}
	for in, want := range cases {
		if got := human(in); got != want {
			t.Errorf("human(%d)=%q want %q", in, got, want)
		}
	}
}
