package bench

import (
	"fmt"
	"io"

	"hyrise/internal/core"
	"hyrise/internal/membench"
	"hyrise/internal/model"
)

func init() {
	register(Experiment{
		ID:    "model",
		Title: "§7.4 Analytical Model",
		Description: "Measured per-step merge cost vs the analytical model's prediction using " +
			"host-calibrated bandwidths, at 1% and 100% unique values.  Paper: model within 1-10%.",
		Run: runModel,
	})
}

// runModel reproduces §7.4: calibrate streaming/random bandwidth on the
// host, predict Step 1 and Step 2 costs for the NM=100M/ND=1M scenario,
// and compare with measurement.
func runModel(w io.Writer, s Scale) error {
	s = s.Defaults()
	nm := s.N(100_000_000)
	nd := s.N(1_000_000)

	fmt.Fprintln(w, "calibrating host bandwidths (paper: 7 B/cycle streaming, 5 B/cycle random)...")
	cal := membench.Calibrate(membench.Options{BufBytes: 32 << 20, Iters: 2, Threads: s.Threads})
	arch := model.Arch{
		LineBytes:   64,
		LLCBytes:    s.LLCBytes,
		StreamBPC:   membench.BytesPerCycle(cal.StreamBytesPerSec, s.HZ),
		RandomBPC:   membench.BytesPerCycle(cal.RandomBytesPerSec, s.HZ),
		OpsPerCycle: 1,
		Threads:     s.Threads,
		HZ:          s.HZ,
	}
	fmt.Fprintf(w, "host: stream %.1f GB/s (%.2f B/cycle at %.2gGHz), random %.1f GB/s (%.2f B/cycle), LLC %dMB\n\n",
		cal.StreamBytesPerSec/1e9, arch.StreamBPC, s.HZ/1e9,
		cal.RandomBytesPerSec/1e9, arch.RandomBPC, s.LLCBytes>>20)

	tw := newTable(w, 8, 8, 13, 13, 10)
	tw.row("unique%", "step", "measured cpt", "model cpt", "ratio")
	tw.rule()
	for _, part := range []struct {
		label  string
		unique float64
	}{
		{"1", 0.01},
		{"100", 1.00},
	} {
		m := MeasureColumnMerge(nm, nd, part.unique,
			core.Options{Algorithm: core.Optimized, Threads: s.Threads}, 4242, asU64)
		wl := model.Workload{
			NM: nm, ND: nd, Ej: 8,
			UM:     m.Merge.UniqueMain,
			UD:     m.Merge.UniqueDelta,
			UPrime: m.Merge.UniqueMerged,
			NC:     s.NC,
		}
		pred := model.Predict(wl, arch, s.Threads > 1)
		rows := []struct {
			name      string
			meas, prd float64
		}{
			{"Step 1", m.Cost(m.Merge.Step1(), s.HZ), pred.CyclesPerTuple(pred.Step1aCycles + pred.Step1bCycles)},
			{"Step 2", m.Cost(m.Merge.Step2, s.HZ), pred.CyclesPerTuple(pred.Step2Cycles)},
		}
		for _, r := range rows {
			ratio := 0.0
			if r.prd > 0 {
				ratio = r.meas / r.prd
			}
			tw.row(part.label, r.name, f2(r.meas), f2(r.prd), f2(ratio))
		}
		regime := "bandwidth-bound"
		if pred.Step2ComputeBound {
			regime = "compute-bound (aux cache-resident)"
		}
		tw.row(part.label, "regime", regime, "", "")
		tw.rule()
	}
	fmt.Fprintln(w, "shape check: measured costs track the model's regime switch; the paper reports 1-10%")
	fmt.Fprintln(w, "agreement on its hardware — expect looser but same-ordering agreement under Go")
	return tw.err
}
