// Package bench is the experiment harness for the paper's evaluation (§2
// and §7): a registry of named experiments, one per figure and table, each
// of which regenerates the corresponding rows/series at a configurable
// scale.
//
// Absolute numbers differ from the paper (Go on this host vs ICC on a 2011
// Xeon), so every experiment reports cycles/tuple at a configurable clock
// alongside wall times, and EXPERIMENTS.md records the measured shapes
// against the paper's claims.
package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Scale configures experiment size relative to the paper.
type Scale struct {
	// Factor multiplies the paper's tuple counts (1.0 = paper scale,
	// NM = 100M for Figures 7/8).  Default 0.05.
	Factor float64
	// Threads is the parallel worker budget (0 = GOMAXPROCS).
	Threads int
	// HZ converts wall time to cycles (default 3.3e9, the paper's clock).
	HZ float64
	// NC is the assumed column count when converting per-column costs to
	// table-level update rates (paper: 300).
	NC int
	// LLCBytes is the host last-level cache size for model comparisons
	// (0 = detect, falling back to 32 MB).
	LLCBytes int
}

// Defaults fills zero fields.
func (s Scale) Defaults() Scale {
	if s.Factor <= 0 {
		s.Factor = 0.05
	}
	if s.Threads <= 0 {
		s.Threads = runtime.GOMAXPROCS(0)
	}
	if s.HZ <= 0 {
		s.HZ = 3.3e9
	}
	if s.NC <= 0 {
		s.NC = 300
	}
	if s.LLCBytes <= 0 {
		s.LLCBytes = DetectLLCBytes()
	}
	return s
}

// N scales a paper-sized tuple count, keeping at least 1000 tuples.
func (s Scale) N(paperCount int) int {
	n := int(float64(paperCount) * s.Factor)
	if n < 1000 {
		n = 1000
	}
	return n
}

// DetectLLCBytes reads the last-level cache size from sysfs, falling back
// to 32 MB.
func DetectLLCBytes() int {
	for _, idx := range []string{"index3", "index2"} {
		b, err := os.ReadFile("/sys/devices/system/cpu/cpu0/cache/" + idx + "/size")
		if err != nil {
			continue
		}
		s := strings.TrimSpace(string(b))
		mult := 1
		if strings.HasSuffix(s, "K") {
			mult, s = 1024, strings.TrimSuffix(s, "K")
		} else if strings.HasSuffix(s, "M") {
			mult, s = 1<<20, strings.TrimSuffix(s, "M")
		}
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v * mult
		}
	}
	return 32 << 20
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the registry key, e.g. "fig7".
	ID string
	// Title names the paper artifact, e.g. "Figure 7".
	Title string
	// Description says what the artifact shows.
	Description string
	// Run writes the regenerated rows/series to w.
	Run func(w io.Writer, s Scale) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Registry lists all experiments in registration order.
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// tableWriter prints fixed-width columns.
type tableWriter struct {
	w      io.Writer
	widths []int
	err    error
}

func newTable(w io.Writer, widths ...int) *tableWriter {
	return &tableWriter{w: w, widths: widths}
}

func (t *tableWriter) row(cells ...string) {
	if t.err != nil {
		return
	}
	var b strings.Builder
	for i, c := range cells {
		w := 12
		if i < len(t.widths) {
			w = t.widths[i]
		}
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", w, c)
	}
	_, t.err = fmt.Fprintln(t.w, strings.TrimRight(b.String(), " "))
}

func (t *tableWriter) rule() {
	if t.err != nil {
		return
	}
	total := 0
	for _, w := range t.widths {
		total += w + 2
	}
	_, t.err = fmt.Fprintln(t.w, strings.Repeat("-", total))
}

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

func human(n int) string {
	switch {
	case n >= 1_000_000_000 && n%1_000_000_000 == 0:
		return fmt.Sprintf("%dB", n/1_000_000_000)
	case n >= 1_000_000:
		return fmt.Sprintf("%.3gM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.3gK", float64(n)/1e3)
	default:
		return strconv.Itoa(n)
	}
}
