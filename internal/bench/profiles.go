package bench

import (
	"fmt"
	"io"
	"math/rand"

	"hyrise/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1",
		Description: "Query-type distribution of OLTP and OLAP enterprise systems vs the TPC-C " +
			"benchmark (reads >80%/90% vs 54%).",
		Run: runFig1,
	})
	register(Experiment{
		ID:          "fig2",
		Title:       "Figure 2",
		Description: "All 73,979 tables of a customer installation clustered by row count.",
		Run:         runFig2,
	})
	register(Experiment{
		ID:          "fig3",
		Title:       "Figure 3",
		Description: "The 144 largest tables: rows (millions) and column counts.",
		Run:         runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4",
		Description: "Distinct-value distribution of inventory-management and financial-accounting " +
			"columns (most columns draw from tiny domains, favouring dictionary encoding).",
		Run: runFig4,
	})
}

func runFig1(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "Figure 1: query distribution by system type (sampled from the built-in mixes)")
	fmt.Fprintln(w)
	rng := rand.New(rand.NewSource(1))
	const n = 500_000
	tw := newTable(w, 14, 10, 10, 10, 10, 10, 10, 8, 8)
	tw.row("mix", "lookup", "scan", "range", "insert", "modify", "delete", "read%", "write%")
	tw.rule()
	for _, mix := range workload.Mixes() {
		var counts [6]int
		for i := 0; i < n; i++ {
			counts[mix.Sample(rng)]++
		}
		pct := func(k workload.QueryKind) string {
			return fmt.Sprintf("%.1f%%", 100*float64(counts[k])/n)
		}
		tw.row(mix.Name,
			pct(workload.Lookup), pct(workload.TableScan), pct(workload.RangeSelect),
			pct(workload.Insert), pct(workload.Modification), pct(workload.Delete),
			fmt.Sprintf("%.0f%%", 100*mix.ReadRatio()),
			fmt.Sprintf("%.0f%%", 100*mix.WriteRatio()))
	}
	tw.rule()
	fmt.Fprintln(w, "shape check: enterprise OLTP is read-dominated (>80%) unlike TPC-C (46% writes)")
	return tw.err
}

func runFig2(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "Figure 2: tables clustered by number of rows (synthetic installation, published bucket counts)")
	fmt.Fprintln(w)
	cs := workload.GenerateCustomerSystem(7)
	tw := newTable(w, 10, 10, 40)
	tw.row("rows", "tables", "")
	tw.rule()
	maxCount := 0
	for _, b := range cs.Histogram() {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	for _, b := range cs.Histogram() {
		bar := ""
		if maxCount > 0 {
			n := b.Count * 38 / maxCount
			for i := 0; i < n; i++ {
				bar += "#"
			}
		}
		tw.row(b.Label, fmt.Sprintf("%d", b.Count), bar)
	}
	tw.rule()
	fmt.Fprintf(w, "total %d tables; only 144 exceed 10M rows — these dominate merge cost\n",
		workload.TotalTables)
	return tw.err
}

func runFig3(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "Figure 3: the 144 largest tables (rows in millions, columns); every 12th shown")
	fmt.Fprintln(w)
	cs := workload.GenerateCustomerSystem(7)
	top := cs.Largest(144)
	tw := newTable(w, 6, 12, 9)
	tw.row("rank", "rows (M)", "columns")
	tw.rule()
	var rows, cols float64
	for i, t := range top {
		rows += float64(t.Rows)
		cols += float64(t.Columns)
		if i%12 == 0 || i == len(top)-1 {
			tw.row(fmt.Sprintf("%d", i+1), f1(float64(t.Rows)/1e6), fmt.Sprintf("%d", t.Columns))
		}
	}
	tw.rule()
	fmt.Fprintf(w, "mean rows %.0fM (paper: 65M), mean columns %.0f (paper: 70), max %.2gB rows (paper: 1.6B)\n",
		rows/144/1e6, cols/144, float64(top[0].Rows)/1e9)
	return tw.err
}

func runFig4(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "Figure 4: distinct values per column by application domain (published shares)")
	fmt.Fprintln(w)
	tw := newTable(w, 24, 12, 12, 18)
	tw.row("domain", "1-32", "33-1023", "1024-100000000")
	tw.rule()
	for _, p := range workload.Figure4Profiles() {
		cells := []string{p.Name}
		for _, b := range p.Buckets {
			cells = append(cells, fmt.Sprintf("%.0f%%", 100*b.Share))
		}
		tw.row(cells...)
	}
	tw.rule()
	fmt.Fprintln(w, "shape check: most enterprise columns draw from <=32 distinct values, so dictionary")
	fmt.Fprintln(w, "encoding compresses aggressively and merged dictionaries stay small")
	return tw.err
}
