package sched

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"hyrise/internal/table"
)

func newTable(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.New("t", table.Schema{{Name: "v", Type: table.Uint64}})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func fill(t *testing.T, tb *table.Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := tb.Insert([]any{uint64(i % 97)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShouldMerge(t *testing.T) {
	tb := newTable(t)
	s := New(tb, Config{Fraction: 0.10, MinDeltaRows: 10})
	if s.ShouldMerge() {
		t.Fatal("empty table should not merge")
	}
	fill(t, tb, 11)
	if !s.ShouldMerge() {
		t.Fatal("empty main with delta should merge")
	}
	// Merge manually; now main=11, delta=0.
	if _, err := tb.Merge(t.Context(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if s.ShouldMerge() {
		t.Fatal("empty delta should not merge")
	}
	// MinDeltaRows gate.
	fill(t, tb, 5)
	if s.ShouldMerge() {
		t.Fatal("below MinDeltaRows should not merge")
	}
	fill(t, tb, 10) // 15 > 10% of 11 and > MinDeltaRows
	if !s.ShouldMerge() {
		t.Fatal("fraction exceeded should merge")
	}
}

func TestSchedulerTriggersMerge(t *testing.T) {
	tb := newTable(t)
	fill(t, tb, 1000)
	var merges atomic.Int32
	s := New(tb, Config{
		Fraction:     0.01,
		MinDeltaRows: 1,
		Interval:     time.Millisecond,
		OnMerge:      func(table.Report) { merges.Add(1) },
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	deadline := time.After(5 * time.Second)
	for merges.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("scheduler never merged")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if tb.MainRows() != 1000 || tb.DeltaRows() != 0 {
		t.Fatalf("main=%d delta=%d", tb.MainRows(), tb.DeltaRows())
	}
	if s.Merges() < 1 {
		t.Fatal("merge counter")
	}
	if s.LastErr() != nil {
		t.Fatal(s.LastErr())
	}
}

func TestStartTwice(t *testing.T) {
	tb := newTable(t)
	s := New(tb, Config{Interval: time.Hour})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if err := s.Start(); err != ErrAlreadyRunning {
		t.Fatalf("second Start: %v", err)
	}
}

func TestStopIdempotent(t *testing.T) {
	tb := newTable(t)
	s := New(tb, Config{Interval: time.Millisecond})
	s.Stop() // never started: no-op
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	s.Stop()
	// Restart works.
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

func TestPauseResume(t *testing.T) {
	tb := newTable(t)
	fill(t, tb, 100)
	var merges atomic.Int32
	s := New(tb, Config{
		Fraction: 0.001, MinDeltaRows: 1, Interval: time.Millisecond,
		OnMerge: func(table.Report) { merges.Add(1) },
	})
	s.Pause()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	time.Sleep(30 * time.Millisecond)
	if merges.Load() != 0 {
		t.Fatal("merged while paused")
	}
	if !s.Paused() {
		t.Fatal("Paused flag")
	}
	s.Resume()
	deadline := time.After(5 * time.Second)
	for merges.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no merge after resume")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestBackgroundStrategy(t *testing.T) {
	tb := newTable(t)
	fill(t, tb, 5000)
	var got atomic.Int32
	s := New(tb, Config{
		Fraction: 0.001, MinDeltaRows: 1, Interval: time.Millisecond,
		Strategy: Background,
		OnMerge: func(r table.Report) {
			got.Store(int32(r.Threads))
		},
	})
	s.Start()
	defer s.Stop()
	deadline := time.After(5 * time.Second)
	for got.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no merge")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got.Load() != 1 {
		t.Fatalf("background merge used %d threads", got.Load())
	}
}

func TestDefaults(t *testing.T) {
	var c Config
	c.setDefaults()
	if c.Fraction != 0.05 || c.Interval != 100*time.Millisecond {
		t.Fatalf("defaults %+v", c)
	}
}

func TestMergeNow(t *testing.T) {
	tb := newTable(t)
	s := NewFor(tb, Config{Threads: 2})
	// Nothing to merge: a no-op, no error.
	if err := s.MergeNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	fill(t, tb, 50)
	// The trigger condition is irrelevant: MergeNow drains regardless.
	if err := s.MergeNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tb.DeltaRows() != 0 || tb.MainRows() != 50 {
		t.Fatalf("delta=%d main=%d after MergeNow", tb.DeltaRows(), tb.MainRows())
	}
}

func TestMultiMergeNow(t *testing.T) {
	t1, t2 := newTable(t), newTable(t)
	fill(t, t1, 30)
	fill(t, t2, 20)
	m := NewMulti([]MergeTable{t1, t2}, Config{})
	if err := m.MergeNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if t1.DeltaRows() != 0 || t2.DeltaRows() != 0 {
		t.Fatalf("deltas %d/%d after Multi.MergeNow", t1.DeltaRows(), t2.DeltaRows())
	}
	if t1.MainRows() != 30 || t2.MainRows() != 20 {
		t.Fatalf("mains %d/%d", t1.MainRows(), t2.MainRows())
	}
}
