package sched

import (
	"sync"
	"testing"
	"time"

	"hyrise/internal/table"
)

func newMultiTables(t *testing.T, n int) []MergeTable {
	t.Helper()
	out := make([]MergeTable, n)
	for i := range out {
		tb, err := table.New("t", table.Schema{{Name: "k", Type: table.Uint64}})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = tb
	}
	return out
}

// TestMultiIndependentTriggers verifies that only the shard whose delta
// fraction exceeds the threshold is merged: a hot shard merges while cold
// shards stay untouched.
func TestMultiIndependentTriggers(t *testing.T) {
	targets := newMultiTables(t, 3)
	hot := targets[0].(*table.Table)
	cold := targets[2].(*table.Table)

	var mu sync.Mutex
	merged := 0
	m := NewMulti(targets, Config{
		Fraction: 0.5,
		Interval: time.Millisecond,
		OnMerge: func(table.Report) {
			mu.Lock()
			merged++
			mu.Unlock()
		},
	})
	// Hot shard: 100 delta rows on an empty main always exceeds the
	// trigger.  Cold shards get nothing.
	for i := 0; i < 100; i++ {
		if _, err := hot.Insert([]any{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err == nil {
		m.Stop()
		t.Fatal("second Start succeeded")
	}
	deadline := time.Now().Add(2 * time.Second)
	for hot.MergeGeneration() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	if hot.MergeGeneration() == 0 {
		t.Fatal("hot shard never merged")
	}
	if cold.MergeGeneration() != 0 {
		t.Fatal("cold shard merged without delta rows")
	}
	if hot.DeltaRows() != 0 || hot.MainRows() != 100 {
		t.Fatalf("hot shard state: delta=%d main=%d", hot.DeltaRows(), hot.MainRows())
	}
	if m.Merges() == 0 {
		t.Fatal("Multi.Merges() = 0")
	}
	mu.Lock()
	defer mu.Unlock()
	if merged != m.Merges() {
		t.Fatalf("OnMerge saw %d merges, counter says %d", merged, m.Merges())
	}
	if err := m.LastErr(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiThreadBudget checks the even division of the machine across
// targets, and that an explicit budget wins.
func TestMultiThreadBudget(t *testing.T) {
	targets := newMultiTables(t, 2)
	m := NewMulti(targets, Config{})
	for _, s := range m.scheds {
		if s.cfg.Threads < 1 {
			t.Fatalf("derived per-target budget %d", s.cfg.Threads)
		}
	}
	m2 := NewMulti(targets, Config{Threads: 3})
	for _, s := range m2.scheds {
		if s.cfg.Threads != 3 {
			t.Fatalf("explicit budget not honored: %d", s.cfg.Threads)
		}
	}
	// Background strategy keeps its single-thread semantics.
	m3 := NewMulti(targets, Config{Strategy: Background})
	for _, s := range m3.scheds {
		if s.cfg.Threads != 0 {
			t.Fatalf("background budget overridden: %d", s.cfg.Threads)
		}
	}
	// Pause/Resume propagate.
	m.Pause()
	for _, s := range m.scheds {
		if !s.Paused() {
			t.Fatal("Pause did not propagate")
		}
	}
	m.Resume()
	for _, s := range m.scheds {
		if s.Paused() {
			t.Fatal("Resume did not propagate")
		}
	}
}
