// Package sched implements merge scheduling (paper §3, §9): a background
// supervisor that triggers the merge process when the delta partition
// exceeds a configured fraction of the main partition, with the two
// resource strategies the paper names — merging with all available
// resources, or constantly merging in the background with minimal resource
// use — plus pause/resume control.
package sched

import (
	"context"
	"errors"
	"sync"
	"time"

	"hyrise/internal/core"
	"hyrise/internal/table"
)

// MergeTable is the surface the scheduler supervises: anything exposing
// the delta/main tuple counts the trigger condition reads, the row counts
// MergeNow uses to spot garbage-collectable history, and an online merge.
// *table.Table satisfies it, as does each shard of a sharded table (see
// internal/shard and Multi).
type MergeTable interface {
	DeltaRows() int
	MainRows() int
	Rows() int
	ValidRows() int
	GCEnabled() bool
	Merge(context.Context, table.MergeOptions) (table.Report, error)
}

// Strategy is the resource policy of §3.
type Strategy int

const (
	// AllResources merges with every available thread as soon as the
	// trigger fires (paper strategy (a); what the evaluation assumes).
	AllResources Strategy = iota
	// Background merges with a single thread to minimize interference
	// (paper strategy (b)).
	Background
)

// Config tunes the scheduler.
type Config struct {
	// Fraction triggers a merge when N_D > Fraction * N_M (§4).  The
	// paper's Figure 9 experiment uses 0.01; default 0.05.
	Fraction float64
	// MinDeltaRows avoids merging tiny deltas regardless of fraction
	// (small tables merge trivially fast; cf. §2 "Table Size").
	MinDeltaRows int
	// Interval is the polling period.  Default 100ms.
	Interval time.Duration
	// Strategy selects the resource policy.
	Strategy Strategy
	// Threads, when > 0, is an explicit per-merge thread budget that
	// overrides Strategy's implied budget.  NewMulti uses this to hand
	// every shard an even slice of the machine.
	Threads int
	// Algorithm forwards to the merge.
	Algorithm core.Algorithm
	// OnMerge, if non-nil, observes every completed merge.
	OnMerge func(table.Report)
	// OnError, if non-nil, observes merge failures.
	OnError func(error)
}

func (c *Config) setDefaults() {
	if c.Fraction <= 0 {
		c.Fraction = 0.05
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.MinDeltaRows < 0 {
		c.MinDeltaRows = 0
	}
}

// Scheduler supervises one table.  Create with New, then Start.
type Scheduler struct {
	t   MergeTable
	cfg Config

	mu      sync.Mutex
	paused  bool
	cancel  context.CancelFunc
	done    chan struct{}
	merges  int
	lastErr error
}

// New returns a stopped scheduler for one flat table.
func New(t *table.Table, cfg Config) *Scheduler { return NewFor(t, cfg) }

// NewFor returns a stopped scheduler for any merge target.
func NewFor(t MergeTable, cfg Config) *Scheduler {
	cfg.setDefaults()
	return &Scheduler{t: t, cfg: cfg}
}

// ErrAlreadyRunning is returned by Start when the scheduler is active.
var ErrAlreadyRunning = errors.New("sched: already running")

// Start launches the supervision loop.  Stop it via Stop.
func (s *Scheduler) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		return ErrAlreadyRunning
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.done = make(chan struct{})
	go s.loop(ctx, s.done)
	return nil
}

// Stop terminates the loop and waits for it.  A merge in flight is
// cancelled and rolls back cleanly — its delta rows stay in place and are
// picked up by the next merge (manual or scheduled).
func (s *Scheduler) Stop() {
	s.mu.Lock()
	cancel, done := s.cancel, s.done
	s.cancel = nil
	s.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
}

// Pause suspends triggering; a merge in flight completes.  The paper §3
// notes a scheduler may "pause and resume the merge process" to yield
// resources; we pause at column granularity via Stop/Start of triggering.
func (s *Scheduler) Pause() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.paused = true
}

// Resume re-enables triggering.
func (s *Scheduler) Resume() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.paused = false
}

// Paused reports whether triggering is suspended.
func (s *Scheduler) Paused() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paused
}

// Merges returns the number of merges the scheduler has completed.
func (s *Scheduler) Merges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.merges
}

// LastErr returns the most recent merge error, if any.
func (s *Scheduler) LastErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// MergeNow synchronously merges the target if it holds any delta rows or
// any invalidated versions a garbage-collecting merge could reclaim,
// regardless of the trigger condition, using the scheduler's configured
// thread budget.  It does not require (or disturb) a running supervision
// loop: whole-table merges serialize, so a concurrent scheduled merge
// simply runs first.  Callers use it to drain deltas deliberately — e.g.
// cmd/hyrised compacts on shutdown so the saved snapshot reloads with
// everything merged and reclaimed.
func (s *Scheduler) MergeNow(ctx context.Context) error {
	// With an empty delta a merge only rewrites the main, which is worth
	// doing solely when GC is on and dead versions actually linger there;
	// with GC off (or nothing dead) it would be a full-table no-op.
	if s.t.DeltaRows() == 0 &&
		(!s.t.GCEnabled() || s.t.Rows() == s.t.ValidRows()) {
		return nil
	}
	threads := s.cfg.Threads
	if threads <= 0 && s.cfg.Strategy == Background {
		threads = 1
	}
	_, err := s.t.Merge(ctx, table.MergeOptions{
		Algorithm: s.cfg.Algorithm,
		Threads:   threads,
	})
	return err
}

// ShouldMerge evaluates the trigger condition against current table state.
func (s *Scheduler) ShouldMerge() bool {
	nd := s.t.DeltaRows()
	if nd <= s.cfg.MinDeltaRows {
		return false
	}
	nm := s.t.MainRows()
	if nm == 0 {
		return true
	}
	return float64(nd) > s.cfg.Fraction*float64(nm)
}

func (s *Scheduler) loop(ctx context.Context, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if s.Paused() || !s.ShouldMerge() {
			continue
		}
		threads := s.cfg.Threads
		if threads <= 0 {
			threads = 0 // all resources
			if s.cfg.Strategy == Background {
				threads = 1
			}
		}
		rep, err := s.t.Merge(ctx, table.MergeOptions{
			Algorithm: s.cfg.Algorithm,
			Threads:   threads,
		})
		if errors.Is(err, context.Canceled) {
			// Stop cancelled a merge in flight: it rolled back cleanly and
			// the table is intact, so this is shutdown, not a failure.
			continue
		}
		s.mu.Lock()
		if err != nil {
			s.lastErr = err
			s.mu.Unlock()
			if s.cfg.OnError != nil {
				s.cfg.OnError(err)
			}
			continue
		}
		s.merges++
		s.mu.Unlock()
		if s.cfg.OnMerge != nil {
			s.cfg.OnMerge(rep)
		}
	}
}
