package sched

import (
	"context"
	"errors"
	"runtime"
)

// Multi supervises many merge targets — typically the shards of a sharded
// table — with one independent supervision loop per target, so each
// shard's delta fraction is watched and merged on its own schedule: a
// write-hot shard merges often while cold shards stay untouched, and
// several shards can merge concurrently.
//
// Unless cfg.Threads is set, the machine's threads are divided evenly
// across targets (minimum one each) so N concurrent shard merges do not
// oversubscribe the cores the way N AllResources schedulers would.
type Multi struct {
	scheds []*Scheduler
}

// NewMulti returns a stopped multi-target scheduler applying cfg to every
// target.  cfg.OnMerge and cfg.OnError observe merges of all targets and
// must be safe for concurrent use.
func NewMulti(targets []MergeTable, cfg Config) *Multi {
	if cfg.Threads <= 0 && cfg.Strategy == AllResources && len(targets) > 0 {
		cfg.Threads = runtime.GOMAXPROCS(0) / len(targets)
		if cfg.Threads < 1 {
			cfg.Threads = 1
		}
	}
	m := &Multi{}
	for _, t := range targets {
		m.scheds = append(m.scheds, NewFor(t, cfg))
	}
	return m
}

// Scheduler returns the supervisor of the i-th target.
func (m *Multi) Scheduler(i int) *Scheduler { return m.scheds[i] }

// Start launches every target's supervision loop.  If any fails to start,
// the already-started loops are stopped and the first error returned.
func (m *Multi) Start() error {
	for i, s := range m.scheds {
		if err := s.Start(); err != nil {
			for j := 0; j < i; j++ {
				m.scheds[j].Stop()
			}
			return err
		}
	}
	return nil
}

// Stop terminates every loop and waits for them.  Merges in flight are
// cancelled and roll back cleanly; their delta rows remain for the next
// merge.
func (m *Multi) Stop() {
	for _, s := range m.scheds {
		s.Stop()
	}
}

// Pause suspends triggering on every target.
func (m *Multi) Pause() {
	for _, s := range m.scheds {
		s.Pause()
	}
}

// Resume re-enables triggering on every target.
func (m *Multi) Resume() {
	for _, s := range m.scheds {
		s.Resume()
	}
}

// Paused reports whether triggering is suspended on every target.
func (m *Multi) Paused() bool {
	for _, s := range m.scheds {
		if !s.Paused() {
			return false
		}
	}
	return true
}

// MergeNow synchronously drains every target's delta (see
// Scheduler.MergeNow), joining any per-target errors.
func (m *Multi) MergeNow(ctx context.Context) error {
	var errs []error
	for _, s := range m.scheds {
		if err := s.MergeNow(ctx); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ShouldMerge reports whether any target currently meets its trigger
// condition.
func (m *Multi) ShouldMerge() bool {
	for _, s := range m.scheds {
		if s.ShouldMerge() {
			return true
		}
	}
	return false
}

// Merges returns the total number of merges completed across targets.
func (m *Multi) Merges() int {
	n := 0
	for _, s := range m.scheds {
		n += s.Merges()
	}
	return n
}

// LastErr joins the most recent merge error of every target, nil if none.
func (m *Multi) LastErr() error {
	var errs []error
	for _, s := range m.scheds {
		if err := s.LastErr(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
