package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hyrise_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels resolves to the same cell.
	if again := r.Counter("hyrise_test_ops_total", "ops"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
	g := r.Gauge("hyrise_test_depth", "depth")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(7)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil collectors must read zero")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Fatalf("nil registry must hand out nil collectors")
	}
	r.CounterFunc("x", "", func() float64 { return 1 })
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry render: %v", err)
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil registry snapshot must be nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// v=0 and v=1 land in bucket 0; 2^i lands in bucket i; 2^i+1 in i+1.
	h.Observe(0)
	h.Observe(1)
	if got := h.buckets[0].Load(); got != 2 {
		t.Fatalf("bucket[0] = %d, want 2", got)
	}
	for _, i := range []int{1, 5, 20, 62} {
		var hh Histogram
		hh.Observe(1 << i)
		if got := hh.buckets[i].Load(); got != 1 {
			t.Fatalf("2^%d: bucket[%d] = %d, want 1", i, i, got)
		}
		hh.Observe(1<<i + 1)
		if got := hh.buckets[i+1].Load(); got != 1 {
			t.Fatalf("2^%d+1: bucket[%d] = %d, want 1", i, i+1, got)
		}
	}
	var hh Histogram
	hh.Observe(math.MaxUint64)
	if got := hh.buckets[histBuckets-1].Load(); got != 1 {
		t.Fatalf("max observation must land in the overflow bucket, got %d", got)
	}
}

func TestHistogramSumCount(t *testing.T) {
	var h Histogram
	var want uint64
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
		want += i
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	h.ObserveDuration(-time.Second) // clock step: counts as zero
	if h.Sum() != want || h.Count() != 1001 {
		t.Fatalf("negative duration must observe as zero")
	}
}

// TestPrometheusExposition checks the rendered text line by line: header
// pairs, sorted label sets, cumulative monotonic buckets ending at +Inf,
// and _count equal to the +Inf bucket.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("hyrise_server_requests_total", "requests", "op", "lookup").Add(7)
	r.Counter("hyrise_server_requests_total", "requests", "op", "insert").Add(3)
	r.Gauge("hyrise_server_connections", "live conns").Set(2)
	r.GaugeFunc("hyrise_replica_lag_epochs", "lag", func() float64 { return 4 })
	h := r.Histogram("hyrise_server_op_seconds", "latency", "op", "lookup")
	h.ObserveDuration(100 * time.Nanosecond)
	h.ObserveDuration(3 * time.Microsecond)
	h.ObserveDuration(2 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	for _, want := range []string{
		"# TYPE hyrise_server_requests_total counter",
		`hyrise_server_requests_total{op="insert"} 3`,
		`hyrise_server_requests_total{op="lookup"} 7`,
		"# TYPE hyrise_server_connections gauge",
		"hyrise_server_connections 2",
		"hyrise_replica_lag_epochs 4",
		"# TYPE hyrise_server_op_seconds histogram",
		`hyrise_server_op_seconds_count{op="lookup"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// insert sorts before lookup within the family.
	if strings.Index(text, `op="insert"`) > strings.Index(text, `op="lookup"`) {
		t.Errorf("samples not sorted by label set:\n%s", text)
	}
	assertParseable(t, text)
}

// assertParseable walks exposition text asserting structural validity:
// every non-comment line is `name{labels} value`, histogram buckets are
// cumulative and end with le="+Inf" matching _count.
func assertParseable(t *testing.T, text string) {
	t.Helper()
	var prevCum uint64
	var prevBucketOf string
	infOf := map[string]uint64{}
	countOf := map[string]uint64{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil && val != "+Inf" {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		switch {
		case strings.HasSuffix(base, "_bucket"):
			cum, _ := strconv.ParseUint(val, 10, 64)
			series := strings.TrimSuffix(base, "_bucket")
			if series == prevBucketOf && cum < prevCum {
				t.Fatalf("non-cumulative bucket line %q (prev %d)", line, prevCum)
			}
			prevBucketOf, prevCum = series, cum
			if strings.Contains(name, `le="+Inf"`) {
				infOf[series] = cum
				prevBucketOf = ""
			}
		case strings.HasSuffix(base, "_count"):
			n, _ := strconv.ParseUint(val, 10, 64)
			countOf[strings.TrimSuffix(base, "_count")] = n
		}
	}
	for series, n := range countOf {
		if inf, ok := infOf[series]; ok && inf != n {
			t.Fatalf("%s: +Inf bucket %d != count %d", series, inf, n)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", "op", "x").Add(2)
	r.Gauge("b", "").Set(1.5)
	r.Histogram("c_seconds", "").ObserveDuration(2 * time.Second)
	got := map[string]float64{}
	for _, s := range r.Snapshot() {
		got[s.Name] = s.Value
	}
	want := map[string]float64{
		`a_total{op="x"}`: 2,
		"b":               1.5,
		"c_seconds_count": 1,
		"c_seconds_sum":   2,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("snapshot[%q] = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "")
}

// TestConcurrentScrape races writers against renders; run under -race.
// Rendered bucket series must stay internally cumulative even while
// observations land mid-snapshot.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hyrise_t_total", "")
	h := r.Histogram("hyrise_t_seconds", "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(uint64(seed*1000 + i%4096))
			}
		}(w)
	}
	var prev uint64
	for i := 0; i < 200; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		assertParseable(t, b.String())
		if v := c.Value(); v < prev {
			t.Fatalf("counter went backwards: %d < %d", v, prev)
		} else {
			prev = v
		}
	}
	close(stop)
	wg.Wait()
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkNoopObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Counter("hyrise_server_requests_total", "r", "op", fmt.Sprint(i)).Add(uint64(i))
		h := r.Histogram("hyrise_server_op_seconds", "l", "op", fmt.Sprint(i))
		for j := 0; j < 100; j++ {
			h.Observe(uint64(j * j * 1000))
		}
	}
	var sb strings.Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		r.WritePrometheus(&sb)
	}
}
