// Package metrics is the runtime observability registry: dependency-free
// atomic counters, gauges and fixed-bucket latency histograms, collected
// into a Registry that renders the Prometheus text exposition format.
//
// # Hot-path cost
//
// Every collector is a plain struct of atomic.Uint64 cells: an observation
// is one (histograms: three) uncontended atomic adds, no locks, no
// allocations, no time formatting.  Collectors are resolved from the
// Registry once, at wiring time — never per operation — so the instrumented
// fast path carries no map lookups.  All collector methods are nil-safe
// no-ops, which is how an instrumented call site becomes a true no-op
// baseline: hand it nil collectors and the only residue is a predictable
// nil check.
//
// # Histograms
//
// Histogram buckets have power-of-two bounds: bucket i counts observations
// of at most 2^i units.  ObserveDuration records nanoseconds (bucket index
// via bits.Len64 — O(1), branch-free), and the rendered bounds and sum are
// converted to seconds, the Prometheus base unit.  Reads snapshot the cells
// with atomic loads; the count is derived from the bucket cells themselves,
// so a scrape races with writers by at most the observations that landed
// mid-snapshot and cumulative bucket counts stay internally consistent.
//
// # Naming
//
// Metric names follow hyrise_<subsystem>_<name>[_total|_seconds]; labels
// are fixed at registration (one collector per label combination, resolved
// once).  Registering the same name+labels again returns the existing
// collector.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.  The zero value is ready
// to use; all methods are nil-safe no-ops.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits.  The
// zero value reads 0; all methods are nil-safe no-ops.
type Gauge struct{ v atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// histBuckets is the number of histogram cells: bucket i (i <
// histBuckets-1) counts observations v with v <= 2^i, in the unit the
// observer chose (ObserveDuration: nanoseconds, so the spans run from 1ns
// to 2^62ns ≈ 146 years); the last cell is the +Inf overflow.
const histBuckets = 64

// Histogram counts observations in fixed power-of-two buckets.  The zero
// value is ready to use; all methods are nil-safe no-ops.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64 // total of observed values, same unit as buckets
}

// Observe records one observation of v (in the histogram's unit).
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// bits.Len64(v-1) is the smallest i with v <= 2^i (v=0 lands in
	// bucket 0): one instruction, no bound scan.
	var i int
	if v > 1 {
		i = bits.Len64(v - 1)
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a latency in nanoseconds.  Negative durations
// (clock steps) count as zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations, derived from the bucket cells.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the total of observed values in the histogram's unit.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// metricKind selects the rendered TYPE line.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// sample is one registered collector (or callback) with its fixed labels.
type sample struct {
	labels  string // rendered `k="v",...` (no braces), "" for none
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // func-backed counter or gauge
}

// family groups the samples of one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	samples []*sample
}

// Registry holds registered collectors and renders them.  Registration
// takes a lock; reading a registered collector never does.  Safe for
// concurrent use.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string // registration order, for stable output
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels turns alternating key,value pairs into `k="v",k2="v2"`.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: labels must be alternating key,value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	return b.String()
}

// register resolves (or creates) the family and the sample slot for
// name+labels.  A name registered under two different kinds panics: that
// is a wiring bug, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labels []string) *sample {
	if r == nil {
		return nil
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as a different kind", name))
	}
	if f.help == "" {
		f.help = help
	}
	for _, s := range f.samples {
		if s.labels == ls {
			return s
		}
	}
	s := &sample{labels: ls}
	f.samples = append(f.samples, s)
	return s
}

// Counter registers (or returns) the counter name{labels}.  A nil registry
// returns nil, which every Counter method accepts.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(name, help, kindCounter, labels)
	if s == nil {
		return nil
	}
	if s.counter == nil && s.fn == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time (for cumulative counts already maintained elsewhere).  fn must be
// monotonic for the rendered type to be honest.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	if s := r.register(name, help, kindCounter, labels); s != nil {
		s.fn = fn
	}
}

// Gauge registers (or returns) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	if s == nil {
		return nil
	}
	if s.gauge == nil && s.fn == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if s := r.register(name, help, kindGauge, labels); s != nil {
		s.fn = fn
	}
}

// Histogram registers (or returns) the histogram name{labels}.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	if s == nil {
		return nil
	}
	if s.hist == nil {
		s.hist = &Histogram{}
	}
	return s.hist
}

// Sample is one rendered scalar in a Snapshot: histogram families
// contribute their _count and _sum (in seconds) rather than every bucket.
type Sample struct {
	// Name is the full sample name including rendered labels, e.g.
	// `hyrise_server_requests_total{op="lookup"}`.
	Name  string
	Value float64
}

// Snapshot reads every registered collector once and returns the flat
// scalar samples, in registration order.  Histograms contribute
// name_count{labels} and name_sum{labels} (seconds); bucket cells are
// exposition-only.  The wire op OpMetrics ships exactly this.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()
	var out []Sample
	for _, f := range fams {
		for _, s := range f.samples {
			switch {
			case f.kind == kindHistogram:
				out = append(out,
					Sample{sampleName(f.name+"_count", s.labels), float64(s.hist.Count())},
					Sample{sampleName(f.name+"_sum", s.labels), float64(s.hist.Sum()) / 1e9})
			case s.fn != nil:
				out = append(out, Sample{sampleName(f.name, s.labels), s.fn()})
			case s.counter != nil:
				out = append(out, Sample{sampleName(f.name, s.labels), float64(s.counter.Value())})
			case s.gauge != nil:
				out = append(out, Sample{sampleName(f.name, s.labels), s.gauge.Value()})
			}
		}
	}
	return out
}

func sampleName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// WritePrometheus renders every registered collector in the Prometheus
// text exposition format (version 0.0.4): one HELP/TYPE header per family,
// samples sorted by label set, histograms as cumulative le-bounded buckets
// (bounds in seconds) plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n", f.name)
		case kindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", f.name)
		case kindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", f.name)
		}
		samples := append([]*sample(nil), f.samples...)
		sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
		for _, s := range samples {
			switch {
			case f.kind == kindHistogram:
				renderHistogram(&b, f.name, s)
			case s.fn != nil:
				fmt.Fprintf(&b, "%s %s\n", sampleName(f.name, s.labels), formatFloat(s.fn()))
			case s.counter != nil:
				fmt.Fprintf(&b, "%s %d\n", sampleName(f.name, s.labels), s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s %s\n", sampleName(f.name, s.labels), formatFloat(s.gauge.Value()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderHistogram writes the cumulative bucket series of one histogram.
// Empty leading and trailing buckets are skipped (the cumulative counts
// they would carry are implied by the next rendered bound and +Inf), so a
// latency histogram renders ~10 lines, not 64.
func renderHistogram(b *strings.Builder, name string, s *sample) {
	var cells [histBuckets]uint64
	var total uint64
	for i := range cells {
		cells[i] = s.hist.buckets[i].Load()
		total += cells[i]
	}
	lo, hi := 0, histBuckets-1
	for lo < hi && cells[lo] == 0 {
		lo++
	}
	for hi > lo && cells[hi] == 0 {
		hi--
	}
	var cum uint64
	for i := 0; i <= hi; i++ {
		cum += cells[i]
		if i < lo {
			continue
		}
		// Bound 2^i nanoseconds, rendered in seconds.
		le := math.Ldexp(1, i) / 1e9
		writeBucket(b, name, s.labels, formatFloat(le), cum)
	}
	writeBucket(b, name, s.labels, "+Inf", total)
	fmt.Fprintf(b, "%s %s\n", sampleName(name+"_sum", s.labels),
		formatFloat(float64(s.hist.sum.Load())/1e9))
	fmt.Fprintf(b, "%s %d\n", sampleName(name+"_count", s.labels), total)
}

func writeBucket(b *strings.Builder, name, labels, le string, cum uint64) {
	if labels == "" {
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, le, cum)
	} else {
		fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
	}
}

// formatFloat renders a float the way Prometheus expects: integral values
// without an exponent, everything else in shortest-round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler returns an http.Handler serving the exposition text (the
// /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
