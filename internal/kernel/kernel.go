// Package kernel implements the block-at-a-time scan, filter and aggregate
// kernels behind every read path (paper §5, §6: the scan side of the
// multi-core story).  The scalar loops they replace called
// bitpack.Vector.Get one row at a time; the kernels instead evaluate
// predicates directly on the bit-packed words of a dictionary-code vector
// and communicate through selection vectors.
//
// # Selection-vector contract
//
// A selection vector is an ascending []int32 of element positions
// (positions are relative to the code vector / epoch columns the kernel
// ran over, NOT row ids — the table layer maps positions to stable ids).
// Kernels that produce selections append to a caller-owned dst and return
// the extended slice, so steady-state scans are allocation-free; kernels
// that consume selections (FilterVisible, Histogram, MinMaxSel) never
// reorder them.
//
// # Execution strategy
//
// For code widths that divide the 64-bit machine word (1, 2, 4, 8, 16, 32,
// 64 — the common widths for dictionary-compressed columns) the match
// kernels run word-at-a-time: 64/width codes are compared per iteration
// with branch-free SWAR arithmetic, and words with no matching lane are
// skipped with a single test.  Equality uses an exact lane-wise
// zero-detect after XOR with the broadcast code; range matching uses
// guard-bit compares over even/odd lane passes, both exact for fully
// packed lanes (no headroom bit is stored).  All other widths fall back to
// the block path: BlockSize codes are decoded into a pooled scratch buffer
// with bitpack.Vector.DecodeRange and compared in a tight loop — still
// block-at-a-time, never per-row Get.
//
// Visibility filtering is fused over the raw begin/end epoch slices
// (epoch.Rows.Raw): a row is visible at epoch e iff begin <= e and
// end-1 >= e in unsigned arithmetic (end == 0 wraps to MaxUint64), which
// makes the check branch-free inside the kernels.
//
// Kernels are pure functions over immutable inputs: the caller holds
// whatever lock protects the code vector and epoch slices (the table's
// read lock), and the kernels themselves never allocate shared state.
package kernel

import (
	"math/bits"
	"sync"

	"hyrise/internal/bitpack"
)

// BlockSize is the number of codes decoded per block on the general
// (non-word-divisor) kernel paths.  4KiB of decoded codes per block: small
// enough to stay cache-resident, large enough to amortize the per-block
// bookkeeping.
const BlockSize = 512

var blockPool = sync.Pool{New: func() any {
	b := make([]uint64, BlockSize)
	return &b
}}

// visible reports row i's visibility at epoch e over raw begin/end columns.
// end == 0 (current version) wraps to MaxUint64, so the check is two
// unsigned compares with no branch on end.
func visible(begin, end []uint64, i int, e uint64) bool {
	return begin[i] <= e && end[i]-1 >= e
}

// MatchEqual appends to dst the positions of v whose code equals code and
// returns the extended selection vector.
func MatchEqual(v *bitpack.Vector, code uint64, dst []int32) []int32 {
	n := v.Len()
	if n == 0 || code > v.MaxCode() {
		return dst
	}
	b := v.Bits()
	if b == 0 {
		// Degenerate single-value dictionary: every position matches.
		for i := 0; i < n; i++ {
			dst = append(dst, int32(i))
		}
		return dst
	}
	if bitpack.WordBits%b == 0 {
		return matchEqualSWAR(v, code, dst)
	}
	return matchBlock(v, code, code+1, dst)
}

// MatchRange appends to dst the positions of v whose code lies in the
// half-open interval [lo, hi) and returns the extended selection vector.
func MatchRange(v *bitpack.Vector, lo, hi uint64, dst []int32) []int32 {
	n := v.Len()
	if n == 0 || lo >= hi || lo > v.MaxCode() {
		return dst
	}
	b := v.Bits()
	if b == 0 {
		// All codes are zero; lo == 0 here since lo <= MaxCode() == 0.
		for i := 0; i < n; i++ {
			dst = append(dst, int32(i))
		}
		return dst
	}
	if lo+1 == hi {
		return MatchEqual(v, lo, dst)
	}
	if bitpack.WordBits%b == 0 {
		return matchRangeSWAR(v, lo, hi, dst)
	}
	return matchBlock(v, lo, hi, dst)
}

// lsbMask returns the word with bit 0 of every width-b lane set (b must
// divide 64).
func lsbMask(b uint) uint64 {
	m := uint64(0)
	for p := uint(0); p < bitpack.WordBits; p += b {
		m |= 1 << p
	}
	return m
}

// matchEqualSWAR is the word-at-a-time equality kernel for widths dividing
// 64.  Per word it XORs with the broadcast code and detects zero lanes with
// the exact, lane-independent test ~(((x &^ H) + ^H) | x) & H, where H
// holds each lane's msb: the inner sum carries into a lane's msb iff its
// low bits are non-zero, and per-lane sums never cross lane boundaries.
func matchEqualSWAR(v *bitpack.Vector, code uint64, dst []int32) []int32 {
	n := v.Len()
	b := v.Bits()
	words := v.Words()
	if b == bitpack.WordBits {
		for i, w := range words {
			if i >= n {
				break
			}
			if w == code {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	lanes := int(bitpack.WordBits / b)
	if b == 1 {
		for wi, w := range words {
			m := w
			if code == 0 {
				m = ^w
			}
			m = maskTail(m, wi, lanes, n, b)
			base := int32(wi * lanes)
			for ; m != 0; m &= m - 1 {
				dst = append(dst, base+int32(bits.TrailingZeros64(m)))
			}
		}
		return dst
	}
	L := lsbMask(b)
	H := L << (b - 1) // msb of every lane
	bcast := code * L
	for wi, w := range words {
		x := w ^ bcast
		eq := ^(((x &^ H) + ^H) | x) & H
		eq = maskTail(eq, wi, lanes, n, b)
		if eq == 0 {
			continue
		}
		base := int32(wi * lanes)
		for ; eq != 0; eq &= eq - 1 {
			lane := bits.TrailingZeros64(eq) / int(b)
			dst = append(dst, base+int32(lane))
		}
	}
	return dst
}

// matchRangeSWAR is the word-at-a-time range kernel for widths 2..32
// dividing 64 (width 1 reduces to equality upstream, width 64 to scalar
// compares).  Lanes are compared against [lo, hi) with guard-bit
// arithmetic: with odd lanes masked out, each even lane has a guard bit
// directly above it, and (x | G) - bound leaves the guard set iff
// x >= bound.  Odd lanes run through the same constants on the word
// shifted right by one lane.
func matchRangeSWAR(v *bitpack.Vector, lo, hi uint64, dst []int32) []int32 {
	n := v.Len()
	b := v.Bits()
	words := v.Words()
	if b == bitpack.WordBits {
		for i, w := range words {
			if i >= n {
				break
			}
			if w >= lo && w < hi {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	lanes := int(bitpack.WordBits / b)
	maxCode := v.MaxCode()
	evenLsb := lsbMask(2 * b) // lane 0, 2, 4, ... lsbs
	evenMask := evenLsb * ((uint64(1) << b) - 1)
	G := evenLsb << b // guard bit above each even lane
	loBC := lo * evenLsb
	var hiBC uint64
	boundedHi := hi <= maxCode
	if boundedHi {
		hiBC = hi * evenLsb
	}
	checkLo := lo != 0
	inRange := func(x uint64) uint64 { // x: word with lanes at even positions
		xm := (x & evenMask) | G
		ge := G
		if checkLo {
			ge = (xm - loBC) & G
		}
		lt := G
		if boundedHi {
			lt = G &^ (xm - hiBC)
		}
		return ge & lt
	}
	for wi, w := range words {
		inEven := inRange(w)
		inOdd := inRange(w >> b)
		// Map guard bits back to lane-msb positions: even lane 2k's guard
		// sits one bit above its msb, odd lane 2k+1's guard (in the shifted
		// frame) sits b-1 bits below its msb.
		m := (inEven >> 1) | (inOdd << (b - 1))
		m = maskTail(m, wi, lanes, n, b)
		if m == 0 {
			continue
		}
		base := int32(wi * lanes)
		for ; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m) / int(b)
			dst = append(dst, base+int32(lane))
		}
	}
	return dst
}

// maskTail clears match bits belonging to lanes at or beyond element n in
// the last (partial) word: bits past Len()*Bits() are not guaranteed
// meaningful, and a zero tail would otherwise false-match code 0.
func maskTail(m uint64, wi, lanes, n int, b uint) uint64 {
	valid := n - wi*lanes
	if valid >= lanes {
		return m
	}
	if valid <= 0 {
		return 0
	}
	return m & ((uint64(1) << (uint(valid) * b)) - 1)
}

// matchBlock is the general-width match path: decode BlockSize codes at a
// time into a pooled scratch buffer and compare [lo, hi) in a tight loop.
func matchBlock(v *bitpack.Vector, lo, hi uint64, dst []int32) []int32 {
	n := v.Len()
	bufp := blockPool.Get().(*[]uint64)
	buf := *bufp
	for base := 0; base < n; base += BlockSize {
		to := base + BlockSize
		if to > n {
			to = n
		}
		buf = v.DecodeRange(base, to, buf)
		for i, c := range buf {
			if c >= lo && c < hi {
				dst = append(dst, int32(base+i))
			}
		}
	}
	*bufp = buf[:cap(buf)]
	blockPool.Put(bufp)
	return dst
}

// FilterVisible compacts sel in place to the positions visible at epoch e,
// reading the raw begin/end epoch columns, and returns the shortened
// selection vector.  Positions index begin/end directly.
func FilterVisible(sel []int32, begin, end []uint64, e uint64) []int32 {
	w := 0
	for _, p := range sel {
		if visible(begin, end, int(p), e) {
			sel[w] = p
			w++
		}
	}
	return sel[:w]
}

// CountSelVisible returns the number of positions in sel visible at epoch
// e without modifying sel — the counting companion of FilterVisible for
// read-only selections such as index posting lists (Bucket slices must not
// be compacted in place).
func CountSelVisible(sel []int32, begin, end []uint64, e uint64) int {
	n := 0
	for _, p := range sel {
		if visible(begin, end, int(p), e) {
			n++
		}
	}
	return n
}

// SelectVisible appends to dst the positions in [from, to) visible at
// epoch e and returns the extended selection vector — the seed kernel for
// full scans and aggregates.
func SelectVisible(begin, end []uint64, e uint64, from, to int, dst []int32) []int32 {
	for i := from; i < to; i++ {
		if begin[i] <= e && end[i]-1 >= e {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// CountVisible returns the number of positions in [from, to) visible at
// epoch e.
func CountVisible(begin, end []uint64, e uint64, from, to int) int {
	n := 0
	for i := from; i < to; i++ {
		if begin[i] <= e && end[i]-1 >= e {
			n++
		}
	}
	return n
}

// CountEqual returns the number of positions of v whose code equals code,
// fused with visibility filtering at epoch e over the raw begin/end
// columns.  A nil begin counts matches unconditionally; on the SWAR widths
// that degenerates to one population count per word.
func CountEqual(v *bitpack.Vector, code uint64, begin, end []uint64, e uint64) int {
	n := v.Len()
	if n == 0 || code > v.MaxCode() {
		return 0
	}
	b := v.Bits()
	cnt := 0
	if b != 0 && bitpack.WordBits%b == 0 && b > 1 && b < bitpack.WordBits {
		lanes := int(bitpack.WordBits / b)
		L := lsbMask(b)
		H := L << (b - 1)
		bcast := code * L
		for wi, w := range v.Words() {
			x := w ^ bcast
			eq := ^(((x &^ H) + ^H) | x) & H
			eq = maskTail(eq, wi, lanes, n, b)
			if eq == 0 {
				continue
			}
			if begin == nil {
				cnt += bits.OnesCount64(eq)
				continue
			}
			base := wi * lanes
			for ; eq != 0; eq &= eq - 1 {
				if p := base + bits.TrailingZeros64(eq)/int(b); visible(begin, end, p, e) {
					cnt++
				}
			}
		}
		return cnt
	}
	// Width 0, 1, 64 and non-divisor widths: block decode and count.
	bufp := blockPool.Get().(*[]uint64)
	buf := *bufp
	for base := 0; base < n; base += BlockSize {
		to := base + BlockSize
		if to > n {
			to = n
		}
		buf = v.DecodeRange(base, to, buf)
		for i, c := range buf {
			if c == code && (begin == nil || visible(begin, end, base+i, e)) {
				cnt++
			}
		}
	}
	*bufp = buf[:cap(buf)]
	blockPool.Put(bufp)
	return cnt
}

// Histogram adds, for every selected position, one to counts[code].  The
// caller sizes counts to the dictionary cardinality; selection-vector-
// driven aggregates (sum, group-by seeds) reduce the histogram against the
// sorted dictionary afterwards.  Dense selections decode the covered span
// block-at-a-time; sparse selections gather per position.
func Histogram(v *bitpack.Vector, sel []int32, counts []int) {
	gather(v, sel, func(code uint64) {
		counts[code]++
	})
}

// MinMaxSel returns the smallest and largest code among the selected
// positions; ok is false for an empty selection.  Because dictionaries are
// order-preserving, the min/max code IS the min/max value after one
// dictionary access.
func MinMaxSel(v *bitpack.Vector, sel []int32) (minC, maxC uint64, ok bool) {
	if len(sel) == 0 {
		return 0, 0, false
	}
	first := true
	gather(v, sel, func(code uint64) {
		if first {
			minC, maxC, first = code, code, false
			return
		}
		if code < minC {
			minC = code
		}
		if code > maxC {
			maxC = code
		}
	})
	return minC, maxC, true
}

// Gather streams (position, code) pairs for the selected positions
// through fn in selection order, stopping early if fn returns false.  It
// is the scan driver: produce a selection with SelectVisible or the match
// kernels, then gather codes block-at-a-time for materialization.
func Gather(v *bitpack.Vector, sel []int32, fn func(pos int32, code uint64) bool) {
	if len(sel) == 0 {
		return
	}
	span := int(sel[len(sel)-1]) - int(sel[0]) + 1
	if len(sel)*4 < span {
		for _, p := range sel {
			if !fn(p, v.Get(int(p))) {
				return
			}
		}
		return
	}
	bufp := blockPool.Get().(*[]uint64)
	buf := *bufp
	defer func() {
		*bufp = buf[:cap(buf)]
		blockPool.Put(bufp)
	}()
	i := 0
	for i < len(sel) {
		base := int(sel[i])
		to := base + BlockSize
		if n := v.Len(); to > n {
			to = n
		}
		buf = v.DecodeRange(base, to, buf)
		for i < len(sel) && int(sel[i]) < to {
			if !fn(sel[i], buf[int(sel[i])-base]) {
				return
			}
			i++
		}
	}
}

// gather streams the codes of the selected positions through fn in
// selection order.  When the selection is dense over its span (>= 1 in 4)
// it decodes whole blocks; otherwise it pays one positional decode per
// selected position.
func gather(v *bitpack.Vector, sel []int32, fn func(code uint64)) {
	if len(sel) == 0 {
		return
	}
	span := int(sel[len(sel)-1]) - int(sel[0]) + 1
	if len(sel)*4 < span {
		for _, p := range sel {
			fn(v.Get(int(p)))
		}
		return
	}
	bufp := blockPool.Get().(*[]uint64)
	buf := *bufp
	i := 0
	for i < len(sel) {
		base := int(sel[i])
		to := base + BlockSize
		if n := v.Len(); to > n {
			to = n
		}
		buf = v.DecodeRange(base, to, buf)
		for i < len(sel) && int(sel[i]) < to {
			fn(buf[int(sel[i])-base])
			i++
		}
	}
	*bufp = buf[:cap(buf)]
	blockPool.Put(bufp)
}
