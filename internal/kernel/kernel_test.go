package kernel

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hyrise/internal/bitpack"
)

// The differential suite pins every kernel entry point to a scalar
// reference implementation across a sweep of code widths (1–64 bits),
// lengths crossing word and block boundaries, and match selectivities.
// Selection vectors must be byte-identical, aggregates exactly equal.

// ---- scalar references -------------------------------------------------

func refMatchEqual(v *bitpack.Vector, code uint64) []int32 {
	var out []int32
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) == code {
			out = append(out, int32(i))
		}
	}
	return out
}

func refMatchRange(v *bitpack.Vector, lo, hi uint64) []int32 {
	var out []int32
	for i := 0; i < v.Len(); i++ {
		if c := v.Get(i); c >= lo && c < hi {
			out = append(out, int32(i))
		}
	}
	return out
}

func refVisible(begin, end []uint64, i int, e uint64) bool {
	return begin[i] <= e && (end[i] == 0 || end[i] > e)
}

func refFilterVisible(sel []int32, begin, end []uint64, e uint64) []int32 {
	var out []int32
	for _, p := range sel {
		if refVisible(begin, end, int(p), e) {
			out = append(out, p)
		}
	}
	return out
}

func refSelectVisible(begin, end []uint64, e uint64, from, to int) []int32 {
	var out []int32
	for i := from; i < to; i++ {
		if refVisible(begin, end, i, e) {
			out = append(out, int32(i))
		}
	}
	return out
}

func refCountEqual(v *bitpack.Vector, code uint64, begin, end []uint64, e uint64) int {
	n := 0
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) == code && (begin == nil || refVisible(begin, end, i, e)) {
			n++
		}
	}
	return n
}

func refHistogram(v *bitpack.Vector, sel []int32, counts []int) {
	for _, p := range sel {
		counts[v.Get(int(p))]++
	}
}

func refMinMaxSel(v *bitpack.Vector, sel []int32) (uint64, uint64, bool) {
	if len(sel) == 0 {
		return 0, 0, false
	}
	mn, mx := v.Get(int(sel[0])), v.Get(int(sel[0]))
	for _, p := range sel[1:] {
		c := v.Get(int(p))
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	return mn, mx, true
}

func refDecodeRange(v *bitpack.Vector, from, to int) []uint64 {
	out := make([]uint64, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, v.Get(i))
	}
	return out
}

// ---- generators --------------------------------------------------------

// Lengths crossing word boundaries (63/64/65), block boundaries
// (BlockSize±1) and the 4096±1 chunk sizes named in the spec.
var diffLengths = []int{0, 1, 63, 64, 65, BlockSize - 1, BlockSize, BlockSize + 1, 4095, 4096, 4097}

type selectivity struct {
	name string
	gen  func(rng *rand.Rand, width uint, n int) (codes []uint64, needle uint64)
}

var selectivities = []selectivity{
	{"all-match", func(rng *rand.Rand, width uint, n int) ([]uint64, uint64) {
		needle := boundedCode(rng, width)
		codes := make([]uint64, n)
		for i := range codes {
			codes[i] = needle
		}
		return codes, needle
	}},
	{"none-match", func(rng *rand.Rand, width uint, n int) ([]uint64, uint64) {
		needle := boundedCode(rng, width)
		codes := make([]uint64, n)
		for i := range codes {
			c := boundedCode(rng, width)
			if c == needle { // keep the needle absent when the width allows
				c = needle ^ (1&^(c>>63))&maxFor(width)
				if c == needle && width > 0 {
					c = (needle + 1) & maxFor(width)
				}
			}
			codes[i] = c
		}
		if width == 0 {
			return codes, 1 // needle 1 can never match width-0 codes
		}
		return codes, needle
	}},
	{"dense", func(rng *rand.Rand, width uint, n int) ([]uint64, uint64) {
		needle := boundedCode(rng, width)
		codes := make([]uint64, n)
		for i := range codes {
			if rng.Intn(2) == 0 {
				codes[i] = needle
			} else {
				codes[i] = boundedCode(rng, width)
			}
		}
		return codes, needle
	}},
	{"sparse", func(rng *rand.Rand, width uint, n int) ([]uint64, uint64) {
		needle := boundedCode(rng, width)
		codes := make([]uint64, n)
		for i := range codes {
			codes[i] = boundedCode(rng, width)
		}
		if n > 0 {
			codes[rng.Intn(n)] = needle
		}
		return codes, needle
	}},
}

func maxFor(width uint) uint64 {
	if width == 0 {
		return 0
	}
	if width == 64 {
		return ^uint64(0)
	}
	return (1 << width) - 1
}

func boundedCode(rng *rand.Rand, width uint) uint64 {
	return rng.Uint64() & maxFor(width)
}

func eqSel(a, b []int32) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// sweep runs fn for every width x length x selectivity combination.
func sweep(t *testing.T, fn func(t *testing.T, rng *rand.Rand, v *bitpack.Vector, needle uint64)) {
	t.Helper()
	for width := uint(0); width <= 64; width++ {
		for _, n := range diffLengths {
			for _, sel := range selectivities {
				rng := rand.New(rand.NewSource(int64(width)*1_000_003 + int64(n)*97 + int64(len(sel.name))))
				codes, needle := sel.gen(rng, width, n)
				v := bitpack.FromSlice(width, codes)
				name := fmt.Sprintf("w%d/n%d/%s", width, n, sel.name)
				ok := t.Run(name, func(t *testing.T) {
					fn(t, rng, v, needle)
				})
				if !ok {
					return // first failing case is enough to debug
				}
			}
		}
	}
}

// ---- differential tests ------------------------------------------------

func TestDifferentialMatchEqual(t *testing.T) {
	sweep(t, func(t *testing.T, rng *rand.Rand, v *bitpack.Vector, needle uint64) {
		want := refMatchEqual(v, needle)
		got := MatchEqual(v, needle, nil)
		if !eqSel(got, want) {
			t.Fatalf("MatchEqual(code=%d): got %d sel %v want %d sel %v",
				needle, len(got), head(got), len(want), head(want))
		}
		// Appending to a non-empty dst must preserve the prefix.
		pre := []int32{-7}
		got2 := MatchEqual(v, needle, pre)
		if len(got2) != len(want)+1 || got2[0] != -7 || !eqSel(got2[1:], want) {
			t.Fatalf("MatchEqual dst prefix violated")
		}
	})
}

func TestDifferentialMatchRange(t *testing.T) {
	sweep(t, func(t *testing.T, rng *rand.Rand, v *bitpack.Vector, needle uint64) {
		max := maxFor(v.Bits())
		ranges := [][2]uint64{
			{0, max/2 + 1},               // lower half
			{needle, needle + 1},         // point range
			{needle / 2, needle + 2},     // straddling the needle
			{max, max},                   // empty (lo >= hi)
			{0, ^uint64(0)},              // everything
			{max / 3, 2*(max/3) + 1},     // middle band
			{needle, needle + max/4 + 1}, // needle-anchored band
		}
		for _, r := range ranges {
			want := refMatchRange(v, r[0], r[1])
			got := MatchRange(v, r[0], r[1], nil)
			if !eqSel(got, want) {
				t.Fatalf("MatchRange[%d,%d): got %d sel %v want %d sel %v",
					r[0], r[1], len(got), head(got), len(want), head(want))
			}
		}
	})
}

// randomEpochs builds begin/end columns with a mix of current (end=0),
// invalidated-early and invalidated-late versions, plus an epoch that
// splits them.
func randomEpochs(rng *rand.Rand, n int) (begin, end []uint64, e uint64) {
	begin = make([]uint64, n)
	end = make([]uint64, n)
	for i := 0; i < n; i++ {
		begin[i] = uint64(rng.Intn(10) + 1)
		switch rng.Intn(4) {
		case 0:
			end[i] = 0 // current
		default:
			end[i] = begin[i] + uint64(rng.Intn(10))
		}
	}
	return begin, end, uint64(rng.Intn(14) + 1)
}

func TestDifferentialVisibilityKernels(t *testing.T) {
	sweep(t, func(t *testing.T, rng *rand.Rand, v *bitpack.Vector, needle uint64) {
		n := v.Len()
		begin, end, e := randomEpochs(rng, n)

		wantSel := refSelectVisible(begin, end, e, 0, n)
		gotSel := SelectVisible(begin, end, e, 0, n, nil)
		if !eqSel(gotSel, wantSel) {
			t.Fatalf("SelectVisible: got %v want %v", head(gotSel), head(wantSel))
		}
		if got, want := CountVisible(begin, end, e, 0, n), len(wantSel); got != want {
			t.Fatalf("CountVisible: got %d want %d", got, want)
		}
		// Partial row ranges, including empty ones.
		if n > 2 {
			from, to := 1, n-1
			if !eqSel(SelectVisible(begin, end, e, from, to, nil), refSelectVisible(begin, end, e, from, to)) {
				t.Fatalf("SelectVisible partial range diverged")
			}
		}

		matches := MatchEqual(v, needle, nil)
		wantF := refFilterVisible(matches, begin, end, e)
		gotF := FilterVisible(append([]int32(nil), matches...), begin, end, e)
		if !eqSel(gotF, wantF) {
			t.Fatalf("FilterVisible: got %v want %v", head(gotF), head(wantF))
		}

		// CountSelVisible must agree with FilterVisible's survivor count and
		// leave the selection untouched (posting lists are read-only).
		before := append([]int32(nil), matches...)
		if got, want := CountSelVisible(matches, begin, end, e), len(wantF); got != want {
			t.Fatalf("CountSelVisible: got %d want %d", got, want)
		}
		if !eqSel(matches, before) {
			t.Fatalf("CountSelVisible mutated its selection")
		}

		if got, want := CountEqual(v, needle, begin, end, e), refCountEqual(v, needle, begin, end, e); got != want {
			t.Fatalf("CountEqual fused: got %d want %d", got, want)
		}
		if got, want := CountEqual(v, needle, nil, nil, 0), refCountEqual(v, needle, nil, nil, 0); got != want {
			t.Fatalf("CountEqual unfiltered: got %d want %d", got, want)
		}
		// The Latest sentinel epoch must see exactly the current versions.
		const latest = ^uint64(0)
		if got, want := CountEqual(v, needle, begin, end, latest), refCountEqual(v, needle, begin, end, latest); got != want {
			t.Fatalf("CountEqual latest: got %d want %d", got, want)
		}
	})
}

func TestDifferentialAggregateKernels(t *testing.T) {
	sweep(t, func(t *testing.T, rng *rand.Rand, v *bitpack.Vector, needle uint64) {
		n := v.Len()
		begin, end, e := randomEpochs(rng, n)
		sel := SelectVisible(begin, end, e, 0, n, nil)

		size := int(maxFor(v.Bits())) + 1
		if v.Bits() > 14 {
			size = 1 << 14 // cap the histogram, clamp codes below
			capped := sel[:0]
			for _, p := range sel {
				if v.Get(int(p)) < uint64(size) {
					capped = append(capped, p)
				}
			}
			sel = capped
		}
		want := make([]int, size)
		got := make([]int, size)
		refHistogram(v, sel, want)
		Histogram(v, sel, got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Histogram diverged")
		}

		wmn, wmx, wok := refMinMaxSel(v, sel)
		gmn, gmx, gok := MinMaxSel(v, sel)
		if gmn != wmn || gmx != wmx || gok != wok {
			t.Fatalf("MinMaxSel: got (%d,%d,%v) want (%d,%d,%v)", gmn, gmx, gok, wmn, wmx, wok)
		}

		// A deliberately sparse selection exercises the gather path's
		// per-position branch.
		var sparse []int32
		for i := 0; i < n; i += 17 * (BlockSize / 64) {
			sparse = append(sparse, int32(i))
		}
		smn, smx, sok := MinMaxSel(v, sparse)
		rmn, rmx, rok := refMinMaxSel(v, sparse)
		if smn != rmn || smx != rmx || sok != rok {
			t.Fatalf("MinMaxSel sparse: got (%d,%d,%v) want (%d,%d,%v)", smn, smx, sok, rmn, rmx, rok)
		}
	})
}

func TestDifferentialGather(t *testing.T) {
	sweep(t, func(t *testing.T, rng *rand.Rand, v *bitpack.Vector, needle uint64) {
		n := v.Len()
		begin, end, e := randomEpochs(rng, n)
		for _, sel := range [][]int32{
			SelectVisible(begin, end, e, 0, n, nil), // dense-ish
			MatchEqual(v, needle, nil),
			sparseSel(n),
		} {
			var got, want [][2]uint64
			Gather(v, sel, func(pos int32, code uint64) bool {
				got = append(got, [2]uint64{uint64(pos), code})
				return true
			})
			for _, p := range sel {
				want = append(want, [2]uint64{uint64(p), v.Get(int(p))})
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Gather: got %d pairs want %d", len(got), len(want))
			}
			// Early stop after k pairs must visit exactly k positions.
			if len(sel) > 1 {
				k := len(sel) / 2
				visits := 0
				Gather(v, sel, func(pos int32, code uint64) bool {
					visits++
					return visits < k
				})
				if visits != k {
					t.Fatalf("Gather early stop: visited %d want %d", visits, k)
				}
			}
		}
	})
}

func sparseSel(n int) []int32 {
	var sel []int32
	for i := 0; i < n; i += 131 {
		sel = append(sel, int32(i))
	}
	return sel
}

func TestDifferentialDecodeRange(t *testing.T) {
	sweep(t, func(t *testing.T, rng *rand.Rand, v *bitpack.Vector, needle uint64) {
		n := v.Len()
		spans := [][2]int{{0, n}, {0, n / 2}, {n / 3, n}, {n / 2, n/2 + min(n/2, 3)}}
		var buf []uint64
		for _, s := range spans {
			from, to := s[0], s[1]
			if from > to {
				continue
			}
			buf = v.DecodeRange(from, to, buf)
			want := refDecodeRange(v, from, to)
			if len(buf) != len(want) {
				t.Fatalf("DecodeRange[%d,%d): len %d want %d", from, to, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("DecodeRange[%d,%d)[%d] = %d want %d", from, to, i, buf[i], want[i])
				}
			}
		}
	})
}

func head(s []int32) []int32 {
	if len(s) > 8 {
		return s[:8]
	}
	return s
}
