package kernel

import (
	"encoding/binary"
	"testing"

	"hyrise/internal/bitpack"
)

// FuzzScanKernels feeds random widths, code payloads and predicates
// through every scan kernel and cross-checks against the scalar
// reference implementations from the differential suite.
func FuzzScanKernels(f *testing.F) {
	f.Add(uint8(8), uint64(3), uint64(1), uint64(5), []byte{1, 2, 3, 4, 5, 6, 7, 8, 3, 3})
	f.Add(uint8(1), uint64(1), uint64(0), uint64(2), []byte{0xff, 0x00, 0xaa})
	f.Add(uint8(13), uint64(100), uint64(50), uint64(200), make([]byte, 130))
	f.Add(uint8(64), uint64(0), uint64(0), ^uint64(0), []byte{9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, widthRaw uint8, needle, lo, hi uint64, payload []byte) {
		width := uint(widthRaw%64) + 1 // 1..64
		max := maxFor(width)
		needle &= max
		lo &= max
		if hi > max {
			hi = max + 1
		}
		if max == ^uint64(0) {
			hi = needle // keep hi meaningful at width 64
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if len(payload) > 1<<14 {
			payload = payload[:1<<14]
		}

		// Decode the payload into codes, 8 bytes per element, masked
		// to the width so every code is representable.
		n := len(payload) / 2
		codes := make([]uint64, n)
		for i := range codes {
			var buf [8]byte
			copy(buf[:], payload[i*2:])
			codes[i] = binary.LittleEndian.Uint64(buf[:]) & max
		}
		if n > 0 {
			codes[n/2] = needle // guarantee at least one potential hit
		}
		v := bitpack.FromSlice(width, codes)

		if got, want := MatchEqual(v, needle, nil), refMatchEqual(v, needle); !eqSel(got, want) {
			t.Fatalf("MatchEqual(w=%d, code=%d): got %v want %v", width, needle, got, want)
		}
		if got, want := MatchRange(v, lo, hi, nil), refMatchRange(v, lo, hi); !eqSel(got, want) {
			t.Fatalf("MatchRange(w=%d, [%d,%d)): got %v want %v", width, lo, hi, got, want)
		}

		// Derive epoch columns from the payload too, so visibility
		// fusion sees fuzz-driven patterns.
		begin := make([]uint64, n)
		end := make([]uint64, n)
		for i := 0; i < n; i++ {
			b := uint64(payload[i*2]%13) + 1
			begin[i] = b
			if payload[i*2+1]%3 == 0 {
				end[i] = 0
			} else {
				end[i] = b + uint64(payload[i*2+1]%7)
			}
		}
		e := (needle % 16) + 1
		if got, want := CountEqual(v, needle, begin, end, e), refCountEqual(v, needle, begin, end, e); got != want {
			t.Fatalf("CountEqual(w=%d): got %d want %d", width, got, want)
		}
		sel := MatchEqual(v, needle, nil)
		if got, want := FilterVisible(sel, begin, end, e), refFilterVisible(refMatchEqual(v, needle), begin, end, e); !eqSel(got, want) {
			t.Fatalf("FilterVisible(w=%d): got %v want %v", width, got, want)
		}
		if got, want := SelectVisible(begin, end, e, 0, n, nil), refSelectVisible(begin, end, e, 0, n); !eqSel(got, want) {
			t.Fatalf("SelectVisible(w=%d): got %v want %v", width, got, want)
		}
	})
}
