// Package query evaluates conjunctive multi-column predicates over tables
// using the column-at-a-time strategy natural to decomposed storage (paper
// §3, [10]): one driving predicate produces candidate positions from its
// column alone (dictionary lookup + code scan, or CSB+ probe in the
// delta), and the remaining predicates refine those positions with point
// probes into their own columns.  Because the implicit row offset is valid
// for all attributes of a table, no tuple reconstruction happens until the
// final projection.
package query

import (
	"fmt"
	"math"

	"hyrise/internal/table"
	"hyrise/internal/val"
)

// Op is a predicate operator.
type Op int

const (
	// Eq matches rows whose column value equals Value.
	Eq Op = iota
	// Between matches rows whose column value lies in [Value, Hi].
	Between
)

// String returns the operator name.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Between:
		return "between"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Filter is one predicate.  Value (and Hi for Between) must match the
// column's Go type: uint32, uint64 or string.
type Filter struct {
	Column string
	Op     Op
	Value  any
	Hi     any
}

// Result holds matching row ids and projected values.
type Result struct {
	// Rows are matching row ids in ascending order.
	Rows []int
	// Columns are the projected column names (nil if no projection).
	Columns []string
	// Values[i] holds the projected values of Rows[i].
	Values [][]any
}

// Count returns the number of matching rows.
func (r *Result) Count() int { return len(r.Rows) }

// Run evaluates the conjunction of filters against t's current rows and
// projects the named columns (project == nil skips materialization).  At
// least one filter is required.
func Run(t *table.Table, filters []Filter, project []string) (*Result, error) {
	return RunAt(t, table.Latest(), filters, project)
}

// RunAt is Run against the rows visible at the view's epoch: every
// predicate filters through the frozen view, so the result reflects one
// consistent state even while writers and merges proceed.
//
// A latest view is replaced by a short-lived pinned snapshot for the
// duration of the query: the seed scan, the refinement probes and the
// projection are separate steps, and without the pin a GC merge
// committing in between could reclaim a candidate row mid-query and fail
// it with ErrRowInvalid.
func RunAt(t *table.Table, view table.View, filters []Filter, project []string) (*Result, error) {
	if len(filters) == 0 {
		return nil, fmt.Errorf("query: no filters (use a full-column handle scan instead)")
	}
	if view.IsLatest() {
		view = t.Snapshot()
		defer view.Release()
	}
	for _, p := range project {
		if _, err := colIndex(t, p); err != nil {
			return nil, err
		}
	}

	drive := chooseSeed(t, filters)
	est, indexed, estErr := estimate(t, filters[drive])
	rows, err := seed(t, view, filters[drive])
	if err != nil {
		return nil, err
	}
	if estErr == nil {
		recordSeed(est, indexed, len(rows))
	}

	// Refine with the remaining predicates: one batched column gather per
	// predicate (a single lock acquisition for the whole candidate set)
	// instead of a positional probe — and its lock round trip — per row.
	for i, f := range filters {
		if i == drive || len(rows) == 0 {
			continue
		}
		rows, err = refine(t, rows, f)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Rows: rows, Columns: project}
	if project != nil {
		idx := make([]int, len(project))
		for i, p := range project {
			idx[i], _ = colIndex(t, p)
		}
		for _, r := range rows {
			full, err := t.Row(r)
			if err != nil {
				return nil, err
			}
			vals := make([]any, len(idx))
			for i, ci := range idx {
				vals[i] = full[ci]
			}
			res.Values = append(res.Values, vals)
		}
	}
	return res, nil
}

// chooseSeed picks the driving predicate by estimated cost: the estimated
// candidate-set size (exact posting-list counts on indexed columns, a
// uniform-distribution guess via the dictionary spread otherwise), plus
// the cost of producing it — a scan over the stored rows unless the column
// is indexed.  An indexed equality on a narrow value therefore beats any
// scan, and among unindexed predicates the narrowest dictionary spread
// wins.  Filters that cannot be estimated (unknown column, type mismatch)
// rank last; seed/refine surface the error.
func chooseSeed(t *table.Table, filters []Filter) int {
	if len(filters) == 1 {
		return 0
	}
	// Producing a seed without an index scans main codes word-at-a-time
	// (cheap per row) and probes the delta trees; charge the scan at a
	// fraction of a row each, so a small expected result on an unindexed
	// column still beats a large one on an indexed column.
	scanCost := float64(t.MainRows())/8 + float64(t.DeltaRows())
	best, bestCost := 0, math.Inf(1)
	for i, f := range filters {
		est, indexed, err := estimate(t, f)
		if err != nil {
			continue
		}
		cost := float64(est)
		if !indexed {
			cost += scanCost
		}
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// estimate returns the expected candidate rows for one filter and whether
// an index serves it.
func estimate(t *table.Table, f Filter) (rows int, indexed bool, err error) {
	ci, err := colIndex(t, f.Column)
	if err != nil {
		return 0, false, err
	}
	switch t.Schema()[ci].Type {
	case table.Uint32:
		return estimateTyped[uint32](t, f)
	case table.Uint64:
		return estimateTyped[uint64](t, f)
	default:
		return estimateTyped[string](t, f)
	}
}

func estimateTyped[V val.Value](t *table.Table, f Filter) (int, bool, error) {
	h, err := table.ColumnOf[V](t, f.Column)
	if err != nil {
		return 0, false, err
	}
	switch f.Op {
	case Eq:
		v, err := coerce[V](f.Value, f.Column)
		if err != nil {
			return 0, false, err
		}
		rows, indexed := h.EstimateEqual(v)
		return rows, indexed, nil
	case Between:
		lo, err := coerce[V](f.Value, f.Column)
		if err != nil {
			return 0, false, err
		}
		hi, err := coerce[V](f.Hi, f.Column)
		if err != nil {
			return 0, false, err
		}
		rows, indexed := h.EstimateRange(lo, hi)
		return rows, indexed, nil
	default:
		return 0, false, fmt.Errorf("query: unknown op %v", f.Op)
	}
}

func colIndex(t *table.Table, name string) (int, error) {
	for i, def := range t.Schema() {
		if def.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("query: %w: %q", table.ErrNoColumn, name)
}

// seed produces the driving predicate's candidate rows using the column's
// own access paths (rows visible at the view only).
func seed(t *table.Table, view table.View, f Filter) ([]int, error) {
	ci, err := colIndex(t, f.Column)
	if err != nil {
		return nil, err
	}
	switch t.Schema()[ci].Type {
	case table.Uint32:
		return seedTyped[uint32](t, view, f)
	case table.Uint64:
		return seedTyped[uint64](t, view, f)
	default:
		return seedTyped[string](t, view, f)
	}
}

func seedTyped[V val.Value](t *table.Table, view table.View, f Filter) ([]int, error) {
	h, err := table.ColumnOf[V](t, f.Column)
	if err != nil {
		return nil, err
	}
	switch f.Op {
	case Eq:
		v, err := coerce[V](f.Value, f.Column)
		if err != nil {
			return nil, err
		}
		return h.LookupAt(view, v), nil
	case Between:
		lo, err := coerce[V](f.Value, f.Column)
		if err != nil {
			return nil, err
		}
		hi, err := coerce[V](f.Hi, f.Column)
		if err != nil {
			return nil, err
		}
		return h.RangeAt(view, lo, hi), nil
	default:
		return nil, fmt.Errorf("query: unknown op %v", f.Op)
	}
}

// refine keeps the rows satisfying f, reading the predicate column for
// the whole candidate set with one Handle.Gather call.
func refine(t *table.Table, rows []int, f Filter) ([]int, error) {
	ci, err := colIndex(t, f.Column)
	if err != nil {
		return nil, err
	}
	switch t.Schema()[ci].Type {
	case table.Uint32:
		return refineTyped[uint32](t, rows, f)
	case table.Uint64:
		return refineTyped[uint64](t, rows, f)
	default:
		return refineTyped[string](t, rows, f)
	}
}

func refineTyped[V val.Value](t *table.Table, rows []int, f Filter) ([]int, error) {
	h, err := table.ColumnOf[V](t, f.Column)
	if err != nil {
		return nil, err
	}
	vals, err := h.Gather(rows, make([]V, 0, len(rows)))
	if err != nil {
		return nil, err
	}
	lo, err := coerce[V](f.Value, f.Column)
	if err != nil {
		return nil, err
	}
	hi := lo
	switch f.Op {
	case Eq:
	case Between:
		if hi, err = coerce[V](f.Hi, f.Column); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("query: unknown op %v", f.Op)
	}
	kept := rows[:0]
	for i, r := range rows {
		if vals[i] >= lo && vals[i] <= hi {
			kept = append(kept, r)
		}
	}
	return kept, nil
}

func coerce[V val.Value](raw any, col string) (V, error) {
	var zero V
	if raw == nil {
		return zero, fmt.Errorf("query: nil value for column %q", col)
	}
	if v, ok := raw.(V); ok {
		return v, nil
	}
	// Permit int literals for integer columns, the common call-site form.
	if n, ok := raw.(int); ok && n >= 0 {
		switch any(zero).(type) {
		case uint32:
			if n <= 1<<32-1 {
				return any(uint32(n)).(V), nil
			}
		case uint64:
			return any(uint64(n)).(V), nil
		}
	}
	return zero, fmt.Errorf("query: value %T for column %q (want %T)", raw, col, zero)
}
