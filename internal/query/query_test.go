package query

import (
	"context"
	"math/rand"
	"testing"

	"hyrise/internal/table"
)

func buildOrders(t *testing.T, n int, merge bool) *table.Table {
	t.Helper()
	tb, err := table.New("orders", table.Schema{
		{Name: "customer", Type: table.Uint64},
		{Name: "qty", Type: table.Uint32},
		{Name: "product", Type: table.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	products := []string{"widget", "gadget", "sprocket"}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < n; i++ {
		_, err := tb.Insert([]any{
			uint64(rng.Intn(50)),
			uint32(rng.Intn(20)),
			products[rng.Intn(len(products))],
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if merge {
		if _, err := tb.Merge(context.Background(), table.MergeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// refFilter evaluates filters the slow, obviously-correct way.
func refFilter(t *testing.T, tb *table.Table, match func(row []any) bool) []int {
	t.Helper()
	var out []int
	for r := 0; r < tb.Rows(); r++ {
		if !tb.IsValid(r) {
			continue
		}
		row, err := tb.Row(r)
		if err != nil {
			t.Fatal(err)
		}
		if match(row) {
			out = append(out, r)
		}
	}
	return out
}

func sameRows(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rows %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows %v want %v", got, want)
		}
	}
}

func TestSingleEq(t *testing.T) {
	for _, merged := range []bool{false, true} {
		tb := buildOrders(t, 2000, merged)
		res, err := Run(tb, []Filter{{Column: "customer", Op: Eq, Value: uint64(7)}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := refFilter(t, tb, func(row []any) bool { return row[0].(uint64) == 7 })
		sameRows(t, res.Rows, want)
	}
}

func TestConjunction(t *testing.T) {
	for _, merged := range []bool{false, true} {
		tb := buildOrders(t, 3000, merged)
		res, err := Run(tb, []Filter{
			{Column: "product", Op: Eq, Value: "widget"},
			{Column: "qty", Op: Between, Value: uint32(5), Hi: uint32(10)},
			{Column: "customer", Op: Between, Value: uint64(0), Hi: uint64(25)},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := refFilter(t, tb, func(row []any) bool {
			return row[2].(string) == "widget" &&
				row[1].(uint32) >= 5 && row[1].(uint32) <= 10 &&
				row[0].(uint64) <= 25
		})
		sameRows(t, res.Rows, want)
		if res.Count() != len(want) {
			t.Fatalf("Count=%d", res.Count())
		}
	}
}

func TestRangeDriven(t *testing.T) {
	// No equality filter: a range predicate drives.
	tb := buildOrders(t, 1500, true)
	res, err := Run(tb, []Filter{
		{Column: "customer", Op: Between, Value: uint64(10), Hi: uint64(20)},
		{Column: "qty", Op: Between, Value: uint32(0), Hi: uint32(5)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := refFilter(t, tb, func(row []any) bool {
		c, q := row[0].(uint64), row[1].(uint32)
		return c >= 10 && c <= 20 && q <= 5
	})
	sameRows(t, res.Rows, want)
}

func TestProjection(t *testing.T) {
	tb := buildOrders(t, 500, true)
	res, err := Run(tb, []Filter{
		{Column: "customer", Op: Eq, Value: uint64(3)},
	}, []string{"product", "qty"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "product" || len(res.Values) != len(res.Rows) {
		t.Fatalf("projection shape: %+v", res)
	}
	for i, r := range res.Rows {
		row, _ := tb.Row(r)
		if res.Values[i][0] != row[2] || res.Values[i][1] != row[1] {
			t.Fatalf("projected values %v vs row %v", res.Values[i], row)
		}
	}
}

func TestRespectsinvalidations(t *testing.T) {
	tb := buildOrders(t, 300, false)
	res, _ := Run(tb, []Filter{{Column: "product", Op: Eq, Value: "gadget"}}, nil)
	if res.Count() == 0 {
		t.Skip("no gadgets in sample")
	}
	victim := res.Rows[0]
	if err := tb.Delete(victim); err != nil {
		t.Fatal(err)
	}
	res2, _ := Run(tb, []Filter{{Column: "product", Op: Eq, Value: "gadget"}}, nil)
	if res2.Count() != res.Count()-1 {
		t.Fatalf("count %d want %d", res2.Count(), res.Count()-1)
	}
	for _, r := range res2.Rows {
		if r == victim {
			t.Fatal("deleted row returned")
		}
	}
}

func TestSpansMainAndDelta(t *testing.T) {
	tb := buildOrders(t, 1000, true) // main
	// Add delta rows with a known key.
	tb.Insert([]any{uint64(7), uint32(3), "widget"})
	tb.Insert([]any{uint64(7), uint32(18), "gadget"})
	res, err := Run(tb, []Filter{
		{Column: "customer", Op: Eq, Value: uint64(7)},
		{Column: "product", Op: Eq, Value: "widget"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := refFilter(t, tb, func(row []any) bool {
		return row[0].(uint64) == 7 && row[2].(string) == "widget"
	})
	sameRows(t, res.Rows, want)
}

func TestErrors(t *testing.T) {
	tb := buildOrders(t, 10, false)
	cases := []struct {
		name    string
		filters []Filter
		project []string
	}{
		{"no filters", nil, nil},
		{"bad column", []Filter{{Column: "nope", Op: Eq, Value: uint64(1)}}, nil},
		{"bad type", []Filter{{Column: "customer", Op: Eq, Value: "str"}}, nil},
		{"nil value", []Filter{{Column: "customer", Op: Eq}}, nil},
		{"bad projection", []Filter{{Column: "customer", Op: Eq, Value: uint64(1)}}, []string{"nope"}},
		{"bad hi", []Filter{{Column: "customer", Op: Between, Value: uint64(1), Hi: "x"}}, nil},
	}
	for _, c := range cases {
		if _, err := Run(tb, c.filters, c.project); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestIntLiteralCoercion(t *testing.T) {
	tb := buildOrders(t, 200, true)
	a, err := Run(tb, []Filter{{Column: "customer", Op: Eq, Value: 7}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(tb, []Filter{{Column: "customer", Op: Eq, Value: uint64(7)}}, nil)
	sameRows(t, a.Rows, b.Rows)
	// qty is uint32; int literal works there too.
	if _, err := Run(tb, []Filter{{Column: "qty", Op: Eq, Value: 3}}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConjunctiveQuery(b *testing.B) {
	tb, _ := table.New("t", table.Schema{
		{Name: "a", Type: table.Uint64},
		{Name: "b", Type: table.Uint64},
	})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		tb.Insert([]any{rng.Uint64() % 1000, rng.Uint64() % 1000})
	}
	tb.Merge(context.Background(), table.MergeOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(tb, []Filter{
			{Column: "a", Op: Eq, Value: uint64(i % 1000)},
			{Column: "b", Op: Between, Value: uint64(0), Hi: uint64(500)},
		}, nil)
	}
}
