package query

import "sync/atomic"

// Planner accounting: every RunAt records the driving predicate's
// estimated candidate-set size next to the seed's actual size, so the
// metrics endpoint can expose how well the §4-style cost model predicts
// selectivity (hyrise_query_* series).  Plain package-level atomics — the
// planner has no per-store state to hang them on, and the sums are
// process-wide by design.
var (
	plannerRuns         atomic.Uint64
	plannerEstimated    atomic.Uint64
	plannerActual       atomic.Uint64
	plannerIndexedSeeds atomic.Uint64
)

// PlannerStats is a snapshot of the planner's cumulative accounting.
type PlannerStats struct {
	// Runs counts completed seed phases (one per RunAt that reached the
	// driving predicate).
	Runs uint64
	// EstimatedRows sums the driving predicate's pre-execution estimates;
	// ActualRows sums the seed candidate sets actually produced.  The
	// ratio of the two is the cost model's aggregate selectivity error.
	EstimatedRows uint64
	ActualRows    uint64
	// IndexedSeeds counts runs whose driving predicate was served by a
	// group-key index rather than a scan.
	IndexedSeeds uint64
}

// Planner returns the cumulative planner statistics.
func Planner() PlannerStats {
	return PlannerStats{
		Runs:          plannerRuns.Load(),
		EstimatedRows: plannerEstimated.Load(),
		ActualRows:    plannerActual.Load(),
		IndexedSeeds:  plannerIndexedSeeds.Load(),
	}
}

// recordSeed accumulates one run's estimate-vs-actual pair.
func recordSeed(estimated int, indexed bool, actual int) {
	plannerRuns.Add(1)
	plannerEstimated.Add(uint64(estimated))
	plannerActual.Add(uint64(actual))
	if indexed {
		plannerIndexedSeeds.Add(1)
	}
}
