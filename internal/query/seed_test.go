package query

import (
	"context"
	"testing"

	"hyrise/internal/table"
)

// buildSeedTable returns a merged table with a wide-spread column "k"
// (~1000 distinct), a narrow one "g" (10 distinct), and a string column
// "s" (3 distinct).
func buildSeedTable(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.New("seed", table.Schema{
		{Name: "k", Type: table.Uint64},
		{Name: "g", Type: table.Uint64},
		{Name: "s", Type: table.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	tags := []string{"x", "y", "z"}
	for i := 0; i < 10000; i++ {
		if _, err := tb.Insert([]any{uint64(i % 1000), uint64(i % 10), tags[i%3]}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.Merge(context.Background(), table.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestChooseSeedNarrowestSpread pins the unindexed choice: among plain
// equalities the narrowest dictionary spread (fewest expected rows) drives,
// regardless of filter order.
func TestChooseSeedNarrowestSpread(t *testing.T) {
	tb := buildSeedTable(t)
	filters := []Filter{
		{Column: "s", Op: Eq, Value: "x"},         // ~3333 rows
		{Column: "g", Op: Eq, Value: uint64(4)},   // ~1000 rows
		{Column: "k", Op: Eq, Value: uint64(123)}, // ~10 rows
	}
	if got := chooseSeed(tb, filters); got != 2 {
		t.Fatalf("chooseSeed = %d (%s), want 2 (k: narrowest spread)", got, filters[got].Column)
	}
	// Order independence.
	filters[0], filters[2] = filters[2], filters[0]
	if got := chooseSeed(tb, filters); got != 0 {
		t.Fatalf("chooseSeed = %d, want 0 after reorder", got)
	}
}

// TestChooseSeedPrefersIndex pins the indexed choice: once a column is
// indexed its seed needs no scan, so it beats an unindexed column with a
// smaller expected result as long as the scan cost dominates.
func TestChooseSeedPrefersIndex(t *testing.T) {
	tb := buildSeedTable(t)
	filters := []Filter{
		{Column: "g", Op: Eq, Value: uint64(4)},   // ~1000 rows
		{Column: "k", Op: Eq, Value: uint64(123)}, // ~10 rows, but needs a scan
	}
	if got := chooseSeed(tb, filters); got != 1 {
		t.Fatalf("pre-index chooseSeed = %d, want 1 (k)", got)
	}
	if err := tb.CreateIndex("g"); err != nil {
		t.Fatal(err)
	}
	if got := chooseSeed(tb, filters); got != 0 {
		t.Fatalf("post-index chooseSeed = %d, want 0 (g is indexed)", got)
	}
	// Index k too: both indexed, exact counts decide — k wins again.
	if err := tb.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	if got := chooseSeed(tb, filters); got != 1 {
		t.Fatalf("both indexed chooseSeed = %d, want 1 (k: fewer postings)", got)
	}
}

// TestChooseSeedRange pins range estimation: a narrow Between on the wide
// column beats a wide Between on the narrow column.
func TestChooseSeedRange(t *testing.T) {
	tb := buildSeedTable(t)
	filters := []Filter{
		{Column: "g", Op: Between, Value: uint64(0), Hi: uint64(8)},   // ~9000 rows
		{Column: "k", Op: Between, Value: uint64(10), Hi: uint64(19)}, // ~100 rows
	}
	if got := chooseSeed(tb, filters); got != 1 {
		t.Fatalf("chooseSeed = %d, want 1 (narrow range on k)", got)
	}
}

// TestChooseSeedBadFilterFallsBack: filters that cannot be estimated rank
// last but the query still errors through the normal path.
func TestChooseSeedBadFilter(t *testing.T) {
	tb := buildSeedTable(t)
	filters := []Filter{
		{Column: "missing", Op: Eq, Value: uint64(1)},
		{Column: "k", Op: Eq, Value: uint64(5)},
	}
	if got := chooseSeed(tb, filters); got != 1 {
		t.Fatalf("chooseSeed = %d, want 1 (estimable filter)", got)
	}
	if _, err := Run(tb, filters, nil); err == nil {
		t.Fatal("query with unknown column did not error")
	}
	// All filters bad: falls back to 0 and the error surfaces from seed.
	bad := []Filter{{Column: "missing", Op: Eq, Value: uint64(1)}}
	if got := chooseSeed(tb, bad); got != 0 {
		t.Fatalf("chooseSeed = %d, want 0", got)
	}
}

// TestIndexedQueryDifferential: query results are identical before and
// after indexing every column.
func TestIndexedQueryDifferential(t *testing.T) {
	tb := buildSeedTable(t)
	// Leave a delta tail so both index paths (posting lists + CSB+ range)
	// are exercised.
	for i := 0; i < 500; i++ {
		if _, err := tb.Insert([]any{uint64(i % 1000), uint64(i % 10), "y"}); err != nil {
			t.Fatal(err)
		}
	}
	queries := [][]Filter{
		{{Column: "k", Op: Eq, Value: uint64(77)}, {Column: "g", Op: Eq, Value: uint64(7)}},
		{{Column: "g", Op: Between, Value: uint64(2), Hi: uint64(4)}, {Column: "s", Op: Eq, Value: "z"}},
		{{Column: "k", Op: Between, Value: uint64(900), Hi: uint64(950)}},
	}
	var before []*Result
	for _, q := range queries {
		r, err := Run(tb, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		before = append(before, r)
	}
	for _, col := range []string{"k", "g", "s"} {
		if err := tb.CreateIndex(col); err != nil {
			t.Fatal(err)
		}
	}
	for qi, q := range queries {
		r, err := Run(tb, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != len(before[qi].Rows) {
			t.Fatalf("query %d: %d rows indexed vs %d unindexed", qi, len(r.Rows), len(before[qi].Rows))
		}
		for i := range r.Rows {
			if r.Rows[i] != before[qi].Rows[i] {
				t.Fatalf("query %d row %d: %d vs %d", qi, i, r.Rows[i], before[qi].Rows[i])
			}
		}
	}
}
