package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyrise/internal/colstore"
	"hyrise/internal/delta"
)

func buildColumn(mainVals, deltaVals []uint64) (*colstore.Main[uint64], *delta.Partition[uint64]) {
	m := colstore.FromValues(mainVals)
	d := delta.New[uint64]()
	for _, v := range deltaVals {
		d.Insert(v)
	}
	return m, d
}

// checkMerged verifies the merged partition equals the concatenation of the
// input main and delta values and satisfies all structural invariants.
func checkMerged(t *testing.T, out *colstore.Main[uint64], mainVals, deltaVals []uint64, st Stats) {
	t.Helper()
	want := append(append([]uint64{}, mainVals...), deltaVals...)
	if out.Len() != len(want) {
		t.Fatalf("merged len %d want %d", out.Len(), len(want))
	}
	for i, v := range want {
		if got := out.At(i); got != v {
			t.Fatalf("merged[%d]=%d want %d", i, got, v)
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dictionary is exactly the distinct set.
	distinct := map[uint64]bool{}
	for _, v := range want {
		distinct[v] = true
	}
	if out.Dict().Len() != len(distinct) {
		t.Fatalf("dict len %d want %d", out.Dict().Len(), len(distinct))
	}
	if st.UniqueMerged != len(distinct) {
		t.Fatalf("stats UniqueMerged=%d want %d", st.UniqueMerged, len(distinct))
	}
	if st.NM != len(mainVals) || st.ND != len(deltaVals) {
		t.Fatalf("stats NM/ND = %d/%d want %d/%d", st.NM, st.ND, len(mainVals), len(deltaVals))
	}
}

// TestPaperFigure5 reproduces the worked example of Figures 5 and 6
// end-to-end: the merged partition's codes must match the paper, including
// the code-width growth from 3 to 4 bits.
func TestPaperFigure5(t *testing.T) {
	deltaVals := []string{"bravo", "charlie", "charlie", "golf", "young"}
	// The main partition's dictionary in Figure 5 contains values that do
	// not occur in the figure's four example tuples (apple, inbox, ...);
	// prepend one tuple per dictionary entry so the dictionary matches the
	// figure exactly, then the figure's tuples hotel,delta,frank,delta.
	full := []string{"apple", "charlie", "delta", "frank", "hotel", "inbox",
		"hotel", "delta", "frank", "delta"}
	mFull := colstore.FromValues(full)
	if mFull.Bits() != 3 {
		t.Fatalf("main bits=%d want 3", mFull.Bits())
	}
	d := delta.New[string]()
	for _, v := range deltaVals {
		d.Insert(v)
	}
	for _, alg := range []Algorithm{Optimized, Naive} {
		out, st := MergeColumn(mFull, d, Options{Algorithm: alg, Threads: 1})
		if st.UniqueMerged != 9 {
			t.Fatalf("%v: merged dict %d want 9", alg, st.UniqueMerged)
		}
		if st.BitsAfter != 4 {
			t.Fatalf("%v: bits after %d want 4 (ceil(log2 9))", alg, st.BitsAfter)
		}
		// Paper Figure 6 merged codes for the example tuples
		// hotel,delta,frank,delta: 6,3,4,3; delta rows bravo..young: 1,2,2,5,8.
		wantTail := []uint64{6, 3, 4, 3, 1, 2, 2, 5, 8}
		n := out.Len()
		for i, w := range wantTail {
			if got := out.Codes().Get(n - len(wantTail) + i); got != w {
				t.Fatalf("%v: code[%d]=%d want %d", alg, i, got, w)
			}
		}
		for i := range full {
			if out.At(i) != full[i] {
				t.Fatalf("%v: value[%d]=%q want %q", alg, i, out.At(i), full[i])
			}
		}
		for i, v := range deltaVals {
			if out.At(len(full)+i) != v {
				t.Fatalf("%v: delta value[%d]=%q want %q", alg, i, out.At(len(full)+i), v)
			}
		}
	}
}

func TestMergeAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 25; iter++ {
		nm := rng.Intn(5000)
		nd := rng.Intn(2000)
		domain := uint64(1 + rng.Intn(800))
		mv := make([]uint64, nm)
		for i := range mv {
			mv[i] = rng.Uint64() % domain
		}
		dv := make([]uint64, nd)
		for i := range dv {
			dv[i] = rng.Uint64() % domain
		}
		m, d := buildColumn(mv, dv)
		for _, alg := range []Algorithm{Optimized, Naive} {
			for _, nt := range []int{1, 4} {
				out, st := MergeColumn(m, d, Options{Algorithm: alg, Threads: nt})
				checkMerged(t, out, mv, dv, st)
			}
		}
	}
}

func TestMergeParallelLarge(t *testing.T) {
	// Above both parallel thresholds so the chunked Step 2 and three-phase
	// Step 1(b) actually run.
	rng := rand.New(rand.NewSource(5))
	nm, nd := 200000, 40000
	mv := make([]uint64, nm)
	for i := range mv {
		mv[i] = rng.Uint64() % 50000
	}
	dv := make([]uint64, nd)
	for i := range dv {
		dv[i] = rng.Uint64() % 50000
	}
	m, d := buildColumn(mv, dv)
	ref, _ := MergeColumn(m, d, Options{Threads: 1})
	for _, alg := range []Algorithm{Optimized, Naive} {
		out, st := MergeColumn(m, d, Options{Algorithm: alg, Threads: 8})
		checkMerged(t, out, mv, dv, st)
		if out.Bits() != ref.Bits() {
			t.Fatalf("bits %d want %d", out.Bits(), ref.Bits())
		}
		for _, i := range []int{0, 1, nm - 1, nm, nm + nd - 1} {
			if out.At(i) != ref.At(i) {
				t.Fatalf("%v: mismatch at %d", alg, i)
			}
		}
	}
}

func TestMergeEmptyDelta(t *testing.T) {
	mv := []uint64{5, 1, 5, 9}
	m, d := buildColumn(mv, nil)
	out, st := MergeColumn(m, d, Options{})
	checkMerged(t, out, mv, nil, st)
	if st.UniqueDelta != 0 {
		t.Fatalf("UniqueDelta=%d want 0", st.UniqueDelta)
	}
}

func TestMergeEmptyMain(t *testing.T) {
	dv := []uint64{4, 4, 2, 7}
	m := colstore.Empty[uint64]()
	d := delta.New[uint64]()
	for _, v := range dv {
		d.Insert(v)
	}
	for _, alg := range []Algorithm{Optimized, Naive} {
		out, st := MergeColumn(m, d, Options{Algorithm: alg})
		checkMerged(t, out, nil, dv, st)
	}
}

func TestMergeBothEmpty(t *testing.T) {
	m := colstore.Empty[uint64]()
	d := delta.New[uint64]()
	out, st := MergeColumn(m, d, Options{})
	if out.Len() != 0 || st.UniqueMerged != 0 {
		t.Fatal("empty merge produced tuples")
	}
}

func TestBitWidthGrowth(t *testing.T) {
	// Main has 2 distinct values (1 bit); delta adds enough to need 4 bits.
	mv := []uint64{0, 1, 0, 1}
	dv := []uint64{2, 3, 4, 5, 6, 7, 8}
	m, d := buildColumn(mv, dv)
	out, st := MergeColumn(m, d, Options{})
	if st.BitsBefore != 1 || st.BitsAfter != 4 {
		t.Fatalf("bits %d->%d want 1->4", st.BitsBefore, st.BitsAfter)
	}
	checkMerged(t, out, mv, dv, st)
}

func TestSingleValueColumn(t *testing.T) {
	// One distinct value: 0-bit codes before and after.
	mv := []uint64{7, 7, 7}
	dv := []uint64{7, 7}
	m, d := buildColumn(mv, dv)
	out, st := MergeColumn(m, d, Options{})
	if st.BitsBefore != 0 || st.BitsAfter != 0 {
		t.Fatalf("bits %d->%d want 0->0", st.BitsBefore, st.BitsAfter)
	}
	checkMerged(t, out, mv, dv, st)
}

func TestRepeatedMergeCycles(t *testing.T) {
	// Merge, refill delta, merge again — five generations.
	rng := rand.New(rand.NewSource(77))
	m := colstore.Empty[uint64]()
	var all []uint64
	for gen := 0; gen < 5; gen++ {
		d := delta.New[uint64]()
		for i := 0; i < 1000; i++ {
			v := rng.Uint64() % 300
			d.Insert(v)
			all = append(all, v)
		}
		var st Stats
		m, st = MergeColumn(m, d, Options{Threads: 2})
		if st.NM+st.ND != len(all) {
			t.Fatalf("gen %d: size %d want %d", gen, st.NM+st.ND, len(all))
		}
	}
	for i, v := range all {
		if m.At(i) != v {
			t.Fatalf("final[%d]=%d want %d", i, m.At(i), v)
		}
	}
}

func TestStatsTimingsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mv := make([]uint64, 50000)
	for i := range mv {
		mv[i] = rng.Uint64() % 10000
	}
	dv := make([]uint64, 10000)
	for i := range dv {
		dv[i] = rng.Uint64() % 10000
	}
	m, d := buildColumn(mv, dv)
	_, st := MergeColumn(m, d, Options{})
	if st.Step1a <= 0 || st.Step1b <= 0 || st.Step2 <= 0 {
		t.Fatalf("step timings not populated: %+v", st)
	}
	if st.Total() != st.Step1a+st.Step1b+st.Step2 {
		t.Fatal("Total mismatch")
	}
	if st.Step1() != st.Step1a+st.Step1b {
		t.Fatal("Step1 mismatch")
	}
	if cpt := st.CyclesPerTuple(st.Total(), 3.3e9); cpt <= 0 {
		t.Fatalf("CyclesPerTuple=%f", cpt)
	}
	if st.ValueBytes != 8 {
		t.Fatalf("ValueBytes=%d want 8", st.ValueBytes)
	}
}

func TestAlignedChunks(t *testing.T) {
	for _, bits := range []uint{0, 1, 3, 8, 13, 17, 64} {
		for _, total := range []int{0, 1, 100, 12345} {
			for _, nt := range []int{1, 3, 8} {
				b := alignedChunks(bits, total, nt)
				if b[0] != 0 || b[len(b)-1] != total {
					t.Fatalf("bits=%d total=%d nt=%d: bounds %v", bits, total, nt, b)
				}
				for i := 1; i < len(b); i++ {
					if b[i] <= b[i-1] && !(total == 0 && len(b) == 2) {
						t.Fatalf("non-increasing bounds %v", b)
					}
					if i < len(b)-1 && bits != 0 {
						g := bitpackGroup(bits)
						if b[i]%g != 0 {
							t.Fatalf("bits=%d: bound %d not aligned to %d", bits, b[i], g)
						}
					}
				}
			}
		}
	}
}

func bitpackGroup(bits uint) int {
	return 64 / gcd(int(bits), 64)
}

func TestQuickMergeEquivalence(t *testing.T) {
	f := func(mraw, draw []uint16, threads uint8) bool {
		mv := make([]uint64, len(mraw))
		for i, r := range mraw {
			mv[i] = uint64(r % 300)
		}
		dv := make([]uint64, len(draw))
		for i, r := range draw {
			dv[i] = uint64(r % 300)
		}
		m, d := buildColumn(mv, dv)
		nt := int(threads%4) + 1
		opt, _ := MergeColumn(m, d, Options{Algorithm: Optimized, Threads: nt})
		nav, _ := MergeColumn(m, d, Options{Algorithm: Naive, Threads: nt})
		if opt.Len() != nav.Len() || opt.Dict().Len() != nav.Dict().Len() {
			return false
		}
		for i := 0; i < opt.Len(); i++ {
			if opt.At(i) != nav.At(i) {
				return false
			}
		}
		want := append(append([]uint64{}, mv...), dv...)
		for i, v := range want {
			if opt.At(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringMerge(t *testing.T) {
	mv := []string{"bb", "aa", "bb"}
	m := colstore.FromValues(mv)
	d := delta.New[string]()
	dv := []string{"cc", "aa", "dd"}
	for _, v := range dv {
		d.Insert(v)
	}
	out, st := MergeColumn(m, d, Options{})
	if st.ValueBytes != 16 {
		t.Fatalf("ValueBytes=%d want 16 for strings", st.ValueBytes)
	}
	want := append(append([]string{}, mv...), dv...)
	for i, v := range want {
		if out.At(i) != v {
			t.Fatalf("[%d]=%q want %q", i, out.At(i), v)
		}
	}
}

func benchMerge(b *testing.B, alg Algorithm, nt int) {
	rng := rand.New(rand.NewSource(1))
	mv := make([]uint64, 1<<20)
	for i := range mv {
		mv[i] = rng.Uint64() % (1 << 17)
	}
	dv := make([]uint64, 1<<16)
	for i := range dv {
		dv[i] = rng.Uint64() % (1 << 17)
	}
	m, d := buildColumn(mv, dv)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeColumn(m, d, Options{Algorithm: alg, Threads: nt})
	}
}

func BenchmarkMergeOptimizedSerial(b *testing.B)   { benchMerge(b, Optimized, 1) }
func BenchmarkMergeOptimizedParallel(b *testing.B) { benchMerge(b, Optimized, 0) }
func BenchmarkMergeNaiveSerial(b *testing.B)       { benchMerge(b, Naive, 1) }
func BenchmarkMergeNaiveParallel(b *testing.B)     { benchMerge(b, Naive, 0) }
