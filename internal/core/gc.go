package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"hyrise/internal/bitpack"
	"hyrise/internal/colstore"
	"hyrise/internal/delta"
	"hyrise/internal/dict"
	"hyrise/internal/val"
)

// gcBlock is the survivor-accounting granularity of the parallel GC merge:
// per-block survivor counts plus their prefix sums let a Step 2 worker
// locate the input position of its first output tuple in O(total/gcBlock)
// search plus one intra-block walk.
const gcBlock = 4096

// MergeColumnGC is MergeColumn with garbage collection: positions of
// main+delta marked true in drop (indexed like the merged output — main
// tuples first, then delta tuples) are omitted from the new main partition,
// and dictionary values referenced only by dropped tuples are omitted from
// the merged dictionary.  The inputs are left untouched, exactly as in
// MergeColumn, so the table layer can still run the merge online.
//
// With a nil or all-false mask this delegates to MergeColumn (which keeps
// the parallel fast paths); the GC path itself stays linear —
// O(N_M + N_D + |U_M| + |U_D|) — by reusing the translation-table shape of
// the optimized merge on dictionaries first compacted to surviving values.
//
// With Options.Threads > 1 and enough tuples, both the used-mask pass and
// the Step 2 rewrite are range-partitioned across workers: the output is
// split at word-aligned boundaries, each worker locates its first surviving
// input via the per-block survivor prefix sums, and writes a disjoint
// output slice — so one oversized shard no longer serializes compaction.
func MergeColumnGC[V val.Value](m *colstore.Main[V], d *delta.Partition[V], drop []bool, opts Options) (*colstore.Main[V], Stats) {
	dropped := 0
	for _, dr := range drop {
		if dr {
			dropped++
		}
	}
	if dropped == 0 {
		return MergeColumn(m, d, opts)
	}
	nt := opts.EffectiveThreads()
	st := Stats{
		Algorithm:  opts.Algorithm,
		Threads:    nt,
		NM:         m.Len(),
		ND:         d.Len(),
		UniqueMain: m.Dict().Len(),
		BitsBefore: m.Bits(),
		ValueBytes: valueBytes[V](),
		Dropped:    dropped,
	}

	// The dictionary subroutines (extract, sorted merge) compute identical
	// results at any thread count, so cap their workers at the processor
	// count — goroutines beyond it are pure scheduling overhead.  The
	// range-partitioned mask and Step 2 paths below stay Threads-driven:
	// their output layout is what the equivalence tests pin down.
	dictNT := min(nt, runtime.GOMAXPROCS(0))

	// Step 1(a): delta dictionary + delta code rewrite (CSB+ traversal).
	t0 := time.Now()
	var dictD *dict.Dict[V]
	var deltaCodes []uint32
	if dictNT > 1 {
		dictD, deltaCodes = d.ExtractDictParallel(dictNT)
	} else {
		dictD, deltaCodes = d.ExtractDict()
	}
	st.Step1a = time.Since(t0)
	st.UniqueDelta = dictD.Len()

	nm := m.Len()
	total := nm + len(deltaCodes)
	parallel := nt > 1 && total >= parallelStep2Threshold

	// Step 1(b): mark the dictionary codes surviving tuples still
	// reference, compact both dictionaries to those values, then run the
	// usual two-pointer merge with translation tables over the compacted
	// dictionaries.  Values referenced only by reclaimed versions vanish
	// from the merged dictionary along with their tuples.  The parallel
	// variant builds per-worker masks (OR-ed serially afterwards — no
	// shared writes) and per-block survivor counts for Step 2.
	t0 = time.Now()
	usedM := make([]bool, m.Dict().Len())
	usedD := make([]bool, dictD.Len())
	markSerial := func(blockKept []int) {
		r := m.Codes().Reader()
		for i := 0; i < nm; i++ {
			code := r.Next()
			if !at(drop, i) {
				usedM[code] = true
				if blockKept != nil {
					blockKept[i/gcBlock]++
				}
			}
		}
		for j, dc := range deltaCodes {
			if !at(drop, nm+j) {
				usedD[dc] = true
				if blockKept != nil {
					blockKept[(nm+j)/gcBlock]++
				}
			}
		}
	}
	var pref []int // survivor count prefix per gcBlock, parallel path only
	if parallel {
		bounds := blockChunks(total, nt, gcBlock)
		nw := len(bounds) - 1
		blockKept := make([]int, (total+gcBlock-1)/gcBlock)
		// Per-worker masks cost O(workers * |dictionary|) in allocation,
		// zeroing, and the serial OR afterwards.  That only pays off when
		// the dictionaries are small next to the tuple count; with wide
		// dictionaries the O(total) mark pass stays serial and Step 2
		// carries the parallelism.
		if (len(usedM)+len(usedD))*nw <= total {
			localM := make([][]bool, nw)
			localD := make([][]bool, nw)
			var wg sync.WaitGroup
			for k := 0; k < nw; k++ {
				wg.Add(1)
				go func(k, lo, hi int) {
					defer wg.Done()
					um := make([]bool, len(usedM))
					ud := make([]bool, len(usedD))
					if lo < nm {
						r := m.Codes().ReaderAt(lo)
						end := min(hi, nm)
						for i := lo; i < end; i++ {
							code := r.Next()
							if !at(drop, i) {
								um[code] = true
								blockKept[i/gcBlock]++
							}
						}
					}
					for i := max(lo, nm); i < hi; i++ {
						if !at(drop, i) {
							ud[deltaCodes[i-nm]] = true
							blockKept[i/gcBlock]++
						}
					}
					localM[k], localD[k] = um, ud
				}(k, bounds[k], bounds[k+1])
			}
			wg.Wait()
			for k := 0; k < nw; k++ {
				orInto(usedM, localM[k])
				orInto(usedD, localD[k])
			}
		} else {
			markSerial(blockKept)
		}
		pref = make([]int, len(blockKept)+1)
		for b, c := range blockKept {
			pref[b+1] = pref[b] + c
		}
	} else {
		markSerial(nil)
	}
	dictMc, remapM := compactDict(m.Dict(), usedM)
	dictDc, remapD := compactDict(dictD, usedD)
	var res dict.MergeResult[V]
	if dictNT > 1 && dictMc.Len()+dictDc.Len() >= parallelDictThreshold {
		res = dict.MergeParallel(dictMc, dictDc, dictNT)
	} else {
		res = dict.Merge(dictMc, dictDc)
	}
	st.Step1b = time.Since(t0)
	st.UniqueMerged = res.Merged.Len()
	outTotal := total - dropped
	if outTotal == 0 {
		return colstore.Empty[V](), st
	}

	// Step 2: write surviving tuples' codes through remap + translation
	// table.  Output positions are the survivors' ranks; the parallel path
	// splits the output at word-aligned boundaries, ranks each boundary
	// back to its input position through the survivor prefix sums, and
	// lets every worker emit a disjoint output slice.
	bits := bitpack.MinBits(res.Merged.Len())
	st.BitsAfter = bits
	t0 = time.Now()
	w := bitpack.NewWriter(bits, outTotal)
	if parallel {
		bounds := alignedChunks(bits, outTotal, nt)
		var wg sync.WaitGroup
		for k := 0; k+1 < len(bounds); k++ {
			wg.Add(1)
			go func(outLo, outHi int) {
				defer wg.Done()
				i := survivorStart(pref, drop, total, outLo)
				out := outLo
				if i < nm {
					r := m.Codes().ReaderAt(i)
					for ; i < nm && out < outHi; i++ {
						code := r.Next()
						if !at(drop, i) {
							w.WriteAt(out, uint64(res.XM[remapM[code]]))
							out++
						}
					}
				}
				for ; out < outHi; i++ {
					if !at(drop, i) {
						w.WriteAt(out, uint64(res.XD[remapD[deltaCodes[i-nm]]]))
						out++
					}
				}
			}(bounds[k], bounds[k+1])
		}
		wg.Wait()
		w.SetLen(outTotal)
	} else {
		r := m.Codes().Reader()
		for i := 0; i < nm; i++ {
			code := r.Next()
			if !at(drop, i) {
				w.Write(uint64(res.XM[remapM[code]]))
			}
		}
		for j, dc := range deltaCodes {
			if !at(drop, nm+j) {
				w.Write(uint64(res.XD[remapD[dc]]))
			}
		}
	}
	st.Step2 = time.Since(t0)
	return colstore.New(res.Merged, w.Vector()), st
}

// at reads the drop mask, treating positions beyond its length as kept.
func at(drop []bool, i int) bool { return i < len(drop) && drop[i] }

// orInto merges a worker's local used mask into the shared one.
func orInto(dst, src []bool) {
	for i, u := range src {
		if u {
			dst[i] = true
		}
	}
}

// blockChunks partitions [0, total) into at most nt ranges whose
// boundaries are multiples of block, so per-block counters touched by
// different workers never overlap.
func blockChunks(total, nt, block int) []int {
	bounds := []int{0}
	for i := 1; i < nt; i++ {
		b := total * i / nt
		b -= b % block
		if b <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, b)
	}
	return append(bounds, total)
}

// survivorStart returns the input position of the target-th survivor
// (0-indexed) given the per-gcBlock survivor prefix sums: binary-search the
// containing block, then walk at most one block.
func survivorStart(pref []int, drop []bool, total, target int) int {
	if target >= pref[len(pref)-1] {
		return total
	}
	b := sort.Search(len(pref)-1, func(b int) bool { return pref[b+1] > target })
	cnt := pref[b]
	for i := b * gcBlock; i < total; i++ {
		if !at(drop, i) {
			if cnt == target {
				return i
			}
			cnt++
		}
	}
	return total
}

// compactDict filters a sorted dictionary to the values marked used,
// returning the compacted dictionary and the old-code -> compact-code
// remapping (entries for unused codes are meaningless, and never read).
func compactDict[V val.Value](d *dict.Dict[V], used []bool) (*dict.Dict[V], []uint32) {
	kept := make([]V, 0, len(used))
	remap := make([]uint32, len(used))
	for code, u := range used {
		if u {
			remap[code] = uint32(len(kept))
			kept = append(kept, d.At(code))
		}
	}
	return dict.FromSorted(kept), remap
}
