package core

import (
	"time"

	"hyrise/internal/bitpack"
	"hyrise/internal/colstore"
	"hyrise/internal/delta"
	"hyrise/internal/dict"
	"hyrise/internal/val"
)

// MergeColumnGC is MergeColumn with garbage collection: positions of
// main+delta marked true in drop (indexed like the merged output — main
// tuples first, then delta tuples) are omitted from the new main partition,
// and dictionary values referenced only by dropped tuples are omitted from
// the merged dictionary.  The inputs are left untouched, exactly as in
// MergeColumn, so the table layer can still run the merge online.
//
// With a nil or all-false mask this delegates to MergeColumn (which keeps
// the parallel fast paths); the GC path itself stays linear —
// O(N_M + N_D + |U_M| + |U_D|) — by reusing the translation-table shape of
// the optimized merge on dictionaries first compacted to surviving values.
func MergeColumnGC[V val.Value](m *colstore.Main[V], d *delta.Partition[V], drop []bool, opts Options) (*colstore.Main[V], Stats) {
	dropped := 0
	for _, dr := range drop {
		if dr {
			dropped++
		}
	}
	if dropped == 0 {
		return MergeColumn(m, d, opts)
	}
	st := Stats{
		Algorithm:  opts.Algorithm,
		Threads:    1,
		NM:         m.Len(),
		ND:         d.Len(),
		UniqueMain: m.Dict().Len(),
		BitsBefore: m.Bits(),
		ValueBytes: valueBytes[V](),
		Dropped:    dropped,
	}

	// Step 1(a): delta dictionary + delta code rewrite (CSB+ traversal).
	t0 := time.Now()
	dictD, deltaCodes := d.ExtractDict()
	st.Step1a = time.Since(t0)
	st.UniqueDelta = dictD.Len()

	// Step 1(b): mark the dictionary codes surviving tuples still
	// reference, compact both dictionaries to those values, then run the
	// usual two-pointer merge with translation tables over the compacted
	// dictionaries.  Values referenced only by reclaimed versions vanish
	// from the merged dictionary along with their tuples.
	t0 = time.Now()
	nm := m.Len()
	usedM := make([]bool, m.Dict().Len())
	r := m.Codes().Reader()
	for i := 0; i < nm; i++ {
		code := r.Next()
		if !at(drop, i) {
			usedM[code] = true
		}
	}
	usedD := make([]bool, dictD.Len())
	for j, dc := range deltaCodes {
		if !at(drop, nm+j) {
			usedD[dc] = true
		}
	}
	dictMc, remapM := compactDict(m.Dict(), usedM)
	dictDc, remapD := compactDict(dictD, usedD)
	res := dict.Merge(dictMc, dictDc)
	st.Step1b = time.Since(t0)
	st.UniqueMerged = res.Merged.Len()
	if nm+len(deltaCodes)-dropped == 0 {
		return colstore.Empty[V](), st
	}

	// Step 2: write surviving tuples' codes through remap + translation
	// table.  Output positions are the survivors' ranks, so this pass runs
	// serially with a running write index.
	bits := bitpack.MinBits(res.Merged.Len())
	st.BitsAfter = bits
	t0 = time.Now()
	w := bitpack.NewWriter(bits, nm+len(deltaCodes)-dropped)
	r = m.Codes().Reader()
	for i := 0; i < nm; i++ {
		code := r.Next()
		if !at(drop, i) {
			w.Write(uint64(res.XM[remapM[code]]))
		}
	}
	for j, dc := range deltaCodes {
		if !at(drop, nm+j) {
			w.Write(uint64(res.XD[remapD[dc]]))
		}
	}
	st.Step2 = time.Since(t0)
	return colstore.New(res.Merged, w.Vector()), st
}

// at reads the drop mask, treating positions beyond its length as kept.
func at(drop []bool, i int) bool { return i < len(drop) && drop[i] }

// compactDict filters a sorted dictionary to the values marked used,
// returning the compacted dictionary and the old-code -> compact-code
// remapping (entries for unused codes are meaningless, and never read).
func compactDict[V val.Value](d *dict.Dict[V], used []bool) (*dict.Dict[V], []uint32) {
	kept := make([]V, 0, len(used))
	remap := make([]uint32, len(used))
	for code, u := range used {
		if u {
			remap[code] = uint32(len(kept))
			kept = append(kept, d.At(code))
		}
	}
	return dict.FromSorted(kept), remap
}
