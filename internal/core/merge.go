// Package core implements the paper's primary contribution: the merge
// process that combines a column's compressed main partition with its
// uncompressed delta partition into a new compressed main partition
// (paper §5 and §6).
//
// Three variants are provided, all selected through Options:
//
//   - Naive (§5.1–5.2): Step 1 builds the merged dictionary without
//     auxiliary structures; Step 2 recomputes every tuple's code by
//     materializing through the old dictionary and binary-searching the new
//     one — O(N_M + (N_M+N_D)·log|U'_M|) (Equation 5).
//   - Optimized (§5.3): Step 1(a) rewrites the delta to codes during the
//     CSB+ leaf traversal; Step 1(b) additionally emits the translation
//     tables X_M and X_D; Step 2 becomes a table lookup per tuple
//     (Equation 11) — O(N_M + N_D + |U_M| + |U_D|) (Equation 6).
//   - Either variant runs single-threaded or parallelized (§6.2):
//     Step 1(b) uses the three-phase co-ranked merge, Step 2 splits the
//     output into word-aligned chunks processed by independent goroutines.
//
// MergeColumn returns the new main partition; the input main and delta are
// not modified, which is what allows the table layer to run the merge
// online against a snapshot while new writes accumulate in a second delta
// (paper §3).
package core

import (
	"fmt"
	"runtime"
	"time"

	"hyrise/internal/bitpack"
	"hyrise/internal/colstore"
	"hyrise/internal/delta"
	"hyrise/internal/dict"
	"hyrise/internal/val"
)

// Algorithm selects the merge variant.
type Algorithm int

const (
	// Optimized is the paper's linear-time algorithm with auxiliary
	// translation tables (§5.3).
	Optimized Algorithm = iota
	// Naive is the baseline algorithm whose Step 2 performs a dictionary
	// materialization plus binary search per tuple (§5.2).
	Naive
)

// String returns the variant name used in experiment output.
func (a Algorithm) String() string {
	switch a {
	case Optimized:
		return "optimized"
	case Naive:
		return "naive"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a merge.
type Options struct {
	// Algorithm selects Naive or Optimized; the zero value is Optimized.
	Algorithm Algorithm
	// Threads is the number of worker goroutines N_T; values <= 1 select
	// the serial implementation, 0 means runtime.GOMAXPROCS(0).
	Threads int
}

// EffectiveThreads resolves the Threads field.
func (o Options) EffectiveThreads() int {
	if o.Threads == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// Stats records the outcome and per-step timings of one column merge.
// Durations follow the paper's step naming (§5): Step 1(a) delta dictionary
// extraction, Step 1(b) dictionary merge, Step 2 compressed-value update.
type Stats struct {
	Algorithm Algorithm
	Threads   int

	NM, ND       int // tuples in main / delta before the merge
	UniqueMain   int // |U_M|
	UniqueDelta  int // |U_D|
	UniqueMerged int // |U'_M|

	BitsBefore uint // E_C
	BitsAfter  uint // E'_C
	ValueBytes int  // E_j (16 assumed for variable-length values)

	// Dropped counts tuples reclaimed by a garbage-collecting merge
	// (MergeColumnGC); 0 for plain merges.
	Dropped int

	Step1a, Step1b, Step2 time.Duration
}

// Step1 returns the combined dictionary phase duration.
func (s Stats) Step1() time.Duration { return s.Step1a + s.Step1b }

// Total returns the full merge duration T_M for this column.
func (s Stats) Total() time.Duration { return s.Step1a + s.Step1b + s.Step2 }

// CyclesPerTuple converts a duration to the paper's "update cost" unit:
// amortized CPU cycles per tuple at the given clock rate, over N_M + N_D
// tuples (§7).
func (s Stats) CyclesPerTuple(d time.Duration, hz float64) float64 {
	tuples := float64(s.NM + s.ND)
	if tuples == 0 {
		return 0
	}
	return d.Seconds() * hz / tuples
}

// MergeColumn merges one column's main and delta partitions into a new
// main partition (the inputs are left untouched).  The delta may be empty;
// the result is then a re-encoded copy of the main partition.
func MergeColumn[V val.Value](m *colstore.Main[V], d *delta.Partition[V], opts Options) (*colstore.Main[V], Stats) {
	nt := opts.EffectiveThreads()
	st := Stats{
		Algorithm:  opts.Algorithm,
		Threads:    nt,
		NM:         m.Len(),
		ND:         d.Len(),
		UniqueMain: m.Dict().Len(),
		BitsBefore: m.Bits(),
		ValueBytes: valueBytes[V](),
	}
	switch opts.Algorithm {
	case Naive:
		out := mergeNaive(m, d, nt, &st)
		return out, st
	default:
		out := mergeOptimized(m, d, nt, &st)
		return out, st
	}
}

func valueBytes[V val.Value]() int {
	if n := val.FixedSize[V](); n > 0 {
		return n
	}
	return 16
}

// mergeOptimized is the paper's linear-time merge (§5.3, parallelized per
// §6.2).
func mergeOptimized[V val.Value](m *colstore.Main[V], d *delta.Partition[V], nt int, st *Stats) *colstore.Main[V] {
	// Step 1(a): delta dictionary + delta code rewrite via CSB+ traversal.
	t0 := time.Now()
	var dictD *dict.Dict[V]
	var deltaCodes []uint32
	if nt > 1 {
		dictD, deltaCodes = d.ExtractDictParallel(nt)
	} else {
		dictD, deltaCodes = d.ExtractDict()
	}
	st.Step1a = time.Since(t0)
	st.UniqueDelta = dictD.Len()

	// Step 1(b): merge dictionaries, emitting X_M and X_D.
	t0 = time.Now()
	var res dict.MergeResult[V]
	if nt > 1 && m.Dict().Len()+dictD.Len() >= parallelDictThreshold {
		res = dict.MergeParallel(m.Dict(), dictD, nt)
	} else {
		res = dict.Merge(m.Dict(), dictD)
	}
	st.Step1b = time.Since(t0)
	st.UniqueMerged = res.Merged.Len()

	// Step 2(a): new compressed value-length (Equation 4).
	bits := bitpack.MinBits(res.Merged.Len())
	st.BitsAfter = bits

	// Step 2(b): rewrite codes via translation-table lookups (Equation 11).
	t0 = time.Now()
	total := m.Len() + d.Len()
	w := bitpack.NewWriter(bits, total)
	if nt > 1 && total >= parallelStep2Threshold {
		parallelFor(total, nt, alignedChunks(bits, total, nt), func(lo, hi int) {
			nm := m.Len()
			if lo < nm {
				r := m.Codes().ReaderAt(lo)
				end := hi
				if end > nm {
					end = nm
				}
				for i := lo; i < end; i++ {
					w.WriteAt(i, uint64(res.XM[r.Next()]))
				}
			}
			for i := max(lo, nm); i < hi; i++ {
				w.WriteAt(i, uint64(res.XD[deltaCodes[i-nm]]))
			}
		})
		w.SetLen(total)
	} else {
		r := m.Codes().Reader()
		for i := 0; i < m.Len(); i++ {
			w.Write(uint64(res.XM[r.Next()]))
		}
		for _, dc := range deltaCodes {
			w.Write(uint64(res.XD[dc]))
		}
	}
	st.Step2 = time.Since(t0)
	return colstore.New(res.Merged, w.Vector())
}

// mergeNaive is the baseline (§5.1–5.2): no auxiliary structures; Step 2
// pays a dictionary materialization plus a binary search per tuple.
func mergeNaive[V val.Value](m *colstore.Main[V], d *delta.Partition[V], nt int, st *Stats) *colstore.Main[V] {
	// Step 1(a): delta dictionary only (leaf traversal, no rewrite).
	t0 := time.Now()
	dictD := dict.FromSorted(d.SortedUnique())
	st.Step1a = time.Since(t0)
	st.UniqueDelta = dictD.Len()

	// Step 1(b): dictionary merge without translation tables.
	t0 = time.Now()
	merged := dict.MergeNoAux(m.Dict(), dictD)
	st.Step1b = time.Since(t0)
	st.UniqueMerged = merged.Len()

	bits := bitpack.MinBits(merged.Len())
	st.BitsAfter = bits

	// Step 2(b): per-tuple binary search (Equation 5).
	t0 = time.Now()
	total := m.Len() + d.Len()
	w := bitpack.NewWriter(bits, total)
	oldDict := m.Dict()
	lookup := func(v V) uint64 {
		c, ok := merged.Lookup(v)
		if !ok {
			panic("core: merged dictionary misses value")
		}
		return uint64(c)
	}
	if nt > 1 && total >= parallelStep2Threshold {
		parallelFor(total, nt, alignedChunks(bits, total, nt), func(lo, hi int) {
			nm := m.Len()
			if lo < nm {
				r := m.Codes().ReaderAt(lo)
				end := hi
				if end > nm {
					end = nm
				}
				for i := lo; i < end; i++ {
					w.WriteAt(i, lookup(oldDict.At(int(r.Next()))))
				}
			}
			for i := max(lo, nm); i < hi; i++ {
				w.WriteAt(i, lookup(d.Get(i-nm)))
			}
		})
		w.SetLen(total)
	} else {
		r := m.Codes().Reader()
		for i := 0; i < m.Len(); i++ {
			w.Write(lookup(oldDict.At(int(r.Next()))))
		}
		for i := 0; i < d.Len(); i++ {
			w.Write(lookup(d.Get(i)))
		}
	}
	st.Step2 = time.Since(t0)
	return colstore.New(merged, w.Vector())
}

const (
	// parallelDictThreshold is the combined dictionary size below which the
	// three-phase parallel merge is not worth its coordination overhead.
	parallelDictThreshold = 1 << 13
	// parallelStep2Threshold is the tuple count below which Step 2 runs
	// serially.
	parallelStep2Threshold = 1 << 14
)

// alignedChunks partitions [0, total) into at most nt ranges whose
// boundaries land on 64-bit word boundaries of the packed output, so
// concurrent WriteAt calls never touch the same word.
func alignedChunks(bits uint, total, nt int) []int {
	group := 1
	if bits != 0 {
		group = bitpack.WordBits / gcd(int(bits), bitpack.WordBits)
	}
	bounds := []int{0}
	for i := 1; i < nt; i++ {
		b := total * i / nt
		b -= b % group
		if b <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, b)
	}
	bounds = append(bounds, total)
	return bounds
}

// parallelFor runs body over the half-open ranges defined by bounds.
func parallelFor(total, nt int, bounds []int, body func(lo, hi int)) {
	done := make(chan struct{}, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		go func(lo, hi int) {
			body(lo, hi)
			done <- struct{}{}
		}(bounds[i], bounds[i+1])
	}
	for i := 0; i+1 < len(bounds); i++ {
		<-done
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
