package core

import (
	"math/rand"
	"testing"

	"hyrise/internal/colstore"
)

// sameMain asserts two main partitions are identical: dictionary values,
// code width and every decoded tuple.
func sameMain(t *testing.T, got, want *colstore.Main[uint64]) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("len %d want %d", got.Len(), want.Len())
	}
	gd, wd := got.Dict().Values(), want.Dict().Values()
	if len(gd) != len(wd) {
		t.Fatalf("dict len %d want %d", len(gd), len(wd))
	}
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("dict[%d]=%d want %d", i, gd[i], wd[i])
		}
	}
	if got.Bits() != want.Bits() {
		t.Fatalf("bits %d want %d", got.Bits(), want.Bits())
	}
	for i := 0; i < want.Len(); i++ {
		if g, w := got.At(i), want.At(i); g != w {
			t.Fatalf("tuple[%d]=%d want %d", i, g, w)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// gcCase runs MergeColumnGC single-threaded and with several thread counts
// over the same inputs and asserts identical outputs.
func gcCase(t *testing.T, mainVals, deltaVals []uint64, drop []bool) {
	t.Helper()
	m, d := buildColumn(mainVals, deltaVals)
	want, wantSt := MergeColumnGC(m, d, drop, Options{Threads: 1})
	dropped := 0
	for _, dr := range drop {
		if dr {
			dropped++
		}
	}
	if want.Len() != len(mainVals)+len(deltaVals)-dropped {
		t.Fatalf("serial GC merge kept %d of %d-%d", want.Len(), len(mainVals)+len(deltaVals), dropped)
	}
	for _, nt := range []int{2, 3, 4, 8} {
		got, st := MergeColumnGC(m, d, drop, Options{Threads: nt})
		sameMain(t, got, want)
		if st.Dropped != wantSt.Dropped {
			t.Fatalf("nt=%d: Dropped=%d want %d", nt, st.Dropped, wantSt.Dropped)
		}
	}
}

// TestParallelGCMergeEquivalence checks, over random value distributions
// and drop masks large enough to engage the parallel path, that the
// range-partitioned GC merge is tuple-identical to the serial one.
func TestParallelGCMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Exceed parallelStep2Threshold so the parallel Step 2 actually runs.
	for _, shape := range []struct {
		name     string
		nm, nd   int
		card     uint64
		dropFrac float64
	}{
		{"wide-sparse-drop", 3 * parallelStep2Threshold, parallelStep2Threshold / 2, 1 << 20, 0.05},
		{"narrow-heavy-drop", 2 * parallelStep2Threshold, parallelStep2Threshold, 7, 0.6},
		{"byte-codes", parallelStep2Threshold + 1, 333, 200, 0.3},
		{"below-threshold", 1000, 200, 50, 0.4}, // parallel path gated off; still must agree
	} {
		t.Run(shape.name, func(t *testing.T) {
			mainVals := make([]uint64, shape.nm)
			for i := range mainVals {
				mainVals[i] = rng.Uint64() % shape.card
			}
			deltaVals := make([]uint64, shape.nd)
			for i := range deltaVals {
				deltaVals[i] = rng.Uint64() % shape.card
			}
			drop := make([]bool, shape.nm+shape.nd)
			for i := range drop {
				drop[i] = rng.Float64() < shape.dropFrac
			}
			gcCase(t, mainVals, deltaVals, drop)
		})
	}
}

// TestParallelGCMergeEdgeMasks exercises the drop-mask boundary semantics:
// masks shorter than the tuple count (tail kept unconditionally), all-main
// dropped, all-delta dropped, everything dropped.
func TestParallelGCMergeEdgeMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nm, nd := parallelStep2Threshold+17, 1024
	mainVals := make([]uint64, nm)
	for i := range mainVals {
		mainVals[i] = rng.Uint64() % 512
	}
	deltaVals := make([]uint64, nd)
	for i := range deltaVals {
		deltaVals[i] = rng.Uint64() % 512
	}

	t.Run("short-mask", func(t *testing.T) {
		drop := make([]bool, nm/2) // covers only half the main partition
		for i := range drop {
			drop[i] = i%3 == 0
		}
		gcCase(t, mainVals, deltaVals, drop)
	})
	t.Run("drop-all-main", func(t *testing.T) {
		drop := make([]bool, nm+nd)
		for i := 0; i < nm; i++ {
			drop[i] = true
		}
		gcCase(t, mainVals, deltaVals, drop)
	})
	t.Run("drop-all-delta", func(t *testing.T) {
		drop := make([]bool, nm+nd)
		for i := nm; i < nm+nd; i++ {
			drop[i] = true
		}
		gcCase(t, mainVals, deltaVals, drop)
	})
	t.Run("drop-everything", func(t *testing.T) {
		drop := make([]bool, nm+nd)
		for i := range drop {
			drop[i] = true
		}
		m, d := buildColumn(mainVals, deltaVals)
		for _, nt := range []int{1, 4} {
			out, st := MergeColumnGC(m, d, drop, Options{Threads: nt})
			if out.Len() != 0 || st.Dropped != nm+nd {
				t.Fatalf("nt=%d: len=%d dropped=%d", nt, out.Len(), st.Dropped)
			}
		}
	})
	t.Run("drop-prefix-suffix", func(t *testing.T) {
		drop := make([]bool, nm+nd)
		for i := 0; i < 100; i++ {
			drop[i] = true
			drop[nm+nd-1-i] = true
		}
		gcCase(t, mainVals, deltaVals, drop)
	})
}

// TestParallelGCMergeDictShrinks checks that values referenced only by
// dropped tuples leave the dictionary identically on both paths.
func TestParallelGCMergeDictShrinks(t *testing.T) {
	nm := parallelStep2Threshold + 5
	mainVals := make([]uint64, nm)
	for i := range mainVals {
		mainVals[i] = uint64(i % 1000)
	}
	// Drop every tuple holding a value below 500: those values must vanish.
	drop := make([]bool, nm)
	for i, v := range mainVals {
		drop[i] = v < 500
	}
	gcCase(t, mainVals, []uint64{1500, 501}, drop)
	m, d := buildColumn(mainVals, []uint64{1500, 501})
	out, _ := MergeColumnGC(m, d, drop, Options{Threads: 4})
	for _, v := range out.Dict().Values() {
		if v < 500 {
			t.Fatalf("dropped-only value %d survived in dictionary", v)
		}
	}
}
