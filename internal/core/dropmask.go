package core

import "sync"

// dropMaskChunk is the minimum per-worker range of the parallel drop-mask
// pass; below threads*dropMaskChunk rows the serial loop wins.
const dropMaskChunk = 8192

// DropMask evaluates a reclaim predicate over a table's begin/end epoch
// columns and returns the merge-GC drop mask plus the number of positions
// marked.  The predicate receives each version's validity interval and
// decides reclaimability — the precise per-pin rule is
// epoch.PinSet.Reclaimable, the legacy coarse rule is
// `end != 0 && end <= watermark` — so the GC kernel itself is retention-
// policy-agnostic.  The mask indexes positions exactly like MergeColumnGC
// expects: main tuples first, then delta tuples, matching the order of the
// begin/end columns.
//
// The predicate must be pure and safe for concurrent use: with threads > 1
// and enough rows the pass is range-partitioned, each worker writing a
// disjoint slice of the mask and accumulating a private count.
func DropMask(begin, end []uint64, reclaim func(begin, end uint64) bool, threads int) ([]bool, int) {
	n := len(begin)
	if n == 0 {
		return nil, 0
	}
	drop := make([]bool, n)
	if threads <= 1 || n < 2*dropMaskChunk {
		dropped := 0
		for i := 0; i < n; i++ {
			if reclaim(begin[i], end[i]) {
				drop[i] = true
				dropped++
			}
		}
		return drop, dropped
	}
	nw := threads
	if max := (n + dropMaskChunk - 1) / dropMaskChunk; nw > max {
		nw = max
	}
	counts := make([]int, nw)
	var wg sync.WaitGroup
	for k := 0; k < nw; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := n*k/nw, n*(k+1)/nw
			c := 0
			for i := lo; i < hi; i++ {
				if reclaim(begin[i], end[i]) {
					drop[i] = true
					c++
				}
			}
			counts[k] = c
		}(k)
	}
	wg.Wait()
	dropped := 0
	for _, c := range counts {
		dropped += c
	}
	return drop, dropped
}
