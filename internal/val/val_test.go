package val

import "testing"

func TestFixedSize(t *testing.T) {
	if got := FixedSize[uint8](); got != 1 {
		t.Errorf("uint8 = %d", got)
	}
	if got := FixedSize[int16](); got != 2 {
		t.Errorf("int16 = %d", got)
	}
	if got := FixedSize[uint32](); got != 4 {
		t.Errorf("uint32 = %d", got)
	}
	if got := FixedSize[float32](); got != 4 {
		t.Errorf("float32 = %d", got)
	}
	if got := FixedSize[uint64](); got != 8 {
		t.Errorf("uint64 = %d", got)
	}
	if got := FixedSize[int](); got != 8 {
		t.Errorf("int = %d", got)
	}
	if got := FixedSize[float64](); got != 8 {
		t.Errorf("float64 = %d", got)
	}
	// Strings are variable-length: no fixed size.
	if got := FixedSize[string](); got != -1 {
		t.Errorf("string = %d want -1", got)
	}
}

func TestFixedSizeNamedType(t *testing.T) {
	// FixedSize switches on the dynamic type, so a defined type does not
	// match its underlying type's case and reports variable-length.  The
	// column store only instantiates with the predeclared types, but the
	// fallback must stay safe (ByteLen then uses the 8-byte default).
	type myU32 uint32
	if got := FixedSize[myU32](); got != -1 {
		t.Errorf("defined type = %d want -1", got)
	}
	if got := ByteLen(myU32(7)); got != 8 {
		t.Errorf("ByteLen(defined type) = %d want 8", got)
	}
}

func TestByteLen(t *testing.T) {
	if got := ByteLen(uint32(9)); got != 4 {
		t.Errorf("uint32 = %d", got)
	}
	if got := ByteLen(uint64(9)); got != 8 {
		t.Errorf("uint64 = %d", got)
	}
	if got := ByteLen(""); got != 0 {
		t.Errorf("empty string = %d", got)
	}
	if got := ByteLen("sixteen-byte-str"); got != 16 {
		t.Errorf("string = %d", got)
	}
}

func TestSliceBytes(t *testing.T) {
	if got := SliceBytes([]uint32{1, 2, 3}); got != 12 {
		t.Errorf("uint32 slice = %d", got)
	}
	if got := SliceBytes([]uint64{1, 2, 3}); got != 24 {
		t.Errorf("uint64 slice = %d", got)
	}
	if got := SliceBytes([]string{"ab", "cdef", ""}); got != 6 {
		t.Errorf("string slice = %d", got)
	}
	if got := SliceBytes([]uint64(nil)); got != 0 {
		t.Errorf("nil slice = %d", got)
	}
	if got := SliceBytes([]string(nil)); got != 0 {
		t.Errorf("nil string slice = %d", got)
	}
}
