// Package val defines the value-type constraint shared by all column
// containers and helpers for reasoning about value byte-lengths.
//
// The paper evaluates columns with fixed uncompressed value-lengths E_j of
// 4, 8 and 16 bytes (§7).  We map those onto uint32, uint64 and
// fixed-length strings respectively; any cmp.Ordered type works for the
// generic containers, while the analytical model consumes the explicit
// value-length.
package val

import "cmp"

// Value is the constraint satisfied by all column value types.
type Value interface {
	cmp.Ordered
}

// FixedSize reports the fixed byte-length of V's values, or -1 when V is a
// variable-length type (strings).  For strings, callers should derive the
// effective length from the data (see StringLen) or supply E_j explicitly.
func FixedSize[V Value]() int {
	var v V
	switch any(v).(type) {
	case uint8, int8:
		return 1
	case uint16, int16:
		return 2
	case uint32, int32, float32:
		return 4
	case uint64, int64, uint, int, float64:
		return 8
	default:
		return -1
	}
}

// ByteLen returns the byte-length of one value: the fixed size for numeric
// types, len(s) for strings.
func ByteLen[V Value](v V) int {
	if s, ok := any(v).(string); ok {
		return len(s)
	}
	if n := FixedSize[V](); n > 0 {
		return n
	}
	return 8
}

// SliceBytes returns the total payload bytes of values.
func SliceBytes[V Value](values []V) int {
	if n := FixedSize[V](); n >= 0 {
		return n * len(values)
	}
	total := 0
	for _, v := range values {
		total += ByteLen(v)
	}
	return total
}
