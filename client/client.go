// Package client is the Go client for the hyrise network server
// (internal/server, cmd/hyrised): a connection-pooled, pipelining client
// exposing the full Store surface — inserts, insert-only updates and
// deletes, typed reads, aggregates, conjunctive queries, snapshot capture
// with pinned-snapshot reads, statistics and merge control — over the
// length-prefixed binary protocol of hyrise/internal/wire.
//
//	c, err := client.Dial("localhost:4860")
//	defer c.Close()
//	id, _ := c.Insert([]any{uint64(1), uint32(3), "widget"})
//	snap, _ := c.Snapshot()           // server-side token, frozen epoch
//	rows, _ := c.LookupAt(snap, "order_id", uint64(1))
//	sum, _ := c.SumAt(snap, "qty")    // consistent with the lookup above
//	c.Release(snap)
//
// A Client is safe for concurrent use: every request checks a connection
// out of the pool (dialing lazily up to Options.Conns) and returns it
// after the response.  Snapshot tokens are registered server-side, so a
// token captured through one pooled connection is valid on all of them —
// and on other Clients of the same server.  InsertBatch pipelines large
// batches as multiple in-flight frames on one connection.
//
// Server-reported failures unwrap to this package's typed errors
// (ErrRowRange, ErrRowInvalid, ErrNoColumn, ErrArity, ErrMergeBusy,
// ErrBadSnapshot, ErrBadRequest, ErrColumnType, ErrServer) via errors.Is.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hyrise/internal/wire"
)

// Typed errors rehydrated from server status codes.  ErrServer is the
// catch-all for failures without a more specific code.
var (
	ErrServer      = errors.New("hyrise server error")
	ErrRowRange    = errors.New("hyrise: row id out of range")
	ErrRowInvalid  = errors.New("hyrise: row already invalidated")
	ErrNoColumn    = errors.New("hyrise: no such column")
	ErrArity       = errors.New("hyrise: value count does not match schema")
	ErrMergeBusy   = errors.New("hyrise: merge already in progress")
	ErrBadSnapshot = errors.New("hyrise: unknown snapshot token")
	ErrBadRequest  = errors.New("hyrise: malformed request")
	ErrColumnType  = errors.New("hyrise: value does not fit column type")
	// ErrTooManySnapshots: the server's snapshot registry is at capacity
	// (ServerOptions.MaxSnapshots); Release a snapshot before capturing
	// another.
	ErrTooManySnapshots = errors.New("hyrise: too many registered snapshots")
	// ErrReadOnly: the server is a replication follower; route writes to
	// the primary.
	ErrReadOnly     = errors.New("hyrise: read-only follower")
	ErrClientClosed = errors.New("hyrise: client closed")
)

func errFromStatus(code uint8, msg string) error {
	var sentinel error
	switch code {
	case wire.StatusErrRowRange:
		sentinel = ErrRowRange
	case wire.StatusErrRowInvalid:
		sentinel = ErrRowInvalid
	case wire.StatusErrNoColumn:
		sentinel = ErrNoColumn
	case wire.StatusErrArity:
		sentinel = ErrArity
	case wire.StatusErrMergeBusy:
		sentinel = ErrMergeBusy
	case wire.StatusErrBadSnapshot:
		sentinel = ErrBadSnapshot
	case wire.StatusErrTooManySnapshots:
		sentinel = ErrTooManySnapshots
	case wire.StatusErrBadRequest:
		sentinel = ErrBadRequest
	case wire.StatusErrColumnType:
		sentinel = ErrColumnType
	case wire.StatusErrReadOnly:
		sentinel = ErrReadOnly
	default:
		sentinel = ErrServer
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}

// Type mirrors the server's column types (same numbering as the wire
// tags and the library's table.Type).
type Type uint8

// Column types.
const (
	Uint32 Type = 0
	Uint64 Type = 1
	String Type = 2
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case Uint32:
		return "uint32"
	case Uint64:
		return "uint64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Column is one attribute of the served table.
type Column struct {
	Name string
	Type Type
}

// Snap is a server-registered snapshot token.  Latest (zero) reads
// current versions; tokens from Client.Snapshot read frozen at the
// captured epoch until released.
type Snap uint64

// Latest is the always-valid token for reading current versions.
const Latest Snap = 0

// Options tunes Dial.
type Options struct {
	// Conns caps the connection pool (default 4).  Connections are
	// dialed lazily as concurrent requests demand them.
	Conns int
	// DialTimeout bounds each TCP dial (default 5s).
	DialTimeout time.Duration
	// Followers lists read-replica addresses.  When set (and the primary
	// speaks protocol version 2), eligible reads are routed to followers:
	// snapshot reads go to any follower that has applied the snapshot's
	// epoch (exact, verified server-side), latest reads to any follower
	// lagging at most MaxStaleness epochs.  Every follower error falls
	// back to the primary, so routing never changes results — only which
	// machine serves them.
	Followers []string
	// MaxStaleness bounds, in epochs, how far behind the primary a
	// follower may be and still serve LATEST reads (snapshot reads are
	// exact regardless).  0 routes latest reads only to fully-caught-up
	// followers.
	MaxStaleness uint64
	// StatsTTL bounds how long a follower's lag measurement is reused
	// before being refreshed (default 100ms).
	StatsTTL time.Duration
}

func (o *Options) setDefaults() {
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.StatsTTL <= 0 {
		o.StatsTTL = 100 * time.Millisecond
	}
}

// Client is a pooled connection to one hyrise server.  Safe for
// concurrent use.
type Client struct {
	addr string
	opts Options

	// Immutable after Dial.
	name      string
	shards    int
	keyColumn string
	schema    []Column
	colIdx    map[string]int
	protocol  uint32 // negotiated by the hello exchange
	role      Role

	sem       chan struct{} // counts live connections (pool capacity)
	free      chan *poolConn
	closed    chan struct{}
	closeOnce sync.Once

	// Follower routing state (empty without Options.Followers).
	followers []*follower
	rr        uint64 // round-robin cursor, accessed atomically

	// snapEpochs maps primary snapshot tokens to their epochs, learned
	// from OpSnapshotEpoch; follower routing pins these epochs remotely.
	snapMu     sync.Mutex
	snapEpochs map[Snap]uint64
}

type poolConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// Dial connects to a hyrise server with default options and fetches the
// served table's schema.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects with explicit options.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts.setDefaults()
	c := &Client{
		addr:       addr,
		opts:       opts,
		sem:        make(chan struct{}, opts.Conns),
		free:       make(chan *poolConn, opts.Conns),
		closed:     make(chan struct{}),
		snapEpochs: make(map[Snap]uint64),
	}
	// Dial eagerly once: verifies the server speaks the protocol and
	// caches the schema every later request needs for value coercion.
	var req wire.Buffer
	req.U8(wire.OpSchema)
	r, err := c.do(req.Bytes())
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	if err := c.readSchema(r); err != nil {
		c.Close()
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	if err := c.hello(); err != nil {
		c.Close()
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	for _, faddr := range opts.Followers {
		c.followers = append(c.followers, &follower{parent: c, addr: faddr})
	}
	return c, nil
}

// hello negotiates the protocol generation.  A version-1 server answers
// the unknown opcode with ErrBadRequest; that is the negotiation — the
// client records protocol 1 and keeps to the version-1 opcode set
// (follower routing and epoch-addressed snapshots stay disabled).
func (c *Client) hello() error {
	var req wire.Buffer
	req.U8(wire.OpHello)
	req.U32(wire.ProtocolVersion)
	r, err := c.do(req.Bytes())
	if errors.Is(err, ErrBadRequest) {
		c.protocol = 1
		c.role = RolePrimary
		return nil
	}
	if err != nil {
		return err
	}
	ver, err := r.U32()
	if err != nil {
		return err
	}
	role, err := r.U8()
	if err != nil {
		return err
	}
	if ver < c.protocol || ver == 0 {
		return fmt.Errorf("%w: server protocol version %d", ErrBadRequest, ver)
	}
	// Both sides speak min(client, server); the server promises the same.
	c.protocol = min(wire.ProtocolVersion, ver)
	c.role = Role(role)
	return nil
}

// Protocol returns the negotiated protocol generation (1 for pre-hello
// servers).
func (c *Client) Protocol() int { return int(c.protocol) }

// Role returns the server's announced role (RolePrimary for version-1
// servers, which cannot be followers).
func (c *Client) Role() Role { return c.role }

func (c *Client) readSchema(r *wire.Reader) error {
	var err error
	if c.name, err = r.String(); err != nil {
		return err
	}
	shards, err := r.U32()
	if err != nil {
		return err
	}
	c.shards = int(shards)
	if c.keyColumn, err = r.String(); err != nil {
		return err
	}
	n, err := r.U16()
	if err != nil {
		return err
	}
	c.schema = make([]Column, n)
	c.colIdx = make(map[string]int, n)
	for i := range c.schema {
		if c.schema[i].Name, err = r.String(); err != nil {
			return err
		}
		t, err := r.U8()
		if err != nil {
			return err
		}
		c.schema[i].Type = Type(t)
		c.colIdx[c.schema[i].Name] = i
	}
	return nil
}

// Name returns the served table's name.
func (c *Client) Name() string { return c.name }

// Shards returns the served table's shard count (1 for a flat table).
func (c *Client) Shards() int { return c.shards }

// KeyColumn returns the hash-partitioning column ("" for a flat table).
func (c *Client) KeyColumn() string { return c.keyColumn }

// Schema returns the served table's columns.
func (c *Client) Schema() []Column {
	out := make([]Column, len(c.schema))
	copy(out, c.schema)
	return out
}

// Close tears down every pooled connection.  In-flight requests on other
// goroutines fail with connection errors; their connections are closed as
// they return to the pool (see release), so no socket outlives the close.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	c.drainFree()
	for _, f := range c.followers {
		f.close()
	}
	return nil
}

// drainFree closes every connection currently idle in the pool.
func (c *Client) drainFree() {
	for {
		select {
		case pc := <-c.free:
			pc.nc.Close()
		default:
			return
		}
	}
}

// acquire checks a connection out of the pool, dialing a new one when
// the pool has spare capacity and no idle connection.
func (c *Client) acquire() (*poolConn, error) {
	select {
	case <-c.closed:
		return nil, ErrClientClosed
	default:
	}
	select {
	case pc := <-c.free:
		return pc, nil
	case c.sem <- struct{}{}:
		nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
		if err != nil {
			<-c.sem
			return nil, err
		}
		return &poolConn{
			nc: nc,
			br: bufio.NewReaderSize(nc, 64<<10),
			bw: bufio.NewWriterSize(nc, 64<<10),
		}, nil
	case <-c.closed:
		return nil, ErrClientClosed
	}
}

// release returns a healthy connection to the pool.  The post-enqueue
// closed re-check makes release safe against a concurrent Close: either
// the enqueue happened before Close closed c.closed — then Close's drain
// (which runs after) sees the connection — or this release observes the
// channel closed and drains the pool itself.  Without the re-check, a
// connection enqueued just after Close's drain loop exited would leak its
// socket.
func (c *Client) release(pc *poolConn) {
	select {
	case <-c.closed:
		c.discard(pc)
		return
	default:
	}
	select {
	case c.free <- pc:
	default:
		c.discard(pc)
		return
	}
	select {
	case <-c.closed:
		c.drainFree()
	default:
	}
}

// discard drops a connection (after an I/O error, or on overflow).
func (c *Client) discard(pc *poolConn) {
	pc.nc.Close()
	select {
	case <-c.sem:
	default:
	}
}

// do sends one request and decodes the response status, returning a
// reader positioned at the result body.
func (c *Client) do(req []byte) (*wire.Reader, error) {
	pc, err := c.acquire()
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(pc.bw, req); err != nil {
		c.discard(pc)
		return nil, err
	}
	if err := pc.bw.Flush(); err != nil {
		c.discard(pc)
		return nil, err
	}
	resp, err := wire.ReadFrame(pc.br)
	if err != nil {
		c.discard(pc)
		return nil, err
	}
	c.release(pc)
	return decodeStatus(resp)
}

func decodeStatus(resp []byte) (*wire.Reader, error) {
	r := wire.NewReader(resp)
	status, err := r.U8()
	if err != nil {
		return nil, fmt.Errorf("%w: empty response", ErrBadRequest)
	}
	if status != wire.StatusOK {
		msg, _ := r.String()
		return nil, errFromStatus(status, msg)
	}
	return r, nil
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	var req wire.Buffer
	req.U8(wire.OpPing)
	_, err := c.do(req.Bytes())
	return err
}

// coerce converts convenient Go literals to the column's wire type: the
// exact type passes through, untyped-int-friendly int/uint variants
// convert with range checks, everything else fails with ErrColumnType.
func (c *Client) coerce(col string, v any) (any, error) {
	i, ok := c.colIdx[col]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	return coerceType(c.schema[i].Type, col, v)
}

func coerceType(t Type, col string, v any) (any, error) {
	asU64 := func() (uint64, bool) {
		switch x := v.(type) {
		case int:
			if x >= 0 {
				return uint64(x), true
			}
		case int64:
			if x >= 0 {
				return uint64(x), true
			}
		case uint:
			return uint64(x), true
		case uint32:
			return uint64(x), true
		case uint64:
			return x, true
		}
		return 0, false
	}
	switch t {
	case Uint32:
		if x, ok := v.(uint32); ok {
			return x, nil
		}
		if u, ok := asU64(); ok && u <= 1<<32-1 {
			return uint32(u), nil
		}
	case Uint64:
		if x, ok := v.(uint64); ok {
			return x, nil
		}
		if u, ok := asU64(); ok {
			return u, nil
		}
	case String:
		if x, ok := v.(string); ok {
			return x, nil
		}
	}
	return nil, fmt.Errorf("%w: %T for %v column %q", ErrColumnType, v, t, col)
}

// coerceRow coerces a full row against the schema (arity mismatches are
// left for the server to reject with ErrArity).
func (c *Client) coerceRow(values []any) ([]any, error) {
	if len(values) != len(c.schema) {
		return nil, fmt.Errorf("%w: got %d values want %d", ErrArity, len(values), len(c.schema))
	}
	out := make([]any, len(values))
	for i, v := range values {
		cv, err := coerceType(c.schema[i].Type, c.schema[i].Name, v)
		if err != nil {
			return nil, err
		}
		out[i] = cv
	}
	return out, nil
}

// Insert appends one row and returns its row id.
func (c *Client) Insert(values []any) (int, error) {
	row, err := c.coerceRow(values)
	if err != nil {
		return 0, err
	}
	var req wire.Buffer
	req.U8(wire.OpInsert)
	if err := req.Row(row); err != nil {
		return 0, err
	}
	r, err := c.do(req.Bytes())
	if err != nil {
		return 0, err
	}
	id, err := r.U64()
	return int(id), err
}

// batchChunk bounds the rows encoded into one InsertBatch frame; larger
// batches pipeline as multiple in-flight frames on one connection.
const batchChunk = 512

// InsertBatch appends rows and returns their ids in input order.  The
// batch is split into chunks of up to 512 rows, all pipelined on one
// connection: chunk frames stream out while a reader goroutine drains
// the responses concurrently, so a large batch pays one round trip, not
// one per chunk — and arbitrarily large batches cannot deadlock on full
// TCP buffers.  Chunks are atomic server-side (a bad row rejects its
// whole chunk); chunks before and after a failed one may still land.
func (c *Client) InsertBatch(rows [][]any) ([]int, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	coerced := make([][]any, len(rows))
	for i, row := range rows {
		cr, err := c.coerceRow(row)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		coerced[i] = cr
	}
	frames := make([][]byte, 0, (len(coerced)+batchChunk-1)/batchChunk)
	for at := 0; at < len(coerced); at += batchChunk {
		chunk := coerced[at:min(at+batchChunk, len(coerced))]
		var req wire.Buffer
		req.U8(wire.OpInsertBatch)
		req.U32(uint32(len(chunk)))
		for _, row := range chunk {
			if err := req.Row(row); err != nil {
				return nil, err
			}
		}
		frames = append(frames, req.Bytes())
	}

	pc, err := c.acquire()
	if err != nil {
		return nil, err
	}
	var (
		ids      []int
		chunkErr error // first server-reported chunk failure (session intact)
		readErr  error // transport/decode failure (session poisoned)
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range frames {
			resp, err := wire.ReadFrame(pc.br)
			if err != nil {
				readErr = err
				return
			}
			r, err := decodeStatus(resp)
			if err != nil {
				if chunkErr == nil {
					chunkErr = err
				}
				continue // keep draining so the connection stays in sync
			}
			chunkIDs, err := r.RowIDs()
			if err != nil {
				readErr = err
				return
			}
			ids = append(ids, chunkIDs...)
		}
	}()
	var writeErr error
	for _, f := range frames {
		if writeErr = wire.WriteFrame(pc.bw, f); writeErr != nil {
			break
		}
	}
	if writeErr == nil {
		writeErr = pc.bw.Flush()
	}
	if writeErr != nil {
		pc.nc.Close() // unblock the reader
	}
	<-done
	if writeErr != nil || readErr != nil {
		c.discard(pc)
		if writeErr != nil {
			return nil, writeErr
		}
		return nil, readErr
	}
	if chunkErr != nil {
		c.release(pc)
		return nil, chunkErr
	}
	c.release(pc)
	return ids, nil
}

// Update appends a new version of the row with the changed columns and
// invalidates the old version, returning the new row id.
func (c *Client) Update(row int, changes map[string]any) (int, error) {
	var req wire.Buffer
	req.U8(wire.OpUpdate)
	req.U64(uint64(row))
	req.U16(uint16(len(changes)))
	for col, v := range changes {
		cv, err := c.coerce(col, v)
		if err != nil {
			return 0, err
		}
		req.String(col)
		if err := req.Value(cv); err != nil {
			return 0, err
		}
	}
	r, err := c.do(req.Bytes())
	if err != nil {
		return 0, err
	}
	id, err := r.U64()
	return int(id), err
}

// Delete invalidates the row.
func (c *Client) Delete(row int) error {
	var req wire.Buffer
	req.U8(wire.OpDelete)
	req.U64(uint64(row))
	_, err := c.do(req.Bytes())
	return err
}

// Row materializes all column values of a row (valid or not).
func (c *Client) Row(row int) ([]any, error) {
	var req wire.Buffer
	req.U8(wire.OpRow)
	req.U64(uint64(row))
	r, err := c.do(req.Bytes())
	if err != nil {
		return nil, err
	}
	return r.Row()
}

// IsValid reports whether the row is the current version.
func (c *Client) IsValid(row int) (bool, error) {
	var req wire.Buffer
	req.U8(wire.OpIsValid)
	req.U64(uint64(row))
	r, err := c.do(req.Bytes())
	if err != nil {
		return false, err
	}
	b, err := r.U8()
	return b != 0, err
}

// Snapshot captures a consistent read view server-side (one atomic epoch
// capture, consistent across all shards) and returns its token.  Reads
// through the token are frozen at the captured epoch no matter how many
// writes and merges commit afterwards — on any pooled connection, and on
// other Clients of the same server.  The server's registry is bounded:
// past its capacity Snapshot fails with ErrTooManySnapshots until a token
// is Released.
func (c *Client) Snapshot() (Snap, error) {
	// On a version-2 server the capture also reports the frozen epoch;
	// follower routing needs it to pin the same epoch on replicas.
	if c.protocol >= 2 {
		var req wire.Buffer
		req.U8(wire.OpSnapshotEpoch)
		r, err := c.do(req.Bytes())
		if err != nil {
			return 0, err
		}
		tok, err := r.U64()
		if err != nil {
			return 0, err
		}
		e, err := r.U64()
		if err != nil {
			return 0, err
		}
		c.snapMu.Lock()
		c.snapEpochs[Snap(tok)] = e
		c.snapMu.Unlock()
		return Snap(tok), nil
	}
	var req wire.Buffer
	req.U8(wire.OpSnapshot)
	r, err := c.do(req.Bytes())
	if err != nil {
		return 0, err
	}
	tok, err := r.U64()
	return Snap(tok), err
}

// SnapshotEpoch returns the epoch a snapshot token was frozen at, when
// known (tokens from Snapshot on a version-2 server).
func (c *Client) SnapshotEpoch(s Snap) (uint64, bool) {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	e, ok := c.snapEpochs[s]
	return e, ok
}

// Release drops a snapshot token from the server's registry.  Do call it:
// a registered token pins the server's GC watermark (merges keep every
// version the snapshot can see), and the registry itself is bounded, so
// unreleased tokens eventually make Snapshot fail with
// ErrTooManySnapshots.
func (c *Client) Release(s Snap) error {
	c.snapMu.Lock()
	delete(c.snapEpochs, s)
	c.snapMu.Unlock()
	// Drop any epoch pins this token's reads created on followers; their
	// failure is not the caller's problem (the follower may be gone).
	for _, f := range c.followers {
		f.releasePin(s)
	}
	var req wire.Buffer
	req.U8(wire.OpSnapshotRelease)
	req.U64(uint64(s))
	_, err := c.do(req.Bytes())
	return err
}

// readReq assembles the common (op, token, column) request prefix.
func readReq(op uint8, s Snap, col string) wire.Buffer {
	var req wire.Buffer
	req.U8(op)
	req.U64(uint64(s))
	req.String(col)
	return req
}

// Lookup returns the row ids of current rows whose value equals v.
func (c *Client) Lookup(col string, v any) ([]int, error) { return c.LookupAt(Latest, col, v) }

// LookupAt is Lookup frozen at the snapshot.
func (c *Client) LookupAt(s Snap, col string, v any) ([]int, error) {
	cv, err := c.coerce(col, v)
	if err != nil {
		return nil, err
	}
	req := readReq(wire.OpLookup, s, col)
	if err := req.Value(cv); err != nil {
		return nil, err
	}
	r, err := c.doRead(req.Bytes(), s)
	if err != nil {
		return nil, err
	}
	return r.RowIDs()
}

// Range returns the row ids of current rows with value in [lo, hi].
func (c *Client) Range(col string, lo, hi any) ([]int, error) {
	return c.RangeAt(Latest, col, lo, hi)
}

// RangeAt is Range frozen at the snapshot.
func (c *Client) RangeAt(s Snap, col string, lo, hi any) ([]int, error) {
	clo, err := c.coerce(col, lo)
	if err != nil {
		return nil, err
	}
	chi, err := c.coerce(col, hi)
	if err != nil {
		return nil, err
	}
	req := readReq(wire.OpRange, s, col)
	if err := req.Value(clo); err != nil {
		return nil, err
	}
	if err := req.Value(chi); err != nil {
		return nil, err
	}
	r, err := c.doRead(req.Bytes(), s)
	if err != nil {
		return nil, err
	}
	return r.RowIDs()
}

// Scan streams up to limit current rows of the column (limit <= 0 means
// all), returning row ids and the column's values.
func (c *Client) Scan(col string, limit int) ([]int, []any, error) {
	return c.ScanAt(Latest, col, limit)
}

// ScanAt is Scan frozen at the snapshot.
func (c *Client) ScanAt(s Snap, col string, limit int) ([]int, []any, error) {
	ids, values, _, err := c.scan(s, col, limit, false)
	return ids, values, err
}

// ScanRows is Scan plus full-row materialization: it additionally
// returns every matched row's values across all columns.  The server
// collects row ids under the scan and reads the other columns after it —
// never from inside the scan callback — so a scan-plus-read request
// cannot deadlock behind concurrent writers.
func (c *Client) ScanRows(col string, limit int) ([]int, [][]any, error) {
	ids, _, rows, err := c.scan(Latest, col, limit, true)
	return ids, rows, err
}

// ScanRowsAt is ScanRows frozen at the snapshot.  Note the row
// materialization reads latest versions of matched rows: row versions
// are immutable, so values equal what the scan saw.
func (c *Client) ScanRowsAt(s Snap, col string, limit int) ([]int, [][]any, error) {
	ids, _, rows, err := c.scan(s, col, limit, true)
	return ids, rows, err
}

func (c *Client) scan(s Snap, col string, limit int, withRows bool) ([]int, []any, [][]any, error) {
	req := readReq(wire.OpScan, s, col)
	if limit < 0 {
		limit = 0
	}
	req.U32(uint32(limit))
	req.U8(boolByte(withRows))
	r, err := c.doRead(req.Bytes(), s)
	if err != nil {
		return nil, nil, nil, err
	}
	n, err := r.U32()
	if err != nil {
		return nil, nil, nil, err
	}
	ids := make([]int, n)
	values := make([]any, n)
	for i := range ids {
		id, err := r.U64()
		if err != nil {
			return nil, nil, nil, err
		}
		ids[i] = int(id)
		if values[i], err = r.Value(); err != nil {
			return nil, nil, nil, err
		}
	}
	if !withRows {
		return ids, values, nil, nil
	}
	rows := make([][]any, n)
	for i := range rows {
		if rows[i], err = r.Row(); err != nil {
			return nil, nil, nil, err
		}
	}
	return ids, values, rows, nil
}

// Sum aggregates a numeric column over current rows.
func (c *Client) Sum(col string) (uint64, error) { return c.SumAt(Latest, col) }

// SumAt is Sum frozen at the snapshot — on a sharded server a consistent
// cross-shard aggregate.
func (c *Client) SumAt(s Snap, col string) (uint64, error) {
	req := readReq(wire.OpSum, s, col)
	r, err := c.doRead(req.Bytes(), s)
	if err != nil {
		return 0, err
	}
	return r.U64()
}

// Min returns the smallest current value of a numeric column; ok is
// false when no row is visible.
func (c *Client) Min(col string) (any, bool, error) { return c.MinAt(Latest, col) }

// MinAt is Min frozen at the snapshot.
func (c *Client) MinAt(s Snap, col string) (any, bool, error) {
	return c.minMax(wire.OpMin, s, col)
}

// Max returns the largest current value of a numeric column.
func (c *Client) Max(col string) (any, bool, error) { return c.MaxAt(Latest, col) }

// MaxAt is Max frozen at the snapshot.
func (c *Client) MaxAt(s Snap, col string) (any, bool, error) {
	return c.minMax(wire.OpMax, s, col)
}

func (c *Client) minMax(op uint8, s Snap, col string) (any, bool, error) {
	req := readReq(op, s, col)
	r, err := c.doRead(req.Bytes(), s)
	if err != nil {
		return nil, false, err
	}
	okb, err := r.U8()
	if err != nil {
		return nil, false, err
	}
	v, err := r.Value()
	if err != nil {
		return nil, false, err
	}
	return v, okb != 0, nil
}

// CountEqual returns the number of current rows with value v.
func (c *Client) CountEqual(col string, v any) (int, error) {
	return c.CountEqualAt(Latest, col, v)
}

// CountEqualAt is CountEqual frozen at the snapshot.
func (c *Client) CountEqualAt(s Snap, col string, v any) (int, error) {
	cv, err := c.coerce(col, v)
	if err != nil {
		return 0, err
	}
	req := readReq(wire.OpCountEqual, s, col)
	if err := req.Value(cv); err != nil {
		return 0, err
	}
	r, err := c.doRead(req.Bytes(), s)
	if err != nil {
		return 0, err
	}
	n, err := r.U64()
	return int(n), err
}

// ValidRows returns the number of current rows.
func (c *Client) ValidRows() (int, error) { return c.ValidRowsAt(Latest) }

// ValidRowsAt is ValidRows frozen at the snapshot (consistent across
// shards).
func (c *Client) ValidRowsAt(s Snap) (int, error) {
	var req wire.Buffer
	req.U8(wire.OpValidRows)
	req.U64(uint64(s))
	r, err := c.doRead(req.Bytes(), s)
	if err != nil {
		return 0, err
	}
	n, err := r.U64()
	return int(n), err
}

// VisibleAt reports whether the row is visible at the snapshot.
func (c *Client) VisibleAt(s Snap, row int) (bool, error) {
	var req wire.Buffer
	req.U8(wire.OpVisible)
	req.U64(uint64(s))
	req.U64(uint64(row))
	r, err := c.doRead(req.Bytes(), s)
	if err != nil {
		return false, err
	}
	b, err := r.U8()
	return b != 0, err
}
