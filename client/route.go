package client

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"hyrise/internal/wire"
)

// Role is a server's replication role, as announced by the hello exchange.
type Role uint8

// Roles.
const (
	RolePrimary  Role = wire.RolePrimary
	RoleFollower Role = wire.RoleFollower
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleFollower:
		return "follower"
	default:
		return "unknown"
	}
}

// follower is one read replica the client may route to: a lazily-dialed
// sub-client plus per-snapshot pin tokens and a cached lag measurement.
type follower struct {
	parent *Client
	addr   string

	mu         sync.Mutex
	c          *Client       // nil until first use
	pins       map[Snap]Snap // primary snapshot token -> follower pin token
	statsAt    time.Time     // when stats was measured (zero = never)
	stats      ServerStats
	downTo     time.Time // cooling off after an error
	refreshing bool      // a background stats refresher is running
}

// followerCooldown is how long a follower sits out after an error before
// routing tries it again.
const followerCooldown = time.Second

// client returns the lazily-dialed sub-client.
func (f *follower) client() (*Client, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.c != nil {
		return f.c, nil
	}
	c, err := DialOptions(f.addr, Options{
		Conns:       f.parent.opts.Conns,
		DialTimeout: f.parent.opts.DialTimeout,
	})
	if err != nil {
		return nil, err
	}
	f.c = c
	return c, nil
}

func (f *follower) close() {
	f.mu.Lock()
	c := f.c
	f.c = nil
	f.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (f *follower) available() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return time.Now().After(f.downTo)
}

// markDown benches the follower briefly; the caller has already fallen
// back to the primary, this only stops every request from re-paying the
// failure.  The cached lag measurement is dropped (it predates the
// failure) and a single background refresher keeps re-measuring while
// the follower sits out, so the first read after the cooldown routes on
// fresh stats instead of paying a synchronous measurement — and a
// follower that recovered mid-cooldown is not judged on pre-failure lag.
func (f *follower) markDown() {
	f.mu.Lock()
	f.downTo = time.Now().Add(followerCooldown)
	f.statsAt = time.Time{}
	spawn := !f.refreshing
	f.refreshing = true
	f.mu.Unlock()
	if spawn {
		go f.refreshStats()
	}
}

// refreshStats re-measures the follower's stats in the background until
// its cooldown expires (failed attempts count toward the exit too: if the
// follower stays unreachable, the next routed read re-benches it and
// re-arms a refresher).
func (f *follower) refreshStats() {
	defer func() {
		f.mu.Lock()
		f.refreshing = false
		f.mu.Unlock()
	}()
	for {
		select {
		case <-f.parent.closed:
			return
		case <-time.After(followerCooldown / 4):
		}
		if c, err := f.client(); err == nil {
			if st, err := c.ServerStats(); err == nil {
				f.mu.Lock()
				f.stats = st
				f.statsAt = time.Now()
				f.mu.Unlock()
			}
		}
		select {
		case <-f.parent.closed:
			// The parent closed while we were measuring; drop the
			// sub-client a concurrent Close may have missed.
			f.close()
			return
		default:
		}
		f.mu.Lock()
		done := time.Now().After(f.downTo)
		f.mu.Unlock()
		if done {
			return
		}
	}
}

// lag returns the follower's epoch lag behind its primary, measuring it
// over the wire when the cached value is older than StatsTTL.
func (f *follower) lag() (uint64, error) {
	f.mu.Lock()
	if !f.statsAt.IsZero() && time.Since(f.statsAt) < f.parent.opts.StatsTTL {
		l := f.stats.Lag
		f.mu.Unlock()
		return l, nil
	}
	f.mu.Unlock()
	c, err := f.client()
	if err != nil {
		return 0, err
	}
	st, err := c.ServerStats()
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	f.stats = st
	f.statsAt = time.Now()
	f.mu.Unlock()
	return st.Lag, nil
}

// pinFor resolves the follower-local pin token for a primary snapshot,
// pinning the snapshot's epoch on the follower on first use.  The server
// verifies the epoch is applied and its history intact, so reads through
// the returned token are exactly the primary snapshot's reads.
func (f *follower) pinFor(s Snap, epoch uint64) (Snap, error) {
	f.mu.Lock()
	if tok, ok := f.pins[s]; ok {
		f.mu.Unlock()
		return tok, nil
	}
	f.mu.Unlock()
	c, err := f.client()
	if err != nil {
		return 0, err
	}
	var req wire.Buffer
	req.U8(wire.OpPinEpoch)
	req.U64(epoch)
	r, err := c.do(req.Bytes())
	if err != nil {
		return 0, err
	}
	tok64, err := r.U64()
	if err != nil {
		return 0, err
	}
	tok := Snap(tok64)
	f.mu.Lock()
	if f.pins == nil {
		f.pins = make(map[Snap]Snap)
	}
	if prev, ok := f.pins[s]; ok {
		// Lost a race with another goroutine; keep theirs, drop ours.
		f.mu.Unlock()
		go c.Release(tok)
		return prev, nil
	}
	f.pins[s] = tok
	f.mu.Unlock()
	return tok, nil
}

// releasePin drops the cached pin for a primary snapshot token, releasing
// it on the follower best-effort.
func (f *follower) releasePin(s Snap) {
	f.mu.Lock()
	tok, ok := f.pins[s]
	if ok {
		delete(f.pins, s)
	}
	c := f.c
	f.mu.Unlock()
	if ok && c != nil {
		c.Release(tok)
	}
}

// doRead sends a token-carrying read request (token at bytes [1:9], right
// after the opcode), routing it to a follower when one can serve it
// exactly, and to the primary otherwise.  Any follower failure falls back
// to the primary, so routing is invisible to callers.
func (c *Client) doRead(req []byte, s Snap) (*wire.Reader, error) {
	if len(c.followers) == 0 || c.protocol < 2 {
		return c.do(req)
	}
	var epoch uint64
	if s != Latest {
		var ok bool
		if epoch, ok = c.SnapshotEpoch(s); !ok {
			// Unknown epoch (token from another client): unroutable.
			return c.do(req)
		}
	}
	start := int(atomic.AddUint64(&c.rr, 1))
	for i := 0; i < len(c.followers); i++ {
		f := c.followers[(start+i)%len(c.followers)]
		if !f.available() {
			continue
		}
		r, err := c.tryFollower(f, req, s, epoch)
		if err == nil {
			return r, nil
		}
		if !errors.Is(err, errStale) {
			// Staleness clears by itself within a heartbeat; real
			// failures bench the follower for a cooldown.
			f.markDown()
		}
	}
	return c.do(req)
}

// tryFollower attempts one read on one follower.
func (c *Client) tryFollower(f *follower, req []byte, s Snap, epoch uint64) (*wire.Reader, error) {
	tok := Snap(0)
	if s != Latest {
		var err error
		if tok, err = f.pinFor(s, epoch); err != nil {
			return nil, err
		}
	} else {
		lag, err := f.lag()
		if err != nil {
			return nil, err
		}
		if lag > c.opts.MaxStaleness {
			return nil, errStale
		}
	}
	fc, err := f.client()
	if err != nil {
		return nil, err
	}
	routed := make([]byte, len(req))
	copy(routed, req)
	binary.BigEndian.PutUint64(routed[1:9], uint64(tok))
	return fc.do(routed)
}

// errStale marks a follower too far behind for a latest read; it only
// travels from tryFollower to doRead.
var errStale = errors.New("client: follower too stale")

// ServerStats is the server-level replication and op-log summary returned
// by Client.ServerStats.
type ServerStats struct {
	// Role and Protocol echo the hello exchange.
	Role     Role
	Protocol int
	// Replicating reports whether an op log is attached (primary side).
	Replicating bool
	// OplogFirst/OplogNext bound the retained log [first, next); Entries
	// is their distance.
	OplogFirst   uint64
	OplogNext    uint64
	OplogEntries uint64
	// Followers counts live replication subscribers (primary side).
	Followers int
	// PrimaryEpoch is the primary's epoch (its own on a primary; as of
	// the last heartbeat on a follower).  AppliedEpoch is the epoch local
	// reads are exact at; Lag is their distance.
	PrimaryEpoch uint64
	AppliedEpoch uint64
	Lag          uint64
	// AppliedLSN is the next op-log position the server will apply (on a
	// primary: the log's next LSN).
	AppliedLSN uint64
	// Uptime is how long the server has been up (protocol version 4+;
	// zero on older servers).
	Uptime time.Duration
	// Ops lists cumulative request/error counts per opcode, for every
	// opcode served at least once (protocol version 4+; empty on older
	// servers or when the server runs with metrics disabled).
	Ops []OpCount
	// Shards is the live active shard count (1 on a flat store) and
	// Partitions the physical partition count including sealed pre-reshard
	// partitions; ShardMapVersion advances with every reshard and
	// Resharding reports a migration in flight (protocol version 5+; zero
	// values on older servers).
	Shards          int
	Partitions      int
	ShardMapVersion uint64
	Resharding      bool
}

// OpCount is one opcode's cumulative request and error totals since
// server start.
type OpCount struct {
	// Op is the opcode's wire name ("lookup", "insert", ...).
	Op       string
	Requests uint64
	Errors   uint64
}

// ServerStats fetches the server's replication/op-log summary.  It fails
// with ErrBadRequest on version-1 servers.
func (c *Client) ServerStats() (ServerStats, error) {
	var req wire.Buffer
	req.U8(wire.OpServerStats)
	r, err := c.do(req.Bytes())
	if err != nil {
		return ServerStats{}, err
	}
	var st ServerStats
	role, err := r.U8()
	if err != nil {
		return st, err
	}
	st.Role = Role(role)
	proto, err := r.U32()
	if err != nil {
		return st, err
	}
	st.Protocol = int(proto)
	repl, err := r.U8()
	if err != nil {
		return st, err
	}
	st.Replicating = repl != 0
	for _, p := range []*uint64{&st.OplogFirst, &st.OplogNext, &st.OplogEntries} {
		if *p, err = r.U64(); err != nil {
			return st, err
		}
	}
	nf, err := r.U32()
	if err != nil {
		return st, err
	}
	st.Followers = int(nf)
	for _, p := range []*uint64{&st.PrimaryEpoch, &st.AppliedEpoch, &st.Lag, &st.AppliedLSN} {
		if *p, err = r.U64(); err != nil {
			return st, err
		}
	}
	if c.protocol >= 4 {
		// Version 4 tail: uptime and per-op counters.  The negotiated
		// protocol proves the server wrote it, so a decode failure here is
		// a real error, not an old server.
		up, err := r.U64()
		if err != nil {
			return st, err
		}
		st.Uptime = time.Duration(up)
		n, err := r.U16()
		if err != nil {
			return st, err
		}
		st.Ops = make([]OpCount, 0, n)
		for i := 0; i < int(n); i++ {
			op, err := r.U8()
			if err != nil {
				return st, err
			}
			oc := OpCount{Op: wire.OpName(op)}
			if oc.Requests, err = r.U64(); err != nil {
				return st, err
			}
			if oc.Errors, err = r.U64(); err != nil {
				return st, err
			}
			st.Ops = append(st.Ops, oc)
		}
	}
	if c.protocol >= 5 {
		// Version 5 tail: live shard topology.
		ns, err := r.U32()
		if err != nil {
			return st, err
		}
		st.Shards = int(ns)
		np, err := r.U32()
		if err != nil {
			return st, err
		}
		st.Partitions = int(np)
		if st.ShardMapVersion, err = r.U64(); err != nil {
			return st, err
		}
		resharding, err := r.U8()
		if err != nil {
			return st, err
		}
		st.Resharding = resharding != 0
	}
	return st, nil
}
