package client

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hyrise/internal/server"
	"hyrise/internal/table"
	"hyrise/internal/wire"
)

func testServer(t *testing.T) string {
	t.Helper()
	flat, err := table.New("kv", table.Schema{
		{Name: "k", Type: table.Uint64},
		{Name: "qty", Type: table.Uint32},
		{Name: "name", Type: table.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(flat, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

func TestCoerceType(t *testing.T) {
	cases := []struct {
		typ  Type
		in   any
		want any
		err  error
	}{
		{Uint64, uint64(7), uint64(7), nil},
		{Uint64, 7, uint64(7), nil},
		{Uint64, int64(7), uint64(7), nil},
		{Uint64, uint32(7), uint64(7), nil},
		{Uint64, -1, nil, ErrColumnType},
		{Uint64, "7", nil, ErrColumnType},
		{Uint32, uint32(7), uint32(7), nil},
		{Uint32, 7, uint32(7), nil},
		{Uint32, uint64(1 << 40), nil, ErrColumnType},
		{Uint32, -3, nil, ErrColumnType},
		{String, "x", "x", nil},
		{String, 7, nil, ErrColumnType},
	}
	for _, tc := range cases {
		got, err := coerceType(tc.typ, "c", tc.in)
		if !errors.Is(err, tc.err) {
			t.Errorf("coerce(%v, %T %v): err=%v want %v", tc.typ, tc.in, tc.in, err, tc.err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("coerce(%v, %v) = %v (%T) want %v (%T)", tc.typ, tc.in, got, got, tc.want, tc.want)
		}
	}
}

func TestErrFromStatus(t *testing.T) {
	codes := map[uint8]error{
		wire.StatusErr:                 ErrServer,
		wire.StatusErrRowRange:         ErrRowRange,
		wire.StatusErrRowInvalid:       ErrRowInvalid,
		wire.StatusErrNoColumn:         ErrNoColumn,
		wire.StatusErrArity:            ErrArity,
		wire.StatusErrMergeBusy:        ErrMergeBusy,
		wire.StatusErrBadSnapshot:      ErrBadSnapshot,
		wire.StatusErrBadRequest:       ErrBadRequest,
		wire.StatusErrColumnType:       ErrColumnType,
		wire.StatusErrTooManySnapshots: ErrTooManySnapshots,
		0xff:                           ErrServer, // unknown codes degrade to generic
	}
	for code, sentinel := range codes {
		if err := errFromStatus(code, "detail"); !errors.Is(err, sentinel) {
			t.Errorf("status 0x%02x: %v does not unwrap to %v", code, err, sentinel)
		}
	}
}

// TestInsertBatchPipelining pushes a batch spanning several chunk frames
// through one connection and checks ids come back in input order.
func TestInsertBatchPipelining(t *testing.T) {
	addr := testServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Enough chunks that the responses alone overflow a socket buffer:
	// guards the concurrent-drain design that keeps huge pipelined
	// batches from deadlocking on full TCP buffers.
	n := batchChunk*40 + 137 // 41 pipelined frames
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{uint64(i), uint32(i % 9), "bulk"}
	}
	ids, err := c.InsertBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != n {
		t.Fatalf("got %d ids want %d", len(ids), n)
	}
	// Flat-table ids are dense and insertion-ordered, so input order is
	// directly checkable.
	for i, id := range ids {
		if id != i {
			t.Fatalf("id[%d] = %d", i, id)
		}
	}
	if got, _ := c.ValidRows(); got != n {
		t.Fatalf("valid rows %d want %d", got, n)
	}

	// A bad row inside a chunk fails that chunk atomically; the client
	// reports the error and the connection stays usable.
	bad := make([][]any, 3)
	bad[0] = []any{uint64(1), uint32(1), "ok"}
	bad[1] = []any{uint64(2), uint32(1), "ok"}
	bad[2] = []any{uint64(3)} // arity
	if _, err := c.InsertBatch(bad); !errors.Is(err, ErrArity) {
		t.Fatalf("bad batch err=%v want ErrArity", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after failed batch: %v", err)
	}
}

// TestClientPoolConcurrency hammers one pooled client from many
// goroutines; the pool must serve them all without cross-talk.
func TestClientPoolConcurrency(t *testing.T) {
	addr := testServer(t)
	c, err := DialOptions(addr, Options{Conns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const goroutines = 12
	const each = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				k := uint64(g*each + i)
				id, err := c.Insert([]any{k, uint32(1), "c"})
				if err != nil {
					t.Errorf("g%d insert: %v", g, err)
					return
				}
				rows, err := c.Lookup("k", k)
				if err != nil || len(rows) != 1 || rows[0] != id {
					t.Errorf("g%d lookup(%d): %v %v", g, k, rows, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got, _ := c.ValidRows(); got != goroutines*each {
		t.Fatalf("valid rows %d want %d", got, goroutines*each)
	}
}

// testServerSrv is testServer, also exposing the server for observation.
func testServerSrv(t *testing.T) (string, *server.Server) {
	t.Helper()
	flat, err := table.New("kv", table.Schema{
		{Name: "k", Type: table.Uint64},
		{Name: "qty", Type: table.Uint32},
		{Name: "name", Type: table.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(flat, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), srv
}

// TestCloseReleaseRace races Close against connections being returned to
// the pool.  Before the post-enqueue re-check in release, a connection
// enqueued just after Close's drain loop finished stayed open forever;
// the leak shows up as server sessions that never terminate.  Run with
// -race to also catch the data-race half.
func TestCloseReleaseRace(t *testing.T) {
	addr, srv := testServerSrv(t)
	for iter := 0; iter < 30; iter++ {
		c, err := DialOptions(addr, Options{Conns: 4})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Hammer until the close lands; every error path must
				// still return or discard its connection.
				for c.Ping() == nil {
				}
			}()
		}
		// Land the close mid-traffic.
		c.Close()
		wg.Wait()
	}
	// Every pooled connection of every iteration must be closed: the
	// server eventually observes all its sessions gone.
	deadline := time.Now().Add(10 * time.Second)
	for srv.ActiveConns() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d leaked connection(s) still open server-side", srv.ActiveConns())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestClientClosed(t *testing.T) {
	addr := testServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err=%v want ErrClientClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDialRefusesNonServer(t *testing.T) {
	// Nothing listening.
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

// TestCreateIndexRoundTrip exercises the v3 index opcodes end to end:
// build an index over the wire, read its statistics back, and check
// that indexed lookups return the same rows as before.
func TestCreateIndexRoundTrip(t *testing.T) {
	addr := testServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Protocol() < 3 {
		t.Fatalf("negotiated protocol %d want >= 3", c.Protocol())
	}

	const n = 500
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{uint64(i % 50), uint32(i % 7), "r"}
	}
	if _, err := c.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Merge(MergeOptions{}); err != nil {
		t.Fatal(err)
	}

	before, err := c.Lookup("k", uint64(17))
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != n/50 {
		t.Fatalf("lookup before index: %d rows want %d", len(before), n/50)
	}

	if err := c.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	// Idempotent: a second call is a no-op, not an error.
	if err := c.CreateIndex("k"); err != nil {
		t.Fatalf("repeat CreateIndex: %v", err)
	}
	if err := c.CreateIndex("nope"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("CreateIndex(nope) err=%v want ErrNoColumn", err)
	}

	stats, err := c.IndexStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Column != "k" {
		t.Fatalf("index stats %+v want one entry for k", stats)
	}
	if stats[0].Postings != n {
		t.Fatalf("postings %d want %d", stats[0].Postings, n)
	}
	if stats[0].Builds == 0 || stats[0].SizeBytes == 0 {
		t.Fatalf("stats not populated: %+v", stats[0])
	}

	after, err := c.Lookup("k", uint64(17))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("indexed lookup %d rows want %d", len(after), len(before))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("row %d: indexed %d scan %d", i, after[i], before[i])
		}
	}

	// The index stays current through post-index writes and merges.
	if _, err := c.Insert([]any{uint64(17), uint32(1), "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Merge(MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := c.CountEqual("k", uint64(17))
	if err != nil {
		t.Fatal(err)
	}
	if got != len(before)+1 {
		t.Fatalf("count after merge %d want %d", got, len(before)+1)
	}
	stats, err = c.IndexStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Postings != n+1 || stats[0].Builds < 2 {
		t.Fatalf("stats after merge %+v want %d postings, >=2 builds", stats[0], n+1)
	}
}
