package client

import (
	"time"

	"hyrise/internal/wire"
)

// Op is a query predicate operator.
type Op uint8

// Predicate operators.
const (
	// Eq matches rows equal to Filter.Value.
	Eq Op = Op(wire.OpFilterEq)
	// Between matches rows in [Filter.Value, Filter.Hi].
	Between Op = Op(wire.OpFilterBetween)
)

// Filter is one predicate of a conjunctive query.
type Filter struct {
	Column string
	Op     Op
	Value  any
	Hi     any // upper bound for Between
}

// Result holds a query's matching rows and projected values.
type Result struct {
	// Rows are matching row ids in ascending order.
	Rows []int
	// Columns are the projected column names (nil if no projection).
	Columns []string
	// Values[i] holds the projected values of Rows[i].
	Values [][]any
}

// Count returns the number of matching rows.
func (r *Result) Count() int { return len(r.Rows) }

// Query evaluates the conjunction of filters over current rows and
// projects the named columns (nil projects nothing).
func (c *Client) Query(filters []Filter, project []string) (*Result, error) {
	return c.QueryAt(Latest, filters, project)
}

// QueryAt is Query frozen at the snapshot: the result reflects one
// consistent state of the whole store, across all shards, even while
// writers and merges proceed.
func (c *Client) QueryAt(s Snap, filters []Filter, project []string) (*Result, error) {
	var req wire.Buffer
	req.U8(wire.OpQuery)
	req.U64(uint64(s))
	wfs := make([]wire.Filter, len(filters))
	for i, f := range filters {
		v, err := c.coerce(f.Column, f.Value)
		if err != nil {
			return nil, err
		}
		wfs[i] = wire.Filter{Column: f.Column, Op: uint8(f.Op), Value: v}
		if f.Op == Between {
			if wfs[i].Hi, err = c.coerce(f.Column, f.Hi); err != nil {
				return nil, err
			}
		}
	}
	if err := req.Filters(wfs); err != nil {
		return nil, err
	}
	if err := req.Strings(project); err != nil {
		return nil, err
	}
	r, err := c.doRead(req.Bytes(), s)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if res.Rows, err = r.RowIDs(); err != nil {
		return nil, err
	}
	if res.Columns, err = r.Strings(); err != nil {
		return nil, err
	}
	if len(res.Columns) > 0 {
		res.Values = make([][]any, len(res.Rows))
		for i := range res.Values {
			vals := make([]any, len(res.Columns))
			for j := range vals {
				if vals[j], err = r.Value(); err != nil {
					return nil, err
				}
			}
			res.Values[i] = vals
		}
	}
	return res, nil
}

// PartitionStats summarizes one physical partition (shard) server-side.
type PartitionStats struct {
	Rows      int
	ValidRows int
	MainRows  int
	DeltaRows int
	SizeBytes int
}

// Stats is the server's statistics snapshot: the store's unified stats
// plus server-level counters.
type Stats struct {
	Name      string
	Shards    int
	KeyColumn string
	Rows      int
	ValidRows int
	MainRows  int
	DeltaRows int
	SizeBytes int
	// RetiredRows / ReclaimedBytes are the store's cumulative garbage-
	// collection counters: ids retired by GC merges and the estimated
	// bytes those reclaimed versions occupied.
	RetiredRows    int
	ReclaimedBytes int
	Merging        bool
	// Partitions holds per-shard counts in partition order.
	Partitions []PartitionStats
	// Server-level counters.
	ActiveConns int
	Requests    uint64
	Snapshots   int
}

// Stats fetches storage statistics and server counters.
func (c *Client) Stats() (Stats, error) {
	var req wire.Buffer
	req.U8(wire.OpStats)
	r, err := c.do(req.Bytes())
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if st.Name, err = r.String(); err != nil {
		return st, err
	}
	shards, err := r.U32()
	if err != nil {
		return st, err
	}
	st.Shards = int(shards)
	if st.KeyColumn, err = r.String(); err != nil {
		return st, err
	}
	u64s := []*int{
		&st.Rows, &st.ValidRows, &st.MainRows, &st.DeltaRows, &st.SizeBytes,
		&st.RetiredRows, &st.ReclaimedBytes,
	}
	for _, p := range u64s {
		v, err := r.U64()
		if err != nil {
			return st, err
		}
		*p = int(v)
	}
	merging, err := r.U8()
	if err != nil {
		return st, err
	}
	st.Merging = merging != 0
	nparts, err := r.U32()
	if err != nil {
		return st, err
	}
	st.Partitions = make([]PartitionStats, nparts)
	for i := range st.Partitions {
		fields := []*int{
			&st.Partitions[i].Rows, &st.Partitions[i].ValidRows,
			&st.Partitions[i].MainRows, &st.Partitions[i].DeltaRows,
			&st.Partitions[i].SizeBytes,
		}
		for _, p := range fields {
			v, err := r.U64()
			if err != nil {
				return st, err
			}
			*p = int(v)
		}
	}
	conns, err := r.U32()
	if err != nil {
		return st, err
	}
	st.ActiveConns = int(conns)
	if st.Requests, err = r.U64(); err != nil {
		return st, err
	}
	snaps, err := r.U32()
	if err != nil {
		return st, err
	}
	st.Snapshots = int(snaps)
	return st, nil
}

// MergeOptions configures a remote merge.
type MergeOptions struct {
	// Naive selects the baseline merge algorithm (default: optimized).
	Naive bool
	// Threads caps the merge's worker budget (0 = all resources).
	Threads int
}

// MergeReport summarizes a completed remote merge.
type MergeReport struct {
	RowsMerged int
	// RowsReclaimed counts dead versions the merge garbage-collected (0
	// with GC off or nothing reclaimable).
	RowsReclaimed int
	MainRowsAfter int
	Wall          time.Duration
	Threads       int
	Aborted       bool
}

// Merge triggers the online merge process server-side (fanning out
// across shards on a sharded store) and reports the result.  Reads and
// writes proceed while it runs.
func (c *Client) Merge(opts MergeOptions) (MergeReport, error) {
	var req wire.Buffer
	req.U8(wire.OpMerge)
	alg := uint8(wire.MergeOptimized)
	if opts.Naive {
		alg = wire.MergeNaive
	}
	req.U8(alg)
	req.U32(uint32(opts.Threads))
	r, err := c.do(req.Bytes())
	if err != nil {
		return MergeReport{}, err
	}
	var rep MergeReport
	rowsMerged, err := r.U64()
	if err != nil {
		return rep, err
	}
	rep.RowsMerged = int(rowsMerged)
	reclaimed, err := r.U64()
	if err != nil {
		return rep, err
	}
	rep.RowsReclaimed = int(reclaimed)
	mainAfter, err := r.U64()
	if err != nil {
		return rep, err
	}
	rep.MainRowsAfter = int(mainAfter)
	wall, err := r.U64()
	if err != nil {
		return rep, err
	}
	rep.Wall = time.Duration(wall)
	threads, err := r.U32()
	if err != nil {
		return rep, err
	}
	rep.Threads = int(threads)
	aborted, err := r.U8()
	if err != nil {
		return rep, err
	}
	rep.Aborted = aborted != 0
	return rep, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// IndexStat summarizes one group-key index as reported by the server.
// On a sharded store, Postings / SizeBytes / Builds are summed across
// shards and LastBuild is the slowest shard's most recent rebuild.
type IndexStat struct {
	Column    string
	Postings  int
	SizeBytes int
	Builds    uint64
	LastBuild time.Duration
}

// CreateIndex builds a group-key index on column server-side.  The call
// is idempotent; subsequent merges keep the index current.  Requires
// protocol version 3.
func (c *Client) CreateIndex(column string) error {
	var req wire.Buffer
	req.U8(wire.OpCreateIndex)
	req.String(column)
	_, err := c.do(req.Bytes())
	return err
}

// IndexStats fetches per-column statistics for every group-key index on
// the server.  Requires protocol version 3.
func (c *Client) IndexStats() ([]IndexStat, error) {
	var req wire.Buffer
	req.U8(wire.OpIndexStats)
	r, err := c.do(req.Bytes())
	if err != nil {
		return nil, err
	}
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	stats := make([]IndexStat, n)
	for i := range stats {
		if stats[i].Column, err = r.String(); err != nil {
			return nil, err
		}
		postings, err := r.U64()
		if err != nil {
			return nil, err
		}
		stats[i].Postings = int(postings)
		size, err := r.U64()
		if err != nil {
			return nil, err
		}
		stats[i].SizeBytes = int(size)
		if stats[i].Builds, err = r.U64(); err != nil {
			return nil, err
		}
		ns, err := r.U64()
		if err != nil {
			return nil, err
		}
		stats[i].LastBuild = time.Duration(ns)
	}
	return stats, nil
}
