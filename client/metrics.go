package client

import (
	"fmt"
	"math"

	"hyrise/internal/wire"
)

// Metric is one sample from the server's metrics registry.  Name is the
// full Prometheus-style series name with labels rendered in (e.g.
// `hyrise_server_requests_total{op="lookup"}`); histogram families
// contribute their `_count` and `_sum` samples.
type Metric struct {
	Name  string
	Value float64
}

// Metrics fetches a point-in-time snapshot of the server's metrics
// registry — the same series /metrics exposes, over the data protocol.
// Followers answer locally, so pointing a client at a replica reads that
// replica's own apply-lag gauges; a topology check can assert convergence
// without touching the HTTP endpoint.  It fails with ErrBadRequest on
// servers older than protocol version 4, and returns an empty snapshot
// when the server runs with metrics disabled.
func (c *Client) Metrics() ([]Metric, error) {
	if c.protocol < 4 {
		return nil, fmt.Errorf("%w: server protocol %d has no metrics op", ErrBadRequest, c.protocol)
	}
	var req wire.Buffer
	req.U8(wire.OpMetrics)
	r, err := c.do(req.Bytes())
	if err != nil {
		return nil, err
	}
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	out := make([]Metric, 0, n)
	for i := uint32(0); i < n; i++ {
		var m Metric
		if m.Name, err = r.String(); err != nil {
			return nil, err
		}
		bits, err := r.U64()
		if err != nil {
			return nil, err
		}
		m.Value = math.Float64frombits(bits)
		out = append(out, m)
	}
	return out, nil
}

// MetricValue returns the named sample from a Metrics snapshot, by exact
// full name (labels included).
func MetricValue(samples []Metric, name string) (float64, bool) {
	for _, m := range samples {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}
