package client

import (
	"fmt"
	"time"

	"hyrise/internal/wire"
)

// ReshardReport describes one completed online reshard, as reported by
// the server.
type ReshardReport struct {
	// From and To are the active shard counts before and after.
	From, To int
	// RowsMigrated counts row versions the migration pass relocated into
	// the new shard window.
	RowsMigrated int
	// Wall is the end-to-end server-side duration; Cutover the atomic
	// routing publish at the end.
	Wall, Cutover time.Duration
	// MapVersion is the shard-map version after cutover; CutoverEpoch the
	// epoch stamped on the cutover op (followers are bit-identical at and
	// after it once they have replayed it).
	MapVersion   uint64
	CutoverEpoch uint64
}

// Reshard changes the served table's active shard count to n, online:
// reads (latest and snapshot) and writes keep working on every connection
// throughout, and replication followers replay the same migration from
// the op log.  It fails with ErrBadRequest on servers older than protocol
// version 5 or on a flat (unsharded) store, and with ErrReadOnly on a
// follower.  Note Shards() keeps reporting the dial-time count; use
// ServerStats for the live topology.
func (c *Client) Reshard(n int) (ReshardReport, error) {
	if c.protocol < 5 {
		return ReshardReport{}, fmt.Errorf("%w: server protocol %d has no reshard op", ErrBadRequest, c.protocol)
	}
	var req wire.Buffer
	req.U8(wire.OpReshard)
	req.U32(uint32(n))
	r, err := c.do(req.Bytes())
	if err != nil {
		return ReshardReport{}, err
	}
	var rep ReshardReport
	from, err := r.U32()
	if err != nil {
		return rep, err
	}
	to, err := r.U32()
	if err != nil {
		return rep, err
	}
	rep.From, rep.To = int(from), int(to)
	migrated, err := r.U64()
	if err != nil {
		return rep, err
	}
	rep.RowsMigrated = int(migrated)
	wallNs, err := r.U64()
	if err != nil {
		return rep, err
	}
	cutNs, err := r.U64()
	if err != nil {
		return rep, err
	}
	rep.Wall = time.Duration(wallNs)
	rep.Cutover = time.Duration(cutNs)
	if rep.MapVersion, err = r.U64(); err != nil {
		return rep, err
	}
	if rep.CutoverEpoch, err = r.U64(); err != nil {
		return rep, err
	}
	return rep, nil
}
