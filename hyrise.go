// Package hyrise is a Go reproduction of the delta-merge architecture of
// "Fast Updates on Read-Optimized Databases Using Multi-Core CPUs"
// (Krueger et al., VLDB 2011): an in-memory, dictionary-compressed column
// store that sustains transactional update rates by accumulating writes in
// per-column uncompressed delta partitions and periodically folding them
// into the compressed main partitions with a linear-time, multi-core merge.
//
// # Quick start
//
//	t, _ := hyrise.NewTable("sales", hyrise.Schema{
//		{Name: "order_id", Type: hyrise.Uint64},
//		{Name: "qty", Type: hyrise.Uint32},
//		{Name: "product", Type: hyrise.String},
//	})
//	t.Insert([]any{uint64(1), uint32(3), "widget"})
//	rep, _ := t.Merge(context.Background(), hyrise.MergeOptions{})
//	h, _ := hyrise.ColumnOf[uint64](t, "order_id")
//	rows := h.Lookup(1)
//
// Tables are insert-only (paper §3): updates append new row versions and
// invalidate the old ones, deletes only invalidate, and the full version
// history remains queryable.  The merge runs online — writes accumulate in
// a second delta while it runs, and the merged table is committed
// atomically under a brief lock.
//
// # Sharded tables
//
// For write-heavy workloads a table can be hash-partitioned by a key
// column across N independent shards, each with its own delta, main and
// merge lifecycle.  Inserts route by key hash and contend only on their
// shard; queries fan out across shards in parallel; MergeAll runs the
// multi-core merge on all shards concurrently with a per-shard slice of
// the thread budget; and NewShardedScheduler watches every shard's delta
// fraction independently:
//
//	st, _ := hyrise.NewShardedTable("sales", schema, "order_id", 8)
//	st.Insert([]any{uint64(1), uint32(3), "widget"})
//	h, _ := hyrise.ShardedColumnOf[uint64](st, "order_id")
//	rows := h.Lookup(1)                 // global row ids
//	st.MergeAll(context.Background(), hyrise.MergeAllOptions{})
//	ms := hyrise.NewShardedScheduler(st, hyrise.SchedulerConfig{Fraction: 0.05})
//	ms.Start()
//
// Sharding guarantees per-shard merge atomicity only: every shard's merge
// is individually online and atomic, but there is no cross-shard snapshot
// — a fan-out query can observe one shard before and another after a
// concurrent multi-shard writer.  Global row ids are stable and encode
// the owning shard; they are not dense and not in global insertion order.
// Updates that change the key column may relocate a row to another shard
// (the old version is invalidated, the new one inserted there).
//
// The subpackages under internal implement the paper's substrate systems
// (bit-packed vectors, sorted dictionaries, CSB+ trees, the merge itself,
// the analytical cost model, workload generators and the experiment
// harness); this package re-exports the surface a downstream application
// needs.
package hyrise

import (
	"cmp"
	"io"

	"hyrise/internal/bench"
	"hyrise/internal/core"
	"hyrise/internal/csvload"
	"hyrise/internal/membench"
	"hyrise/internal/model"
	"hyrise/internal/persist"
	"hyrise/internal/query"
	"hyrise/internal/sched"
	"hyrise/internal/shard"
	"hyrise/internal/table"
	"hyrise/internal/workload"
)

// Value is the constraint on column value types: any ordered type; the
// built-in column types use uint32, uint64 and string.
type Value interface{ cmp.Ordered }

// Column types.
const (
	// Uint32 stores 4-byte integers (the paper's E_j = 4 configuration).
	Uint32 = table.Uint32
	// Uint64 stores 8-byte integers (E_j = 8, the common case).
	Uint64 = table.Uint64
	// String stores strings, modelled as E_j = 16 fixed-length values.
	String = table.String
)

// Type identifies a column's value type.
type Type = table.Type

// ColumnDef declares one column.
type ColumnDef = table.ColumnDef

// Schema is an ordered list of column definitions.
type Schema = table.Schema

// Table is a column-store table with main/delta partitions per column.
type Table = table.Table

// NewTable creates an empty table.
func NewTable(name string, schema Schema) (*Table, error) {
	return table.New(name, schema)
}

// TableStats summarizes a table's storage (see Table.Stats).
type TableStats = table.Stats

// ColumnStats summarizes one column's storage.
type ColumnStats = table.ColumnStats

// Merge configuration and results.
type (
	// MergeOptions configures Table.Merge.
	MergeOptions = table.MergeOptions
	// MergeReport summarizes a completed table merge.
	MergeReport = table.Report
	// MergeStats holds one column's per-step merge timings.
	MergeStats = core.Stats
	// Algorithm selects the merge variant.
	Algorithm = core.Algorithm
	// MergeStrategy distributes threads across or within columns.
	MergeStrategy = table.Strategy
)

// Merge algorithm variants.
const (
	// Optimized is the paper's linear-time merge with auxiliary
	// translation tables (§5.3) — the default.
	Optimized = core.Optimized
	// Naive is the baseline merge whose Step 2 binary-searches the merged
	// dictionary per tuple (§5.2).
	Naive = core.Naive
)

// Merge strategies (§6.2.1).
const (
	// AutoStrategy picks based on column count vs thread count.
	AutoStrategy = table.Auto
	// ColumnTasks parallelizes across columns via a task queue.
	ColumnTasks = table.ColumnTasks
	// IntraColumn parallelizes within each column.
	IntraColumn = table.IntraColumn
)

// Errors re-exported from the table layer.
var (
	ErrRowRange        = table.ErrRowRange
	ErrRowInvalid      = table.ErrRowInvalid
	ErrMergeInProgress = table.ErrMergeInProgress
	ErrNoColumn        = table.ErrNoColumn
	ErrArity           = table.ErrArity
)

// Handle is a typed single-column view supporting lookups, range selects
// and scans.
type Handle[V Value] = table.Handle[V]

// NumericHandle adds Sum/Min/Max aggregation to integer columns.
type NumericHandle[V interface{ ~uint32 | ~uint64 }] = table.NumericHandle[V]

// ColumnOf returns a typed handle for the named column.
func ColumnOf[V Value](t *Table, name string) (*Handle[V], error) {
	return table.ColumnOf[V](t, name)
}

// NumericColumnOf returns a handle with aggregation support.
func NumericColumnOf[V interface{ ~uint32 | ~uint64 }](t *Table, name string) (*NumericHandle[V], error) {
	return table.NumericColumnOf[V](t, name)
}

// Sharded tables (hash-partitioned across independent shards).
type (
	// ShardedTable hash-partitions rows by a key column across N shards.
	ShardedTable = shard.Table
	// ShardedStats aggregates per-shard storage statistics.
	ShardedStats = shard.Stats
	// MergeAllOptions configures ShardedTable.MergeAll.
	MergeAllOptions = shard.MergeAllOptions
	// MergeAllReport summarizes a cross-shard parallel merge.
	MergeAllReport = shard.MergeAllReport
	// ShardedHandle is a typed single-column view across all shards.
	ShardedHandle[V Value] = shard.Handle[V]
	// ShardedNumericHandle adds cross-shard Sum/Min/Max aggregation.
	ShardedNumericHandle[V interface{ ~uint32 | ~uint64 }] = shard.NumericHandle[V]
)

// NewShardedTable creates an empty sharded table hash-partitioned by the
// named key column.
func NewShardedTable(name string, schema Schema, key string, shards int) (*ShardedTable, error) {
	return shard.New(name, schema, key, shards)
}

// ShardedColumnOf returns a typed cross-shard handle for the named column.
func ShardedColumnOf[V Value](st *ShardedTable, name string) (*ShardedHandle[V], error) {
	return shard.ColumnOf[V](st, name)
}

// ShardedNumericColumnOf returns a cross-shard handle with aggregation
// support.
func ShardedNumericColumnOf[V interface{ ~uint32 | ~uint64 }](st *ShardedTable, name string) (*ShardedNumericHandle[V], error) {
	return shard.NumericColumnOf[V](st, name)
}

// ShardedQuery evaluates the conjunction of filters against every shard in
// parallel and merges the results under global row ids.
func ShardedQuery(st *ShardedTable, filters []Filter, project []string) (*QueryResult, error) {
	return shard.Query(st, filters, project)
}

// NewShardedDriver builds a workload driver targeting a sharded table's
// uint64 key-distribution column.
func NewShardedDriver(st *ShardedTable, column string, mix Mix, gen Generator, seed int64) (*Driver, error) {
	h, err := shard.ColumnOf[uint64](st, column)
	if err != nil {
		return nil, err
	}
	return workload.NewDriverFor(st, column, h, mix, gen, seed)
}

// Scheduler triggers merges when the delta grows past a threshold.
type (
	Scheduler       = sched.Scheduler
	SchedulerConfig = sched.Config
	// MultiScheduler supervises every shard of a sharded table
	// independently.
	MultiScheduler = sched.Multi
)

// Scheduler strategies (§3).
const (
	// AllResources merges with every available thread.
	AllResources = sched.AllResources
	// Background merges with a single thread.
	Background = sched.Background
)

// NewScheduler supervises t, merging when N_D exceeds cfg.Fraction * N_M.
func NewScheduler(t *Table, cfg SchedulerConfig) *Scheduler {
	return sched.New(t, cfg)
}

// NewShardedScheduler supervises every shard of st independently: each
// shard merges when its own delta fraction exceeds cfg.Fraction, and
// unless cfg.Threads is set the machine's threads are divided evenly
// across shards.
func NewShardedScheduler(st *ShardedTable, cfg SchedulerConfig) *MultiScheduler {
	shards := st.Shards()
	targets := make([]sched.MergeTable, len(shards))
	for i, s := range shards {
		targets[i] = s
	}
	return sched.NewMulti(targets, cfg)
}

// Workload generation (paper §2).
type (
	// Mix is a query-kind distribution (Figure 1).
	Mix = workload.Mix
	// QueryKind enumerates lookup/scan/range/insert/modification/delete.
	QueryKind = workload.QueryKind
	// Generator produces column values with a controlled distribution.
	Generator = workload.Generator
	// Driver executes a Mix against a table.
	Driver = workload.Driver
	// DriverCounts tallies a driver run.
	DriverCounts = workload.Counts
)

// Built-in mixes (Figure 1).
var (
	OLTPMix = workload.OLTPMix
	OLAPMix = workload.OLAPMix
	TPCCMix = workload.TPCCMix
)

// NewUniformGenerator draws uniformly from a domain of the given size.
func NewUniformGenerator(domain uint64, seed int64) Generator {
	return workload.NewUniform(domain, seed)
}

// NewUniqueGenerator produces a never-repeating value stream (100% unique).
func NewUniqueGenerator(seed int64) Generator { return workload.NewUnique(seed) }

// NewGeneratorForUniqueFraction sizes a uniform domain so n draws contain
// about frac*n distinct values (the paper's λ parameter).
func NewGeneratorForUniqueFraction(n int, frac float64, seed int64) Generator {
	return workload.NewUniformForUniqueFraction(n, frac, seed)
}

// NewZipfGenerator draws from a skewed (Zipf) distribution.
func NewZipfGenerator(domain uint64, skew float64, seed int64) Generator {
	return workload.NewZipf(domain, skew, seed)
}

// NewDriver builds a workload driver over the named uint64 column.
func NewDriver(t *Table, column string, mix Mix, gen Generator, seed int64) (*Driver, error) {
	return workload.NewDriver(t, column, mix, gen, seed)
}

// Multi-column queries (conjunctive predicates, positional refinement).
type (
	// Filter is one predicate of a conjunctive query.
	Filter = query.Filter
	// FilterOp is the predicate operator.
	FilterOp = query.Op
	// QueryResult holds matching rows and projected values.
	QueryResult = query.Result
)

// Filter operators.
const (
	// FilterEq matches rows equal to Filter.Value.
	FilterEq = query.Eq
	// FilterBetween matches rows in [Filter.Value, Filter.Hi].
	FilterBetween = query.Between
)

// Query evaluates the conjunction of filters column-at-a-time and projects
// the named columns (nil projects nothing).
func Query(t *Table, filters []Filter, project []string) (*QueryResult, error) {
	return query.Run(t, filters, project)
}

// CSVOptions configures CSV import.
type CSVOptions = csvload.Options

// LoadCSV imports CSV data (header row required) into a new table; column
// types are inferred unless fixed via CSVOptions.Types.  Rows land in the
// delta partitions; merge when convenient.
func LoadCSV(r io.Reader, opts CSVOptions) (*Table, int, error) {
	return csvload.Load(r, opts)
}

// LoadCSVFile imports a CSV file.
func LoadCSVFile(path string, opts CSVOptions) (*Table, int, error) {
	return csvload.LoadFile(path, opts)
}

// Persistence.

// Save writes a binary snapshot of t.
func Save(t *Table, w io.Writer) error { return persist.Save(t, w) }

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Table, error) { return persist.Load(r) }

// SaveFile and LoadFile are file-path conveniences.
func SaveFile(t *Table, path string) error { return persist.SaveFile(t, path) }

// LoadFile reads a snapshot file.
func LoadFile(path string) (*Table, error) { return persist.LoadFile(path) }

// Analytical model (paper §6.1, §7.4).
type (
	// ModelArch holds architecture constants for the cost model.
	ModelArch = model.Arch
	// ModelWorkload describes one column merge in model terms.
	ModelWorkload = model.Workload
	// ModelPrediction is the model's per-step cost estimate.
	ModelPrediction = model.Prediction
)

// PaperArch returns the paper's evaluation-machine constants.
func PaperArch() ModelArch { return model.PaperArch() }

// Predict evaluates the analytical model for one column merge.
func Predict(w ModelWorkload, a ModelArch, parallel bool) ModelPrediction {
	return model.Predict(w, a, parallel)
}

// CalibrateArch measures this host's streaming and random bandwidth and
// returns a ModelArch for Predict.  hz is the clock used for cycle
// conversion (e.g. 3.3e9); threads <= 0 uses GOMAXPROCS.
func CalibrateArch(hz float64, threads int) ModelArch {
	r := membench.Calibrate(membench.Options{Threads: threads})
	return model.Arch{
		LineBytes:   64,
		LLCBytes:    bench.DetectLLCBytes(),
		StreamBPC:   membench.BytesPerCycle(r.StreamBytesPerSec, hz),
		RandomBPC:   membench.BytesPerCycle(r.RandomBytesPerSec, hz),
		OpsPerCycle: 1,
		Threads:     r.Threads,
		HZ:          hz,
	}
}

// Experiments exposes the paper-reproduction harness.
type (
	// Experiment regenerates one paper figure or table.
	Experiment = bench.Experiment
	// ExperimentScale sets experiment sizes relative to the paper.
	ExperimentScale = bench.Scale
)

// Experiments lists all registered paper reproductions.
func Experiments() []Experiment { return bench.Registry() }

// ExperimentByID resolves one experiment (e.g. "fig7").
func ExperimentByID(id string) (Experiment, bool) { return bench.ByID(id) }
